package wgtt

import (
	"fmt"
	"strings"

	"wgtt/internal/core"
	"wgtt/internal/trace"
)

// This file is the scenario surface of wgtt-serve, the long-running
// multi-process daemon. A partitioned run is SPMD: every process calls
// BuildServeScenario with the identical name and options, constructs
// the identical Network, and then executes only its owned share of the
// domain graph (Network.RunPartitioned). Because the "corridor"
// scenario builds through the exact construction path of the
// in-process corridor ride (corridorSetup), a sharded run is
// bit-comparable to CorridorThroughput — that is what the
// multi-process parity test pins.

// ServeRun is a constructed-but-not-yet-run scenario: the network, its
// workload, and how long to ride. Callers advance it with Net.Run (one
// process) or Net.RunPartitioned (a sharded run), then read Figures.
type ServeRun struct {
	Net *Network
	Cfg Config
	// Dur is the scenario's natural end time.
	Dur Duration
	// APsPerSegment and SpeedMPH echo the scenario shape for reports.
	APsPerSegment int
	SpeedMPH      float64

	meters  []*throughput
	clients []*Client
}

// Now returns the scenario's current virtual time: the coordinator
// clock in a domain-mode network (the only clock that advances on
// every process of a partitioned run), the event loop otherwise.
func (r *ServeRun) Now() Time {
	if r.Net.Coord != nil {
		return r.Net.Coord.Now()
	}
	return r.Net.Loop.Now()
}

// ServeClient is one client's goodput figure in a ServeReport.
type ServeClient struct {
	ID   int     `json:"id"`
	Mbps float64 `json:"mbps"`
	// Owned reports whether this process's reading is authoritative:
	// the client's radio currently resides in a segment domain the
	// process executes. Exactly one process reports Owned per client.
	Owned bool `json:"owned"`
}

// Figures reads every client's mean goodput at the current virtual
// time. owned is the process's domain-ownership set from a partitioned
// run (marks which figures are authoritative); nil means a
// whole-network run, where every figure is.
func (r *ServeRun) Figures(owned map[string]bool) []ServeClient {
	now := r.Now()
	out := make([]ServeClient, 0, len(r.meters))
	for i, m := range r.meters {
		sc := ServeClient{ID: i, Mbps: m.MeanMbps(now), Owned: true}
		if owned != nil {
			sc.Owned = r.Net.OwnsClient(owned, r.clients[i])
		}
		out = append(out, sc)
	}
	return out
}

// ServeReport is one wgtt-serve process's end-of-run output (JSON on
// stdout with -report). Merging the parts of a partitioned run — keep
// each client figure from the process that owns it, stitch the metric
// shards with telemetry.MergeSnapshots — reproduces the single-process
// report bit for bit.
type ServeReport struct {
	Proc     int              `json:"proc"`
	Scenario string           `json:"scenario"`
	Seed     int64            `json:"seed"`
	NowNs    int64            `json:"now_ns"`
	Clients  []ServeClient    `json:"clients"`
	Metrics  *MetricsSnapshot `json:"metrics,omitempty"`
	// Trace and Anomalies are this process's flight-recorder shards
	// (-flight-recorder): records only from domains the process
	// executed, since remote domains never run here. Stitching every
	// process's Trace with StitchTrace reassembles the run's causal
	// timeline.
	Trace     []TraceRecord  `json:"trace,omitempty"`
	Anomalies []TraceAnomaly `json:"anomalies,omitempty"`
}

// TraceRecord is one flight-recorder entry (see internal/trace.Record).
type TraceRecord = trace.Record

// TraceAnomaly is one anomaly-trigger firing (internal/trace.Anomaly).
type TraceAnomaly = trace.Anomaly

// StitchTrace merges per-process flight-recorder shards into one
// deterministic causal timeline (internal/trace.Stitch).
func StitchTrace(shards ...[]TraceRecord) []TraceRecord { return trace.Stitch(shards...) }

// TraceHandoffs folds a stitched timeline into per-switch summaries
// (internal/trace.Handoffs).
func TraceHandoffs(recs []TraceRecord) []trace.Handoff { return trace.Handoffs(recs) }

// ServeScenarios lists the scenario names BuildServeScenario accepts.
// A name with a path separator or an extension is instead treated as a
// declarative scenario file (see ScenarioIsFile).
func ServeScenarios() []string { return []string{"corridor", "shuttle"} }

// ScenarioIsFile reports whether a -scenario argument names a
// declarative scenario file rather than a built-in scenario: built-in
// names are bare words, files carry a path separator or an extension.
func ScenarioIsFile(name string) bool {
	return strings.Contains(name, "/") || strings.Contains(name, ".")
}

// BuildServeScenario constructs a named scenario for wgtt-serve.
//
//   - "corridor": the three-segment two-client 25 mph ride of
//     CorridorThroughput, built through the same construction path so
//     the figures are bit-comparable, with telemetry on. Clients cross
//     every segment, so a partitioned run migrates them between
//     processes ("segs,server" is the natural two-process split).
//   - "shuttle": the same roadway, but each client shuttles inside its
//     home segment (client 0 in seg0, client 1 in seg2) and never
//     crosses a segment boundary. Partitions that cut between segments
//     ("seg0,seg1+seg2,server") therefore never migrate a client
//     between processes — the demo topology for one daemon per street
//     block.
//
// A name for which ScenarioIsFile holds loads a declarative scenario
// file (internal/scenario) instead and compiles it onto the same
// serving shape: telemetry on, DomainsSerial within the process. The
// file's own seed applies unless opt.Seed overrides it.
//
// Both scenarios run the domain-mode network serially within each
// process (DomainsSerial); parallelism comes from the partition.
func BuildServeScenario(name string, opt Options) (*ServeRun, error) {
	if ScenarioIsFile(name) {
		inner := opt.Mutate
		opt.Mutate = func(c *Config) {
			c.Telemetry = true
			// Domain mode needs a multi-segment deployment; a
			// single-segment scenario serves on the classic loop.
			if len(c.Segments) >= 2 {
				c.Domains = core.DomainsSerial
			}
			if inner != nil {
				inner(c)
			}
		}
		return LoadScenarioRun(name, opt)
	}
	switch name {
	case "corridor":
		inner := opt.Mutate
		opt.Mutate = func(c *Config) {
			c.Telemetry = true
			if inner != nil {
				inner(c)
			}
		}
		return corridorSetup(opt, core.DomainsSerial, 3, 0), nil
	case "shuttle":
		return shuttleSetup(opt), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (have corridor, shuttle)", name)
	}
}

// shuttleBounce builds a trajectory that shuttles between x0 and x1 in
// lane y for at least dur, pausing briefly at each end like a transit
// stop.
func shuttleBounce(x0, x1, y float64, dur Duration) *Waypoints {
	const (
		leg   = 1500 * Millisecond // one end-to-end sweep
		dwell = 250 * Millisecond  // stop at each end
	)
	pts := []Waypoint{{At: 0, Pos: posXY(x0, y)}}
	at := Duration(0)
	ends := [2]float64{x1, x0}
	for i := 0; at < dur+leg; i++ {
		at += dwell
		pts = append(pts, Waypoint{At: at, Pos: pts[len(pts)-1].Pos})
		at += leg
		pts = append(pts, Waypoint{At: at, Pos: posXY(ends[i%2], y)})
	}
	return NewWaypoints(pts)
}

// shuttleSetup is the "shuttle" scenario: the corridor roadway with
// segment-bound clients (see BuildServeScenario).
func shuttleSetup(opt Options) *ServeRun {
	const apsPer = 4
	cfg := DefaultConfig(SchemeWGTT)
	cfg.Seed = opt.Seed
	cfg.Segments = []SegmentSpec{{NumAPs: apsPer}, {NumAPs: apsPer}, {NumAPs: apsPer}}
	cfg.Domains = DomainsSerial
	cfg.Telemetry = true
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	n := NewNetwork(cfg)
	dur := 8 * Second
	r := &ServeRun{Net: n, Cfg: cfg, Dur: dur, APsPerSegment: apsPer, SpeedMPH: 0}

	// Segment x-ranges at the default 7.5 m pitch: seg0 covers APs at
	// 0–22.5 m, seg2 covers 60–82.5 m. The shuttles stay several AP
	// pitches clear of the segment boundaries.
	for _, span := range [][3]float64{{3, 19, 0}, {63, 79, -3}} {
		c := n.AddClient(shuttleBounce(span[0], span[1], span[2], dur))
		f := NewUDPDownlink(n, c, offeredUDPMbps)
		startAfterWarmup(n, f.Start)
		r.meters = append(r.meters, f.Meter)
		r.clients = append(r.clients, c)
	}
	return r
}
