// Command wgtt-experiments regenerates any table or figure from the
// paper's evaluation (§5) against the simulated testbed.
//
// The independent runs inside each experiment fan out across CPU cores
// by default; results are bit-identical to -serial.
//
// Usage:
//
//	wgtt-experiments -list
//	wgtt-experiments -exp fig13 [-seed 7] [-workers 4]
//	wgtt-experiments -exp all -serial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wgtt"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		seed    = flag.Int64("seed", 1, "simulation seed")
		list    = flag.Bool("list", false, "list experiments")
		serial  = flag.Bool("serial", false, "run each experiment's runs serially (bit-identical, for debugging/profiling)")
		workers = flag.Int("workers", 0, "cap parallel workers per experiment (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range wgtt.Experiments() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := wgtt.Options{Seed: *seed, Serial: *serial, Workers: *workers}
	run := func(name string) {
		e, ok := wgtt.FindExperiment(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		fmt.Println(strings.Repeat("=", 64))
		fmt.Println(e.Run(opt))
	}
	if *exp == "all" {
		for _, e := range wgtt.Experiments() {
			run(e.Name)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
