// Command wgtt-experiments regenerates any table or figure from the
// paper's evaluation (§5) against the simulated testbed.
//
// Usage:
//
//	wgtt-experiments -list
//	wgtt-experiments -exp fig13 [-seed 7]
//	wgtt-experiments -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wgtt"
)

var experiments = map[string]struct {
	desc string
	run  func(wgtt.Options) fmt.Stringer
}{
	"fig2": {"best-AP flips at ms timescale (vehicular picocell regime)",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig2BestAPSwitching(o) }},
	"fig4": {"stock 802.11r handover failure at driving speed",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig4RoamingFailure(o) }},
	"fig10": {"ESNR heatmap of the deployment",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig10ESNRHeatmap(o) }},
	"table1": {"switching protocol execution time vs offered load",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Table1SwitchTime(o, nil) }},
	"fig13": {"TCP/UDP throughput vs client speed",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig13ThroughputVsSpeed(o, nil) }},
	"fig14": {"TCP throughput timeseries at 15 mph",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig14TCPTimeseries(o) }},
	"fig15": {"UDP throughput timeseries at 15 mph",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig15UDPTimeseries(o) }},
	"fig16": {"link bit-rate CDF at 15 mph",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig16BitrateCDF(o) }},
	"table2": {"switching accuracy vs the oracle-optimal AP",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Table2SwitchingAccuracy(o) }},
	"fig17": {"per-client throughput with 1-3 clients",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig17MultiClient(o) }},
	"fig18": {"uplink loss with multi-AP vs single-AP reception",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig18UplinkLoss(o) }},
	"fig20": {"two-client driving patterns",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig20DrivingPatterns(o) }},
	"fig21": {"capacity loss vs AP-selection window W",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig21WindowSize(o, nil) }},
	"table3": {"link-layer ACK collision rate",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Table3AckCollisions(o, nil) }},
	"fig22": {"TCP throughput vs switching hysteresis",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig22Hysteresis(o, nil) }},
	"fig23": {"UDP throughput vs AP density",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig23APDensity(o, nil) }},
	"table4": {"video rebuffer ratio",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Table4VideoRebuffer(o, nil) }},
	"fig24": {"video conferencing fps",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Fig24ConferencingFPS(o, nil) }},
	"table5": {"web page load time",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Table5WebPageLoad(o, nil) }},
	"ablations": {"mechanism ablations (BA fwd, queue flush, dedup, selection)",
		func(o wgtt.Options) fmt.Stringer { return wgtt.Ablations(o) }},
}

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id (see -list), or 'all'")
		seed = flag.Int64("seed", 1, "simulation seed")
		list = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	names := make([]string, 0, len(experiments))
	for k := range experiments {
		names = append(names, k)
	}
	sort.Strings(names)

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, k := range names {
			fmt.Printf("  %-10s %s\n", k, experiments[k].desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := wgtt.Options{Seed: *seed}
	run := func(name string) {
		e, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		fmt.Println(strings.Repeat("=", 64))
		fmt.Println(e.run(opt))
	}
	if *exp == "all" {
		for _, k := range names {
			run(k)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
