// Command wgtt-experiments regenerates any table or figure from the
// paper's evaluation (§5) against the simulated testbed.
//
// The independent runs inside each experiment fan out across CPU cores
// by default; results are bit-identical to -serial.
//
// Usage:
//
//	wgtt-experiments -list
//	wgtt-experiments -exp fig13 [-seed 7] [-workers 4]
//	wgtt-experiments -exp all -serial
//	wgtt-experiments -run 'fig*'          # glob over names and tags
//	wgtt-experiments -run table -list     # filtered listing
package main

import (
	"flag"
	"fmt"
	"os"
	"path"
	"runtime"
	"runtime/pprof"
	"strings"

	"wgtt"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		runPat  = flag.String("run", "", "run the experiments whose name or tag matches this glob (e.g. 'fig*', 'table', 'micro')")
		seed    = flag.Int64("seed", 1, "simulation seed")
		list    = flag.Bool("list", false, "list experiments")
		serial  = flag.Bool("serial", false, "run each experiment's runs serially (bit-identical, for debugging/profiling)")
		workers = flag.Int("workers", 0, "cap parallel workers per experiment (0 = GOMAXPROCS)")

		parallelSegments = flag.Bool("parallel-segments", false,
			"run each multi-segment network's segments as parallel event-loop domains")

		metrics    = flag.Bool("metrics", false, "print a per-case telemetry summary after each experiment")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || (*exp == "" && *runPat == "") {
		fmt.Println("experiments:")
		for _, e := range wgtt.Experiments() {
			if *runPat != "" && !matches(e, *runPat) {
				continue
			}
			fmt.Printf("  %-10s [%s] %s\n", e.Name, strings.Join(e.Tags, ","), e.Desc)
		}
		if *exp == "" && *runPat == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := wgtt.NewOptions(wgtt.WithSeed(*seed), wgtt.WithSerial(*serial),
		wgtt.WithWorkers(*workers), wgtt.WithParallelSegments(*parallelSegments))
	var collector *wgtt.MetricsCollector
	if *metrics {
		collector = wgtt.NewMetricsCollector()
		opt.Metrics = collector
	}
	run := func(e wgtt.Experiment) {
		fmt.Println(strings.Repeat("=", 64))
		fmt.Println(e.Run(opt))
		if collector != nil {
			if s := collector.Summary(); s != "" {
				fmt.Println(s)
			}
			collector.Reset()
		}
	}

	if *runPat != "" {
		n := 0
		for _, e := range wgtt.Experiments() {
			if matches(e, *runPat) {
				run(e)
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "no experiment name or tag matches %q (try -list)\n", *runPat)
			os.Exit(2)
		}
		return
	}
	if *exp == "all" {
		for _, e := range wgtt.Experiments() {
			run(e)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		e, ok := wgtt.FindExperiment(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		run(e)
	}
}

// matches reports whether the glob (case-insensitive) matches the
// experiment's name or any of its tags.
func matches(e wgtt.Experiment, glob string) bool {
	glob = strings.ToLower(glob)
	ok, err := path.Match(glob, strings.ToLower(e.Name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -run pattern %q: %v\n", glob, err)
		os.Exit(2)
	}
	if ok {
		return true
	}
	for _, tag := range e.Tags {
		if ok, _ := path.Match(glob, strings.ToLower(tag)); ok {
			return true
		}
	}
	return false
}
