// Command wgtt-sim runs one end-to-end scenario on the simulated roadside
// testbed and prints a summary: scheme, speed, number of clients,
// workload, and duration are all flags.
//
//	wgtt-sim -scheme wgtt -mph 15 -clients 1 -workload udp -rate 30
//	wgtt-sim -scheme 11r -mph 25 -workload tcp -series
//	wgtt-sim -segments 8x7.5,8x7.5,8x7.5 -mph 25 -workload tcp
//	wgtt-sim -segments 8x7.5,8x7.5,8x7.5 -parallel-segments -workload udp
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"wgtt"
	"wgtt/internal/core"
	"wgtt/internal/trace"
)

// metricsFlag implements flag.Value for -metrics: the bare form
// (-metrics) selects the text format, the valued form (-metrics=prom)
// any of text | json | csv | prom.
type metricsFlag struct {
	on     bool
	format wgtt.MetricsFormat
}

func (f *metricsFlag) String() string { return "" }

func (f *metricsFlag) IsBoolFlag() bool { return true }

func (f *metricsFlag) Set(s string) error {
	if s == "true" { // bare -metrics
		f.on, f.format = true, wgtt.MetricsText
		return nil
	}
	if s == "false" { // -metrics=false
		f.on = false
		return nil
	}
	format, err := wgtt.ParseMetricsFormat(s)
	if err != nil {
		return err
	}
	f.on, f.format = true, format
	return nil
}

// startCPUProfile begins a pprof CPU profile; the returned func stops it.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile dumps a pprof heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	return pprof.WriteHeapProfile(f)
}

func main() {
	var (
		mph       = flag.Float64("mph", 15, "client speed (0 = parked mid-array)")
		clients   = flag.Int("clients", 1, "number of clients (following pattern)")
		workloadN = flag.String("workload", "udp", "udp | tcp | video | web | conference")
		rate      = flag.Float64("rate", 30, "UDP offered load, Mbit/s")
		series    = flag.Bool("series", false, "print 100 ms throughput series for client 0")
		traceKind = flag.String("trace-kind", "", "filter -trace output by kind: dl | ul | sw | ctl | drop (empty = all)")
		traceNode = flag.String("trace-node", "", "filter -trace output to events whose node contains this substring")
		traceOut  = flag.String("trace-out", "",
			"write the stitched flight-recorder timeline as Chrome trace_event JSON to this file (\"-\" = stdout); enables -flight-recorder 4096 when unset")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")

		scenarioPath = flag.String("scenario", "",
			"run a declarative scenario file (YAML or JSON) instead of the flag-built deployment")
		genScenario = flag.String("gen-scenario", "",
			"run a generated scenario: SEED[:SIZE] with SIZE small | medium | large (e.g. 7:medium)")
		scenarioDigest = flag.Bool("scenario-digest", false,
			"with -scenario/-gen-scenario: print the compiled scenario's content digest and exit without running")
	)
	var metrics metricsFlag
	flag.Var(&metrics, "metrics", "print end-of-run metrics; optionally -metrics=text|json|csv|prom")

	// The deployment-shaping flags (-scheme, -seed, -segments, -channel,
	// -audibility, -parallel-segments, ...) come from the surface shared
	// with wgtt-serve, plus -config for a JSON options file.
	cfg, opts, err := wgtt.LoadConfig(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kindFilter, err := trace.ParseKind(*traceKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *scenarioPath != "" || *genScenario != "" {
		if *scenarioPath != "" && *genScenario != "" {
			fmt.Fprintln(os.Stderr, "-scenario and -gen-scenario are mutually exclusive")
			os.Exit(2)
		}
		if err := runScenario(cfg, opts, *scenarioPath, *genScenario, *scenarioDigest, metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *scenarioDigest {
		fmt.Fprintln(os.Stderr, "-scenario-digest needs -scenario or -gen-scenario")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	scheme := cfg.Scheme
	cfg.Telemetry = metrics.on
	if *traceOut != "" && cfg.FlightRecorder == 0 {
		cfg.FlightRecorder = 4096
	}
	if opts.ParallelSegments && *workloadN != "udp" && *workloadN != "tcp" && *workloadN != "conference" {
		fmt.Fprintf(os.Stderr, "-parallel-segments supports the udp, tcp, and conference workloads, not %q\n", *workloadN)
		os.Exit(2)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	n := wgtt.NewNetwork(cfg)
	lo, hi := cfg.RoadSpanX()

	var trajs []wgtt.Trajectory
	var dur wgtt.Duration
	if *mph == 0 {
		for i := 0; i < *clients; i++ {
			trajs = append(trajs, wgtt.Stationary{X: (lo + hi) / 2, Y: float64(-3 * i)})
		}
		dur = 10 * wgtt.Second
	} else {
		trajs = wgtt.Scenario(wgtt.Following, *clients, lo-5, 0, *mph)
		dur = wgtt.Duration((hi - lo + 10) / trajs[0].SpeedMps() * 1e9)
	}

	type meterer interface{ Mbps(wgtt.Time) float64 }
	var udps []*wgtt.UDPDownlink
	var meters []meterer
	var videos []*wgtt.Video
	var pages []*wgtt.PageLoad
	var confs []*wgtt.Conference

	for _, traj := range trajs {
		c := n.AddClient(traj)
		switch *workloadN {
		case "udp":
			f := wgtt.NewUDPDownlink(n, c, *rate)
			n.Loop.After(100*wgtt.Millisecond, f.Start)
			udps = append(udps, f)
			meters = append(meters, f)
		case "tcp":
			f := wgtt.NewTCPDownlink(n, c, 0)
			n.Loop.After(100*wgtt.Millisecond, f.Start)
			meters = append(meters, f)
		case "video":
			v := wgtt.NewVideo(n, c)
			n.Loop.After(100*wgtt.Millisecond, v.Start)
			videos = append(videos, v)
		case "web":
			w := wgtt.NewPageLoad(n, c)
			n.Loop.After(100*wgtt.Millisecond, w.Start)
			pages = append(pages, w)
		case "conference":
			cf := wgtt.NewConference(n, c)
			if opts.ParallelSegments {
				// Domain mode: the call's client-side timers must be
				// armed from the construction goroutine before the
				// domains start, not from the server loop mid-run.
				cf.Start()
			} else {
				n.Loop.After(100*wgtt.Millisecond, cf.Start)
			}
			confs = append(confs, cf)
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadN)
			os.Exit(2)
		}
	}

	n.Run(dur)
	now := n.Loop.Now()

	fmt.Printf("scheme=%v  speed=%v mph  clients=%d  workload=%s  sim=%.1fs\n\n",
		scheme, *mph, *clients, *workloadN, now.Seconds())
	for i, m := range meters {
		fmt.Printf("client %d: %.1f Mbit/s\n", i, m.Mbps(now))
	}
	for i, f := range udps {
		fmt.Printf("client %d: loss %.3f\n", i, f.Sink.LossRate())
	}
	for i, v := range videos {
		fmt.Printf("client %d: rebuffer ratio %.2f (%d stalls)\n", i, v.RebufferRatio(), v.Rebuffers())
	}
	for i, w := range pages {
		fmt.Printf("client %d: page load %.2f s (done=%v)\n", i, w.LoadTimeSeconds(), w.Done())
	}
	for i, cf := range confs {
		fmt.Printf("client %d: fps median %.0f, p85 %.0f\n", i,
			cf.FPSSamples.Quantile(0.5), cf.FPSSamples.Quantile(0.85))
	}
	if scheme == wgtt.SchemeWGTT {
		var issued, acked, dups, exported, imported int
		for _, ctrl := range n.Controllers() {
			issued += ctrl.SwitchesIssued
			acked += ctrl.SwitchesAcked
			dups += ctrl.UplinkDuplicates
			exported += ctrl.HandoffsExported
			imported += ctrl.HandoffsImported
		}
		fmt.Printf("\nswitches: %d issued, %d completed; uplink dups removed: %d\n",
			issued, acked, dups)
		if len(n.Controllers()) > 1 {
			fmt.Printf("cross-segment handoffs: %d exported, %d imported\n", exported, imported)
		}
		if nodes := n.FederationNodes(); len(nodes) > 0 {
			var rel, abandoned, releases int
			for _, f := range nodes {
				rel += f.Relocates
				abandoned += f.RelocatesAbandoned
			}
			for _, ctrl := range n.Controllers() {
				releases += ctrl.FedReleases
			}
			outage, random := n.TrunkFaultDrops()
			fmt.Printf("federation: %d re-locates (%d abandoned), %d releases; trunk drops: %d outage, %d random; lost clients: %d\n",
				rel, abandoned, releases, outage, random, len(n.LostClients()))
		}
	}
	if opts.Trace > 0 && n.Trace != nil {
		fmt.Println("\nevent trace (most recent):")
		_ = trace.DumpEvents(os.Stdout, n.Trace.Filter(kindFilter, *traceNode))
	}
	if *traceOut != "" {
		out := os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := n.WriteChromeTrace(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *traceOut != "-" {
			fmt.Printf("\nflight-recorder timeline: %s (load in ui.perfetto.dev)\n", *traceOut)
		}
	}
	if anoms := n.FlightAnomalies(); len(anoms) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d anomalies triggered:\n", len(anoms))
		_ = trace.DumpAnomalies(os.Stderr, n.FlightRecords(), anoms, 5*wgtt.Millisecond)
	}
	if metrics.on {
		if snap := n.MetricsSnapshot(); snap != nil {
			fmt.Println()
			if err := snap.Write(os.Stdout, metrics.format); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *series && len(meters) > 0 {
		if f, ok := meters[0].(*wgtt.UDPDownlink); ok {
			ts, mbps := f.Meter.Series()
			fmt.Println("\nt(s)  Mbit/s")
			for i := range ts {
				fmt.Printf("%5.1f %6.1f\n", ts[i], mbps[i])
			}
		}
		if f, ok := meters[0].(*wgtt.TCPDownlink); ok {
			ts, mbps := f.Meter.Series()
			fmt.Println("\nt(s)  Mbit/s")
			for i := range ts {
				fmt.Printf("%5.1f %6.1f\n", ts[i], mbps[i])
			}
		}
	}
}

// flagWasSet reports whether the named flag was explicitly set on the
// command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseGenSpec splits a -gen-scenario argument: SEED[:SIZE].
func parseGenSpec(s string) (int64, string, error) {
	seedStr, size, _ := strings.Cut(s, ":")
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad -gen-scenario %q: want SEED[:SIZE]", s)
	}
	return seed, size, nil
}

// runScenario is the declarative-scenario path: load or generate a
// scenario, compile it, and either print the content digest (the CI
// determinism gate diffs two of these) or build and run it.
func runScenario(cfg wgtt.Config, opts wgtt.DeployOptions, path, gen string, digestOnly bool, metrics metricsFlag) error {
	var spec *wgtt.ScenarioSpec
	var err error
	if path != "" {
		spec, err = wgtt.LoadScenario(path)
	} else {
		var seed int64
		var size string
		if seed, size, err = parseGenSpec(gen); err == nil {
			spec, err = wgtt.GenerateScenario(seed, size)
		}
	}
	if err != nil {
		return err
	}
	// The scenario file's own seed rules unless -seed was explicitly
	// given (the default would otherwise silently override it).
	var seed int64
	if flagWasSet("seed") {
		seed = cfg.Seed
	}
	comp, err := wgtt.CompileScenario(spec, seed)
	if err != nil {
		return err
	}
	if digestOnly {
		fmt.Println(comp.Digest())
		return nil
	}
	r := wgtt.BuildScenarioRun(comp, wgtt.Options{Mutate: func(c *wgtt.Config) {
		c.Telemetry = metrics.on
		if opts.ParallelSegments && len(c.Segments) >= 2 {
			c.Domains = core.DomainsParallel
		}
		if cfg.Audibility != "" {
			c.Audibility = cfg.Audibility
		}
		if cfg.ChannelBackend != "" {
			c.ChannelBackend = cfg.ChannelBackend
		}
		if cfg.FlightRecorder != 0 {
			c.FlightRecorder = cfg.FlightRecorder
		}
	}})
	r.Net.Run(r.Dur)
	now := r.Net.Loop.Now()

	fmt.Printf("scenario=%s  seed=%d  segments=%d  sim=%.1fs\n\n",
		comp.Name, r.Cfg.Seed, len(r.Cfg.Segments), now.Seconds())
	for _, f := range r.Figures(nil) {
		fmt.Printf("client %d: %.1f Mbit/s\n", f.ID, f.Mbps)
	}
	if r.Cfg.Scheme == wgtt.SchemeWGTT {
		var issued, acked int
		for _, ctrl := range r.Net.Controllers() {
			issued += ctrl.SwitchesIssued
			acked += ctrl.SwitchesAcked
		}
		fmt.Printf("\nswitches: %d issued, %d completed", issued, acked)
		if len(r.Net.FederationNodes()) > 0 {
			fmt.Printf("; lost clients: %d", len(r.Net.LostClients()))
		}
		fmt.Println()
	}
	if metrics.on {
		if snap := r.Net.MetricsSnapshot(); snap != nil {
			fmt.Println()
			if err := snap.Write(os.Stdout, metrics.format); err != nil {
				return err
			}
		}
	}
	return nil
}
