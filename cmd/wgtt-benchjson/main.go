// Command wgtt-benchjson converts `go test -bench` output on stdin into
// JSON on stdout, for committing benchmark baselines:
//
//	go test -bench=. -benchtime=1x ./... | go run ./cmd/wgtt-benchjson > BENCH_baseline.json
package main

import (
	"fmt"
	"os"

	"wgtt/internal/stats"
)

func main() {
	results, err := stats.ParseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wgtt-benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "wgtt-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if err := stats.WriteBenchJSON(os.Stdout, results); err != nil {
		fmt.Fprintf(os.Stderr, "wgtt-benchjson: %v\n", err)
		os.Exit(1)
	}
}
