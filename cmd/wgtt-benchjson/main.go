// Command wgtt-benchjson maintains the repo's benchmark baselines.
//
// Default mode converts `go test -bench` output on stdin into JSON on
// stdout, for committing benchmark baselines:
//
//	go test -bench=. -benchtime=1x ./... | go run ./cmd/wgtt-benchjson > BENCH_baseline.json
//
// Gate mode re-reads such a baseline and fails when the bench output on
// stdin regresses its allocs/op budget by more than 10%:
//
//	go test -bench=... -benchmem . | go run ./cmd/wgtt-benchjson -gate BENCH_baseline.json
//
// Scale mode rides the city-scale grid (segments × clients over one
// shared medium) and emits — or, with -compare, checks — BENCH_scale.json:
//
//	go run ./cmd/wgtt-benchjson -scale > BENCH_scale.json
//	go run ./cmd/wgtt-benchjson -scale -compare BENCH_scale.json -segments 1,8 -clients 2,64
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"wgtt"
	"wgtt/internal/stats"
)

// allocGateSlack is how far allocs/op may drift above the pinned
// baseline before the gate fails.
const allocGateSlack = 1.10

// mallocsSlack is the cross-run tolerance on a scale cell's Mallocs
// count (map growth and GC internals wobble; the datapath does not).
const mallocsSlack = 1.30

func main() {
	var (
		scale    = flag.Bool("scale", false, "run the scale grid instead of parsing bench output")
		compare  = flag.String("compare", "", "with -scale: compare against this BENCH_scale.json instead of emitting")
		gate     = flag.String("gate", "", "gate stdin bench output against this baseline's allocs/op budgets")
		seed     = flag.Int64("seed", 1, "scale grid seed")
		segments = flag.String("segments", "1,8,24", "scale grid segment counts")
		clients  = flag.String("clients", "2,64,1024", "scale grid client counts")
		dur      = flag.Duration("dur", 2*time.Second, "simulated duration per scale cell")
	)
	flag.Parse()

	switch {
	case *scale:
		runScale(*seed, intList(*segments), intList(*clients), *dur, *compare)
	case *gate != "":
		runGate(*gate)
	default:
		results, err := stats.ParseBench(os.Stdin)
		if err != nil {
			fatal("%v", err)
		}
		if len(results) == 0 {
			fatal("no benchmark lines on stdin")
		}
		if err := stats.WriteBenchJSON(os.Stdout, results); err != nil {
			fatal("%v", err)
		}
	}
}

func runScale(seed int64, segs, clis []int, dur time.Duration, compare string) {
	cells := wgtt.RunScaleGrid(seed, segs, clis, wgtt.Duration(dur))
	if compare == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cells); err != nil {
			fatal("%v", err)
		}
		return
	}
	data, err := os.ReadFile(compare)
	if err != nil {
		fatal("%v", err)
	}
	var base []wgtt.ScaleCell
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("bad %s: %v", compare, err)
	}
	failed := false
	for _, c := range cells {
		b, ok := findCell(base, c)
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %dx%d: no matching cell in %s\n",
				c.Segments, c.Clients, compare)
			failed = true
			continue
		}
		// Mbps is deterministic for a seed: any drift is a real
		// behaviour change, not noise.
		if math.Abs(c.Mbps-b.Mbps) > 1e-6*math.Max(1, math.Abs(b.Mbps)) {
			fmt.Fprintf(os.Stderr, "FAIL %dx%d: Mbps %.9f != baseline %.9f\n",
				c.Segments, c.Clients, c.Mbps, b.Mbps)
			failed = true
		}
		if float64(c.Mallocs) > float64(b.Mallocs)*mallocsSlack {
			fmt.Fprintf(os.Stderr, "FAIL %dx%d: Mallocs %d > baseline %d +%d%%\n",
				c.Segments, c.Clients, c.Mallocs, b.Mallocs, int(mallocsSlack*100-100))
			failed = true
		}
		fmt.Fprintf(os.Stderr, "ok %dx%d: %.3f Mbps, %d mallocs (baseline %d), %s wall\n",
			c.Segments, c.Clients, c.Mbps, c.Mallocs, b.Mallocs,
			time.Duration(c.WallNs))
	}
	if failed {
		os.Exit(1)
	}
}

func findCell(cells []wgtt.ScaleCell, want wgtt.ScaleCell) (wgtt.ScaleCell, bool) {
	for _, c := range cells {
		if c.Segments == want.Segments && c.Clients == want.Clients &&
			c.SimSeconds == want.SimSeconds {
			return c, true
		}
	}
	return wgtt.ScaleCell{}, false
}

func runGate(baselinePath string) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal("%v", err)
	}
	var base []stats.BenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("bad %s: %v", baselinePath, err)
	}
	budget := make(map[string]float64)
	for _, b := range base {
		if b.AllocsPerOp > 0 {
			budget[b.Name] = b.AllocsPerOp
		}
	}
	results, err := stats.ParseBench(os.Stdin)
	if err != nil {
		fatal("%v", err)
	}
	if len(results) == 0 {
		fatal("no benchmark lines on stdin")
	}
	failed, gated := false, 0
	for _, r := range results {
		want, ok := budget[r.Name]
		if !ok || r.AllocsPerOp == 0 {
			continue
		}
		gated++
		if r.AllocsPerOp > want*allocGateSlack {
			fmt.Fprintf(os.Stderr, "FAIL %s: %.0f allocs/op > budget %.0f +%d%%\n",
				r.Name, r.AllocsPerOp, want, int(allocGateSlack*100-100))
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "ok %s: %.0f allocs/op (budget %.0f)\n",
				r.Name, r.AllocsPerOp, want)
		}
	}
	if gated == 0 {
		fatal("no stdin benchmark matched a baseline allocs/op budget")
	}
	if failed {
		os.Exit(1)
	}
}

func intList(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fatal("bad count %q", f)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wgtt-benchjson: "+format+"\n", args...)
	os.Exit(1)
}
