// Command wgtt-serve is the long-running form of the simulator: one
// daemon per process, each hosting a share of a scenario's execution
// domains and exchanging cross-domain envelopes with its peers over a
// serialized trunk transport (unix sockets locally, TCP across hosts).
//
// Every process of a run is started with the identical deployment
// flags (construction is SPMD — each builds the whole network and
// executes only its -partition share) plus its own -proc index:
//
//	wgtt-serve -scenario corridor -partition segs,server \
//	    -peers unix:/tmp/w0.sock,unix:/tmp/w1.sock -proc 0 -report &
//	wgtt-serve -scenario corridor -partition segs,server \
//	    -peers unix:/tmp/w0.sock,unix:/tmp/w1.sock -proc 1 -report
//
// Without -peers the daemon runs the whole scenario in-process — the
// reference a sharded run must reproduce bit for bit.
//
// -http serves the Prometheus exposition of the process's owned
// telemetry shards at /metrics, refreshed at every slice boundary.
// -ckpt journals every exchange; at -checkpoint-at the daemon writes a
// checkpoint sidecar, and -restore resumes from it by replaying the
// journal through the identical slice schedule before rejoining the
// live mesh.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"

	"wgtt"
	"wgtt/internal/core"
	"wgtt/internal/sim"
	"wgtt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wgtt-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "corridor",
			"scenario to host: "+strings.Join(wgtt.ServeScenarios(), " | "))
		proc  = flag.Int("proc", 0, "this process's index into -peers / -partition")
		peers = flag.String("peers", "",
			"comma-separated peer addresses (unix:/path or tcp:host:port), one per process; empty = run the whole scenario in this process")
		partition = flag.String("partition", "segs,server",
			"domain-to-process assignment: comma-separated groups, domains joined by +, e.g. seg0,seg1+seg2,server")
		sliceMs = flag.Int64("slice", 0,
			"advance in slices of this many virtual milliseconds (0 = one slice to the end); slice boundaries refresh -http metrics and are the only checkpoint sites")
		untilMs = flag.Int64("until", 0,
			"stop at this virtual time in milliseconds (0 = the scenario's natural duration)")
		ckptAtMs = flag.Int64("checkpoint-at", 0,
			"write a checkpoint at this virtual millisecond (requires -ckpt; added to the slice schedule)")
		ckptPath = flag.String("ckpt", "",
			"checkpoint path prefix: journals exchanges to PREFIX.journal and writes PREFIX.ckpt at -checkpoint-at")
		restore = flag.Bool("restore", false,
			"resume from -ckpt: replay the journal to the checkpoint, then rejoin the live mesh")
		httpAddr = flag.String("http", "",
			"serve the owned telemetry shards in Prometheus exposition format at this address's /metrics")
		report = flag.Bool("report", false, "print the end-of-run JSON report on stdout")
	)
	cfg, _, err := wgtt.LoadConfig(flag.CommandLine, os.Args[1:])
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, fmt.Sprintf("wgtt-serve[%d] ", *proc), log.Lmicroseconds)

	// The scenario fixes the deployment shape (scheme, segments, domain
	// mode); the shared flag surface contributes the seed and the
	// datapath knobs every process must agree on.
	opt := wgtt.Options{Seed: cfg.Seed, Mutate: func(c *wgtt.Config) {
		c.Audibility = cfg.Audibility
		c.ChannelBackend = cfg.ChannelBackend
	}}
	sr, err := wgtt.BuildServeScenario(*scenario, opt)
	if err != nil {
		return err
	}
	if err := sr.Cfg.Validate(); err != nil {
		return err
	}

	dur := sr.Dur
	if *untilMs > 0 {
		dur = wgtt.Duration(*untilMs) * wgtt.Millisecond
	}
	slice := wgtt.Duration(*sliceMs) * wgtt.Millisecond
	ckptAt := wgtt.Duration(*ckptAtMs) * wgtt.Millisecond
	if ckptAt > 0 && *ckptPath == "" {
		return fmt.Errorf("-checkpoint-at needs -ckpt")
	}
	if ckptAt >= dur {
		ckptAt = 0
	}
	sched := schedule(dur, slice, ckptAt)

	if *peers == "" {
		if *restore || *ckptPath != "" {
			return fmt.Errorf("-ckpt/-restore checkpoint a partitioned run; they need -peers")
		}
		return runSingle(sr, sched, *scenario, cfg.Seed, *report, *httpAddr)
	}
	addrs := strings.Split(*peers, ",")
	return runPartitioned(sr, sched, serveParams{
		scenario: *scenario, seed: cfg.Seed,
		audibility: cfg.Audibility, channel: cfg.ChannelBackend,
		proc: *proc, addrs: addrs, partition: *partition,
		dur: dur, slice: slice, ckptAt: ckptAt,
		ckptPath: *ckptPath, restore: *restore,
		httpAddr: *httpAddr, report: *report,
	}, logger)
}

// schedule lists the RunPartitioned boundaries: slice multiples, the
// checkpoint instant, and the end — sorted, deduplicated. Every
// process derives the identical schedule from the identical flags (the
// config digest guarantees the flags agree).
func schedule(dur, slice, ckptAt wgtt.Duration) []wgtt.Duration {
	var b []wgtt.Duration
	if slice > 0 {
		for t := slice; t < dur; t += slice {
			b = append(b, t)
		}
	}
	if ckptAt > 0 && ckptAt < dur {
		b = append(b, ckptAt)
	}
	b = append(b, dur)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:1]
	for _, t := range b[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// promCache is the /metrics payload, refreshed at slice boundaries by
// the sim goroutine and served by HTTP handler goroutines.
type promCache struct {
	mu   sync.Mutex
	body []byte
}

func (p *promCache) refresh(snap *wgtt.MetricsSnapshot) {
	if snap == nil {
		return
	}
	var sb strings.Builder
	if err := snap.Write(&sb, wgtt.MetricsProm); err != nil {
		return
	}
	p.mu.Lock()
	p.body = []byte(sb.String())
	p.mu.Unlock()
}

func (p *promCache) serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.mu.Lock()
		body := p.body
		p.mu.Unlock()
		w.Write(body)
	})
	go http.Serve(ln, mux) //nolint:errcheck — lives for the process
	return nil
}

// runSingle hosts the whole scenario in one process: the bit-exact
// reference for any partitioning of the same flags.
func runSingle(sr *wgtt.ServeRun, sched []wgtt.Duration, scenario string, seed int64, report bool, httpAddr string) error {
	var prom promCache
	if httpAddr != "" {
		if err := prom.serve(httpAddr); err != nil {
			return err
		}
	}
	for _, t := range sched {
		sr.Net.Run(t)
		prom.refresh(sr.Net.MetricsSnapshot())
	}
	if report {
		return writeReport(os.Stdout, wgtt.ServeReport{
			Proc: 0, Scenario: scenario, Seed: seed,
			NowNs: int64(sr.Now()), Clients: sr.Figures(nil),
			Metrics: sr.Net.MetricsSnapshot(),
		})
	}
	return nil
}

// serveParams carries the resolved partitioned-run settings.
type serveParams struct {
	scenario, audibility, channel string
	seed                          int64
	proc                          int
	addrs                         []string
	partition                     string
	dur, slice, ckptAt            wgtt.Duration
	ckptPath                      string
	restore                       bool
	httpAddr                      string
	report                        bool
}

// digest canonicalizes everything two processes must agree on for
// their exchange streams to be compatible. The transport handshake and
// the checkpoint sidecar both verify it.
func (p serveParams) digest() [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf(
		"wgtt-serve|1|scenario=%s|seed=%d|aud=%s|chan=%s|part=%s|procs=%d|slice=%d|until=%d|ckpt=%d",
		p.scenario, p.seed, p.audibility, p.channel,
		p.partition, len(p.addrs), int64(p.slice), int64(p.dur), int64(p.ckptAt))))
}

func runPartitioned(sr *wgtt.ServeRun, sched []wgtt.Duration, p serveParams, logger *log.Logger) error {
	part, err := core.ParsePartition(p.partition)
	if err != nil {
		return err
	}
	if len(part) != len(p.addrs) {
		return fmt.Errorf("partition has %d process groups but -peers lists %d addresses", len(part), len(p.addrs))
	}
	if p.proc < 0 || p.proc >= len(p.addrs) {
		return fmt.Errorf("-proc %d out of range for %d processes", p.proc, len(p.addrs))
	}
	procs, err := part.Resolve(sr.Net)
	if err != nil {
		return err
	}
	owned := procs[p.proc]
	digest := p.digest()

	// Restore first: replay the journaled exchanges through the same
	// schedule prefix the checkpointing run executed.
	var (
		journal  *wire.Journal
		startSeq int64
		resumeAt wgtt.Duration
	)
	journalPath := p.ckptPath + ".journal"
	sidecarPath := p.ckptPath + ".ckpt"
	if p.restore {
		if p.ckptPath == "" {
			return fmt.Errorf("-restore needs -ckpt")
		}
		ck, err := wire.ReadCheckpoint(sidecarPath, digest)
		if err != nil {
			return err
		}
		recs, offset, err := wire.ReadJournal(journalPath, digest, ck.Exchanges)
		if err != nil {
			return err
		}
		if offset != ck.Offset {
			return fmt.Errorf("journal %s: %d records end at byte %d, checkpoint says %d",
				journalPath, ck.Exchanges, offset, ck.Offset)
		}
		replay := wire.NewReplayBus(recs)
		for _, t := range sched {
			if int64(t) > ck.At {
				break
			}
			if err := sr.Net.RunPartitioned(t, owned, replay); err != nil {
				return fmt.Errorf("replay to %v: %w", t, err)
			}
			resumeAt = t
		}
		if int64(resumeAt) != ck.At {
			return fmt.Errorf("checkpoint at %d is not on the slice schedule", ck.At)
		}
		if rem := replay.Remaining(); rem != 0 {
			return fmt.Errorf("replay stopped %d journal records short of the checkpoint", rem)
		}
		startSeq = ck.Exchanges
		journal, err = wire.OpenJournalAppend(journalPath, ck.Offset)
		if err != nil {
			return err
		}
		logger.Printf("restored to t=%v from %s (%d exchanges replayed)", resumeAt, p.ckptPath, ck.Exchanges)
	} else if p.ckptPath != "" {
		journal, err = wire.CreateJournal(journalPath, digest)
		if err != nil {
			return err
		}
	}
	if journal != nil {
		defer journal.Close()
	}

	tp, err := wire.New(wire.Config{
		Self: p.proc, Addrs: p.addrs, Digest: digest,
		StartSeq: startSeq, Logf: logger.Printf,
	})
	if err != nil {
		return err
	}
	defer tp.Close()
	var bus sim.PeerBus = tp
	if journal != nil {
		bus = &wire.JournalBus{Bus: tp, J: journal}
	}

	var prom promCache
	if p.httpAddr != "" {
		if err := prom.serve(p.httpAddr); err != nil {
			return err
		}
	}

	for _, t := range sched {
		if t <= resumeAt {
			continue
		}
		if err := sr.Net.RunPartitioned(t, owned, bus); err != nil {
			return err
		}
		prom.refresh(sr.Net.MetricsSnapshotOwned(owned))
		if t == p.ckptAt && !p.restore {
			off, err := journal.Offset()
			if err != nil {
				return err
			}
			if err := journal.Sync(); err != nil {
				return err
			}
			ck := wire.Checkpoint{
				Exchanges: sr.Net.Coord.Exchanges(), At: int64(sr.Now()),
				Offset: off, Digest: wire.DigestHex(digest),
			}
			if err := wire.WriteCheckpoint(sidecarPath, ck); err != nil {
				return err
			}
			logger.Printf("checkpoint at t=%v: %d exchanges, journal byte %d", t, ck.Exchanges, off)
		}
	}

	if p.report {
		return writeReport(os.Stdout, wgtt.ServeReport{
			Proc: p.proc, Scenario: p.scenario, Seed: p.seed,
			NowNs: int64(sr.Now()), Clients: sr.Figures(owned),
			Metrics: sr.Net.MetricsSnapshotOwned(owned),
		})
	}
	return nil
}

func writeReport(w *os.File, rep wgtt.ServeReport) error {
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}
