// Command wgtt-serve is the long-running form of the simulator: one
// daemon per process, each hosting a share of a scenario's execution
// domains and exchanging cross-domain envelopes with its peers over a
// serialized trunk transport (unix sockets locally, TCP across hosts).
//
// Every process of a run is started with the identical deployment
// flags (construction is SPMD — each builds the whole network and
// executes only its -partition share) plus its own -proc index:
//
//	wgtt-serve -scenario corridor -partition segs,server \
//	    -peers unix:/tmp/w0.sock,unix:/tmp/w1.sock -proc 0 -report &
//	wgtt-serve -scenario corridor -partition segs,server \
//	    -peers unix:/tmp/w0.sock,unix:/tmp/w1.sock -proc 1 -report
//
// Without -peers the daemon runs the whole scenario in-process — the
// reference a sharded run must reproduce bit for bit.
//
// -http serves the Prometheus exposition of the process's owned
// telemetry shards at /metrics, refreshed at every slice boundary.
// -ckpt journals every exchange; at -checkpoint-at the daemon writes a
// checkpoint sidecar, and -restore resumes from it by replaying the
// journal through the identical slice schedule before rejoining the
// live mesh.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"wgtt"
	"wgtt/internal/core"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
	"wgtt/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wgtt-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "corridor",
			"scenario to host: "+strings.Join(wgtt.ServeScenarios(), " | "))
		proc  = flag.Int("proc", 0, "this process's index into -peers / -partition")
		peers = flag.String("peers", "",
			"comma-separated peer addresses (unix:/path or tcp:host:port), one per process; empty = run the whole scenario in this process")
		partition = flag.String("partition", "segs,server",
			"domain-to-process assignment: comma-separated groups, domains joined by +, e.g. seg0,seg1+seg2,server")
		sliceMs = flag.Int64("slice", 0,
			"advance in slices of this many virtual milliseconds (0 = one slice to the end); slice boundaries refresh -http metrics and are the only checkpoint sites")
		untilMs = flag.Int64("until", 0,
			"stop at this virtual time in milliseconds (0 = the scenario's natural duration)")
		ckptAtMs = flag.Int64("checkpoint-at", 0,
			"write a checkpoint at this virtual millisecond (requires -ckpt; added to the slice schedule)")
		ckptPath = flag.String("ckpt", "",
			"checkpoint path prefix: journals exchanges to PREFIX.journal and writes PREFIX.ckpt at -checkpoint-at")
		restore = flag.Bool("restore", false,
			"resume from -ckpt: replay the journal to the checkpoint, then rejoin the live mesh")
		httpAddr = flag.String("http", "",
			"serve the owned telemetry shards in Prometheus exposition format at this address's /metrics")
		report = flag.Bool("report", false, "print the end-of-run JSON report on stdout")
	)
	cfg, _, err := wgtt.LoadConfig(flag.CommandLine, os.Args[1:])
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, fmt.Sprintf("wgtt-serve[%d] ", *proc), log.Lmicroseconds)

	// The scenario fixes the deployment shape (scheme, segments, domain
	// mode); the shared flag surface contributes the seed and the
	// datapath knobs every process must agree on. The copies are
	// conditional so an unset flag never stomps a value a scenario file
	// compiled in (e.g. its channel backend).
	opt := wgtt.Options{Seed: cfg.Seed, Mutate: func(c *wgtt.Config) {
		if cfg.Audibility != "" {
			c.Audibility = cfg.Audibility
		}
		if cfg.ChannelBackend != "" {
			c.ChannelBackend = cfg.ChannelBackend
		}
		if cfg.FlightRecorder != 0 {
			c.FlightRecorder = cfg.FlightRecorder
		}
		if cfg.HandoffBandHiMs != 0 {
			c.HandoffBandLoMs = cfg.HandoffBandLoMs
			c.HandoffBandHiMs = cfg.HandoffBandHiMs
		}
		if cfg.UnownedSpike != 0 {
			c.UnownedSpike = cfg.UnownedSpike
		}
	}}
	if wgtt.ScenarioIsFile(*scenario) && !flagWasSet("seed") {
		// Without an explicit -seed the scenario file's own seed rules;
		// a set flag (even -seed 1) overrides it on every process.
		opt.Seed = 0
	}
	sr, err := wgtt.BuildServeScenario(*scenario, opt)
	if err != nil {
		return err
	}
	if err := sr.Cfg.Validate(); err != nil {
		return err
	}

	dur := sr.Dur
	if *untilMs > 0 {
		dur = wgtt.Duration(*untilMs) * wgtt.Millisecond
	}
	slice := wgtt.Duration(*sliceMs) * wgtt.Millisecond
	ckptAt := wgtt.Duration(*ckptAtMs) * wgtt.Millisecond
	if ckptAt > 0 && *ckptPath == "" {
		return fmt.Errorf("-checkpoint-at needs -ckpt")
	}
	if ckptAt >= dur {
		ckptAt = 0
	}
	sched := schedule(dur, slice, ckptAt)

	if *peers == "" {
		if *restore || *ckptPath != "" {
			return fmt.Errorf("-ckpt/-restore checkpoint a partitioned run; they need -peers")
		}
		return runSingle(sr, sched, *scenario, sr.Cfg.Seed, *report, *httpAddr)
	}
	addrs := strings.Split(*peers, ",")
	return runPartitioned(sr, sched, serveParams{
		scenario: *scenario, seed: sr.Cfg.Seed,
		audibility: cfg.Audibility, channel: cfg.ChannelBackend,
		proc: *proc, addrs: addrs, partition: *partition,
		dur: dur, slice: slice, ckptAt: ckptAt,
		ckptPath: *ckptPath, restore: *restore,
		httpAddr: *httpAddr, report: *report,
	}, logger)
}

// flagWasSet reports whether the named flag was explicitly set on the
// command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// schedule lists the RunPartitioned boundaries: slice multiples, the
// checkpoint instant, and the end — sorted, deduplicated. Every
// process derives the identical schedule from the identical flags (the
// config digest guarantees the flags agree).
func schedule(dur, slice, ckptAt wgtt.Duration) []wgtt.Duration {
	var b []wgtt.Duration
	if slice > 0 {
		for t := slice; t < dur; t += slice {
			b = append(b, t)
		}
	}
	if ckptAt > 0 && ckptAt < dur {
		b = append(b, ckptAt)
	}
	b = append(b, dur)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:1]
	for _, t := range b[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// httpState backs the daemon's introspection endpoints:
//
//	/metrics       registry exposition, cached at slice boundaries;
//	               ?fresh=1 re-snapshots when the sim is quiescent.
//	               Wall-clock transport/journal counters are appended
//	               live at every scrape (they are atomic).
//	/healthz       round progress and peer connectivity, JSON.
//	/varz          build info, config digest, partition map, JSON.
//	/debug/tracez  the owned flight-recorder shards as Chrome
//	               trace_event JSON (?anomalies=1 for the text dump).
//
// The sim goroutine holds quiesce for the duration of every slice;
// handlers acquire it (waiting up to one slice's wall time, bounded —
// see lockQuiesce) to read fresh simulation state at a boundary, and
// fall back to the cached payload (or 503, for tracez) when a slice
// outlasts the wait.
type httpState struct {
	mu     sync.Mutex
	body   []byte // cached /metrics registry payload
	health healthInfo

	quiesce sync.Mutex

	snap   func() *wgtt.MetricsSnapshot                     // quiescence only
	waits  func() []sim.WaitStat                            // quiescence only (cached into body)
	flight func() ([]wgtt.TraceRecord, []wgtt.TraceAnomaly) // quiescence only
	peers  func() []wire.PeerState                          // safe anytime; nil single-process
	extra  func(w io.Writer)                                // wall-clock prom lines, safe anytime
	varz   []byte
}

// healthInfo is the deterministic half of /healthz, refreshed by the
// sim goroutine at slice boundaries; Peers is filled live at scrape.
type healthInfo struct {
	Proc     int              `json:"proc"`
	NowNs    int64            `json:"now_ns"`
	DurNs    int64            `json:"dur_ns"`
	Progress float64          `json:"progress"`
	Done     bool             `json:"done"`
	Peers    []wire.PeerState `json:"peers,omitempty"`
}

// refresh rebuilds the cached /metrics payload. Called by the sim
// goroutine at slice boundaries (quiescent), so it may evaluate the
// registry snapshot and the coordinator's wait histograms directly.
func (s *httpState) refresh(snap *wgtt.MetricsSnapshot) {
	if s == nil || snap == nil {
		return
	}
	var sb strings.Builder
	if err := snap.Write(&sb, wgtt.MetricsProm); err != nil {
		return
	}
	if s.waits != nil {
		writeWaitStats(&sb, s.waits())
	}
	s.mu.Lock()
	s.body = []byte(sb.String())
	s.mu.Unlock()
}

// setHealth records the run's progress at a slice boundary.
func (s *httpState) setHealth(proc int, now wgtt.Time, dur wgtt.Duration) {
	if s == nil {
		return
	}
	h := healthInfo{Proc: proc, NowNs: int64(now), DurNs: int64(dur)}
	if dur > 0 {
		h.Progress = float64(now) / float64(dur)
	}
	h.Done = h.Progress >= 1
	s.mu.Lock()
	s.health = h
	s.mu.Unlock()
}

// writeWaitStats renders the coordinator's barrier-wait histograms as
// Prometheus lines. Wall-clock state — deliberately outside the
// registry (whose output is byte-compared across process layouts).
func writeWaitStats(w io.Writer, stats []sim.WaitStat) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "# coordinator barrier waits (wall clock)\n")
	for _, st := range stats {
		fmt.Fprintf(w, "wgtt_coord_wait_rounds{domain=%q} %d\n", st.Domain, st.Rounds)
		fmt.Fprintf(w, "wgtt_coord_wait_sum_ns{domain=%q} %d\n", st.Domain, st.SumNs)
		fmt.Fprintf(w, "wgtt_coord_wait_max_ns{domain=%q} %d\n", st.Domain, st.MaxNs)
		cum := int64(0)
		for i, c := range st.Buckets {
			cum += c
			le := "+Inf"
			if i < len(sim.WaitBoundsNs) {
				le = fmt.Sprintf("%d", sim.WaitBoundsNs[i])
			}
			fmt.Fprintf(w, "wgtt_coord_wait_bucket{domain=%q,le=%q} %d\n", st.Domain, le, cum)
		}
	}
}

// writeWireStats renders the transport/journal wall-clock counters.
// Safe from any goroutine: every counter is atomic.
func writeWireStats(w io.Writer, st wire.Stats, journalRecords int64) {
	fmt.Fprintf(w, "# wire transport (wall clock)\n")
	fmt.Fprintf(w, "wgtt_wire_reconnects %d\n", st.Reconnects)
	fmt.Fprintf(w, "wgtt_wire_resends %d\n", st.Resends)
	fmt.Fprintf(w, "wgtt_wire_dedup_drops %d\n", st.DedupDrops)
	fmt.Fprintf(w, "wgtt_wire_bytes_tx %d\n", st.BytesTx)
	fmt.Fprintf(w, "wgtt_wire_bytes_rx %d\n", st.BytesRx)
	fmt.Fprintf(w, "wgtt_wire_exchanges %d\n", st.Exchanges)
	fmt.Fprintf(w, "wgtt_wire_exchange_sum_ns %d\n", st.ExchangeSumNs)
	fmt.Fprintf(w, "wgtt_wire_exchange_max_ns %d\n", st.ExchangeMaxNs)
	cum := int64(0)
	for i, c := range st.ExchangeBuckets {
		cum += c
		le := "+Inf"
		if i < len(sim.WaitBoundsNs) {
			le = fmt.Sprintf("%d", sim.WaitBoundsNs[i])
		}
		fmt.Fprintf(w, "wgtt_wire_exchange_bucket{le=%q} %d\n", le, cum)
	}
	if journalRecords >= 0 {
		fmt.Fprintf(w, "wgtt_journal_records %d\n", journalRecords)
	}
}

// lockQuiesce acquires the quiescence lock, waiting up to bound for
// the sim goroutine to reach a slice boundary. A bare TryLock is
// useless in practice — slices run back-to-back, so the unlocked
// window at each boundary is about a millisecond — but a blocked
// waiter is guaranteed the handoff at the next Unlock once it has
// waited >1 ms (sync.Mutex starvation mode), so a short bounded wait
// reliably lands on a boundary. On timeout the pending acquisition is
// drained in the background: it briefly takes and releases the lock
// at some later boundary, which is harmless.
func (s *httpState) lockQuiesce(bound time.Duration) bool {
	acquired := make(chan struct{})
	go func() {
		s.quiesce.Lock()
		close(acquired)
	}()
	select {
	case <-acquired:
		return true
	case <-time.After(bound):
		go func() {
			<-acquired
			s.quiesce.Unlock()
		}()
		return false
	}
}

// quiesceWait bounds how long a scrape handler waits for a slice
// boundary; Prometheus's default scrape timeout is 10 s, so a second
// leaves plenty of headroom.
const quiesceWait = time.Second

func (s *httpState) serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metricsHandler)
	mux.HandleFunc("/healthz", s.healthzHandler)
	mux.HandleFunc("/varz", s.varzHandler)
	mux.HandleFunc("/debug/tracez", s.tracezHandler)
	go http.Serve(ln, mux) //nolint:errcheck — lives for the process
	return nil
}

func (s *httpState) metricsHandler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("fresh") != "" && s.snap != nil && s.lockQuiesce(quiesceWait) {
		snap := s.snap()
		s.quiesce.Unlock()
		s.refresh(snap)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.Lock()
	body := s.body
	s.mu.Unlock()
	w.Write(body)
	if s.extra != nil {
		s.extra(w)
	}
}

func (s *httpState) healthzHandler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.health
	s.mu.Unlock()
	if s.peers != nil {
		h.Peers = s.peers()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h) //nolint:errcheck — best-effort scrape
}

func (s *httpState) varzHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.varz)
}

func (s *httpState) tracezHandler(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled; start with -flight-recorder N", http.StatusNotFound)
		return
	}
	if !s.lockQuiesce(quiesceWait) {
		http.Error(w, "simulation mid-slice; retry", http.StatusServiceUnavailable)
		return
	}
	recs, anoms := s.flight()
	s.quiesce.Unlock()
	if r.URL.Query().Get("anomalies") != "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		trace.DumpAnomalies(w, recs, anoms, 5*sim.Millisecond) //nolint:errcheck — best-effort scrape
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChrome(w, recs) //nolint:errcheck — best-effort scrape
}

// buildVarz canonicalizes the process's static identity for /varz.
func buildVarz(p map[string]any) []byte {
	if info, ok := debug.ReadBuildInfo(); ok {
		p["go_version"] = info.GoVersion
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				p[strings.ReplaceAll(kv.Key, ".", "_")] = kv.Value
			}
		}
	}
	b, err := json.Marshal(p)
	if err != nil {
		return []byte("{}")
	}
	return append(b, '\n')
}

// runSingle hosts the whole scenario in one process: the bit-exact
// reference for any partitioning of the same flags.
func runSingle(sr *wgtt.ServeRun, sched []wgtt.Duration, scenario string, seed int64, report bool, httpAddr string) error {
	var hs *httpState
	dur := sched[len(sched)-1]
	if httpAddr != "" {
		hs = &httpState{
			snap: sr.Net.MetricsSnapshot,
			varz: buildVarz(map[string]any{
				"scenario": scenario, "seed": seed, "proc": 0, "procs": 1,
			}),
		}
		if sr.Cfg.FlightRecorder > 0 {
			hs.flight = func() ([]wgtt.TraceRecord, []wgtt.TraceAnomaly) {
				return sr.Net.FlightRecords(), sr.Net.FlightAnomalies()
			}
		}
		if sr.Net.Coord != nil {
			sr.Net.Coord.EnableWaitStats()
			hs.waits = sr.Net.Coord.WaitStats
		}
		if err := hs.serve(httpAddr); err != nil {
			return err
		}
	}
	for _, t := range sched {
		if hs != nil {
			hs.quiesce.Lock()
		}
		sr.Net.Run(t)
		if hs != nil {
			hs.quiesce.Unlock()
			hs.refresh(sr.Net.MetricsSnapshot())
			hs.setHealth(0, sr.Now(), dur)
		}
	}
	if report {
		return writeReport(os.Stdout, wgtt.ServeReport{
			Proc: 0, Scenario: scenario, Seed: seed,
			NowNs: int64(sr.Now()), Clients: sr.Figures(nil),
			Metrics:   sr.Net.MetricsSnapshot(),
			Trace:     sr.Net.FlightRecords(),
			Anomalies: sr.Net.FlightAnomalies(),
		})
	}
	return nil
}

// serveParams carries the resolved partitioned-run settings.
type serveParams struct {
	scenario, audibility, channel string
	seed                          int64
	proc                          int
	addrs                         []string
	partition                     string
	dur, slice, ckptAt            wgtt.Duration
	ckptPath                      string
	restore                       bool
	httpAddr                      string
	report                        bool
}

// digest canonicalizes everything two processes must agree on for
// their exchange streams to be compatible. The transport handshake and
// the checkpoint sidecar both verify it.
func (p serveParams) digest() [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf(
		"wgtt-serve|1|scenario=%s|seed=%d|aud=%s|chan=%s|part=%s|procs=%d|slice=%d|until=%d|ckpt=%d",
		p.scenario, p.seed, p.audibility, p.channel,
		p.partition, len(p.addrs), int64(p.slice), int64(p.dur), int64(p.ckptAt))))
}

func runPartitioned(sr *wgtt.ServeRun, sched []wgtt.Duration, p serveParams, logger *log.Logger) error {
	part, err := core.ParsePartition(p.partition)
	if err != nil {
		return err
	}
	if len(part) != len(p.addrs) {
		return fmt.Errorf("partition has %d process groups but -peers lists %d addresses", len(part), len(p.addrs))
	}
	if p.proc < 0 || p.proc >= len(p.addrs) {
		return fmt.Errorf("-proc %d out of range for %d processes", p.proc, len(p.addrs))
	}
	procs, err := part.Resolve(sr.Net)
	if err != nil {
		return err
	}
	owned := procs[p.proc]
	digest := p.digest()

	// Restore first: replay the journaled exchanges through the same
	// schedule prefix the checkpointing run executed.
	var (
		journal  *wire.Journal
		startSeq int64
		resumeAt wgtt.Duration
	)
	journalPath := p.ckptPath + ".journal"
	sidecarPath := p.ckptPath + ".ckpt"
	if p.restore {
		if p.ckptPath == "" {
			return fmt.Errorf("-restore needs -ckpt")
		}
		ck, err := wire.ReadCheckpoint(sidecarPath, digest)
		if err != nil {
			return err
		}
		recs, offset, err := wire.ReadJournal(journalPath, digest, ck.Exchanges)
		if err != nil {
			return err
		}
		if offset != ck.Offset {
			return fmt.Errorf("journal %s: %d records end at byte %d, checkpoint says %d",
				journalPath, ck.Exchanges, offset, ck.Offset)
		}
		replay := wire.NewReplayBus(recs)
		for _, t := range sched {
			if int64(t) > ck.At {
				break
			}
			if err := sr.Net.RunPartitioned(t, owned, replay); err != nil {
				return fmt.Errorf("replay to %v: %w", t, err)
			}
			resumeAt = t
		}
		if int64(resumeAt) != ck.At {
			return fmt.Errorf("checkpoint at %d is not on the slice schedule", ck.At)
		}
		if rem := replay.Remaining(); rem != 0 {
			return fmt.Errorf("replay stopped %d journal records short of the checkpoint", rem)
		}
		startSeq = ck.Exchanges
		journal, err = wire.OpenJournalAppend(journalPath, ck.Offset)
		if err != nil {
			return err
		}
		logger.Printf("restored to t=%v from %s (%d exchanges replayed)", resumeAt, p.ckptPath, ck.Exchanges)
	} else if p.ckptPath != "" {
		journal, err = wire.CreateJournal(journalPath, digest)
		if err != nil {
			return err
		}
	}
	if journal != nil {
		defer journal.Close()
	}

	tp, err := wire.New(wire.Config{
		Self: p.proc, Addrs: p.addrs, Digest: digest,
		StartSeq: startSeq, Logf: logger.Printf,
	})
	if err != nil {
		return err
	}
	defer tp.Close()
	var bus sim.PeerBus = tp
	if journal != nil {
		bus = &wire.JournalBus{Bus: tp, J: journal}
	}

	var hs *httpState
	if p.httpAddr != "" {
		var groups []string
		for pi, g := range part {
			groups = append(groups, fmt.Sprintf("proc%d=%s", pi, strings.Join(g, "+")))
		}
		hs = &httpState{
			snap:  func() *wgtt.MetricsSnapshot { return sr.Net.MetricsSnapshotOwned(owned) },
			peers: tp.PeerStates,
			extra: func(w io.Writer) {
				jr := int64(-1)
				if journal != nil {
					jr = journal.Records()
				}
				writeWireStats(w, tp.Stats(), jr)
			},
			varz: buildVarz(map[string]any{
				"scenario": p.scenario, "seed": p.seed, "proc": p.proc,
				"procs": len(p.addrs), "partition": strings.Join(groups, ","),
				"digest": wire.DigestHex(digest), "peers": p.addrs,
			}),
		}
		if sr.Cfg.FlightRecorder > 0 {
			hs.flight = func() ([]wgtt.TraceRecord, []wgtt.TraceAnomaly) {
				return sr.Net.FlightRecords(), sr.Net.FlightAnomalies()
			}
		}
		sr.Net.Coord.EnableWaitStats()
		hs.waits = sr.Net.Coord.WaitStats
		if err := hs.serve(p.httpAddr); err != nil {
			return err
		}
	}

	// Stalled-round watchdog: a round that makes no exchange progress
	// for two consecutive intervals while the sim goroutine is blocked
	// mid-slice means a peer died or the mesh wedged. Wall clock only —
	// it observes, logs, and never touches simulation state.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go watchStall(tp, logger, stopWatch)

	for _, t := range sched {
		if t <= resumeAt {
			continue
		}
		if hs != nil {
			hs.quiesce.Lock()
		}
		err := sr.Net.RunPartitioned(t, owned, bus)
		if hs != nil {
			hs.quiesce.Unlock()
		}
		if err != nil {
			return err
		}
		hs.refresh(sr.Net.MetricsSnapshotOwned(owned))
		hs.setHealth(p.proc, sr.Now(), p.dur)
		if t == p.ckptAt && !p.restore {
			off, err := journal.Offset()
			if err != nil {
				return err
			}
			if err := journal.Sync(); err != nil {
				return err
			}
			ck := wire.Checkpoint{
				Exchanges: sr.Net.Coord.Exchanges(), At: int64(sr.Now()),
				Offset: off, Digest: wire.DigestHex(digest),
			}
			if err := wire.WriteCheckpoint(sidecarPath, ck); err != nil {
				return err
			}
			logger.Printf("checkpoint at t=%v: %d exchanges, journal byte %d", t, ck.Exchanges, off)
		}
	}

	if p.report {
		return writeReport(os.Stdout, wgtt.ServeReport{
			Proc: p.proc, Scenario: p.scenario, Seed: p.seed,
			NowNs: int64(sr.Now()), Clients: sr.Figures(owned),
			Metrics:   sr.Net.MetricsSnapshotOwned(owned),
			Trace:     sr.Net.FlightRecords(),
			Anomalies: sr.Net.FlightAnomalies(),
		})
	}
	return nil
}

// stallInterval paces the stalled-round watchdog.
const stallInterval = 10 * time.Second

// watchStall logs when the exchange sequence stops advancing for two
// consecutive intervals — the signature of a dead peer or a wedged
// mesh. It reads only the transport's atomic counters, so it is safe
// beside the running sim goroutine and cannot perturb the schedule.
func watchStall(tp *wire.Transport, logger *log.Logger, stop <-chan struct{}) {
	tick := time.NewTicker(stallInterval)
	defer tick.Stop()
	last, stale := int64(-1), 0
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		ex := tp.Stats().Exchanges
		if ex == last {
			stale++
			if stale >= 2 {
				logger.Printf("stalled round: no exchange progress for %v (exchanges=%d); check peer health", time.Duration(stale)*stallInterval, ex)
			}
		} else {
			last, stale = ex, 0
		}
	}
}

func writeReport(w *os.File, rep wgtt.ServeReport) error {
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}
