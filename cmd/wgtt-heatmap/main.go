// Command wgtt-heatmap renders the Fig. 10 ESNR heatmap of the simulated
// deployment: per-AP large-scale effective SNR over the road plane, as an
// ASCII map or CSV.
//
//	wgtt-heatmap            # ASCII art, one map per AP
//	wgtt-heatmap -combined  # best-AP ESNR over the road
//	wgtt-heatmap -csv       # machine-readable grid
package main

import (
	"flag"
	"fmt"

	"wgtt"
)

// shade maps ESNR (dB) to a glyph ramp.
func shade(esnr float64) byte {
	ramp := []byte(" .:-=+*#%@")
	lo, hi := 0.0, 30.0
	if esnr <= lo {
		return ramp[0]
	}
	if esnr >= hi {
		return ramp[len(ramp)-1]
	}
	idx := int((esnr - lo) / (hi - lo) * float64(len(ramp)-1))
	return ramp[idx]
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of ASCII")
		combined = flag.Bool("combined", false, "one map of max-over-APs ESNR")
	)
	flag.Parse()

	r := wgtt.Fig10ESNRHeatmap(wgtt.Options{Seed: *seed})

	if *csv {
		fmt.Println("ap,x,y,esnr_db")
		for ap := range r.ESNR {
			for yi, y := range r.Ys {
				for xi, x := range r.Xs {
					fmt.Printf("%d,%.2f,%.2f,%.2f\n", ap, x, y, r.ESNR[ap][yi][xi])
				}
			}
		}
		return
	}

	if *combined {
		fmt.Println("best-AP ESNR along the road (x →, y ↓; road at y=0):")
		for yi := range r.Ys {
			for xi := range r.Xs {
				best := -999.0
				for ap := range r.ESNR {
					if v := r.ESNR[ap][yi][xi]; v > best {
						best = v
					}
				}
				fmt.Printf("%c", shade(best))
			}
			fmt.Printf("  y=%+.0f\n", r.Ys[yi])
		}
		fmt.Printf("\nadjacent-AP coverage overlap at 10 dB: %.1f m\n", r.OverlapM)
		return
	}

	for ap := range r.ESNR {
		fmt.Printf("AP %d (x=%.1f m):\n", ap, 7.5*float64(ap))
		for yi := range r.Ys {
			fmt.Print("  ")
			for xi := range r.Xs {
				fmt.Printf("%c", shade(r.ESNR[ap][yi][xi]))
			}
			fmt.Printf("  y=%+.0f\n", r.Ys[yi])
		}
		fmt.Println()
	}
}
