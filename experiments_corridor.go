package wgtt

import (
	"fmt"

	"wgtt/internal/core"
)

// CorridorResult is the transit-corridor scenario at deployment scale:
// two vehicles riding the full length of a three-segment roadway under
// WGTT with saturating UDP downlink. It is the workload the per-segment
// domain execution (-parallel-segments) is built for, and the fixture the
// domain parity tests pin.
type CorridorResult struct {
	Segments      int
	APsPerSegment int
	SpeedMPH      float64
	PerClientMbps []float64
	MeanMbps      float64
}

// CorridorThroughput rides two following clients at 25 mph across a
// three-segment corridor (4 APs per segment at the paper's 7.5 m pitch)
// and reports per-client UDP goodput. With Options.ParallelSegments the
// segments execute as parallel event-loop domains; otherwise the ride
// runs on the exact single-loop path.
func CorridorThroughput(opt Options) CorridorResult {
	mode := core.SingleLoop
	if opt.ParallelSegments {
		mode = core.DomainsParallel
	}
	return corridorRide(opt, mode)
}

// corridorRide is the mode-explicit form the domain parity tests drive:
// DomainsSerial and DomainsParallel must render bit-identically.
func corridorRide(opt Options, mode core.DomainMode) CorridorResult {
	return corridorRideN(opt, mode, 3, 0)
}

// corridorRideN is the ride at an arbitrary corridor length; the domain
// benchmark uses it to scale the domain count past the core count. A
// zero maxDur rides the full corridor; a positive one caps the sim time
// (a long corridor is then only partially ridden, which is fine for
// timing — every domain still advances through the whole window).
func corridorRideN(opt Options, mode core.DomainMode, segments int, maxDur Duration) CorridorResult {
	const (
		apsPer  = 4
		clients = 2
		mph     = 25
	)
	cfg := DefaultConfig(SchemeWGTT)
	cfg.Seed = opt.Seed
	for i := 0; i < segments; i++ {
		cfg.Segments = append(cfg.Segments, SegmentSpec{NumAPs: apsPer})
	}
	cfg.Domains = mode
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	n := NewNetwork(cfg)
	_, dur := driveAcross(&cfg, mph)
	if maxDur > 0 && dur > maxDur {
		dur = maxDur
	}
	lo, _ := cfg.RoadSpanX()
	var meters []*throughput
	for _, traj := range Scenario(Following, clients, lo-5, 0, mph) {
		c := n.AddClient(traj)
		f := NewUDPDownlink(n, c, offeredUDPMbps)
		startAfterWarmup(n, f.Start)
		meters = append(meters, f.Meter)
	}
	n.Run(dur)
	res := CorridorResult{Segments: segments, APsPerSegment: apsPer, SpeedMPH: mph}
	for _, m := range meters {
		res.PerClientMbps = append(res.PerClientMbps, m.MeanMbps(n.Loop.Now()))
	}
	res.MeanMbps = mean(res.PerClientMbps)
	return res
}

// String renders the ride summary.
func (r CorridorResult) String() string {
	rows := make([][]string, 0, len(r.PerClientMbps)+1)
	for i, v := range r.PerClientMbps {
		rows = append(rows, []string{fmt.Sprintf("client %d", i+1), f1(v)})
	}
	rows = append(rows, []string{"mean", f1(r.MeanMbps)})
	return fmt.Sprintf("Corridor — %d segments × %d APs, %g mph, UDP downlink\n",
		r.Segments, r.APsPerSegment, r.SpeedMPH) + fmtTable([]string{"", "Mbit/s"}, rows)
}
