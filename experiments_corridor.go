package wgtt

import (
	"fmt"

	"wgtt/internal/core"
	"wgtt/internal/rf"
)

// posXY builds a waypoint position.
func posXY(x, y float64) rf.Position { return rf.Position{X: x, Y: y} }

// CorridorResult is the transit-corridor scenario at deployment scale:
// two vehicles riding the full length of a three-segment roadway under
// WGTT with saturating UDP downlink. It is the workload the per-segment
// domain execution (-parallel-segments) is built for, and the fixture the
// domain parity tests pin.
type CorridorResult struct {
	Segments      int
	APsPerSegment int
	SpeedMPH      float64
	PerClientMbps []float64
	MeanMbps      float64
}

// CorridorThroughput rides two following clients at 25 mph across a
// three-segment corridor (4 APs per segment at the paper's 7.5 m pitch)
// and reports per-client UDP goodput. With Options.ParallelSegments the
// segments execute as parallel event-loop domains; otherwise the ride
// runs on the exact single-loop path.
func CorridorThroughput(opt Options) CorridorResult {
	mode := core.SingleLoop
	if opt.ParallelSegments {
		mode = core.DomainsParallel
	}
	return corridorRide(opt, mode)
}

// corridorRide is the mode-explicit form the domain parity tests drive:
// DomainsSerial and DomainsParallel must render bit-identically.
func corridorRide(opt Options, mode core.DomainMode) CorridorResult {
	return corridorRideN(opt, mode, 3, 0)
}

// corridorSetup constructs the corridor deployment and its workload
// without running it. It is the single construction path shared by the
// in-process rides below and wgtt-serve's "corridor" scenario, so a
// partitioned multi-process run builds the bit-identical network the
// parity pins reference.
func corridorSetup(opt Options, mode core.DomainMode, segments int, maxDur Duration) *ServeRun {
	const (
		apsPer  = 4
		clients = 2
		mph     = 25
	)
	cfg := DefaultConfig(SchemeWGTT)
	cfg.Seed = opt.Seed
	for i := 0; i < segments; i++ {
		cfg.Segments = append(cfg.Segments, SegmentSpec{NumAPs: apsPer})
	}
	cfg.Domains = mode
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	n := NewNetwork(cfg)
	_, dur := driveAcross(&cfg, mph)
	if maxDur > 0 && dur > maxDur {
		dur = maxDur
	}
	lo, _ := cfg.RoadSpanX()
	r := &ServeRun{Net: n, Cfg: cfg, Dur: dur, APsPerSegment: apsPer, SpeedMPH: mph}
	for _, traj := range Scenario(Following, clients, lo-5, 0, mph) {
		c := n.AddClient(traj)
		f := NewUDPDownlink(n, c, offeredUDPMbps)
		startAfterWarmup(n, f.Start)
		r.meters = append(r.meters, f.Meter)
		r.clients = append(r.clients, c)
	}
	return r
}

// corridorRideN is the ride at an arbitrary corridor length; the domain
// benchmark uses it to scale the domain count past the core count. A
// zero maxDur rides the full corridor; a positive one caps the sim time
// (a long corridor is then only partially ridden, which is fine for
// timing — every domain still advances through the whole window).
func corridorRideN(opt Options, mode core.DomainMode, segments int, maxDur Duration) CorridorResult {
	r := corridorSetup(opt, mode, segments, maxDur)
	r.Net.Run(r.Dur)
	res := CorridorResult{Segments: segments, APsPerSegment: r.APsPerSegment, SpeedMPH: r.SpeedMPH}
	for _, f := range r.Figures(nil) {
		res.PerClientMbps = append(res.PerClientMbps, f.Mbps)
	}
	res.MeanMbps = mean(res.PerClientMbps)
	return res
}

// CorridorFedResult is the federated corridor under trunk faults: the
// ride summary plus the re-locate protocol's scoreboard.
type CorridorFedResult struct {
	CorridorResult
	Relocates   int
	Abandoned   int
	OutageDrops int64
	RandomDrops int64
	Lost        int
}

// CorridorFederated rides a four-segment ring-federated corridor with a
// canned trunk fault schedule: one client drives straight through while
// a second U-turns mid-corridor, and an interior trunk blacks out for
// two seconds on top of random trunk drops and delay jitter. The ride
// exercises the whole recovery surface — directory re-locates, claim and
// export retries, routing around the downed trunk — and reports whether
// every client came out owned.
func CorridorFederated(opt Options) CorridorFedResult {
	const apsPer = 4
	cfg := DefaultConfig(SchemeWGTT)
	cfg.Seed = opt.Seed
	cfg.Segments = []SegmentSpec{{NumAPs: apsPer}, {NumAPs: apsPer}, {NumAPs: apsPer}, {NumAPs: apsPer}}
	cfg.Federation.Enabled = true
	cfg.Federation.Ring = true
	cfg.Trunk.Faults = FaultSchedule{
		Outages:   []Outage{{A: 1, B: 2, Start: 2 * Second, End: 4 * Second}},
		DropProb:  0.02,
		JitterMax: 40 * Microsecond,
	}
	cfg.Telemetry = true // the result reports trunk drop counters
	if opt.ParallelSegments {
		cfg.Domains = core.DomainsParallel
	}
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	n := NewNetwork(cfg)

	trajs := []Trajectory{
		Drive(-5, 0, 25),
		NewWaypoints([]Waypoint{
			{At: 0, Pos: posXY(10, 0)},
			{At: 4 * Second, Pos: posXY(75, 0)},
			{At: 9 * Second, Pos: posXY(12, 0)},
		}),
	}
	var meters []*throughput
	for _, traj := range trajs {
		c := n.AddClient(traj)
		f := NewUDPDownlink(n, c, offeredUDPMbps)
		startAfterWarmup(n, f.Start)
		meters = append(meters, f.Meter)
	}
	n.Run(10 * Second)

	res := CorridorFedResult{CorridorResult: CorridorResult{
		Segments: len(cfg.Segments), APsPerSegment: apsPer, SpeedMPH: 25,
	}}
	for _, m := range meters {
		res.PerClientMbps = append(res.PerClientMbps, m.MeanMbps(n.Loop.Now()))
	}
	res.MeanMbps = mean(res.PerClientMbps)
	for _, f := range n.FederationNodes() {
		res.Relocates += f.Relocates
		res.Abandoned += f.RelocatesAbandoned
	}
	res.OutageDrops, res.RandomDrops = n.TrunkFaultDrops()
	res.Lost = len(n.LostClients())
	return res
}

// String renders the federated ride summary.
func (r CorridorFedResult) String() string {
	return r.CorridorResult.String() + fmt.Sprintf(
		"federation: %d re-locates (%d abandoned); trunk drops: %d outage, %d random; lost clients: %d\n",
		r.Relocates, r.Abandoned, r.OutageDrops, r.RandomDrops, r.Lost)
}

// String renders the ride summary.
func (r CorridorResult) String() string {
	rows := make([][]string, 0, len(r.PerClientMbps)+1)
	for i, v := range r.PerClientMbps {
		rows = append(rows, []string{fmt.Sprintf("client %d", i+1), f1(v)})
	}
	rows = append(rows, []string{"mean", f1(r.MeanMbps)})
	return fmt.Sprintf("Corridor — %d segments × %d APs, %g mph, UDP downlink\n",
		r.Segments, r.APsPerSegment, r.SpeedMPH) + fmtTable([]string{"", "Mbit/s"}, rows)
}
