package wgtt

import (
	"fmt"
	"path/filepath"
	"testing"

	"wgtt/internal/core"
)

// scenarioCorridorResult runs the compiled corridor scenario under the
// given domain mode and folds it into the experiments' CorridorResult
// shape for rendering against the golden pins.
func scenarioCorridorResult(t *testing.T, seed int64, mode core.DomainMode) (CorridorResult, *ServeRun) {
	t.Helper()
	spec, err := LoadScenario(filepath.Join("examples", "scenarios", "corridor.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompileScenario(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	r := BuildScenarioRun(comp, Options{Mutate: func(c *Config) {
		c.Telemetry = true
		c.Domains = mode
	}})
	r.Net.Run(r.Dur)
	res := CorridorResult{Segments: len(r.Cfg.Segments), APsPerSegment: r.APsPerSegment, SpeedMPH: r.SpeedMPH}
	for _, f := range r.Figures(nil) {
		res.PerClientMbps = append(res.PerClientMbps, f.Mbps)
	}
	res.MeanMbps = mean(res.PerClientMbps)
	return res, r
}

// TestScenarioCorridorGolden is the faithfulness gate: the compiled
// examples/scenarios/corridor.yaml must reproduce the hand-built
// corridor experiment byte for byte — the goldenCorridor figure pins
// AND the full telemetry snapshot — for seeds 1–3. If the scenario
// compiler and the hand-built path ever drift, this fails at the first
// differing byte.
func TestScenarioCorridorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("two full corridor rides per seed")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			res, run := scenarioCorridorResult(t, seed, core.DomainsSerial)
			got := render(res)
			if got != goldenCorridor[seed] {
				t.Errorf("scenario-compiled corridor drifted from the golden pin\n%s",
					firstDiffLabeled("golden", "scenario", goldenCorridor[seed], got))
			}

			// Telemetry: the scenario-compiled run must emit the
			// bit-identical metrics snapshot to the hand-built corridor.
			ref := corridorSetup(Options{Seed: seed, Mutate: telemetryOn}, core.DomainsSerial, 3, 0)
			ref.Net.Run(ref.Dur)
			want := snapshotText(t, ref.Net.MetricsSnapshot())
			have := snapshotText(t, run.Net.MetricsSnapshot())
			if have != want {
				t.Errorf("scenario-compiled telemetry diverged from the hand-built corridor\n%s",
					firstDiffLabeled("hand-built", "scenario", want, have))
			}
		})
	}
}

// scenarioParityRender runs a generated scenario in the given mode and
// renders everything comparable: per-client figures plus the full
// telemetry snapshot.
func scenarioParityRender(t *testing.T, spec *ScenarioSpec, mode core.DomainMode) (string, *Network) {
	t.Helper()
	comp, err := CompileScenario(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := BuildScenarioRun(comp, Options{Mutate: func(c *Config) {
		c.Telemetry = true
		c.Domains = mode
	}})
	r.Net.Run(r.Dur)
	var mbps []float64
	for _, f := range r.Figures(nil) {
		mbps = append(mbps, f.Mbps)
	}
	return fmt.Sprintf("%#v\n", mbps) + snapshotText(t, r.Net.MetricsSnapshot()), r.Net
}

// TestGeneratedScenarioParity is the property-test harness over the
// scenario generator: for seeds 1–10, a generated transit network must
// run bit-identically (figures + telemetry) under DomainsSerial and
// DomainsParallel, and the federation ownership directory must account
// for every client at the end of the run.
func TestGeneratedScenarioParity(t *testing.T) {
	if testing.Short() {
		t.Skip("twenty generated-network runs")
	}
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		// Cycle the size classes so the sweep covers more than one shape.
		size := []string{"small", "medium", "large"}[seed%3]
		t.Run(fmt.Sprintf("seed%d-%s", seed, size), func(t *testing.T) {
			t.Parallel()
			spec, err := GenerateScenario(seed, size)
			if err != nil {
				t.Fatal(err)
			}
			serial, sn := scenarioParityRender(t, spec, core.DomainsSerial)
			parallel, pn := scenarioParityRender(t, spec, core.DomainsParallel)
			if serial != parallel {
				t.Errorf("generated scenario diverged between domain modes\n%s",
					firstDiff(serial, parallel))
			}
			if lost := sn.LostClients(); len(lost) != 0 {
				t.Errorf("serial run lost clients %v", lost)
			}
			if lost := pn.LostClients(); len(lost) != 0 {
				t.Errorf("parallel run lost clients %v", lost)
			}
		})
	}
}

// TestScenarioExamplesCompile keeps every checked-in example loadable:
// each must parse, validate, compile, and pass core config validation.
// (allday.yaml's six-hour horizon makes running it here unreasonable;
// compiling it is the contract.)
func TestScenarioExamplesCompile(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "scenarios", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scenarios found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := CompileScenario(spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := comp.Config.Validate(); err != nil {
				t.Fatal(err)
			}
			if comp.Digest() == "" || comp.Horizon <= 0 {
				t.Fatalf("degenerate compile: digest=%q horizon=%v", comp.Digest(), comp.Horizon)
			}
		})
	}
}

// TestServeScenarioFile checks the wgtt-serve path: a scenario file
// name builds a telemetry-on, domain-mode ServeRun, and the file's own
// seed survives unless the caller overrides it.
func TestServeScenarioFile(t *testing.T) {
	path := filepath.Join("examples", "scenarios", "trackside.yaml")
	sr, err := BuildServeScenario(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Cfg.Telemetry {
		t.Error("serve scenario built without telemetry")
	}
	if sr.Cfg.Domains != core.DomainsSerial {
		t.Errorf("serve scenario domains %v, want DomainsSerial", sr.Cfg.Domains)
	}
	if sr.Cfg.Seed != 7 {
		t.Errorf("seed %d, want the file's seed 7", sr.Cfg.Seed)
	}
	if sr.Cfg.ChannelBackend != "mmwave60g" {
		t.Errorf("channel backend %q, want the file's mmwave60g", sr.Cfg.ChannelBackend)
	}
	sr, err = BuildServeScenario(path, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cfg.Seed != 5 {
		t.Errorf("seed %d, want the override 5", sr.Cfg.Seed)
	}
	if _, err := BuildServeScenario("no/such/file.yaml", Options{}); err == nil {
		t.Error("missing scenario file did not error")
	}
}
