package wgtt

import (
	"fmt"
	"strings"
)

// CorridorMMWaveResult is the picocell corridor: the same three-segment
// ride as CorridorThroughput, but over the "mmwave60g" channel backend —
// 60 GHz steered-beam APs with a hard cell-radius cap and deterministic
// blockage — with telemetry on, so the handoff-rate and switch-time
// distribution come out alongside the goodput.
type CorridorMMWaveResult struct {
	CorridorResult
	CellRadiusM float64
	// Handoffs counts completed handoff spans across all segments;
	// HandoffsPerMinute normalizes per client per ride minute.
	Handoffs          int64
	HandoffsPerMinute float64
	// HandoffP50Ms / HandoffP90Ms are quantiles of the issue→ack switch
	// time, merged across segments (the paper's 17–21 ms band).
	HandoffP50Ms float64
	HandoffP90Ms float64
	// Controller switch scoreboard.
	SwitchesIssued int
	SwitchesAcked  int
}

// CorridorMMWave rides two following clients at 25 mph across a
// three-segment mmWave picocell corridor (4 APs per segment) under
// saturating UDP downlink. The dense cells make the switch rate the
// dominant dynamic: at 25 mph a client crosses a 7.5 m pitch every
// ~0.67 s, so the ride asserts WGTT's rapid switching well beyond the
// 2.4 GHz testbed's pace.
func CorridorMMWave(opt Options) CorridorMMWaveResult {
	const (
		segments = 3
		apsPer   = 4
		clients  = 2
		mph      = 25.0
	)
	cfg := DefaultConfig(SchemeWGTT)
	cfg.Seed = opt.Seed
	cfg.ChannelBackend = "mmwave60g"
	cfg.Telemetry = true
	for i := 0; i < segments; i++ {
		cfg.Segments = append(cfg.Segments, SegmentSpec{NumAPs: apsPer})
	}
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	n := NewNetwork(cfg)
	_, dur := driveAcross(&cfg, mph)
	lo, _ := cfg.RoadSpanX()
	var meters []*throughput
	for _, traj := range Scenario(Following, clients, lo-5, 0, mph) {
		c := n.AddClient(traj)
		f := NewUDPDownlink(n, c, offeredUDPMbps)
		startAfterWarmup(n, f.Start)
		meters = append(meters, f.Meter)
	}
	n.Run(dur)
	now := n.Loop.Now()

	res := CorridorMMWaveResult{
		CorridorResult: CorridorResult{
			Segments: segments, APsPerSegment: apsPer, SpeedMPH: mph,
		},
		CellRadiusM: cfg.MMWave.CellRadiusM,
	}
	for _, m := range meters {
		res.PerClientMbps = append(res.PerClientMbps, m.MeanMbps(now))
	}
	res.MeanMbps = mean(res.PerClientMbps)
	for _, ctrl := range n.Controllers() {
		res.SwitchesIssued += ctrl.SwitchesIssued
		res.SwitchesAcked += ctrl.SwitchesAcked
	}
	if snap := n.MetricsSnapshot(); snap != nil {
		for _, sp := range snap.Spans {
			if sp.Name == "handoff" || strings.HasSuffix(sp.Name, "/handoff") {
				res.Handoffs += sp.Completed
			}
		}
		if h, ok := snap.MergeHistograms("handoff/total_ms"); ok {
			res.HandoffP50Ms = h.Quantile(0.5)
			res.HandoffP90Ms = h.Quantile(0.9)
		}
	}
	if minutes := now.Seconds() / 60; minutes > 0 {
		res.HandoffsPerMinute = float64(res.Handoffs) / minutes / clients
	}
	return res
}

func (r CorridorMMWaveResult) String() string {
	rows := make([][]string, 0, len(r.PerClientMbps)+1)
	for i, v := range r.PerClientMbps {
		rows = append(rows, []string{fmt.Sprintf("client %d", i+1), f1(v)})
	}
	rows = append(rows, []string{"mean", f1(r.MeanMbps)})
	head := fmt.Sprintf("mmWave corridor — %d segments × %d APs, %g mph, %g m cells, UDP downlink\n",
		r.Segments, r.APsPerSegment, r.SpeedMPH, r.CellRadiusM)
	tail := fmt.Sprintf("\nhandoffs: %d completed (%.1f/min/client), switch time p50 %.1f ms p90 %.1f ms\nswitches: %d issued, %d acked\n",
		r.Handoffs, r.HandoffsPerMinute, r.HandoffP50Ms, r.HandoffP90Ms,
		r.SwitchesIssued, r.SwitchesAcked)
	return head + fmtTable([]string{"", "Mbit/s"}, rows) + tail
}
