package wgtt

import (
	"fmt"

	"wgtt/internal/runner"
	"wgtt/internal/workload"
)

// Table4Result reproduces the video rebuffering case study.
type Table4Result struct {
	SpeedsMPH []float64
	WGTT      []float64 // rebuffer ratio
	Baseline  []float64
}

// Table4VideoRebuffer streams HD video (1.5 s prebuffer) to a client
// crossing the array at each speed under both schemes.
func Table4VideoRebuffer(opt Options, speeds []float64) Table4Result {
	if len(speeds) == 0 {
		speeds = []float64{5, 10, 15, 20}
	}
	res := Table4Result{SpeedsMPH: speeds}
	run := func(scheme Scheme, mph float64) float64 {
		n := buildNetwork(scheme, opt)
		traj, dur := driveAcross(&n.Cfg, mph)
		c := n.AddClient(traj)
		v := workload.NewVideo(n, c, workload.DefaultVideoConfig())
		startAfterWarmup(n, v.Start)
		n.Run(dur)
		return v.RebufferRatio()
	}
	jobs := make([]func() float64, 0, 2*len(speeds))
	for _, mph := range speeds {
		jobs = append(jobs,
			func() float64 { return run(SchemeWGTT, mph) },
			func() float64 { return run(SchemeEnhanced80211r, mph) })
	}
	out := runAll(opt, jobs)
	for i := range speeds {
		res.WGTT = append(res.WGTT, out[2*i])
		res.Baseline = append(res.Baseline, out[2*i+1])
	}
	return res
}

// String renders Table 4.
func (r Table4Result) String() string {
	rows := make([][]string, len(r.SpeedsMPH))
	for i := range r.SpeedsMPH {
		rows[i] = []string{
			f1(r.SpeedsMPH[i]),
			fmt.Sprintf("%.2f", r.WGTT[i]),
			fmt.Sprintf("%.2f", r.Baseline[i]),
		}
	}
	return "Table 4 — video rebuffer ratio\n" + fmtTable(
		[]string{"mph", "WGTT", "Enhanced 802.11r"}, rows)
}

// Fig24Result reproduces the conferencing frame-rate case study.
type Fig24Result struct {
	SpeedsMPH []float64
	// 85th-percentile downlink fps per app model and speed.
	Skype85th, Hangouts85th []float64
	// Median fps for context.
	SkypeMedian, HangoutsMedian []float64
}

// Fig24ConferencingFPS runs Skype-like (30 fps, high bitrate) and
// Hangouts-like (60 fps, reduced resolution) calls at each speed under
// WGTT.
func Fig24ConferencingFPS(opt Options, speeds []float64) Fig24Result {
	if len(speeds) == 0 {
		speeds = []float64{5, 15}
	}
	res := Fig24Result{SpeedsMPH: speeds}
	run := func(cfg workload.ConferenceConfig, mph float64) (p85, med float64) {
		n := buildNetwork(SchemeWGTT, opt)
		traj, dur := driveAcross(&n.Cfg, mph)
		c := n.AddClient(traj)
		conf := workload.NewConference(n, c, cfg)
		startAfterWarmup(n, conf.Start)
		n.Run(dur)
		// The paper reads the CDF at the 85th percentile; with a CDF
		// of fps samples, that is the value below which 85% of the
		// per-second readings fall.
		return conf.FPSSamples.Quantile(0.85), conf.FPSSamples.Quantile(0.5)
	}
	type fps struct{ p85, med float64 }
	jobs := make([]func() fps, 0, 2*len(speeds))
	for _, mph := range speeds {
		jobs = append(jobs,
			func() fps { p, m := run(workload.SkypeLike(), mph); return fps{p, m} },
			func() fps { p, m := run(workload.HangoutsLike(), mph); return fps{p, m} })
	}
	out := runAll(opt, jobs)
	for i := range speeds {
		res.Skype85th = append(res.Skype85th, out[2*i].p85)
		res.SkypeMedian = append(res.SkypeMedian, out[2*i].med)
		res.Hangouts85th = append(res.Hangouts85th, out[2*i+1].p85)
		res.HangoutsMedian = append(res.HangoutsMedian, out[2*i+1].med)
	}
	return res
}

// String renders the figure.
func (r Fig24Result) String() string {
	rows := make([][]string, len(r.SpeedsMPH))
	for i := range r.SpeedsMPH {
		rows[i] = []string{
			f1(r.SpeedsMPH[i]),
			f1(r.Skype85th[i]), f1(r.SkypeMedian[i]),
			f1(r.Hangouts85th[i]), f1(r.HangoutsMedian[i]),
		}
	}
	return "Fig 24 — conferencing downlink fps under WGTT\n" + fmtTable(
		[]string{"mph", "skype p85", "skype med", "hangouts p85", "hangouts med"}, rows)
}

// Table5Result reproduces the web page load case study.
type Table5Result struct {
	SpeedsMPH []float64
	WGTT      []float64 // seconds; +Inf = never loaded
	Baseline  []float64
}

// Table5WebPageLoad fetches the 2.1 MB page at each speed under both
// schemes. Loads that outlast the drive report +Inf, like the paper's ∞
// cells.
func Table5WebPageLoad(opt Options, speeds []float64) Table5Result {
	if len(speeds) == 0 {
		speeds = []float64{5, 10, 15, 20}
	}
	res := Table5Result{SpeedsMPH: speeds}
	run := func(scheme Scheme, mph float64) float64 {
		n := buildNetwork(scheme, opt)
		traj, dur := driveAcross(&n.Cfg, mph)
		c := n.AddClient(traj)
		// The passenger browses repeatedly during the whole drive, so
		// loads land in every part of the array, including any
		// handover dead zones.
		b := workload.NewBrowser(n, c, 500*Millisecond)
		startAfterWarmup(n, b.Start)
		n.Run(dur)
		b.Finish()
		return b.MeanLoadSeconds()
	}
	jobs := make([]func() float64, 0, 2*len(speeds))
	for _, mph := range speeds {
		jobs = append(jobs,
			func() float64 { return run(SchemeWGTT, mph) },
			func() float64 { return run(SchemeEnhanced80211r, mph) })
	}
	out := runAll(opt, jobs)
	for i := range speeds {
		res.WGTT = append(res.WGTT, out[2*i])
		res.Baseline = append(res.Baseline, out[2*i+1])
	}
	return res
}

// String renders Table 5.
func (r Table5Result) String() string {
	rows := make([][]string, len(r.SpeedsMPH))
	for i := range r.SpeedsMPH {
		rows[i] = []string{f1(r.SpeedsMPH[i]), f2(r.WGTT[i]), f2(r.Baseline[i])}
	}
	return "Table 5 — mean 2.1 MB page load time while browsing (s)\n" + fmtTable(
		[]string{"mph", "WGTT", "Enhanced 802.11r"}, rows)
}

// AblationResult quantifies each WGTT mechanism's contribution by
// disabling it (the design choices DESIGN.md calls out).
type AblationResult struct {
	Labels []string
	// UDPMbps and TCPMbps are single-client 15 mph drive goodputs.
	UDPMbps []float64
	TCPMbps []float64
}

// Ablations runs the 15 mph drive with each mechanism disabled in turn.
func Ablations(opt Options) AblationResult {
	return ablations(opt, nil)
}

// ablations is the parameterized form; a non-nil only slice restricts the
// run to the named variants.
func ablations(opt Options, only []string) AblationResult {
	cases := []struct {
		label  string
		mutate func(*Config)
	}{
		{"full WGTT", nil},
		{"CSI-seeded rates (ext)", func(c *Config) { c.AP.SeedRatesFromCSI = true }},
		{"no BA forwarding", func(c *Config) { c.AP.ForwardBAs = false }},
		{"no queue flush on start", func(c *Config) { c.AP.FlushOnStart = false }},
		{"no uplink dedup", func(c *Config) { c.Controller.Dedup = false }},
		{"mean-ESNR selection", func(c *Config) { c.Controller.Policy = 1 /* SelectMean */ }},
		{"latest-sample selection", func(c *Config) { c.Controller.Policy = 2 /* SelectLatest */ }},
	}
	if only != nil {
		keep := cases[:0]
		for _, tc := range cases {
			for _, want := range only {
				if tc.label == want {
					keep = append(keep, tc)
					break
				}
			}
		}
		cases = keep
	}
	var res AblationResult
	cfg := DefaultConfig(SchemeWGTT)
	traj, dur := driveAcross(&cfg, 15)
	var specs []runner.RunSpec
	for _, tc := range cases {
		o := Options{Seed: opt.Seed, Mutate: tc.mutate, Exec: opt.Exec}
		res.Labels = append(res.Labels, tc.label)
		specs = append(specs,
			throughputSpec(SchemeWGTT, o, []Trajectory{traj}, dur, false),
			throughputSpec(SchemeWGTT, o, []Trajectory{traj}, dur, true))
	}
	mbps := runSpecs(opt, specs)
	for i := range cases {
		res.UDPMbps = append(res.UDPMbps, mbps[2*i])
		res.TCPMbps = append(res.TCPMbps, mbps[2*i+1])
	}
	return res
}

// String renders the ablation table.
func (r AblationResult) String() string {
	rows := make([][]string, len(r.Labels))
	for i := range r.Labels {
		rows[i] = []string{r.Labels[i], f1(r.UDPMbps[i]), f1(r.TCPMbps[i])}
	}
	return "Ablations — 15 mph single-client drive (Mbit/s)\n" + fmtTable(
		[]string{"variant", "UDP", "TCP"}, rows)
}
