package wgtt

import (
	"wgtt/internal/scenario"
	"wgtt/internal/stats"
)

// This file is the root-package bridge to internal/scenario: load or
// generate a declarative scenario, compile it, and build the compiled
// plan into a runnable ServeRun through the exact same client/workload
// construction path the hand-built experiments use — which is what
// keeps a scenario-compiled corridor on the corridor golden pins.

// ScenarioSpec is a declarative scenario (internal/scenario.Scenario).
type ScenarioSpec = scenario.Scenario

// CompiledScenario is a compiled scenario (internal/scenario.Compiled).
type CompiledScenario = scenario.Compiled

// LoadScenario parses a scenario file (YAML or JSON).
func LoadScenario(path string) (*ScenarioSpec, error) {
	return scenario.ParseFile(path)
}

// ParseScenario parses scenario bytes (YAML or JSON).
func ParseScenario(data []byte) (*ScenarioSpec, error) {
	return scenario.Parse(data)
}

// GenerateScenario builds a seeded random scenario; size is
// small | medium | large ("" = small).
func GenerateScenario(seed int64, size string) (*ScenarioSpec, error) {
	sc, err := scenario.ParseSizeClass(size)
	if err != nil {
		return nil, err
	}
	return scenario.Generate(seed, sc), nil
}

// CompileScenario validates and lowers a scenario. seed 0 defers to the
// scenario's own seed; non-zero overrides it.
func CompileScenario(s *ScenarioSpec, seed int64) (*CompiledScenario, error) {
	return scenario.Compile(s, seed)
}

// BuildScenarioRun constructs the compiled scenario's network and
// workload. opt.Seed, when non-zero, overrides the compiled seed;
// opt.Mutate layers execution-mode knobs (domain mode, telemetry,
// channel overrides) on the compiled config before the network builds.
func BuildScenarioRun(c *CompiledScenario, opt Options) *ServeRun {
	cfg := c.Config
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	if opt.Mutate != nil {
		opt.Mutate(&cfg)
	}
	n := NewNetwork(cfg)
	r := &ServeRun{Net: n, Cfg: cfg, Dur: c.Horizon, APsPerSegment: c.APsPerSegment, SpeedMPH: c.SpeedMPH}
	for i := range c.Clients {
		p := &c.Clients[i]
		cl := n.AddClient(p.Traj)
		var meter *throughput
		switch p.Workload {
		case scenario.WorkloadTCP:
			f := NewTCPDownlink(n, cl, 0)
			n.Loop.After(p.Start, f.Start)
			meter = f.Meter
		case scenario.WorkloadNone:
			// No traffic: an idle meter keeps Figures indexed by client.
			meter = stats.NewThroughput(100 * Millisecond)
		default:
			f := NewUDPDownlink(n, cl, p.RateMbps)
			n.Loop.After(p.Start, f.Start)
			meter = f.Meter
		}
		r.meters = append(r.meters, meter)
		r.clients = append(r.clients, cl)
	}
	return r
}

// LoadScenarioRun loads, compiles, and builds a scenario file in one
// step.
func LoadScenarioRun(path string, opt Options) (*ServeRun, error) {
	s, err := LoadScenario(path)
	if err != nil {
		return nil, err
	}
	c, err := CompileScenario(s, opt.Seed)
	if err != nil {
		return nil, err
	}
	// Compile already resolved the seed; don't apply it twice.
	opt.Seed = 0
	return BuildScenarioRun(c, opt), nil
}
