// Package wgtt is a faithful Go reproduction of "Wi-Fi Goes to Town:
// Rapid Picocell Switching for Wireless Transit Networks" (Song,
// Shangguan, Jamieson — SIGCOMM 2017).
//
// It provides, on top of a deterministic discrete-event wireless
// simulator that stands in for the paper's roadside testbed:
//
//   - the WGTT system itself — controller-driven median-ESNR AP
//     selection, the stop/start/ack cross-AP queue-switching protocol,
//     block-ACK forwarding, and uplink de-duplication;
//   - the "Enhanced 802.11r" comparison scheme of §5.1 and the stock
//     802.11r behaviour of §2;
//   - application workloads (bulk TCP/UDP, video streaming, video
//     conferencing, web browsing); and
//   - one Experiment function per table and figure of the paper's
//     evaluation, each returning a result that renders like the
//     original.
//
// # Quick start
//
//	cfg := wgtt.DefaultConfig(wgtt.SchemeWGTT)
//	n := wgtt.NewNetwork(cfg)
//	car := n.AddClient(wgtt.Drive(-5, 0, 15)) // enter at x=-5 m, 15 mph
//	flow := wgtt.NewUDPDownlink(n, car, 30)   // 30 Mbit/s CBR
//	flow.Start()
//	n.Run(10 * wgtt.Second)
//	fmt.Printf("%.1f Mbit/s\n", flow.Mbps(n.Loop.Now()))
package wgtt

import (
	"wgtt/internal/channel"
	"wgtt/internal/core"
	"wgtt/internal/deploy"
	"wgtt/internal/federation"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
	"wgtt/internal/workload"
)

// Scheme selects the roaming system under test.
type Scheme = core.Scheme

// Schemes.
const (
	// SchemeWGTT is the paper's system.
	SchemeWGTT = core.WGTT
	// SchemeEnhanced80211r is the §5.1 comparison scheme.
	SchemeEnhanced80211r = core.Enhanced80211r
	// SchemeStock80211r is the §2 motivation behaviour.
	SchemeStock80211r = core.Stock80211r
)

// ParseScheme inverts the command-line scheme names ("wgtt", "11r",
// "stock11r", case-insensitive).
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// Config describes a deployment; see core.Config for every knob.
type Config = core.Config

// Channel-model backend re-exports (Config.ChannelBackend): the RF/PHY
// stack is pluggable — "wifi5g" (the paper's 2.4/5 GHz roadside model,
// the default) or "mmwave60g" (a 60 GHz picocell model with steered
// beams, a hard cell-radius cap, and deterministic blockage).
type MMWaveParams = channel.MMWaveParams

// DefaultMMWaveParams returns the 60 GHz picocell tuning
// (Config.MMWave).
func DefaultMMWaveParams() MMWaveParams { return channel.DefaultMMWaveParams() }

// ChannelBackends lists the registered channel-model backends.
func ChannelBackends() []string { return channel.Names() }

// SegmentSpec describes one road segment in a multi-segment deployment
// (Config.Segments).
type SegmentSpec = deploy.SegmentSpec

// TrunkConfig sets the inter-segment controller-to-controller link
// (Config.Trunk).
type TrunkConfig = deploy.TrunkConfig

// FederationConfig enables and tunes the cross-segment federation
// layer (Config.Federation): the replicated client→segment ownership
// directory, multi-hop trunk routing (ring/bypass trunks), and the
// re-locate protocol that recovers clients lost to U-turns, coverage
// gaps, or trunk outages.
type FederationConfig = federation.Config

// Trunk fault-injection re-exports (Config.Trunk.Faults): a
// deterministic, seed-driven schedule of trunk outages, random drops,
// and delay jitter.
type (
	// FaultSchedule is the full trunk fault model.
	FaultSchedule = deploy.FaultSchedule
	// Outage is one scheduled trunk blackout window.
	Outage = deploy.Outage
)

// ParseFaultSchedule parses the -trunk-faults flag syntax, e.g.
// "drop=0.01,jitter=50us,outage=1-2@2s-3s,outage=all@5s-5.1s".
func ParseFaultSchedule(s string) (FaultSchedule, error) { return deploy.ParseFaultSchedule(s) }

// DomainMode selects how a multi-segment deployment executes
// (Config.Domains): one event loop, or per-segment domains run serially
// or in parallel. See core.DomainMode.
type DomainMode = core.DomainMode

// Domain modes.
const (
	// SingleLoop is the classic exactly-serial execution.
	SingleLoop = core.SingleLoop
	// DomainsSerial partitions per segment but runs on one goroutine.
	DomainsSerial = core.DomainsSerial
	// DomainsParallel runs one goroutine per segment domain;
	// bit-identical to DomainsSerial by construction.
	DomainsParallel = core.DomainsParallel
)

// DefaultConfig returns the paper's eight-AP testbed configuration.
func DefaultConfig(s Scheme) Config { return core.DefaultConfig(s) }

// Network is a fully wired deployment.
type Network = core.Network

// NewNetwork builds a deployment; it panics if the configuration fails
// validation (use core.NewNetwork directly for the error form).
func NewNetwork(cfg Config) *Network { return core.MustNewNetwork(cfg) }

// Client is a mobile station attached to a Network.
type Client = core.Client

// Telemetry re-exports (Config.Telemetry). A network built with
// telemetry on records datapath counters, per-handoff spans, and 100 ms
// time series; export them with Network.MetricsSnapshot and the
// snapshot's Write (text, json, csv, or Prometheus exposition).
type (
	// MetricsSnapshot is a point-in-time export of a network's metrics.
	MetricsSnapshot = telemetry.Snapshot
	// MetricsFormat selects a MetricsSnapshot.Write encoding.
	MetricsFormat = telemetry.Format
	// MetricsCollector aggregates per-case summaries across runs
	// (Options.Metrics).
	MetricsCollector = telemetry.Collector
)

// Metric export formats.
const (
	MetricsText = telemetry.FormatText
	MetricsJSON = telemetry.FormatJSON
	MetricsCSV  = telemetry.FormatCSV
	MetricsProm = telemetry.FormatProm
)

// ParseMetricsFormat inverts the -metrics flag values ("text", "json",
// "csv", "prom"; "" means text).
func ParseMetricsFormat(s string) (MetricsFormat, error) { return telemetry.ParseFormat(s) }

// NewMetricsCollector returns an empty cross-run collector.
func NewMetricsCollector() *MetricsCollector { return telemetry.NewCollector() }

// Time and duration re-exports so callers need not import internal/sim.
type (
	// Time is a virtual timestamp.
	Time = sim.Time
	// Duration is a virtual interval.
	Duration = sim.Duration
)

// Common intervals.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Trajectory re-exports.
type (
	// Trajectory reports a client's position over time.
	Trajectory = mobility.Trajectory
	// Stationary is a parked client.
	Stationary = mobility.Stationary
	// Linear is a constant-velocity drive.
	Linear = mobility.Linear
	// Pattern names the Fig. 19 multi-client scenarios.
	Pattern = mobility.Pattern
)

// Multi-client driving patterns (Fig. 19).
const (
	Following = mobility.Following
	Parallel  = mobility.Parallel
	Opposing  = mobility.Opposing
)

// Drive returns a +X drive at the given mph entering at startX in lane
// laneY.
func Drive(startX, laneY, mph float64) Linear { return mobility.Drive(startX, laneY, mph) }

// DriveOpposing returns a −X drive.
func DriveOpposing(startX, laneY, mph float64) Linear {
	return mobility.DriveOpposing(startX, laneY, mph)
}

// Scenario builds trajectories for n clients in a driving pattern.
func Scenario(p Pattern, n int, startX, laneY, mph float64) []Trajectory {
	return mobility.Scenario(p, n, startX, laneY, mph)
}

// Waypoints is a piecewise-linear timed trajectory (stop-and-go traffic).
type Waypoints = mobility.Waypoints

// Waypoint is one timed position sample.
type Waypoint = mobility.Waypoint

// NewWaypoints builds a trajectory through timed positions.
func NewWaypoints(points []Waypoint) *Waypoints { return mobility.NewWaypoints(points) }

// RouteStops places n transit stops evenly across a road span.
func RouteStops(lo, hi float64, n int) []float64 { return mobility.RouteStops(lo, hi, n) }

// StopAndGo builds a transit-style trajectory with stops along the road.
func StopAndGo(startX, laneY, cruiseMph float64, stops []float64, stopDur Duration, endX float64) *Waypoints {
	return mobility.StopAndGo(startX, laneY, cruiseMph, stops, stopDur, endX)
}

// Workload re-exports.
type (
	// UDPDownlink is an iperf-style CBR downlink flow.
	UDPDownlink = workload.UDPDownlink
	// UDPUplink is an iperf-style CBR uplink flow.
	UDPUplink = workload.UDPUplink
	// TCPDownlink is a bulk TCP downlink flow.
	TCPDownlink = workload.TCPDownlink
	// Video is the Table 4 streaming session.
	Video = workload.Video
	// Conference is the Fig. 24 two-party call.
	Conference = workload.Conference
	// PageLoad is the Table 5 web fetch.
	PageLoad = workload.PageLoad
)

// NewUDPDownlink attaches a CBR downlink flow to a client.
func NewUDPDownlink(n *Network, c *Client, rateMbps float64) *UDPDownlink {
	return workload.NewUDPDownlink(n, c, rateMbps)
}

// NewUDPUplink attaches a CBR uplink flow from a client.
func NewUDPUplink(n *Network, c *Client, dstPort uint16, rateMbps float64) *UDPUplink {
	return workload.NewUDPUplink(n, c, dstPort, rateMbps)
}

// NewTCPDownlink attaches a bulk TCP flow to a client.
func NewTCPDownlink(n *Network, c *Client, totalSegments uint32) *TCPDownlink {
	return workload.NewTCPDownlink(n, c, totalSegments)
}

// NewVideo attaches a video streaming session.
func NewVideo(n *Network, c *Client) *Video {
	return workload.NewVideo(n, c, workload.DefaultVideoConfig())
}

// NewConference attaches a Skype-like call.
func NewConference(n *Network, c *Client) *Conference {
	return workload.NewConference(n, c, workload.SkypeLike())
}

// NewPageLoad attaches a 2.1 MB page fetch.
func NewPageLoad(n *Network, c *Client) *PageLoad {
	return workload.NewPageLoad(n, c)
}
