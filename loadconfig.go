package wgtt

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wgtt/internal/core"
)

// Audibility values for Config.Audibility / the -audibility flag.
const (
	// AudibilityIndex is the spatial audibility index (the default).
	AudibilityIndex = core.AudibilityIndex
	// AudibilityScan is the brute-force all-nodes delivery scan.
	AudibilityScan = core.AudibilityScan
)

// DeployOptions is the deployment-shaping option surface shared by every
// wgtt binary (wgtt-sim, wgtt-serve): everything two processes must
// agree on to construct the identical Network. Binaries register it
// with LoadConfig so their flag names, defaults, and config-file keys
// cannot drift; binary-specific knobs (workloads, output formats,
// process topology) stay in each main.
//
// String-typed fields keep their flag syntax so the JSON config file
// and the command line parse through the same code.
type DeployOptions struct {
	Scheme               string `json:"scheme"`
	Seed                 int64  `json:"seed"`
	Segments             string `json:"segments"`
	Channel              string `json:"channel"`
	Audibility           string `json:"audibility"`
	ParallelSegments     bool   `json:"parallel-segments"`
	BoundaryInterference bool   `json:"boundary-interference"`
	Federation           bool   `json:"federation"`
	RingTrunk            bool   `json:"ring-trunk"`
	TrunkFaults          string `json:"trunk-faults"`
	Trace                int    `json:"trace"`
	FlightRecorder       int    `json:"flight-recorder"`
	HandoffBand          string `json:"handoff-band"`
	UnownedSpike         int    `json:"unowned-spike"`
}

// DefaultDeployOptions mirrors DefaultConfig at the flag surface.
func DefaultDeployOptions() DeployOptions {
	return DeployOptions{Scheme: "wgtt", Seed: 1}
}

// RegisterFlags binds the shared option set onto fs. LoadConfig calls
// it; it is exported for binaries that need the registration without
// the config-file layer.
func RegisterFlags(fs *flag.FlagSet, o *DeployOptions) {
	fs.StringVar(&o.Scheme, "scheme", o.Scheme, "wgtt | 11r | stock11r")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "simulation seed")
	fs.StringVar(&o.Segments, "segments", o.Segments,
		"multi-segment roadway, e.g. 8x7.5,4x15 (NUMxSPACING per segment)")
	fs.StringVar(&o.Channel, "channel", o.Channel,
		"channel-model backend: wifi5g (default) | mmwave60g")
	fs.StringVar(&o.Audibility, "audibility", o.Audibility,
		"medium receiver lookup: index (default) | scan")
	fs.BoolVar(&o.ParallelSegments, "parallel-segments", o.ParallelSegments,
		"run each road segment as its own parallel event-loop domain (multi-segment WGTT, udp/tcp/conference workloads)")
	fs.BoolVar(&o.BoundaryInterference, "boundary-interference", o.BoundaryInterference,
		"exchange boundary-zone co-channel interference between adjacent segment domains (needs -parallel-segments and >= 2 segments)")
	fs.BoolVar(&o.Federation, "federation", o.Federation,
		"enable the cross-segment federation layer (ownership directory, multi-hop routing, re-locate protocol)")
	fs.BoolVar(&o.RingTrunk, "ring-trunk", o.RingTrunk,
		"close the trunk chain into a ring (implies -federation; needs >= 3 segments)")
	fs.StringVar(&o.TrunkFaults, "trunk-faults", o.TrunkFaults,
		"trunk fault schedule, e.g. drop=0.01,jitter=50us,outage=1-2@2s-3s,outage=all@5s-5.1s")
	fs.IntVar(&o.Trace, "trace", o.Trace,
		"dump the last N switch-protocol events (tcpdump-style)")
	fs.IntVar(&o.FlightRecorder, "flight-recorder", o.FlightRecorder,
		"causal flight recorder: retain the last N structured switch-protocol records per domain")
	fs.StringVar(&o.HandoffBand, "handoff-band", o.HandoffBand,
		"expected handoff latency band in ms, e.g. 17,21; completed handoffs outside it note an anomaly")
	fs.IntVar(&o.UnownedSpike, "unowned-spike", o.UnownedSpike,
		"note an anomaly when a controller tracks more than N unowned clients (0 disables)")
}

// sharedFlagNames must list every flag RegisterFlags registers; the
// config-file overlay keys off it.
var sharedFlagNames = []string{
	"scheme", "seed", "segments", "channel", "audibility",
	"parallel-segments", "boundary-interference",
	"federation", "ring-trunk", "trunk-faults", "trace",
	"flight-recorder", "handoff-band", "unowned-spike",
}

// overlayField copies one option from src when its flag was not set
// explicitly on the command line.
func overlayField(name string, dst, src *DeployOptions) {
	switch name {
	case "scheme":
		dst.Scheme = src.Scheme
	case "seed":
		dst.Seed = src.Seed
	case "segments":
		dst.Segments = src.Segments
	case "channel":
		dst.Channel = src.Channel
	case "audibility":
		dst.Audibility = src.Audibility
	case "parallel-segments":
		dst.ParallelSegments = src.ParallelSegments
	case "boundary-interference":
		dst.BoundaryInterference = src.BoundaryInterference
	case "federation":
		dst.Federation = src.Federation
	case "ring-trunk":
		dst.RingTrunk = src.RingTrunk
	case "trunk-faults":
		dst.TrunkFaults = src.TrunkFaults
	case "trace":
		dst.Trace = src.Trace
	case "flight-recorder":
		dst.FlightRecorder = src.FlightRecorder
	case "handoff-band":
		dst.HandoffBand = src.HandoffBand
	case "unowned-spike":
		dst.UnownedSpike = src.UnownedSpike
	}
}

// LoadConfig parses args with the shared flag surface plus -config and
// resolves a Config with flags > config file > defaults precedence:
// every shared option not set explicitly on the command line takes the
// config file's value (when -config is given), and defaults otherwise.
// Binary-specific flags must be registered on fs before the call; they
// are parsed alongside but not overlaid from the file.
//
// The returned Config is resolved but not validated — binaries apply
// their own mutations (workload telemetry, serve's domain mode) and
// then call Config.Validate themselves.
func LoadConfig(fs *flag.FlagSet, args []string) (Config, DeployOptions, error) {
	o := DefaultDeployOptions()
	configPath := fs.String("config", "", "JSON options file; explicit flags override its values")
	RegisterFlags(fs, &o)
	if err := fs.Parse(args); err != nil {
		return Config{}, o, err
	}
	if *configPath != "" {
		fileOpts := DefaultDeployOptions()
		f, err := os.Open(*configPath)
		if err != nil {
			return Config{}, o, err
		}
		dec := json.NewDecoder(f)
		dec.DisallowUnknownFields()
		err = dec.Decode(&fileOpts)
		f.Close()
		if err != nil {
			return Config{}, o, fmt.Errorf("config file %s: %w", *configPath, err)
		}
		visited := make(map[string]bool)
		fs.Visit(func(fl *flag.Flag) { visited[fl.Name] = true })
		for _, name := range sharedFlagNames {
			if !visited[name] {
				overlayField(name, &o, &fileOpts)
			}
		}
	}
	cfg, err := o.Config()
	return cfg, o, err
}

// Config resolves the option set into a deployment Config.
func (o DeployOptions) Config() (Config, error) {
	scheme, err := ParseScheme(o.Scheme)
	if err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig(scheme)
	cfg.Seed = o.Seed
	cfg.TraceCapacity = o.Trace
	cfg.FlightRecorder = o.FlightRecorder
	cfg.UnownedSpike = o.UnownedSpike
	if o.HandoffBand != "" {
		lo, hi, err := ParseHandoffBand(o.HandoffBand)
		if err != nil {
			return Config{}, err
		}
		cfg.HandoffBandLoMs, cfg.HandoffBandHiMs = lo, hi
	}
	cfg.ChannelBackend = o.Channel
	cfg.Audibility = o.Audibility
	cfg.BoundaryInterference = o.BoundaryInterference
	if o.Segments != "" {
		specs, err := ParseSegments(o.Segments)
		if err != nil {
			return Config{}, err
		}
		cfg.Segments = specs
	}
	if o.ParallelSegments {
		cfg.Domains = DomainsParallel
	}
	cfg.Federation.Enabled = o.Federation
	if o.RingTrunk {
		cfg.Federation.Enabled = true
		cfg.Federation.Ring = true
	}
	if o.TrunkFaults != "" {
		faults, err := ParseFaultSchedule(o.TrunkFaults)
		if err != nil {
			return Config{}, err
		}
		cfg.Trunk.Faults = faults
	}
	return cfg, nil
}

// ParseHandoffBand parses the -handoff-band syntax: "lo,hi" in
// milliseconds with 0 <= lo < hi (the paper's expectation is 17,21).
func ParseHandoffBand(s string) (lo, hi float64, err error) {
	loS, hiS, found := strings.Cut(s, ",")
	if !found {
		return 0, 0, fmt.Errorf("bad handoff band %q: want lo,hi in ms", s)
	}
	if lo, err = strconv.ParseFloat(strings.TrimSpace(loS), 64); err != nil {
		return 0, 0, fmt.Errorf("bad handoff band %q: %v", s, err)
	}
	if hi, err = strconv.ParseFloat(strings.TrimSpace(hiS), 64); err != nil {
		return 0, 0, fmt.Errorf("bad handoff band %q: %v", s, err)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("bad handoff band %q: want 0 <= lo < hi", s)
	}
	return lo, hi, nil
}

// ParseSegments parses the -segments syntax: comma-separated
// NUMxSPACING entries ("8x7.5,4x15"); a bare NUM inherits the default
// AP spacing.
func ParseSegments(s string) ([]SegmentSpec, error) {
	var specs []SegmentSpec
	for _, part := range strings.Split(s, ",") {
		var spec SegmentSpec
		num, spacing, found := strings.Cut(part, "x")
		n, err := strconv.Atoi(strings.TrimSpace(num))
		if err != nil {
			return nil, fmt.Errorf("bad segment %q: %v", part, err)
		}
		spec.NumAPs = n
		if found {
			sp, err := strconv.ParseFloat(strings.TrimSpace(spacing), 64)
			if err != nil {
				return nil, fmt.Errorf("bad segment %q: %v", part, err)
			}
			spec.APSpacing = sp
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
