package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenario drives arbitrary bytes through the whole front end:
// parse → validate → compile. The invariants are absolute — no input
// ever panics any stage, and a scenario that validates always compiles
// to a config that passes core's Config.Validate. The corpus seeds
// from every checked-in example scenario plus a few structural edge
// cases, so the fuzzer starts from realistic documents instead of
// noise.
func FuzzScenario(f *testing.F) {
	examples, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*"))
	if err != nil {
		f.Fatal(err)
	}
	if len(examples) == 0 {
		f.Fatal("no example scenarios found to seed the corpus")
	}
	for _, path := range examples {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("road:\n  segments:\n    - aps: 4\nroutes:\n  - name: b\n    mph: 25\n"))
	f.Add([]byte(`{"road": {"segments": [{"aps": 1}]}, "routes": [{"name": "r", "mps": 1}]}`))
	f.Add([]byte("---\n"))
	f.Add([]byte("a:\n\tb\n"))
	f.Add([]byte("routes: [1, 2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // malformed input must error, never panic
		}
		c, err := Compile(s, 1)
		if err != nil {
			return // validation rejected it; that's a fine outcome
		}
		// The compile contract: a scenario that passed Validate yields a
		// config core accepts and a positive horizon.
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("valid scenario compiled to invalid config: %v\nscenario: %s", err, data)
		}
		if c.Horizon < 0 {
			t.Fatalf("negative horizon %v from: %s", c.Horizon, data)
		}
		// Compilation must be deterministic.
		again, err := Compile(s, 1)
		if err != nil {
			t.Fatalf("second compile failed: %v", err)
		}
		if c.Digest() != again.Digest() {
			t.Fatalf("nondeterministic compile for: %s", data)
		}
	})
}
