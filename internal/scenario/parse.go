package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Parse reads a scenario from YAML or JSON bytes. A document whose
// first significant byte is '{' parses as JSON; everything else goes
// through the YAML-subset reader. Both paths bind the Scenario struct
// strictly: unknown fields are errors, so a typoed key can never
// silently no-op. Parse does not validate — call Validate (Compile
// does) to check semantic invariants.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if looksLikeJSON(data) {
		if err := strictUnmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		return &s, nil
	}
	v, err := yamlToAny(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if _, ok := v.(map[string]any); !ok {
		return nil, fmt.Errorf("scenario: top level must be a mapping, not %T", v)
	}
	// Re-encode the generic tree as JSON so YAML and JSON share one
	// strict struct-binding path (and one set of error messages).
	enc, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := strictUnmarshal(enc, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &s, nil
}

// ParseFile reads a scenario file; .json forces JSON, anything else
// sniffs.
func ParseFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") && !looksLikeJSON(data) {
		return nil, fmt.Errorf("scenario: %s: not a JSON document", path)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// looksLikeJSON reports whether the document's first significant byte
// opens a JSON object.
func looksLikeJSON(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}

// strictUnmarshal binds JSON with unknown fields rejected.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document after the first is garbage, not padding.
	if dec.More() {
		return fmt.Errorf("trailing data after scenario document")
	}
	return nil
}
