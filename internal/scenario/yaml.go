package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a small, dependency-free YAML reader covering the subset
// scenario files use: block mappings and sequences nested by
// indentation, flow sequences of scalars ([1, 2.5]), quoted and bare
// scalars, and # comments. It parses to generic Go values
// (map[string]any / []any / scalars); parse.go then round-trips those
// through encoding/json to bind the Scenario struct strictly, so YAML
// and JSON files share one binding path and one set of unknown-field
// errors. Anchors, aliases, tags, multi-document streams, flow
// mappings, and block scalars are out of scope and rejected with a
// line-numbered error — never a panic (FuzzScenario holds the parser
// to that).

// yline is one significant input line.
type yline struct {
	n      int // 1-based source line
	indent int
	text   string
}

// yamlToAny parses the YAML subset into generic values.
func yamlToAny(data []byte) (any, error) {
	lines, err := ylex(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yparser{lines: lines}
	v, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", p.lines[p.i].n)
	}
	return v, nil
}

// ylex splits the input into significant lines: comments stripped
// (outside quotes), blanks dropped, tab indentation rejected.
func ylex(data []byte) ([]yline, error) {
	var out []yline
	for n, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("yaml line %d: tab indentation is not allowed", n+1)
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if text == "---" && indent == 0 {
			if len(out) > 0 {
				return nil, fmt.Errorf("yaml line %d: multi-document streams are not supported", n+1)
			}
			continue
		}
		out = append(out, yline{n: n + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing # comment, honoring quoted strings.
func stripComment(s string) string {
	if strings.HasPrefix(s, "#") {
		return ""
	}
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && i > 0 && (s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

type yparser struct {
	lines []yline
	i     int
}

// block parses the node whose first line sits at the given indent.
func (p *yparser) block(indent int) (any, error) {
	ln := p.lines[p.i]
	if isSeqItem(ln.text) {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// sequence parses consecutive "- item" lines at one indent.
func (p *yparser) sequence(indent int) (any, error) {
	out := []any{}
	for p.i < len(p.lines) {
		ln := p.lines[p.i]
		if ln.indent != indent || !isSeqItem(ln.text) {
			if ln.indent > indent {
				return nil, fmt.Errorf("yaml line %d: unexpected indentation", ln.n)
			}
			break
		}
		rest := strings.TrimLeft(strings.TrimPrefix(ln.text, "-"), " ")
		switch {
		case rest == "":
			// "-" alone: the item is the nested block below.
			p.i++
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				v, err := p.block(p.lines[p.i].indent)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
		case isSeqItem(rest):
			return nil, fmt.Errorf("yaml line %d: nested inline sequences are not supported", ln.n)
		case isMapEntry(rest):
			// "- key: …": the dash opens a mapping whose keys align at
			// the key's column.
			p.lines[p.i] = yline{n: ln.n, indent: ln.indent + (len(ln.text) - len(rest)), text: rest}
			v, err := p.mapping(p.lines[p.i].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			v, err := flowOrScalar(rest, ln.n)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			p.i++
		}
	}
	return out, nil
}

// mapping parses consecutive "key: value" lines at one indent.
func (p *yparser) mapping(indent int) (any, error) {
	m := map[string]any{}
	for p.i < len(p.lines) {
		ln := p.lines[p.i]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, fmt.Errorf("yaml line %d: unexpected indentation", ln.n)
			}
			break
		}
		if isSeqItem(ln.text) {
			return nil, fmt.Errorf("yaml line %d: sequence item inside a mapping", ln.n)
		}
		key, rest, err := splitMapEntry(ln.text, ln.n)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.n, key)
		}
		if rest == "" {
			p.i++
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				v, err := p.block(p.lines[p.i].indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
			} else {
				m[key] = nil
			}
			continue
		}
		v, err := flowOrScalar(rest, ln.n)
		if err != nil {
			return nil, err
		}
		m[key] = v
		p.i++
	}
	return m, nil
}

// isMapEntry reports whether text starts a "key: …" entry.
func isMapEntry(text string) bool {
	k, _, err := splitMapEntry(text, 0)
	return err == nil && k != ""
}

// splitMapEntry cuts "key: value" at the first unquoted colon followed
// by a space or end of line.
func splitMapEntry(text string, n int) (key, rest string, err error) {
	for i := 0; i < len(text); i++ {
		if text[i] == '"' || text[i] == '\'' {
			return "", "", fmt.Errorf("yaml line %d: quoted keys are not supported", n)
		}
		if text[i] == ':' && (i+1 == len(text) || text[i+1] == ' ') {
			key = strings.TrimSpace(text[:i])
			rest = strings.TrimSpace(text[i+1:])
			if key == "" {
				return "", "", fmt.Errorf("yaml line %d: empty mapping key", n)
			}
			return key, rest, nil
		}
	}
	return "", "", fmt.Errorf("yaml line %d: expected \"key: value\", got %q", n, text)
}

// flowOrScalar parses an inline value: a [a, b, c] flow sequence of
// scalars, or a single scalar.
func flowOrScalar(s string, n int) (any, error) {
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("yaml line %d: flow mappings are not supported", n)
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow sequence", n)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		out := []any{}
		if inner == "" {
			return out, nil
		}
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if strings.ContainsAny(part, "[]{}") {
				return nil, fmt.Errorf("yaml line %d: nested flow collections are not supported", n)
			}
			v, err := scalar(part, n)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return scalar(s, n)
}

// scalar parses one scalar token: quoted string, null, bool, int,
// float, or bare string.
func scalar(s string, n int) (any, error) {
	if len(s) >= 2 && s[0] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml line %d: bad quoted string %s", n, s)
		}
		return u, nil
	}
	if len(s) >= 2 && s[0] == '\'' {
		if s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yaml line %d: unterminated string %s", n, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
