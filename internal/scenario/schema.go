// Package scenario is the declarative scenario layer: a transit network
// described as data — a road of chained AP segments with intersections
// and U-turn points, bus routes with timetables and stops, client
// populations that board and alight at those stops, and per-route speed
// profiles from walking pace to the trackside regime — that validates
// and compiles deterministically to the simulator's core.Config plus
// per-client trajectory/workload plans.
//
// A scenario file is YAML (a small, dependency-free subset; see yaml.go)
// or JSON; both bind to the same Scenario struct with unknown fields
// rejected. Compile is a pure function of the Scenario value: no clock,
// no ambient randomness, no map iteration — the same scenario always
// compiles to the bit-identical deployment, which is what lets
// examples/scenarios/corridor.yaml reproduce the hand-built corridor
// experiment's golden pins byte for byte and what the CI digest gate
// checks.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"wgtt/internal/sim"
)

// Dur is a virtual duration in a scenario file. It unmarshals from a
// Go duration string ("250ms", "8s", "6h") or a bare number of seconds.
type Dur sim.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %v", s, err)
		}
		*d = Dur(td)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("bad duration %s: want \"250ms\"-style string or seconds", b)
	}
	*d = Dur(secs * float64(sim.Second))
	return nil
}

// MarshalJSON implements json.Marshaler (round-trips as a duration
// string).
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// D converts to the simulator's duration type.
func (d Dur) D() sim.Duration { return sim.Duration(d) }

// Scenario is one declarative transit-network scenario.
type Scenario struct {
	// Name labels the scenario in reports and digests.
	Name string `json:"name"`
	// Seed is the default simulation seed (0 = 1); an explicit CLI
	// -seed overrides it, which is how the golden tests sweep seeds
	// over one checked-in file.
	Seed int64 `json:"seed,omitempty"`
	// Scheme selects the roaming system: wgtt (default) | 11r |
	// stock11r.
	Scheme string `json:"scheme,omitempty"`
	// Channel selects the channel-model backend: wifi5g (default) |
	// mmwave60g.
	Channel string `json:"channel,omitempty"`
	// Horizon is the simulated run length. Zero derives it from the
	// timetable: the latest route-run completion time. Because every
	// horizon is a seeded virtual duration — never a wall-clock date —
	// day-scale scenarios ("6h") replay bit-identically.
	Horizon Dur `json:"horizon,omitempty"`
	// Federation enables the cross-segment federation layer (needs >= 2
	// segments).
	Federation bool `json:"federation,omitempty"`
	// RingTrunk closes the trunk chain into a ring (implies Federation;
	// needs >= 3 segments).
	RingTrunk bool `json:"ring-trunk,omitempty"`

	Road    Road         `json:"road"`
	Routes  []Route      `json:"routes"`
	Clients []Population `json:"clients,omitempty"`
}

// Road is the roadway: chained AP segments plus the point features
// (intersections, U-turn bays) routes may reference.
type Road struct {
	// Segments chains the road's coverage segments in driving order.
	Segments []Segment `json:"segments"`
	// Spacing is the default AP pitch in meters (0 = the testbed's
	// 7.5 m).
	Spacing float64 `json:"spacing,omitempty"`
	// Setback is the default AP setback from the near lane (0 = the
	// testbed's 18 m).
	Setback float64 `json:"setback,omitempty"`
	// FirstAPX places the first AP (default 0).
	FirstAPX float64 `json:"first-ap-x,omitempty"`
	// UTurns lists the x positions where a route may legally reverse;
	// a route's uturn-at must name one of them.
	UTurns []float64 `json:"uturns,omitempty"`
	// Intersections annotates cross-street positions; each must lie on
	// the road span. (Generators use them to place stops and U-turns.)
	Intersections []float64 `json:"intersections,omitempty"`
}

// Segment is one road segment's AP placement. Zero fields inherit the
// road defaults, exactly like deploy.SegmentSpec.
type Segment struct {
	// APs is the segment's AP count.
	APs int `json:"aps"`
	// Spacing overrides the AP pitch for this segment.
	Spacing float64 `json:"spacing,omitempty"`
	// Setback overrides the AP setback for this segment.
	Setback float64 `json:"setback,omitempty"`
	// Gap is the distance from the previous segment's last AP (0 = one
	// pitch).
	Gap float64 `json:"gap,omitempty"`
}

// Route is one transit line: a speed profile along the road, optional
// stops, and a timetable of departures. Exactly one of MPH and Mps
// sets the cruise speed; the range spans walking pace (1 m/s) through
// the trackside regime (30+ m/s).
type Route struct {
	Name string `json:"name"`
	// Lane is the y offset of the driving lane (0 = near lane;
	// negative = farther from the APs).
	Lane float64 `json:"lane,omitempty"`
	// MPH is the cruise speed in miles per hour.
	MPH float64 `json:"mph,omitempty"`
	// Mps is the cruise speed in meters per second.
	Mps float64 `json:"mps,omitempty"`
	// Stops places this many stops evenly across the road span
	// (mobility.RouteStops). Mutually exclusive with StopsAt.
	Stops int `json:"stops,omitempty"`
	// StopsAt lists explicit stop x positions in driving order.
	StopsAt []float64 `json:"stops-at,omitempty"`
	// Dwell is how long a run waits at each stop.
	Dwell Dur `json:"dwell,omitempty"`
	// LeadIn is how far before the first AP the route enters (and past
	// the last AP it exits); 0 = the experiments' 5 m margin.
	LeadIn float64 `json:"lead-in,omitempty"`
	// Reverse drives the route in -X, entering past the last AP.
	// Reverse routes cannot have stops or a U-turn.
	Reverse bool `json:"reverse,omitempty"`
	// UTurnAt drives forward to this x, reverses, and returns to the
	// route start. It must name a declared road U-turn point, and the
	// route must be stop-free.
	UTurnAt *float64 `json:"uturn-at,omitempty"`
	// Departures is the timetable: run start offsets, strictly
	// increasing. Mutually exclusive with Headway/Runs. Empty with no
	// Headway means a single departure at 0.
	Departures []Dur `json:"departures,omitempty"`
	// Headway generates a periodic timetable: Runs departures spaced
	// Headway apart starting at 0.
	Headway Dur `json:"headway,omitempty"`
	// Runs is the departure count of a Headway timetable.
	Runs int `json:"runs,omitempty"`
}

// Workload names a client population's traffic.
type Workload string

// Workloads.
const (
	// WorkloadUDP is the saturating iperf-style CBR downlink.
	WorkloadUDP Workload = "udp"
	// WorkloadTCP is the bulk TCP downlink.
	WorkloadTCP Workload = "tcp"
	// WorkloadNone attaches no traffic (the client only associates and
	// roams).
	WorkloadNone Workload = "none"
)

// Population is a group of clients riding one route departure. Without
// Board/Alight the clients ride the whole run (vehicles on the road);
// with them the clients wait at the boarding stop, ride the vehicle
// between the two stops, and remain at the alighting stop — the
// boarding/alighting churn of a transit line.
type Population struct {
	// Route names the route the population rides.
	Route string `json:"route"`
	// Departure indexes the route's timetable (default 0).
	Departure int `json:"departure,omitempty"`
	// Count is the group size (0 = 1).
	Count int `json:"count,omitempty"`
	// Gap is the follow distance in meters between successive clients
	// of a stop-free route (0 = the experiments' 3 m). Populations on
	// stop-bearing routes share the vehicle and ignore it.
	Gap float64 `json:"gap,omitempty"`
	// Board is the stop index where the clients board (nil = ride from
	// the route start).
	Board *int `json:"board,omitempty"`
	// Alight is the stop index where the clients alight (nil = ride to
	// the route end). Must be after Board.
	Alight *int `json:"alight,omitempty"`
	// Workload is the attached traffic: udp (default) | tcp | none.
	Workload Workload `json:"workload,omitempty"`
	// RateMbps is the UDP offered load (0 = the experiments' 30).
	RateMbps float64 `json:"rate,omitempty"`
	// Start delays the workload start. 0 = the run's departure time
	// plus the experiments' 100 ms post-association warmup; an
	// explicit value is an absolute offset from the start of the run
	// (set it to model pre-departure traffic).
	Start Dur `json:"start,omitempty"`
}

// Schema defaults, shared with the hand-built experiments so a
// scenario that omits them compiles onto the exact same numbers.
const (
	// DefaultLeadIn is the drive-across margin past each end of the AP
	// array (harness.driveAcross's margin).
	DefaultLeadIn = 5.0
	// DefaultFollowGap is the following-pattern client spacing
	// (mobility.Following's 3 m).
	DefaultFollowGap = 3.0
	// DefaultRateMbps is the saturating UDP offered load
	// (harness.offeredUDPMbps).
	DefaultRateMbps = 30.0
	// DefaultWarmup delays workload start past association
	// (harness.warmup).
	DefaultWarmup = 100 * sim.Millisecond
	// MaxSpeedMps bounds route speeds: past high-speed-rail pace the
	// channel coherence assumptions are meaningless.
	MaxSpeedMps = 130.0
)

// speedMps resolves the route's cruise speed in m/s (0 when unset;
// Validate rejects that).
func (r *Route) speedMps() float64 {
	if r.Mps != 0 {
		return r.Mps
	}
	return mphToMps(r.MPH)
}
