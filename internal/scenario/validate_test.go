package scenario

import (
	"strings"
	"testing"
)

// TestValidateErrors is the malformed-scenario table: every class of
// schema abuse must fail validation with a specific, stable error
// string — dangling references, overlapping timetables, zero-length
// segments, out-of-range speeds, and the rest.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		want string
	}{
		{
			name: "dangling route reference",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
clients:
  - route: tram
`,
			want: `client group 0 references unknown route "tram"`,
		},
		{
			name: "dangling stop reference",
			yaml: `
road:
  segments:
    - aps: 4
    - aps: 4
routes:
  - name: bus
    mph: 25
    stops: 3
clients:
  - route: bus
    board: 5
    alight: 6
`,
			want: `client group 0 boards at stop 5 but route "bus" has 3 stops`,
		},
		{
			name: "overlapping timetable",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    departures: [2s, 1s]
`,
			want: `route "bus" timetable overlaps: departure 1 (1s) does not follow departure 0 (2s)`,
		},
		{
			name: "zero-length segment",
			yaml: `
road:
  segments:
    - aps: 4
    - aps: 0
routes:
  - name: bus
    mph: 25
`,
			want: `road segment 1 has no APs (zero-length segment)`,
		},
		{
			name: "speed of zero",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
`,
			want: `route "bus" speed 0 m/s out of range (0, 130] m/s`,
		},
		{
			name: "speed past the rail limit",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: maglev
    mps: 200
`,
			want: `route "maglev" speed 200 m/s out of range (0, 130] m/s`,
		},
		{
			name: "undeclared u-turn point",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    uturn-at: 11
`,
			want: `route "bus" u-turns at x=11 but the road declares no u-turn point there`,
		},
		{
			name: "u-turn outside the road",
			yaml: `
road:
  segments:
    - aps: 4
  uturns: [99]
routes:
  - name: bus
    mph: 25
`,
			want: `u-turn at x=99 lies outside the road span [0, 22.5]`,
		},
		{
			name: "stop outside the road",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    stops-at: [99]
`,
			want: `route "bus" stop 0 at x=99 lies outside the road span [0, 22.5]`,
		},
		{
			name: "stops not increasing",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    stops-at: [15, 10]
`,
			want: `route "bus" stops-at must be strictly increasing (stop 1 at x=10)`,
		},
		{
			name: "both stop forms",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    stops: 2
    stops-at: [10]
`,
			want: `route "bus" sets both stops and stops-at`,
		},
		{
			name: "both speed forms",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    mps: 10
`,
			want: `route "bus" sets both mph and mps`,
		},
		{
			name: "headway without runs",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    headway: 5s
`,
			want: `route "bus" has a headway but no runs`,
		},
		{
			name: "alight before board",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    stops: 3
clients:
  - route: bus
    board: 2
    alight: 1
`,
			want: `client group 0 alights at stop 1 before boarding at stop 2`,
		},
		{
			name: "unknown workload",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
clients:
  - route: bus
    workload: carrier-pigeon
`,
			want: `client group 0 has unknown workload "carrier-pigeon"`,
		},
		{
			name: "ring needs three segments",
			yaml: `
ring-trunk: true
road:
  segments:
    - aps: 4
    - aps: 4
routes:
  - name: bus
    mph: 25
`,
			want: `a ring trunk needs at least 3 road segments, got 2`,
		},
		{
			name: "federation needs multi-segment",
			yaml: `
federation: true
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
`,
			want: `federation needs at least 2 road segments, got 1`,
		},
		{
			name: "unknown channel backend",
			yaml: `
channel: carrier-wave
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
`,
			want: `unknown channel backend "carrier-wave"`,
		},
		{
			name: "unknown scheme",
			yaml: `
scheme: psychic
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
`,
			want: `unknown scheme "psychic"`,
		},
		{
			name: "no routes",
			yaml: `
road:
  segments:
    - aps: 4
`,
			want: `no routes`,
		},
		{
			name: "no segments",
			yaml: `
routes:
  - name: bus
    mph: 25
`,
			want: `road has no segments`,
		},
		{
			name: "duplicate route name",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
  - name: bus
    mph: 20
`,
			want: `duplicate route name "bus"`,
		},
		{
			name: "departure index out of range",
			yaml: `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
clients:
  - route: bus
    departure: 1
`,
			want: `client group 0 departure 1 out of range: route "bus" has 1`,
		},
		{
			name: "negative horizon",
			yaml: `
horizon: -5s
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
`,
			want: `negative horizon -5s`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.yaml))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = s.Validate()
			if err == nil {
				t.Fatal("validated a malformed scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q\ndoes not contain %q", err, tc.want)
			}
			// Compile must surface the identical validation error.
			if _, cerr := Compile(s, 1); cerr == nil || cerr.Error() != err.Error() {
				t.Errorf("Compile error %v, want %v", cerr, err)
			}
		})
	}
}
