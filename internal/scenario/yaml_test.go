package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLSubset(t *testing.T) {
	in := `
# a comment
name: corridor  # trailing comment
seed: 7
ratio: 2.5
flag: true
nothing: null
quoted: "a # not-comment"
single: 'it''s'
list: [1, 2.5, x]
road:
  segments:
    - aps: 4
      spacing: 7.5
    - aps: 2
  uturns: []
words:
  - alpha
  - "beta gamma"
`
	got, err := yamlToAny([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":    "corridor",
		"seed":    int64(7),
		"ratio":   2.5,
		"flag":    true,
		"nothing": nil,
		"quoted":  "a # not-comment",
		"single":  "it's",
		"list":    []any{int64(1), 2.5, "x"},
		"road": map[string]any{
			"segments": []any{
				map[string]any{"aps": int64(4), "spacing": 7.5},
				map[string]any{"aps": int64(2)},
			},
			"uturns": []any{},
		},
		"words": []any{"alpha", "beta gamma"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed tree mismatch\n got: %#v\nwant: %#v", got, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"tab indent", "a:\n\tb: 1", "tab indentation"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"flow mapping", "a: {b: 1}", "flow mappings are not supported"},
		{"multi doc", "---\na: 1\n---\nb: 2", "multi-document"},
		{"unterminated flow", "a: [1, 2", "unterminated flow sequence"},
		{"nested flow", "a: [[1], 2]", "nested flow collections"},
		{"bad quoted", `a: "oops`, "bad quoted string"},
		{"bare text", "just words, no colon", "expected \"key: value\""},
		{"seq in map", "a: 1\n- b", "sequence item inside a mapping"},
		{"quoted key", `"a": 1`, "quoted keys are not supported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := yamlToAny([]byte(tc.in))
			if err == nil {
				t.Fatalf("parsed %q without error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestYAMLEmptyDocument(t *testing.T) {
	for _, in := range []string{"", "# only comments\n", "---\n"} {
		v, err := yamlToAny([]byte(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if m, ok := v.(map[string]any); !ok || len(m) != 0 {
			t.Errorf("%q parsed to %#v, want empty mapping", in, v)
		}
	}
}
