package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"wgtt/internal/core"
	"wgtt/internal/deploy"
	"wgtt/internal/mobility"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Compiled is a scenario lowered to the simulator's native terms: a
// validated core.Config, the run horizon, and one trajectory/workload
// plan per client. Compile is a pure function of (Scenario, seed) — no
// clock, no ambient randomness — so the same inputs always produce the
// bit-identical Compiled, which Digest checks.
type Compiled struct {
	// Name is the scenario name (reports, digests).
	Name string
	// Config is the compiled deployment configuration. Domains is left
	// at SingleLoop and Telemetry off; runners layer execution-mode
	// knobs on top without recompiling.
	Config core.Config
	// Horizon is the simulated run length: the scenario's explicit
	// horizon, or the latest route-run completion time.
	Horizon sim.Duration
	// Clients are the client plans in deterministic construction order
	// (population order, then index within the population).
	Clients []ClientPlan

	// APsPerSegment is the uniform per-segment AP count for reports
	// (0 when segments differ).
	APsPerSegment int
	// SpeedMPH is the first route's cruise speed in mph for reports
	// (0 when the route is specified in m/s).
	SpeedMPH float64
}

// ClientPlan is one client's compiled trajectory and workload.
type ClientPlan struct {
	// Route names the route the client rides.
	Route string
	// Traj is the client's trajectory over the whole horizon.
	Traj mobility.Trajectory
	// Workload is the attached traffic (udp | tcp | none).
	Workload Workload
	// RateMbps is the UDP offered load.
	RateMbps float64
	// Start is when the workload starts (offset from run start).
	Start sim.Duration
}

// Compile validates the scenario and lowers it. seed 0 defers to the
// scenario's seed (itself defaulting to 1); a non-zero seed overrides,
// which is how the golden tests sweep seeds over one checked-in file.
func Compile(s *Scenario, seed int64) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scheme, _ := s.scheme() // Validate checked it
	cfg := core.DefaultConfig(scheme)
	if seed == 0 {
		seed = s.Seed
	}
	if seed == 0 {
		seed = 1
	}
	cfg.Seed = seed
	if s.Road.Spacing != 0 {
		cfg.APSpacing = s.Road.Spacing
	}
	if s.Road.Setback != 0 {
		cfg.APSetback = s.Road.Setback
	}
	if s.Road.FirstAPX != 0 {
		cfg.FirstAPX = s.Road.FirstAPX
	}
	cfg.Segments = s.segmentSpecs()
	cfg.ChannelBackend = s.Channel
	if s.Federation || s.RingTrunk {
		cfg.Federation.Enabled = true
	}
	if s.RingTrunk {
		cfg.Federation.Ring = true
	}

	c := &Compiled{Name: s.Name, Config: cfg}
	c.APsPerSegment = uniformAPs(s.Road.Segments)
	c.SpeedMPH = s.Routes[0].MPH

	lo, hi := cfg.RoadSpanX()
	// Horizon: explicit, or the latest run completion over every route's
	// full timetable (so even unridden runs finish on screen).
	if s.Horizon > 0 {
		c.Horizon = s.Horizon.D()
	} else {
		for i := range s.Routes {
			r := &s.Routes[i]
			for _, dep := range r.departures() {
				run := buildRun(r, dep, 0, lo, hi)
				if run.end > c.Horizon {
					c.Horizon = run.end
				}
			}
		}
	}

	for gi := range s.Clients {
		p := &s.Clients[gi]
		r := s.route(p.Route)
		dep := r.departures()[p.Departure]
		count := p.Count
		if count == 0 {
			count = 1
		}
		gap := p.Gap
		if gap == 0 {
			gap = DefaultFollowGap
		}
		workload := p.Workload
		if workload == "" {
			workload = WorkloadUDP
		}
		rate := p.RateMbps
		if rate == 0 {
			rate = DefaultRateMbps
		}
		// The workload default-starts a warmup after the run departs —
		// pushing traffic at a vehicle still parked outside coverage
		// burns floor-MCS airtime and starves its neighbours. An
		// explicit start in the file wins (pre-departure traffic is a
		// legitimate thing to model; it just shouldn't be the default).
		start := p.Start.D()
		if start == 0 {
			start = dep + DefaultWarmup
		}
		rides := r.stopCount() > 0 && (p.Board != nil || p.Alight != nil)
		for i := 0; i < count; i++ {
			var traj mobility.Trajectory
			if rides {
				// Boarding/alighting riders share the vehicle; the
				// follow gap is a platoon concept and does not apply.
				run := buildRun(r, dep, 0, lo, hi)
				traj = riderTraj(run, p.Board, p.Alight)
			} else if r.stopCount() > 0 {
				run := buildRun(r, dep, 0, lo, hi)
				traj = run.traj
			} else {
				run := buildRun(r, dep, gap*float64(i), lo, hi)
				traj = run.traj
			}
			c.Clients = append(c.Clients, ClientPlan{
				Route:    r.Name,
				Traj:     traj,
				Workload: workload,
				RateMbps: rate,
				Start:    start,
			})
		}
	}
	if err := c.Config.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: compiled config invalid: %w", err)
	}
	return c, nil
}

// run is one route departure's compiled motion: the vehicle trajectory,
// its completion time, and (for stop-bearing routes) the waypoint
// timeline riders slice.
type run struct {
	traj mobility.Trajectory
	end  sim.Duration
	// pts is the waypoint timeline (nil for the pure-Linear fast path,
	// which stop-free routes with departure 0 take).
	pts []mobility.Waypoint
	// stopArrive[i] is when the vehicle reaches stop i.
	stopArrive []sim.Duration
}

// buildRun compiles one departure of a route. followOffset shifts the
// start back along the direction of travel (platoon spacing); lo, hi is
// the road span in x.
func buildRun(r *Route, dep sim.Duration, followOffset float64, lo, hi float64) run {
	leadIn := r.leadIn()
	stops := r.stopPositions(lo, hi)

	// Fast path: a stop-free forward route departing at 0 is exactly the
	// experiments' constant-velocity drive — same construction, same
	// floats, which is what keeps corridor.yaml on the golden pins.
	if dep == 0 && len(stops) == 0 && !r.Reverse && r.UTurnAt == nil {
		base := lo - leadIn
		var traj mobility.Linear
		if r.MPH != 0 {
			traj = mobility.Drive(base-followOffset, r.Lane, r.MPH)
		} else {
			traj = mobility.Linear{Start: rf.Position{X: base - followOffset, Y: r.Lane}, VelX: r.Mps}
		}
		dist := (hi + leadIn) - (lo - leadIn)
		secs := dist / traj.SpeedMps()
		return run{traj: traj, end: sim.Duration(secs * float64(sim.Second))}
	}

	v := r.speedMps()
	dir := 1.0
	startX := lo - leadIn - followOffset
	endX := hi + leadIn
	if r.Reverse {
		dir = -1.0
		startX = hi + leadIn + followOffset
		endX = lo - leadIn
	}

	t := dep
	x := startX
	pts := []mobility.Waypoint{{At: t, Pos: rf.Position{X: x, Y: r.Lane}}}
	moveTo := func(nx float64) {
		d := (nx - x) * dir
		if d <= 0 {
			return
		}
		t += sim.Duration(float64(sim.Second) * d / v)
		x = nx
		pts = append(pts, mobility.Waypoint{At: t, Pos: rf.Position{X: x, Y: r.Lane}})
	}

	var arrive []sim.Duration
	switch {
	case r.UTurnAt != nil:
		moveTo(*r.UTurnAt)
		dir = -dir
		moveTo(startX)
	default:
		for _, sx := range stops {
			moveTo(sx)
			arrive = append(arrive, t)
			if r.Dwell > 0 {
				t += r.Dwell.D()
				pts = append(pts, mobility.Waypoint{At: t, Pos: rf.Position{X: x, Y: r.Lane}})
			}
		}
		moveTo(endX)
	}
	return run{traj: mobility.NewWaypoints(pts), end: t, pts: pts, stopArrive: arrive}
}

// riderTraj slices the vehicle timeline into one rider's trajectory:
// wait at the boarding stop (the Waypoints clamp before the first point),
// ride the vehicle between the stops, and remain where they alighted
// (the clamp after the last point). nil board rides from the route
// start; nil alight rides to the end.
func riderTraj(vehicle run, board, alight *int) mobility.Trajectory {
	from := vehicle.pts[0].At
	if board != nil {
		from = vehicle.stopArrive[*board]
	}
	to := vehicle.pts[len(vehicle.pts)-1].At
	if alight != nil {
		to = vehicle.stopArrive[*alight]
	}
	var pts []mobility.Waypoint
	for _, p := range vehicle.pts {
		if p.At >= from && p.At <= to {
			pts = append(pts, p)
		}
	}
	return mobility.NewWaypoints(pts)
}

// stopPositions resolves the route's stop x positions in driving order.
func (r *Route) stopPositions(lo, hi float64) []float64 {
	if len(r.StopsAt) > 0 {
		return r.StopsAt
	}
	return mobility.RouteStops(lo, hi, r.Stops)
}

// segmentSpecs lowers the road's segments to deploy specs.
func (s *Scenario) segmentSpecs() []deploy.SegmentSpec {
	specs := make([]deploy.SegmentSpec, len(s.Road.Segments))
	for i, seg := range s.Road.Segments {
		specs[i] = deploy.SegmentSpec{
			NumAPs:    seg.APs,
			APSpacing: seg.Spacing,
			APSetback: seg.Setback,
			Gap:       seg.Gap,
		}
	}
	return specs
}

// roadSpan is the road's x span under the scenario's geometry defaults
// (the same resolution core.Config.RoadSpanX performs after compile).
func (s *Scenario) roadSpan() (lo, hi float64) {
	if len(s.Road.Segments) == 0 {
		return 0, 0
	}
	def := core.DefaultConfig(core.WGTT)
	spacing := s.Road.Spacing
	if spacing == 0 {
		spacing = def.APSpacing
	}
	setback := s.Road.Setback
	if setback == 0 {
		setback = def.APSetback
	}
	geoms := deploy.Resolve(s.segmentSpecs(), s.Road.FirstAPX, spacing, setback)
	last := geoms[len(geoms)-1]
	return geoms[0].FirstAPX, last.FirstAPX + float64(last.NumAPs-1)*last.APSpacing
}

// uniformAPs is the shared per-segment AP count, or 0 when mixed.
func uniformAPs(segs []Segment) int {
	if len(segs) == 0 {
		return 0
	}
	n := segs[0].APs
	for _, s := range segs[1:] {
		if s.APs != n {
			return 0
		}
	}
	return n
}

// mphToMps converts miles per hour to meters per second.
func mphToMps(mph float64) float64 { return mobility.MPHToMps(mph) }

// Digest is a stable content hash of the compiled scenario: the full
// Config, the horizon, and every client plan (trajectory included).
// Two compiles agree on the digest iff they would run bit-identically,
// which is what the CI determinism gate checks.
func (c *Compiled) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%#v\n%d\n", c.Name, c.Config, c.Horizon)
	for _, p := range c.Clients {
		fmt.Fprintf(h, "%s %d %s %g %#v\n", p.Route, p.Start, p.Workload, p.RateMbps, p.Traj)
	}
	return hex.EncodeToString(h.Sum(nil))
}
