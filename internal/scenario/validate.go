package scenario

import (
	"fmt"

	"wgtt/internal/channel"
	"wgtt/internal/core"
	"wgtt/internal/sim"
)

// Validate rejects scenarios the compiler cannot faithfully express:
// dangling route→stop references, overlapping timetables, zero-length
// segments, out-of-range speeds, undeclared U-turn points, and every
// combination the downstream core.Config would refuse. A scenario that
// passes Validate always compiles, and its compiled Config always
// passes core's Config.Validate — the invariant FuzzScenario holds the
// pair to.
func (s *Scenario) Validate() error {
	scheme, err := s.scheme()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if !channel.Known(s.Channel) {
		return fmt.Errorf("scenario: unknown channel backend %q (have %v)", s.Channel, channel.Names())
	}
	if s.Channel != "" && s.Channel != channel.DefaultBackend && scheme != core.WGTT {
		return fmt.Errorf("scenario: channel backend %q requires the wgtt scheme", s.Channel)
	}
	if err := s.validateRoad(); err != nil {
		return err
	}
	lo, hi := s.roadSpan()
	for _, u := range s.Road.UTurns {
		if u < lo || u > hi {
			return fmt.Errorf("scenario: u-turn at x=%g lies outside the road span [%g, %g]", u, lo, hi)
		}
	}
	for _, x := range s.Road.Intersections {
		if x < lo || x > hi {
			return fmt.Errorf("scenario: intersection at x=%g lies outside the road span [%g, %g]", x, lo, hi)
		}
	}
	if s.Horizon < 0 {
		return fmt.Errorf("scenario: negative horizon %v", s.Horizon.D())
	}
	numSegs := len(s.Road.Segments)
	if (s.Federation || s.RingTrunk) && numSegs < 2 {
		return fmt.Errorf("scenario: federation needs at least 2 road segments, got %d", numSegs)
	}
	if s.RingTrunk && numSegs < 3 {
		return fmt.Errorf("scenario: a ring trunk needs at least 3 road segments, got %d", numSegs)
	}
	if (s.Federation || s.RingTrunk) && scheme != core.WGTT {
		return fmt.Errorf("scenario: federation requires the wgtt scheme")
	}
	if len(s.Routes) == 0 {
		return fmt.Errorf("scenario: no routes (a transit network needs at least one)")
	}
	names := make(map[string]bool, len(s.Routes))
	for i := range s.Routes {
		r := &s.Routes[i]
		if err := s.validateRoute(i, r, lo, hi); err != nil {
			return err
		}
		if names[r.Name] {
			return fmt.Errorf("scenario: duplicate route name %q", r.Name)
		}
		names[r.Name] = true
	}
	for i := range s.Clients {
		if err := s.validatePopulation(i, &s.Clients[i]); err != nil {
			return err
		}
	}
	return nil
}

// validateRoad checks the segment chain geometry.
func (s *Scenario) validateRoad() error {
	if len(s.Road.Segments) == 0 {
		return fmt.Errorf("scenario: road has no segments")
	}
	if s.Road.Spacing < 0 || s.Road.Setback < 0 {
		return fmt.Errorf("scenario: negative road spacing/setback")
	}
	for i, seg := range s.Road.Segments {
		if seg.APs <= 0 {
			return fmt.Errorf("scenario: road segment %d has no APs (zero-length segment)", i)
		}
		if seg.Spacing < 0 || seg.Setback < 0 || seg.Gap < 0 {
			return fmt.Errorf("scenario: road segment %d has negative spacing/setback/gap", i)
		}
	}
	return nil
}

// validateRoute checks one route's speed profile, stops, U-turn, and
// timetable.
func (s *Scenario) validateRoute(i int, r *Route, lo, hi float64) error {
	if r.Name == "" {
		return fmt.Errorf("scenario: route %d has no name", i)
	}
	if r.MPH != 0 && r.Mps != 0 {
		return fmt.Errorf("scenario: route %q sets both mph and mps", r.Name)
	}
	if r.MPH < 0 || r.Mps < 0 {
		return fmt.Errorf("scenario: route %q has a negative speed", r.Name)
	}
	if v := r.speedMps(); v <= 0 || v > MaxSpeedMps {
		return fmt.Errorf("scenario: route %q speed %g m/s out of range (0, %g] m/s",
			r.Name, v, MaxSpeedMps)
	}
	if r.LeadIn < 0 {
		return fmt.Errorf("scenario: route %q has a negative lead-in", r.Name)
	}
	if r.Stops < 0 {
		return fmt.Errorf("scenario: route %q has a negative stop count", r.Name)
	}
	if r.Stops > 0 && len(r.StopsAt) > 0 {
		return fmt.Errorf("scenario: route %q sets both stops and stops-at", r.Name)
	}
	if r.Dwell < 0 {
		return fmt.Errorf("scenario: route %q has a negative dwell", r.Name)
	}
	startX := lo - r.leadIn()
	for j, x := range r.StopsAt {
		if x < lo || x > hi {
			return fmt.Errorf("scenario: route %q stop %d at x=%g lies outside the road span [%g, %g]",
				r.Name, j, x, lo, hi)
		}
		if x <= startX {
			return fmt.Errorf("scenario: route %q stop %d at x=%g is not ahead of the route start x=%g",
				r.Name, j, x, startX)
		}
		if j > 0 && x <= r.StopsAt[j-1] {
			return fmt.Errorf("scenario: route %q stops-at must be strictly increasing (stop %d at x=%g)",
				r.Name, j, x)
		}
	}
	nStops := r.stopCount()
	if r.Reverse && (nStops > 0 || r.UTurnAt != nil) {
		return fmt.Errorf("scenario: route %q is reverse and cannot also have stops or a u-turn", r.Name)
	}
	if r.UTurnAt != nil {
		if nStops > 0 {
			return fmt.Errorf("scenario: route %q u-turns and cannot also have stops", r.Name)
		}
		u := *r.UTurnAt
		declared := false
		for _, x := range s.Road.UTurns {
			if x == u {
				declared = true
				break
			}
		}
		if !declared {
			return fmt.Errorf("scenario: route %q u-turns at x=%g but the road declares no u-turn point there",
				r.Name, u)
		}
		if u <= startX {
			return fmt.Errorf("scenario: route %q u-turn at x=%g is not ahead of the route start x=%g",
				r.Name, u, startX)
		}
	}
	if len(r.Departures) > 0 && (r.Headway != 0 || r.Runs != 0) {
		return fmt.Errorf("scenario: route %q sets both departures and headway/runs", r.Name)
	}
	if r.Headway < 0 {
		return fmt.Errorf("scenario: route %q has a negative headway", r.Name)
	}
	if r.Headway > 0 && r.Runs < 1 {
		return fmt.Errorf("scenario: route %q has a headway but no runs", r.Name)
	}
	if r.Headway == 0 && r.Runs > 0 {
		return fmt.Errorf("scenario: route %q has runs but no headway", r.Name)
	}
	for j, d := range r.Departures {
		if d < 0 {
			return fmt.Errorf("scenario: route %q departure %d is negative", r.Name, j)
		}
		if j > 0 && d <= r.Departures[j-1] {
			return fmt.Errorf("scenario: route %q timetable overlaps: departure %d (%v) does not follow departure %d (%v)",
				r.Name, j, d.D(), j-1, r.Departures[j-1].D())
		}
	}
	return nil
}

// validatePopulation checks one client group's route/stop references
// and workload.
func (s *Scenario) validatePopulation(i int, p *Population) error {
	r := s.route(p.Route)
	if r == nil {
		return fmt.Errorf("scenario: client group %d references unknown route %q", i, p.Route)
	}
	nDeps := r.departureCount()
	if p.Departure < 0 || p.Departure >= nDeps {
		return fmt.Errorf("scenario: client group %d departure %d out of range: route %q has %d",
			i, p.Departure, r.Name, nDeps)
	}
	if p.Count < 0 {
		return fmt.Errorf("scenario: client group %d has a negative count", i)
	}
	if p.Gap < 0 {
		return fmt.Errorf("scenario: client group %d has a negative gap", i)
	}
	nStops := r.stopCount()
	if p.Board != nil && (*p.Board < 0 || *p.Board >= nStops) {
		return fmt.Errorf("scenario: client group %d boards at stop %d but route %q has %d stops",
			i, *p.Board, r.Name, nStops)
	}
	if p.Alight != nil && (*p.Alight < 0 || *p.Alight >= nStops) {
		return fmt.Errorf("scenario: client group %d alights at stop %d but route %q has %d stops",
			i, *p.Alight, r.Name, nStops)
	}
	if p.Board != nil && p.Alight != nil && *p.Alight <= *p.Board {
		return fmt.Errorf("scenario: client group %d alights at stop %d before boarding at stop %d",
			i, *p.Alight, *p.Board)
	}
	if (p.Board != nil || p.Alight != nil) && r.UTurnAt != nil {
		return fmt.Errorf("scenario: client group %d boards a u-turn route %q (u-turn routes have no stops)",
			i, r.Name)
	}
	switch p.Workload {
	case "", WorkloadUDP, WorkloadTCP, WorkloadNone:
	default:
		return fmt.Errorf("scenario: client group %d has unknown workload %q (want udp | tcp | none)",
			i, p.Workload)
	}
	if p.RateMbps < 0 {
		return fmt.Errorf("scenario: client group %d has a negative rate", i)
	}
	if p.Start < 0 {
		return fmt.Errorf("scenario: client group %d has a negative workload start", i)
	}
	return nil
}

// scheme resolves the scenario's roaming scheme (default wgtt).
func (s *Scenario) scheme() (core.Scheme, error) {
	if s.Scheme == "" {
		return core.WGTT, nil
	}
	return core.ParseScheme(s.Scheme)
}

// route finds a route by name (nil when absent).
func (s *Scenario) route(name string) *Route {
	for i := range s.Routes {
		if s.Routes[i].Name == name {
			return &s.Routes[i]
		}
	}
	return nil
}

// leadIn resolves the route's entry/exit margin.
func (r *Route) leadIn() float64 {
	if r.LeadIn != 0 {
		return r.LeadIn
	}
	return DefaultLeadIn
}

// stopCount is the route's resolved stop count.
func (r *Route) stopCount() int {
	if len(r.StopsAt) > 0 {
		return len(r.StopsAt)
	}
	return r.Stops
}

// departureCount is the route's resolved timetable length.
func (r *Route) departureCount() int {
	if len(r.Departures) > 0 {
		return len(r.Departures)
	}
	if r.Headway > 0 {
		return r.Runs
	}
	return 1
}

// departures materializes the route's timetable.
func (r *Route) departures() []sim.Duration {
	if len(r.Departures) > 0 {
		out := make([]sim.Duration, len(r.Departures))
		for i, d := range r.Departures {
			out[i] = d.D()
		}
		return out
	}
	if r.Headway > 0 {
		out := make([]sim.Duration, r.Runs)
		for i := range out {
			out[i] = sim.Duration(i) * r.Headway.D()
		}
		return out
	}
	return []sim.Duration{0}
}
