package scenario

import (
	"math"
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

func mustParse(t *testing.T, in string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCompile(t *testing.T, s *Scenario, seed int64) *Compiled {
	t.Helper()
	c, err := Compile(s, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const corridorYAML = `
name: corridor
road:
  segments:
    - aps: 4
    - aps: 4
    - aps: 4
routes:
  - name: bus
    mph: 25
clients:
  - route: bus
    count: 2
`

// TestCompileCorridorShape checks the corridor fast path reproduces the
// hand-built experiment's exact construction: the same Linear
// trajectories (same floats) and the same drive-across horizon.
func TestCompileCorridorShape(t *testing.T) {
	c := mustCompile(t, mustParse(t, corridorYAML), 1)
	if c.Config.Seed != 1 || len(c.Config.Segments) != 3 {
		t.Fatalf("config: seed=%d segments=%d", c.Config.Seed, len(c.Config.Segments))
	}
	if c.APsPerSegment != 4 || c.SpeedMPH != 25 {
		t.Errorf("report shape: aps=%d mph=%g", c.APsPerSegment, c.SpeedMPH)
	}
	lo, hi := c.Config.RoadSpanX()
	if lo != 0 || hi != 82.5 {
		t.Fatalf("road span [%g, %g], want [0, 82.5]", lo, hi)
	}
	if len(c.Clients) != 2 {
		t.Fatalf("%d clients, want 2", len(c.Clients))
	}
	// The experiments build mobility.Scenario(Following, 2, lo-5, 0, 25):
	// Drive(lo-5-3i). The compiled plans must be those exact values.
	want := mobility.Scenario(mobility.Following, 2, lo-5, 0, 25)
	for i, p := range c.Clients {
		if p.Traj != want[i].(mobility.Linear) {
			t.Errorf("client %d trajectory %#v, want %#v", i, p.Traj, want[i])
		}
		if p.Workload != WorkloadUDP || p.RateMbps != DefaultRateMbps || p.Start != DefaultWarmup {
			t.Errorf("client %d workload (%s, %g, %v), want defaults", i, p.Workload, p.RateMbps, p.Start)
		}
	}
	// Horizon = the drive-across duration of harness.driveAcross.
	traj := mobility.Drive(lo-5, 0, 25)
	secs := ((hi + 5) - (lo - 5)) / traj.SpeedMps()
	if want := sim.Duration(secs * float64(sim.Second)); c.Horizon != want {
		t.Errorf("horizon %v, want %v", c.Horizon, want)
	}
}

// TestCompileRider checks boarding/alighting churn: the rider waits at
// the boarding stop, rides the vehicle, and remains at the alighting
// stop.
func TestCompileRider(t *testing.T) {
	c := mustCompile(t, mustParse(t, `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    stops-at: [10, 20]
    dwell: 1s
clients:
  - route: bus
    board: 0
    alight: 1
`), 1)
	traj := c.Clients[0].Traj
	if got := traj.Pos(0); got.X != 10 {
		t.Errorf("rider at t=0 sits at x=%g, want the boarding stop x=10", got.X)
	}
	if got := traj.Pos(sim.Time(c.Horizon) * 4); got.X != 20 {
		t.Errorf("rider after the run sits at x=%g, want the alighting stop x=20", got.X)
	}
	// Mid-dwell at the boarding stop the rider is still there.
	v := mobility.MPHToMps(25)
	arrive := sim.Duration(float64(sim.Second) * (10 - (-5)) / v)
	if got := traj.Pos(sim.Time(arrive) + sim.Time(500*sim.Millisecond)); got.X != 10 {
		t.Errorf("rider mid-dwell at x=%g, want 10", got.X)
	}
}

// TestCompileUTurn checks a U-turn run goes out and comes back.
func TestCompileUTurn(t *testing.T) {
	c := mustCompile(t, mustParse(t, `
road:
  segments:
    - aps: 4
  uturns: [15]
routes:
  - name: shuttle
    mph: 25
    uturn-at: 15
clients:
  - route: shuttle
`), 1)
	traj := c.Clients[0].Traj
	start := traj.Pos(0)
	if start.X != -5 {
		t.Fatalf("u-turn run starts at x=%g, want -5", start.X)
	}
	end := traj.Pos(sim.Time(c.Horizon) * 4)
	if end.X != start.X {
		t.Errorf("u-turn run ends at x=%g, want back at x=%g", end.X, start.X)
	}
	mid := traj.Pos(sim.Time(c.Horizon / 2))
	if mid.X <= start.X {
		t.Errorf("mid-run at x=%g, want past the start", mid.X)
	}
}

// TestCompileReverse checks a reverse route enters past the last AP
// driving -X.
func TestCompileReverse(t *testing.T) {
	c := mustCompile(t, mustParse(t, `
road:
  segments:
    - aps: 4
routes:
  - name: back
    mph: 25
    reverse: true
clients:
  - route: back
`), 1)
	traj := c.Clients[0].Traj
	if got := traj.Pos(0); got.X != 27.5 {
		t.Errorf("reverse run starts at x=%g, want 27.5", got.X)
	}
	late := traj.Pos(sim.Time(c.Horizon))
	if late.X != -5 {
		t.Errorf("reverse run ends at x=%g, want -5", late.X)
	}
}

// TestCompileTimetable checks a later departure waits at the route
// start until its slot.
func TestCompileTimetable(t *testing.T) {
	c := mustCompile(t, mustParse(t, `
road:
  segments:
    - aps: 4
routes:
  - name: bus
    mph: 25
    headway: 2s
    runs: 3
clients:
  - route: bus
    departure: 2
`), 1)
	traj := c.Clients[0].Traj
	if got := traj.Pos(sim.Time(3 * sim.Second)); got.X != -5 {
		t.Errorf("departure-2 run moving at t=3s (x=%g), want parked at -5 until t=4s", got.X)
	}
	if got := traj.Pos(sim.Time(5 * sim.Second)); got.X <= -5 {
		t.Errorf("departure-2 run still parked at t=5s (x=%g)", got.X)
	}
	// Horizon covers the last departure's full run.
	v := mobility.MPHToMps(25)
	runDur := sim.Duration(float64(sim.Second) * 32.5 / v)
	if want := 4*sim.Second + runDur; c.Horizon != want {
		t.Errorf("horizon %v, want %v", c.Horizon, want)
	}
	// The workload waits for the departure: traffic to a vehicle still
	// parked outside coverage would burn floor-MCS airtime for nothing.
	if want := 4*sim.Second + DefaultWarmup; c.Clients[0].Start != want {
		t.Errorf("workload start %v, want departure+warmup %v", c.Clients[0].Start, want)
	}
}

// TestCompileSpeedRegimes spans the schema's 1 m/s walking pace to the
// 30+ m/s trackside regime.
func TestCompileSpeedRegimes(t *testing.T) {
	for _, tc := range []struct {
		line string
		want float64
	}{
		{"mps: 1", 1},
		{"mph: 25", mobility.MPHToMps(25)},
		{"mps: 36", 36},
	} {
		c := mustCompile(t, mustParse(t, `
road:
  segments:
    - aps: 4
routes:
  - name: r
    `+tc.line+`
clients:
  - route: r
`), 1)
		if got := c.Clients[0].Traj.SpeedMps(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: speed %g m/s, want %g", tc.line, got, tc.want)
		}
	}
}

// TestCompileDeterminism: same scenario, same seed → identical digest;
// a different seed changes it.
func TestCompileDeterminism(t *testing.T) {
	a := mustCompile(t, mustParse(t, corridorYAML), 2)
	b := mustCompile(t, mustParse(t, corridorYAML), 2)
	if a.Digest() != b.Digest() {
		t.Error("same scenario and seed compiled to different digests")
	}
	c := mustCompile(t, mustParse(t, corridorYAML), 3)
	if a.Digest() == c.Digest() {
		t.Error("different seeds compiled to the same digest")
	}
}

// TestCompileSeedPrecedence: the scenario's seed rules unless the
// caller overrides, and both default to 1.
func TestCompileSeedPrecedence(t *testing.T) {
	s := mustParse(t, corridorYAML)
	if got := mustCompile(t, s, 0).Config.Seed; got != 1 {
		t.Errorf("unseeded compile seed %d, want 1", got)
	}
	s.Seed = 9
	if got := mustCompile(t, s, 0).Config.Seed; got != 9 {
		t.Errorf("scenario seed ignored: %d, want 9", got)
	}
	if got := mustCompile(t, s, 4).Config.Seed; got != 4 {
		t.Errorf("caller seed ignored: %d, want 4", got)
	}
}
