package scenario

import (
	"strings"
	"testing"

	"wgtt/internal/sim"
)

const yamlScenario = `
name: twin
seed: 3
federation: true
horizon: 2s
road:
  segments:
    - aps: 4
    - aps: 3
      gap: 15
routes:
  - name: bus
    mph: 25
    stops: 2
    dwell: 250ms
clients:
  - route: bus
    count: 2
    board: 0
    alight: 1
`

const jsonScenario = `{
  "name": "twin",
  "seed": 3,
  "federation": true,
  "horizon": "2s",
  "road": {
    "segments": [
      {"aps": 4},
      {"aps": 3, "gap": 15}
    ]
  },
  "routes": [
    {"name": "bus", "mph": 25, "stops": 2, "dwell": "250ms"}
  ],
  "clients": [
    {"route": "bus", "count": 2, "board": 0, "alight": 1}
  ]
}`

// TestParseEquivalence holds YAML and JSON to one binding path: the
// same scenario in either syntax compiles to the identical digest.
func TestParseEquivalence(t *testing.T) {
	fromYAML, err := Parse([]byte(yamlScenario))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse([]byte(jsonScenario))
	if err != nil {
		t.Fatal(err)
	}
	cy, err := Compile(fromYAML, 0)
	if err != nil {
		t.Fatal(err)
	}
	cj, err := Compile(fromJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cy.Digest() != cj.Digest() {
		t.Errorf("YAML and JSON compiles diverge:\n yaml %s\n json %s", cy.Digest(), cj.Digest())
	}
}

func TestParseUnknownField(t *testing.T) {
	for _, in := range []string{
		"road:\n  segments:\n    - aps: 4\nturbo: true\n",
		`{"road": {"segments": [{"aps": 4}]}, "turbo": true}`,
	} {
		if _, err := Parse([]byte(in)); err == nil || !strings.Contains(err.Error(), "turbo") {
			t.Errorf("unknown field not rejected: %v", err)
		}
	}
}

func TestParseDurForms(t *testing.T) {
	s, err := Parse([]byte("horizon: 1.5\nroad:\n  segments:\n    - aps: 4\nroutes:\n  - name: b\n    mph: 25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Horizon.D(); got != 1500*sim.Millisecond {
		t.Errorf("bare-number horizon = %v, want 1.5s", got)
	}
	s, err = Parse([]byte("horizon: 90m\nroad:\n  segments:\n    - aps: 4\nroutes:\n  - name: b\n    mph: 25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Horizon.D(); got != 90*60*sim.Second {
		t.Errorf("duration-string horizon = %v, want 90m", got)
	}
	if _, err := Parse([]byte(`{"horizon": "soon"}`)); err == nil {
		t.Error("bad duration string parsed")
	}
}

func TestParseRejectsNonMapping(t *testing.T) {
	for _, in := range []string{"- 1\n- 2\n", "[1, 2]"} {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%q parsed as a scenario", in)
		}
	}
}
