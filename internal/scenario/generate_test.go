package scenario

import (
	"testing"
)

// TestGenerateValid: every (seed, size) must produce a scenario that
// validates and compiles, whose compiled config passes core
// validation — Generate promises "always runnable", not "usually".
func TestGenerateValid(t *testing.T) {
	for _, size := range []SizeClass{SizeSmall, SizeMedium, SizeLarge} {
		for seed := int64(1); seed <= 20; seed++ {
			s := Generate(seed, size)
			if err := s.Validate(); err != nil {
				t.Fatalf("Generate(%d, %s): %v", seed, size, err)
			}
			c, err := Compile(s, 0)
			if err != nil {
				t.Fatalf("Generate(%d, %s) compile: %v", seed, size, err)
			}
			if err := c.Config.Validate(); err != nil {
				t.Fatalf("Generate(%d, %s) config: %v", seed, size, err)
			}
			if len(c.Config.Segments) < 2 {
				t.Fatalf("Generate(%d, %s): %d segments, want >= 2 (domain-mode property tests need them)",
					seed, size, len(c.Config.Segments))
			}
			if !c.Config.Federation.Enabled {
				t.Fatalf("Generate(%d, %s): federation off", seed, size)
			}
			if len(c.Clients) == 0 {
				t.Fatalf("Generate(%d, %s): no clients", seed, size)
			}
			if c.Horizon <= 0 {
				t.Fatalf("Generate(%d, %s): horizon %v", seed, size, c.Horizon)
			}
		}
	}
}

// TestGenerateDeterminism: the same (seed, size) always yields the
// identical compiled digest; different seeds yield different scenarios.
func TestGenerateDeterminism(t *testing.T) {
	digests := map[string]int64{}
	for seed := int64(1); seed <= 10; seed++ {
		a, err := Compile(Generate(seed, SizeMedium), 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(Generate(seed, SizeMedium), 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest() != b.Digest() {
			t.Errorf("seed %d: two generations disagree", seed)
		}
		if prev, dup := digests[a.Digest()]; dup {
			t.Errorf("seeds %d and %d generated identical scenarios", prev, seed)
		}
		digests[a.Digest()] = seed
	}
}

func TestParseSizeClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SizeClass
	}{{"", SizeSmall}, {"small", SizeSmall}, {"medium", SizeMedium}, {"large", SizeLarge}} {
		got, err := ParseSizeClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSizeClass(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSizeClass("jumbo"); err == nil {
		t.Error("ParseSizeClass accepted jumbo")
	}
}
