package scenario

import (
	"fmt"

	"wgtt/internal/sim"
)

// SizeClass scales generated scenarios.
type SizeClass int

// Size classes.
const (
	// SizeSmall is a two-segment corridor with one route — the property
	// tests' bread and butter.
	SizeSmall SizeClass = iota
	// SizeMedium adds a third segment, a second route, and stop churn.
	SizeMedium
	// SizeLarge is the widest shape: up to four segments, ring trunks,
	// U-turns, and mixed speed regimes.
	SizeLarge
)

// String implements fmt.Stringer.
func (s SizeClass) String() string {
	switch s {
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	}
	return "SizeClass(?)"
}

// ParseSizeClass parses a size-class name.
func ParseSizeClass(name string) (SizeClass, error) {
	switch name {
	case "small", "":
		return SizeSmall, nil
	case "medium":
		return SizeMedium, nil
	case "large":
		return SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size class %q (want small | medium | large)", name)
}

// Generate builds a seeded random transit scenario that always
// validates: a multi-segment federated road, routes across the speed
// regimes (walking pace through trackside), optional stops with
// boarding/alighting riders, optional U-turn runs, and a short explicit
// horizon so property tests stay fast. The same (seed, size) always
// yields the identical scenario — the generator draws from the
// simulator's deterministic RNG and never touches a clock.
func Generate(seed int64, size SizeClass) *Scenario {
	rng := sim.NewRNG(seed).Fork("scenario-gen")
	s := &Scenario{
		Name:       fmt.Sprintf("gen-%s-%d", size, seed),
		Seed:       seed,
		Federation: true,
	}

	// Road: segment count by size class, small AP counts so a horizon of
	// a couple of virtual seconds still crosses coverage boundaries.
	numSegs := 2
	switch size {
	case SizeMedium:
		numSegs = 2 + rng.Intn(2)
	case SizeLarge:
		numSegs = 3 + rng.Intn(2)
	}
	for i := 0; i < numSegs; i++ {
		s.Road.Segments = append(s.Road.Segments, Segment{APs: 2 + rng.Intn(3)})
	}
	if numSegs >= 3 && rng.Intn(2) == 0 {
		s.RingTrunk = true
	}
	lo, hi := s.roadSpan()

	// A mid-road intersection with a U-turn bay, sometimes.
	uturn := 0.0
	if size != SizeSmall && rng.Intn(2) == 0 {
		uturn = lo + (0.4+0.3*rng.Float64())*(hi-lo)
		s.Road.Intersections = append(s.Road.Intersections, uturn)
		s.Road.UTurns = append(s.Road.UTurns, uturn)
	}

	// Routes: one per size step, each in a random speed regime.
	numRoutes := 1
	if size == SizeMedium {
		numRoutes = 1 + rng.Intn(2)
	} else if size == SizeLarge {
		numRoutes = 2
	}
	for i := 0; i < numRoutes; i++ {
		r := Route{Name: fmt.Sprintf("line-%d", i+1), Lane: -3 * float64(i)}
		switch rng.Intn(3) {
		case 0: // walking pace
			r.Mps = 1 + rng.Float64()
		case 1: // city bus
			r.MPH = 20 + float64(rng.Intn(16))
		default: // trackside
			r.Mps = 30 + float64(rng.Intn(16))
		}
		switch {
		case i == 0 && rng.Intn(2) == 0:
			// Stop-bearing line with a short dwell.
			r.Stops = 2 + rng.Intn(2)
			r.Dwell = Dur(sim.Duration(100+rng.Intn(200)) * sim.Millisecond)
		case uturn != 0 && rng.Intn(2) == 0:
			u := uturn
			r.UTurnAt = &u
		case rng.Intn(4) == 0:
			r.Reverse = true
		}
		if rng.Intn(3) == 0 {
			r.Headway = Dur(sim.Duration(500+rng.Intn(500)) * sim.Millisecond)
			r.Runs = 1 + rng.Intn(2)
		}
		s.Routes = append(s.Routes, r)
	}

	// Populations: a few clients spread over the routes; riders with
	// boarding/alighting churn when the route has stops.
	maxClients := 2
	if size == SizeMedium {
		maxClients = 3
	} else if size == SizeLarge {
		maxClients = 4
	}
	total := 1 + rng.Intn(maxClients)
	for total > 0 {
		ri := rng.Intn(len(s.Routes))
		r := &s.Routes[ri]
		count := 1 + rng.Intn(total)
		total -= count
		p := Population{Route: r.Name, Count: count}
		if n := r.departureCount(); n > 1 {
			p.Departure = rng.Intn(n)
		}
		if r.stopCount() >= 2 && rng.Intn(2) == 0 {
			b, a := 0, r.stopCount()-1
			p.Board = &b
			p.Alight = &a
		}
		switch rng.Intn(4) {
		case 0:
			p.Workload = WorkloadTCP
		case 1:
			p.Workload = WorkloadNone
		default:
			p.RateMbps = 10 + float64(rng.Intn(21))
		}
		s.Clients = append(s.Clients, p)
	}

	// A short explicit horizon keeps 10-seed × 2-mode parity sweeps fast
	// regardless of how slow a walking-pace run would be to complete.
	s.Horizon = Dur(sim.Duration(1500+rng.Intn(1000)) * sim.Millisecond)

	if err := s.Validate(); err != nil {
		// A generated scenario that fails validation is a generator bug,
		// not a caller error.
		panic(fmt.Sprintf("scenario: Generate(%d, %s) produced an invalid scenario: %v", seed, size, err))
	}
	return s
}
