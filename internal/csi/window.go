package csi

import (
	"sort"

	"wgtt/internal/sim"
)

// Reading is one timestamped ESNR observation of a client↔AP link.
type Reading struct {
	Time   sim.Time
	ESNRdB float64
}

// Window holds the short-term history of ESNR readings for one client-AP
// link over a sliding duration W (§3.1.1). The controller keeps one Window
// per (client, AP) pair and ranks APs by the median reading.
//
// The zero value is not usable; construct with NewWindow.
type Window struct {
	span     sim.Duration
	readings []Reading // ordered by arrival time
	scratch  []float64

	// rev counts content changes (Add, expiry). The median and mean are
	// memoized against it so repeated ranking passes over an unchanged
	// window skip the sort entirely.
	rev       uint64
	medianRev uint64
	medianVal float64
	meanRev   uint64
	meanVal   float64
}

// NewWindow returns a sliding window of the given span. The paper's
// microbenchmark (Fig. 21) picks span = 10 ms.
func NewWindow(span sim.Duration) *Window {
	return &Window{span: span}
}

// Span returns the window duration.
func (w *Window) Span() sim.Duration { return w.span }

// Add records a reading and expires entries older than span before t.
// Readings must arrive in nondecreasing time order (they come from a
// single event loop).
func (w *Window) Add(t sim.Time, esnrDB float64) {
	w.readings = append(w.readings, Reading{Time: t, ESNRdB: esnrDB})
	w.rev++
	w.expire(t)
}

// expire drops readings that fell out of the window as of time t.
func (w *Window) expire(t sim.Time) {
	cutoff := t.Add(-w.span)
	i := 0
	for i < len(w.readings) && w.readings[i].Time < cutoff {
		i++
	}
	if i > 0 {
		w.readings = append(w.readings[:0], w.readings[i:]...)
		w.rev++
	}
}

// Len returns the number of readings currently inside the window as of the
// last Add/MedianAt call.
func (w *Window) Len() int { return len(w.readings) }

// MedianAt returns the median ESNR of readings within the window at time
// t, and whether any reading exists. This is the e_{⌊L/2⌋} statistic of
// the paper's selection rule: robust to the single outlier readings that
// deep fades and capture effects produce.
func (w *Window) MedianAt(t sim.Time) (float64, bool) {
	w.expire(t)
	if len(w.readings) == 0 {
		return 0, false
	}
	if w.medianRev == w.rev && w.rev != 0 {
		return w.medianVal, true
	}
	w.scratch = w.scratch[:0]
	for _, r := range w.readings {
		w.scratch = append(w.scratch, r.ESNRdB)
	}
	sort.Float64s(w.scratch)
	w.medianRev = w.rev
	w.medianVal = w.scratch[len(w.scratch)/2]
	return w.medianVal, true
}

// Latest returns the most recent reading, if any.
func (w *Window) Latest() (Reading, bool) {
	if len(w.readings) == 0 {
		return Reading{}, false
	}
	return w.readings[len(w.readings)-1], true
}

// MeanAt returns the arithmetic-mean ESNR within the window at time t.
// Used by the ablation bench comparing median vs mean selection.
func (w *Window) MeanAt(t sim.Time) (float64, bool) {
	w.expire(t)
	if len(w.readings) == 0 {
		return 0, false
	}
	if w.meanRev == w.rev && w.rev != 0 {
		return w.meanVal, true
	}
	sum := 0.0
	for _, r := range w.readings {
		sum += r.ESNRdB
	}
	w.meanRev = w.rev
	w.meanVal = sum / float64(len(w.readings))
	return w.meanVal, true
}
