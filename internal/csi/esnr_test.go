package csi

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

func TestModulationStringsAndBits(t *testing.T) {
	cases := []struct {
		m    Modulation
		s    string
		bits int
	}{
		{BPSK, "BPSK", 1}, {QPSK, "QPSK", 2}, {QAM16, "16-QAM", 4}, {QAM64, "64-QAM", 6},
	}
	for _, c := range cases {
		if c.m.String() != c.s {
			t.Errorf("String() = %q, want %q", c.m.String(), c.s)
		}
		if c.m.BitsPerSymbol() != c.bits {
			t.Errorf("%v BitsPerSymbol = %d, want %d", c.m, c.m.BitsPerSymbol(), c.bits)
		}
	}
	if Modulation(9).BitsPerSymbol() != 0 || Modulation(9).String() == "" {
		t.Error("unknown modulation not handled")
	}
}

func TestBERKnownValues(t *testing.T) {
	// BPSK at 9.6 dB SNR ⇒ BER ≈ 1e-5 (classic digital comms result:
	// Eb/N0 = 9.6 dB gives Pb = 1e-5 for BPSK).
	ber := BER(BPSK, math.Pow(10, 9.6/10))
	if ber < 0.5e-5 || ber > 2e-5 {
		t.Errorf("BPSK BER at 9.6 dB = %v, want ~1e-5", ber)
	}
	// At 0 SNR every modulation is hopeless (BER near its max).
	if b := BER(BPSK, 0); b != 0.5 {
		t.Errorf("BPSK BER at zero SNR = %v, want 0.5", b)
	}
	// Negative linear SNR is clamped, not NaN.
	if b := BER(QAM64, -3); math.IsNaN(b) {
		t.Error("BER(-3) is NaN")
	}
}

func TestBEROrderingAcrossModulations(t *testing.T) {
	// At any fixed SNR in the operating range, denser constellations
	// have higher BER. (Below ~2 dB the standard approximation formulas'
	// leading coefficients — 3/4, 7/12 — cross over, so start there.)
	for db := 2.5; db <= 35; db += 2.5 {
		snr := math.Pow(10, db/10)
		if !(BER(BPSK, snr) <= BER(QPSK, snr)+1e-15 &&
			BER(QPSK, snr) <= BER(QAM16, snr)+1e-15 &&
			BER(QAM16, snr) <= BER(QAM64, snr)+1e-15) {
			t.Fatalf("BER ordering violated at %v dB", db)
		}
	}
}

func TestBERMonotoneDecreasing(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		prev := 1.0
		for db := -10.0; db <= 40; db += 0.5 {
			b := BER(m, math.Pow(10, db/10))
			if b > prev+1e-15 {
				t.Fatalf("%v BER increased at %v dB", m, db)
			}
			prev = b
		}
	}
}

func TestEffectiveSNRFlatChannel(t *testing.T) {
	// On a flat channel ESNR must equal the (common) subcarrier SNR.
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		snrs := make([]float64, rf.NumSubcarriers)
		for i := range snrs {
			snrs[i] = 17
		}
		esnr := EffectiveSNRdB(snrs, m)
		if math.Abs(esnr-17) > 0.05 {
			t.Errorf("%v flat-channel ESNR = %v, want 17", m, esnr)
		}
	}
}

func TestEffectiveSNRPenalizesSelectivity(t *testing.T) {
	// A channel with a deep notch must score well below its average SNR:
	// that is the whole point of ESNR.
	snrs := make([]float64, rf.NumSubcarriers)
	for i := range snrs {
		snrs[i] = 25
	}
	for i := 0; i < 8; i++ { // 8 subcarriers in a deep fade
		snrs[i] = 2
	}
	avg := 0.0
	for _, s := range snrs {
		avg += s
	}
	avg /= float64(len(snrs))
	esnr := EffectiveSNRdB(snrs, QAM16)
	if esnr > avg-3 {
		t.Errorf("ESNR %v too close to naive average %v on notched channel", esnr, avg)
	}
	// But never below the worst subcarrier.
	if esnr < 2 {
		t.Errorf("ESNR %v below worst subcarrier", esnr)
	}
}

func TestEffectiveSNREmptyInput(t *testing.T) {
	if !math.IsInf(EffectiveSNRdB(nil, QAM16), -1) {
		t.Error("empty input should give -Inf")
	}
}

// Property: ESNR lies between the minimum and maximum subcarrier SNR.
func TestEffectiveSNRBoundsProperty(t *testing.T) {
	f := func(raw [8]uint8) bool {
		snrs := make([]float64, len(raw))
		minS, maxS := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			snrs[i] = float64(r%45) - 5 // −5..39 dB
			minS = math.Min(minS, snrs[i])
			maxS = math.Max(maxS, snrs[i])
		}
		esnr := EffectiveSNRdB(snrs, QAM16)
		return esnr >= minS-0.5 && esnr <= maxS+0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: raising any subcarrier's SNR never lowers ESNR.
func TestEffectiveSNRMonotoneProperty(t *testing.T) {
	f := func(raw [8]uint8, idx uint8, bump uint8) bool {
		snrs := make([]float64, len(raw))
		for i, r := range raw {
			snrs[i] = float64(r % 40)
		}
		before := EffectiveSNRdB(snrs, QAM16)
		snrs[int(idx)%len(snrs)] += float64(bump%20) + 0.1
		after := EffectiveSNRdB(snrs, QAM16)
		return after >= before-0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvBERRoundTrip(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		for db := 0.0; db <= 30; db += 3 {
			snr := math.Pow(10, db/10)
			if BER(m, snr) < 1e-300 {
				continue // underflowed: round trip undefined
			}
			back := invBER(m, BER(m, snr))
			if math.Abs(linearToDB(back)-db) > 0.05 {
				t.Errorf("%v invBER(BER(%v dB)) = %v dB", m, db, linearToDB(back))
			}
		}
	}
	// Degenerate targets.
	if linearToDB(invBER(QAM16, 0)) < 50 {
		t.Error("invBER(0) should saturate high")
	}
	if linearToDB(invBER(QAM16, 0.6)) > -15 {
		t.Error("invBER(0.6) should saturate low")
	}
}

func TestSnapshotESNR(t *testing.T) {
	var s Snapshot
	for i := range s.SNRsDB {
		s.SNRsDB[i] = 20
	}
	s.Time = sim.Time(5 * sim.Millisecond)
	if e := s.ESNRdB(RefModulation); math.Abs(e-20) > 0.05 {
		t.Errorf("snapshot ESNR = %v, want 20", e)
	}
}

func TestWindowMedian(t *testing.T) {
	w := NewWindow(10 * sim.Millisecond)
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	w.Add(ms(0), 10)
	w.Add(ms(1), 30)
	w.Add(ms(2), 20)
	med, ok := w.MedianAt(ms(2))
	if !ok || med != 20 {
		t.Errorf("median = %v, %v; want 20", med, ok)
	}
	// Even count: upper median by the ⌊L/2⌋ rule on 0-indexed sort.
	w.Add(ms(3), 40)
	med, _ = w.MedianAt(ms(3))
	if med != 30 {
		t.Errorf("even-count median = %v, want 30", med)
	}
}

func TestWindowExpiry(t *testing.T) {
	w := NewWindow(10 * sim.Millisecond)
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	w.Add(ms(0), 5)
	w.Add(ms(5), 15)
	// At t=12 ms, the t=0 reading (age 12 ms) must be gone.
	med, ok := w.MedianAt(ms(12))
	if !ok || med != 15 {
		t.Errorf("median after expiry = %v, %v; want 15", med, ok)
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d, want 1", w.Len())
	}
	// All readings expire eventually.
	if _, ok := w.MedianAt(ms(100)); ok {
		t.Error("window should be empty at t=100 ms")
	}
	if _, ok := w.Latest(); ok {
		t.Error("Latest should report empty")
	}
}

func TestWindowLatestAndMean(t *testing.T) {
	w := NewWindow(10 * sim.Millisecond)
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }
	w.Add(ms(1), 10)
	w.Add(ms(2), 20)
	last, ok := w.Latest()
	if !ok || last.ESNRdB != 20 || last.Time != ms(2) {
		t.Errorf("Latest = %+v, %v", last, ok)
	}
	mean, ok := w.MeanAt(ms(2))
	if !ok || mean != 15 {
		t.Errorf("mean = %v, want 15", mean)
	}
	if _, ok := NewWindow(sim.Millisecond).MeanAt(ms(0)); ok {
		t.Error("empty mean should report !ok")
	}
}

// Property: the median lies within the min/max of the live readings.
func TestWindowMedianBoundsProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		w := NewWindow(1000 * sim.Millisecond)
		minV, maxV := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			f := float64(v)
			w.Add(sim.Time(i)*sim.Time(sim.Millisecond), f)
			minV = math.Min(minV, f)
			maxV = math.Max(maxV, f)
		}
		med, ok := w.MedianAt(sim.Time(len(vals)) * sim.Time(sim.Millisecond))
		if len(vals) == 0 {
			return !ok
		}
		return ok && med >= minV && med <= maxV
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
