// Package csi implements channel state information snapshots and the
// Effective SNR (ESNR) metric of Halperin et al. ("Predictable 802.11
// packet delivery from wireless channel measurements", SIGCOMM 2010),
// which WGTT's controller uses to predict which AP can deliver a packet.
//
// Plain average SNR misleads on frequency-selective channels: a handful of
// deeply-faded subcarriers dominate the error rate even when the average
// looks healthy. ESNR fixes this by averaging in BER domain: compute each
// subcarrier's bit error rate for a given modulation, average those, and
// report the flat-channel SNR that would produce the same average BER.
package csi

import (
	"fmt"
	"math"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Modulation enumerates the 802.11n constellations.
type Modulation int

// Supported constellations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// BitsPerSymbol returns the bits carried per subcarrier symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	return 0
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BER returns the uncoded bit error rate of the modulation at a given
// symbol SNR (linear). Formulas follow Halperin et al. §3.
func BER(m Modulation, snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	switch m {
	case BPSK:
		return qfunc(math.Sqrt(2 * snr))
	case QPSK:
		return qfunc(math.Sqrt(snr))
	case QAM16:
		return 0.75 * qfunc(math.Sqrt(snr/5))
	case QAM64:
		return (7.0 / 12.0) * qfunc(math.Sqrt(snr/21))
	}
	return 1
}

// dbToLinear converts dB to a linear power ratio.
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// linearToDB converts a linear power ratio to dB.
func linearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// invBER returns the SNR (linear) at which the modulation's BER equals
// target. BER is strictly decreasing in SNR, so a bisection over the dB
// axis converges fast and is exact enough (±0.001 dB) for link selection.
func invBER(m Modulation, target float64) float64 {
	if target <= 0 {
		return dbToLinear(60)
	}
	lo, hi := -20.0, 60.0
	if BER(m, dbToLinear(lo)) < target {
		return dbToLinear(lo)
	}
	if BER(m, dbToLinear(hi)) > target {
		return dbToLinear(hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if BER(m, dbToLinear(mid)) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return dbToLinear((lo + hi) / 2)
}

// EffectiveSNRdB computes ESNR in dB from per-subcarrier SNRs (dB) for a
// given modulation: mean the per-subcarrier BERs, then invert.
func EffectiveSNRdB(snrsDB []float64, m Modulation) float64 {
	if len(snrsDB) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, s := range snrsDB {
		sum += BER(m, dbToLinear(s))
	}
	return linearToDB(invBER(m, sum/float64(len(snrsDB))))
}

// Snapshot is one CSI measurement taken from a received uplink frame: the
// per-subcarrier SNRs the Atheros CSI tool would report, stamped with the
// reception time. APs encapsulate snapshots in UDP packets to the
// controller (§3.1.1).
type Snapshot struct {
	Time   sim.Time
	SNRsDB [rf.NumSubcarriers]float64
}

// ESNRdB evaluates the snapshot's effective SNR for modulation m. WGTT
// uses a fixed reference modulation for AP ranking so readings from
// different APs are comparable.
func (s *Snapshot) ESNRdB(m Modulation) float64 {
	return EffectiveSNRdB(s.SNRsDB[:], m)
}

// RefModulation is the reference constellation used when ranking APs. The
// mid-range 16-QAM keeps the metric sensitive across the whole useful SNR
// range (BPSK saturates high, 64-QAM saturates low).
const RefModulation = QAM16
