// Package csi implements channel state information snapshots and the
// Effective SNR (ESNR) metric of Halperin et al. ("Predictable 802.11
// packet delivery from wireless channel measurements", SIGCOMM 2010),
// which WGTT's controller uses to predict which AP can deliver a packet.
//
// Plain average SNR misleads on frequency-selective channels: a handful of
// deeply-faded subcarriers dominate the error rate even when the average
// looks healthy. ESNR fixes this by averaging in BER domain: compute each
// subcarrier's bit error rate for a given modulation, average those, and
// report the flat-channel SNR that would produce the same average BER.
package csi

import (
	"fmt"
	"math"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Modulation enumerates the 802.11n constellations.
type Modulation int

// Supported constellations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// BitsPerSymbol returns the bits carried per subcarrier symbol.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	return 0
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BER returns the uncoded bit error rate of the modulation at a given
// symbol SNR (linear). Formulas follow Halperin et al. §3.
func BER(m Modulation, snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	switch m {
	case BPSK:
		return qfunc(math.Sqrt(2 * snr))
	case QPSK:
		return qfunc(math.Sqrt(snr))
	case QAM16:
		return 0.75 * qfunc(math.Sqrt(snr/5))
	case QAM64:
		return (7.0 / 12.0) * qfunc(math.Sqrt(snr/21))
	}
	return 1
}

// dbToLinear converts dB to a linear power ratio.
func dbToLinear(db float64) float64 { return math.Pow(10, db/10) }

// linearToDB converts a linear power ratio to dB.
func linearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// The ESNR computation is the innermost kernel of the whole simulation:
// every transmitted PPDU and every controller CSI report evaluates it, and
// the naive form costs one math.Pow plus one math.Erfc per subcarrier plus
// a 60-step bisection (each step another Pow+Erfc). Since BER(m, ·) is a
// fixed, strictly monotone function of SNR, we sample it once per
// modulation on a fine dB grid and serve both the forward map (dB → BER)
// and its inverse (BER → dB) from that shared table with linear
// interpolation. Grid resolution is 1/128 dB, giving interpolation error
// well under the ±0.001 dB the bisection targeted.
const (
	berTblMinDB   = -40.0
	berTblMaxDB   = 80.0
	berTblStep    = 1.0 / 128
	berTblInvStep = 128.0
)

// invBER's historical saturation bracket: targets outside the BER values
// reachable in [-20, 60] dB clamp to the bracket edge.
const (
	invBERLoDB = -20.0
	invBERHiDB = 60.0
)

var (
	berTables [4][]float64
	// Grid indices of the inverse-search bracket endpoints.
	berIdxLo = int((invBERLoDB - berTblMinDB) * berTblInvStep)
	berIdxHi = int((invBERHiDB - berTblMinDB) * berTblInvStep)
)

func init() {
	n := int((berTblMaxDB-berTblMinDB)*berTblInvStep) + 1
	for m := BPSK; m <= QAM64; m++ {
		t := make([]float64, n)
		for i := range t {
			t[i] = BER(m, dbToLinear(berTblMinDB+float64(i)*berTblStep))
		}
		berTables[m] = t
	}
}

// berAtDB evaluates the tabulated BER of m at an SNR in dB, linearly
// interpolated. Inputs outside the table clamp to its edges, where BER has
// already saturated (max at the low end, underflowed to 0 at the high end).
func berAtDB(m Modulation, snrDB float64) float64 {
	t := berTables[m]
	x := (snrDB - berTblMinDB) * berTblInvStep
	if x <= 0 || math.IsNaN(x) {
		return t[0]
	}
	if x >= float64(len(t)-1) {
		return t[len(t)-1]
	}
	i := int(x)
	return t[i] + (t[i+1]-t[i])*(x-float64(i))
}

// esnrDBFromBER inverts the tabulated BER curve: the SNR in dB at which
// modulation m's BER equals target. The table is monotone non-increasing,
// so a binary search brackets the crossing and linear interpolation
// recovers the dB value. Saturation matches the bisection it replaced:
// targets below BER(60 dB) report 60, targets above BER(−20 dB) report −20.
func esnrDBFromBER(m Modulation, target float64) float64 {
	if target <= 0 {
		return invBERHiDB
	}
	t := berTables[m]
	if t[berIdxLo] <= target {
		return invBERLoDB
	}
	// Smallest index in (berIdxLo, berIdxHi] with t[i] <= target; the
	// invariant t[lo] > target >= t[hi] holds throughout.
	lo, hi := berIdxLo, berIdxHi
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if t[mid] <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	frac := (t[lo] - target) / (t[lo] - t[hi])
	return berTblMinDB + (float64(lo)+frac)*berTblStep
}

// invBER returns the SNR (linear) at which the modulation's BER equals
// target, served from the shared monotone lookup table.
func invBER(m Modulation, target float64) float64 {
	return dbToLinear(esnrDBFromBER(m, target))
}

// invBERBisect is the reference implementation invBER replaced: a
// bisection over the dB axis, exact to ±0.001 dB. Kept for accuracy
// cross-checks in tests.
func invBERBisect(m Modulation, target float64) float64 {
	if target <= 0 {
		return dbToLinear(invBERHiDB)
	}
	lo, hi := invBERLoDB, invBERHiDB
	if BER(m, dbToLinear(lo)) < target {
		return dbToLinear(lo)
	}
	if BER(m, dbToLinear(hi)) > target {
		return dbToLinear(hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if BER(m, dbToLinear(mid)) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return dbToLinear((lo + hi) / 2)
}

// EffectiveSNRdB computes ESNR in dB from per-subcarrier SNRs (dB) for a
// given modulation: mean the per-subcarrier BERs, then invert. Both
// directions are served from the per-modulation lookup table, so the call
// is allocation-free and costs a handful of table interpolations instead
// of dozens of Pow/Erfc evaluations.
func EffectiveSNRdB(snrsDB []float64, m Modulation) float64 {
	if len(snrsDB) == 0 {
		return math.Inf(-1)
	}
	if m < BPSK || m > QAM64 {
		return effectiveSNRdBSlow(snrsDB, m)
	}
	sum := 0.0
	for _, s := range snrsDB {
		sum += berAtDB(m, s)
	}
	return esnrDBFromBER(m, sum/float64(len(snrsDB)))
}

// effectiveSNRdBSlow is the direct (table-free) computation, used for
// modulations outside the tabulated set and as a test oracle.
func effectiveSNRdBSlow(snrsDB []float64, m Modulation) float64 {
	if len(snrsDB) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, s := range snrsDB {
		sum += BER(m, dbToLinear(s))
	}
	return linearToDB(invBERBisect(m, sum/float64(len(snrsDB))))
}

// Snapshot is one CSI measurement taken from a received uplink frame: the
// per-subcarrier SNRs the Atheros CSI tool would report, stamped with the
// reception time. APs encapsulate snapshots in UDP packets to the
// controller (§3.1.1).
type Snapshot struct {
	Time   sim.Time
	SNRsDB [rf.NumSubcarriers]float64
}

// ESNRdB evaluates the snapshot's effective SNR for modulation m. WGTT
// uses a fixed reference modulation for AP ranking so readings from
// different APs are comparable.
func (s *Snapshot) ESNRdB(m Modulation) float64 {
	return EffectiveSNRdB(s.SNRsDB[:], m)
}

// RefModulation is the reference constellation used when ranking APs. The
// mid-range 16-QAM keeps the metric sensitive across the whole useful SNR
// range (BPSK saturates high, 64-QAM saturates low).
const RefModulation = QAM16
