package csi

import (
	"testing"

	"wgtt/internal/sim"
)

// TestWindowMemoizationInvalidation pins the rev-counter discipline: the
// median and mean are memoized per content revision, and every mutation
// path — Add, and expiry triggered from Add, MedianAt, or MeanAt — must
// bump the revision so stale statistics can never be served.
func TestWindowMemoizationInvalidation(t *testing.T) {
	w := NewWindow(10 * sim.Millisecond)
	at := func(ms int64) sim.Time { return sim.Time(ms) * sim.Time(sim.Millisecond) }

	w.Add(at(1), 10)
	w.Add(at(2), 20)
	w.Add(at(3), 30)
	if m, ok := w.MedianAt(at(3)); !ok || m != 20 {
		t.Fatalf("median = %v,%v; want 20,true", m, ok)
	}
	// Unchanged content: repeated queries serve the memo.
	if m, _ := w.MedianAt(at(3)); m != 20 {
		t.Fatal("memoized median drifted on an unchanged window")
	}

	// Add must invalidate.
	w.Add(at(4), 40)
	if m, _ := w.MedianAt(at(4)); m != 30 {
		t.Errorf("median after Add = %v; memo not invalidated (want 30)", m)
	}

	// Expiry inside MedianAt must invalidate: at t=13ms the 10 dB and
	// 20 dB readings fall out, leaving {30, 40} → upper median 40.
	if m, _ := w.MedianAt(at(13)); m != 40 {
		t.Errorf("median after expiry = %v; memo not invalidated (want 40)", m)
	}
	if w.Len() != 2 {
		t.Errorf("len after expiry = %d, want 2", w.Len())
	}

	// MeanAt has its own memo against the same revision.
	if m, _ := w.MeanAt(at(13)); m != 35 {
		t.Errorf("mean = %v, want 35", m)
	}
	if m, _ := w.MeanAt(at(13)); m != 35 {
		t.Error("memoized mean drifted on an unchanged window")
	}
	// Expiry inside MeanAt must invalidate the mean memo too.
	if m, ok := w.MeanAt(at(14)); !ok || m != 40 {
		t.Errorf("mean after expiry = %v,%v; want 40,true", m, ok)
	}

	// Full expiry: no reading, no value, and the next Add starts clean.
	if _, ok := w.MedianAt(at(100)); ok {
		t.Error("median reported on an empty window")
	}
	w.Add(at(101), 7)
	if m, ok := w.MedianAt(at(101)); !ok || m != 7 {
		t.Errorf("median after refill = %v,%v; want 7,true", m, ok)
	}
}

// TestWindowMedianIsUpperMedian pins the paper's e_{⌊L/2⌋} statistic on
// even-length windows (index L/2 of the sorted list, the upper middle).
func TestWindowMedianIsUpperMedian(t *testing.T) {
	w := NewWindow(sim.Second)
	at := func(ms int64) sim.Time { return sim.Time(ms) * sim.Time(sim.Millisecond) }
	for i, v := range []float64{4, 1, 3, 2} {
		w.Add(at(int64(i)), v)
	}
	if m, _ := w.MedianAt(at(4)); m != 3 {
		t.Errorf("even-length median = %v, want upper median 3", m)
	}
}
