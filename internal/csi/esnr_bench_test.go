package csi

import (
	"math"
	"testing"

	"wgtt/internal/rf"
)

// TestTableMatchesBisection pins the lookup-table ESNR pipeline to the
// reference bisection within the ±0.001 dB-class tolerance the bisection
// itself targeted.
func TestTableMatchesBisection(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		for db := -10.0; db <= 45; db += 0.37 {
			target := BER(m, dbToLinear(db))
			if target <= 0 {
				continue
			}
			got := linearToDB(invBER(m, target))
			want := linearToDB(invBERBisect(m, target))
			if math.Abs(got-want) > 0.005 {
				t.Fatalf("%v invBER at %v dB: table %v, bisection %v", m, db, got, want)
			}
		}
	}
}

// TestEffectiveSNRTableMatchesSlow pins the table-driven EffectiveSNRdB to
// the direct computation on frequency-selective inputs.
func TestEffectiveSNRTableMatchesSlow(t *testing.T) {
	snrs := make([]float64, rf.NumSubcarriers)
	for trial := 0; trial < 50; trial++ {
		for i := range snrs {
			// Deterministic pseudo-selective channel spanning −5..40 dB.
			snrs[i] = 17 + 22*math.Sin(float64(trial)*0.7+float64(i)*0.41) - 5*math.Cos(float64(i)*1.3)
		}
		for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
			got := EffectiveSNRdB(snrs, m)
			want := effectiveSNRdBSlow(snrs, m)
			if math.Abs(got-want) > 0.01 {
				t.Fatalf("%v trial %d: table ESNR %v, slow %v", m, trial, got, want)
			}
		}
	}
}

// TestEffectiveSNRSaturation covers the inverse's clamp paths.
func TestEffectiveSNRSaturation(t *testing.T) {
	snrs := make([]float64, rf.NumSubcarriers)
	for i := range snrs {
		snrs[i] = -35 // hopeless channel: BER at its max everywhere
	}
	if e := EffectiveSNRdB(snrs, QAM16); e > invBERLoDB+0.5 {
		t.Errorf("hopeless channel ESNR = %v, want ≈%v", e, invBERLoDB)
	}
	for i := range snrs {
		snrs[i] = 75 // BER underflows to exactly 0 everywhere
	}
	if e := EffectiveSNRdB(snrs, QAM16); e != invBERHiDB {
		t.Errorf("perfect channel ESNR = %v, want %v", e, invBERHiDB)
	}
	// Out-of-range modulations fall back to the slow path.
	if e := EffectiveSNRdB(snrs, Modulation(9)); math.IsNaN(e) {
		t.Error("unknown modulation ESNR is NaN")
	}
}

var sinkF float64

func BenchmarkEffectiveSNRdB(b *testing.B) {
	snrs := make([]float64, rf.NumSubcarriers)
	for i := range snrs {
		snrs[i] = 17 + 12*math.Sin(float64(i)*0.41)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = EffectiveSNRdB(snrs, QAM16)
	}
}

func BenchmarkEffectiveSNRdBSlow(b *testing.B) {
	snrs := make([]float64, rf.NumSubcarriers)
	for i := range snrs {
		snrs[i] = 17 + 12*math.Sin(float64(i)*0.41)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = effectiveSNRdBSlow(snrs, QAM16)
	}
}
