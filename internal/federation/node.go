package federation

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
)

// Link is one outgoing trunk direction a node can send on
// (*deploy.Trunk satisfies it).
type Link interface {
	Deliver(m packet.Message)
	Up() bool
}

// Handler is the node's local consumer — the segment's controller.
type Handler interface {
	// Owns reports whether the controller currently owns the client.
	Owns(c packet.MAC) bool
	// ExportedTo returns the segment this controller last exported the
	// client to (-1 if unknown), used to chase a stale claim toward the
	// real owner along the export chain.
	ExportedTo(c packet.MAC) int
	// OnFederated delivers a federation message addressed to this
	// segment; src is the originating segment.
	OnFederated(src int, msg packet.Message)
	// Release orders the controller to relinquish a client it believes
	// it owns because the directory converged on another owner.
	Release(c packet.MAC, owner int)
}

// Config tunes the federation layer (core.Config.Federation).
type Config struct {
	// Enabled turns the layer on; the zero value leaves every legacy
	// code path untouched.
	Enabled bool
	// Ring closes the trunk chain into a ring (an extra trunk between
	// the first and last segments). Requires at least three segments.
	Ring bool
	// ExtraTrunks adds further bypass trunks between segment pairs.
	ExtraTrunks [][2]int
	// ClaimTimeout is the re-locate RPC's initial retry interval; it
	// backs off exponentially (0 = default 20 ms).
	ClaimTimeout sim.Duration
	// ExportTimeout is the reliable-export retransmit interval; it
	// backs off exponentially (0 = default 10 ms).
	ExportTimeout sim.Duration
	// MaxRetries bounds both RPCs' attempts (0 = default 8).
	MaxRetries int
}

// Default RPC parameters.
const (
	defaultClaimTimeout  = 20 * sim.Millisecond
	defaultExportTimeout = 10 * sim.Millisecond
	defaultMaxRetries    = 8
	maxBackoffShift      = 4 // cap backoff at 16x the base interval
)

// withDefaults fills zero RPC knobs.
func (c Config) withDefaults() Config {
	if c.ClaimTimeout == 0 {
		c.ClaimTimeout = defaultClaimTimeout
	}
	if c.ExportTimeout == 0 {
		c.ExportTimeout = defaultExportTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = defaultMaxRetries
	}
	return c
}

// pendingClaim is one in-flight re-locate: a claim retried with
// backoff until the owner's export arrives or attempts run out.
type pendingClaim struct {
	client   packet.MAC
	score    float64
	attempts int
	timer    *sim.Event
	spanID   uint32
}

// exportKey identifies one reliable export RPC.
type exportKey struct {
	client packet.MAC
	id     uint32
}

// pendingExport is one in-flight reliable export: retransmitted until
// the importer's HandoffAck or retry exhaustion, with the outcome
// reported to the controller (which keeps ownership until then).
type pendingExport struct {
	dst      int
	msg      *packet.Handoff
	attempts int
	timer    *sim.Event
	done     func(ok bool)
}

// fedMetrics are the node's counters (nil-safe until SetTelemetry).
type fedMetrics struct {
	dirLookups    *telemetry.Counter
	dirMisses     *telemetry.Counter
	dirUpdates    *telemetry.Counter
	dirQueries    *telemetry.Counter
	relocates     *telemetry.Counter
	relocatesDrop *telemetry.Counter
	claimRetx     *telemetry.Counter
	exportRetx    *telemetry.Counter
	routedFwd     *telemetry.Counter
	routedExpired *telemetry.Counter
	routedNoLink  *telemetry.Counter
}

// Node is one segment's federation endpoint. It lives entirely inside
// the segment's event-loop domain: links deliver into neighbouring
// domains through the trunks' cross-domain posts, and the shared
// Topology is immutable, so nodes never touch each other's state.
type Node struct {
	loop  *sim.Loop
	self  int
	topo  *Topology
	cfg   Config
	dir   *Directory
	links map[int]Link
	h     Handler

	spanSeq uint32
	claims  map[packet.MAC]*pendingClaim
	exports map[exportKey]*pendingExport

	met   fedMetrics
	spans *telemetry.Spans

	// Relocates counts completed re-locates (claim → import observed).
	Relocates int
	// RelocatesAbandoned counts claims that exhausted their retries.
	RelocatesAbandoned int
}

// NewNode builds the federation endpoint for segment self.
func NewNode(loop *sim.Loop, self int, topo *Topology, cfg Config) *Node {
	return &Node{
		loop:    loop,
		self:    self,
		topo:    topo,
		cfg:     cfg.withDefaults(),
		dir:     NewDirectory(),
		links:   make(map[int]Link),
		claims:  make(map[packet.MAC]*pendingClaim),
		exports: make(map[exportKey]*pendingExport),
	}
}

// Bind installs the node's local handler (the segment controller).
func (n *Node) Bind(h Handler) { n.h = h }

// AddLink registers the outgoing trunk direction toward neighbour seg.
func (n *Node) AddLink(seg int, l Link) { n.links[seg] = l }

// SetTelemetry hangs the node's counters under sc and records
// re-locates as spans on tracker sp (both may be zero/nil).
func (n *Node) SetTelemetry(sc telemetry.Scope, sp *telemetry.Spans) {
	if !sc.Enabled() {
		return
	}
	n.met = fedMetrics{
		dirLookups:    sc.Counter("dir_lookups"),
		dirMisses:     sc.Counter("dir_misses"),
		dirUpdates:    sc.Counter("dir_updates"),
		dirQueries:    sc.Counter("dir_queries"),
		relocates:     sc.Counter("relocates"),
		relocatesDrop: sc.Counter("relocates_abandoned"),
		claimRetx:     sc.Counter("claim_retx"),
		exportRetx:    sc.Counter("export_retx"),
		routedFwd:     sc.Counter("routed_fwd"),
		routedExpired: sc.Counter("routed_expired"),
		routedNoLink:  sc.Counter("routed_no_link"),
	}
	n.spans = sp
}

// Self returns the node's segment index.
func (n *Node) Self() int { return n.self }

// Directory exposes the node's replica (tests and telemetry).
func (n *Node) Directory() *Directory { return n.dir }

// OwnerOf returns the replica's current owner for a client.
func (n *Node) OwnerOf(c packet.MAC) (int, bool) {
	e, ok := n.dir.Lookup(c)
	return e.Owner, ok
}

// Send routes msg to segment dst inside a fresh Routed envelope. It
// returns false when dst is unreachable even on the full graph.
func (n *Node) Send(dst int, msg packet.Message) bool {
	if dst == n.self {
		n.h.OnFederated(n.self, msg)
		return true
	}
	m := &packet.Routed{SrcSeg: uint16(n.self), DstSeg: uint16(dst), TTL: n.topo.MaxTTL(), Inner: msg}
	return n.route(m)
}

// route emits an envelope on the next-hop link toward its destination.
func (n *Node) route(m *packet.Routed) bool {
	hop, ok := n.topo.NextHop(n.self, int(m.DstSeg), n.loop.Now())
	if !ok {
		n.met.routedNoLink.Inc()
		return false
	}
	l := n.links[hop]
	if l == nil {
		n.met.routedNoLink.Inc()
		return false
	}
	l.Deliver(m)
	return true
}

// Announce acquires (or re-asserts) local ownership of a client in the
// directory: it installs a locally-beating entry and floods it. Call
// on registration, on import, and when reclaiming a failed export.
func (n *Node) Announce(c packet.MAC) {
	cur, _ := n.dir.Lookup(c)
	e := Entry{Owner: n.self, Epoch: cur.Epoch + 1}
	n.dir.Apply(c, e)
	n.flood(&packet.DirUpdate{Client: c, Owner: uint16(n.self), Epoch: e.Epoch})
}

// NoteExported records a completed export locally and floods the new
// ownership. The exporter held the authoritative (highest-epoch) entry,
// so this update beats every stale replica even if the importer's own
// announcement is lost.
func (n *Node) NoteExported(c packet.MAC, dst int) {
	cur, _ := n.dir.Lookup(c)
	e := Entry{Owner: dst, Epoch: cur.Epoch + 1}
	n.dir.Apply(c, e)
	n.flood(&packet.DirUpdate{Client: c, Owner: uint16(dst), Epoch: e.Epoch})
}

// flood sends a directory message to every other segment. Each
// destination gets its own envelope; the inner message is immutable in
// flight and safely shared.
func (n *Node) flood(msg packet.Message) {
	for seg := 0; seg < n.topo.NumSegments(); seg++ {
		if seg != n.self {
			n.Send(seg, msg)
		}
	}
}

// Claim starts (or refreshes) a re-locate for a client this segment
// hears but does not own: look the owner up in the replica, send it a
// HandoffClaim, and retry with exponential backoff until the owner's
// export arrives. On a replica miss the node floods a DirQuery first.
func (n *Node) Claim(c packet.MAC, score float64) {
	if pc := n.claims[c]; pc != nil {
		pc.score = score // freshest signal rides the next retry
		return
	}
	n.spanSeq++
	pc := &pendingClaim{client: c, score: score, spanID: n.spanSeq}
	n.claims[c] = pc
	n.spans.Begin(pc.spanID, n.loop.Now(), n.self, -1)
	n.sendClaim(pc)
}

// sendClaim issues one claim attempt and arms its retry timer.
func (n *Node) sendClaim(pc *pendingClaim) {
	n.met.dirLookups.Inc()
	e, ok := n.dir.Lookup(pc.client)
	if !ok || e.Owner == n.self {
		// Replica miss (or it stale-points at us): ask the fleet.
		n.met.dirMisses.Inc()
		n.flood(&packet.DirQuery{Client: pc.client})
	} else {
		n.Send(e.Owner, &packet.Handoff{Kind: packet.HandoffClaim, Client: pc.client, Score: pc.score})
	}
	shift := pc.attempts
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	d := n.cfg.ClaimTimeout << shift
	pc.timer = n.loop.After(d, func() { n.claimTimeout(pc) })
}

// claimTimeout retries or abandons an unanswered claim.
func (n *Node) claimTimeout(pc *pendingClaim) {
	if n.claims[pc.client] != pc {
		return
	}
	if pc.attempts >= n.cfg.MaxRetries {
		delete(n.claims, pc.client)
		n.RelocatesAbandoned++
		n.met.relocatesDrop.Inc()
		n.spans.Drop(pc.spanID)
		return
	}
	pc.attempts++
	n.met.claimRetx.Inc()
	n.sendClaim(pc)
}

// ClaimResolved closes a pending re-locate: the claimed client was
// imported locally.
func (n *Node) ClaimResolved(c packet.MAC) {
	pc := n.claims[c]
	if pc == nil {
		return
	}
	delete(n.claims, c)
	if pc.timer != nil {
		n.loop.Cancel(pc.timer)
	}
	n.Relocates++
	n.met.relocates.Inc()
	n.spans.End(pc.spanID, n.loop.Now())
}

// SendReliable transfers an export to dst, retransmitting until the
// importer's HandoffAck or retry exhaustion; done reports the outcome.
// The caller keeps ownership until done(true).
func (n *Node) SendReliable(dst int, msg *packet.Handoff, done func(ok bool)) {
	pe := &pendingExport{dst: dst, msg: msg, done: done}
	n.exports[exportKey{msg.Client, msg.SwitchID}] = pe
	n.sendExport(pe)
}

// sendExport issues one export attempt and arms its retransmit timer.
func (n *Node) sendExport(pe *pendingExport) {
	n.Send(pe.dst, pe.msg)
	shift := pe.attempts
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	d := n.cfg.ExportTimeout << shift
	pe.timer = n.loop.After(d, func() { n.exportTimeout(pe) })
}

// exportTimeout retransmits or abandons an unacked export.
func (n *Node) exportTimeout(pe *pendingExport) {
	key := exportKey{pe.msg.Client, pe.msg.SwitchID}
	if n.exports[key] != pe {
		return
	}
	if pe.attempts >= n.cfg.MaxRetries {
		delete(n.exports, key)
		pe.done(false)
		return
	}
	pe.attempts++
	n.met.exportRetx.Inc()
	n.sendExport(pe)
}

// AbortExport cancels a pending export without an outcome callback
// (the controller released the client underneath it).
func (n *Node) AbortExport(c packet.MAC, switchID uint32) {
	key := exportKey{c, switchID}
	pe := n.exports[key]
	if pe == nil {
		return
	}
	delete(n.exports, key)
	if pe.timer != nil {
		n.loop.Cancel(pe.timer)
	}
}

// OnRouted accepts an envelope arriving on one of this node's trunks:
// deliver it locally or forward it toward its destination.
func (n *Node) OnRouted(m *packet.Routed) {
	if int(m.DstSeg) == n.self {
		n.local(m)
		return
	}
	n.forward(m)
}

// forward sends an in-flight envelope one hop onward, honouring TTL.
func (n *Node) forward(m *packet.Routed) {
	if m.TTL == 0 {
		n.met.routedExpired.Inc()
		return
	}
	m.TTL--
	n.met.routedFwd.Inc()
	n.route(m)
}

// local consumes an envelope addressed to this segment.
func (n *Node) local(m *packet.Routed) {
	src := int(m.SrcSeg)
	switch inner := m.Inner.(type) {
	case *packet.DirUpdate:
		e := Entry{Owner: int(inner.Owner), Epoch: inner.Epoch}
		if n.dir.Apply(inner.Client, e) {
			n.met.dirUpdates.Inc()
			if e.Owner != n.self && n.h.Owns(inner.Client) {
				// The directory converged on someone else: stand down.
				n.h.Release(inner.Client, e.Owner)
			}
		}
	case *packet.DirQuery:
		n.met.dirQueries.Inc()
		if n.h.Owns(inner.Client) {
			e, _ := n.dir.Lookup(inner.Client)
			n.Send(src, &packet.DirUpdate{Client: inner.Client, Owner: uint16(n.self), Epoch: e.Epoch})
		}
	case *packet.Handoff:
		if inner.Kind == packet.HandoffAck {
			n.onAck(inner)
			return
		}
		if inner.Kind == packet.HandoffClaim && !n.h.Owns(inner.Client) {
			// Stale claim: chase the export chain toward the real owner,
			// preserving the envelope's origin so the eventual export
			// goes back to the claimant, not to us.
			if next := n.h.ExportedTo(inner.Client); next >= 0 && next != n.self && next != src {
				m.DstSeg = uint16(next)
				n.forward(m)
			}
			return
		}
		n.h.OnFederated(src, inner)
	default:
		n.h.OnFederated(src, inner)
	}
}

// onAck resolves a pending reliable export.
func (n *Node) onAck(m *packet.Handoff) {
	key := exportKey{m.Client, m.SwitchID}
	pe := n.exports[key]
	if pe == nil {
		return
	}
	delete(n.exports, key)
	if pe.timer != nil {
		n.loop.Cancel(pe.timer)
	}
	pe.done(true)
}
