package federation

import (
	"testing"

	"wgtt/internal/sim"
)

// walkRoute follows NextHop from from toward to with the outage state
// frozen at time at, returning the visited path. It fails the walk (ok
// false) if the route exceeds the TTL budget or revisits a node.
func walkRoute(t *Topology, from, to int, at sim.Time) (path []int, ok bool) {
	seen := make(map[int]bool)
	cur := from
	path = append(path, cur)
	for steps := 0; cur != to; steps++ {
		if steps > int(t.MaxTTL()) {
			return path, false
		}
		if seen[cur] {
			return path, false
		}
		seen[cur] = true
		hop, found := t.NextHop(cur, to, at)
		if !found {
			return path, false
		}
		cur = hop
		path = append(path, cur)
	}
	return path, true
}

// TestTopologyChainRoutes pins next-hop routing on the plain adjacent
// chain: every route is the unique chain path.
func TestTopologyChainRoutes(t *testing.T) {
	topo := NewTopology(5, nil, nil)
	for from := 0; from < 5; from++ {
		for to := 0; to < 5; to++ {
			hop, ok := topo.NextHop(from, to, 0)
			if !ok {
				t.Fatalf("chain route %d->%d not found", from, to)
			}
			want := from
			if to > from {
				want = from + 1
			} else if to < from {
				want = from - 1
			}
			if hop != want {
				t.Errorf("chain %d->%d: hop %d, want %d", from, to, hop, want)
			}
		}
	}
}

// TestTopologyRingShortcut pins that a ring-closure trunk carries
// traffic the short way around.
func TestTopologyRingShortcut(t *testing.T) {
	topo := NewTopology(6, [][2]int{{0, 5}}, nil)
	if hop, ok := topo.NextHop(0, 5, 0); !ok || hop != 5 {
		t.Errorf("ring 0->5: hop %d ok %v, want direct 5", hop, ok)
	}
	if hop, ok := topo.NextHop(5, 0, 0); !ok || hop != 0 {
		t.Errorf("ring 5->0: hop %d ok %v, want direct 0", hop, ok)
	}
	// 1 -> 5 is two hops via 0 (ring), three via the chain.
	if hop, ok := topo.NextHop(1, 5, 0); !ok || hop != 0 {
		t.Errorf("ring 1->5: hop %d ok %v, want 0", hop, ok)
	}
}

// TestTopologyOutageReroute pins steering around a downed edge when an
// alternate path exists, and the full-graph fallback when none does.
func TestTopologyOutageReroute(t *testing.T) {
	out := []EdgeOutage{{A: 1, B: 2, Start: sim.Duration(0), End: 10 * sim.Second}}
	ring := NewTopology(4, [][2]int{{0, 3}}, out)
	// During the outage the 1->2 route must go the long way: 1->0->3->2.
	path, ok := walkRoute(ring, 1, 2, sim.Time(5*sim.Second))
	if !ok {
		t.Fatalf("ring reroute failed: path %v", path)
	}
	if len(path) != 4 || path[1] != 0 || path[2] != 3 {
		t.Errorf("ring reroute path %v, want [1 0 3 2]", path)
	}
	// After the window the direct hop returns.
	if hop, _ := ring.NextHop(1, 2, sim.Time(11*sim.Second)); hop != 2 {
		t.Errorf("post-outage hop %d, want 2", hop)
	}
	// A chain has no alternate path: the fallback still routes into the
	// downed edge (the trunk drops at the sender; RPC retries recover).
	chain := NewTopology(4, nil, out)
	if hop, ok := chain.NextHop(1, 2, sim.Time(5*sim.Second)); !ok || hop != 2 {
		t.Errorf("chain fallback hop %d ok %v, want 2 true", hop, ok)
	}
}

// TestTopologyNoCyclesRandom is the router's no-cycle/reachability
// property: across random topologies, outage schedules, and probe
// times (seeds 1-10), every route terminates at its destination within
// the TTL budget without revisiting a node.
func TestTopologyNoCyclesRandom(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := sim.NewRNG(seed).Fork("topo")
		n := 3 + rng.Intn(8)
		var extra [][2]int
		for k := rng.Intn(4); k > 0; k-- {
			extra = append(extra, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		var outs []EdgeOutage
		for k := rng.Intn(3); k > 0; k-- {
			start := sim.Duration(rng.Intn(10)) * sim.Second
			outs = append(outs, EdgeOutage{
				A: rng.Intn(n), B: rng.Intn(n),
				Start: start, End: start + sim.Duration(1+rng.Intn(5))*sim.Second,
			})
		}
		topo := NewTopology(n, extra, outs)
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				for _, at := range []sim.Time{0, sim.Time(3 * sim.Second), sim.Time(8 * sim.Second)} {
					path, ok := walkRoute(topo, from, to, at)
					if !ok {
						t.Fatalf("seed %d n=%d extra=%v outs=%v: route %d->%d at %v cycled or died: %v",
							seed, n, extra, outs, from, to, at, path)
					}
				}
			}
		}
	}
}

// FuzzRouter fuzzes NextHop with arbitrary topology parameters: the
// route walk must always terminate (destination reached or explicit
// failure) without cycling, and every returned hop must be a neighbour.
func FuzzRouter(f *testing.F) {
	f.Add(4, 0, 3, 1, 2, int64(0), int64(5_000_000_000))
	f.Add(5, 1, 3, 0, 4, int64(1_000_000_000), int64(2_000_000_000))
	f.Add(8, 2, 7, 7, 0, int64(0), int64(0))
	f.Add(3, 0, 2, 2, 2, int64(500), int64(400))
	f.Fuzz(func(t *testing.T, n, ea, eb, from, to int, outStart, outEnd int64) {
		if n < 1 || n > 64 {
			return
		}
		var outs []EdgeOutage
		if outEnd > outStart && outStart >= 0 {
			outs = append(outs, EdgeOutage{A: -1, B: -1,
				Start: sim.Duration(outStart), End: sim.Duration(outEnd)})
		}
		topo := NewTopology(n, [][2]int{{ea, eb}}, outs)
		if from < 0 || from >= n || to < 0 || to >= n {
			return
		}
		at := sim.Time(outStart)
		hop, ok := topo.NextHop(from, to, at)
		if !ok {
			return // disconnected is a legal answer
		}
		if from != to {
			found := false
			for _, v := range topo.Neighbors(from) {
				if v == hop {
					found = true
				}
			}
			if !found {
				t.Fatalf("n=%d edge=%d-%d: hop %d of %d->%d is not a neighbour", n, ea, eb, hop, from, to)
			}
		}
		if path, ok := walkRoute(topo, from, to, at); !ok {
			t.Fatalf("n=%d edge=%d-%d: route %d->%d cycled: %v", n, ea, eb, from, to, path)
		}
	})
}
