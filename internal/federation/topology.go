// Package federation adds a cross-segment control layer on top of the
// per-segment controllers: a replicated client→owner-segment directory
// (epoch-versioned, last-writer-wins), multi-hop trunk routing over
// arbitrary trunk topologies (the adjacent chain plus optional bypass /
// ring links), and a re-locate protocol that lets a controller that
// lost a client (U-turn, coverage gap, trunk outage) find the current
// owner and re-establish the stop/start/ack handoff pipeline with it.
// Every federation message travels inside a packet.Routed envelope,
// forwarded hop by hop along next-hop tables with a TTL bound, and the
// claim/export RPCs retry with exponential backoff so the layer
// survives the trunk faults deploy.FaultSchedule injects.
package federation

import "wgtt/internal/sim"

// EdgeOutage mirrors one deploy-level trunk outage window for routing:
// while the window is open the router steers around the edge when an
// alternate up-path exists. A = B = -1 covers every edge.
type EdgeOutage struct {
	A, B  int
	Start sim.Duration
	End   sim.Duration
}

// covers reports whether the outage applies to edge a-b.
func (o EdgeOutage) covers(a, b int) bool {
	if o.A == -1 && o.B == -1 {
		return true
	}
	return (o.A == a && o.B == b) || (o.A == b && o.B == a)
}

// Topology is the deployment's trunk graph: the adjacent segment chain
// plus any extra (bypass/ring) trunks, with the shared outage schedule.
// It is immutable after construction and safe to share across segment
// domains: NextHop is a pure function of (from, to, at), so every node
// computes identical routes from the global schedule without any
// cross-domain state.
type Topology struct {
	n       int
	adj     [][]int // adj[i] = neighbours of i, ascending
	outages []EdgeOutage
}

// NewTopology builds the trunk graph for n segments: edges i—i+1 plus
// the extra pairs. Duplicate and out-of-range extras are ignored.
func NewTopology(n int, extra [][2]int, outages []EdgeOutage) *Topology {
	t := &Topology{n: n, outages: outages}
	t.adj = make([][]int, n)
	edge := make(map[[2]int]bool)
	add := func(a, b int) {
		if a < 0 || b < 0 || a >= n || b >= n || a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if edge[[2]int{a, b}] {
			return
		}
		edge[[2]int{a, b}] = true
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	for i := 0; i+1 < n; i++ {
		add(i, i+1)
	}
	for _, e := range extra {
		add(e[0], e[1])
	}
	for i := range t.adj {
		sortInts(t.adj[i])
	}
	return t
}

// sortInts is insertion sort: neighbour lists are tiny and the sort
// must be deterministic.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// NumSegments returns the node count.
func (t *Topology) NumSegments() int { return t.n }

// Neighbors returns i's trunk neighbours in ascending order.
func (t *Topology) Neighbors(i int) []int { return t.adj[i] }

// EdgeUp reports whether edge a-b is outside every outage window at
// time at. Because the schedule is global configuration, every segment
// domain computes the same answer without synchronizing.
func (t *Topology) EdgeUp(a, b int, at sim.Time) bool {
	for _, o := range t.outages {
		if o.covers(a, b) && !at.Before(sim.Time(o.Start)) && at.Before(sim.Time(o.End)) {
			return false
		}
	}
	return true
}

// MaxTTL bounds a Routed envelope's hop count. Any simple path visits
// at most n-1 edges; the slack absorbs mid-flight re-routes around an
// outage that opens while a message travels.
func (t *Topology) MaxTTL() uint8 {
	ttl := 2 * t.n
	if ttl > 255 {
		ttl = 255
	}
	return uint8(ttl)
}

// NextHop returns the neighbour on the shortest up-path from from to
// to at time at. Ties break toward the lowest neighbour index (the BFS
// visits neighbours in ascending order), so all nodes agree on routes.
// When no up-path exists the route falls back to the full graph —
// trunks drop at the sender during an outage and the RPC retry layer
// recovers — so ok is false only for a disconnected underlying graph.
func (t *Topology) NextHop(from, to int, at sim.Time) (hop int, ok bool) {
	if from == to {
		return from, true
	}
	if hop, ok = t.bfs(from, to, at, true); ok {
		return hop, true
	}
	return t.bfs(from, to, at, false)
}

// bfs runs a breadth-first search from from toward to and returns the
// first hop of the discovered path. respectOutages excludes edges that
// are down at time at.
func (t *Topology) bfs(from, to int, at sim.Time, respectOutages bool) (int, bool) {
	prev := make([]int, t.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[from] = from
	queue := []int{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.adj[u] {
			if prev[v] >= 0 {
				continue
			}
			if respectOutages && !t.EdgeUp(u, v, at) {
				continue
			}
			prev[v] = u
			if v == to {
				// Walk back to the hop adjacent to from.
				for prev[v] != from {
					v = prev[v]
				}
				return v, true
			}
			queue = append(queue, v)
		}
	}
	return -1, false
}
