package federation

import "wgtt/internal/packet"

// Entry is one replicated directory fact: segment Owner owns the
// client as of version Epoch.
type Entry struct {
	Owner int
	Epoch uint32
}

// Beats is the directory's total order: higher epochs win, and equal
// epochs break toward the higher owner index. Every replica applies
// the same rule, so concurrent acquisitions (e.g. an export the
// exporter gave up on that nevertheless arrived, racing the exporter's
// reclaim) converge on a single owner: the loser observes a beating
// entry naming someone else and releases.
func (e Entry) Beats(o Entry) bool {
	if e.Epoch != o.Epoch {
		return e.Epoch > o.Epoch
	}
	return e.Owner > o.Owner
}

// Directory is one node's replica of the client→owner map.
type Directory struct {
	entries map[packet.MAC]Entry
}

// NewDirectory returns an empty replica.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[packet.MAC]Entry)}
}

// Lookup returns the replica's entry for a client.
func (d *Directory) Lookup(c packet.MAC) (Entry, bool) {
	e, ok := d.entries[c]
	return e, ok
}

// Apply merges a received entry, returning true if it beat (and
// replaced) the current one. A first entry for a client always wins.
func (d *Directory) Apply(c packet.MAC, e Entry) bool {
	cur, ok := d.entries[c]
	if ok && !e.Beats(cur) {
		return false
	}
	d.entries[c] = e
	return true
}

// Len returns the number of clients with entries.
func (d *Directory) Len() int { return len(d.entries) }
