package federation

import (
	"fmt"
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// testNet wires federation Nodes over fake trunks on one loop: each
// directed edge delivers Routed envelopes after a fixed delay, drops
// them during topology outage windows, and optionally drops them at
// random (the RPC retry layer must recover).
type testNet struct {
	loop  *sim.Loop
	topo  *Topology
	nodes []*Node
	hs    []*ownerSim
	delay sim.Duration
	// dropProb, with rng set, drops each delivery independently.
	dropProb float64
	rng      *sim.RNG
	// Delivered counts messages that crossed a link.
	Delivered int
}

type fakeLink struct {
	net      *testNet
	from, to int
}

func (l *fakeLink) Up() bool { return l.net.topo.EdgeUp(l.from, l.to, l.net.loop.Now()) }

func (l *fakeLink) Deliver(m packet.Message) {
	if !l.Up() {
		return
	}
	if l.net.dropProb > 0 && l.net.rng.Float64() < l.net.dropProb {
		return
	}
	r, ok := m.(*packet.Routed)
	if !ok {
		return
	}
	l.net.Delivered++
	to := l.to
	l.net.loop.After(l.net.delay, func() { l.net.nodes[to].OnRouted(r) })
}

// ownerSim is a minimal controller stand-in implementing Handler: it
// mirrors the real controller's ownership state machine — reliable
// export on claim, adopt + ack + announce on import, stand-down on
// Release — without any radio or datapath.
type ownerSim struct {
	net      *testNet
	self     int
	owns     map[packet.MAC]bool
	exported map[packet.MAC]int
	pending  map[packet.MAC]bool
	nextID   uint32
	Releases int
}

func (h *ownerSim) node() *Node { return h.net.nodes[h.self] }

func (h *ownerSim) Owns(c packet.MAC) bool { return h.owns[c] }

func (h *ownerSim) ExportedTo(c packet.MAC) int {
	if v, ok := h.exported[c]; ok {
		return v
	}
	return -1
}

func (h *ownerSim) Release(c packet.MAC, owner int) {
	if !h.owns[c] {
		return
	}
	delete(h.owns, c)
	h.exported[c] = owner
	h.Releases++
}

func (h *ownerSim) OnFederated(src int, msg packet.Message) {
	m, ok := msg.(*packet.Handoff)
	if !ok {
		return
	}
	switch m.Kind {
	case packet.HandoffClaim:
		if !h.owns[m.Client] || h.pending[m.Client] || src == h.self {
			return
		}
		h.pending[m.Client] = true
		h.nextID++
		exp := &packet.Handoff{Kind: packet.HandoffExport, Client: m.Client, SwitchID: h.nextID}
		dst := src
		h.node().SendReliable(dst, exp, func(ok bool) {
			delete(h.pending, m.Client)
			if ok {
				delete(h.owns, m.Client)
				h.exported[m.Client] = dst
				h.node().NoteExported(m.Client, dst)
				return
			}
			h.node().Announce(m.Client) // reclaim
		})
	case packet.HandoffExport:
		ack := &packet.Handoff{Kind: packet.HandoffAck, Client: m.Client, SwitchID: m.SwitchID}
		if h.owns[m.Client] {
			h.node().Send(src, ack) // duplicate export: re-ack
			return
		}
		h.owns[m.Client] = true
		delete(h.exported, m.Client)
		h.node().Send(src, ack)
		h.node().Announce(m.Client)
		h.node().ClaimResolved(m.Client)
	}
}

// newTestNet builds numSegs nodes over the chain + extra trunk graph.
func newTestNet(numSegs int, extra [][2]int, outs []EdgeOutage, cfg Config) *testNet {
	net := &testNet{
		loop:  sim.NewLoop(),
		topo:  NewTopology(numSegs, extra, outs),
		delay: 200 * sim.Microsecond,
	}
	for i := 0; i < numSegs; i++ {
		net.nodes = append(net.nodes, NewNode(net.loop, i, net.topo, cfg))
		net.hs = append(net.hs, &ownerSim{
			net: net, self: i,
			owns:     make(map[packet.MAC]bool),
			exported: make(map[packet.MAC]int),
			pending:  make(map[packet.MAC]bool),
		})
	}
	for i, n := range net.nodes {
		n.Bind(net.hs[i])
		for _, j := range net.topo.Neighbors(i) {
			n.AddLink(j, &fakeLink{net: net, from: i, to: j})
		}
	}
	return net
}

// owners returns the segments claiming ownership of a client.
func (net *testNet) owners(c packet.MAC) []int {
	var segs []int
	for i, h := range net.hs {
		if h.owns[c] {
			segs = append(segs, i)
		}
	}
	return segs
}

// TestClaimRelocatesClient is the basic re-locate RPC: segment 2 hears
// a client owned by segment 0 and claims it through the directory.
func TestClaimRelocatesClient(t *testing.T) {
	net := newTestNet(4, nil, nil, Config{Enabled: true})
	c := packet.ClientMAC(0)
	net.hs[0].owns[c] = true
	net.nodes[0].Announce(c)
	net.loop.Run(sim.Time(100 * sim.Millisecond))

	net.nodes[2].Claim(c, 20)
	net.loop.Run(sim.Time(2 * sim.Second))

	if got := net.owners(c); len(got) != 1 || got[0] != 2 {
		t.Fatalf("owners after claim = %v, want [2]", got)
	}
	if net.nodes[2].Relocates != 1 {
		t.Errorf("claimant relocates = %d, want 1", net.nodes[2].Relocates)
	}
	for i, n := range net.nodes {
		if owner, ok := n.OwnerOf(c); !ok || owner != 2 {
			t.Errorf("replica %d owner = %d (%v), want 2", i, owner, ok)
		}
	}
}

// TestClaimWithoutDirectoryEntry exercises the DirQuery path: the
// claimant's replica has never heard of the client.
func TestClaimWithoutDirectoryEntry(t *testing.T) {
	net := newTestNet(3, nil, nil, Config{Enabled: true})
	c := packet.ClientMAC(0)
	net.hs[0].owns[c] = true // owned but never announced

	net.nodes[2].Claim(c, 20)
	net.loop.Run(sim.Time(2 * sim.Second))

	if got := net.owners(c); len(got) != 1 || got[0] != 2 {
		t.Fatalf("owners after cold claim = %v, want [2]", got)
	}
}

// TestExportRetransmitsThroughLoss pins the reliable-export RPC: with
// heavy random loss the ack eventually lands and ownership transfers
// exactly once.
func TestExportRetransmitsThroughLoss(t *testing.T) {
	net := newTestNet(2, nil, nil, Config{Enabled: true, MaxRetries: 12})
	net.dropProb = 0.5
	net.rng = sim.NewRNG(7).Fork("loss")
	c := packet.ClientMAC(0)
	net.hs[0].owns[c] = true
	net.nodes[0].Announce(c)
	net.loop.Run(sim.Time(100 * sim.Millisecond))

	net.nodes[1].Claim(c, 20)
	net.loop.Run(sim.Time(20 * sim.Second))

	if got := net.owners(c); len(got) != 1 || got[0] != 1 {
		t.Fatalf("owners after lossy export = %v, want [1]", got)
	}
}

// TestOutageAbandonsAndReclaims pins the failure path: a permanent
// outage on the only trunk makes the claim RPC abandon after its
// retries, leaving ownership untouched at the original segment.
func TestOutageAbandonsAndReclaims(t *testing.T) {
	outs := []EdgeOutage{{A: 0, B: 1, Start: 0, End: sim.Duration(1 << 60)}}
	net := newTestNet(2, nil, outs, Config{Enabled: true})
	c := packet.ClientMAC(0)
	net.hs[0].owns[c] = true

	net.nodes[1].Claim(c, 20)
	net.loop.Run(sim.Time(60 * sim.Second))

	if got := net.owners(c); len(got) != 1 || got[0] != 0 {
		t.Fatalf("owners after dead-trunk claim = %v, want [0]", got)
	}
	if net.nodes[1].RelocatesAbandoned != 1 {
		t.Errorf("abandoned = %d, want 1", net.nodes[1].RelocatesAbandoned)
	}
}

// TestStaleClaimChasesExportChain pins claim chasing: the directory
// still names segment 0, but 0 already exported the client to 1; the
// claim from 2 must be re-targeted along the export chain and the
// export must come back to the claimant.
func TestStaleClaimChasesExportChain(t *testing.T) {
	net := newTestNet(3, nil, nil, Config{Enabled: true})
	c := packet.ClientMAC(0)
	net.hs[1].owns[c] = true
	net.hs[0].exported[c] = 1
	// Replicas stale-point at 0 everywhere.
	for _, n := range net.nodes {
		n.Directory().Apply(c, Entry{Owner: 0, Epoch: 5})
	}
	net.nodes[2].Claim(c, 20)
	net.loop.Run(sim.Time(2 * sim.Second))

	if got := net.owners(c); len(got) != 1 || got[0] != 2 {
		t.Fatalf("owners after chased claim = %v, want [2]", got)
	}
}

// TestDirectoryInterleavingsSingleOwner is the tentpole property test:
// random interleavings of claims, trunk outages, and random loss across
// seeds 1-10 must always converge to exactly one owner per client, with
// every replica agreeing on who it is.
func TestDirectoryInterleavingsSingleOwner(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed).Fork("interleave")
			numSegs := 3 + rng.Intn(4)
			var extra [][2]int
			if rng.Intn(2) == 1 {
				extra = append(extra, [2]int{0, numSegs - 1}) // ring
			}
			var outs []EdgeOutage
			for k := rng.Intn(3); k > 0; k-- {
				a := rng.Intn(numSegs - 1)
				start := sim.Duration(rng.Intn(8)) * sim.Second
				outs = append(outs, EdgeOutage{A: a, B: a + 1,
					Start: start, End: start + sim.Duration(1+rng.Intn(3))*sim.Second})
			}
			net := newTestNet(numSegs, extra, outs, Config{Enabled: true})
			net.dropProb = 0.05
			net.rng = sim.NewRNG(seed).Fork("net-loss")

			clients := make([]packet.MAC, 3)
			for i := range clients {
				clients[i] = packet.ClientMAC(i)
				home := rng.Intn(numSegs)
				net.hs[home].owns[clients[i]] = true
				net.nodes[home].Announce(clients[i])
			}
			// Random claim interleaving: over 10 virtual seconds, random
			// segments claim random clients at random times.
			for k := 0; k < 25; k++ {
				at := sim.Time(rng.Intn(10_000)) * sim.Time(sim.Millisecond)
				seg := rng.Intn(numSegs)
				cl := clients[rng.Intn(len(clients))]
				score := 10 + 10*rng.Float64()
				net.loop.At(at, func() {
					if !net.hs[seg].owns[cl] {
						net.nodes[seg].Claim(cl, score)
					}
				})
			}
			// Long tail so every retry/backoff chain drains.
			net.loop.Run(sim.Time(120 * sim.Second))

			for _, cl := range clients {
				owners := net.owners(cl)
				if len(owners) != 1 {
					t.Fatalf("seed %d: client %v owners = %v, want exactly one", seed, cl, owners)
				}
				// Directory floods are fire-and-forget, so under loss a
				// replica may hold a stale entry — but a stale entry must
				// always lead to the true owner along the export chain
				// (that is what claim chasing relies on).
				for i, n := range net.nodes {
					owner, ok := n.OwnerOf(cl)
					if !ok {
						t.Errorf("seed %d: replica %d has no entry for %v", seed, i, cl)
						continue
					}
					for hops := 0; owner != owners[0]; hops++ {
						if hops > numSegs {
							t.Errorf("seed %d: replica %d entry for %v does not reach owner %d via export chain",
								seed, i, cl, owners[0])
							break
						}
						next := net.hs[owner].ExportedTo(cl)
						if next < 0 {
							t.Errorf("seed %d: replica %d names %d for %v, which neither owns nor exported it",
								seed, i, owner, cl)
							break
						}
						owner = next
					}
				}
			}
		})
	}
}

// TestConcurrentClaimsConverge pins the epoch tie-break: two segments
// claim the same client at the same instant; the directory must settle
// on a single owner and the loser must stand down via Release.
func TestConcurrentClaimsConverge(t *testing.T) {
	net := newTestNet(3, nil, nil, Config{Enabled: true})
	c := packet.ClientMAC(0)
	net.hs[1].owns[c] = true
	net.nodes[1].Announce(c)
	net.loop.Run(sim.Time(100 * sim.Millisecond))

	net.loop.At(net.loop.Now(), func() { net.nodes[0].Claim(c, 20) })
	net.loop.At(net.loop.Now(), func() { net.nodes[2].Claim(c, 20) })
	net.loop.Run(sim.Time(30 * sim.Second))

	owners := net.owners(c)
	if len(owners) != 1 {
		t.Fatalf("owners after concurrent claims = %v, want exactly one", owners)
	}
	for i, n := range net.nodes {
		if owner, ok := n.OwnerOf(c); !ok || owner != owners[0] {
			t.Errorf("replica %d owner = %d (%v), want %d", i, owner, ok, owners[0])
		}
	}
}
