package mac

import (
	"wgtt/internal/csi"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Channel supplies the instantaneous radio state between two nodes. The
// core package implements it over rf.Link realizations; mac stays agnostic
// of geometry.
type Channel interface {
	// SubcarrierSNRs fills dst (rf.NumSubcarriers long) with the
	// per-subcarrier SNR in dB at rx for a transmission from tx, and
	// reports whether rx can hear tx at all.
	SubcarrierSNRs(tx, rx *Node, dst []float64) bool
	// SenseSNRdB returns the large-scale SNR rx observes from tx, used
	// for carrier sensing (energy detection ignores fast fading).
	SenseSNRdB(tx, rx *Node) float64
}

// Detection is what a receiver learns from one PPDU: per-MPDU decode
// outcomes and the CSI measured on the frame.
type Detection struct {
	// OK[i] reports whether MPDU i decoded (FrameData only).
	OK []bool
	// Collided marks the whole PPDU destroyed by an overlapping
	// transmission.
	Collided bool
	// SNRsDB is the CSI snapshot measured on this reception.
	SNRsDB [rf.NumSubcarriers]float64
	// ESNRdB is the effective SNR at the frame's modulation.
	ESNRdB float64
}

// Receiver consumes deliveries from the medium.
type Receiver interface {
	// OnReceive fires at PPDU end for every audible node except the
	// transmitter. Frames whose preamble was undetectable are filtered
	// before this call.
	OnReceive(t *Transmission, det Detection)
}

// Node is one radio on the channel.
type Node struct {
	Name string
	Addr packet.MAC
	// Pos reports the node's current position (mobile for clients).
	Pos func() rf.Position
	// Recv handles deliveries; nil nodes only transmit.
	Recv Receiver
	// transmitting marks an in-flight PPDU from this node.
	transmitting bool
}

// Thresholds (dB over noise floor).
const (
	// senseThresholdDB: energy above this is "channel busy" (≈ −82 dBm
	// CCA with a −95 dBm floor).
	senseThresholdDB = 13
	// detectThresholdDB: below this a preamble is undetectable.
	detectThresholdDB = 1
	// captureMarginDB: a frame survives an overlap when it is this much
	// stronger than the interferer (preamble capture).
	captureMarginDB = 10
)

// Medium is the shared 2.4 GHz channel: it arbitrates access (CSMA with
// binary-exponential-style backoff), applies the ESNR→PER error model per
// MPDU per receiver, and resolves collisions with capture.
type Medium struct {
	loop    *sim.Loop
	channel Channel
	rng     *sim.RNG
	nodes   []*Node
	active  []*Transmission
	stats   MediumStats
}

// MediumStats counts medium-level events.
type MediumStats struct {
	PPDUs      int
	MPDUs      int
	MPDULosses int
	Collisions int
}

// NewMedium creates the channel on the given loop.
func NewMedium(loop *sim.Loop, channel Channel, rng *sim.RNG) *Medium {
	return &Medium{loop: loop, channel: channel, rng: rng}
}

// Register attaches a node to the channel.
func (m *Medium) Register(n *Node) {
	m.nodes = append(m.nodes, n)
}

// Unregister detaches a node from the channel: the node stops hearing
// deliveries, its in-flight transmissions are silenced (their delivery
// events canceled), and its pending contention grants are abandoned (the
// grant event finds the node gone and returns). Used by cross-segment
// client migration; the node can later be Registered on another medium.
func (m *Medium) Unregister(n *Node) {
	out := m.nodes[:0]
	for _, x := range m.nodes {
		if x != n {
			out = append(out, x)
		}
	}
	for i := len(out); i < len(m.nodes); i++ {
		m.nodes[i] = nil
	}
	m.nodes = out

	act := m.active[:0]
	for _, t := range m.active {
		if t.Tx == n {
			m.loop.Cancel(t.deliverEv)
			n.transmitting = false
			continue
		}
		act = append(act, t)
	}
	for i := len(act); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = act
}

// registered reports whether n is attached to this medium.
func (m *Medium) registered(n *Node) bool {
	for _, x := range m.nodes {
		if x == n {
			return true
		}
	}
	return false
}

// Stats returns medium counters.
func (m *Medium) Stats() MediumStats { return m.stats }

// busyUntil returns the time until which node n senses the channel busy,
// including NAV reservations for pending block ACKs.
func (m *Medium) busyUntil(n *Node) sim.Time {
	var until sim.Time
	for _, t := range m.active {
		end := t.End
		if t.expectsBA {
			// NAV: the medium stays reserved for the SIFS + block
			// ACK response of a unicast data PPDU.
			end = end.Add(phy.SIFS + phy.BlockAckAirtime)
		}
		if end <= m.loop.Now() {
			continue
		}
		if t.Tx == n || m.channel.SenseSNRdB(t.Tx, n) >= senseThresholdDB {
			if end > until {
				until = end
			}
		}
	}
	return until
}

// BlockAckOnAir reports whether a block ACK from another node is
// currently on the air audible to n. Secondary responders (non-serving
// APs acking an uplink frame) use this as their CCA check before sending
// a redundant ack; BAs that started within the last microsecond are
// invisible (the radio's CCA blind window), which is what makes the rare
// residual ack collisions of Table 3 possible.
func (m *Medium) BlockAckOnAir(n *Node) bool {
	now := m.loop.Now()
	for _, t := range m.active {
		if t.Type != FrameBlockAck || t.Tx == n {
			continue
		}
		if t.End <= now || t.Start > now.Add(-500*sim.Nanosecond) {
			continue
		}
		if m.channel.SenseSNRdB(t.Tx, n) >= senseThresholdDB {
			return true
		}
	}
	return false
}

// Contend schedules cb to run when node n wins a transmit opportunity:
// wait for the channel to go idle (as n senses it), then DIFS plus a
// random backoff in [0, cw) slots, re-deferring if the channel got busy
// meanwhile. cw ≤ 0 uses CWMin.
func (m *Medium) Contend(n *Node, cw int, cb func()) {
	if cw <= 0 {
		cw = 16
	}
	slots := m.rng.Intn(cw)
	m.contendAfter(n, slots, cb)
}

func (m *Medium) contendAfter(n *Node, slots int, cb func()) {
	start := m.loop.Now()
	if bu := m.busyUntil(n); bu > start {
		start = bu
	}
	grant := start.Add(phy.DIFS + sim.Duration(slots)*phy.Slot)
	m.loop.At(grant, func() {
		// The node may have been Unregistered (migrated to another
		// segment's medium) while the grant was pending; its channel
		// realizations are no longer ours to touch.
		if !m.registered(n) {
			return
		}
		// The channel may have become busy again; freeze the backoff
		// and resume after it clears (approximating 802.11's counter
		// freeze with a single remaining-slot re-draw).
		if m.busyUntil(n) > m.loop.Now() {
			m.contendAfter(n, m.rng.Intn(4), cb)
			return
		}
		cb()
	})
}

// Transmit puts t on the air now. The caller must not reuse t. Deliveries
// fire at PPDU end for every audible registered node.
func (m *Medium) Transmit(t *Transmission) {
	t.Start = m.loop.Now()
	t.End = t.Start.Add(t.Airtime())
	t.expectsBA = t.Type == FrameData && t.Dst != Broadcast
	t.Tx.transmitting = true
	m.active = append(m.active, t)
	m.stats.PPDUs++
	m.stats.MPDUs += len(t.MPDUs)

	t.deliverEv = m.loop.At(t.End, func() {
		t.Tx.transmitting = false
		m.deliverAll(t)
		m.prune()
	})
}

// deliverAll evaluates t at every potential receiver.
func (m *Medium) deliverAll(t *Transmission) {
	var snrs [rf.NumSubcarriers]float64
	for _, n := range m.nodes {
		if n == t.Tx || n.Recv == nil {
			continue
		}
		if !m.channel.SubcarrierSNRs(t.Tx, n, snrs[:]) {
			continue
		}
		esnr := csi.EffectiveSNRdB(snrs[:], t.Rate.Modulation)
		if esnr < detectThresholdDB {
			continue
		}
		det := Detection{ESNRdB: esnr, SNRsDB: snrs}
		if m.collided(t, n, esnr) {
			det.Collided = true
			if len(t.MPDUs) > 0 {
				det.OK = make([]bool, len(t.MPDUs))
				m.stats.MPDULosses += len(t.MPDUs)
			}
			m.stats.Collisions++
			n.Recv.OnReceive(t, det)
			continue
		}
		if t.Type == FrameData {
			det.OK = make([]bool, len(t.MPDUs))
			for i := range t.MPDUs {
				per := phy.PER(t.Rate, esnr, t.MPDUs[i].Pkt.WireLen())
				ok := m.rng.Float64() >= per
				det.OK[i] = ok
				if !ok {
					m.stats.MPDULosses++
				}
			}
		} else {
			// Control/management frames succeed or fail whole.
			per := phy.PER(t.Rate, esnr, frameBytes(t))
			if m.rng.Float64() < per {
				continue // undecodable: receiver never sees it
			}
		}
		n.Recv.OnReceive(t, det)
	}
}

// collided reports whether an overlapping transmission destroys t at
// receiver n (interferer within captureMarginDB of t's signal).
func (m *Medium) collided(t *Transmission, n *Node, esnrT float64) bool {
	for _, o := range m.active {
		if o == t || o.Tx == t.Tx || o.Tx == n {
			continue
		}
		if o.End <= t.Start || o.Start >= t.End {
			continue
		}
		inter := m.channel.SenseSNRdB(o.Tx, n)
		if inter > esnrT-captureMarginDB {
			return true
		}
	}
	return false
}

// prune drops transmissions that ended long ago from the overlap window.
func (m *Medium) prune() {
	cutoff := m.loop.Now().Add(-10 * sim.Millisecond)
	out := m.active[:0]
	for _, t := range m.active {
		if t.End >= cutoff {
			out = append(out, t)
		}
	}
	for i := len(out); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = out
}

// frameBytes returns the decodable body size of a non-data frame.
func frameBytes(t *Transmission) int {
	switch t.Type {
	case FrameBlockAck:
		return 32
	case FrameBeacon:
		return beaconBytes
	case FrameMgmt:
		return mgmtFrameBytes
	}
	return 0
}
