package mac

import (
	"math"
	"math/bits"

	"wgtt/internal/csi"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Channel supplies the instantaneous radio state between two nodes. The
// core package implements it over rf.Link realizations; mac stays agnostic
// of geometry.
type Channel interface {
	// SubcarrierSNRs fills dst (rf.NumSubcarriers long) with the
	// per-subcarrier SNR in dB at rx for a transmission from tx, and
	// reports whether rx can hear tx at all.
	SubcarrierSNRs(tx, rx *Node, dst []float64) bool
	// SenseSNRdB returns the large-scale SNR rx observes from tx, used
	// for carrier sensing (energy detection ignores fast fading).
	SenseSNRdB(tx, rx *Node) float64
}

// DetectHeadroomer is an optional Channel capability: the maximum dB by
// which any per-subcarrier SNR (and hence the effective SNR) can exceed
// the large-scale SenseSNRdB, i.e. an upper bound on constructive fast
// fading plus a safety margin. When a channel provides it, the medium
// rejects receivers with SenseSNRdB + headroom < detectThresholdDB before
// paying for the per-subcarrier fill — a pure fast path that can never
// skip a node the full evaluation would have detected.
type DetectHeadroomer interface {
	DetectHeadroomDB() float64
}

// AudibilityIndex is an optional spatial prefilter over the medium's
// registered nodes. MarkAudible must set the bit Node.Seq() for every
// registered node that could plausibly detect a transmission from tx —
// false positives merely cost the normal per-node evaluation, but a false
// negative would silently change delivery, so implementations must be
// strictly conservative (when in doubt, mark the bit). The medium still
// applies its own threshold tests to every marked node, which is what
// keeps index-on and index-off runs bit-identical.
type AudibilityIndex interface {
	// Register and Unregister mirror the medium's node set.
	Register(n *Node)
	Unregister(n *Node)
	// MarkAudible sets candidate bits (indexed by Node.Seq()) in bitmap.
	MarkAudible(tx *Node, bitmap []uint64)
}

// Detection is what a receiver learns from one PPDU: per-MPDU decode
// outcomes and the CSI measured on the frame.
type Detection struct {
	// OK[i] reports whether MPDU i decoded (FrameData only). The slice
	// is the medium's per-delivery scratch: it is valid only for the
	// duration of the OnReceive call and is recycled afterwards, so a
	// receiver that needs the outcomes later must copy them.
	OK []bool
	// Collided marks the whole PPDU destroyed by an overlapping
	// transmission.
	Collided bool
	// SNRsDB is the CSI snapshot measured on this reception.
	SNRsDB [rf.NumSubcarriers]float64
	// ESNRdB is the effective SNR at the frame's modulation.
	ESNRdB float64
}

// Receiver consumes deliveries from the medium.
type Receiver interface {
	// OnReceive fires at PPDU end for every audible node except the
	// transmitter. Frames whose preamble was undetectable are filtered
	// before this call.
	OnReceive(t *Transmission, det Detection)
}

// Node is one radio on the channel.
type Node struct {
	Name string
	Addr packet.MAC
	// Pos reports the node's current position (mobile for clients).
	Pos func() rf.Position
	// Recv handles deliveries; nil nodes only transmit.
	Recv Receiver
	// transmitting marks an in-flight PPDU from this node.
	transmitting bool
	// seq is the node's slot in the owning medium's bySeq table,
	// assigned at Register. Audibility indexes address nodes by it.
	seq int
}

// Seq returns the node's registration slot on its current medium, the
// bit position an AudibilityIndex uses in MarkAudible bitmaps.
func (n *Node) Seq() int { return n.seq }

// Thresholds (dB over noise floor).
const (
	// senseThresholdDB: energy above this is "channel busy" (≈ −82 dBm
	// CCA with a −95 dBm floor).
	senseThresholdDB = 13
	// detectThresholdDB: below this a preamble is undetectable.
	detectThresholdDB = 1
	// captureMarginDB: a frame survives an overlap when it is this much
	// stronger than the interferer (preamble capture).
	captureMarginDB = 10
)

// DetectThresholdDB exposes the preamble-detection threshold for index
// implementations and their tests.
const DetectThresholdDB = detectThresholdDB

// Medium is the shared 2.4 GHz channel: it arbitrates access (CSMA with
// binary-exponential-style backoff), applies the ESNR→PER error model per
// MPDU per receiver, and resolves collisions with capture.
type Medium struct {
	loop    *sim.Loop
	channel Channel
	rng     *sim.RNG
	nodes   []*Node
	active  []*Transmission
	stats   MediumStats

	// bySeq maps Node.seq → node, with nil holes after Unregister. Its
	// non-nil entries are always in registration order — the same order
	// as m.nodes — so bitmap-driven delivery visits receivers exactly
	// like the brute-force scan does.
	bySeq []*Node
	// index, when set, prunes deliverAll to plausibly-audible nodes.
	index AudibilityIndex
	// audBits is the reusable MarkAudible bitmap.
	audBits []uint64

	// headroomDB caches the channel's DetectHeadroomDB capability.
	headroomDB  float64
	hasHeadroom bool

	// onTransmit, when set, observes every transmission as it goes on
	// air (the cross-domain boundary-interference exchange taps it).
	onTransmit func(t *Transmission)
	// interference, when set, returns the summed linear
	// interference-over-noise a receiver accumulates during t from
	// sources this medium cannot model itself (remote-domain
	// transmissions). Zero means none; a positive value is applied as a
	// flat per-subcarrier SINR penalty before the ESNR evaluation.
	interference func(rx *Node, t *Transmission) float64

	// txFree recycles pooled Transmissions (see NewTransmission);
	// okScratch is the shared per-delivery Detection.OK buffer.
	txFree    []*Transmission
	okScratch []bool
}

// MediumStats counts medium-level events.
type MediumStats struct {
	PPDUs      int
	MPDUs      int
	MPDULosses int
	Collisions int
}

// NewMedium creates the channel on the given loop.
func NewMedium(loop *sim.Loop, channel Channel, rng *sim.RNG) *Medium {
	m := &Medium{loop: loop, channel: channel, rng: rng}
	if h, ok := channel.(DetectHeadroomer); ok {
		m.headroomDB = h.DetectHeadroomDB()
		m.hasHeadroom = true
	}
	return m
}

// SetOnTransmit installs (or, with nil, removes) the on-air observation
// hook; it fires synchronously inside Transmit after Start/End are
// stamped. The observer must not mutate or retain the transmission.
func (m *Medium) SetOnTransmit(fn func(t *Transmission)) { m.onTransmit = fn }

// SetInterference installs (or, with nil, removes) the external
// interference source consulted per delivery (see the interference
// field). Nil keeps the delivery path bit-identical to a hook-free
// medium.
func (m *Medium) SetInterference(fn func(rx *Node, t *Transmission) float64) {
	m.interference = fn
}

// SetAudibilityIndex installs (or, with nil, removes) the spatial
// prefilter. Already-registered nodes are replayed into the index so it
// can be attached after the plane is built.
func (m *Medium) SetAudibilityIndex(idx AudibilityIndex) {
	m.index = idx
	if idx != nil {
		for _, n := range m.nodes {
			idx.Register(n)
		}
	}
}

// Register attaches a node to the channel.
func (m *Medium) Register(n *Node) {
	n.seq = len(m.bySeq)
	m.bySeq = append(m.bySeq, n)
	m.nodes = append(m.nodes, n)
	if m.index != nil {
		m.index.Register(n)
	}
}

// Unregister detaches a node from the channel: the node stops hearing
// deliveries, its in-flight transmissions are silenced (their delivery
// events canceled), and its pending contention grants are abandoned (the
// grant event finds the node gone and returns). Used by cross-segment
// client migration; the node can later be Registered on another medium.
func (m *Medium) Unregister(n *Node) {
	out := m.nodes[:0]
	for _, x := range m.nodes {
		if x != n {
			out = append(out, x)
		}
	}
	for i := len(out); i < len(m.nodes); i++ {
		m.nodes[i] = nil
	}
	m.nodes = out

	if n.seq < len(m.bySeq) && m.bySeq[n.seq] == n {
		m.bySeq[n.seq] = nil
	}
	if m.index != nil {
		m.index.Unregister(n)
	}
	// Migration churn leaves nil holes; when they dominate, renumber.
	// Compaction preserves relative order, so delivery order (and hence
	// the RNG stream) is unaffected.
	if len(m.bySeq) >= 256 && len(m.nodes)*2 < len(m.bySeq) {
		m.bySeq = m.bySeq[:0]
		for _, x := range m.nodes {
			x.seq = len(m.bySeq)
			m.bySeq = append(m.bySeq, x)
		}
	}

	act := m.active[:0]
	for _, t := range m.active {
		if t.Tx == n {
			m.loop.Cancel(t.deliverEv)
			n.transmitting = false
			m.releaseTx(t)
			continue
		}
		act = append(act, t)
	}
	for i := len(act); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = act
}

// registered reports whether n is attached to this medium.
func (m *Medium) registered(n *Node) bool {
	for _, x := range m.nodes {
		if x == n {
			return true
		}
	}
	return false
}

// Stats returns medium counters.
func (m *Medium) Stats() MediumStats { return m.stats }

// NewTransmission returns a zeroed Transmission from the medium's free
// list. Pooled transmissions are recycled once they leave m.active (at
// the post-delivery prune, or at Unregister), so the caller — and every
// receiver — must not retain the pointer past its OnReceive/scheduled
// callbacks; copy the fields that outlive the delivery (typically
// Tx.Addr and the BA window) instead. Transmissions built as literals
// are never recycled, which is what tests and cold paths rely on.
func (m *Medium) NewTransmission() *Transmission {
	if k := len(m.txFree); k > 0 {
		t := m.txFree[k-1]
		m.txFree[k-1] = nil
		m.txFree = m.txFree[:k-1]
		return t
	}
	return &Transmission{pooled: true}
}

// releaseTx recycles a pooled transmission. MPDU slices are owned by the
// sender's aggregator, so the reset only drops the reference.
func (m *Medium) releaseTx(t *Transmission) {
	if !t.pooled {
		return
	}
	*t = Transmission{pooled: true}
	m.txFree = append(m.txFree, t)
}

// navEnd returns the time until which t occupies the medium for carrier
// sense: PPDU end, extended by the SIFS + block-ACK NAV reservation for
// unicast data.
func navEnd(t *Transmission) sim.Time {
	if t.expectsBA {
		return t.End.Add(phy.SIFS + phy.BlockAckAirtime)
	}
	return t.End
}

// busyUntil returns the time until which node n senses the channel busy,
// including NAV reservations for pending block ACKs.
func (m *Medium) busyUntil(n *Node) sim.Time {
	var until sim.Time
	for _, t := range m.active {
		end := navEnd(t)
		if end <= m.loop.Now() {
			continue
		}
		if t.Tx == n || m.channel.SenseSNRdB(t.Tx, n) >= senseThresholdDB {
			if end > until {
				until = end
			}
		}
	}
	return until
}

// BlockAckOnAir reports whether a block ACK from another node is
// currently on the air audible to n. Secondary responders (non-serving
// APs acking an uplink frame) use this as their CCA check before sending
// a redundant ack; BAs that started within the last microsecond are
// invisible (the radio's CCA blind window), which is what makes the rare
// residual ack collisions of Table 3 possible.
func (m *Medium) BlockAckOnAir(n *Node) bool {
	now := m.loop.Now()
	for _, t := range m.active {
		if t.Type != FrameBlockAck || t.Tx == n {
			continue
		}
		if t.End <= now || t.Start > now.Add(-500*sim.Nanosecond) {
			continue
		}
		if m.channel.SenseSNRdB(t.Tx, n) >= senseThresholdDB {
			return true
		}
	}
	return false
}

// Contend schedules cb to run when node n wins a transmit opportunity:
// wait for the channel to go idle (as n senses it), then DIFS plus a
// random backoff in [0, cw) slots, re-deferring if the channel got busy
// meanwhile. cw ≤ 0 uses CWMin.
func (m *Medium) Contend(n *Node, cw int, cb func()) {
	if cw <= 0 {
		cw = 16
	}
	slots := m.rng.Intn(cw)
	m.contendAfter(n, slots, cb)
}

func (m *Medium) contendAfter(n *Node, slots int, cb func()) {
	start := m.loop.Now()
	if bu := m.busyUntil(n); bu > start {
		start = bu
	}
	grant := start.Add(phy.DIFS + sim.Duration(slots)*phy.Slot)
	m.loop.At(grant, func() {
		// The node may have been Unregistered (migrated to another
		// segment's medium) while the grant was pending; its channel
		// realizations are no longer ours to touch.
		if !m.registered(n) {
			return
		}
		// The channel may have become busy again; freeze the backoff
		// and resume after it clears (approximating 802.11's counter
		// freeze with a single remaining-slot re-draw).
		if m.busyUntil(n) > m.loop.Now() {
			m.contendAfter(n, m.rng.Intn(4), cb)
			return
		}
		cb()
	})
}

// Transmit puts t on the air now. The caller must not reuse t. Deliveries
// fire at PPDU end for every audible registered node.
func (m *Medium) Transmit(t *Transmission) {
	t.Start = m.loop.Now()
	t.End = t.Start.Add(t.Airtime())
	t.expectsBA = t.Type == FrameData && t.Dst != Broadcast
	t.Tx.transmitting = true
	m.active = append(m.active, t)
	m.stats.PPDUs++
	m.stats.MPDUs += len(t.MPDUs)
	if m.onTransmit != nil {
		m.onTransmit(t)
	}

	t.deliverEv = m.loop.At(t.End, func() {
		// The handle must die here: prune may keep t in m.active past
		// this point, and a later Unregister canceling a fired (and
		// possibly recycled) event would hit an unrelated callback.
		t.deliverEv = nil
		t.Tx.transmitting = false
		m.deliverAll(t)
		m.prune()
	})
}

// deliverAll evaluates t at every potential receiver. With an audibility
// index installed only the marked candidates are visited; the set bits
// are walked in ascending seq order, which is registration order — the
// same order the brute-force scan uses — so both paths draw from the RNG
// identically.
func (m *Medium) deliverAll(t *Transmission) {
	var snrs [rf.NumSubcarriers]float64
	if m.index == nil {
		for _, n := range m.nodes {
			if n == t.Tx || n.Recv == nil {
				continue
			}
			m.deliverOne(t, n, &snrs)
		}
		return
	}
	words := (len(m.bySeq) + 63) / 64
	if cap(m.audBits) < words {
		m.audBits = make([]uint64, words)
	}
	m.audBits = m.audBits[:words]
	for i := range m.audBits {
		m.audBits[i] = 0
	}
	m.index.MarkAudible(t.Tx, m.audBits)
	for w, word := range m.audBits {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			n := m.bySeq[i]
			if n == nil || n == t.Tx || n.Recv == nil {
				continue
			}
			m.deliverOne(t, n, &snrs)
		}
	}
}

// deliverOne evaluates t at a single receiver n.
func (m *Medium) deliverOne(t *Transmission, n *Node, snrs *[rf.NumSubcarriers]float64) {
	if m.hasHeadroom &&
		m.channel.SenseSNRdB(t.Tx, n)+m.headroomDB < detectThresholdDB {
		// Even maximally constructive fading cannot lift this receiver
		// over the detection threshold; skip the per-subcarrier fill.
		return
	}
	if !m.channel.SubcarrierSNRs(t.Tx, n, snrs[:]) {
		return
	}
	if m.interference != nil {
		if iLin := m.interference(n, t); iLin > 0 {
			// Remote-domain co-channel energy raises the noise floor:
			// SINR = SNR − 10·log10(1 + I/N), flat across subcarriers
			// (only the interferer's large-scale budget is known).
			pen := 10 * math.Log10(1+iLin)
			for i := range snrs {
				snrs[i] -= pen
			}
		}
	}
	esnr := csi.EffectiveSNRdB(snrs[:], t.Rate.Modulation)
	if esnr < detectThresholdDB {
		return
	}
	det := Detection{ESNRdB: esnr, SNRsDB: *snrs}
	if m.collided(t, n, esnr) {
		det.Collided = true
		if len(t.MPDUs) > 0 {
			det.OK = m.okBuf(len(t.MPDUs))
			m.stats.MPDULosses += len(t.MPDUs)
		}
		m.stats.Collisions++
		n.Recv.OnReceive(t, det)
		return
	}
	if t.Type == FrameData {
		det.OK = m.okBuf(len(t.MPDUs))
		for i := range t.MPDUs {
			per := phy.PER(t.Rate, esnr, t.MPDUs[i].Pkt.WireLen())
			ok := m.rng.Float64() >= per
			det.OK[i] = ok
			if !ok {
				m.stats.MPDULosses++
			}
		}
	} else {
		// Control/management frames succeed or fail whole.
		per := phy.PER(t.Rate, esnr, frameBytes(t))
		if m.rng.Float64() < per {
			return // undecodable: receiver never sees it
		}
	}
	n.Recv.OnReceive(t, det)
}

// okBuf returns the shared Detection.OK scratch, zeroed, sized k. Valid
// only until the next delivery on this medium.
func (m *Medium) okBuf(k int) []bool {
	if cap(m.okScratch) < k {
		m.okScratch = make([]bool, k)
	}
	s := m.okScratch[:k]
	for i := range s {
		s[i] = false
	}
	return s
}

// collided reports whether an overlapping transmission destroys t at
// receiver n (interferer within captureMarginDB of t's signal).
func (m *Medium) collided(t *Transmission, n *Node, esnrT float64) bool {
	for _, o := range m.active {
		if o == t || o.Tx == t.Tx || o.Tx == n {
			continue
		}
		if o.End <= t.Start || o.Start >= t.End {
			continue
		}
		inter := m.channel.SenseSNRdB(o.Tx, n)
		if inter > esnrT-captureMarginDB {
			return true
		}
	}
	return false
}

// prune runs after each delivery and eagerly drops transmissions that can
// no longer matter, keeping the overlap scans O(genuinely concurrent). A
// finished transmission o is still needed only while (a) its NAV
// reservation extends past now (carrier sense), or (b) some still-pending
// transmission p overlaps it (p's delivery-time collision check walks
// m.active, and overlap requires o.End > p.Start). Anything transmitted
// in the future starts at ≥ now ≥ o.End and can never overlap o.
func (m *Medium) prune() {
	now := m.loop.Now()
	var minStart sim.Time
	hasPending := false
	for _, t := range m.active {
		// Undelivered means the delivery event is still queued — which
		// includes transmissions ending at this very instant whose
		// callback just hasn't run yet.
		if t.deliverEv != nil && (!hasPending || t.Start < minStart) {
			minStart = t.Start
			hasPending = true
		}
	}
	out := m.active[:0]
	for _, t := range m.active {
		if t.deliverEv != nil || navEnd(t) > now || (hasPending && t.End > minStart) {
			out = append(out, t)
			continue
		}
		m.releaseTx(t)
	}
	for i := len(out); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = out
}

// frameBytes returns the decodable body size of a non-data frame.
func frameBytes(t *Transmission) int {
	switch t.Type {
	case FrameBlockAck:
		return 32
	case FrameBeacon:
		return beaconBytes
	case FrameMgmt:
		return mgmtFrameBytes
	}
	return 0
}
