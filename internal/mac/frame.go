// Package mac models the 802.11n link layer the WGTT mechanisms plug
// into: a CSMA medium with carrier sense, capture and collisions; A-MPDU
// frame aggregation; and compressed block acknowledgements with the
// transmitter-side retry machinery that block-ACK forwarding (§3.2.1)
// feeds.
package mac

import (
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/sim"
)

// FrameType distinguishes PPDU kinds on the air.
type FrameType int

// Frame kinds.
const (
	FrameData FrameType = iota
	FrameBlockAck
	FrameBeacon
	FrameMgmt
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "Data"
	case FrameBlockAck:
		return "BlockAck"
	case FrameBeacon:
		return "Beacon"
	case FrameMgmt:
		return "Mgmt"
	}
	return "Frame(?)"
}

// MPDU is one subframe of an A-MPDU: a MAC sequence number plus the
// tunneled IP packet it carries.
type MPDU struct {
	Seq     uint16 // 12-bit MAC sequence number
	Pkt     packet.Packet
	Retries int
}

// BAInfo is the payload of a compressed block ACK frame: the window start
// sequence and a 64-bit bitmap where bit i acknowledges seq StartSeq+i.
type BAInfo struct {
	StartSeq uint16
	Bitmap   uint64
}

// Acked reports whether seq is acknowledged by the bitmap.
func (b BAInfo) Acked(seq uint16) bool {
	d := seqDist(b.StartSeq, seq)
	if d < 0 || d >= 64 {
		return false
	}
	return b.Bitmap&(1<<uint(d)) != 0
}

// Merge ORs another bitmap over the same window into b. Windows must
// share StartSeq; merging disjoint windows is a no-op. This implements
// the serving AP folding a forwarded block ACK into its own (§3.2.1).
func (b *BAInfo) Merge(other BAInfo) {
	if other.StartSeq != b.StartSeq {
		return
	}
	b.Bitmap |= other.Bitmap
}

// MgmtKind enumerates the management exchanges the roaming protocols use.
type MgmtKind int

// Management frame kinds (802.11 authentication/association and the
// 802.11r fast-transition reassociation).
const (
	MgmtAuthReq MgmtKind = iota
	MgmtAuthResp
	MgmtAssocReq
	MgmtAssocResp
	MgmtReassocReq
	MgmtReassocResp
)

// String implements fmt.Stringer.
func (k MgmtKind) String() string {
	switch k {
	case MgmtAuthReq:
		return "AuthReq"
	case MgmtAuthResp:
		return "AuthResp"
	case MgmtAssocReq:
		return "AssocReq"
	case MgmtAssocResp:
		return "AssocResp"
	case MgmtReassocReq:
		return "ReassocReq"
	case MgmtReassocResp:
		return "ReassocResp"
	}
	return "Mgmt(?)"
}

// MgmtInfo is the payload of a management frame.
type MgmtInfo struct {
	Kind MgmtKind
	// Target names the AP a reassociation addresses.
	Target packet.MAC
}

// mgmtFrameBytes is the over-the-air size of a management frame.
const mgmtFrameBytes = 90

// beaconBytes is the over-the-air size of a beacon frame.
const beaconBytes = 120

// Transmission is one PPDU on the air.
type Transmission struct {
	Tx   *Node
	Dst  packet.MAC // intended receiver; Broadcast for beacons
	Type FrameType
	Rate phy.Rate

	// MPDUs carries the aggregate's subframes (FrameData only).
	MPDUs []MPDU
	// BA is the block-ack payload (FrameBlockAck only).
	BA BAInfo
	// Mgmt is the management payload (FrameMgmt only).
	Mgmt MgmtInfo

	// Start and End bracket the PPDU's airtime; filled by the Medium.
	Start, End sim.Time
	// expectsBA marks unicast data that reserves the medium for the
	// SIFS + BA response (NAV).
	expectsBA bool
	// deliverEv is the scheduled PPDU-end delivery, kept so Unregister
	// can silence a migrating node's in-flight transmission. It is
	// nil'd at fire time so a late cancel never touches a recycled
	// event.
	deliverEv *sim.Event
	// pooled marks transmissions acquired from Medium.NewTransmission;
	// only those return to the free list when they leave the overlap
	// window. Literal-built transmissions stay unpooled and are never
	// recycled.
	pooled bool
}

// Broadcast is the all-ones destination address.
var Broadcast = packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Airtime returns the PPDU's on-air duration.
func (t *Transmission) Airtime() sim.Duration {
	switch t.Type {
	case FrameData:
		if len(t.MPDUs) == 0 {
			return 0
		}
		// Subframes may differ in size; sum payloads.
		total := 0
		for i := range t.MPDUs {
			total += phy.MPDUDelimiter + phy.MACHeader + t.MPDUs[i].Pkt.WireLen()
		}
		return phy.PLCPPreamble + phy.PayloadAirtime(t.Rate, total)
	case FrameBlockAck:
		return phy.BlockAckAirtime
	case FrameBeacon:
		return phy.PLCPPreamble + phy.PayloadAirtime(phy.BasicRate, beaconBytes)
	case FrameMgmt:
		return phy.PLCPPreamble + phy.PayloadAirtime(phy.BasicRate, mgmtFrameBytes)
	}
	return 0
}

// seqDist is modular distance in the 12-bit MAC sequence space.
func seqDist(a, b uint16) int {
	d := int((b - a) & 0x0fff)
	if d >= 0x0800 {
		d -= 0x1000
	}
	return d
}

// NextSeq advances a 12-bit MAC sequence counter.
func NextSeq(s uint16) uint16 { return (s + 1) & 0x0fff }
