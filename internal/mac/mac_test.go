package mac

import (
	"testing"
	"testing/quick"

	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// fakeChannel wires up fixed pairwise SNRs.
type fakeChannel struct {
	snr map[[2]*Node]float64
}

func newFakeChannel() *fakeChannel {
	return &fakeChannel{snr: map[[2]*Node]float64{}}
}

func (f *fakeChannel) set(a, b *Node, snr float64) {
	f.snr[[2]*Node{a, b}] = snr
	f.snr[[2]*Node{b, a}] = snr
}

func (f *fakeChannel) SubcarrierSNRs(tx, rx *Node, dst []float64) bool {
	s, ok := f.snr[[2]*Node{tx, rx}]
	if !ok {
		return false
	}
	for i := range dst {
		dst[i] = s
	}
	return true
}

func (f *fakeChannel) SenseSNRdB(tx, rx *Node) float64 {
	s, ok := f.snr[[2]*Node{tx, rx}]
	if !ok {
		return -100
	}
	return s
}

// collector records deliveries.
type collector struct {
	frames []*Transmission
	dets   []Detection
}

func (c *collector) OnReceive(t *Transmission, det Detection) {
	// det.OK is the medium's per-delivery scratch; copy it before the
	// next delivery overwrites it.
	det.OK = append([]bool(nil), det.OK...)
	c.frames = append(c.frames, t)
	c.dets = append(c.dets, det)
}

func node(name string, recv Receiver) *Node {
	return &Node{
		Name: name,
		Addr: packet.ClientMAC(len(name)),
		Pos:  func() rf.Position { return rf.Position{} },
		Recv: recv,
	}
}

func dataTx(tx *Node, dst packet.MAC, n int, rate phy.Rate) *Transmission {
	t := &Transmission{Tx: tx, Dst: dst, Type: FrameData, Rate: rate}
	for i := 0; i < n; i++ {
		t.MPDUs = append(t.MPDUs, MPDU{
			Seq: uint16(i),
			Pkt: packet.Packet{Proto: packet.ProtoUDP, PayloadLen: 1400},
		})
	}
	return t
}

func TestSeqDistAndNextSeq(t *testing.T) {
	if seqDist(0, 63) != 63 || seqDist(4095, 0) != 1 || seqDist(0, 4095) != -1 {
		t.Error("seqDist wrong")
	}
	if NextSeq(4095) != 0 || NextSeq(7) != 8 {
		t.Error("NextSeq wrong")
	}
}

func TestBAInfoAckedAndMerge(t *testing.T) {
	ba := BAInfo{StartSeq: 100, Bitmap: 0b1011}
	for seq, want := range map[uint16]bool{100: true, 101: true, 102: false, 103: true, 99: false, 164: false} {
		if ba.Acked(seq) != want {
			t.Errorf("Acked(%d) = %v, want %v", seq, ba.Acked(seq), want)
		}
	}
	// Merge same-window bitmaps (forwarded BA).
	other := BAInfo{StartSeq: 100, Bitmap: 0b0100}
	ba.Merge(other)
	if !ba.Acked(102) {
		t.Error("Merge did not fold in bit")
	}
	// Disjoint windows are ignored.
	ba.Merge(BAInfo{StartSeq: 200, Bitmap: ^uint64(0)})
	if ba.Acked(105) {
		t.Error("disjoint Merge leaked bits")
	}
}

func TestBuildBitmapRoundTrip(t *testing.T) {
	mpdus := []MPDU{{Seq: 4094}, {Seq: 4095}, {Seq: 0}, {Seq: 1}}
	ok := []bool{true, false, true, true}
	ba := BuildBitmap(mpdus, ok)
	for i, m := range mpdus {
		if ba.Acked(m.Seq) != ok[i] {
			t.Errorf("seq %d acked=%v, want %v", m.Seq, ba.Acked(m.Seq), ok[i])
		}
	}
	if (BAInfo{}) != BuildBitmap(nil, nil) {
		t.Error("empty bitmap not zero")
	}
}

func TestTransmissionAirtime(t *testing.T) {
	tx := dataTx(node("a", nil), Broadcast, 10, phy.Rates[7])
	at := tx.Airtime()
	// 10 × 1470-ish bytes at 72.2 Mb/s ≈ 1.6 ms + preamble.
	if at < sim.Duration(1*sim.Millisecond) || at > sim.Duration(3*sim.Millisecond) {
		t.Errorf("aggregate airtime = %v", at)
	}
	ba := &Transmission{Type: FrameBlockAck}
	if ba.Airtime() != phy.BlockAckAirtime {
		t.Error("BA airtime wrong")
	}
	b := &Transmission{Type: FrameBeacon}
	if b.Airtime() <= 0 {
		t.Error("beacon airtime wrong")
	}
	m := &Transmission{Type: FrameMgmt}
	if m.Airtime() <= 0 {
		t.Error("mgmt airtime wrong")
	}
	empty := &Transmission{Type: FrameData}
	if empty.Airtime() != 0 {
		t.Error("empty data airtime nonzero")
	}
}

func TestMediumDeliversCleanFrames(t *testing.T) {
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(31))
	rx := &collector{}
	a := node("a", nil)
	b := node("b", rx)
	ch.set(a, b, 35) // pristine link
	m.Register(a)
	m.Register(b)

	tx := dataTx(a, b.Addr, 16, phy.Rates[7])
	m.Transmit(tx)
	loop.Run(sim.Time(20 * sim.Millisecond))

	if len(rx.frames) != 1 {
		t.Fatalf("delivered %d frames", len(rx.frames))
	}
	det := rx.dets[0]
	okCount := 0
	for _, ok := range det.OK {
		if ok {
			okCount++
		}
	}
	if okCount != 16 {
		t.Errorf("decoded %d/16 MPDUs at 35 dB", okCount)
	}
	if det.ESNRdB < 30 {
		t.Errorf("detection ESNR = %v", det.ESNRdB)
	}
	if det.SNRsDB[0] != 35 {
		t.Errorf("CSI snapshot missing: %v", det.SNRsDB[0])
	}
}

func TestMediumLossAtLowSNR(t *testing.T) {
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(32))
	rx := &collector{}
	a, b := node("a", nil), node("b", rx)
	ch.set(a, b, 10) // 15 dB below MCS7's threshold
	m.Register(a)
	m.Register(b)
	m.Transmit(dataTx(a, b.Addr, 16, phy.Rates[7]))
	loop.Run(sim.Time(20 * sim.Millisecond))
	if len(rx.dets) != 1 {
		t.Fatalf("delivered %d", len(rx.dets))
	}
	for i, ok := range rx.dets[0].OK {
		if ok {
			t.Errorf("MPDU %d decoded at 10 dB ESNR on MCS7", i)
		}
	}
	// Same SNR on MCS0 succeeds: rate adaptation has something to work
	// with.
	rx2 := &collector{}
	b2 := node("b2", rx2)
	ch.set(a, b2, 10)
	m.Register(b2)
	m.Transmit(dataTx(a, b2.Addr, 4, phy.Rates[0]))
	loop.Run(sim.Time(40 * sim.Millisecond))
	got := 0
	for _, ok := range rx2.dets[len(rx2.dets)-1].OK {
		if ok {
			got++
		}
	}
	if got < 3 {
		t.Errorf("MCS0 decoded only %d/4 at 10 dB", got)
	}
}

func TestMediumOutOfRangeSilent(t *testing.T) {
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(33))
	rx := &collector{}
	a, b := node("a", nil), node("b", rx)
	// No channel entry: b cannot hear a at all.
	m.Register(a)
	m.Register(b)
	m.Transmit(dataTx(a, b.Addr, 4, phy.Rates[0]))
	loop.Run(sim.Time(20 * sim.Millisecond))
	if len(rx.frames) != 0 {
		t.Error("out-of-range node received a frame")
	}
}

func TestMediumCollisionWithoutCapture(t *testing.T) {
	// Two hidden transmitters (can't sense each other), equal power at
	// the receiver: overlap destroys both frames.
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(34))
	rx := &collector{}
	a, b, c := node("a", nil), node("b", nil), node("c", rx)
	ch.set(a, c, 25)
	ch.set(b, c, 25)
	// a and b cannot hear each other (no entry) — hidden terminals.
	m.Register(a)
	m.Register(b)
	m.Register(c)
	m.Transmit(dataTx(a, c.Addr, 8, phy.Rates[4]))
	m.Transmit(dataTx(b, c.Addr, 8, phy.Rates[4]))
	loop.Run(sim.Time(20 * sim.Millisecond))

	if len(rx.dets) != 2 {
		t.Fatalf("deliveries = %d", len(rx.dets))
	}
	for i, det := range rx.dets {
		if !det.Collided {
			t.Errorf("frame %d not marked collided", i)
		}
		for _, ok := range det.OK {
			if ok {
				t.Errorf("frame %d: MPDU decoded through collision", i)
			}
		}
	}
	if m.Stats().Collisions != 2 {
		t.Errorf("collision stat = %d", m.Stats().Collisions)
	}
}

func TestMediumCaptureStrongerFrameSurvives(t *testing.T) {
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(35))
	rx := &collector{}
	a, b, c := node("a", nil), node("b", nil), node("c", rx)
	ch.set(a, c, 35) // strong
	ch.set(b, c, 8)  // weak interferer, >10 dB below
	m.Register(a)
	m.Register(b)
	m.Register(c)
	m.Transmit(dataTx(a, c.Addr, 8, phy.Rates[4]))
	m.Transmit(dataTx(b, c.Addr, 8, phy.Rates[0]))
	loop.Run(sim.Time(20 * sim.Millisecond))

	var strongDet *Detection
	for i, f := range rx.frames {
		if f.Tx == a {
			strongDet = &rx.dets[i]
		}
	}
	if strongDet == nil {
		t.Fatal("strong frame not delivered")
	}
	if strongDet.Collided {
		t.Error("strong frame lost despite 27 dB capture margin")
	}
}

func TestMediumCarrierSenseSerializes(t *testing.T) {
	// Two transmitters that CAN hear each other must not overlap.
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(36))
	rx := &collector{}
	a, b, c := node("a", nil), node("b", nil), node("c", rx)
	ch.set(a, c, 30)
	ch.set(b, c, 30)
	ch.set(a, b, 30) // mutual carrier sense
	m.Register(a)
	m.Register(b)
	m.Register(c)

	send := func(n *Node) {
		m.Contend(n, 16, func() {
			m.Transmit(dataTx(n, c.Addr, 8, phy.Rates[4]))
		})
	}
	send(a)
	send(b)
	loop.Run(sim.Time(50 * sim.Millisecond))

	if len(rx.frames) != 2 {
		t.Fatalf("deliveries = %d", len(rx.frames))
	}
	for i, det := range rx.dets {
		if det.Collided {
			t.Errorf("frame %d collided despite carrier sense", i)
		}
	}
	// Non-overlap: second frame starts after first ends.
	f0, f1 := rx.frames[0], rx.frames[1]
	if f1.Start < f0.End && f0.Start < f1.End {
		t.Errorf("frames overlap: [%v,%v] vs [%v,%v]", f0.Start, f0.End, f1.Start, f1.End)
	}
}

func TestMediumNAVProtectsBlockAck(t *testing.T) {
	// After a data PPDU, a contender must stay off the air through the
	// SIFS+BA window, so the receiver's BA (sent without contention)
	// does not collide.
	loop := sim.NewLoop()
	ch := newFakeChannel()
	m := NewMedium(loop, ch, sim.NewRNG(37))
	txDone := &collector{}
	a := node("a", txDone) // transmitter hears BA back
	rxC := &collector{}
	c := node("c", rxC) // client
	b := node("b", nil) // contender
	ch.set(a, c, 30)
	ch.set(b, c, 30)
	ch.set(a, b, 30)
	m.Register(a)
	m.Register(b)
	m.Register(c)

	data := dataTx(a, c.Addr, 8, phy.Rates[4])
	m.Transmit(data)
	// Client answers with BA at SIFS after data end.
	loop.At(data.End.Add(phy.SIFS), func() {
		m.Transmit(&Transmission{Tx: c, Dst: a.Addr, Type: FrameBlockAck, Rate: phy.BasicRate, BA: BAInfo{StartSeq: 0, Bitmap: 0xff}})
	})
	// Contender tries to grab the medium right in the SIFS gap.
	loop.At(data.End.Add(2*sim.Microsecond), func() {
		m.Contend(b, 16, func() {
			m.Transmit(dataTx(b, c.Addr, 8, phy.Rates[4]))
		})
	})
	loop.Run(sim.Time(50 * sim.Millisecond))

	// The BA must have arrived uncollided at a.
	var baDet *Detection
	for i, f := range txDone.frames {
		if f.Type == FrameBlockAck {
			baDet = &txDone.dets[i]
		}
	}
	if baDet == nil {
		t.Fatal("BA never delivered")
	}
	if baDet.Collided {
		t.Error("BA collided: NAV reservation not honored")
	}
}

func TestAggregatorBuildFreshAndWindow(t *testing.T) {
	a := NewAggregator()
	supply := 100
	pull := func() (packet.Packet, bool) {
		if supply == 0 {
			return packet.Packet{}, false
		}
		supply--
		return packet.Packet{Proto: packet.ProtoUDP, PayloadLen: 1400}, true
	}
	agg := a.Build(phy.Rates[7], pull)
	if len(agg) == 0 || len(agg) > phy.MaxAMPDUFrames {
		t.Fatalf("aggregate size %d", len(agg))
	}
	// Sequential seqs from 0.
	for i, m := range agg {
		if m.Seq != uint16(i) {
			t.Fatalf("seq[%d] = %d", i, m.Seq)
		}
	}
	// Empty source → nil aggregate.
	supply = 0
	if got := a.Build(phy.Rates[7], pull); len(got) != 0 {
		t.Errorf("empty-source aggregate size %d", len(got))
	}
}

func TestAggregatorRetryFlow(t *testing.T) {
	a := NewAggregator()
	n := 10
	pull := func() (packet.Packet, bool) {
		if n == 0 {
			return packet.Packet{}, false
		}
		n--
		return packet.Packet{PayloadLen: 1400, Seq: uint32(10 - n)}, true
	}
	sent := a.Build(phy.Rates[4], pull)
	if len(sent) != 10 {
		t.Fatalf("built %d", len(sent))
	}
	// BA acknowledges even seqs only.
	var ba BAInfo
	ba.StartSeq = sent[0].Seq
	for i := 0; i < len(sent); i += 2 {
		ba.Bitmap |= 1 << uint(i)
	}
	res := a.ProcessBA(sent, ba)
	if res.AckedCount != 5 || res.LostCount != 5 {
		t.Fatalf("acked=%d lost=%d", res.AckedCount, res.LostCount)
	}
	if a.PendingRetries() != 5 {
		t.Fatalf("pending retries = %d", a.PendingRetries())
	}
	// Next build front-loads the retries with their original seqs.
	next := a.Build(phy.Rates[4], func() (packet.Packet, bool) { return packet.Packet{}, false })
	if len(next) != 5 {
		t.Fatalf("retry aggregate size %d", len(next))
	}
	for _, m := range next {
		if m.Seq%2 == 0 {
			t.Errorf("acked seq %d retransmitted", m.Seq)
		}
		if m.Retries != 1 {
			t.Errorf("retry count = %d", m.Retries)
		}
	}
}

func TestAggregatorDropAfterRetryLimit(t *testing.T) {
	a := NewAggregator()
	one := true
	sent := a.Build(phy.Rates[0], func() (packet.Packet, bool) {
		if one {
			one = false
			return packet.Packet{PayloadLen: 100}, true
		}
		return packet.Packet{}, false
	})
	if len(sent) != 1 {
		t.Fatal("setup failed")
	}
	var dropped int
	for i := 0; i < RetryLimit+2; i++ {
		res := a.Timeout(sent)
		dropped += len(res.DroppedPkts)
		sent = a.Build(phy.Rates[0], func() (packet.Packet, bool) { return packet.Packet{}, false })
		if len(sent) == 0 {
			break
		}
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want exactly 1", dropped)
	}
	if a.PendingRetries() != 0 {
		t.Error("retries linger after drop")
	}
}

func TestAggregatorDropRetries(t *testing.T) {
	a := NewAggregator()
	n := 4
	sent := a.Build(phy.Rates[7], func() (packet.Packet, bool) {
		if n == 0 {
			return packet.Packet{}, false
		}
		n--
		return packet.Packet{PayloadLen: 100}, true
	})
	a.Timeout(sent)
	if a.PendingRetries() != 4 {
		t.Fatal("setup failed")
	}
	if got := a.DropRetries(); len(got) != 4 {
		t.Errorf("DropRetries returned %d", len(got))
	}
	if a.PendingRetries() != 0 {
		t.Error("retries linger")
	}
}

// Property: ProcessBA partitions the aggregate — every MPDU is acked,
// retried, or dropped, never more than one.
func TestAggregatorPartitionProperty(t *testing.T) {
	f := func(bitmap uint64, count uint8) bool {
		a := NewAggregator()
		n := int(count%20) + 1
		left := n
		sent := a.Build(phy.Rates[5], func() (packet.Packet, bool) {
			if left == 0 {
				return packet.Packet{}, false
			}
			left--
			return packet.Packet{PayloadLen: 500}, true
		})
		res := a.ProcessBA(sent, BAInfo{StartSeq: sent[0].Seq, Bitmap: bitmap})
		return res.AckedCount+res.LostCount == len(sent) &&
			a.PendingRetries()+len(res.DroppedPkts) == res.LostCount
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameTypeAndMgmtStrings(t *testing.T) {
	if FrameData.String() != "Data" || FrameBlockAck.String() != "BlockAck" ||
		FrameBeacon.String() != "Beacon" || FrameMgmt.String() != "Mgmt" {
		t.Error("frame strings wrong")
	}
	kinds := []MgmtKind{MgmtAuthReq, MgmtAuthResp, MgmtAssocReq, MgmtAssocResp, MgmtReassocReq, MgmtReassocResp}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "Mgmt(?)" || seen[s] {
			t.Errorf("bad mgmt string %q", s)
		}
		seen[s] = true
	}
}
