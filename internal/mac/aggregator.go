package mac

import (
	"wgtt/internal/packet"
	"wgtt/internal/phy"
)

// RetryLimit is the per-MPDU transmission limit before a frame is dropped
// (mac80211's default long retry limit).
const RetryLimit = 7

// Aggregator is the transmitter-side A-MPDU engine for one (tx, client)
// pair: it assigns 12-bit MAC sequence numbers, builds aggregates mixing
// retransmissions with fresh packets, and turns block-ACK bitmaps into
// completions and retries. It is deliberately free of queues: the caller
// supplies fresh packets through a pull function, which is how the AP
// plugs its cyclic queue in and the client its socket buffer.
type Aggregator struct {
	nextSeq uint16
	// retry holds MPDUs awaiting retransmission, in seq order.
	retry []MPDU
	// buf backs the slice Build returns. Aggregates strictly alternate
	// (busy until the BA settles), so the previous aggregate is fully
	// processed before the next Build reuses the array.
	buf []MPDU
	// stats
	Sent      int // MPDUs first-transmitted
	Resent    int // MPDU retransmissions
	Acked     int
	Dropped   int // exceeded retry limit
	Abandoned int // retries discarded by DropRetries (handoff stop)
}

// NewAggregator returns an empty engine.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Pull supplies the next fresh packet to aggregate, or false when the
// source is empty (or the caller wants to cap the aggregate).
type Pull func() (packet.Packet, bool)

// Build assembles the next aggregate at rate r: pending retransmissions
// first (oldest first, as the BA window demands), then fresh packets from
// pull, up to the TXOP airtime/window limits for typical payloads. It
// returns nil when there is nothing to send.
func (a *Aggregator) Build(r phy.Rate, pull Pull) []MPDU {
	limit := phy.MaxMPDUsForAirtime(r, 1500)
	out := a.buf[:0]

	// Retries stay inside one BA window (64 seqs from the first): take
	// them all first — they are oldest.
	n := len(a.retry)
	if n > limit {
		n = limit
	}
	out = append(out, a.retry[:n]...)
	a.retry = append(a.retry[:0], a.retry[n:]...)

	// Window constraint: every MPDU in the aggregate must fall within
	// [first.Seq, first.Seq+64).
	for len(out) < limit {
		if len(out) > 0 && seqDist(out[0].Seq, a.nextSeq) >= 64 {
			break
		}
		pkt, ok := pull()
		if !ok {
			break
		}
		out = append(out, MPDU{Seq: a.nextSeq, Pkt: pkt})
		a.nextSeq = NextSeq(a.nextSeq)
		a.Sent++
	}
	for i := range out {
		if out[i].Retries > 0 {
			a.Resent++
		}
	}
	a.buf = out
	return out
}

// BAResult is the outcome of processing acknowledgement state for one
// transmitted aggregate.
type BAResult struct {
	DroppedPkts []packet.Packet
	AckedCount  int
	LostCount   int
}

// ProcessBA consumes the block ACK for an aggregate previously returned
// by Build. Unacked MPDUs re-enter the retry queue unless they exhausted
// the retry limit. The caller passes the same slice Build returned.
func (a *Aggregator) ProcessBA(sent []MPDU, ba BAInfo) BAResult {
	var res BAResult
	for _, m := range sent {
		if ba.Acked(m.Seq) {
			res.AckedCount++
			a.Acked++
			continue
		}
		res.LostCount++
		m.Retries++
		if m.Retries >= RetryLimit {
			res.DroppedPkts = append(res.DroppedPkts, m.Pkt)
			a.Dropped++
			continue
		}
		a.retry = append(a.retry, m)
	}
	return res
}

// Timeout handles a missing block ACK (the whole response was lost): all
// MPDUs count as unacknowledged. This is exactly the waste that WGTT's
// BA forwarding eliminates when some other AP overheard the ACK.
func (a *Aggregator) Timeout(sent []MPDU) BAResult {
	return a.ProcessBA(sent, BAInfo{StartSeq: sent[0].Seq, Bitmap: 0})
}

// PendingRetries reports how many MPDUs await retransmission.
func (a *Aggregator) PendingRetries() int { return len(a.retry) }

// DropRetries abandons all pending retransmissions (used when a stop(c)
// freezes this AP's transmit path — the next AP owns those indexes now)
// and returns the abandoned packets.
func (a *Aggregator) DropRetries() []packet.Packet {
	out := make([]packet.Packet, 0, len(a.retry))
	for _, m := range a.retry {
		out = append(out, m.Pkt)
	}
	a.Abandoned += len(a.retry)
	a.retry = a.retry[:0]
	return out
}

// BuildBitmap is the receiver side: given the aggregate's MPDUs and which
// decoded, produce the compressed BA payload.
func BuildBitmap(mpdus []MPDU, ok []bool) BAInfo {
	if len(mpdus) == 0 {
		return BAInfo{}
	}
	ba := BAInfo{StartSeq: mpdus[0].Seq}
	for i := range mpdus {
		if i < len(ok) && ok[i] {
			d := seqDist(ba.StartSeq, mpdus[i].Seq)
			if d >= 0 && d < 64 {
				ba.Bitmap |= 1 << uint(d)
			}
		}
	}
	return ba
}
