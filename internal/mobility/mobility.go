// Package mobility supplies client trajectories: constant-speed drives
// along the road past the AP array, and the multi-client driving patterns
// of Fig. 19 (following, parallel, opposing).
package mobility

import (
	"math"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// MPHToMps converts miles per hour to meters per second.
func MPHToMps(mph float64) float64 { return mph * 0.44704 }

// Trajectory reports a client's position over virtual time.
type Trajectory interface {
	Pos(t sim.Time) rf.Position
	// SpeedMps is the constant ground speed (0 for stationary).
	SpeedMps() float64
}

// Stationary is a fixed position.
type Stationary rf.Position

// Pos implements Trajectory.
func (s Stationary) Pos(sim.Time) rf.Position { return rf.Position(s) }

// SpeedMps implements Trajectory.
func (s Stationary) SpeedMps() float64 { return 0 }

// Linear is a constant-velocity drive.
type Linear struct {
	Start rf.Position
	// VelX, VelY are the velocity components in m/s.
	VelX, VelY float64
}

// Pos implements Trajectory.
func (l Linear) Pos(t sim.Time) rf.Position {
	s := t.Seconds()
	return rf.Position{X: l.Start.X + l.VelX*s, Y: l.Start.Y + l.VelY*s}
}

// SpeedMps implements Trajectory.
func (l Linear) SpeedMps() float64 { return math.Hypot(l.VelX, l.VelY) }

// Drive returns a trajectory entering the road at startX, lane offset
// laneY, moving in +X at the given mph.
func Drive(startX, laneY, mph float64) Linear {
	return Linear{Start: rf.Position{X: startX, Y: laneY}, VelX: MPHToMps(mph)}
}

// DriveOpposing returns a trajectory moving in −X (the opposite
// direction) at the given mph.
func DriveOpposing(startX, laneY, mph float64) Linear {
	return Linear{Start: rf.Position{X: startX, Y: laneY}, VelX: -MPHToMps(mph)}
}

// Pattern names the Fig. 19 multi-client scenarios.
type Pattern int

// Multi-client driving patterns.
const (
	// Following: cars in the same lane, 3 m apart.
	Following Pattern = iota
	// Parallel: cars side by side in adjacent lanes.
	Parallel
	// Opposing: cars driving toward each other in opposite lanes.
	Opposing
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Following:
		return "following"
	case Parallel:
		return "parallel"
	case Opposing:
		return "opposing"
	}
	return "pattern(?)"
}

// Scenario builds the trajectories for n clients in the given pattern.
// Clients move at mph; the road spans x ∈ [startX, …) with lane offsets
// laneY (near lane) and laneY−3 (far lane).
func Scenario(p Pattern, n int, startX, laneY, mph float64) []Trajectory {
	out := make([]Trajectory, 0, n)
	for i := 0; i < n; i++ {
		switch p {
		case Following:
			// 3 m spacing, same lane.
			out = append(out, Drive(startX-3*float64(i), laneY, mph))
		case Parallel:
			// Adjacent lanes, abreast.
			out = append(out, Drive(startX, laneY-3*float64(i), mph))
		case Opposing:
			if i%2 == 0 {
				out = append(out, Drive(startX, laneY, mph))
			} else {
				// Start at the far end of the deployment,
				// driving back.
				out = append(out, DriveOpposing(startX+60, laneY-3, mph))
			}
		}
	}
	return out
}
