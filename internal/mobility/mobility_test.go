package mobility

import (
	"math"
	"testing"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(sim.Second)) }

func TestMPHConversion(t *testing.T) {
	if v := MPHToMps(25); math.Abs(v-11.176) > 0.001 {
		t.Errorf("25 mph = %v m/s, want 11.176", v)
	}
	if MPHToMps(0) != 0 {
		t.Error("0 mph != 0")
	}
}

func TestStationary(t *testing.T) {
	s := Stationary{X: 3, Y: 4}
	if s.Pos(sec(100)) != s.Pos(0) {
		t.Error("stationary moved")
	}
	if s.SpeedMps() != 0 {
		t.Error("stationary speed nonzero")
	}
}

func TestLinearDrive(t *testing.T) {
	d := Drive(-10, 0, 25) // 25 mph from x=-10
	p0 := d.Pos(0)
	if p0.X != -10 || p0.Y != 0 {
		t.Errorf("start = %+v", p0)
	}
	p1 := d.Pos(sec(1))
	if math.Abs(p1.X-(-10+11.176)) > 0.001 {
		t.Errorf("x after 1 s = %v", p1.X)
	}
	if math.Abs(d.SpeedMps()-11.176) > 0.001 {
		t.Errorf("speed = %v", d.SpeedMps())
	}
	// The paper's Fig. 3 arithmetic: at 25 mph a car spends ~460 ms in
	// a 5.2 m cell.
	cellTime := 5.2 / d.SpeedMps()
	if math.Abs(cellTime-0.465) > 0.01 {
		t.Errorf("cell dwell = %v s, want ≈0.465", cellTime)
	}
}

func TestOpposingDirection(t *testing.T) {
	d := DriveOpposing(60, -3, 15)
	if d.Pos(sec(1)).X >= 60 {
		t.Error("opposing car not moving in -X")
	}
	if d.SpeedMps() <= 0 {
		t.Error("speed should be positive magnitude")
	}
}

func TestScenarioFollowing(t *testing.T) {
	trajs := Scenario(Following, 3, 0, 0, 15)
	if len(trajs) != 3 {
		t.Fatalf("%d trajectories", len(trajs))
	}
	// Same lane, 3 m gaps, same speed.
	for i, tr := range trajs {
		p := tr.Pos(0)
		if p.Y != 0 {
			t.Errorf("car %d lane %v", i, p.Y)
		}
		if math.Abs(p.X-(-3*float64(i))) > 1e-9 {
			t.Errorf("car %d x %v", i, p.X)
		}
	}
	// Gap stays constant over time.
	g0 := trajs[0].Pos(sec(2)).X - trajs[1].Pos(sec(2)).X
	if math.Abs(g0-3) > 1e-9 {
		t.Errorf("gap = %v", g0)
	}
}

func TestScenarioParallel(t *testing.T) {
	trajs := Scenario(Parallel, 2, 0, 0, 15)
	a, b := trajs[0].Pos(sec(1)), trajs[1].Pos(sec(1))
	if a.X != b.X {
		t.Error("parallel cars not abreast")
	}
	if a.Y == b.Y {
		t.Error("parallel cars share a lane")
	}
}

func TestScenarioOpposing(t *testing.T) {
	trajs := Scenario(Opposing, 2, 0, 0, 15)
	a0, b0 := trajs[0].Pos(0), trajs[1].Pos(0)
	a1, b1 := trajs[0].Pos(sec(1)), trajs[1].Pos(sec(1))
	if (a1.X-a0.X)*(b1.X-b0.X) >= 0 {
		t.Error("opposing cars move in the same direction")
	}
	// They approach each other before they pass.
	d0 := math.Abs(a0.X - b0.X)
	d1 := math.Abs(a1.X - b1.X)
	if d1 >= d0 {
		t.Errorf("cars not approaching: %v → %v", d0, d1)
	}
}

func TestPatternString(t *testing.T) {
	if Following.String() != "following" || Parallel.String() != "parallel" || Opposing.String() != "opposing" {
		t.Error("pattern strings wrong")
	}
}

func TestWaypointsInterpolation(t *testing.T) {
	w := NewWaypoints([]Waypoint{
		{At: 0, Pos: rfPos(0, 0)},
		{At: 10 * sim.Second, Pos: rfPos(100, 0)},
		{At: 20 * sim.Second, Pos: rfPos(100, 10)},
	})
	if p := w.Pos(sec(-1)); p.X != 0 {
		t.Errorf("before start = %+v", p)
	}
	if p := w.Pos(sec(5)); math.Abs(p.X-50) > 1e-9 {
		t.Errorf("midpoint = %+v", p)
	}
	if p := w.Pos(sec(15)); math.Abs(p.Y-5) > 1e-9 || p.X != 100 {
		t.Errorf("second segment = %+v", p)
	}
	if p := w.Pos(sec(99)); p.X != 100 || p.Y != 10 {
		t.Errorf("after end = %+v", p)
	}
	// Mean speed: 110 m over 20 s.
	if v := w.SpeedMps(); math.Abs(v-5.5) > 1e-9 {
		t.Errorf("mean speed = %v", v)
	}
	if w.Duration() != 20*sim.Second {
		t.Errorf("duration = %v", w.Duration())
	}
}

func TestWaypointsSortsInput(t *testing.T) {
	w := NewWaypoints([]Waypoint{
		{At: 10 * sim.Second, Pos: rfPos(10, 0)},
		{At: 0, Pos: rfPos(0, 0)},
	})
	if p := w.Pos(sec(0)); p.X != 0 {
		t.Errorf("unsorted input mishandled: %+v", p)
	}
}

func TestStopAndGo(t *testing.T) {
	// 15 mph cruise, one 5 s stop at x=20, from 0 to 40 m.
	w := StopAndGo(0, 0, 15, []float64{20}, 5*sim.Second, 40)
	v := MPHToMps(15)
	tArrive := 20 / v
	// Just before the stop the car is moving; during the stop it is
	// pinned at x=20.
	during := w.Pos(sim.Time((tArrive + 2.0) * 1e9))
	if math.Abs(during.X-20) > 1e-6 {
		t.Errorf("during stop x = %v, want 20", during.X)
	}
	after := w.Pos(sim.Time((tArrive + 5.0 + 1.0) * 1e9))
	if after.X <= 20.01 {
		t.Errorf("after stop x = %v, should be moving again", after.X)
	}
	// Total time = drive time + stop.
	wantDur := sim.Duration((40/v+5)*1e9) * sim.Nanosecond
	if d := w.Duration(); d < wantDur-sim.Millisecond || d > wantDur+sim.Millisecond {
		t.Errorf("duration = %v, want ≈%v", d, wantDur)
	}
}

func TestWaypointsEmpty(t *testing.T) {
	w := NewWaypoints(nil)
	if p := w.Pos(sec(1)); p != (rf.Position{}) {
		t.Errorf("empty waypoints pos = %+v", p)
	}
	if w.SpeedMps() != 0 || w.Duration() != 0 {
		t.Error("empty waypoints not inert")
	}
}

func rfPos(x, y float64) rf.Position { return rf.Position{X: x, Y: y} }

func TestRouteStops(t *testing.T) {
	stops := RouteStops(0, 100, 4)
	want := []float64{12.5, 37.5, 62.5, 87.5}
	if len(stops) != len(want) {
		t.Fatalf("RouteStops returned %v", stops)
	}
	for i := range want {
		if math.Abs(stops[i]-want[i]) > 1e-9 {
			t.Errorf("stop %d = %v, want %v", i, stops[i], want[i])
		}
	}
	if RouteStops(0, 100, 0) != nil {
		t.Error("zero stops should be nil")
	}
	if RouteStops(50, 50, 3) != nil {
		t.Error("degenerate span should be nil")
	}
}
