package mobility

import (
	"sort"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Waypoints is a piecewise-linear trajectory through timestamped
// positions: the car accelerates, brakes, and stops exactly as the
// waypoint spacing dictates. It extends the paper's constant-speed drives
// to the stop-and-go traffic a real transit corridor sees.
type Waypoints struct {
	times []sim.Time
	pos   []rf.Position
}

// Waypoint is one (time, position) sample.
type Waypoint struct {
	At  sim.Duration
	Pos rf.Position
}

// NewWaypoints builds a trajectory from samples; they are sorted by time.
// Before the first waypoint the client sits at the first position; after
// the last it sits at the last.
func NewWaypoints(points []Waypoint) *Waypoints {
	sorted := make([]Waypoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	w := &Waypoints{}
	for _, p := range sorted {
		w.times = append(w.times, sim.Time(p.At))
		w.pos = append(w.pos, p.Pos)
	}
	return w
}

// Pos implements Trajectory.
func (w *Waypoints) Pos(t sim.Time) rf.Position {
	n := len(w.times)
	if n == 0 {
		return rf.Position{}
	}
	if t <= w.times[0] {
		return w.pos[0]
	}
	if t >= w.times[n-1] {
		return w.pos[n-1]
	}
	// Binary search for the segment containing t.
	i := sort.Search(n, func(i int) bool { return w.times[i] > t }) - 1
	t0, t1 := w.times[i], w.times[i+1]
	frac := float64(t-t0) / float64(t1-t0)
	a, b := w.pos[i], w.pos[i+1]
	return rf.Position{
		X: a.X + (b.X-a.X)*frac,
		Y: a.Y + (b.Y-a.Y)*frac,
	}
}

// SpeedMps implements Trajectory with the mean speed over the whole
// trajectory (components that need instantaneous speed sample Pos).
func (w *Waypoints) SpeedMps() float64 {
	n := len(w.times)
	if n < 2 {
		return 0
	}
	dist := 0.0
	for i := 1; i < n; i++ {
		dist += w.pos[i].Distance(w.pos[i-1])
	}
	secs := (w.times[n-1] - w.times[0]).Seconds()
	if secs <= 0 {
		return 0
	}
	return dist / secs
}

// StopAndGo builds a transit-style trajectory along the road: drive at
// cruiseMph, stop for stopDur at each of the given x positions (bus
// stops / lights), then continue. The ride starts at startX at time 0.
func StopAndGo(startX, laneY, cruiseMph float64, stops []float64, stopDur sim.Duration, endX float64) *Waypoints {
	v := MPHToMps(cruiseMph)
	var pts []Waypoint
	t := sim.Duration(0)
	x := startX
	add := func(nx float64) {
		if nx <= x {
			return
		}
		t += sim.Duration(float64(sim.Second) * (nx - x) / v)
		x = nx
		pts = append(pts, Waypoint{At: t, Pos: rf.Position{X: x, Y: laneY}})
	}
	pts = append(pts, Waypoint{At: 0, Pos: rf.Position{X: startX, Y: laneY}})
	for _, s := range stops {
		add(s)
		t += stopDur
		pts = append(pts, Waypoint{At: t, Pos: rf.Position{X: x, Y: laneY}})
	}
	add(endX)
	return NewWaypoints(pts)
}

// Duration returns the total trajectory time.
func (w *Waypoints) Duration() sim.Duration {
	if len(w.times) == 0 {
		return 0
	}
	return sim.Duration(w.times[len(w.times)-1] - w.times[0])
}

// RouteStops places n transit stops evenly across the road span
// [lo, hi], inset half an interval from each end — the way bus stops sit
// between intersections rather than on them. It returns the stop x
// positions in driving order.
func RouteStops(lo, hi float64, n int) []float64 {
	if n <= 0 || hi <= lo {
		return nil
	}
	interval := (hi - lo) / float64(n)
	stops := make([]float64, n)
	for i := range stops {
		stops[i] = lo + interval*(float64(i)+0.5)
	}
	return stops
}
