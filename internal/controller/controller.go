// Package controller implements the WGTT controller (§3.1): per-link
// sliding-window ESNR tracking from the APs' CSI reports, the
// median-ESNR AP selection rule with time hysteresis, the
// stop/start/ack switch issuing state machine with 30 ms retransmission,
// downlink index stamping and fan-out to candidate APs, and uplink packet
// de-duplication over the 48-bit (source IP, IP-ID) key.
package controller

import (
	"wgtt/internal/backhaul"
	"wgtt/internal/csi"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

// SelectPolicy chooses the statistic used to rank APs; Median is the
// paper's rule, the others exist for the ablation benches.
type SelectPolicy int

// Selection policies.
const (
	SelectMedian SelectPolicy = iota
	SelectMean
	SelectLatest
)

// Config tunes the controller.
type Config struct {
	// Window is the ESNR sliding-window span W (§3.1.1, Fig. 21: 10 ms).
	Window sim.Duration
	// Hysteresis is the minimum spacing between switch initiations for
	// one client (§5.3.3, Fig. 22: 40 ms default).
	Hysteresis sim.Duration
	// StopTimeout is the stop→ack retransmission timeout (§3.1.2: 30 ms).
	StopTimeout sim.Duration
	// SettleDelay batches CSI reports before a selection decision: the
	// reports that several APs generate for the same uplink frame reach
	// the controller spread over backhaul microseconds, and deciding on
	// the first arrival alone would compare windows of unequal
	// freshness.
	SettleDelay sim.Duration
	// MaxStopRetries bounds retransmissions before abandoning a switch.
	MaxStopRetries int
	// SwitchMarginDB requires a candidate AP's median ESNR to exceed
	// the serving AP's by this much before a switch is issued. The
	// 17 ms switching protocol must be amortized: flapping between two
	// statistically-equal APs buys nothing and mutes the downlink for
	// the protocol's duration each time.
	SwitchMarginDB float64
	// Policy is the ranking statistic.
	Policy SelectPolicy
	// Dedup enables uplink de-duplication (§3.2.3; ablation knob).
	Dedup bool
}

// DefaultConfig returns the paper's controller settings.
func DefaultConfig() Config {
	return Config{
		Window:         10 * sim.Millisecond,
		Hysteresis:     40 * sim.Millisecond,
		StopTimeout:    30 * sim.Millisecond,
		SettleDelay:    1 * sim.Millisecond,
		SwitchMarginDB: 2,
		MaxStopRetries: 10,
		Policy:         SelectMedian,
		Dedup:          true,
	}
}

// Fabric resolves backhaul identities for the controller.
type Fabric interface {
	APNode(apID uint16) backhaul.NodeID
	Server() backhaul.NodeID
}

type switchState struct {
	id      uint32
	from    int // -1 when adopting a client with no serving AP
	to      int
	retries int
	timer   *sim.Event
	issued  sim.Time
}

type clientState struct {
	addr        packet.MAC
	windows     []*csi.Window
	lastSeen    []sim.Time
	haveSeen    []bool
	serving     int // AP id, -1 = none
	nextIndex   uint16
	sw          *switchState
	lastInit    sim.Time
	everInit    bool
	evalPending bool
}

// Controller is the WGTT controller.
type Controller struct {
	loop   *sim.Loop
	bh     *backhaul.Net
	self   backhaul.NodeID
	fabric Fabric
	cfg    Config
	numAPs int

	// Trace, when set, receives switch-protocol events.
	Trace *trace.Log

	clients  map[packet.MAC]*clientState
	ipToMAC  map[packet.IP]packet.MAC
	dedup    map[packet.DedupKey]bool
	dedupQ   []packet.DedupKey
	switchID uint32

	// Stats.
	SwitchesIssued  int
	SwitchesAcked   int
	StopRetransmits int
	// SwitchLatencies records the stop→ack execution time of every
	// completed switch (Table 1's measurement).
	SwitchLatencies  []sim.Duration
	UplinkDelivered  int
	UplinkDuplicates int
	DownlinkFanout   int // DownlinkData messages emitted
	DownlinkPackets  int // distinct packets admitted
}

// New creates the controller and attaches it to the backhaul at node
// self.
func New(loop *sim.Loop, bh *backhaul.Net, self backhaul.NodeID, fabric Fabric, numAPs int, cfg Config) *Controller {
	c := &Controller{
		loop:    loop,
		bh:      bh,
		self:    self,
		fabric:  fabric,
		cfg:     cfg,
		numAPs:  numAPs,
		clients: make(map[packet.MAC]*clientState),
		ipToMAC: make(map[packet.IP]packet.MAC),
		dedup:   make(map[packet.DedupKey]bool),
	}
	bh.AddNode(self, c.OnBackhaul)
	return c
}

// RegisterClient announces a client's addressing before any CSI arrives
// (association time), so downlink packets can be routed to its MAC.
func (c *Controller) RegisterClient(addr packet.MAC, ip packet.IP) {
	c.stateFor(addr)
	c.ipToMAC[ip] = addr
}

// ServingAP reports which AP currently serves the client (-1 none).
func (c *Controller) ServingAP(addr packet.MAC) int {
	cs := c.clients[addr]
	if cs == nil {
		return -1
	}
	return cs.serving
}

func (c *Controller) stateFor(addr packet.MAC) *clientState {
	cs := c.clients[addr]
	if cs == nil {
		cs = &clientState{
			addr:     addr,
			windows:  make([]*csi.Window, c.numAPs),
			lastSeen: make([]sim.Time, c.numAPs),
			haveSeen: make([]bool, c.numAPs),
			serving:  -1,
		}
		for i := range cs.windows {
			cs.windows[i] = csi.NewWindow(c.cfg.Window)
		}
		c.clients[addr] = cs
	}
	return cs
}

// OnBackhaul handles AP and server messages.
func (c *Controller) OnBackhaul(from backhaul.NodeID, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.CSIReport:
		c.onCSI(m)
	case *packet.UplinkData:
		c.onUplink(m)
	case *packet.SwitchAck:
		c.onSwitchAck(m)
	case *packet.ServerData:
		c.Downlink(m.Inner)
	case *packet.AssocState:
		c.RegisterClient(m.Client, m.IP)
	}
}

// onCSI folds a CSI report into the client's per-AP window and re-runs AP
// selection.
func (c *Controller) onCSI(m *packet.CSIReport) {
	if int(m.APID) >= c.numAPs {
		return
	}
	cs := c.stateFor(m.Client)
	esnr := csi.EffectiveSNRdB(m.SNRsDB[:], csi.RefModulation)
	cs.windows[m.APID].Add(m.Time, esnr)
	cs.lastSeen[m.APID] = c.loop.Now()
	cs.haveSeen[m.APID] = true
	if c.cfg.SettleDelay <= 0 {
		c.maybeSwitch(cs)
		return
	}
	if !cs.evalPending {
		cs.evalPending = true
		c.loop.After(c.cfg.SettleDelay, func() {
			cs.evalPending = false
			c.maybeSwitch(cs)
		})
	}
}

// score evaluates one AP's window under the configured policy.
func (c *Controller) score(cs *clientState, ap int) (float64, bool) {
	w := cs.windows[ap]
	switch c.cfg.Policy {
	case SelectMean:
		return w.MeanAt(c.loop.Now())
	case SelectLatest:
		r, ok := w.Latest()
		if !ok || c.loop.Now().Sub(r.Time) > c.cfg.Window {
			return 0, false
		}
		return r.ESNRdB, true
	default:
		return w.MedianAt(c.loop.Now())
	}
}

// maybeSwitch applies the selection rule: pick argmax over per-AP window
// scores, and if it differs from the serving AP (respecting hysteresis
// and the one-outstanding-switch rule) run the switching protocol.
func (c *Controller) maybeSwitch(cs *clientState) {
	if cs.sw != nil {
		return // §3.1.2 footnote: one switch at a time
	}
	best, bestScore, any := -1, 0.0, false
	for ap := 0; ap < c.numAPs; ap++ {
		s, ok := c.score(cs, ap)
		if !ok {
			continue
		}
		if !any || s > bestScore {
			best, bestScore, any = ap, s, true
		}
	}
	if !any || best == cs.serving {
		return
	}
	if cs.serving >= 0 {
		if s, ok := c.score(cs, cs.serving); ok && bestScore < s+c.cfg.SwitchMarginDB {
			return // not convincingly better than the serving AP
		}
	}
	if cs.everInit && c.loop.Now().Sub(cs.lastInit) < c.cfg.Hysteresis {
		return
	}
	c.issueSwitch(cs, best)
}

// issueSwitch starts the stop/start/ack protocol moving the client to AP
// `to`.
func (c *Controller) issueSwitch(cs *clientState, to int) {
	c.switchID++
	sw := &switchState{id: c.switchID, from: cs.serving, to: to, issued: c.loop.Now()}
	cs.sw = sw
	cs.lastInit = c.loop.Now()
	cs.everInit = true
	c.SwitchesIssued++
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "issue #%d %s ap%d->ap%d", sw.id, cs.addr, sw.from, sw.to)
	c.sendStop(cs, sw)
}

// sendStop transmits the protocol's first step — or, for a client with no
// serving AP yet, skips straight to start(c, k).
func (c *Controller) sendStop(cs *clientState, sw *switchState) {
	if sw.from < 0 {
		// Initial adoption: no old AP holds a backlog; tell the new
		// AP to begin at the next index the controller will assign.
		c.bh.Send(c.self, c.fabric.APNode(uint16(sw.to)), &packet.Start{
			Client:   cs.addr,
			Index:    cs.nextIndex,
			SwitchID: sw.id,
		})
	} else {
		c.bh.Send(c.self, c.fabric.APNode(uint16(sw.from)), &packet.Stop{
			Client:   cs.addr,
			NewAP:    packet.APMAC(sw.to),
			NewAPID:  uint16(sw.to),
			SwitchID: sw.id,
		})
	}
	sw.timer = c.loop.After(c.cfg.StopTimeout, func() { c.stopTimeout(cs, sw) })
}

// stopTimeout retransmits the stop (or abandons the switch after too many
// tries, so selection can start over).
func (c *Controller) stopTimeout(cs *clientState, sw *switchState) {
	if cs.sw != sw {
		return
	}
	if sw.retries >= c.cfg.MaxStopRetries {
		cs.sw = nil
		return
	}
	sw.retries++
	c.StopRetransmits++
	c.sendStop(cs, sw)
}

// onSwitchAck completes the protocol: the new AP is live.
func (c *Controller) onSwitchAck(m *packet.SwitchAck) {
	cs := c.stateFor(m.Client)
	sw := cs.sw
	if sw == nil || sw.id != m.SwitchID {
		return // stale ack from a retransmitted round
	}
	c.loop.Cancel(sw.timer)
	cs.serving = int(m.APID)
	cs.sw = nil
	c.SwitchesAcked++
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "ack #%d now ap%d", sw.id, m.APID)
	if sw.from >= 0 {
		// Only real handoffs count toward the protocol's execution
		// time; initial adoptions skip the stop leg.
		c.SwitchLatencies = append(c.SwitchLatencies, c.loop.Now().Sub(sw.issued))
	}
}

// Downlink admits one packet from the wired side: stamp the index and fan
// out to every candidate AP (those that heard the client within the
// selection window, plus the serving AP).
func (c *Controller) Downlink(p packet.Packet) {
	addr, ok := c.ipToMAC[p.Dst]
	if !ok {
		return // unknown destination
	}
	cs := c.stateFor(addr)
	p.Index = cs.nextIndex
	cs.nextIndex = (cs.nextIndex + 1) & (packet.IndexMod - 1)
	c.DownlinkPackets++

	now := c.loop.Now()
	for apID := 0; apID < c.numAPs; apID++ {
		fresh := cs.haveSeen[apID] && now.Sub(cs.lastSeen[apID]) <= c.cfg.Window
		if !fresh && apID != cs.serving {
			continue
		}
		c.DownlinkFanout++
		c.bh.Send(c.self, c.fabric.APNode(uint16(apID)), &packet.DownlinkData{
			Client: addr,
			Inner:  p,
		})
	}
}

// onUplink de-duplicates a tunneled uplink packet and forwards it to the
// wired server.
func (c *Controller) onUplink(m *packet.UplinkData) {
	if c.cfg.Dedup {
		k := m.Inner.DedupKey()
		if c.dedup[k] {
			c.UplinkDuplicates++
			return
		}
		c.dedup[k] = true
		c.dedupQ = append(c.dedupQ, k)
		if len(c.dedupQ) > dedupCap {
			delete(c.dedup, c.dedupQ[0])
			c.dedupQ = c.dedupQ[1:]
		}
	}
	c.UplinkDelivered++
	c.bh.Send(c.self, c.fabric.Server(), &packet.ServerData{Inner: m.Inner})
}

// dedupCap bounds the de-duplication hashset, mirroring the
// implementation's bounded hashset (§3.2.2).
const dedupCap = 1 << 16
