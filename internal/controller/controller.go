// Package controller implements the WGTT controller (§3.1): per-link
// sliding-window ESNR tracking from the APs' CSI reports, the
// median-ESNR AP selection rule with time hysteresis, the
// stop/start/ack switch issuing state machine with 30 ms retransmission,
// downlink index stamping and fan-out to candidate APs, and uplink packet
// de-duplication over the 48-bit (source IP, IP-ID) key.
package controller

import (
	"wgtt/internal/backhaul"
	"wgtt/internal/csi"
	"wgtt/internal/federation"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
	"wgtt/internal/trace"
)

// SelectPolicy chooses the statistic used to rank APs; Median is the
// paper's rule, the others exist for the ablation benches.
type SelectPolicy int

// Selection policies.
const (
	SelectMedian SelectPolicy = iota
	SelectMean
	SelectLatest
)

// Config tunes the controller.
type Config struct {
	// Window is the ESNR sliding-window span W (§3.1.1, Fig. 21: 10 ms).
	Window sim.Duration
	// Hysteresis is the minimum spacing between switch initiations for
	// one client (§5.3.3, Fig. 22: 40 ms default).
	Hysteresis sim.Duration
	// StopTimeout is the stop→ack retransmission timeout (§3.1.2: 30 ms).
	StopTimeout sim.Duration
	// SettleDelay batches CSI reports before a selection decision: the
	// reports that several APs generate for the same uplink frame reach
	// the controller spread over backhaul microseconds, and deciding on
	// the first arrival alone would compare windows of unequal
	// freshness.
	SettleDelay sim.Duration
	// MaxStopRetries bounds retransmissions before abandoning a switch.
	MaxStopRetries int
	// SwitchMarginDB requires a candidate AP's median ESNR to exceed
	// the serving AP's by this much before a switch is issued. The
	// 17 ms switching protocol must be amortized: flapping between two
	// statistically-equal APs buys nothing and mutes the downlink for
	// the protocol's duration each time.
	SwitchMarginDB float64
	// Policy is the ranking statistic.
	Policy SelectPolicy
	// Dedup enables uplink de-duplication (§3.2.3; ablation knob).
	Dedup bool
	// ClaimThresholdDB is the minimum median ESNR at which a controller
	// that does not own a client asks the owner to hand it over
	// (cross-segment handoff). Only consulted when trunks are connected.
	ClaimThresholdDB float64
	// HandoffBandLoMs/HandoffBandHiMs bound the expected stop→ack
	// execution time of a completed handoff (Table 1: 17–21 ms). When
	// HandoffBandHiMs > 0, a completed handoff outside [lo, hi] notes a
	// latency anomaly on the flight recorder. Purely observational.
	HandoffBandLoMs float64
	HandoffBandHiMs float64
}

// DefaultConfig returns the paper's controller settings.
func DefaultConfig() Config {
	return Config{
		Window:           10 * sim.Millisecond,
		Hysteresis:       40 * sim.Millisecond,
		StopTimeout:      30 * sim.Millisecond,
		SettleDelay:      1 * sim.Millisecond,
		SwitchMarginDB:   2,
		MaxStopRetries:   10,
		Policy:           SelectMedian,
		Dedup:            true,
		ClaimThresholdDB: 5,
	}
}

// Fabric resolves backhaul identities for the controller. AP ids are
// global deployment ids; the fabric maps them onto this segment's
// backhaul (ids outside the segment resolve to an unattached node, which
// the backhaul silently drops).
type Fabric interface {
	APNode(apID uint16) backhaul.NodeID
	Server() backhaul.NodeID
}

// Peer is the sending half of a point-to-point trunk toward an adjacent
// segment's controller. Deliveries are reliable, FIFO, and delayed by
// the trunk's serialization + propagation model.
type Peer interface {
	Deliver(msg packet.Message)
}

type switchState struct {
	id        uint32
	from      int // -1 when adopting a client with no serving AP
	to        int
	remote    int // peer index for a cross-segment handoff, -1 local
	remoteSeg int // destination segment for a federated handoff, -1 local
	retries   int
	timer     *sim.Event
	issued    sim.Time
	held      []packet.Packet // downlink held unstamped during a remote stop
	// heldData is the stopped AP's pre-stamped backlog arriving while a
	// federated export awaits its ack; it ships to the importer stamped.
	heldData []*packet.DownlinkData
}

type clientState struct {
	addr        packet.MAC
	ip          packet.IP
	windows     []*csi.Window
	lastSeen    []sim.Time
	haveSeen    []bool
	serving     int // local AP index, -1 = none
	nextIndex   uint16
	sw          *switchState
	lastInit    sim.Time
	everInit    bool
	evalPending bool
	// Cross-segment state. owned marks this controller as the client's
	// home; states created purely from overheard CSI in a multi-segment
	// deployment stay unowned until an export arrives.
	owned      bool
	exportedTo int // peer index after export, -1 otherwise
	// exportedSeg is the segment the client was last handed to under
	// federation (-1 unknown). Export chains are acyclic in time, so
	// following them always terminates at the current owner.
	exportedSeg int
	adoptAt     uint16
	hasAdoptAt  bool
	lastClaim   sim.Time
	everClaim   bool
	importedAt  sim.Time
	everImport  bool
}

// Controller is the WGTT controller.
type Controller struct {
	loop   *sim.Loop
	bh     *backhaul.Net
	self   backhaul.NodeID
	fabric Fabric
	cfg    Config
	numAPs int
	apBase int // global id of this segment's first AP
	peers  []Peer
	fed    *federation.Node

	// Trace, when set, receives switch-protocol events.
	Trace *trace.Log
	// Rec, when set, is the domain's flight recorder: the controller
	// writes structured switch-protocol records into it and originates
	// the causal trace ids that thread a handoff's events together.
	Rec *trace.Recorder

	// met holds the controller's telemetry counters; spans tracks one
	// span per stop/start/ack handoff. Both are nil-safe no-ops until
	// SetTelemetry installs them.
	met   ctrlMetrics
	spans *telemetry.Spans

	clients  map[packet.MAC]*clientState
	ipToMAC  map[packet.IP]packet.MAC
	dedup    map[packet.DedupKey]bool
	dedupQ   []packet.DedupKey
	switchID uint32

	// Send-side scratch: bh.Send serializes synchronously, so these
	// message shells are reused across the data-plane send sites.
	dlOut packet.DownlinkData
	sdOut packet.ServerData

	// Stats.
	SwitchesIssued  int
	SwitchesAcked   int
	StopRetransmits int
	// SwitchLatencies records the stop→ack execution time of every
	// completed switch (Table 1's measurement).
	SwitchLatencies  []sim.Duration
	UplinkDelivered  int
	UplinkDuplicates int
	DownlinkFanout   int // DownlinkData messages emitted
	DownlinkPackets  int // distinct packets admitted
	// Cross-segment handoff stats.
	HandoffClaims    int // claims sent toward adjacent owners
	HandoffsExported int // clients handed to an adjacent segment
	HandoffsImported int // clients adopted from an adjacent segment
	FedReleases      int // ownerships relinquished to a converging directory
}

// New creates the controller and attaches it to the backhaul at node
// self. apBase is the global deployment id of this segment's first AP
// (0 for a single-segment deployment); the controller's internal state
// is indexed by local AP position, with translation at every message
// boundary.
func New(loop *sim.Loop, bh *backhaul.Net, self backhaul.NodeID, fabric Fabric, apBase, numAPs int, cfg Config) *Controller {
	c := &Controller{
		loop:    loop,
		bh:      bh,
		self:    self,
		fabric:  fabric,
		cfg:     cfg,
		numAPs:  numAPs,
		apBase:  apBase,
		clients: make(map[packet.MAC]*clientState),
		ipToMAC: make(map[packet.IP]packet.MAC),
		dedup:   make(map[packet.DedupKey]bool),
	}
	bh.AddNode(self, c.OnBackhaul)
	return c
}

// ctrlMetrics are the controller's telemetry handles. Nil handles (the
// zero value, telemetry disabled) make every increment a no-op.
type ctrlMetrics struct {
	switchesIssued  *telemetry.Counter
	switchesAcked   *telemetry.Counter
	stopRetx        *telemetry.Counter
	switchAbandoned *telemetry.Counter
	uplinkDelivered *telemetry.Counter
	uplinkDups      *telemetry.Counter
	downlinkPkts    *telemetry.Counter
	downlinkFanout  *telemetry.Counter
	handoffClaims   *telemetry.Counter
	handoffExports  *telemetry.Counter
	handoffImports  *telemetry.Counter
}

// SetTelemetry installs the controller's metric handles under sc and the
// segment-shared handoff span tracker. Call once, before the simulation
// runs; with a disabled scope only the span tracker (which may still be
// nil) is retained.
func (c *Controller) SetTelemetry(sc telemetry.Scope, spans *telemetry.Spans) {
	c.spans = spans
	if !sc.Enabled() {
		return
	}
	c.met = ctrlMetrics{
		switchesIssued:  sc.Counter("switches_issued"),
		switchesAcked:   sc.Counter("switches_acked"),
		stopRetx:        sc.Counter("stop_retx"),
		switchAbandoned: sc.Counter("switches_abandoned"),
		uplinkDelivered: sc.Counter("uplink_delivered"),
		uplinkDups:      sc.Counter("uplink_dups"),
		downlinkPkts:    sc.Counter("downlink_pkts"),
		downlinkFanout:  sc.Counter("downlink_fanout"),
		handoffClaims:   sc.Counter("handoff_claims"),
		handoffExports:  sc.Counter("handoffs_exported"),
		handoffImports:  sc.Counter("handoffs_imported"),
	}
	sc.GaugeFunc("clients", func() float64 { return float64(len(c.clients)) })
	sc.GaugeFunc("switches_inflight", func() float64 {
		n := 0
		for _, cs := range c.clients {
			if cs.sw != nil {
				n++
			}
		}
		return float64(n)
	})
}

// SetFederation attaches the segment's federation node and makes this
// controller its local handler. Call once at build time, before trunks
// connect.
func (c *Controller) SetFederation(f *federation.Node) {
	c.fed = f
	f.Bind(c)
}

// Federation returns the attached federation node (nil when the layer
// is off).
func (c *Controller) Federation() *federation.Node { return c.fed }

// ConnectPeer attaches the sending half of a trunk toward an adjacent
// segment's controller and returns its peer index. Incoming trunk
// traffic is delivered by the remote side via OnTrunk with that index.
func (c *Controller) ConnectPeer(p Peer) int {
	c.peers = append(c.peers, p)
	return len(c.peers) - 1
}

// RegisterClient announces a client's addressing before any CSI arrives
// (association time), so downlink packets can be routed to its MAC.
func (c *Controller) RegisterClient(addr packet.MAC, ip packet.IP) {
	cs := c.stateFor(addr)
	first := !cs.owned
	cs.owned = true
	cs.ip = ip
	c.ipToMAC[ip] = addr
	if c.fed != nil && first {
		// Seed the replicated directory with the home segment.
		c.fed.Announce(addr)
	}
}

// ServingAP reports which AP currently serves the client as a global
// deployment id (-1 none).
func (c *Controller) ServingAP(addr packet.MAC) int {
	cs := c.clients[addr]
	if cs == nil || cs.serving < 0 {
		return -1
	}
	return c.apBase + cs.serving
}

// Owns reports whether this controller is the client's home.
func (c *Controller) Owns(addr packet.MAC) bool {
	cs := c.clients[addr]
	return cs != nil && cs.owned
}

// SwitchPending reports whether a switch (local or cross-segment) is in
// flight for the client.
func (c *Controller) SwitchPending(addr packet.MAC) bool {
	cs := c.clients[addr]
	return cs != nil && cs.sw != nil
}

func (c *Controller) stateFor(addr packet.MAC) *clientState {
	cs := c.clients[addr]
	if cs == nil {
		cs = &clientState{
			addr:     addr,
			windows:  make([]*csi.Window, c.numAPs),
			lastSeen: make([]sim.Time, c.numAPs),
			haveSeen: make([]bool, c.numAPs),
			serving:  -1,
			// Without trunks every overheard client is ours (the
			// single-controller deployment); with trunks, ownership
			// arrives only by registration or import.
			owned:       len(c.peers) == 0,
			exportedTo:  -1,
			exportedSeg: -1,
		}
		for i := range cs.windows {
			cs.windows[i] = csi.NewWindow(c.cfg.Window)
		}
		c.clients[addr] = cs
	}
	return cs
}

// OnBackhaul handles AP and server messages.
func (c *Controller) OnBackhaul(from backhaul.NodeID, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.CSIReport:
		c.onCSI(m)
	case *packet.UplinkData:
		c.onUplink(m)
	case *packet.SwitchAck:
		c.onSwitchAck(m)
	case *packet.ServerData:
		c.Downlink(m.Inner)
	case *packet.AssocState:
		c.RegisterClient(m.Client, m.IP)
	case *packet.Start:
		c.onHandoffStart(m)
	case *packet.DownlinkData:
		c.onReturnedBacklog(m)
	}
}

// onCSI folds a CSI report into the client's per-AP window and re-runs AP
// selection. Report AP ids are global; reports from APs outside this
// segment are impossible (each AP reports to its own controller), but
// the range guard stays as a defensive boundary.
func (c *Controller) onCSI(m *packet.CSIReport) {
	local := int(m.APID) - c.apBase
	if local < 0 || local >= c.numAPs {
		return
	}
	cs := c.stateFor(m.Client)
	esnr := csi.EffectiveSNRdB(m.SNRsDB[:], csi.RefModulation)
	cs.windows[local].Add(m.Time, esnr)
	cs.lastSeen[local] = c.loop.Now()
	cs.haveSeen[local] = true
	if c.cfg.SettleDelay <= 0 {
		c.maybeSwitch(cs)
		return
	}
	if !cs.evalPending {
		cs.evalPending = true
		c.loop.After(c.cfg.SettleDelay, func() {
			cs.evalPending = false
			c.maybeSwitch(cs)
		})
	}
}

// score evaluates one AP's window under the configured policy.
func (c *Controller) score(cs *clientState, ap int) (float64, bool) {
	w := cs.windows[ap]
	switch c.cfg.Policy {
	case SelectMean:
		return w.MeanAt(c.loop.Now())
	case SelectLatest:
		r, ok := w.Latest()
		if !ok || c.loop.Now().Sub(r.Time) > c.cfg.Window {
			return 0, false
		}
		return r.ESNRdB, true
	default:
		return w.MedianAt(c.loop.Now())
	}
}

// maybeSwitch applies the selection rule: pick argmax over per-AP window
// scores, and if it differs from the serving AP (respecting hysteresis
// and the one-outstanding-switch rule) run the switching protocol.
func (c *Controller) maybeSwitch(cs *clientState) {
	if cs.sw != nil {
		return // §3.1.2 footnote: one switch at a time
	}
	if !cs.owned {
		// Not ours: instead of adopting locally, ask the neighbour that
		// owns the client to hand it over.
		c.maybeClaim(cs)
		return
	}
	best, bestScore, any := -1, 0.0, false
	for ap := 0; ap < c.numAPs; ap++ {
		s, ok := c.score(cs, ap)
		if !ok {
			continue
		}
		if !any || s > bestScore {
			best, bestScore, any = ap, s, true
		}
	}
	if !any || best == cs.serving {
		return
	}
	if cs.serving >= 0 {
		if s, ok := c.score(cs, cs.serving); ok && bestScore < s+c.cfg.SwitchMarginDB {
			return // not convincingly better than the serving AP
		}
	}
	if cs.everInit && c.loop.Now().Sub(cs.lastInit) < c.cfg.Hysteresis {
		return
	}
	c.issueSwitch(cs, best)
}

// issueSwitch starts the stop/start/ack protocol moving the client to AP
// `to`.
func (c *Controller) issueSwitch(cs *clientState, to int) {
	c.switchID++
	sw := &switchState{id: c.switchID, from: cs.serving, to: to, remote: -1, remoteSeg: -1, issued: c.loop.Now()}
	// Originate the causal trace: everything this switch schedules —
	// the stop send, its timers, the AP's ioctl callback, the ack —
	// inherits the register until it is restored below.
	prev := c.loop.SetTrace(c.traceID(sw.id))
	defer c.loop.SetTrace(prev)
	cs.sw = sw
	cs.lastInit = c.loop.Now()
	cs.everInit = true
	c.SwitchesIssued++
	c.met.switchesIssued.Inc()
	if sw.from >= 0 {
		// Only real handoffs (with a stop leg) get a span — the same
		// rule SwitchLatencies applies.
		c.spans.Begin(sw.id, c.loop.Now(), c.traceAP(sw.from), c.traceAP(sw.to))
	}
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "issue #%d %s ap%d->ap%d",
		sw.id, cs.addr, c.traceAP(sw.from), c.traceAP(sw.to))
	c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.traceID(sw.id), SwitchID: sw.id,
		Node: -1, Op: trace.OpIssue, Client: cs.addr,
		A: int32(c.traceAP(sw.from)), B: int32(c.traceAP(sw.to))})
	c.sendStop(cs, sw)
}

// traceAP renders a local AP index as its global id for trace lines (-1
// stays -1).
func (c *Controller) traceAP(local int) int {
	if local < 0 {
		return local
	}
	return c.apBase + local
}

// traceID derives the globally unique causal id for switch transaction
// id: this segment's first global AP id (+1, so segment 0's ids are
// nonzero) in the high word, the per-controller switch counter in the
// low. It is assigned unconditionally — flight recorder on or off — so
// event schedules and wire bytes never depend on observability state.
func (c *Controller) traceID(id uint32) uint64 {
	return uint64(c.apBase+1)<<32 | uint64(id)
}

// UnownedClients counts client states this controller tracks without
// owning (overheard across a segment boundary, or exported away) — the
// input to the unowned-spike anomaly trigger.
func (c *Controller) UnownedClients() int {
	n := 0
	for _, cs := range c.clients {
		if !cs.owned {
			n++
		}
	}
	return n
}

// sendStop transmits the protocol's first step — or, for a client with no
// serving AP yet, skips straight to start(c, k). A cross-segment handoff
// uses the RemoteAPID sentinel so the stopped AP returns start(c,k) to us
// instead of a local peer.
func (c *Controller) sendStop(cs *clientState, sw *switchState) {
	switch {
	case sw.remote >= 0 || sw.remoteSeg >= 0:
		c.bh.Send(c.self, c.fabric.APNode(uint16(c.apBase+sw.from)), &packet.Stop{
			Client:   cs.addr,
			NewAPID:  packet.RemoteAPID,
			SwitchID: sw.id,
		})
	case sw.from < 0:
		// Initial adoption: no old AP holds a backlog; tell the new
		// AP to begin at the next index the controller will assign —
		// or, after an import, at the index the previous segment's
		// serving AP stopped at.
		idx := cs.nextIndex
		if cs.hasAdoptAt {
			idx = cs.adoptAt
		}
		c.bh.Send(c.self, c.fabric.APNode(uint16(c.apBase+sw.to)), &packet.Start{
			Client:   cs.addr,
			Index:    idx,
			SwitchID: sw.id,
		})
	default:
		c.bh.Send(c.self, c.fabric.APNode(uint16(c.apBase+sw.from)), &packet.Stop{
			Client:   cs.addr,
			NewAP:    packet.APMAC(c.apBase + sw.to),
			NewAPID:  uint16(c.apBase + sw.to),
			SwitchID: sw.id,
		})
	}
	sw.timer = c.loop.After(c.cfg.StopTimeout, func() { c.stopTimeout(cs, sw) })
}

// stopTimeout retransmits the stop (or abandons the switch after too many
// tries, so selection can start over).
func (c *Controller) stopTimeout(cs *clientState, sw *switchState) {
	if cs.sw != sw {
		return
	}
	if sw.retries >= c.cfg.MaxStopRetries {
		cs.sw = nil
		c.met.switchAbandoned.Inc()
		c.spans.Drop(sw.id)
		c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.traceID(sw.id), SwitchID: sw.id,
			Node: -1, Op: trace.OpAbandon, Client: cs.addr, A: int32(sw.retries)})
		// An abandoned cross-segment handoff re-admits the downlink
		// packets held while the stop was in flight (stamped backlog
		// re-fans as-is).
		for _, d := range sw.heldData {
			c.fanOut(cs, d.Inner)
		}
		for _, p := range sw.held {
			c.Downlink(p)
		}
		return
	}
	sw.retries++
	c.StopRetransmits++
	c.met.stopRetx.Inc()
	c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.traceID(sw.id), SwitchID: sw.id,
		Node: -1, Op: trace.OpRetx, Client: cs.addr, A: int32(sw.retries)})
	c.sendStop(cs, sw)
}

// onSwitchAck completes the protocol: the new AP is live.
func (c *Controller) onSwitchAck(m *packet.SwitchAck) {
	cs := c.stateFor(m.Client)
	sw := cs.sw
	if sw == nil || sw.id != m.SwitchID {
		return // stale ack from a retransmitted round
	}
	c.loop.Cancel(sw.timer)
	cs.serving = int(m.APID) - c.apBase
	cs.hasAdoptAt = false
	cs.sw = nil
	c.SwitchesAcked++
	c.met.switchesAcked.Inc()
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "ack #%d now ap%d", sw.id, m.APID)
	c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.traceID(sw.id), SwitchID: sw.id,
		Node: -1, Op: trace.OpAck, Client: cs.addr, A: int32(m.APID)})
	if sw.from >= 0 {
		// Only real handoffs count toward the protocol's execution
		// time; initial adoptions skip the stop leg.
		lat := c.loop.Now().Sub(sw.issued)
		c.SwitchLatencies = append(c.SwitchLatencies, lat)
		c.spans.End(sw.id, c.loop.Now())
		ms := float64(lat) / float64(sim.Millisecond)
		if hi := c.cfg.HandoffBandHiMs; hi > 0 && (ms < c.cfg.HandoffBandLoMs || ms > hi) {
			c.Rec.Anomaly(trace.Anomaly{At: c.loop.Now(), Kind: trace.AnomalyLatency,
				Trace: c.traceID(sw.id), Value: ms})
		}
	}
}

// Downlink admits one packet from the wired side: stamp the index and fan
// out to every candidate AP (those that heard the client within the
// selection window, plus the serving AP). Packets for a client exported
// to a neighbour are forwarded unstamped over the trunk (the wired
// server's route update races the export); packets arriving while a
// cross-segment stop is in flight are held so the importer stamps them.
func (c *Controller) Downlink(p packet.Packet) {
	addr, ok := c.ipToMAC[p.Dst]
	if !ok {
		return // unknown destination
	}
	cs := c.stateFor(addr)
	if !cs.owned {
		switch {
		case c.fed != nil && cs.exportedSeg >= 0:
			c.fed.Send(cs.exportedSeg, &packet.ServerData{Inner: p})
		case cs.exportedTo >= 0:
			c.peers[cs.exportedTo].Deliver(&packet.ServerData{Inner: p})
		}
		return
	}
	if cs.sw != nil && (cs.sw.remote >= 0 || cs.sw.remoteSeg >= 0) {
		if len(cs.sw.held) < heldCap {
			cs.sw.held = append(cs.sw.held, p)
		}
		return
	}
	p.Index = cs.nextIndex
	cs.nextIndex = (cs.nextIndex + 1) & (packet.IndexMod - 1)
	c.DownlinkPackets++
	c.met.downlinkPkts.Inc()
	c.fanOut(cs, p)
}

// fanOut replicates one stamped packet to the candidate APs.
func (c *Controller) fanOut(cs *clientState, p packet.Packet) {
	now := c.loop.Now()
	for ap := 0; ap < c.numAPs; ap++ {
		fresh := cs.haveSeen[ap] && now.Sub(cs.lastSeen[ap]) <= c.cfg.Window
		if !fresh && ap != cs.serving {
			continue
		}
		c.DownlinkFanout++
		c.met.downlinkFanout.Inc()
		c.dlOut = packet.DownlinkData{Client: cs.addr, Inner: p}
		c.bh.Send(c.self, c.fabric.APNode(uint16(c.apBase+ap)), &c.dlOut)
	}
}

// heldCap bounds the packets held during a cross-segment stop; beyond it
// the transport's own loss recovery takes over.
const heldCap = 1024

// maybeClaim asks the owning neighbour for a client this controller
// hears convincingly. Claims are rate-limited by the switch hysteresis
// and broadcast to all trunks — only the owner reacts.
func (c *Controller) maybeClaim(cs *clientState) {
	if len(c.peers) == 0 {
		return
	}
	// Legacy adjacency never re-claims an exported client; federation
	// must (the U-turn case) — its re-locate goes through the directory.
	if c.fed == nil && cs.exportedTo >= 0 {
		return
	}
	now := c.loop.Now()
	if cs.everClaim && now.Sub(cs.lastClaim) < c.cfg.Hysteresis {
		return
	}
	best, any := 0.0, false
	for ap := 0; ap < c.numAPs; ap++ {
		if s, ok := c.score(cs, ap); ok && (!any || s > best) {
			best, any = s, true
		}
	}
	if !any || best < c.cfg.ClaimThresholdDB {
		return
	}
	cs.lastClaim, cs.everClaim = now, true
	c.HandoffClaims++
	c.met.handoffClaims.Inc()
	c.Trace.Addf(now, trace.Switch, "ctrl", "claim %s score %.1f dB", cs.addr, best)
	// Claims precede any switch transaction, so there is no trace id
	// yet; the record rides whatever causal context is active (usually
	// none) and shows up as a standalone instant.
	c.Rec.Record(trace.Record{At: now, Trace: c.loop.Trace(), Node: -1,
		Op: trace.OpClaim, Client: cs.addr, A: int32(best)})
	if c.fed != nil {
		c.fed.Claim(cs.addr, best)
		return
	}
	for _, p := range c.peers {
		p.Deliver(&packet.Handoff{Kind: packet.HandoffClaim, Client: cs.addr, Score: best})
	}
}

// OnTrunk handles traffic from the adjacent controller at peer index
// `peer`: handoff control, the stopped AP's pre-stamped backlog
// (re-fanned as-is), and late unstamped downlink (stamped here).
func (c *Controller) OnTrunk(peer int, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.Routed:
		if c.fed != nil {
			c.fed.OnRouted(m)
		}
	case *packet.Handoff:
		switch m.Kind {
		case packet.HandoffClaim:
			c.onClaim(peer, m)
		case packet.HandoffExport:
			c.importClient(peer, m)
		case packet.HandoffAck:
			c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "handoff ack #%d %s", m.SwitchID, m.Client)
		}
	case *packet.DownlinkData:
		if cs := c.clients[m.Client]; cs != nil && cs.owned {
			c.fanOut(cs, m.Inner)
		}
	case *packet.ServerData:
		c.Downlink(m.Inner)
	}
}

// onClaim decides whether to hand a client to the claiming neighbour:
// the remote score must beat the serving AP's by the switch margin, and
// the usual hysteresis / one-switch-at-a-time rules apply.
func (c *Controller) onClaim(peer int, m *packet.Handoff) {
	cs := c.clients[m.Client]
	if cs == nil || !cs.owned || cs.sw != nil {
		return
	}
	now := c.loop.Now()
	if cs.everInit && now.Sub(cs.lastInit) < c.cfg.Hysteresis {
		return
	}
	if cs.everImport && now.Sub(cs.importedAt) < c.cfg.Hysteresis {
		return
	}
	if cs.serving >= 0 {
		if s, ok := c.score(cs, cs.serving); ok && m.Score < s+c.cfg.SwitchMarginDB {
			return
		}
	}
	c.switchID++
	sw := &switchState{id: c.switchID, from: cs.serving, to: -1, remote: peer, remoteSeg: -1, issued: now}
	prev := c.loop.SetTrace(c.traceID(sw.id))
	defer c.loop.SetTrace(prev)
	cs.sw = sw
	cs.lastInit, cs.everInit = now, true
	c.SwitchesIssued++
	c.met.switchesIssued.Inc()
	if sw.from >= 0 {
		// A cross-segment handoff's span never completes here — the
		// importer finishes the protocol — so it is begun and then
		// dropped at export, keeping begun/completed/dropped balanced.
		c.spans.Begin(sw.id, now, c.traceAP(sw.from), -1)
	}
	c.Trace.Addf(now, trace.Switch, "ctrl", "handoff #%d %s ap%d->peer%d (score %.1f)",
		sw.id, cs.addr, c.traceAP(sw.from), peer, m.Score)
	c.Rec.Record(trace.Record{At: now, Trace: c.traceID(sw.id), SwitchID: sw.id,
		Node: -1, Op: trace.OpIssue, Client: cs.addr, A: int32(c.traceAP(sw.from)), B: -1})
	if cs.serving < 0 {
		// Nothing to stop locally: export immediately, resuming at the
		// next index this controller would have stamped.
		c.exportTo(cs, sw, cs.nextIndex)
		return
	}
	c.sendStop(cs, sw)
}

// onHandoffStart receives start(c,k) from the AP a cross-segment stop
// froze, and completes the export.
func (c *Controller) onHandoffStart(m *packet.Start) {
	cs := c.clients[m.Client]
	if cs == nil || cs.sw == nil || cs.sw.id != m.SwitchID {
		return
	}
	switch {
	case cs.sw.remoteSeg >= 0:
		c.loop.Cancel(cs.sw.timer)
		c.exportFed(cs, cs.sw, m.Index)
	case cs.sw.remote >= 0:
		c.loop.Cancel(cs.sw.timer)
		c.exportTo(cs, cs.sw, m.Index)
	}
}

// exportTo ships association + queue state to the claiming neighbour.
// The Export leads; held downlink follows unstamped; the stopped AP's
// backlog (data-class behind its control-class Start) trails and is
// forwarded by onReturnedBacklog once ownership has flipped.
func (c *Controller) exportTo(cs *clientState, sw *switchState, k uint16) {
	peer := sw.remote
	c.peers[peer].Deliver(&packet.Handoff{
		Kind:     packet.HandoffExport,
		Client:   cs.addr,
		IP:       cs.ip,
		Index:    k,
		NextIdx:  cs.nextIndex,
		SwitchID: sw.id,
	})
	for _, p := range sw.held {
		c.peers[peer].Deliver(&packet.ServerData{Inner: p})
	}
	cs.sw = nil
	cs.owned = false
	cs.exportedTo = peer
	cs.serving = -1
	c.HandoffsExported++
	c.met.handoffExports.Inc()
	c.spans.Drop(sw.id)
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "export #%d %s k=%d -> peer%d", sw.id, cs.addr, k, peer)
	c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.traceID(sw.id), SwitchID: sw.id,
		Node: -1, Op: trace.OpExport, Client: cs.addr, A: int32(len(sw.held)), B: int32(peer)})
}

// onReturnedBacklog forwards the stopped AP's drained cyclic backlog to
// the client's new segment. Under federation, backlog arriving while
// the export still awaits its ack is held (the destination is not yet
// committed); backlog after ownership flipped chases the export chain.
func (c *Controller) onReturnedBacklog(m *packet.DownlinkData) {
	cs := c.clients[m.Client]
	if cs == nil {
		return
	}
	// m is the backhaul's decode scratch; both the held queue and the
	// trunk retain messages past this call, so hand them a copy.
	if cs.owned {
		if sw := cs.sw; sw != nil && sw.remoteSeg >= 0 && len(sw.heldData) < heldCap {
			d := *m
			sw.heldData = append(sw.heldData, &d)
		}
		return
	}
	d := *m
	switch {
	case c.fed != nil && cs.exportedSeg >= 0:
		c.fed.Send(cs.exportedSeg, &d)
	case cs.exportedTo >= 0:
		c.peers[cs.exportedTo].Deliver(&d)
	}
}

// importClient adopts a client exported by a neighbour: install its
// addressing, resume the stamping cursor, replicate sta_info to this
// segment's APs (and the wired server, which re-routes the downlink),
// ack, and immediately evaluate AP selection so an edge AP adopts the
// client at index k.
func (c *Controller) importClient(peer int, m *packet.Handoff) {
	cs := c.stateFor(m.Client)
	if cs.owned {
		return
	}
	cs.owned = true
	cs.exportedTo = -1
	cs.ip = m.IP
	c.ipToMAC[m.IP] = m.Client
	cs.nextIndex = m.NextIdx
	cs.adoptAt, cs.hasAdoptAt = m.Index, true
	cs.serving = -1
	// A fresh import gets the hysteresis grace before a counter-claim
	// can bounce the client straight back (tracked separately from
	// lastInit so the adoption switch below fires immediately).
	cs.importedAt, cs.everImport = c.loop.Now(), true
	c.HandoffsImported++
	c.met.handoffImports.Inc()
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "import #%d %s k=%d", m.SwitchID, m.Client, m.Index)
	// The trunk envelope carried the exporter's trace id across the
	// boundary; the import stitches onto that timeline.
	c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.loop.Trace(), SwitchID: m.SwitchID,
		Node: -1, Op: trace.OpImport, Client: m.Client, A: int32(m.Index)})
	c.bh.Broadcast(c.self, &packet.AssocState{
		Client: m.Client,
		IP:     m.IP,
		State:  packet.StateAssociated,
	})
	c.peers[peer].Deliver(&packet.Handoff{Kind: packet.HandoffAck, Client: m.Client, SwitchID: m.SwitchID})
	c.maybeSwitch(cs)
}

// onUplink de-duplicates a tunneled uplink packet and forwards it to the
// wired server.
func (c *Controller) onUplink(m *packet.UplinkData) {
	if c.cfg.Dedup {
		k := m.Inner.DedupKey()
		if c.dedup[k] {
			c.UplinkDuplicates++
			c.met.uplinkDups.Inc()
			return
		}
		c.dedup[k] = true
		c.dedupQ = append(c.dedupQ, k)
		if len(c.dedupQ) > dedupCap {
			delete(c.dedup, c.dedupQ[0])
			c.dedupQ = c.dedupQ[1:]
		}
	}
	c.UplinkDelivered++
	c.met.uplinkDelivered.Inc()
	c.sdOut = packet.ServerData{Inner: m.Inner}
	c.bh.Send(c.self, c.fabric.Server(), &c.sdOut)
}

// dedupCap bounds the de-duplication hashset, mirroring the
// implementation's bounded hashset (§3.2.2).
const dedupCap = 1 << 16
