package controller

import (
	"wgtt/internal/packet"
	"wgtt/internal/trace"
)

// This file is the controller's half of the federation layer: it
// implements federation.Handler and the federated variants of the
// claim/export/import pipeline. The legacy adjacent-trunk paths in
// controller.go are untouched — a deployment without Config.Federation
// never reaches this code.

// ExportedTo implements federation.Handler: where the client went, so
// the node can chase stale claims along the export chain.
func (c *Controller) ExportedTo(addr packet.MAC) int {
	cs := c.clients[addr]
	if cs == nil || cs.owned {
		return -1
	}
	return cs.exportedSeg
}

// OnFederated implements federation.Handler: a message addressed to
// this segment, unwrapped from its Routed envelope by the node.
func (c *Controller) OnFederated(src int, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.Handoff:
		switch m.Kind {
		case packet.HandoffClaim:
			c.onFedClaim(src, m)
		case packet.HandoffExport:
			c.importFed(src, m)
		}
	case *packet.DownlinkData:
		// Pre-stamped backlog routed after an import: re-fan as-is, or
		// pass it further along the chain if the client moved again.
		cs := c.clients[m.Client]
		if cs == nil {
			return
		}
		if cs.owned {
			c.fanOut(cs, m.Inner)
		} else if cs.exportedSeg >= 0 && cs.exportedSeg != src {
			c.fed.Send(cs.exportedSeg, m)
		}
	case *packet.ServerData:
		c.Downlink(m.Inner)
	}
}

// onFedClaim is the owner's side of a re-locate: identical admission
// rules to the legacy onClaim, but the export destination is a segment
// index reached through the router rather than an adjacent peer.
func (c *Controller) onFedClaim(src int, m *packet.Handoff) {
	cs := c.clients[m.Client]
	if cs == nil || !cs.owned || cs.sw != nil || src == c.fed.Self() {
		return
	}
	now := c.loop.Now()
	if cs.everInit && now.Sub(cs.lastInit) < c.cfg.Hysteresis {
		return
	}
	if cs.everImport && now.Sub(cs.importedAt) < c.cfg.Hysteresis {
		return
	}
	if cs.serving >= 0 {
		if s, ok := c.score(cs, cs.serving); ok && m.Score < s+c.cfg.SwitchMarginDB {
			return
		}
	}
	c.switchID++
	sw := &switchState{id: c.switchID, from: cs.serving, to: -1, remote: -1, remoteSeg: src, issued: now}
	prev := c.loop.SetTrace(c.traceID(sw.id))
	defer c.loop.SetTrace(prev)
	cs.sw = sw
	cs.lastInit, cs.everInit = now, true
	c.SwitchesIssued++
	c.met.switchesIssued.Inc()
	if sw.from >= 0 {
		// Begun here, dropped at export — the importer completes the
		// client-visible protocol (same accounting as legacy claims).
		c.spans.Begin(sw.id, now, c.traceAP(sw.from), -1)
	}
	c.Trace.Addf(now, trace.Switch, "ctrl", "fed-handoff #%d %s ap%d->seg%d (score %.1f)",
		sw.id, cs.addr, c.traceAP(sw.from), src, m.Score)
	c.Rec.Record(trace.Record{At: now, Trace: c.traceID(sw.id), SwitchID: sw.id,
		Node: -1, Op: trace.OpIssue, Client: cs.addr, A: int32(c.traceAP(sw.from)), B: -1})
	if cs.serving < 0 {
		c.exportFed(cs, sw, cs.nextIndex)
		return
	}
	c.sendStop(cs, sw)
}

// exportFed ships association + queue state through the federation
// node's reliable-transfer RPC. Unlike the legacy fire-and-forget
// export, ownership is retained until the importer acks — a trunk
// outage mid-handoff must not leave the client owned by nobody.
func (c *Controller) exportFed(cs *clientState, sw *switchState, k uint16) {
	c.fed.SendReliable(sw.remoteSeg, &packet.Handoff{
		Kind:     packet.HandoffExport,
		Client:   cs.addr,
		IP:       cs.ip,
		Index:    k,
		NextIdx:  cs.nextIndex,
		SwitchID: sw.id,
	}, func(ok bool) { c.exportOutcome(cs, sw, ok) })
}

// exportOutcome resolves a federated export: flip ownership and flush
// the held traffic toward the importer, or — after retry exhaustion —
// reclaim the client and re-admit the held traffic locally.
func (c *Controller) exportOutcome(cs *clientState, sw *switchState, ok bool) {
	if cs.sw != sw {
		return // a Release (or abandonment) already resolved this switch
	}
	cs.sw = nil
	now := c.loop.Now()
	if ok {
		dst := sw.remoteSeg
		cs.owned = false
		cs.exportedTo = -1
		cs.exportedSeg = dst
		cs.serving = -1
		cs.hasAdoptAt = false
		c.HandoffsExported++
		c.met.handoffExports.Inc()
		c.spans.Drop(sw.id)
		c.fed.NoteExported(cs.addr, dst)
		for _, d := range sw.heldData {
			c.fed.Send(dst, d)
		}
		for _, p := range sw.held {
			c.fed.Send(dst, &packet.ServerData{Inner: p})
		}
		c.Trace.Addf(now, trace.Switch, "ctrl", "fed-export #%d %s -> seg%d", sw.id, cs.addr, dst)
		c.Rec.Record(trace.Record{At: now, Trace: c.traceID(sw.id), SwitchID: sw.id,
			Node: -1, Op: trace.OpExport, Client: cs.addr, A: int32(len(sw.held)), B: int32(dst)})
		return
	}
	// The importer never acked: keep the client, re-assert ownership
	// with a fresh directory epoch, and put the held traffic back on
	// the local datapath. Selection re-adopts the client if its radio
	// is still audible; otherwise the next claim from wherever it
	// surfaces re-locates it.
	c.met.switchAbandoned.Inc()
	c.spans.Drop(sw.id)
	c.fed.Announce(cs.addr)
	c.Trace.Addf(now, trace.Switch, "ctrl", "fed-export #%d %s -> seg%d failed, reclaimed", sw.id, cs.addr, sw.remoteSeg)
	for _, d := range sw.heldData {
		c.fanOut(cs, d.Inner)
	}
	for _, p := range sw.held {
		c.Downlink(p)
	}
}

// importFed adopts a client transferred through the federation layer.
// Duplicate exports (a retransmission racing our ack) are re-acked
// idempotently.
func (c *Controller) importFed(src int, m *packet.Handoff) {
	cs := c.stateFor(m.Client)
	ack := &packet.Handoff{Kind: packet.HandoffAck, Client: m.Client, SwitchID: m.SwitchID}
	if cs.owned {
		c.fed.Send(src, ack)
		return
	}
	cs.owned = true
	cs.exportedTo = -1
	cs.exportedSeg = -1
	cs.ip = m.IP
	c.ipToMAC[m.IP] = m.Client
	cs.nextIndex = m.NextIdx
	cs.adoptAt, cs.hasAdoptAt = m.Index, true
	cs.serving = -1
	cs.importedAt, cs.everImport = c.loop.Now(), true
	c.HandoffsImported++
	c.met.handoffImports.Inc()
	c.Trace.Addf(c.loop.Now(), trace.Switch, "ctrl", "fed-import #%d %s k=%d from seg%d", m.SwitchID, m.Client, m.Index, src)
	c.Rec.Record(trace.Record{At: c.loop.Now(), Trace: c.loop.Trace(), SwitchID: m.SwitchID,
		Node: -1, Op: trace.OpImport, Client: m.Client, A: int32(m.Index)})
	c.bh.Broadcast(c.self, &packet.AssocState{
		Client: m.Client,
		IP:     m.IP,
		State:  packet.StateAssociated,
	})
	c.fed.Send(src, ack)
	c.fed.Announce(m.Client)
	c.fed.ClaimResolved(m.Client)
	c.maybeSwitch(cs)
}

// Release implements federation.Handler: the replicated directory
// converged on another owner (a reclaimed export that nevertheless
// arrived, or a duplicate acquisition resolved by the epoch order).
// Stand down: stop the serving AP, chase held traffic to the winner,
// and route future downlink along the export chain.
func (c *Controller) Release(addr packet.MAC, owner int) {
	cs := c.clients[addr]
	if cs == nil || !cs.owned {
		return
	}
	now := c.loop.Now()
	if sw := cs.sw; sw != nil {
		if sw.timer != nil {
			c.loop.Cancel(sw.timer)
		}
		if sw.remoteSeg >= 0 {
			c.fed.AbortExport(addr, sw.id)
		}
		c.spans.Drop(sw.id)
		cs.sw = nil
		for _, d := range sw.heldData {
			c.fed.Send(owner, d)
		}
		for _, p := range sw.held {
			c.fed.Send(owner, &packet.ServerData{Inner: p})
		}
	}
	cs.owned = false
	cs.exportedTo = -1
	cs.exportedSeg = owner
	cs.hasAdoptAt = false
	if cs.serving >= 0 {
		c.switchID++
		// Trace the stand-down stop so the AP's records attach to a
		// causal id even though no local switch state exists for it.
		prev := c.loop.SetTrace(c.traceID(c.switchID))
		c.bh.Send(c.self, c.fabric.APNode(uint16(c.apBase+cs.serving)), &packet.Stop{
			Client:   addr,
			NewAPID:  packet.RemoteAPID,
			SwitchID: c.switchID,
		})
		c.loop.SetTrace(prev)
		cs.serving = -1
	}
	c.FedReleases++
	c.Trace.Addf(now, trace.Switch, "ctrl", "fed-release %s -> seg%d", addr, owner)
}
