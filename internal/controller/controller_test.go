package controller

import (
	"testing"

	"wgtt/internal/backhaul"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

const (
	nodeCtrl   backhaul.NodeID = 0
	nodeServer backhaul.NodeID = 1
	nodeAP0    backhaul.NodeID = 2
)

type fakeFabric struct{}

func (fakeFabric) APNode(id uint16) backhaul.NodeID { return nodeAP0 + backhaul.NodeID(id) }
func (fakeFabric) Server() backhaul.NodeID          { return nodeServer }

// rig wires a controller to capture-only AP and server nodes.
type rig struct {
	loop *sim.Loop
	bh   *backhaul.Net
	ctrl *Controller
	// apMsgs[i] records messages delivered to AP i.
	apMsgs [4][]packet.Message
	server []packet.Message
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{loop: sim.NewLoop()}
	r.bh = backhaul.New(r.loop, backhaul.DefaultConfig())
	r.ctrl = New(r.loop, r.bh, nodeCtrl, fakeFabric{}, 0, 4, cfg)
	for i := 0; i < 4; i++ {
		i := i
		r.bh.AddNode(nodeAP0+backhaul.NodeID(i), func(_ backhaul.NodeID, m packet.Message) {
			r.apMsgs[i] = append(r.apMsgs[i], m)
		})
	}
	r.bh.AddNode(nodeServer, func(_ backhaul.NodeID, m packet.Message) {
		r.server = append(r.server, m)
	})
	return r
}

// csi reports a flat-SNR reading from AP ap for the client.
func (r *rig) csi(ap uint16, client packet.MAC, esnrDB float64) {
	rep := &packet.CSIReport{Client: client, APID: ap, Time: r.loop.Now()}
	for i := 0; i < rf.NumSubcarriers; i++ {
		rep.SNRsDB[i] = esnrDB
	}
	// Deliver as if it came over the backhaul from the AP's node.
	r.bh.Send(nodeAP0+backhaul.NodeID(ap), nodeCtrl, rep)
}

func (r *rig) run(d sim.Duration) { r.loop.Run(r.loop.Now().Add(d)) }

// lastOf returns the most recent message of type M delivered to AP i.
func lastOf[M packet.Message](r *rig, ap int) (M, bool) {
	var zero M
	for j := len(r.apMsgs[ap]) - 1; j >= 0; j-- {
		if m, ok := r.apMsgs[ap][j].(M); ok {
			return m, true
		}
	}
	return zero, false
}

var cli = packet.ClientMAC(0)

func TestInitialAdoptionSendsStart(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.csi(1, cli, 25)
	r.run(10 * sim.Millisecond)
	start, ok := lastOf[*packet.Start](r, 1)
	if !ok {
		t.Fatal("no Start sent on first CSI")
	}
	if start.Client != cli {
		t.Errorf("Start for %v", start.Client)
	}
	// Ack completes the adoption.
	r.bh.Send(nodeAP0+1, nodeCtrl, &packet.SwitchAck{Client: cli, APID: 1, SwitchID: start.SwitchID})
	r.run(5 * sim.Millisecond)
	if got := r.ctrl.ServingAP(cli); got != 1 {
		t.Errorf("ServingAP = %d, want 1", got)
	}
}

// adopt drives the initial adoption onto AP ap.
func (r *rig) adopt(t *testing.T, ap uint16, esnr float64) {
	t.Helper()
	r.csi(ap, cli, esnr)
	r.run(10 * sim.Millisecond)
	start, ok := lastOf[*packet.Start](r, int(ap))
	if !ok {
		t.Fatal("adoption Start missing")
	}
	r.bh.Send(nodeAP0+backhaul.NodeID(ap), nodeCtrl, &packet.SwitchAck{Client: cli, APID: ap, SwitchID: start.SwitchID})
	r.run(5 * sim.Millisecond)
}

func TestSwitchRequiresMargin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwitchMarginDB = 3
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 20)

	// Wait out hysteresis, then report a candidate only 1 dB better: no
	// switch.
	r.run(cfg.Hysteresis)
	r.csi(0, cli, 20)
	r.csi(1, cli, 21)
	r.run(10 * sim.Millisecond)
	if _, ok := lastOf[*packet.Stop](r, 0); ok {
		t.Fatal("switched on a 1 dB advantage despite 3 dB margin")
	}
	// 5 dB better: switch.
	r.run(cfg.Hysteresis)
	r.csi(0, cli, 20)
	r.csi(1, cli, 25)
	r.run(10 * sim.Millisecond)
	stop, ok := lastOf[*packet.Stop](r, 0)
	if !ok {
		t.Fatal("no Stop despite 5 dB advantage")
	}
	if stop.NewAPID != 1 {
		t.Errorf("switching to AP %d, want 1", stop.NewAPID)
	}
}

func TestHysteresisBlocksBackToBackSwitches(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 20)
	before := len(r.apMsgs[0])

	// Immediately report a much better AP: hysteresis (counted from the
	// adoption) must suppress the switch.
	r.csi(0, cli, 20)
	r.csi(1, cli, 30)
	r.run(5 * sim.Millisecond)
	for _, m := range r.apMsgs[0][before:] {
		if _, ok := m.(*packet.Stop); ok {
			t.Fatal("switch issued inside hysteresis window")
		}
	}
}

func TestStopRetransmission(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 20)
	r.run(cfg.Hysteresis)
	r.csi(0, cli, 10)
	r.csi(1, cli, 25)
	r.run(5 * sim.Millisecond)
	// AP0 never answers with a Start→Ack chain; the controller must
	// retransmit the stop after 30 ms.
	r.run(2 * cfg.StopTimeout)
	stops := 0
	for _, m := range r.apMsgs[0] {
		if _, ok := m.(*packet.Stop); ok {
			stops++
		}
	}
	if stops < 2 {
		t.Errorf("stop sent %d times, want ≥2 (retransmission)", stops)
	}
	if r.ctrl.StopRetransmits == 0 {
		t.Error("StopRetransmits not counted")
	}
}

func TestOneOutstandingSwitch(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 20)
	r.run(cfg.Hysteresis)
	r.csi(0, cli, 10)
	r.csi(1, cli, 25)
	r.run(5 * sim.Millisecond) // switch to 1 outstanding (no ack yet)
	// An even better AP appears; controller must NOT issue a second
	// switch while the first is unacknowledged.
	r.csi(2, cli, 35)
	r.run(5 * sim.Millisecond)
	if _, ok := lastOf[*packet.Stop](r, 1); ok {
		t.Fatal("second switch issued while first outstanding")
	}
	if r.ctrl.SwitchesIssued != 2 { // adoption + one switch
		t.Errorf("SwitchesIssued = %d, want 2", r.ctrl.SwitchesIssued)
	}
}

func TestDownlinkFanoutFreshnessAndIndexes(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 25)
	// APs 0 and 1 heard the client recently; AP 2 long ago.
	r.csi(0, cli, 25)
	r.csi(1, cli, 15)
	r.run(2 * sim.Millisecond)

	for i := 0; i < 5; i++ {
		r.ctrl.Downlink(packet.Packet{Src: packet.ServerIP, Dst: packet.ClientIP(0), Proto: packet.ProtoUDP, PayloadLen: 1000})
	}
	r.run(5 * sim.Millisecond)

	count := func(ap int) (n int, lastIdx uint16) {
		for _, m := range r.apMsgs[ap] {
			if d, ok := m.(*packet.DownlinkData); ok {
				n++
				lastIdx = d.Inner.Index
			}
		}
		return
	}
	n0, last0 := count(0)
	n1, _ := count(1)
	n2, _ := count(2)
	if n0 != 5 || n1 != 5 {
		t.Errorf("fanout to fresh APs = %d,%d; want 5,5", n0, n1)
	}
	if n2 != 0 {
		t.Errorf("fanout to stale AP = %d, want 0", n2)
	}
	if last0 != 4 {
		t.Errorf("last index = %d, want 4 (monotone from 0)", last0)
	}
	// After the window expires, only the serving AP receives.
	r.run(cfg.Window + 5*sim.Millisecond)
	r.ctrl.Downlink(packet.Packet{Src: packet.ServerIP, Dst: packet.ClientIP(0), Proto: packet.ProtoUDP, PayloadLen: 1000})
	r.run(5 * sim.Millisecond)
	n0b, _ := count(0)
	n1b, _ := count(1)
	if n0b != 6 || n1b != 5 {
		t.Errorf("stale-window fanout: serving got %d (want 6), other %d (want 5)", n0b, n1b)
	}
}

func TestDownlinkUnknownClientDropped(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.ctrl.Downlink(packet.Packet{Dst: packet.IP{9, 9, 9, 9}, PayloadLen: 100})
	r.run(5 * sim.Millisecond)
	if r.ctrl.DownlinkPackets != 0 {
		t.Error("unknown destination admitted")
	}
}

func TestUplinkDedup(t *testing.T) {
	r := newRig(t, DefaultConfig())
	p := packet.Packet{Src: packet.ClientIP(0), Dst: packet.ServerIP, IPID: 7, Proto: packet.ProtoUDP, PayloadLen: 100}
	// Same packet via three APs.
	for ap := uint16(0); ap < 3; ap++ {
		r.bh.Send(nodeAP0+backhaul.NodeID(ap), nodeCtrl, &packet.UplinkData{APID: ap, Client: cli, Inner: p})
	}
	// A different packet.
	p2 := p
	p2.IPID = 8
	r.bh.Send(nodeAP0, nodeCtrl, &packet.UplinkData{APID: 0, Client: cli, Inner: p2})
	r.run(10 * sim.Millisecond)

	if len(r.server) != 2 {
		t.Fatalf("server received %d packets, want 2 (dedup)", len(r.server))
	}
	if r.ctrl.UplinkDuplicates != 2 {
		t.Errorf("UplinkDuplicates = %d, want 2", r.ctrl.UplinkDuplicates)
	}
}

func TestUplinkDedupDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dedup = false
	r := newRig(t, cfg)
	p := packet.Packet{Src: packet.ClientIP(0), Dst: packet.ServerIP, IPID: 7, Proto: packet.ProtoUDP, PayloadLen: 100}
	for ap := uint16(0); ap < 3; ap++ {
		r.bh.Send(nodeAP0+backhaul.NodeID(ap), nodeCtrl, &packet.UplinkData{APID: ap, Client: cli, Inner: p})
	}
	r.run(10 * sim.Millisecond)
	if len(r.server) != 3 {
		t.Errorf("server received %d, want 3 with dedup off", len(r.server))
	}
}

func TestSelectionPolicies(t *testing.T) {
	for _, policy := range []SelectPolicy{SelectMedian, SelectMean, SelectLatest} {
		cfg := DefaultConfig()
		cfg.Policy = policy
		r := newRig(t, cfg)
		r.ctrl.RegisterClient(cli, packet.ClientIP(0))
		r.csi(2, cli, 22)
		r.run(10 * sim.Millisecond)
		if _, ok := lastOf[*packet.Start](r, 2); !ok {
			t.Errorf("policy %d: no adoption", policy)
		}
	}
}

func TestSwitchLatencyRecorded(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 20)
	r.run(cfg.Hysteresis)
	r.csi(0, cli, 10)
	r.csi(1, cli, 25)
	r.run(5 * sim.Millisecond)
	stop, ok := lastOf[*packet.Stop](r, 0)
	if !ok {
		t.Fatal("no switch")
	}
	// Complete the protocol after a simulated 12 ms AP-side delay.
	r.run(12 * sim.Millisecond)
	r.bh.Send(nodeAP0+1, nodeCtrl, &packet.SwitchAck{Client: cli, APID: 1, SwitchID: stop.SwitchID})
	r.run(5 * sim.Millisecond)
	if len(r.ctrl.SwitchLatencies) != 1 {
		t.Fatalf("latencies recorded: %d", len(r.ctrl.SwitchLatencies))
	}
	if l := r.ctrl.SwitchLatencies[0]; l < 12*sim.Millisecond || l > 25*sim.Millisecond {
		t.Errorf("latency %v, want ≈12-18 ms", l)
	}
	// Adoption (from = -1) must not be counted.
	if r.ctrl.SwitchesAcked != 2 {
		t.Errorf("acked = %d", r.ctrl.SwitchesAcked)
	}
}

func TestStaleAckIgnored(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg)
	r.ctrl.RegisterClient(cli, packet.ClientIP(0))
	r.adopt(t, 0, 20)
	// An ack with a bogus switch id must not change serving.
	r.bh.Send(nodeAP0+2, nodeCtrl, &packet.SwitchAck{Client: cli, APID: 2, SwitchID: 999})
	r.run(5 * sim.Millisecond)
	if got := r.ctrl.ServingAP(cli); got != 0 {
		t.Errorf("stale ack moved serving to %d", got)
	}
}
