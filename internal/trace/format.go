package trace

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// sprintf is a reflection-free subset of fmt.Sprintf covering the verbs
// trace call sites use (%d, %x, %s, %v, %f/%g with optional precision,
// %%) over the concrete types that flow through the datapath. Unlike
// fmt.Sprintf it provably does not leak its argument slice, so the
// compiler keeps Addf callers' variadic []any (and the boxed values in
// it) on the stack — a disabled log then costs zero heap allocations,
// which TestAddfDisabledZeroAlloc pins. Unsupported verb/argument
// combinations render a "%!x(?)" placeholder instead of reflecting.
func sprintf(format string, args []any) string {
	var buf [128]byte
	return string(appendFormat(buf[:0], format, args))
}

func appendFormat(b []byte, format string, args []any) []byte {
	arg := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			b = append(b, ch)
			continue
		}
		i++
		prec := -1
		if i < len(format) && format[i] == '.' {
			prec = 0
			for i++; i < len(format) && format[i] >= '0' && format[i] <= '9'; i++ {
				prec = prec*10 + int(format[i]-'0')
			}
		}
		if i >= len(format) {
			b = append(b, '%')
			break
		}
		verb := format[i]
		if verb == '%' {
			b = append(b, '%')
			continue
		}
		if arg >= len(args) {
			b = append(b, '%', '!')
			b = append(b, verb)
			b = append(b, "(MISSING)"...)
			continue
		}
		b = appendArg(b, format, verb, prec, args[arg])
		arg++
	}
	return b
}

func appendArg(b []byte, format string, verb byte, prec int, v any) []byte {
	switch verb {
	case 'd', 'x':
		base := 10
		if verb == 'x' {
			base = 16
		}
		switch n := v.(type) {
		case int:
			return strconv.AppendInt(b, int64(n), base)
		case int8:
			return strconv.AppendInt(b, int64(n), base)
		case int16:
			return strconv.AppendInt(b, int64(n), base)
		case int32:
			return strconv.AppendInt(b, int64(n), base)
		case int64:
			return strconv.AppendInt(b, n, base)
		case sim.Duration:
			return strconv.AppendInt(b, int64(n), base)
		case sim.Time:
			return strconv.AppendInt(b, int64(n), base)
		case uint:
			return strconv.AppendUint(b, uint64(n), base)
		case uint8:
			return strconv.AppendUint(b, uint64(n), base)
		case uint16:
			return strconv.AppendUint(b, uint64(n), base)
		case uint32:
			return strconv.AppendUint(b, uint64(n), base)
		case uint64:
			return strconv.AppendUint(b, n, base)
		}
	case 'f', 'g':
		fc := verb
		if prec < 0 {
			if verb == 'f' {
				prec = 6
			}
		}
		switch n := v.(type) {
		case float64:
			return strconv.AppendFloat(b, n, fc, prec, 64)
		case float32:
			return strconv.AppendFloat(b, float64(n), fc, prec, 32)
		}
	case 's', 'v':
		switch s := v.(type) {
		case string:
			return append(b, s...)
		case packet.MAC:
			return appendMAC(b, s)
		case sim.Time:
			// Mirrors sim.Time.String ("3.201456s") without fmt.
			b = strconv.AppendFloat(b, s.Seconds(), 'f', 6, 64)
			return append(b, 's')
		case sim.Duration:
			return append(b, s.String()...)
		case bool:
			return strconv.AppendBool(b, s)
		}
		if verb == 'v' {
			switch v.(type) {
			case float64, float32:
				return appendArg(b, format, 'g', prec, v)
			default:
				return appendArg(b, format, 'd', prec, v)
			}
		}
	}
	noteBadVerb(format, verb)
	b = append(b, '%', '!')
	b = append(b, verb)
	return append(b, "(?)"...)
}

// badVerbNoted latches the one-time bad-verb warning; badVerbOut is the
// test seam for capturing it.
var (
	badVerbNoted atomic.Bool
	badVerbOut   io.Writer = os.Stderr
)

// noteBadVerb surfaces the first verb/argument combination the
// mini-formatter cannot render. The "%!x(?)" placeholder it emits in
// the trace output is easy to miss, so under `go test` the first
// occurrence per process also prints a warning naming the format string
// — new call sites with unsupported verbs fail loudly in review instead
// of silently producing placeholders. Outside tests it stays silent
// (tracing must never spam a production run's stderr). Deliberately
// does not take the offending argument: boxing it into fmt would make
// every Addf variadic slice escape and break the disabled-path
// zero-allocation contract.
func noteBadVerb(format string, verb byte) {
	if !testing.Testing() || badVerbNoted.Swap(true) {
		return
	}
	fmt.Fprintf(badVerbOut,
		"trace: Addf format %q: unsupported verb %%%c for its argument type — rendered as %%!%c(?); extend internal/trace/format.go or change the call site\n",
		format, verb, verb)
}

const hexDigits = "0123456789abcdef"

func appendMAC(b []byte, m packet.MAC) []byte {
	for i, oct := range m {
		if i > 0 {
			b = append(b, ':')
		}
		b = append(b, hexDigits[oct>>4], hexDigits[oct&0xf])
	}
	return b
}
