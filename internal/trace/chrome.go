package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wgtt/internal/sim"
)

// Chrome trace_event JSON export of a stitched flight-recorder
// timeline, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Mapping: one "process" per domain shard (segments, then the server
// domain), one "thread" per node (the controller plus each AP). Every
// record becomes a thread-scoped instant event, and every handoff that
// reached its Start or SwitchAck additionally renders as duration
// slices — the whole transaction plus its stop (issue→start) and ack
// (start→ack) phases — on the issuing controller's lane, so one
// switch reads as a nested bar whose width is the paper's 17–21 ms
// band. Timestamps are virtual microseconds.

// chromePid maps a domain index (-1 = server) to a trace pid.
func chromePid(domain int16) int { return int(domain) + 1 } // server=0, segN=N+1

// chromeTid maps a node (-1 = controller) to a trace tid.
func chromeTid(node int16) int { return int(node) + 2 } // ctrl=1, apN=N+2

func chromeTs(t sim.Time) float64 { return float64(t) / 1e3 } // ns → µs

// WriteChrome renders a stitched record timeline (see Stitch) as Chrome
// trace_event JSON. Output is deterministic: records are emitted in
// input order and metadata lanes in sorted order.
func WriteChrome(w io.Writer, recs []Record) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}

	// Lane metadata: name every process (domain) and thread (node) that
	// appears, in sorted lane order.
	type lane struct{ domain, node int16 }
	seen := map[lane]bool{}
	for _, r := range recs {
		seen[lane{r.Domain, -1}] = true // domain itself
		seen[lane{r.Domain, r.Node}] = true
	}
	lanes := make([]lane, 0, len(seen))
	for l := range seen {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].domain != lanes[j].domain {
			return lanes[i].domain < lanes[j].domain
		}
		return lanes[i].node < lanes[j].node
	})
	domName := func(d int16) string {
		if d < 0 {
			return "server"
		}
		return fmt.Sprintf("seg%d", d)
	}
	for _, l := range lanes {
		if l.node == -1 {
			emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%q}}`,
				chromePid(l.domain), domName(l.domain))
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"ctrl"}}`,
				chromePid(l.domain), chromeTid(-1))
			continue
		}
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"ap%d"}}`,
			chromePid(l.domain), chromeTid(l.node), l.node)
	}

	// Handoff duration slices on the issuing controller's lane.
	for _, h := range Handoffs(recs) {
		if !h.HasIssue {
			continue
		}
		pid, tid := chromePid(h.Domain), chromeTid(-1)
		end, closed := h.Ack, h.HasAck
		if !closed && h.HasStart {
			end, closed = h.Start, true
		}
		if !closed {
			continue // issue-only fragment: the instant events cover it
		}
		emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"handoff #%d %s ap%d->ap%d","args":{"trace":%d,"retx":%d,"flushed":%d,"completed":%t}}`,
			pid, tid, chromeTs(h.Issue), chromeTs(end)-chromeTs(h.Issue),
			h.SwitchID, h.Client, h.From, h.To, h.Trace, h.Retx, h.Flushed, h.HasAck)
		if h.HasStart {
			emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"stop-phase #%d","args":{"trace":%d}}`,
				pid, tid, chromeTs(h.Issue), chromeTs(h.Start)-chromeTs(h.Issue), h.SwitchID, h.Trace)
			if h.HasAck {
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"name":"ack-phase #%d","args":{"trace":%d}}`,
					pid, tid, chromeTs(h.Start), chromeTs(h.Ack)-chromeTs(h.Start), h.SwitchID, h.Trace)
			}
		}
	}

	// Every record as a thread-scoped instant on its own lane.
	for _, r := range recs {
		emit(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f,"name":"%s #%d","args":{"trace":%d,"client":%q,"a":%d,"b":%d}}`,
			chromePid(r.Domain), chromeTid(r.Node), chromeTs(r.At),
			r.Op, r.SwitchID, r.Trace, r.Client.String(), r.A, r.B)
	}

	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
