// Package trace provides the tcpdump-style packet logging the paper's
// methodology relies on (§5.1: "we log packet flows sent to and from both
// the controller and the client using tcpdump"). Components append typed
// events to a bounded ring; experiments and the wgtt-sim binary dump or
// filter them afterwards.
package trace

import (
	"fmt"
	"io"
	"strings"

	"wgtt/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// Downlink is an over-the-air AP→client data delivery.
	Downlink Kind = iota
	// Uplink is an over-the-air client→AP data delivery.
	Uplink
	// Switch is a controller switch decision (stop/start/ack round).
	Switch
	// Control is any backhaul control message.
	Control
	// Drop is a packet lost (queue overflow, retry exhaustion).
	Drop
)

// ParseKind inverts Kind.String (case-insensitive); "" or "all" mean
// "every kind" and map to -1, the Filter wildcard.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "", "ALL":
		return Kind(-1), nil
	case "DL":
		return Downlink, nil
	case "UL":
		return Uplink, nil
	case "SW":
		return Switch, nil
	case "CTL":
		return Control, nil
	case "DROP":
		return Drop, nil
	}
	return 0, fmt.Errorf("trace: unknown kind %q (want DL, UL, SW, CTL, DROP or all)", s)
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Downlink:
		return "DL"
	case Uplink:
		return "UL"
	case Switch:
		return "SW"
	case Control:
		return "CTL"
	case Drop:
		return "DROP"
	}
	return "?"
}

// Event is one logged occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	// Node names the component that logged the event ("ap3", "ctrl",
	// "client0").
	Node string
	// Detail is a short free-form description ("idx=4012 seq=88").
	Detail string
}

// Log is a bounded in-memory event ring. The zero value discards
// everything (tracing off); construct with New to record.
type Log struct {
	events []Event
	next   int
	filled bool
	cap    int
	total  int
}

// New returns a log retaining the most recent capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1
	}
	return &Log{events: make([]Event, capacity), cap: capacity}
}

// Add appends an event. A nil log is a no-op, so call sites can hold an
// optional *Log without branching.
func (l *Log) Add(at sim.Time, kind Kind, node, detail string) {
	if l == nil || l.cap == 0 {
		return
	}
	l.events[l.next] = Event{At: at, Kind: kind, Node: node, Detail: detail}
	l.next++
	l.total++
	if l.next == l.cap {
		l.next = 0
		l.filled = true
	}
}

// Addf formats and appends. It formats with the package's non-escaping
// sprintf subset (format.go) rather than fmt.Sprintf: fmt leaks its
// argument slice, which would force every call site to heap-allocate
// the variadic args even when the log is nil — with sprintf the
// disabled path is genuinely free (zero allocations, pinned by test).
func (l *Log) Addf(at sim.Time, kind Kind, node, format string, args ...any) {
	if l == nil || l.cap == 0 {
		return
	}
	l.Add(at, kind, node, sprintf(format, args))
}

// Len reports retained events; Total reports all ever added.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	if l.filled {
		return l.cap
	}
	return l.next
}

// Total reports all events ever added (including evicted ones).
func (l *Log) Total() int {
	if l == nil {
		return 0
	}
	return l.total
}

// Events returns retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	if !l.filled {
		out := make([]Event, l.next)
		copy(out, l.events[:l.next])
		return out
	}
	out := make([]Event, 0, l.cap)
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Filter returns retained events matching kind (or all for kind < 0) and
// node substring (or all for "").
func (l *Log) Filter(kind Kind, nodeSub string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if kind >= 0 && e.Kind != kind {
			continue
		}
		if nodeSub != "" && !strings.Contains(e.Node, nodeSub) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes the retained events, one per line, tcpdump-style.
func (l *Log) Dump(w io.Writer) error {
	return DumpEvents(w, l.Events())
}

// DumpEvents writes an event slice (e.g. a Filter result) in the same
// tcpdump-style line format as Dump.
func DumpEvents(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%s %-4s %-8s %s\n", e.At, e.Kind, e.Node, e.Detail); err != nil {
			return err
		}
	}
	return nil
}
