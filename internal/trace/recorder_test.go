package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

func rec(at sim.Time, trace uint64, op Op, node int16) Record {
	return Record{At: at, Trace: trace, Op: op, Node: node, SwitchID: uint32(trace & 0xffffffff)}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(Record{})
	r.Anomaly(Anomaly{Kind: AnomalyLatency})
	if r.Len() != 0 || r.Total() != 0 || r.Records() != nil || r.Anomalies() != nil {
		t.Fatal("nil recorder must be inert")
	}
	if got := NewRecorder(0, 0); got != nil {
		t.Fatalf("NewRecorder(capacity=0) = %v, want nil", got)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(2, 4)
	for i := 1; i <= 7; i++ {
		r.Record(rec(sim.Time(i), uint64(i), OpIssue, -1))
	}
	if r.Total() != 7 || r.Len() != 4 {
		t.Fatalf("Total=%d Len=%d, want 7, 4", r.Total(), r.Len())
	}
	got := r.Records()
	for i, want := range []sim.Time{4, 5, 6, 7} {
		if got[i].At != want {
			t.Fatalf("Records()[%d].At = %v, want %v (oldest-first)", i, got[i].At, want)
		}
		if got[i].Domain != 2 {
			t.Fatalf("record not stamped with recorder domain: %+v", got[i])
		}
	}
	if w := r.Window(5, 6); len(w) != 2 || w[0].At != 5 || w[1].At != 6 {
		t.Fatalf("Window(5,6) = %+v", w)
	}
}

// TestRecordZeroAlloc pins the hot-path contract: recording into a live
// ring — and the disabled nil path — never allocates.
func TestRecordZeroAlloc(t *testing.T) {
	live := NewRecorder(0, 128)
	var off *Recorder
	sample := rec(5, 9, OpStop, 3)
	if n := testing.AllocsPerRun(1000, func() { live.Record(sample) }); n != 0 {
		t.Errorf("enabled Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { off.Record(sample) }); n != 0 {
		t.Errorf("disabled Record allocates %v/op, want 0", n)
	}
}

func TestAnomalyBounded(t *testing.T) {
	r := NewRecorder(0, 4)
	for i := 0; i < 100; i++ {
		r.Anomaly(Anomaly{At: sim.Time(i), Kind: AnomalyUnowned, Value: float64(i)})
	}
	if got := len(r.Anomalies()); got != 64 {
		t.Fatalf("anomalies = %d, want capped at 64", got)
	}
}

// TestStitchPermutationDeterminism: stitching the same shards in any
// order yields the identical timeline.
func TestStitchPermutationDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := make([][]Record, 4)
	for d := range shards {
		for i := 0; i < 20; i++ {
			shards[d] = append(shards[d], Record{
				At:     sim.Time(rng.Intn(10)),
				Trace:  uint64(rng.Intn(5)),
				Domain: int16(d),
				Node:   int16(rng.Intn(3)) - 1,
				Op:     Op(rng.Intn(int(OpImport)) + 1),
			})
		}
	}
	want := Stitch(shards...)
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(shards))
		sh := make([][]Record, 0, len(shards))
		for _, p := range perm {
			sh = append(sh, shards[p])
		}
		if got := Stitch(sh...); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %v stitched differently", perm)
		}
	}
}

func handoffRecords() []Record {
	mac := packet.ClientMAC(4)
	const tr = uint64(3)<<32 | 7
	return []Record{
		{At: 10, Trace: tr, SwitchID: 7, Op: OpIssue, Client: mac, A: 2, B: 5, Domain: 1, Node: -1},
		{At: 11, Trace: tr, SwitchID: 7, Op: OpStop, Node: 2, A: 5},
		{At: 12, Trace: tr, SwitchID: 7, Op: OpRetx, Node: -1, A: 1},
		{At: 14, Trace: tr, SwitchID: 7, Op: OpStart, Node: 2, A: 9, B: 5},
		{At: 15, Trace: tr, SwitchID: 7, Op: OpStartRx, Node: 5, A: 3},
		{At: 17, Trace: tr, SwitchID: 7, Op: OpAck, Node: -1, A: 5},
		{At: 16, Trace: 0, Op: OpClaim}, // traceless: skipped
	}
}

func TestHandoffsReassembly(t *testing.T) {
	hs := Handoffs(Stitch(handoffRecords()))
	if len(hs) != 1 {
		t.Fatalf("handoffs = %d, want 1", len(hs))
	}
	h := hs[0]
	if !h.Completed() || h.From != 2 || h.To != 5 || h.Domain != 1 || h.SwitchID != 7 {
		t.Fatalf("handoff = %+v", h)
	}
	if !h.HasStop || !h.HasStart || !h.HasStartRx || h.Retx != 1 || h.Flushed != 3 {
		t.Fatalf("phases = %+v", h)
	}
	if h.Issue != 10 || h.Start != 14 || h.Ack != 17 {
		t.Fatalf("times = %+v", h)
	}
	if want := float64(17-10) / float64(sim.Millisecond); h.TotalMs() != want {
		t.Fatalf("TotalMs = %g, want %g", h.TotalMs(), want)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, Stitch(handoffRecords())); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var slices, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	// One handoff slice + stop-phase + ack-phase; every record an instant.
	if slices != 3 {
		t.Fatalf("duration slices = %d, want 3:\n%s", slices, buf.String())
	}
	if instants != len(handoffRecords()) {
		t.Fatalf("instants = %d, want %d", instants, len(handoffRecords()))
	}
	if !strings.Contains(buf.String(), `"name":"seg1"`) {
		t.Fatalf("missing process metadata:\n%s", buf.String())
	}
}

func TestDumpAnomalies(t *testing.T) {
	recs := Stitch(handoffRecords())
	anoms := []Anomaly{{At: 14, Kind: AnomalyLatency, Trace: recs[0].Trace, Value: 33.5}}
	var buf bytes.Buffer
	if err := DumpAnomalies(&buf, recs, anoms, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "handoff-latency") || !strings.Contains(out, "value=33.5") {
		t.Fatalf("missing anomaly header:\n%s", out)
	}
	// Window ±2ns around t=14 covers records at 12 and 14–16 but not 10.
	if !strings.Contains(out, "retx") || !strings.Contains(out, "start-rx") {
		t.Fatalf("missing window records:\n%s", out)
	}
	if strings.Contains(out, "issue") {
		t.Fatalf("record outside window leaked in:\n%s", out)
	}
}

// TestBadVerbWarning pins the satellite-6 contract: the first
// unsupported verb/argument combination under `go test` prints one
// warning naming the format string; later ones stay silent.
func TestBadVerbWarning(t *testing.T) {
	prevOut := badVerbOut
	prevNoted := badVerbNoted.Load()
	defer func() { badVerbOut = prevOut; badVerbNoted.Store(prevNoted) }()
	var buf bytes.Buffer
	badVerbOut = &buf
	badVerbNoted.Store(false)

	type odd struct{ x int }
	if got := sprintf("bad %s here", []any{odd{1}}); got != "bad %!s(?) here" {
		t.Fatalf("placeholder = %q", got)
	}
	warn := buf.String()
	if !strings.Contains(warn, `"bad %s here"`) || !strings.Contains(warn, "verb %s") {
		t.Fatalf("warning should name format and verb, got %q", warn)
	}
	if n := strings.Count(warn, "\n"); n != 1 {
		t.Fatalf("want exactly one warning line, got %d:\n%s", n, warn)
	}
	sprintf("also bad %d", []any{"str"})
	if buf.String() != warn {
		t.Fatalf("second bad verb warned again:\n%s", buf.String())
	}
}
