package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }

func TestLogRecordsInOrder(t *testing.T) {
	l := New(10)
	l.Add(ms(1), Downlink, "ap0", "idx=1")
	l.Addf(ms(2), Switch, "ctrl", "ap%d->ap%d", 0, 1)
	l.Add(ms(3), Drop, "ap0", "retry limit")
	ev := l.Events()
	if len(ev) != 3 || l.Len() != 3 || l.Total() != 3 {
		t.Fatalf("len=%d total=%d", l.Len(), l.Total())
	}
	if ev[1].Detail != "ap0->ap1" || ev[1].Kind != Switch {
		t.Errorf("event = %+v", ev[1])
	}
}

func TestLogRingEviction(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add(ms(i), Uplink, "client0", "")
	}
	ev := l.Events()
	if len(ev) != 4 || l.Total() != 10 {
		t.Fatalf("len=%d total=%d", len(ev), l.Total())
	}
	// The oldest retained is event 6 and order is chronological.
	for i, e := range ev {
		if e.At != ms(6+i) {
			t.Fatalf("events out of order: %v", ev)
		}
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Add(ms(1), Downlink, "x", "y") // must not panic
	l.Addf(ms(1), Downlink, "x", "%d", 1)
	if l.Len() != 0 || l.Total() != 0 || l.Events() != nil {
		t.Error("nil log not inert")
	}
}

func TestFilter(t *testing.T) {
	l := New(16)
	l.Add(ms(1), Downlink, "ap0", "")
	l.Add(ms(2), Downlink, "ap1", "")
	l.Add(ms(3), Switch, "ctrl", "")
	if got := len(l.Filter(Downlink, "")); got != 2 {
		t.Errorf("kind filter = %d", got)
	}
	if got := len(l.Filter(-1, "ap")); got != 2 {
		t.Errorf("node filter = %d", got)
	}
	if got := len(l.Filter(Switch, "ctrl")); got != 1 {
		t.Errorf("combined filter = %d", got)
	}
}

func TestDumpFormat(t *testing.T) {
	l := New(4)
	l.Add(ms(1500), Switch, "ctrl", "ap2->ap3")
	var b strings.Builder
	if err := l.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "SW") || !strings.Contains(out, "ap2->ap3") || !strings.Contains(out, "1.500000s") {
		t.Errorf("dump = %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Downlink, Uplink, Switch, Control, Drop} {
		if k.String() == "?" {
			t.Errorf("kind %d has no string", k)
		}
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind string")
	}
}

// Property: a ring of capacity c retains exactly min(n, c) events and
// Events() is chronologically nondecreasing.
func TestRingProperty(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		c := int(capRaw%16) + 1
		l := New(c)
		for i := 0; i < int(n); i++ {
			l.Add(ms(i), Uplink, "x", "")
		}
		ev := l.Events()
		want := int(n)
		if want > c {
			want = c
		}
		if len(ev) != want {
			return false
		}
		for i := 1; i < len(ev); i++ {
			if ev[i].At < ev[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
