package trace

import (
	"fmt"
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// TestSprintfMatchesFmt pins the mini-formatter against fmt.Sprintf for
// every format/type combination the datapath call sites use.
func TestSprintfMatchesFmt(t *testing.T) {
	mac := packet.ClientMAC(3)
	cases := []struct {
		format string
		args   []any
	}{
		{"stop #%d %s", []any{uint32(17), mac}},
		{"start #%d k=%d -> remote", []any{uint32(9), uint16(4012)}},
		{"start #%d k=%d -> ap%d", []any{uint32(9), uint16(4012), 5}},
		{"%d MPDUs exceeded retry limit", []any{7}},
		{"issue #%d %s ap%d->ap%d", []any{uint32(1), mac, 2, 3}},
		{"claim %s score %.1f dB", []any{mac, 23.456}},
		{"handoff #%d %s ap%d->peer%d (score %.1f)", []any{uint32(8), mac, -1, 1, -3.05}},
		{"plain text, no verbs", nil},
		{"%s %v %v", []any{"str", 42, 1.5}},
		{"%x vs %d", []any{uint16(0xbeef), int64(-12)}},
		{"%f and %.3f", []any{2.5, 2.5}},
		{"escaped %% and %d", []any{1}},
		{"time %s dur %s", []any{sim.Time(1500 * sim.Millisecond), 30 * sim.Millisecond}},
		{"bool %v", []any{true}},
		{"missing %d %d", []any{1}},
	}
	for _, c := range cases {
		got := sprintf(c.format, c.args)
		want := fmt.Sprintf(c.format, c.args...)
		if got != want {
			t.Errorf("sprintf(%q, %v) = %q, want %q", c.format, c.args, got, want)
		}
	}
}

func TestSprintfUnsupportedPlaceholder(t *testing.T) {
	type odd struct{ x int }
	got := sprintf("weird %s", []any{odd{1}})
	if got != "weird %!s(?)" {
		t.Errorf("placeholder = %q", got)
	}
}

// TestAddfDisabledZeroAlloc pins the satellite contract: a nil or
// zero-capacity log makes Addf completely free — not even the variadic
// argument slice reaches the heap.
func TestAddfDisabledZeroAlloc(t *testing.T) {
	var nilLog *Log
	zero := &Log{}
	mac := packet.ClientMAC(1)
	if n := testing.AllocsPerRun(1000, func() {
		nilLog.Addf(ms(1), Control, "ap0", "stop #%d %s", uint32(5), mac)
		zero.Addf(ms(1), Switch, "ctrl", "claim %s score %.1f dB", mac, 12.5)
	}); n != 0 {
		t.Fatalf("disabled Addf allocates %v/op, want 0", n)
	}
}

// BenchmarkAddfDisabled is the satellite's proof benchmark: run with
// -benchmem and expect 0 B/op, 0 allocs/op.
func BenchmarkAddfDisabled(b *testing.B) {
	var l *Log
	mac := packet.ClientMAC(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Addf(ms(1), Control, "ap0", "stop #%d %s", uint32(i), mac)
	}
}

func BenchmarkAddfEnabled(b *testing.B) {
	l := New(1024)
	mac := packet.ClientMAC(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Addf(ms(1), Control, "ap0", "stop #%d %s", uint32(i), mac)
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"": -1, "all": -1, "ALL": -1,
		"dl": Downlink, "UL": Uplink, "sw": Switch, "ctl": Control, "drop": Drop,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted bogus")
	}
}
