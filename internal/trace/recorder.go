package trace

import (
	"fmt"
	"io"
	"sort"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// This file is the causal flight recorder: a fixed-size ring of
// structured, value-typed records — one Recorder per domain shard, so
// recording never shares state across domains and stays legal in every
// domain mode (unlike the formatted-string Log, which Config.Validate
// forbids outside single-loop runs).
//
// Records are written synchronously from existing protocol handlers:
// recording schedules no events and draws no randomness, so the event
// schedule — and every golden pin — is bit-identical with the recorder
// on or off. Causality comes from the sim layer's trace register
// (sim.Loop.SetTrace): the controller stamps each switch transaction
// with a globally unique trace id at the issue site, the register
// flows through timers, backhaul deliveries and cross-process
// envelopes, and every record captures the id active when its handler
// ran. Stitching the per-shard rings back together by trace id yields
// one causal timeline per handoff, across processes.

// Op identifies a flight-recorder record's protocol step.
type Op uint8

// Flight-recorder operations, in rough protocol order.
const (
	OpNone    Op = iota
	OpIssue      // controller issued a Stop (A=from AP, B=to AP; A=-1 adoption)
	OpStop       // old AP received the Stop (A=new AP)
	OpStart      // old AP sent the Start, radio ioctl done (A=queue index, B=new AP or -1 remote)
	OpStartRx    // new AP received the Start (A=stale packets flushed)
	OpAck        // controller saw the SwitchAck (A=serving AP)
	OpRetx       // controller retransmitted the Stop (A=retry count)
	OpAbandon    // controller gave up after retry exhaustion (A=retries)
	OpClaim      // controller claimed an unowned client overheard above threshold
	OpExport     // controller exported the client mid-handoff (A=held pkts, B=peer/segment)
	OpImport     // controller imported the client (A=resume index k)
)

var opNames = [...]string{
	OpNone: "none", OpIssue: "issue", OpStop: "stop", OpStart: "start",
	OpStartRx: "start-rx", OpAck: "ack", OpRetx: "retx", OpAbandon: "abandon",
	OpClaim: "claim", OpExport: "export", OpImport: "import",
}

// String returns the op's wire-stable lowercase name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Record is one flight-recorder entry. Fixed-size and self-contained:
// recording is a single ring-slot copy, and records marshal losslessly
// for cross-process stitching. A and B are per-Op arguments (see the Op
// constants).
type Record struct {
	At       sim.Time   `json:"at"`
	Trace    uint64     `json:"trace"`
	SwitchID uint32     `json:"sw"`
	Domain   int16      `json:"dom"`  // segment index, -1 = server domain
	Node     int16      `json:"node"` // global AP id, -1 = the domain's controller
	Op       Op         `json:"op"`
	Client   packet.MAC `json:"client"`
	A        int32      `json:"a"`
	B        int32      `json:"b"`
}

// Recorder is a fixed-capacity ring of Records for one domain shard.
// All methods are nil-safe; a nil Recorder records nothing and is the
// disabled state, so instrumentation sites need no gating. Not
// goroutine-safe: each Recorder belongs to one domain and is written
// only from that domain's loop callbacks.
type Recorder struct {
	domain  int16
	recs    []Record
	next    int
	filled  bool
	total   uint64
	anoms   []Anomaly
	maxAnom int
}

// NewRecorder returns a recorder for one domain shard (segment index,
// or -1 for the server domain) holding the last capacity records.
// capacity <= 0 returns nil — the disabled recorder.
func NewRecorder(domain int, capacity int) *Recorder {
	if capacity <= 0 {
		return nil
	}
	return &Recorder{domain: int16(domain), recs: make([]Record, capacity), maxAnom: 64}
}

// Record appends one record, stamping the recorder's domain. The ring
// overwrites oldest-first; no allocation on any path.
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	rec.Domain = r.domain
	r.recs[r.next] = rec
	r.next++
	r.total++
	if r.next == len(r.recs) {
		r.next = 0
		r.filled = true
	}
}

// Total returns the number of records ever written (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Len returns the number of records currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.filled {
		return len(r.recs)
	}
	return r.next
}

// Records returns the held records oldest-first, as a copy.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	out := make([]Record, 0, r.Len())
	if r.filled {
		out = append(out, r.recs[r.next:]...)
	}
	return append(out, r.recs[:r.next]...)
}

// Window returns the held records with lo <= At <= hi, oldest-first.
func (r *Recorder) Window(lo, hi sim.Time) []Record {
	var out []Record
	for _, rec := range r.Records() {
		if rec.At >= lo && rec.At <= hi {
			out = append(out, rec)
		}
	}
	return out
}

// AnomalyKind names a trigger.
type AnomalyKind uint8

// Anomaly triggers.
const (
	AnomalyLatency AnomalyKind = iota + 1 // handoff latency outside the configured band
	AnomalyUnowned                        // unowned-client count above threshold
	AnomalyStall                          // a sync round stalled in wall-clock time
)

var anomalyNames = map[AnomalyKind]string{
	AnomalyLatency: "handoff-latency", AnomalyUnowned: "unowned-spike", AnomalyStall: "stalled-round",
}

// String returns the kind's wire-stable name.
func (k AnomalyKind) String() string {
	if s, ok := anomalyNames[k]; ok {
		return s
	}
	return fmt.Sprintf("anomaly%d", uint8(k))
}

// Anomaly is one trigger firing: what, when (virtual time), which trace
// (zero when not tied to one handoff), and the offending value (latency
// ms, unowned count, stalled exchange seq — per kind).
type Anomaly struct {
	At    sim.Time    `json:"at"`
	Kind  AnomalyKind `json:"kind"`
	Trace uint64      `json:"trace"`
	Value float64     `json:"value"`
}

// Anomaly notes a trigger firing. Bounded (the first 64 per recorder)
// so a pathological run cannot grow memory; the flight-recorder window
// around each is cut lazily at export time, not here.
func (r *Recorder) Anomaly(a Anomaly) {
	if r == nil || len(r.anoms) >= r.maxAnom {
		return
	}
	r.anoms = append(r.anoms, a)
}

// Anomalies returns the noted anomalies in firing order, as a copy.
func (r *Recorder) Anomalies() []Anomaly {
	if r == nil {
		return nil
	}
	return append([]Anomaly(nil), r.anoms...)
}

// Stitch merges per-shard record sets into one deterministic timeline:
// sorted by virtual time, then trace id, then domain, node, op and the
// remaining fields, so any permutation of the same shards yields the
// identical slice.
func Stitch(shards ...[]Record) []Record {
	var out []Record
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.SwitchID != b.SwitchID {
			return a.SwitchID < b.SwitchID
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return out
}

// Handoff is one switch transaction reassembled from stitched records.
type Handoff struct {
	Trace    uint64
	SwitchID uint32
	Client   packet.MAC
	From, To int   // global AP ids; From -1 for adoptions
	Domain   int16 // domain that issued the switch

	Issue, Stop, Start, StartRx, Ack sim.Time
	HasIssue, HasStop, HasStart      bool
	HasStartRx, HasAck               bool
	Retx, Flushed                    int
	Exported, Abandoned              bool
}

// Completed reports whether the handoff ran to its SwitchAck.
func (h Handoff) Completed() bool { return h.HasIssue && h.HasAck }

// TotalMs is the issue→ack latency in milliseconds (completed handoffs).
func (h Handoff) TotalMs() float64 {
	return float64(h.Ack.Sub(h.Issue)) / float64(sim.Millisecond)
}

// Handoffs folds a stitched timeline into per-transaction summaries,
// keyed by trace id, in first-record order. Records without a trace id
// are skipped.
func Handoffs(recs []Record) []Handoff {
	byTrace := map[uint64]*Handoff{}
	var order []uint64
	get := func(r Record) *Handoff {
		h, ok := byTrace[r.Trace]
		if !ok {
			h = &Handoff{Trace: r.Trace, SwitchID: r.SwitchID, Client: r.Client, From: -1, To: -1}
			byTrace[r.Trace] = h
			order = append(order, r.Trace)
		}
		return h
	}
	for _, r := range recs {
		if r.Trace == 0 {
			continue
		}
		h := get(r)
		switch r.Op {
		case OpIssue:
			h.Issue, h.HasIssue = r.At, true
			h.From, h.To = int(r.A), int(r.B)
			h.SwitchID, h.Client, h.Domain = r.SwitchID, r.Client, r.Domain
		case OpStop:
			if !h.HasStop {
				h.Stop, h.HasStop = r.At, true
			}
		case OpStart:
			if !h.HasStart {
				h.Start, h.HasStart = r.At, true
			}
		case OpStartRx:
			if !h.HasStartRx {
				h.StartRx, h.HasStartRx = r.At, true
			}
			h.Flushed += int(r.A)
		case OpAck:
			h.Ack, h.HasAck = r.At, true
		case OpRetx:
			h.Retx++
		case OpAbandon:
			h.Abandoned = true
		case OpExport:
			h.Exported = true
		}
	}
	out := make([]Handoff, 0, len(order))
	for _, id := range order {
		out = append(out, *byTrace[id])
	}
	return out
}

// DumpAnomalies writes a human-readable report: each anomaly followed
// by the stitched records inside ±window of its virtual time.
func DumpAnomalies(w io.Writer, recs []Record, anoms []Anomaly, window sim.Duration) error {
	for _, a := range anoms {
		if _, err := fmt.Fprintf(w, "anomaly %s at %v trace=%#x value=%g\n", a.Kind, a.At, a.Trace, a.Value); err != nil {
			return err
		}
		lo, hi := a.At.Add(-window), a.At.Add(window)
		for _, r := range recs {
			if r.At < lo || r.At > hi {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %v dom=%d node=%d %-8s #%d %s trace=%#x a=%d b=%d\n",
				r.At, r.Domain, r.Node, r.Op, r.SwitchID, r.Client, r.Trace, r.A, r.B); err != nil {
				return err
			}
		}
	}
	return nil
}
