package wire

import (
	"bytes"
	"reflect"
	"testing"

	"wgtt/internal/sim"
)

func sampleRound(seq int64) sim.RoundMsg {
	return sim.RoundMsg{
		Seq:     seq,
		Next:    sim.Time(123456789 + seq),
		HasNext: true,
		Boxes: []sim.BoxBatch{
			{Box: 0, Envelopes: []sim.WireEnvelope{
				{At: 1000, Kind: 2, Data: []byte("hello")},
				{At: 2000, Kind: 7, Data: nil},
			}},
			{Box: 5, Envelopes: []sim.WireEnvelope{
				{At: 1500, Kind: 1, Data: bytes.Repeat([]byte{0xAB}, 300)},
			}},
		},
	}
}

func TestRoundCodecRoundTrip(t *testing.T) {
	cases := []sim.RoundMsg{
		sampleRound(0),
		sampleRound(42),
		{Seq: 7, Flush: true},                      // flush with no boxes, no next
		{Seq: -1, Next: -5, HasNext: true},         // negative times survive
		{Seq: 3, Boxes: []sim.BoxBatch{{Box: 12}}}, // empty batch
	}
	for i, m := range cases {
		enc := encodeRound(m)
		got, err := decodeRound(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Canonical-form comparison: re-encoding must be byte-identical
		// (nil vs empty Data both encode as length 0).
		if !bytes.Equal(enc, encodeRound(got)) {
			t.Fatalf("case %d: round trip changed encoding\n in: %+v\nout: %+v", i, m, got)
		}
		if got.Seq != m.Seq || got.Next != m.Next || got.HasNext != m.HasNext || got.Flush != m.Flush {
			t.Fatalf("case %d: header fields changed: %+v -> %+v", i, m, got)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var digest [32]byte
	for i := range digest {
		digest[i] = byte(i * 7)
	}
	h := hello{Proc: 3, Digest: digest, NextRecv: 99}
	got, err := decodeHello(encodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("hello round trip: %+v -> %+v", h, got)
	}
}

func TestDecodeRoundRejectsTrailingBytes(t *testing.T) {
	enc := append(encodeRound(sampleRound(1)), 0xFF)
	if _, err := decodeRound(enc); err == nil {
		t.Fatal("decodeRound accepted a frame with trailing bytes")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Seq: 9, Peers: []sim.RoundMsg{sampleRound(9), {Seq: 9, Flush: true}}}
	got, err := decodeRecord(encodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq || len(got.Peers) != len(rec.Peers) {
		t.Fatalf("record round trip: %+v -> %+v", rec, got)
	}
	for i := range rec.Peers {
		if !bytes.Equal(encodeRound(rec.Peers[i]), encodeRound(got.Peers[i])) {
			t.Fatalf("peer %d changed across record round trip", i)
		}
	}
}

// FuzzEnvelopeCodec hammers the wire decoders with arbitrary bytes:
// they must never panic, and anything they accept must re-encode to a
// decodable, stable form (decode ∘ encode is the identity on the
// canonical encoding).
func FuzzEnvelopeCodec(f *testing.F) {
	f.Add(encodeRound(sampleRound(0)))
	f.Add(encodeRound(sim.RoundMsg{Seq: 1, Flush: true}))
	f.Add(encodeRecord(Record{Seq: 2, Peers: []sim.RoundMsg{sampleRound(2)}}))
	f.Add(encodeHello(hello{Proc: 1, NextRecv: 7}))
	f.Add([]byte{frameRound})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		decodeHello(b) // must not panic
		if m, err := decodeRound(b); err == nil {
			enc := encodeRound(m)
			m2, err := decodeRound(enc)
			if err != nil {
				t.Fatalf("re-decode of accepted round failed: %v", err)
			}
			if !bytes.Equal(enc, encodeRound(m2)) {
				t.Fatal("canonical round encoding is not stable")
			}
		}
		if rec, err := decodeRecord(b); err == nil {
			enc := encodeRecord(rec)
			if _, err := decodeRecord(enc); err != nil {
				t.Fatalf("re-decode of accepted record failed: %v", err)
			}
		}
	})
}
