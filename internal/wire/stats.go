package wire

import (
	"sync/atomic"

	"wgtt/internal/sim"
)

// This file is the transport's introspection surface: cheap atomic
// counters and an exchange wall-time histogram, readable from any
// goroutine while the sim goroutine exchanges. Everything here is
// wall-clock or connection-lifecycle state — nondeterministic by nature
// — so none of it may enter the telemetry registry (whose snapshots are
// a pure function of the simulated schedule and are byte-compared
// across process layouts). wgtt-serve surfaces it through /metrics
// extra samples, /healthz and /varz instead.

// Stats is a point-in-time copy of the transport counters.
type Stats struct {
	Reconnects int64 `json:"reconnects"`  // connection re-establishments (first connect excluded)
	Resends    int64 `json:"resends"`     // round frames replayed on reconnect
	DedupDrops int64 `json:"dedup_drops"` // duplicate round frames discarded by sequence
	BytesTx    int64 `json:"bytes_tx"`    // round-frame bytes written, length prefix included
	BytesRx    int64 `json:"bytes_rx"`    // frame bytes read, length prefix included

	// Exchange wall-time histogram: how long Exchange blocked waiting
	// for every peer's round — the distributed run's barrier wait.
	Exchanges       int64   `json:"exchanges"`
	ExchangeSumNs   int64   `json:"exchange_sum_ns"`
	ExchangeMaxNs   int64   `json:"exchange_max_ns"`
	ExchangeBuckets []int64 `json:"exchange_buckets"` // per sim.WaitBoundsNs, last = overflow
}

// tstats is the live atomic form embedded in Transport.
type tstats struct {
	reconnects, resends, dedupDrops atomic.Int64
	bytesTx, bytesRx                atomic.Int64
	exchanges, exchSumNs, exchMaxNs atomic.Int64
	exchBuckets                     [8]atomic.Int64 // len(sim.WaitBoundsNs)+1
}

// observeExchange folds one Exchange's wall duration into the histogram.
func (s *tstats) observeExchange(ns int64) {
	s.exchanges.Add(1)
	s.exchSumNs.Add(ns)
	for {
		max := s.exchMaxNs.Load()
		if ns <= max || s.exchMaxNs.CompareAndSwap(max, ns) {
			break
		}
	}
	bi := len(sim.WaitBoundsNs)
	for i, b := range sim.WaitBoundsNs {
		if ns <= b {
			bi = i
			break
		}
	}
	s.exchBuckets[bi].Add(1)
}

// Stats returns a consistent-enough copy of the counters (each field is
// individually atomic; cross-field skew of an in-flight exchange is
// acceptable for monitoring).
func (t *Transport) Stats() Stats {
	s := Stats{
		Reconnects:    t.stats.reconnects.Load(),
		Resends:       t.stats.resends.Load(),
		DedupDrops:    t.stats.dedupDrops.Load(),
		BytesTx:       t.stats.bytesTx.Load(),
		BytesRx:       t.stats.bytesRx.Load(),
		Exchanges:     t.stats.exchanges.Load(),
		ExchangeSumNs: t.stats.exchSumNs.Load(),
		ExchangeMaxNs: t.stats.exchMaxNs.Load(),
	}
	s.ExchangeBuckets = make([]int64, len(t.stats.exchBuckets))
	for i := range t.stats.exchBuckets {
		s.ExchangeBuckets[i] = t.stats.exchBuckets[i].Load()
	}
	return s
}

// PeerState is one peer's connection health.
type PeerState struct {
	Proc      int   `json:"proc"`
	Connected bool  `json:"connected"`
	NextRecv  int64 `json:"next_recv"` // next inbound exchange sequence expected
	Retained  int64 `json:"retained"`  // unacknowledged round frames held for resend
}

// PeerStates reports every peer's connection state in process-index
// order (this process itself is omitted).
func (t *Transport) PeerStates() []PeerState {
	var out []PeerState
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		out = append(out, PeerState{
			Proc:      p.idx,
			Connected: p.conn != nil,
			NextRecv:  p.nextRecv,
			Retained:  int64(len(p.sent)),
		})
		p.mu.Unlock()
	}
	return out
}
