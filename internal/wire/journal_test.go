package wire

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"wgtt/internal/sim"
)

// TestJournalRecordReplay records a live 2-process exchange stream on
// one side, then replays a prefix through a ReplayBus and verifies the
// replayed messages are byte-identical to what the transport delivered
// — the property checkpoint/restore determinism rests on.
func TestJournalRecordReplay(t *testing.T) {
	const rounds = 20
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, testDigest)
	if err != nil {
		t.Fatal(err)
	}
	ts := startMesh(t, 2, nil)
	jb := &JournalBus{Bus: ts[0], J: j}

	var lived [][]sim.RoundMsg
	errc := make(chan error, 1)
	go func() { // proc 1 drives the raw transport
		for seq := int64(0); seq < rounds; seq++ {
			if _, err := ts[1].Exchange(testRound(1, seq)); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for seq := int64(0); seq < rounds; seq++ {
		out, err := jb.Exchange(testRound(0, seq))
		if err != nil {
			t.Fatalf("exchange %d: %v", seq, err)
		}
		lived = append(lived, out)
	}
	if err := <-errc; err != nil {
		t.Fatalf("proc 1: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Full read-back matches the live stream.
	recs, _, err := ReadJournal(path, testDigest, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != rounds {
		t.Fatalf("journal has %d records, want %d", len(recs), rounds)
	}
	for i, rec := range recs {
		if rec.Seq != int64(i) || len(rec.Peers) != 1 {
			t.Fatalf("record %d: seq %d with %d peers", i, rec.Seq, len(rec.Peers))
		}
		if !bytes.Equal(encodeRound(rec.Peers[0]), encodeRound(lived[i][0])) {
			t.Fatalf("record %d differs from the live exchange", i)
		}
	}

	// Prefix replay: the first 12 exchanges come back verbatim.
	const k = 12
	prefix, offset, err := ReadJournal(path, testDigest, k)
	if err != nil {
		t.Fatal(err)
	}
	rb := NewReplayBus(prefix)
	for seq := int64(0); seq < k; seq++ {
		out, err := rb.Exchange(testRound(0, seq))
		if err != nil {
			t.Fatalf("replay %d: %v", seq, err)
		}
		if !bytes.Equal(encodeRound(out[0]), encodeRound(lived[seq][0])) {
			t.Fatalf("replay %d differs from the live exchange", seq)
		}
	}
	if rb.Remaining() != 0 {
		t.Fatalf("%d records left after replay", rb.Remaining())
	}
	if _, err := rb.Exchange(testRound(0, k)); err == nil {
		t.Fatal("replay past the recorded prefix succeeded")
	}

	// Out-of-step replay is rejected.
	rb2 := NewReplayBus(prefix)
	if _, err := rb2.Exchange(testRound(0, 5)); err == nil {
		t.Fatal("replay accepted a mismatched sequence number")
	}

	// Truncate-and-append: resume recording after record k.
	j2, err := OpenJournalAppend(path, offset)
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Seq: k, Peers: []sim.RoundMsg{testRound(1, k)}}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, _, err := ReadJournal(path, testDigest, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != k+1 {
		t.Fatalf("after truncate+append: %d records, want %d", len(recs2), k+1)
	}
	if !bytes.Equal(encodeRecord(recs2[k]), encodeRecord(extra)) {
		t.Fatal("appended record did not survive the truncate")
	}

	// A different configuration cannot consume this journal.
	var other [32]byte
	copy(other[:], "different-config")
	if _, _, err := ReadJournal(path, other, -1); err == nil {
		t.Fatal("journal read accepted a mismatched digest")
	}
	// Asking for more records than exist is an explicit error.
	if _, _, err := ReadJournal(path, testDigest, 1000); err == nil {
		t.Fatal("journal read satisfied an oversized prefix request")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	c := Checkpoint{Exchanges: 37, At: 123456, Offset: 8899, Digest: DigestHex(testDigest)}
	if err := WriteCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path, testDigest)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("checkpoint round trip: %+v -> %+v", c, got)
	}
	var other [32]byte
	if _, err := ReadCheckpoint(path, other); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("checkpoint read accepted a mismatched digest: %v", err)
	}
}
