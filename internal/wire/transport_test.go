package wire

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wgtt/internal/deploy"
	"wgtt/internal/sim"
)

var testDigest = func() [32]byte {
	var d [32]byte
	copy(d[:], "wire-transport-test")
	return d
}()

func udsAddrs(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("p%d.sock", i))
	}
	return addrs
}

// startMesh brings up n transports over Unix sockets in-process.
func startMesh(t *testing.T, n int, mutate func(i int, c *Config)) []*Transport {
	t.Helper()
	addrs := udsAddrs(t, n)
	ts := make([]*Transport, n)
	for i := range ts {
		cfg := Config{
			Self:            i,
			Addrs:           addrs,
			Digest:          testDigest,
			ExchangeTimeout: 20 * time.Second,
			Logf:            t.Logf,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		tr, err := New(cfg)
		if err != nil {
			t.Fatalf("New(proc %d): %v", i, err)
		}
		t.Cleanup(func() { tr.Close() })
		ts[i] = tr
	}
	return ts
}

// testRound is the deterministic payload proc sends for exchange seq;
// Boxes[0].Box encodes the sender so receivers can verify provenance.
func testRound(proc int, seq int64) sim.RoundMsg {
	return sim.RoundMsg{
		Seq:     seq,
		Next:    sim.Time(seq*100 + int64(proc)),
		HasNext: true,
		Boxes: []sim.BoxBatch{{Box: proc, Envelopes: []sim.WireEnvelope{{
			At:   sim.Time(seq),
			Kind: 9,
			Data: []byte(fmt.Sprintf("proc %d round %d", proc, seq)),
		}}}},
	}
}

// runExchanges drives every transport through rounds lockstep exchanges
// and verifies each receives every peer's exact payload, in process-
// index order, with no loss, duplication, or reordering.
func runExchanges(t *testing.T, ts []*Transport, rounds int64) {
	t.Helper()
	errs := make([]error, len(ts))
	var wg sync.WaitGroup
	for p := range ts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for seq := int64(0); seq < rounds; seq++ {
				out, err := ts[p].Exchange(testRound(p, seq))
				if err != nil {
					errs[p] = fmt.Errorf("exchange %d: %w", seq, err)
					return
				}
				var wantProcs []int
				for q := range ts {
					if q != p {
						wantProcs = append(wantProcs, q)
					}
				}
				if len(out) != len(wantProcs) {
					errs[p] = fmt.Errorf("exchange %d: %d peer messages, want %d", seq, len(out), len(wantProcs))
					return
				}
				for k, m := range out {
					want := testRound(wantProcs[k], seq)
					if !bytes.Equal(encodeRound(m), encodeRound(want)) {
						errs[p] = fmt.Errorf("exchange %d: peer slot %d: got %+v, want %+v", seq, k, m, want)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Errorf("proc %d: %v", p, err)
		}
	}
}

func TestTransportExchange(t *testing.T) {
	runExchanges(t, startMesh(t, 3, nil), 50)
}

// faultSeqsFromSchedule maps a deploy.FaultSchedule's outage windows
// onto exchange sequence numbers: with conservative sync, exchange seq
// happens at virtual time ~seq*lookahead, so a trunk blackout window
// translates to severing the transport during the matching rounds.
func faultSeqsFromSchedule(f deploy.FaultSchedule, lookahead sim.Duration) func(int64) bool {
	return func(seq int64) bool {
		at := time.Duration(seq) * lookahead
		for _, o := range f.Outages {
			if at >= o.Start && at < o.End {
				return true
			}
		}
		return false
	}
}

// TestTransportReconnectMidRound severs the connection mid-run — after
// round frames are already on the wire — at sequence numbers derived
// from a deploy.FaultSchedule, and requires the exchange stream to
// come through lossless anyway via reconnect, resend, and dedup.
func TestTransportReconnectMidRound(t *testing.T) {
	const lookahead = 200 * time.Microsecond // deploy.Trunk default PropDelay
	sched := deploy.FaultSchedule{Outages: []deploy.Outage{
		{A: -1, B: -1, Start: 1 * time.Millisecond, End: 1400 * time.Microsecond},
		{A: -1, B: -1, Start: 5 * time.Millisecond, End: 5600 * time.Microsecond},
	}}
	if err := sched.Validate(0); err != nil {
		t.Fatal(err)
	}
	var kills atomic.Int64
	match := faultSeqsFromSchedule(sched, lookahead)
	ts := startMesh(t, 2, func(i int, c *Config) {
		if i == 1 { // the dialing side severs; it must also redial
			c.FaultSeqs = func(seq int64) bool {
				if !match(seq) {
					return false
				}
				kills.Add(1)
				return true
			}
		}
	})
	runExchanges(t, ts, 40) // rounds 0..39 span both outage windows
	if got := kills.Load(); got == 0 {
		t.Fatal("fault hook never fired; the reconnect path was not exercised")
	} else {
		t.Logf("connection severed %d times", got)
	}
}

func TestTransportDigestMismatch(t *testing.T) {
	var other [32]byte
	copy(other[:], "some-other-config")
	ts := startMesh(t, 2, func(i int, c *Config) {
		c.ExchangeTimeout = 5 * time.Second
		if i == 1 {
			c.Digest = other
		}
	})
	_, err := ts[0].Exchange(testRound(0, 0))
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("listener accepted a peer with a different config digest: err=%v", err)
	}
}

func TestTransportLateStartPeer(t *testing.T) {
	// The dialer's first exchanges happen before the listener exists:
	// frames are retained and must be delivered on the first handshake.
	addrs := udsAddrs(t, 2)
	mk := func(self int) *Transport {
		tr, err := New(Config{Self: self, Addrs: addrs, Digest: testDigest,
			ExchangeTimeout: 20 * time.Second, Logf: t.Logf})
		if err != nil {
			t.Fatalf("New(proc %d): %v", self, err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	t1 := mk(1) // dialer comes up first; proc 0's socket doesn't exist yet
	done := make(chan error, 1)
	go func() {
		out, err := t1.Exchange(testRound(1, 0))
		if err == nil && len(out) != 1 {
			err = fmt.Errorf("got %d peer messages, want 1", len(out))
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let a few dial attempts fail
	t0 := mk(0)
	if _, err := t0.Exchange(testRound(0, 0)); err != nil {
		t.Fatalf("late listener exchange: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("early dialer exchange: %v", err)
	}
}

func TestSplitAddr(t *testing.T) {
	if net, a, err := splitAddr("unix:/tmp/x.sock"); err != nil || net != "unix" || a != "/tmp/x.sock" {
		t.Fatalf("unix: got (%q, %q, %v)", net, a, err)
	}
	if net, a, err := splitAddr("tcp:127.0.0.1:7100"); err != nil || net != "tcp" || a != "127.0.0.1:7100" {
		t.Fatalf("tcp: got (%q, %q, %v)", net, a, err)
	}
	if _, _, err := splitAddr("quic:nope"); err == nil {
		t.Fatal("splitAddr accepted an unknown scheme")
	}
}
