package wire

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"wgtt/internal/sim"
)

// Config describes one process's endpoint of a partitioned run.
type Config struct {
	// Self is this process's index into Addrs.
	Self int
	// Addrs lists every process's listen address in process-index
	// order: "unix:/path/to.sock" or "tcp:host:port". All processes
	// must agree on this list.
	Addrs []string
	// Digest fingerprints the run configuration (scenario, seed,
	// partition). Connections between processes with different
	// digests are refused — an SPMD run is only deterministic when
	// every process built the identical network.
	Digest [32]byte
	// StartSeq is the first exchange sequence number this process
	// will send and expects to receive: 0 for a fresh run, the
	// checkpoint's exchange count after a restore.
	StartSeq int64
	// ExchangeTimeout bounds how long Exchange waits for each peer's
	// round message, reconnects included. Zero means 30s.
	ExchangeTimeout time.Duration
	// FaultSeqs is a test hook: after a round frame with a matching
	// sequence number is written, the connection it was written on is
	// severed, exercising the reconnect-resend-dedup path mid-round.
	FaultSeqs func(seq int64) bool
	// Logf, if set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Transport is a sim.PeerBus over a full mesh of stream connections,
// one per peer process. For each pair the lower-index process listens
// and the higher-index process dials, so every pair owns exactly one
// connection. Exchange never fails on a broken connection: outbound
// round frames are retained until implicitly acknowledged (a peer
// sending round S proves it received everything below S), the dialing
// side redials with capped exponential backoff, and the handshake's
// next-receive sequence tells the other side where to resume; the
// receiver drops duplicate sequence numbers. Only protocol violations
// — digest mismatch, sequence gap, malformed frames — are terminal.
type Transport struct {
	cfg     Config
	timeout time.Duration
	ln      net.Listener
	peers   []*peer // indexed by process; peers[cfg.Self] == nil
	stats   tstats  // atomic introspection counters (stats.go)

	closed    chan struct{}
	closeOnce sync.Once
	err       error // written once before closed is closed
}

// errClosed reports a Close-initiated shutdown (as opposed to a fatal
// protocol error, which carries its own message).
var errClosed = errors.New("wire: transport closed")

type peer struct {
	t      *Transport
	idx    int
	dialer bool // we dial this peer (idx < cfg.Self)

	// mu guards conn, sent, and nextRecv; never held across network
	// I/O. wmu serializes writers (Exchange vs. reconnect resend) and
	// is never held while taking mu... rather, wmu is taken first.
	mu       sync.Mutex
	conn     net.Conn
	sent     map[int64][]byte // retained round frames, by sequence
	nextRecv int64            // next inbound sequence we will accept
	everUp   bool             // a connection has been installed before (reconnect counting)

	wmu sync.Mutex

	inbox chan sim.RoundMsg
}

// New opens the listener, begins dialing lower-index peers, and
// returns. Connections are established lazily: an Exchange made before
// a peer is reachable simply retains its frame and delivers it on the
// first successful handshake.
func New(cfg Config) (*Transport, error) {
	if cfg.Self < 0 || cfg.Self >= len(cfg.Addrs) {
		return nil, fmt.Errorf("wire: self index %d outside %d-process address list", cfg.Self, len(cfg.Addrs))
	}
	if len(cfg.Addrs) < 2 {
		return nil, fmt.Errorf("wire: %d-process address list; a partitioned run needs at least 2", len(cfg.Addrs))
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	t := &Transport{
		cfg:     cfg,
		timeout: cfg.ExchangeTimeout,
		closed:  make(chan struct{}),
		peers:   make([]*peer, len(cfg.Addrs)),
	}
	if t.timeout == 0 {
		t.timeout = 30 * time.Second
	}
	network, addr, err := splitAddr(cfg.Addrs[cfg.Self])
	if err != nil {
		return nil, err
	}
	if network == "unix" {
		os.Remove(addr) // stale socket from a previous run
	}
	t.ln, err = net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Addrs[cfg.Self], err)
	}
	for i := range cfg.Addrs {
		if i == cfg.Self {
			continue
		}
		p := &peer{
			t:        t,
			idx:      i,
			dialer:   i < cfg.Self,
			sent:     make(map[int64][]byte),
			nextRecv: cfg.StartSeq,
			inbox:    make(chan sim.RoundMsg, 4),
		}
		t.peers[i] = p
		if p.dialer {
			go p.connectLoop()
		}
	}
	go t.acceptLoop()
	return t, nil
}

// splitAddr parses "unix:/path" and "tcp:host:port" endpoint syntax.
func splitAddr(a string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(a, "unix:"):
		return "unix", a[len("unix:"):], nil
	case strings.HasPrefix(a, "tcp:"):
		return "tcp", a[len("tcp:"):], nil
	}
	return "", "", fmt.Errorf("wire: address %q: want unix:/path or tcp:host:port", a)
}

// Close tears down the listener and every connection. Safe to call
// more than once and concurrently with Exchange.
func (t *Transport) Close() error {
	t.shutdown(errClosed)
	return nil
}

// shutdown latches the terminal error and severs everything. The first
// caller wins; err is published to other goroutines by the close.
func (t *Transport) shutdown(err error) {
	t.closeOnce.Do(func() {
		t.err = err
		close(t.closed)
		t.ln.Close()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			if p.conn != nil {
				p.conn.Close()
			}
			p.mu.Unlock()
		}
	})
}

// Exchange implements sim.PeerBus: broadcast our round message to
// every peer, then collect one matching-sequence message from each,
// returned in process-index order.
func (t *Transport) Exchange(m sim.RoundMsg) ([]sim.RoundMsg, error) {
	frame := encodeRound(m)
	for _, p := range t.peers {
		if p != nil {
			p.send(m.Seq, frame)
		}
	}
	t0 := time.Now()
	defer func() { t.stats.observeExchange(time.Since(t0).Nanoseconds()) }()
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	out := make([]sim.RoundMsg, 0, len(t.peers)-1)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		select {
		case r := <-p.inbox:
			if r.Seq != m.Seq {
				err := fmt.Errorf("wire: peer %d sent round %d during exchange %d", p.idx, r.Seq, m.Seq)
				t.shutdown(err)
				return nil, err
			}
			out = append(out, r)
		case <-t.closed:
			return nil, t.err
		case <-timer.C:
			err := fmt.Errorf("wire: exchange %d: no round from peer %d within %v", m.Seq, p.idx, t.timeout)
			t.shutdown(err)
			return nil, err
		}
	}
	return out, nil
}

// send retains the frame for resend and writes it if a connection is
// up. A write failure is not an Exchange error: the frame stays
// retained and the reconnect handshake replays it.
func (p *peer) send(seq int64, frame []byte) {
	p.mu.Lock()
	p.sent[seq] = frame
	p.mu.Unlock()

	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		return
	}
	if err := writeFrame(conn, frame); err != nil {
		p.t.cfg.Logf("wire: write to peer %d: %v", p.idx, err)
		conn.Close()
		p.connLost(conn)
		return
	}
	p.t.stats.bytesTx.Add(int64(len(frame)) + 4)
	if f := p.t.cfg.FaultSeqs; f != nil && f(seq) {
		p.t.cfg.Logf("wire: fault hook severing peer %d after seq %d", p.idx, seq)
		conn.Close()
		p.connLost(conn)
	}
}

// connLost clears the connection if it is still the one that failed
// (a replacement may already be installed) and, on the dialing side,
// starts the redial loop.
func (p *peer) connLost(conn net.Conn) {
	p.mu.Lock()
	if p.conn != conn {
		p.mu.Unlock()
		return
	}
	p.conn = nil
	p.mu.Unlock()
	select {
	case <-p.t.closed:
		return
	default:
	}
	if p.dialer {
		go p.connectLoop()
	}
}

// connectLoop dials the peer with capped exponential backoff until a
// handshake succeeds or the transport closes. Only the higher-index
// process of a pair dials.
func (p *peer) connectLoop() {
	network, addr, err := splitAddr(p.t.cfg.Addrs[p.idx])
	if err != nil {
		p.t.shutdown(err)
		return
	}
	backoff := time.Millisecond
	for {
		select {
		case <-p.t.closed:
			return
		default:
		}
		conn, err := net.DialTimeout(network, addr, time.Second)
		if err == nil {
			err = p.dialHandshake(conn)
			if err == nil {
				return
			}
			conn.Close()
			var fatal *fatalError
			if errors.As(err, &fatal) {
				p.t.shutdown(fatal.err)
				return
			}
		}
		p.t.cfg.Logf("wire: dial peer %d: %v (retrying in %v)", p.idx, err, backoff)
		select {
		case <-p.t.closed:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
	}
}

// fatalError marks handshake failures that retrying cannot fix.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }

// dialHandshake runs the client side of the handshake: send our hello,
// read and verify the peer's, then install the connection.
func (p *peer) dialHandshake(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	p.mu.Lock()
	next := p.nextRecv
	p.mu.Unlock()
	if err := writeFrame(conn, encodeHello(hello{Proc: p.t.cfg.Self, Digest: p.t.cfg.Digest, NextRecv: next})); err != nil {
		return err
	}
	b, err := readFrame(conn)
	if err != nil {
		return err
	}
	h, err := decodeHello(b)
	if err != nil {
		return &fatalError{err}
	}
	if h.Proc != p.idx {
		return &fatalError{fmt.Errorf("wire: %s answered as process %d, want %d", p.t.cfg.Addrs[p.idx], h.Proc, p.idx)}
	}
	if h.Digest != p.t.cfg.Digest {
		return &fatalError{fmt.Errorf("wire: config digest mismatch with process %d — processes are not running the same scenario", p.idx)}
	}
	conn.SetDeadline(time.Time{})
	p.install(conn, h.NextRecv)
	return nil
}

// acceptLoop runs the server side: each inbound connection identifies
// itself with a hello; valid ones replace the peer's connection.
func (t *Transport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.shutdown(fmt.Errorf("wire: accept: %w", err))
			}
			return
		}
		go t.handleIncoming(conn)
	}
}

func (t *Transport) handleIncoming(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	b, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	h, err := decodeHello(b)
	if err != nil {
		t.cfg.Logf("wire: rejecting connection: %v", err)
		conn.Close()
		return
	}
	if h.Proc <= t.cfg.Self || h.Proc >= len(t.peers) {
		t.cfg.Logf("wire: rejecting hello from process %d (not a dialing peer of %d)", h.Proc, t.cfg.Self)
		conn.Close()
		return
	}
	if h.Digest != t.cfg.Digest {
		t.shutdown(fmt.Errorf("wire: config digest mismatch with process %d — processes are not running the same scenario", h.Proc))
		conn.Close()
		return
	}
	p := t.peers[h.Proc]
	p.mu.Lock()
	next := p.nextRecv
	p.mu.Unlock()
	if err := writeFrame(conn, encodeHello(hello{Proc: t.cfg.Self, Digest: t.cfg.Digest, NextRecv: next})); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	p.install(conn, h.NextRecv)
}

// install makes conn the peer's live connection, replays retained
// frames from the peer's requested resume sequence, and starts the
// read loop. Holding wmu across the replay keeps a concurrent
// Exchange from interleaving a newer frame ahead of the replayed ones.
func (p *peer) install(conn net.Conn, resendFrom int64) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.mu.Lock()
	old := p.conn
	p.conn = conn
	if p.everUp {
		p.t.stats.reconnects.Add(1)
	}
	p.everUp = true
	var seqs []int64
	for s := range p.sent {
		if s >= resendFrom {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	frames := make([][]byte, len(seqs))
	for i, s := range seqs {
		frames[i] = p.sent[s]
	}
	p.mu.Unlock()
	if old != nil {
		old.Close()
	}
	for i, f := range frames {
		if err := writeFrame(conn, f); err != nil {
			p.t.cfg.Logf("wire: resend seq %d to peer %d: %v", seqs[i], p.idx, err)
			conn.Close()
			p.connLost(conn)
			return
		}
		p.t.stats.resends.Add(1)
		p.t.stats.bytesTx.Add(int64(len(f)) + 4)
	}
	go p.readLoop(conn)
}

// readLoop owns inbound frames for one connection: dedup by sequence,
// implicit-ack pruning of our retained frames, and delivery to the
// exchange inbox. Exits when the connection breaks (triggering redial
// on the dialing side) or the transport closes.
func (p *peer) readLoop(conn net.Conn) {
	for {
		b, err := readFrame(conn)
		if err != nil {
			conn.Close()
			p.connLost(conn)
			return
		}
		p.t.stats.bytesRx.Add(int64(len(b)) + 4)
		if len(b) > 0 && b[0] == frameHello {
			continue // late duplicate handshake; harmless
		}
		m, err := decodeRound(b)
		if err != nil {
			p.t.shutdown(fmt.Errorf("wire: peer %d: %w", p.idx, err))
			return
		}
		p.mu.Lock()
		if m.Seq < p.nextRecv {
			p.mu.Unlock()
			p.t.stats.dedupDrops.Add(1)
			continue // duplicate after a resend
		}
		if m.Seq > p.nextRecv {
			want := p.nextRecv
			p.mu.Unlock()
			p.t.shutdown(fmt.Errorf("wire: peer %d skipped from round %d to %d", p.idx, want, m.Seq))
			return
		}
		p.nextRecv++
		// The peer sending round S proves it completed exchange S-1,
		// which required our frames below S: drop them.
		for s := range p.sent {
			if s < m.Seq {
				delete(p.sent, s)
			}
		}
		p.mu.Unlock()
		select {
		case p.inbox <- m:
		case <-p.t.closed:
			return
		}
	}
}
