package wire

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"wgtt/internal/sim"
)

// End-to-end: a real sim.Coordinator partition exchanging typed
// envelopes over real Unix-domain sockets must be bit-identical to the
// serial in-process run, and a journal of one process's exchanges must
// replay to the same result.

const kindE2E = sim.EnvelopeKind(2000)

func init() {
	sim.RegisterEnvelope(kindE2E, sim.EnvelopeCodec{
		Name: "wire-e2e-test",
		Encode: func(payload any, b []byte) []byte {
			return binary.BigEndian.AppendUint64(b, payload.(uint64))
		},
		Decode: func(b []byte) (any, error) {
			if len(b) != 8 {
				return nil, fmt.Errorf("wire-e2e-test: %d bytes", len(b))
			}
			return binary.BigEndian.Uint64(b), nil
		},
	})
}

// pingPong is a two-domain SPMD replica: each domain ticks every
// lookahead and every third tick posts a seeded draw to the other
// side; receipts are logged with times. The stitched logs are the
// run's signature.
type pingPong struct {
	c    *sim.Coordinator
	doms [2]*sim.Domain
	logs [2][]string
}

func newPingPong(seed int64) *pingPong {
	const lookahead = time.Millisecond
	pp := &pingPong{c: sim.NewCoordinator(lookahead, false)}
	pp.doms[0] = pp.c.NewDomain("left")
	pp.doms[1] = pp.c.NewDomain("right")
	fwd := pp.c.Connect(pp.doms[0], pp.doms[1], lookahead)
	rev := pp.c.Connect(pp.doms[1], pp.doms[0], lookahead)
	mbs := [2]*sim.Mailbox{fwd, rev}
	for i := range pp.doms {
		i := i
		d := pp.doms[i]
		rng := sim.NewRNG(seed).Fork(fmt.Sprintf("pp%d", i))
		mbs[1-i].OnReceive(kindE2E, func(payload any) {
			pp.logs[i] = append(pp.logs[i],
				fmt.Sprintf("d%d recv %d @%v", i, payload.(uint64), d.Loop.Now()))
		})
		var tick func(n int)
		tick = func(n int) {
			if n%3 == 0 {
				mbs[i].Post(d.Loop.Now().Add(lookahead), sim.Envelope{Kind: kindE2E, Payload: rng.Uint64()})
			}
			d.Loop.After(lookahead, func() { tick(n + 1) })
		}
		d.Loop.After(lookahead, func() { tick(0) })
	}
	return pp
}

func (pp *pingPong) signature() []string {
	var sig []string
	for i := range pp.logs {
		sig = append(sig, pp.logs[i]...)
	}
	return sig
}

// stitch builds the authoritative signature of a partitioned run from
// each domain's owning replica.
func stitch(reps []*pingPong) []string {
	var sig []string
	for i := range reps[0].logs {
		sig = append(sig, reps[i%len(reps)].logs[i]...)
	}
	return sig
}

func TestRunPartitionedOverWire(t *testing.T) {
	const until = sim.Time(40 * time.Millisecond)
	for seed := int64(1); seed <= 2; seed++ {
		serial := newPingPong(seed)
		serial.c.Run(until)
		want := serial.signature()
		if len(want) == 0 {
			t.Fatal("serial run produced an empty signature")
		}

		ts := startMesh(t, 2, nil)
		reps := []*pingPong{newPingPong(seed), newPingPong(seed)}
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				own := func(d *sim.Domain) bool { return d == reps[p].doms[p] }
				errs[p] = reps[p].c.RunPartitioned(until, own, ts[p])
			}(p)
		}
		wg.Wait()
		for p, err := range errs {
			if err != nil {
				t.Fatalf("seed %d: proc %d: %v", seed, p, err)
			}
		}
		if got := stitch(reps); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: partitioned-over-wire signature differs from serial\nserial: %v\n  wire: %v",
				seed, want, got)
		}
		for p := 0; p < 2; p++ {
			ts[p].Close()
		}
	}
}

// TestReplayReproducesPartitionedRun journals proc 0's live exchanges,
// then re-runs proc 0 alone against the journal and requires the same
// domain log — checkpoint/restore in miniature.
func TestReplayReproducesPartitionedRun(t *testing.T) {
	const seed = int64(3)
	const until = sim.Time(40 * time.Millisecond)
	path := filepath.Join(t.TempDir(), "e2e.journal")
	j, err := CreateJournal(path, testDigest)
	if err != nil {
		t.Fatal(err)
	}

	ts := startMesh(t, 2, nil)
	reps := []*pingPong{newPingPong(seed), newPingPong(seed)}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var bus sim.PeerBus = ts[p]
			if p == 0 {
				bus = &JournalBus{Bus: ts[p], J: j}
			}
			own := func(d *sim.Domain) bool { return d == reps[p].doms[p] }
			errs[p] = reps[p].c.RunPartitioned(until, own, bus)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, _, err := ReadJournal(path, testDigest, -1)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != reps[0].c.Exchanges() {
		t.Fatalf("journal has %d records, coordinator made %d exchanges", len(recs), reps[0].c.Exchanges())
	}

	replay := newPingPong(seed)
	own := func(d *sim.Domain) bool { return d == replay.doms[0] }
	if err := replay.c.RunPartitioned(until, own, NewReplayBus(recs)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reflect.DeepEqual(replay.logs[0], reps[0].logs[0]) {
		t.Fatalf("replayed domain log differs from the live run\nlive:   %v\nreplay: %v",
			reps[0].logs[0], replay.logs[0])
	}
}
