// Package wire carries the sim coordinator's round protocol between
// processes: length-prefixed frames over Unix-domain or TCP sockets,
// per-peer sequence numbers with resend-on-reconnect, and a journal
// that makes a partitioned run checkpointable by deterministic replay.
//
// Framing. Every frame is [u32 big-endian payload length][payload];
// payload[0] is the frame type. A hello frame authenticates a
// connection (magic, protocol version, sender process index, config
// digest) and carries the sequence number the sender expects to
// receive next, which doubles as the resend request after a reconnect.
// A round frame is one sim.RoundMsg: sequence number, next-event
// horizon, flush marker, and the per-mailbox envelope batches.
//
// All integers are big-endian fixed width or uvarint as noted; times
// and sequence numbers are two's-complement int64 in a u64 slot.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"wgtt/internal/sim"
)

// Protocol constants.
const (
	magic        = "WGTT"
	version      = 2 // v2: per-envelope causal trace id
	frameHello   = 1
	frameRound   = 2
	maxFrameSize = 64 << 20 // hard cap against corrupt length prefixes
)

// hello is the per-connection handshake.
type hello struct {
	Proc     int
	Digest   [32]byte
	NextRecv int64
}

func encodeHello(h hello) []byte {
	b := make([]byte, 0, 4+4+2+2+32+8)
	b = append(b, frameHello)
	b = append(b, magic...)
	b = binary.BigEndian.AppendUint16(b, version)
	b = binary.BigEndian.AppendUint16(b, uint16(h.Proc))
	b = append(b, h.Digest[:]...)
	return binary.BigEndian.AppendUint64(b, uint64(h.NextRecv))
}

func decodeHello(b []byte) (hello, error) {
	var h hello
	if len(b) != 1+4+2+2+32+8 || b[0] != frameHello {
		return h, fmt.Errorf("wire: malformed hello (%d bytes)", len(b))
	}
	b = b[1:]
	if string(b[:4]) != magic {
		return h, errors.New("wire: bad magic — peer is not a wgtt trunk endpoint")
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != version {
		return h, fmt.Errorf("wire: protocol version %d, want %d", v, version)
	}
	h.Proc = int(binary.BigEndian.Uint16(b[6:]))
	copy(h.Digest[:], b[8:40])
	h.NextRecv = int64(binary.BigEndian.Uint64(b[40:]))
	return h, nil
}

// encodeRound serializes one RoundMsg as a round-frame payload.
func encodeRound(m sim.RoundMsg) []byte {
	size := 1 + 8 + 1 + 8 + binary.MaxVarintLen64
	for _, b := range m.Boxes {
		size += 2*binary.MaxVarintLen64 + len(b.Envelopes)*(8+2+2*binary.MaxVarintLen64)
		for _, e := range b.Envelopes {
			size += len(e.Data)
		}
	}
	b := make([]byte, 0, size)
	b = append(b, frameRound)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Seq))
	var flags byte
	if m.HasNext {
		flags |= 1
	}
	if m.Flush {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Next))
	b = binary.AppendUvarint(b, uint64(len(m.Boxes)))
	for _, box := range m.Boxes {
		b = binary.AppendUvarint(b, uint64(box.Box))
		b = binary.AppendUvarint(b, uint64(len(box.Envelopes)))
		for _, e := range box.Envelopes {
			b = binary.BigEndian.AppendUint64(b, uint64(e.At))
			b = binary.BigEndian.AppendUint16(b, uint16(e.Kind))
			b = binary.AppendUvarint(b, e.Trace)
			b = binary.AppendUvarint(b, uint64(len(e.Data)))
			b = append(b, e.Data...)
		}
	}
	return b
}

// byteReader walks a payload with bounds checks; any overrun latches
// an error instead of panicking (the decoder is a fuzz target).
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = errors.New("wire: truncated frame")
	}
	r.b = nil
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *byteReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// decodeRound parses a round-frame payload. It validates structure
// only; mailbox indices and envelope kinds are checked by the
// coordinator, which knows the domain graph.
func decodeRound(b []byte) (sim.RoundMsg, error) {
	var m sim.RoundMsg
	r := &byteReader{b: b}
	if r.byte() != frameRound {
		return m, errors.New("wire: not a round frame")
	}
	m.Seq = int64(r.u64())
	flags := r.byte()
	m.HasNext = flags&1 != 0
	m.Flush = flags&2 != 0
	m.Next = sim.Time(r.u64())
	nBoxes := r.uvarint()
	if r.err == nil && nBoxes > uint64(len(b)) {
		return m, fmt.Errorf("wire: %d boxes in a %d-byte frame", nBoxes, len(b))
	}
	for i := uint64(0); i < nBoxes && r.err == nil; i++ {
		box := sim.BoxBatch{Box: int(r.uvarint())}
		nEnv := r.uvarint()
		if r.err == nil && nEnv > uint64(len(b)) {
			return m, fmt.Errorf("wire: %d envelopes in a %d-byte frame", nEnv, len(b))
		}
		for j := uint64(0); j < nEnv && r.err == nil; j++ {
			e := sim.WireEnvelope{
				At:    sim.Time(r.u64()),
				Kind:  sim.EnvelopeKind(r.u16()),
				Trace: r.uvarint(),
			}
			dlen := r.uvarint()
			if r.err == nil && dlen > uint64(len(r.b)) {
				r.fail()
				break
			}
			e.Data = append([]byte(nil), r.take(int(dlen))...)
			box.Envelopes = append(box.Envelopes, e)
		}
		m.Boxes = append(m.Boxes, box)
	}
	if r.err != nil {
		return m, r.err
	}
	if len(r.b) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after round frame", len(r.b))
	}
	return m, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameSize {
		return nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
