package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"wgtt/internal/sim"
)

// A journal records every peer round message a process receives, in
// exchange order. Because the partitioned coordinator is deterministic
// given its inbound messages, replaying the journal through the same
// slice schedule reproduces the process's state bit for bit — that is
// the whole checkpoint/restore mechanism: a checkpoint is "replay the
// first K exchanges", not a memory dump.
//
// File format: a header frame ("WGTTJRNL", version, config digest)
// followed by one frame per exchange. Each record frame is the
// exchange sequence number, a uvarint peer count, and the peers' round
// frames (uvarint length + round payload each), in process-index
// order. All frames use the transport's u32 length prefix.

const journalMagic = "WGTTJRNL"

// Record is one exchange as seen from one process: the sequence number
// it sent and every peer's reply, in process-index order.
type Record struct {
	Seq   int64
	Peers []sim.RoundMsg
}

func encodeRecord(r Record) []byte {
	b := binary.BigEndian.AppendUint64(nil, uint64(r.Seq))
	b = binary.AppendUvarint(b, uint64(len(r.Peers)))
	for _, m := range r.Peers {
		enc := encodeRound(m)
		b = binary.AppendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
	}
	return b
}

func decodeRecord(b []byte) (Record, error) {
	var rec Record
	r := &byteReader{b: b}
	rec.Seq = int64(r.u64())
	n := r.uvarint()
	if r.err == nil && n > uint64(len(b)) {
		return rec, fmt.Errorf("wire: journal record claims %d peers", n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		l := r.uvarint()
		if r.err == nil && l > uint64(len(r.b)) {
			r.fail()
			break
		}
		enc := r.take(int(l))
		if r.err != nil {
			break
		}
		m, err := decodeRound(enc)
		if err != nil {
			return rec, err
		}
		rec.Peers = append(rec.Peers, m)
	}
	if r.err != nil {
		return rec, r.err
	}
	if len(r.b) != 0 {
		return rec, fmt.Errorf("wire: %d trailing bytes after journal record", len(r.b))
	}
	return rec, nil
}

// Journal appends exchange records to a file.
type Journal struct {
	f *os.File
	w *bufio.Writer
	// appended counts records written through this handle; atomic so
	// introspection endpoints can read the journal depth while the sim
	// goroutine appends.
	appended atomic.Int64
}

// CreateJournal truncates path and writes a fresh journal header.
func CreateJournal(path string, digest [32]byte) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, w: bufio.NewWriter(f)}
	hdr := append([]byte(journalMagic), make([]byte, 2+32)...)
	binary.BigEndian.PutUint16(hdr[8:], version)
	copy(hdr[10:], digest[:])
	if err := writeFrame(j.w, hdr); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournalAppend reopens an existing journal for appending after a
// restore: the file is truncated to offset (the byte position returned
// by ReadJournal for the replayed prefix) so records from beyond the
// checkpoint do not survive alongside their re-recorded replacements.
func OpenJournalAppend(path string, offset int64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, nil
}

// Append records one exchange. Buffered; call Sync at checkpoints.
func (j *Journal) Append(rec Record) error {
	if err := writeFrame(j.w, encodeRecord(rec)); err != nil {
		return err
	}
	j.appended.Add(1)
	return nil
}

// Records returns the number of records appended through this handle —
// the journal depth an introspection endpoint reports. Safe to call
// concurrently with Append.
func (j *Journal) Records() int64 { return j.appended.Load() }

// Offset returns the byte position just past the last appended record
// — the value Checkpoint.Offset wants. It flushes buffered records
// first so the position is stable.
func (j *Journal) Offset() (int64, error) {
	if err := j.w.Flush(); err != nil {
		return 0, err
	}
	return j.f.Seek(0, io.SeekCurrent)
}

// Sync flushes buffered records to stable storage.
func (j *Journal) Sync() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	flushErr := j.w.Flush()
	closeErr := j.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// ReadJournal reads up to max records (max < 0 reads all), verifying
// the header against digest. It returns the records and the byte
// offset just past the last one read — the truncation point for
// OpenJournalAppend when resuming from that record count.
func ReadJournal(path string, digest [32]byte, max int64) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr, err := readFrame(r)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: journal header: %w", err)
	}
	if len(hdr) != 8+2+32 || string(hdr[:8]) != journalMagic {
		return nil, 0, fmt.Errorf("wire: %s is not a wgtt journal", path)
	}
	if v := binary.BigEndian.Uint16(hdr[8:]); v != version {
		return nil, 0, fmt.Errorf("wire: journal version %d, want %d", v, version)
	}
	if !hdrDigestEqual(hdr[10:], digest) {
		return nil, 0, fmt.Errorf("wire: journal %s was recorded under a different configuration", path)
	}
	offset := int64(4 + len(hdr))
	var recs []Record
	for max < 0 || int64(len(recs)) < max {
		b, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("wire: journal record %d: %w", len(recs), err)
		}
		rec, err := decodeRecord(b)
		if err != nil {
			return nil, 0, fmt.Errorf("wire: journal record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
		offset += int64(4 + len(b))
	}
	if max >= 0 && int64(len(recs)) < max {
		return nil, 0, fmt.Errorf("wire: journal has %d records, checkpoint needs %d", len(recs), max)
	}
	return recs, offset, nil
}

func hdrDigestEqual(b []byte, digest [32]byte) bool {
	var d [32]byte
	copy(d[:], b)
	return d == digest
}

// JournalBus wraps a live PeerBus, recording every successful exchange.
type JournalBus struct {
	Bus sim.PeerBus
	J   *Journal
}

// Exchange forwards to the live bus and journals the result.
func (b *JournalBus) Exchange(m sim.RoundMsg) ([]sim.RoundMsg, error) {
	out, err := b.Bus.Exchange(m)
	if err != nil {
		return nil, err
	}
	if err := b.J.Append(Record{Seq: m.Seq, Peers: out}); err != nil {
		return nil, fmt.Errorf("wire: journaling exchange %d: %w", m.Seq, err)
	}
	return out, nil
}

// ReplayBus replays a journal prefix instead of talking to peers. The
// coordinator's own sends are checked against the recorded sequence
// numbers but otherwise discarded — determinism guarantees they match
// what was sent when the journal was recorded.
type ReplayBus struct {
	recs []Record
	pos  int
}

// NewReplayBus replays the given records in order.
func NewReplayBus(recs []Record) *ReplayBus {
	return &ReplayBus{recs: recs}
}

// Exchange returns the next recorded exchange's peer messages.
func (r *ReplayBus) Exchange(m sim.RoundMsg) ([]sim.RoundMsg, error) {
	if r.pos >= len(r.recs) {
		return nil, fmt.Errorf("wire: replay exhausted at exchange %d — checkpoint and slice schedule disagree", m.Seq)
	}
	rec := r.recs[r.pos]
	if rec.Seq != m.Seq {
		return nil, fmt.Errorf("wire: replay out of step: journal has exchange %d, coordinator sent %d", rec.Seq, m.Seq)
	}
	r.pos++
	return rec.Peers, nil
}

// Remaining reports how many recorded exchanges are left to replay.
func (r *ReplayBus) Remaining() int { return len(r.recs) - r.pos }

// Checkpoint is the sidecar metadata written next to a journal when a
// run checkpoints: restore = replay Exchanges journal records through
// the identical slice schedule up to At, then continue on a live
// transport with StartSeq = Exchanges.
type Checkpoint struct {
	// Exchanges counts the journal records the checkpoint covers.
	Exchanges int64 `json:"exchanges"`
	// At is the virtual time the checkpointed slice ended at, in
	// sim.Time ticks.
	At int64 `json:"at"`
	// Offset is the journal byte offset just past record Exchanges,
	// where appending resumes after a restore.
	Offset int64 `json:"offset"`
	// Digest is the hex form of the run's config digest.
	Digest string `json:"digest"`
}

// WriteCheckpoint writes the metadata atomically (temp file + rename).
func WriteCheckpoint(path string, c Checkpoint) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpoint reads checkpoint metadata and verifies the digest.
func ReadCheckpoint(path string, digest [32]byte) (Checkpoint, error) {
	var c Checkpoint
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("wire: checkpoint %s: %w", path, err)
	}
	if c.Digest != hex.EncodeToString(digest[:]) {
		return c, fmt.Errorf("wire: checkpoint %s was taken under a different configuration", path)
	}
	return c, nil
}

// DigestHex is the canonical string form used in Checkpoint.Digest.
func DigestHex(digest [32]byte) string { return hex.EncodeToString(digest[:]) }
