package stats

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: wgtt
cpu: AMD EPYC
BenchmarkMeanPerClientMbps
BenchmarkMeanPerClientMbps-4   	       3	 412345678 ns/op	        21.50 Mbps	  123456 B/op	    7890 allocs/op
BenchmarkEffectiveSNRdB       	 7345210	       158.8 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	wgtt	12.345s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(got), got)
	}
	r := got[0]
	if r.Name != "BenchmarkMeanPerClientMbps" || r.Procs != 4 || r.Runs != 3 {
		t.Errorf("first record header = %q/%d/%d", r.Name, r.Procs, r.Runs)
	}
	if r.NsPerOp != 412345678 || r.BytesPerOp != 123456 || r.AllocsPerOp != 7890 {
		t.Errorf("first record values = %+v", r)
	}
	if r.Metrics["Mbps"] != 21.50 {
		t.Errorf("custom metric Mbps = %v", r.Metrics["Mbps"])
	}
	r = got[1]
	if r.Name != "BenchmarkEffectiveSNRdB" || r.Procs != 1 {
		t.Errorf("second record header = %q/%d", r.Name, r.Procs)
	}
	if r.NsPerOp != 158.8 || r.AllocsPerOp != 0 {
		t.Errorf("second record values = %+v", r)
	}
}

func TestWriteBenchJSONRoundTrip(t *testing.T) {
	in, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []BenchResult
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}
