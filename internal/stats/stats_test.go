package stats

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }

func TestThroughputMean(t *testing.T) {
	m := NewThroughput(100 * sim.Millisecond)
	// 1 MB over 1 second = 8 Mbit/s.
	for i := 0; i < 10; i++ {
		m.Add(ms(i*100), 100_000)
	}
	got := m.MeanMbps(ms(1000))
	if math.Abs(got-8) > 0.01 {
		t.Errorf("MeanMbps = %v, want 8", got)
	}
	if m.TotalBytes() != 1_000_000 {
		t.Errorf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestThroughputSeries(t *testing.T) {
	m := NewThroughput(100 * sim.Millisecond)
	m.Add(ms(0), 125_000)   // bin 0: 10 Mbit/s
	m.Add(ms(250), 250_000) // bin 2: 20 Mbit/s
	ts, mbps := m.Series()
	if len(ts) != 3 {
		t.Fatalf("series length %d", len(ts))
	}
	if math.Abs(mbps[0]-10) > 0.01 || mbps[1] != 0 || math.Abs(mbps[2]-20) > 0.01 {
		t.Errorf("series = %v", mbps)
	}
	if ts[2] != 0.2 {
		t.Errorf("timestamps = %v", ts)
	}
}

func TestThroughputEmptyAndEarlyHorizon(t *testing.T) {
	m := NewThroughput(0) // default bin
	if m.MeanMbps(ms(1000)) != 0 {
		t.Error("empty meter nonzero")
	}
	m.Add(ms(500), 100)
	if m.MeanMbps(ms(100)) != 0 {
		t.Error("horizon before first sample should be 0")
	}
}

func TestCDFQuantiles(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.9, 90.1},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); math.Abs(got-tc.want) > 0.2 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if math.Abs(c.Mean()-50.5) > 1e-9 {
		t.Errorf("Mean = %v", c.Mean())
	}
	if c.N() != 100 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF should be NaN")
	}
	v, f := c.Points(10)
	if v != nil || f != nil {
		t.Error("empty Points should be nil")
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 0; i < 1000; i++ {
		c.Add(float64(i))
	}
	vals, fracs := c.Points(10)
	if len(vals) < 10 || len(vals) != len(fracs) {
		t.Fatalf("points = %d", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] || fracs[i] < fracs[i-1] {
			t.Fatal("points not nondecreasing")
		}
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			c.Add(v)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		a := float64(q1%101) / 100
		b := float64(q2%101) / 100
		if a > b {
			a, b = b, a
		}
		qa, qb := c.Quantile(a), c.Quantile(b)
		return qa <= qb+1e-9 && qa >= lo-1e-9 && qb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	if !math.IsNaN(a.Value()) {
		t.Error("no-observation accuracy should be NaN")
	}
	// Correct for 80 ms, wrong for 20 ms.
	a.Observe(ms(0), true)
	a.Observe(ms(80), false)
	a.Observe(ms(100), true)
	if got := a.Value(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.8", got)
	}
}

func TestCounterRate(t *testing.T) {
	c := Counter{Events: 3, OutOf: 1000}
	if c.Rate() != 0.003 {
		t.Errorf("Rate = %v", c.Rate())
	}
	if (Counter{}).Rate() != 0 {
		t.Error("empty counter rate nonzero")
	}
}
