package stats

// Benchmark-output parsing: `go test -bench` emits one line per
// benchmark; ParseBench turns those lines into structured records and
// WriteBenchJSON serializes them, so benchmark baselines (see
// BENCH_baseline.json at the repo root) can be diffed across commits.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if the line had none).
	Procs int `json:"procs"`
	// Runs is the iteration count (the b.N the line reports).
	Runs int64 `json:"runs"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present when the benchmark ran with
	// -benchmem or b.ReportAllocs().
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "Mbps").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ParseBench reads `go test -bench` output and returns one record per
// benchmark line, in input order. Non-benchmark lines (PASS, ok, goos,
// test logs) are ignored.
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit]..."; a bare
		// "BenchmarkX" with no fields is a progress line, skip it.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		res := BenchResult{Procs: 1}
		res.Name = fields[0]
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name, res.Procs = res.Name[:i], p
			}
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		res.Runs = runs
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value in %q: %v", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "MB/s":
				setMetric(&res, "MB/s", v)
			default:
				setMetric(&res, unit, v)
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func setMetric(r *BenchResult, unit string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[unit] = v
}

// WriteBenchJSON writes the results as indented JSON.
func WriteBenchJSON(w io.Writer, results []BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
