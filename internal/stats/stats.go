// Package stats provides the measurement instruments the evaluation
// harness uses: binned throughput timeseries, empirical CDFs, and the
// switching-accuracy tracker of Table 2.
package stats

import (
	"math"
	"sort"

	"wgtt/internal/sim"
)

// Throughput accumulates received bytes into fixed-width time bins,
// producing the Mbit/s-vs-time curves of Figs. 14/15 and overall averages
// for Figs. 13/17.
type Throughput struct {
	bin   sim.Duration
	bytes []int64
	first sim.Time
	last  sim.Time
	total int64
	began bool
}

// NewThroughput returns a meter with the given bin width.
func NewThroughput(bin sim.Duration) *Throughput {
	if bin <= 0 {
		bin = 100 * sim.Millisecond
	}
	return &Throughput{bin: bin}
}

// Add records n bytes received at time t. Times must be nondecreasing.
func (m *Throughput) Add(t sim.Time, n int) {
	if !m.began {
		m.first = t
		m.began = true
	}
	idx := int(t.Sub(m.first) / m.bin)
	for len(m.bytes) <= idx {
		m.bytes = append(m.bytes, 0)
	}
	m.bytes[idx] += int64(n)
	m.total += int64(n)
	m.last = t
}

// TotalBytes returns all bytes recorded.
func (m *Throughput) TotalBytes() int64 { return m.total }

// MeanMbps returns the average rate between the first record and horizon.
// If horizon precedes the first record the result is 0.
func (m *Throughput) MeanMbps(horizon sim.Time) float64 {
	if !m.began || horizon <= m.first {
		return 0
	}
	sec := horizon.Sub(m.first).Seconds()
	return float64(m.total) * 8 / 1e6 / sec
}

// Series returns (time offset seconds, Mbit/s) pairs, one per bin.
func (m *Throughput) Series() (ts []float64, mbps []float64) {
	sec := m.bin.Seconds()
	for i, b := range m.bytes {
		ts = append(ts, float64(i)*sec)
		mbps = append(mbps, float64(b)*8/1e6/sec)
	}
	return ts, mbps
}

// CDF collects samples and reports quantiles.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

// Quantile returns the q-th (0..1) empirical quantile, or NaN when empty.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	idx := q * float64(len(c.samples)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.samples) {
		return c.samples[lo]
	}
	return c.samples[lo]*(1-frac) + c.samples[lo+1]*frac
}

// Mean returns the sample mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Points returns up to n evenly-spaced (value, cumulative fraction)
// points for plotting.
func (c *CDF) Points(n int) (vals, fracs []float64) {
	if len(c.samples) == 0 || n <= 0 {
		return nil, nil
	}
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
	step := len(c.samples) / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(c.samples); i += step {
		vals = append(vals, c.samples[i])
		fracs = append(fracs, float64(i+1)/float64(len(c.samples)))
	}
	return vals, fracs
}

// Accuracy tracks how often a handover scheme's serving AP matches the
// oracle-optimal AP, weighted by time (Table 2's switching accuracy).
type Accuracy struct {
	lastT       sim.Time
	lastCorrect bool
	started     bool
	correct     sim.Duration
	total       sim.Duration
}

// Observe records that at time t the scheme's choice equals the oracle's
// (correct). Call at every evaluation instant in time order; intervals
// are attributed to the preceding observation.
func (a *Accuracy) Observe(t sim.Time, correct bool) {
	if a.started {
		dt := t.Sub(a.lastT)
		a.total += dt
		if a.lastCorrect {
			a.correct += dt
		}
	}
	a.lastT = t
	a.lastCorrect = correct
	a.started = true
}

// Value returns the fraction of time the scheme was optimal (0..1), or
// NaN before two observations.
func (a *Accuracy) Value() float64 {
	if a.total == 0 {
		return math.NaN()
	}
	return float64(a.correct) / float64(a.total)
}

// Counter is a labeled event tally with a rate helper.
type Counter struct {
	Events int
	OutOf  int
}

// Rate returns Events/OutOf, or 0 when empty.
func (c Counter) Rate() float64 {
	if c.OutOf == 0 {
		return 0
	}
	return float64(c.Events) / float64(c.OutOf)
}
