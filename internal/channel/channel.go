// Package channel defines the pluggable channel-model backend seam of
// the simulator: everything frequency-dependent — path loss, antenna
// gain, shadowing, small-scale fading, subcarrier CSI synthesis, and the
// MCS rate ladder — lives behind the Model interface, so the same MAC,
// controller, and switching protocol can run over the paper's 2.4/5 GHz
// roadside testbed or over a mmWave/60 GHz picocell deployment.
//
// Two backends ship:
//
//   - "wifi5g" (the default): the original model, delegating to
//     internal/rf unchanged. Every golden figure pin and parity test is
//     bit-identical to the pre-refactor code by construction — the
//     backend forks the same RNG labels in the same order and evaluates
//     the same float expressions.
//   - "mmwave60g": a 60 GHz picocell model with steerable phased-array
//     beams, oxygen absorption, a hard cell-radius audibility cap,
//     Rician fading, and deterministic seed-driven pedestrian/vehicle
//     blockage events (see mmwave60g.go).
//
// The contract a backend must satisfy (DESIGN.md §10): the Max*Bound
// methods may over-estimate freely but must never under-estimate the
// corresponding link outputs (audibility-index soundness), and all
// methods must be deterministic functions of (construction RNG, query
// arguments) so serial and parallel domain execution stay bit-identical.
package channel

import (
	"fmt"
	"math"
	"sort"

	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Link is one AP↔client radio-path realization. It is reciprocal —
// uplink and downlink see the same instantaneous channel — which is what
// lets WGTT predict downlink delivery from uplink CSI. Methods take the
// query time explicitly: the wifi5g backend's channel is purely spatial
// and ignores it, while the mmwave60g backend's blockage process makes
// the channel time-varying.
type Link interface {
	// SubcarrierSNRsDB fills dst (rf.NumSubcarriers long) with the
	// instantaneous per-subcarrier SNR in dB at the client position.
	SubcarrierSNRsDB(now sim.Time, cliPos rf.Position, dst []float64)
	// MeanSNRdB is the large-scale SNR (no fast fading) at the client
	// position; blockage, being a large-scale obstruction, is included.
	MeanSNRdB(now sim.Time, cliPos rf.Position) float64
	// SNRdB is the instantaneous wideband SNR: mean SNR plus the
	// subcarrier-averaged fading power.
	SNRdB(now sim.Time, cliPos rf.Position) float64
	// DisableFading freezes small-scale fading at unit gain (tests and
	// the smoothed-ESNR heatmap experiment).
	DisableFading()
	// APPos returns the AP end of the link.
	APPos() rf.Position
}

// Box is an axis-aligned bounding box of client positions, the geometry
// the audibility index hands to the bound methods.
type Box struct {
	MinX, MaxX, MinY, MaxY float64
}

// Distance returns the distance from p to the nearest point of the box;
// zero when p is inside. (Shared by the backends' bound methods.)
func (b Box) Distance(p rf.Position) float64 {
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return math.Hypot(dx, dy)
}

// Contains reports whether p lies inside the box.
func (b Box) Contains(p rf.Position) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Model is one propagation/PHY backend. A Model is built once per
// network and shared read-only by every domain; NewLink is called from
// the construction goroutine only.
type Model interface {
	// Name returns the backend's registry name.
	Name() string
	// Rates returns the backend's MCS ladder (never nil).
	Rates() *phy.Table
	// NewLink draws an AP↔client radio-path realization from rng. The
	// backend owns antenna patterns; callers pass only the AP mount
	// position. The RNG fork discipline inside NewLink is part of the
	// backend's bit-identity contract.
	NewLink(apPos rf.Position, rng *sim.RNG) Link

	// DetectHeadroomDB bounds how far any per-subcarrier SNR can exceed
	// MeanSNRdB: constructive-fading headroom plus the ESNR table's
	// interpolation margin. It licenses the medium's cheap large-scale
	// rejection and the audibility index's soundness (DESIGN.md §10).
	DetectHeadroomDB() float64
	// MaxSNRAPToBoxDB bounds the large-scale SNR from an AP at apPos to
	// any point of box (shadowing at its analytic peak). Must never
	// under-estimate MeanSNRdB − shadowing + MaxShadow at any box point.
	MaxSNRAPToBoxDB(apPos rf.Position, box Box) float64
	// MaxSNRClientToAPDB bounds the large-scale SNR from a client at
	// cliPos to the AP at apPos (the uplink reciprocal, exact positions).
	MaxSNRClientToAPDB(cliPos, apPos rf.Position) float64
	// ClientClientSNRdB is the flat vehicle-to-vehicle budget at
	// distance d (clamped to the 1 m reference inside). No fading is
	// applied to this path, so it is exact, not a bound.
	ClientClientSNRdB(d float64) float64

	// InterferenceOverNoiseDB returns the interference-to-noise ratio
	// (dB) a transmission from txPos deposits at rxPos, used by the
	// cross-domain boundary-interference exchange. txIsAP selects the
	// transmit antenna model. Returns a very negative value when the
	// coupling is negligible.
	InterferenceOverNoiseDB(txIsAP bool, txPos, rxPos rf.Position) float64
}

// ModelConfig carries the configuration slice each backend reads. Core
// fills it from Config; backends ignore fields they do not use.
type ModelConfig struct {
	// RF is the 2.4/5 GHz budget (wifi5g).
	RF rf.Params
	// MMWave is the 60 GHz budget (mmwave60g).
	MMWave MMWaveParams
	// BoresightDeg aims the AP antennas (wifi5g's fixed parabolics; the
	// mmwave arrays steer and use it only as the panel normal).
	BoresightDeg float64
	// ClientClientLossDB is the extra in-vehicle penetration loss on the
	// client↔client path.
	ClientClientLossDB float64
}

// factory builds a backend from its config.
type factory func(ModelConfig) (Model, error)

// registry maps backend names to factories. Registration happens in
// package init functions, so the map is read-only afterwards.
var registry = map[string]factory{}

// register adds a backend; duplicate names are a programming error.
func register(name string, fn factory) {
	if _, dup := registry[name]; dup {
		panic("channel: duplicate backend " + name)
	}
	registry[name] = fn
}

// DefaultBackend is the name an empty Config.ChannelBackend resolves to.
const DefaultBackend = "wifi5g"

// Known reports whether name (or "", the default) is a registered
// backend.
func Known(name string) bool {
	if name == "" {
		return true
	}
	_, ok := registry[name]
	return ok
}

// Names lists the registered backends, sorted.
func Names() []string {
	var ns []string
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// New builds the named backend ("" = DefaultBackend).
func New(name string, cfg ModelConfig) (Model, error) {
	if name == "" {
		name = DefaultBackend
	}
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("channel: unknown backend %q (have %v)", name, Names())
	}
	return fn(cfg)
}
