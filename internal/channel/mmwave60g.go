package channel

import (
	"math"
	"sort"

	"wgtt/internal/csi"
	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

func init() {
	register("mmwave60g", func(cfg ModelConfig) (Model, error) {
		return newMMWave(cfg)
	})
}

// MMWaveParams is the 60 GHz picocell budget. The regime it models is
// the one that makes rapid picocell switching interesting: huge
// free-space loss and oxygen absorption cap cells at a few tens of
// meters, steerable phased arrays recover the budget inside the cell,
// and pedestrian/vehicle blockage kills a link in milliseconds — so the
// controller's 17–21 ms stop/start/ack band is the difference between a
// blip and an outage.
type MMWaveParams struct {
	FreqHz     float64 // carrier (channel 2 = 60.48 GHz)
	TxPowerDBm float64 // per-element-sum EIRP is TxPower + ArrayGain
	NoiseDBm   float64 // noise floor over the wide channel
	// RefLossDB is free-space loss at 1 m (≈68 dB at 60 GHz);
	// PathLossExp the street-canyon LOS exponent.
	RefLossDB   float64
	PathLossExp float64
	// OxygenDBPerKm is the 60 GHz O₂ absorption line (~15 dB/km).
	OxygenDBPerKm float64
	SystemLossDB  float64
	// ArrayGainDBi is the AP phased array's gain toward the tracked
	// client (the array steers, so the served direction always sees
	// peak gain); ClientGainDBi the client sub-array's.
	ArrayGainDBi  float64
	ClientGainDBi float64
	// SidelobeDB is the array gain toward untracked directions relative
	// to peak (negative), the coupling boundary interference sees.
	SidelobeDB float64
	// CellRadiusM is the hard picocell reach: beyond it the link is
	// dead (and the audibility bound returns −∞, which is what keeps
	// city-scale mmWave deployments cheap to index).
	CellRadiusM float64
	// Shadowing of the unblocked LOS path (small: street furniture).
	ShadowSigmaDB   float64
	ShadowCorrDistM float64
	// Fading is the small-scale model; strongly Rician under LOS.
	Fading rf.FadingParams
	// Blockage: a deterministic seed-driven renewal process per link.
	// Events arrive at BlockageRatePerSec, last an exponential duration
	// with mean BlockageMeanDur, and attenuate by BlockageDepthDB.
	BlockageRatePerSec float64
	BlockageMeanDur    sim.Duration
	BlockageDepthDB    float64
}

// DefaultMMWaveParams returns a 60 GHz picocell budget tuned so a client
// under an AP sees ~25 dB SNR decaying to the MCS0 threshold near the
// cell edge, with blockage deep enough to force a switch.
func DefaultMMWaveParams() MMWaveParams {
	const freq = 60.48e9
	return MMWaveParams{
		FreqHz:        freq,
		TxPowerDBm:    10,
		NoiseDBm:      -75,
		RefLossDB:     68, // free space at 1 m, 60.48 GHz
		PathLossExp:   2.2,
		OxygenDBPerKm: 15,
		SystemLossDB:  3,
		ArrayGainDBi:  23,
		ClientGainDBi: 10,
		SidelobeDB:    -20,
		CellRadiusM:   28,

		ShadowSigmaDB:   1.5,
		ShadowCorrDistM: 4,
		Fading: rf.FadingParams{
			FreqHz:        freq,
			NumTaps:       2,
			TapSpacingSec: 10e-9,
			DecayDB:       9,
			NumWaves:      8,
			RicianK:       8,
		},
		BlockageRatePerSec: 0.25,
		BlockageMeanDur:    350 * sim.Millisecond,
		BlockageDepthDB:    22,
	}
}

// mmwaveRates is an 802.11ad-like single-carrier MCS ladder, reshaped to
// the simulator's fixed NumRates rows. Thresholds follow the DMG
// receiver-sensitivity ladder.
func mmwaveRates() *phy.Table {
	rates := []phy.Rate{
		{MCS: 0, Mbps: 385, Modulation: csi.BPSK, CodeRate: "1/2", ThresholdDB: 3},
		{MCS: 1, Mbps: 770, Modulation: csi.QPSK, CodeRate: "1/2", ThresholdDB: 6},
		{MCS: 2, Mbps: 962.5, Modulation: csi.QPSK, CodeRate: "5/8", ThresholdDB: 8},
		{MCS: 3, Mbps: 1155, Modulation: csi.QPSK, CodeRate: "3/4", ThresholdDB: 9.5},
		{MCS: 4, Mbps: 1540, Modulation: csi.QAM16, CodeRate: "1/2", ThresholdDB: 12.5},
		{MCS: 5, Mbps: 1925, Modulation: csi.QAM16, CodeRate: "5/8", ThresholdDB: 15},
		{MCS: 6, Mbps: 2310, Modulation: csi.QAM16, CodeRate: "3/4", ThresholdDB: 17},
		{MCS: 7, Mbps: 3080, Modulation: csi.QAM64, CodeRate: "2/3", ThresholdDB: 21.5},
	}
	return &phy.Table{Name: "dmg-sc", Rates: rates, Basic: rates[0]}
}

// blockageHorizon bounds the precomputed per-link blockage schedule;
// queries past it see a clear channel. Experiments run seconds, so ten
// minutes of schedule is effectively unbounded while keeping per-link
// memory trivial.
const blockageHorizon = 600 * sim.Second

// blockEvent is one blockage interval.
type blockEvent struct {
	start, end sim.Time
}

// mmwave implements Model for the 60 GHz picocell regime.
type mmwave struct {
	p          MMWaveParams
	tbl        *phy.Table
	cliLossDB  float64
	headroomDB float64
	// deadSNRdB is what the budget reports outside the cell radius:
	// far below any detect threshold.
	deadSNRdB float64
}

func newMMWave(cfg ModelConfig) (*mmwave, error) {
	p := cfg.MMWave
	if p.FreqHz <= 0 {
		p = DefaultMMWaveParams()
	}
	return &mmwave{
		p:          p,
		tbl:        mmwaveRates(),
		cliLossDB:  cfg.ClientClientLossDB,
		headroomDB: rf.MaxFadeDB(p.Fading) + 0.2,
		deadSNRdB:  -200,
	}, nil
}

// Name implements Model.
func (m *mmwave) Name() string { return "mmwave60g" }

// Rates implements Model.
func (m *mmwave) Rates() *phy.Table { return m.tbl }

// NewLink implements Model. Fork order ("fading", "shadow", "blockage")
// is fixed: it is part of the backend's determinism contract.
func (m *mmwave) NewLink(apPos rf.Position, rng *sim.RNG) Link {
	l := &mmLink{
		m:      m,
		apPos:  apPos,
		fader:  rf.NewFader(m.p.Fading, rng.Fork("fading")),
		shadow: rf.NewShadowing(m.p.ShadowSigmaDB, m.p.ShadowCorrDistM, rng.Fork("shadow")),
	}
	l.blocks = drawBlockage(m.p, rng.Fork("blockage"))
	return l
}

// drawBlockage materializes the renewal process: exponential
// inter-arrivals at BlockageRatePerSec, exponential durations with mean
// BlockageMeanDur, over blockageHorizon. The whole schedule is drawn at
// construction so queries are pure lookups — the property that keeps
// serial and parallel domain execution bit-identical.
func drawBlockage(p MMWaveParams, rng *sim.RNG) []blockEvent {
	if p.BlockageRatePerSec <= 0 || p.BlockageMeanDur <= 0 {
		return nil
	}
	var evs []blockEvent
	t := sim.Time(0)
	for {
		gap := sim.Duration(rng.ExpFloat64() / p.BlockageRatePerSec * float64(sim.Second))
		dur := sim.Duration(rng.ExpFloat64() * float64(p.BlockageMeanDur))
		start := t.Add(gap)
		if start > sim.Time(blockageHorizon) {
			return evs
		}
		end := start.Add(dur)
		evs = append(evs, blockEvent{start: start, end: end})
		t = end
	}
}

// mmLink is one AP↔client 60 GHz path.
type mmLink struct {
	m       *mmwave
	apPos   rf.Position
	fader   *rf.Fader
	shadow  *rf.Shadowing
	blocks  []blockEvent
	fadeOff bool
}

// blockageDB returns the blockage attenuation active at time now.
func (l *mmLink) blockageDB(now sim.Time) float64 {
	i := sort.Search(len(l.blocks), func(i int) bool { return l.blocks[i].start > now })
	if i == 0 {
		return 0
	}
	if ev := l.blocks[i-1]; now < ev.end {
		return l.m.p.BlockageDepthDB
	}
	return 0
}

// meanSNRdB is the large-scale budget: steered-array gain, log-distance
// plus oxygen absorption, shadowing, and any active blockage. Beyond the
// cell radius the link is dead.
func (l *mmLink) meanSNRdB(now sim.Time, cliPos rf.Position) float64 {
	p := &l.m.p
	d := l.apPos.Distance(cliPos)
	if d > p.CellRadiusM {
		return l.m.deadSNRdB
	}
	if d < 1 {
		d = 1
	}
	pl := p.RefLossDB + 10*p.PathLossExp*math.Log10(d) + p.OxygenDBPerKm*d/1000
	return p.TxPowerDBm + p.ArrayGainDBi + p.ClientGainDBi - pl -
		p.SystemLossDB + l.shadow.DB(cliPos) - l.blockageDB(now) - p.NoiseDBm
}

// MeanSNRdB implements Link.
func (l *mmLink) MeanSNRdB(now sim.Time, cliPos rf.Position) float64 {
	return l.meanSNRdB(now, cliPos)
}

// SubcarrierSNRsDB implements Link.
func (l *mmLink) SubcarrierSNRsDB(now sim.Time, cliPos rf.Position, dst []float64) {
	if len(dst) != rf.NumSubcarriers {
		panic("channel: SubcarrierSNRsDB dst must have rf.NumSubcarriers elements")
	}
	mean := l.meanSNRdB(now, cliPos)
	if l.fadeOff {
		for i := range dst {
			dst[i] = mean
		}
		return
	}
	var gains [rf.NumSubcarriers]complex128
	l.fader.Gains(cliPos, gains[:])
	for i, g := range gains {
		re, im := real(g), imag(g)
		pw := re*re + im*im
		if pw < 1e-12 {
			pw = 1e-12
		}
		dst[i] = mean + 10*math.Log10(pw)
	}
}

// SNRdB implements Link.
func (l *mmLink) SNRdB(now sim.Time, cliPos rf.Position) float64 {
	if l.fadeOff {
		return l.meanSNRdB(now, cliPos)
	}
	return l.meanSNRdB(now, cliPos) + l.fader.PowerDB(cliPos)
}

// DisableFading implements Link (blockage stays: it is large-scale).
func (l *mmLink) DisableFading() { l.fadeOff = true }

// APPos implements Link.
func (l *mmLink) APPos() rf.Position { return l.apPos }

// DetectHeadroomDB implements Model. Blockage only attenuates, so the
// fading bound alone is sound.
func (m *mmwave) DetectHeadroomDB() float64 { return m.headroomDB }

// maxShadowDB mirrors rf.Params.MaxShadowDB for the mmWave shadowing.
func (m *mmwave) maxShadowDB() float64 {
	return m.p.ShadowSigmaDB * math.Sqrt(2*rf.ShadowComps)
}

// MaxSNRAPToBoxDB implements Model. The steerable array can point at any
// box point, so the gain bound is peak array gain; blockage is ≥ 0 and
// omitted. Boxes entirely outside the cell radius are dead — the bound
// that makes mmWave audibility sets tiny.
func (m *mmwave) MaxSNRAPToBoxDB(apPos rf.Position, box Box) float64 {
	d := box.Distance(apPos)
	if d > m.p.CellRadiusM {
		return m.deadSNRdB
	}
	if d < 1 {
		d = 1
	}
	pl := m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d) + m.p.OxygenDBPerKm*d/1000
	return m.p.TxPowerDBm + m.p.ArrayGainDBi + m.p.ClientGainDBi - pl -
		m.p.SystemLossDB + m.maxShadowDB() - m.p.NoiseDBm
}

// MaxSNRClientToAPDB implements Model (reciprocal budget, exact
// positions).
func (m *mmwave) MaxSNRClientToAPDB(cliPos, apPos rf.Position) float64 {
	d := apPos.Distance(cliPos)
	if d > m.p.CellRadiusM {
		return m.deadSNRdB
	}
	if d < 1 {
		d = 1
	}
	pl := m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d) + m.p.OxygenDBPerKm*d/1000
	return m.p.TxPowerDBm + m.p.ArrayGainDBi + m.p.ClientGainDBi - pl -
		m.p.SystemLossDB + m.maxShadowDB() - m.p.NoiseDBm
}

// ClientClientSNRdB implements Model: device-to-device 60 GHz coupling
// with no array gain and double in-vehicle penetration — effectively
// dead past a few meters, as it should be.
func (m *mmwave) ClientClientSNRdB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	pl := m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d) + m.p.OxygenDBPerKm*d/1000
	return m.p.TxPowerDBm - pl - m.cliLossDB - m.p.NoiseDBm
}

// InterferenceOverNoiseDB implements Model: an interfering AP's array is
// steered at its own client, so the victim sees sidelobe gain; client
// interferers couple like the device-to-device path. Beyond the cell
// radius the coupling is negligible.
func (m *mmwave) InterferenceOverNoiseDB(txIsAP bool, txPos, rxPos rf.Position) float64 {
	d := txPos.Distance(rxPos)
	if d > m.p.CellRadiusM {
		return m.deadSNRdB
	}
	if d < 1 {
		d = 1
	}
	pl := m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d) + m.p.OxygenDBPerKm*d/1000
	if txIsAP {
		gain := m.p.ArrayGainDBi + m.p.SidelobeDB
		return m.p.TxPowerDBm + gain + m.p.ClientGainDBi - pl - m.p.SystemLossDB - m.p.NoiseDBm
	}
	return m.p.TxPowerDBm - pl - m.cliLossDB - m.p.NoiseDBm
}
