package channel

import (
	"math"

	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

func init() {
	register("wifi5g", func(cfg ModelConfig) (Model, error) {
		return newWifi5g(cfg), nil
	})
}

// wifi5g is the paper's 2.4/5 GHz roadside model, delegating to
// internal/rf unchanged: log-distance path loss with smooth shadowing, a
// fixed grid-parabolic AP antenna, omni clients, and Jakes/Clarke
// frequency-selective fading. It is the bit-identity reference: NewLink
// forks "fading" then "shadow" exactly like rf.NewLink always did, and
// the audibility bounds reproduce the pre-refactor float expressions
// operation for operation.
type wifi5g struct {
	p          rf.Params
	apAnt      rf.Parabolic
	cliLossDB  float64 // client↔client extra penetration loss
	boresight  float64
	headroomDB float64
}

func newWifi5g(cfg ModelConfig) *wifi5g {
	return &wifi5g{
		p:          cfg.RF,
		apAnt:      rf.DefaultParabolic(cfg.BoresightDeg),
		cliLossDB:  cfg.ClientClientLossDB,
		boresight:  cfg.BoresightDeg,
		headroomDB: rf.MaxFadeDB(cfg.RF.Fading) + 0.2,
	}
}

// Name implements Model.
func (m *wifi5g) Name() string { return "wifi5g" }

// Rates implements Model: the stock HT20 ladder.
func (m *wifi5g) Rates() *phy.Table { return phy.DefaultTable }

// wifiLink adapts *rf.Link to the time-indexed Link interface; the
// wifi5g channel is purely spatial, so the time argument is ignored.
type wifiLink struct{ l *rf.Link }

func (w wifiLink) SubcarrierSNRsDB(_ sim.Time, cliPos rf.Position, dst []float64) {
	w.l.SubcarrierSNRsDB(cliPos, dst)
}
func (w wifiLink) MeanSNRdB(_ sim.Time, cliPos rf.Position) float64 { return w.l.MeanSNRdB(cliPos) }
func (w wifiLink) SNRdB(_ sim.Time, cliPos rf.Position) float64     { return w.l.SNRdB(cliPos) }
func (w wifiLink) DisableFading()                                   { w.l.DisableFading() }
func (w wifiLink) APPos() rf.Position                               { return w.l.APPos() }

// NewLink implements Model. The rf constructor forks "fading" then
// "shadow" from rng — the order every golden pin depends on.
func (m *wifi5g) NewLink(apPos rf.Position, rng *sim.RNG) Link {
	return wifiLink{rf.NewLink(m.p, apPos, m.apAnt, rf.Omni{}, rng)}
}

// DetectHeadroomDB implements Model: the analytic constructive-fading
// bound for the deployment's multipath profile plus the ESNR table's
// interpolation margin.
func (m *wifi5g) DetectHeadroomDB() float64 { return m.headroomDB }

// MaxSNRAPToBoxDB implements Model: transmit power plus the best antenna
// gain toward the box, minus path loss at the nearest box point, with
// shadowing at its analytic peak.
func (m *wifi5g) MaxSNRAPToBoxDB(apPos rf.Position, box Box) float64 {
	d := math.Max(1, box.Distance(apPos))
	gain := m.maxGainToBox(apPos, box)
	return m.p.TxPowerDBm + gain -
		(m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d)) -
		m.p.SystemLossDB + m.p.MaxShadowDB() - m.p.NoiseDBm
}

// MaxSNRClientToAPDB implements Model: the reciprocal of the downlink
// budget at exact positions.
func (m *wifi5g) MaxSNRClientToAPDB(cliPos, apPos rf.Position) float64 {
	d := math.Max(1, apPos.Distance(cliPos))
	gain := m.apAnt.GainDB(apPos.AngleTo(cliPos))
	return m.p.TxPowerDBm + gain -
		(m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d)) -
		m.p.SystemLossDB + m.p.MaxShadowDB() - m.p.NoiseDBm
}

// ClientClientSNRdB implements Model: omni antennas, double in-vehicle
// penetration, log-distance path loss, no fading.
func (m *wifi5g) ClientClientSNRdB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	pl := m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d)
	return m.p.TxPowerDBm - pl - m.cliLossDB - m.p.NoiseDBm
}

// InterferenceOverNoiseDB implements Model: the large-scale co-channel
// budget between two positions, AP antenna gain toward the victim when
// the transmitter is an AP, in-vehicle penetration both ways otherwise.
// Shadowing/fading realizations live on the far side of a domain
// boundary, so the mean budget is the honest estimate.
func (m *wifi5g) InterferenceOverNoiseDB(txIsAP bool, txPos, rxPos rf.Position) float64 {
	d := txPos.Distance(rxPos)
	if d < 1 {
		d = 1
	}
	pl := m.p.RefLossDB + 10*m.p.PathLossExp*math.Log10(d)
	if txIsAP {
		gain := m.apAnt.GainDB(txPos.AngleTo(rxPos))
		return m.p.TxPowerDBm + gain - pl - m.p.SystemLossDB - m.p.NoiseDBm
	}
	return m.p.TxPowerDBm - pl - m.cliLossDB - m.p.NoiseDBm
}

// maxGainToBox bounds the AP antenna gain toward any point of the box.
// The bearing set toward a convex box is the interval spanned by the
// corner bearings; Parabolic gain decreases monotonically with the
// off-boresight angle, so the max is attained at a corner bearing or at
// boresight itself when the boresight ray enters the box.
func (m *wifi5g) maxGainToBox(p rf.Position, b Box) float64 {
	if b.Contains(p) || m.boresightHitsBox(p, b) {
		return m.apAnt.PeakGain
	}
	g := m.apAnt.GainDB(p.AngleTo(rf.Position{X: b.MinX, Y: b.MinY}))
	g = math.Max(g, m.apAnt.GainDB(p.AngleTo(rf.Position{X: b.MinX, Y: b.MaxY})))
	g = math.Max(g, m.apAnt.GainDB(p.AngleTo(rf.Position{X: b.MaxX, Y: b.MinY})))
	g = math.Max(g, m.apAnt.GainDB(p.AngleTo(rf.Position{X: b.MaxX, Y: b.MaxY})))
	return g
}

// boresightHitsBox reports whether the ray from p along the antenna
// boresight intersects the box (a standard slab test).
func (m *wifi5g) boresightHitsBox(p rf.Position, b Box) bool {
	rad := m.apAnt.BoresightDeg * math.Pi / 180
	dx, dy := math.Cos(rad), math.Sin(rad)
	tmin, tmax := 0.0, math.Inf(1)
	for _, s := range [2][3]float64{{dx, b.MinX - p.X, b.MaxX - p.X},
		{dy, b.MinY - p.Y, b.MaxY - p.Y}} {
		d, lo, hi := s[0], s[1], s[2]
		if math.Abs(d) < 1e-12 {
			if lo > 0 || hi < 0 {
				return false
			}
			continue
		}
		t0, t1 := lo/d, hi/d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		tmin = math.Max(tmin, t0)
		tmax = math.Min(tmax, t1)
	}
	return tmin <= tmax
}
