package channel

import (
	"fmt"
	"math"
	"testing"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

func wifiCfg() ModelConfig {
	return ModelConfig{RF: rf.DefaultParams(), BoresightDeg: -90, ClientClientLossDB: 10}
}

func mmCfg() ModelConfig {
	return ModelConfig{MMWave: DefaultMMWaveParams(), BoresightDeg: -90, ClientClientLossDB: 10}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"", "wifi5g", "mmwave60g"} {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if Known("fsk1200") {
		t.Error("Known accepted an unregistered backend")
	}
	if _, err := New("fsk1200", wifiCfg()); err == nil {
		t.Error("New accepted an unregistered backend")
	}
	m, err := New("", wifiCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != DefaultBackend {
		t.Errorf("empty name resolved to %q, want %q", m.Name(), DefaultBackend)
	}
	names := Names()
	if len(names) < 2 {
		t.Errorf("Names() = %v, want at least wifi5g and mmwave60g", names)
	}
}

// TestWifi5gMatchesRF pins the tentpole's bit-identity contract: the
// wifi5g backend is the pre-refactor rf stack verbatim — same RNG fork
// discipline, same float expressions — so a backend link and a direct
// rf.Link built from equal-seeded RNGs must agree exactly.
func TestWifi5gMatchesRF(t *testing.T) {
	cfg := wifiCfg()
	m, err := New("wifi5g", cfg)
	if err != nil {
		t.Fatal(err)
	}
	apPos := rf.Position{X: 10, Y: 3}
	ml := m.NewLink(apPos, sim.NewRNG(7))
	rl := rf.NewLink(cfg.RF, apPos, rf.DefaultParabolic(cfg.BoresightDeg), rf.Omni{}, sim.NewRNG(7))
	var a, b [rf.NumSubcarriers]float64
	for i := 0; i < 50; i++ {
		pos := rf.Position{X: float64(i), Y: 0.4}
		ml.SubcarrierSNRsDB(0, pos, a[:])
		rl.SubcarrierSNRsDB(pos, b[:])
		if a != b {
			t.Fatalf("subcarrier SNRs diverge at %v", pos)
		}
		if ml.MeanSNRdB(0, pos) != rl.MeanSNRdB(pos) {
			t.Fatalf("mean SNR diverges at %v", pos)
		}
		if ml.SNRdB(0, pos) != rl.SNRdB(pos) {
			t.Fatalf("wideband SNR diverges at %v", pos)
		}
	}
}

// TestWifi5gBoundSoundness samples the audibility contract: the box
// bound plus the detect headroom must dominate every per-subcarrier SNR
// at every sampled box point (DESIGN.md §10).
func TestWifi5gBoundSoundness(t *testing.T) {
	m, err := New("wifi5g", wifiCfg())
	if err != nil {
		t.Fatal(err)
	}
	apPos := rf.Position{X: 0, Y: 3}
	link := m.NewLink(apPos, sim.NewRNG(3))
	box := Box{MinX: 5, MaxX: 40, MinY: -2, MaxY: 2}
	bound := m.MaxSNRAPToBoxDB(apPos, box) + m.DetectHeadroomDB()
	var snrs [rf.NumSubcarriers]float64
	for x := box.MinX; x <= box.MaxX; x += 0.7 {
		pos := rf.Position{X: x, Y: 1}
		link.SubcarrierSNRsDB(0, pos, snrs[:])
		for _, s := range snrs {
			if s > bound {
				t.Fatalf("subcarrier SNR %.2f dB exceeds bound %.2f dB at %v", s, bound, pos)
			}
		}
	}
}

// TestMMWaveDeterministic pins the mmwave60g determinism contract: two
// links drawn from equal-seeded RNGs agree exactly at every (time,
// position) query — blockage included — because the whole blockage
// schedule is materialized at construction.
func TestMMWaveDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		m1, _ := New("mmwave60g", mmCfg())
		m2, _ := New("mmwave60g", mmCfg())
		apPos := rf.Position{X: 5, Y: 3}
		l1 := m1.NewLink(apPos, sim.NewRNG(seed))
		l2 := m2.NewLink(apPos, sim.NewRNG(seed))
		var a, b [rf.NumSubcarriers]float64
		for i := 0; i < 200; i++ {
			now := sim.Time(i) * sim.Time(50*sim.Millisecond)
			pos := rf.Position{X: float64(i % 30), Y: 0.5}
			l1.SubcarrierSNRsDB(now, pos, a[:])
			l2.SubcarrierSNRsDB(now, pos, b[:])
			if a != b {
				t.Fatalf("seed %d: links diverge at t=%v pos=%v", seed, now, pos)
			}
		}
	}
}

// TestMMWaveCellCap pins the picocell reach: inside CellRadiusM the link
// is live, beyond it stone dead, and the audibility bounds agree.
func TestMMWaveCellCap(t *testing.T) {
	cfg := mmCfg()
	m, _ := New("mmwave60g", cfg)
	apPos := rf.Position{}
	link := m.NewLink(apPos, sim.NewRNG(1))
	link.DisableFading()
	r := cfg.MMWave.CellRadiusM
	if snr := link.MeanSNRdB(0, rf.Position{X: r - 1}); snr < 0 {
		t.Errorf("SNR %.1f dB just inside the cell; want positive", snr)
	}
	if snr := link.MeanSNRdB(0, rf.Position{X: r + 1}); snr > -100 {
		t.Errorf("SNR %.1f dB beyond the cell radius; want dead", snr)
	}
	farBox := Box{MinX: r + 10, MaxX: r + 20, MinY: -2, MaxY: 2}
	if b := m.MaxSNRAPToBoxDB(apPos, farBox); b > -100 {
		t.Errorf("box bound %.1f dB beyond the cell radius; want dead", b)
	}
	if b := m.MaxSNRClientToAPDB(rf.Position{X: r + 5}, apPos); b > -100 {
		t.Errorf("client bound %.1f dB beyond the cell radius; want dead", b)
	}
}

// TestMMWaveBoundSoundness samples the §10 contract for the mmWave
// backend across time: blockage and shadowing only subtract from the
// analytic peak, so the box bound plus headroom dominates every
// instantaneous subcarrier SNR.
func TestMMWaveBoundSoundness(t *testing.T) {
	m, _ := New("mmwave60g", mmCfg())
	apPos := rf.Position{X: 0, Y: 3}
	link := m.NewLink(apPos, sim.NewRNG(9))
	box := Box{MinX: 1, MaxX: 20, MinY: -1, MaxY: 1}
	bound := m.MaxSNRAPToBoxDB(apPos, box) + m.DetectHeadroomDB()
	var snrs [rf.NumSubcarriers]float64
	for i := 0; i < 300; i++ {
		now := sim.Time(i) * sim.Time(100*sim.Millisecond)
		pos := rf.Position{X: 1 + float64(i%19), Y: 0.5}
		link.SubcarrierSNRsDB(now, pos, snrs[:])
		for _, s := range snrs {
			if s > bound {
				t.Fatalf("subcarrier SNR %.2f dB exceeds bound %.2f dB at t=%v %v", s, bound, now, pos)
			}
		}
	}
}

// TestMMWaveBlockage pins the blockage renewal process: with the default
// rate some of a long horizon is blocked at exactly BlockageDepthDB, and
// the attenuation is a pure function of time.
func TestMMWaveBlockage(t *testing.T) {
	cfg := mmCfg()
	m, _ := New("mmwave60g", cfg)
	link := m.NewLink(rf.Position{}, sim.NewRNG(2))
	link.DisableFading()
	pos := rf.Position{X: 5}
	clear := link.MeanSNRdB(0, pos)
	blocked := 0
	const steps = 10000
	for i := 0; i < steps; i++ {
		now := sim.Time(i) * sim.Time(10*sim.Millisecond) // 100 s span
		snr := link.MeanSNRdB(now, pos)
		switch {
		case snr == clear:
		case math.Abs(clear-snr-cfg.MMWave.BlockageDepthDB) < 1e-9:
			blocked++
		default:
			t.Fatalf("SNR %.3f dB at t=%v is neither clear (%.3f) nor blocked (%.3f)",
				snr, now, clear, clear-cfg.MMWave.BlockageDepthDB)
		}
	}
	if blocked == 0 {
		t.Error("no blockage event in 100 s at 0.25/s; renewal process never fired")
	}
	if blocked == steps {
		t.Error("channel blocked for the entire horizon")
	}
}

// TestMMWaveRateTable pins the ladder shape the Minstrel controller
// depends on: exactly NumRates rows, MCS i at row i, increasing rates.
func TestMMWaveRateTable(t *testing.T) {
	m, _ := New("mmwave60g", mmCfg())
	tbl := m.Rates()
	if !tbl.Valid() {
		t.Fatalf("mmwave table invalid: %+v", tbl)
	}
	if tbl.Basic.MCS != 0 {
		t.Errorf("basic rate MCS = %d, want 0", tbl.Basic.MCS)
	}
	for i := 1; i < len(tbl.Rates); i++ {
		if tbl.Rates[i].Mbps <= tbl.Rates[i-1].Mbps {
			t.Errorf("rate ladder not increasing at row %d", i)
		}
		if tbl.Rates[i].ThresholdDB <= tbl.Rates[i-1].ThresholdDB {
			t.Errorf("threshold ladder not increasing at row %d", i)
		}
	}
}

func TestBoxGeometry(t *testing.T) {
	b := Box{MinX: 0, MaxX: 10, MinY: -2, MaxY: 2}
	cases := []struct {
		pos  rf.Position
		want float64
	}{
		{rf.Position{X: 5, Y: 0}, 0},
		{rf.Position{X: -3, Y: 0}, 3},
		{rf.Position{X: 13, Y: 6}, 5},
		{rf.Position{X: 5, Y: 4}, 2},
	}
	for _, c := range cases {
		if got := b.Distance(c.pos); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Distance(%v) = %v, want %v", c.pos, got, c.want)
		}
	}
	if !b.Contains(rf.Position{X: 5, Y: 0}) || b.Contains(rf.Position{X: 11, Y: 0}) {
		t.Error("Contains wrong")
	}
}

// TestInterferenceCoupling sanity-checks the boundary-interference
// budgets: closer is louder, an AP's sidelobe coupling is below its
// served-beam budget, and the wifi5g client path includes the
// penetration loss.
func TestInterferenceCoupling(t *testing.T) {
	for _, name := range []string{"wifi5g", "mmwave60g"} {
		cfg := wifiCfg()
		if name == "mmwave60g" {
			cfg = mmCfg()
		}
		m, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rx := rf.Position{X: 0, Y: 0}
			near := m.InterferenceOverNoiseDB(true, rf.Position{X: 5, Y: 3}, rx)
			far := m.InterferenceOverNoiseDB(true, rf.Position{X: 20, Y: 3}, rx)
			if near <= far {
				t.Errorf("AP interference not monotone: near %.1f <= far %.1f", near, far)
			}
			cNear := m.InterferenceOverNoiseDB(false, rf.Position{X: 5, Y: 0}, rx)
			if cNear >= near+30 {
				t.Errorf("client interference %.1f implausibly above AP's %.1f", cNear, near)
			}
		})
	}
}

func ExampleNames() {
	fmt.Println(Names())
	// Output: [mmwave60g wifi5g]
}
