package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wgtt/internal/sim"
)

// Proto identifies the transport protocol of a data packet.
type Proto uint8

// Transport protocols carried by the network.
const (
	ProtoUDP Proto = 17
	ProtoTCP Proto = 6
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoUDP:
		return "UDP"
	case ProtoTCP:
		return "TCP"
	}
	return fmt.Sprintf("Proto(%d)", uint8(p))
}

// TCP header flags (subset used by the simplified transport).
const (
	FlagSYN = 1 << 0
	FlagACK = 1 << 1
	FlagFIN = 1 << 2
)

// Packet is one IP datagram moving through the system — the unit the
// controller indexes, fans out, and switches between APs. Fields mirror
// the real headers the implementation inspects: the IP addresses and the
// identification field feed the de-duplication key; the transport header
// drives the TCP/UDP endpoints; Index is WGTT's m-bit cyclic index number
// stamped by the controller (§3.1.2).
type Packet struct {
	Src, Dst   IP
	Proto      Proto
	IPID       uint16
	SrcPort    uint16
	DstPort    uint16
	Seq, Ack   uint32
	Flags      uint8
	PayloadLen uint16
	Index      uint16 // 12-bit WGTT index; valid on downlink only
	Created    sim.Time
}

// IndexBits is the width m of the WGTT index number; 12 bits guarantees
// uniqueness within a cyclic buffer (§3.1.2).
const IndexBits = 12

// IndexMod is the index wrap modulus (4096).
const IndexMod = 1 << IndexBits

// ipHeader + transport header sizes used for airtime/throughput math.
const (
	ipHeaderLen  = 20
	udpHeaderLen = 8
	tcpHeaderLen = 20
)

// WireLen returns the packet's on-the-wire size in bytes (IP header +
// transport header + payload), the size that airtime and throughput are
// charged for.
func (p *Packet) WireLen() int {
	h := ipHeaderLen + udpHeaderLen
	if p.Proto == ProtoTCP {
		h = ipHeaderLen + tcpHeaderLen
	}
	return h + int(p.PayloadLen)
}

// DedupKey returns the packet's uplink de-duplication key.
func (p *Packet) DedupKey() DedupKey { return NewDedupKey(p.Src, p.IPID) }

// String renders a compact trace line.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d seq=%d len=%d idx=%d",
		p.Proto, p.Src, p.SrcPort, p.Dst, p.DstPort, p.Seq, p.PayloadLen, p.Index)
}

// packetWireSize is the encoded size of a Packet header block.
const packetWireSize = 4 + 4 + 1 + 2 + 2 + 2 + 4 + 4 + 1 + 2 + 2 + 8

// errShort is returned when a buffer is too small to decode.
var errShort = errors.New("packet: short buffer")

// appendPacket serializes p onto b.
func appendPacket(b []byte, p *Packet) []byte {
	b = append(b, p.Src[:]...)
	b = append(b, p.Dst[:]...)
	b = append(b, byte(p.Proto))
	b = binary.BigEndian.AppendUint16(b, p.IPID)
	b = binary.BigEndian.AppendUint16(b, p.SrcPort)
	b = binary.BigEndian.AppendUint16(b, p.DstPort)
	b = binary.BigEndian.AppendUint32(b, p.Seq)
	b = binary.BigEndian.AppendUint32(b, p.Ack)
	b = append(b, p.Flags)
	b = binary.BigEndian.AppendUint16(b, p.PayloadLen)
	b = binary.BigEndian.AppendUint16(b, p.Index)
	b = binary.BigEndian.AppendUint64(b, uint64(p.Created))
	return b
}

// decodePacket parses a Packet from the front of b, returning the rest.
func decodePacket(b []byte) (Packet, []byte, error) {
	var p Packet
	if len(b) < packetWireSize {
		return p, nil, errShort
	}
	copy(p.Src[:], b[0:4])
	copy(p.Dst[:], b[4:8])
	p.Proto = Proto(b[8])
	p.IPID = binary.BigEndian.Uint16(b[9:11])
	p.SrcPort = binary.BigEndian.Uint16(b[11:13])
	p.DstPort = binary.BigEndian.Uint16(b[13:15])
	p.Seq = binary.BigEndian.Uint32(b[15:19])
	p.Ack = binary.BigEndian.Uint32(b[19:23])
	p.Flags = b[23]
	p.PayloadLen = binary.BigEndian.Uint16(b[24:26])
	p.Index = binary.BigEndian.Uint16(b[26:28])
	p.Created = sim.Time(binary.BigEndian.Uint64(b[28:36]))
	return p, b[packetWireSize:], nil
}
