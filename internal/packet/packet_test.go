package packet

import (
	"reflect"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func TestAddressFormatting(t *testing.T) {
	m := MAC{0x02, 0xc1, 0x1e, 0x00, 0x00, 0x07}
	if m.String() != "02:c1:1e:00:00:07" {
		t.Errorf("MAC.String = %q", m.String())
	}
	ip := IP{10, 0, 1, 3}
	if ip.String() != "10.0.1.3" {
		t.Errorf("IP.String = %q", ip.String())
	}
	if !(MAC{}).IsZero() || (ClientMAC(0)).IsZero() {
		t.Error("MAC.IsZero wrong")
	}
	if !(IP{}).IsZero() || ClientIP(0).IsZero() {
		t.Error("IP.IsZero wrong")
	}
}

func TestDeterministicAddressesUnique(t *testing.T) {
	seenM := map[MAC]bool{}
	seenIP := map[IP]bool{}
	for i := 0; i < 50; i++ {
		cm, am := ClientMAC(i), APMAC(i)
		if seenM[cm] || seenM[am] || cm == am {
			t.Fatalf("duplicate MAC at %d", i)
		}
		seenM[cm], seenM[am] = true, true
		ci, ai := ClientIP(i), APIP(i)
		if seenIP[ci] || seenIP[ai] {
			t.Fatalf("duplicate IP at %d", i)
		}
		seenIP[ci], seenIP[ai] = true, true
	}
}

func TestDedupKey(t *testing.T) {
	a := NewDedupKey(IP{10, 0, 1, 1}, 7)
	b := NewDedupKey(IP{10, 0, 1, 1}, 8)
	c := NewDedupKey(IP{10, 0, 1, 2}, 7)
	if a == b || a == c || b == c {
		t.Error("distinct packets share dedup keys")
	}
	// Key is exactly srcIP<<16 | ipid (48 bits).
	if a != DedupKey(uint64(0x0a000101)<<16|7) {
		t.Errorf("key layout = %x", uint64(a))
	}
}

func TestPacketWireLen(t *testing.T) {
	u := Packet{Proto: ProtoUDP, PayloadLen: 1000}
	if u.WireLen() != 20+8+1000 {
		t.Errorf("UDP WireLen = %d", u.WireLen())
	}
	c := Packet{Proto: ProtoTCP, PayloadLen: 1000}
	if c.WireLen() != 20+20+1000 {
		t.Errorf("TCP WireLen = %d", c.WireLen())
	}
}

func TestProtoString(t *testing.T) {
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" {
		t.Error("proto strings wrong")
	}
	if Proto(99).String() != "Proto(99)" {
		t.Error("unknown proto string wrong")
	}
}

func samplePacket() Packet {
	return Packet{
		Src: ServerIP, Dst: ClientIP(2), Proto: ProtoTCP,
		IPID: 0xBEEF, SrcPort: 80, DstPort: 50123,
		Seq: 123456789, Ack: 987654321, Flags: FlagACK,
		PayloadLen: 1448, Index: 4001,
		Created: sim.Time(5 * sim.Millisecond),
	}
}

func TestPacketEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	b := appendPacket(nil, &p)
	if len(b) != packetWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), packetWireSize)
	}
	got, rest, err := decodePacket(append(b, 0xAA)) // trailing byte survives
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if len(rest) != 1 || rest[0] != 0xAA {
		t.Errorf("rest = %x", rest)
	}
	if _, _, err := decodePacket(b[:10]); err == nil {
		t.Error("short decode did not fail")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	var snrs [56]float64
	for i := range snrs {
		snrs[i] = float64(i) - 10.25
	}
	msgs := []Message{
		&DownlinkData{Client: ClientMAC(1), Inner: samplePacket()},
		&UplinkData{APID: 3, Client: ClientMAC(1), Inner: samplePacket()},
		&Stop{Client: ClientMAC(1), NewAP: APMAC(4), NewAPID: 4, SwitchID: 77},
		&Start{Client: ClientMAC(1), Index: 4001, SwitchID: 77},
		&SwitchAck{Client: ClientMAC(1), APID: 4, SwitchID: 77},
		&CSIReport{Client: ClientMAC(1), APID: 2, Time: sim.Time(9 * sim.Millisecond), SNRsDB: snrs},
		&BAForward{Client: ClientMAC(1), FromAPID: 5, StartSeq: 1000, Bitmap: 0xDEADBEEFCAFEF00D},
		&AssocState{Client: ClientMAC(1), IP: ClientIP(1), AID: 1, State: StateAssociated},
		&ServerData{Inner: samplePacket()},
		&ReassocRelay{Client: ClientMAC(1), TargetAPID: 3, CurrentAPID: 1},
		&Handoff{Kind: HandoffExport, Client: ClientMAC(1), IP: ClientIP(1),
			Index: 4001, NextIdx: 4005, Score: 23.5, SwitchID: 77},
		&Routed{SrcSeg: 2, DstSeg: 5, TTL: 7,
			Inner: &Handoff{Kind: HandoffClaim, Client: ClientMAC(1), Score: 19.25}},
		&Routed{SrcSeg: 1, DstSeg: 3, TTL: 4,
			Inner: &DirUpdate{Client: ClientMAC(2), Owner: 3, Epoch: 9}},
		&DirUpdate{Client: ClientMAC(1), Owner: 2, Epoch: 41},
		&DirQuery{Client: ClientMAC(1)},
	}
	for _, m := range msgs {
		b := m.Marshal(nil)
		if len(b) != m.WireLen() {
			t.Errorf("%v: encoded %d bytes, WireLen says %d", m.Type(), len(b), m.WireLen())
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("%v: decoded type %v", m.Type(), got.Type())
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v round trip mismatch:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestControlFlag(t *testing.T) {
	// Exactly the switching/association/BA control path is prioritized.
	control := []Message{&Stop{}, &Start{}, &SwitchAck{}, &BAForward{}, &AssocState{}, &ReassocRelay{}, &Handoff{},
		&DirUpdate{}, &DirQuery{}, &Routed{Inner: &Handoff{}}}
	data := []Message{&DownlinkData{}, &UplinkData{}, &CSIReport{}, &ServerData{},
		&Routed{Inner: &DownlinkData{}}}
	for _, m := range control {
		if !m.Control() {
			t.Errorf("%v should be control-priority", m.Type())
		}
	}
	for _, m := range data {
		if m.Control() {
			t.Errorf("%v should not be control-priority", m.Type())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty decode did not fail")
	}
	if _, err := Decode([]byte{0xFF, 1, 2, 3}); err == nil {
		t.Error("unknown type did not fail")
	}
	// Every message type must fail cleanly when truncated at any point.
	var snrs [56]float64
	msgs := []Message{
		&DownlinkData{Inner: samplePacket()},
		&UplinkData{Inner: samplePacket()},
		&Stop{}, &Start{}, &SwitchAck{},
		&CSIReport{SNRsDB: snrs},
		&BAForward{}, &AssocState{}, &ServerData{Inner: samplePacket()},
		&ReassocRelay{}, &Handoff{},
		&Routed{Inner: &Handoff{}}, &DirUpdate{}, &DirQuery{},
	}
	for _, m := range msgs {
		b := m.Marshal(nil)
		for cut := 1; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Errorf("%v: truncation at %d/%d decoded successfully", m.Type(), cut, len(b))
				break
			}
		}
	}
}

func TestCSIReportQuantization(t *testing.T) {
	m := &CSIReport{}
	m.SNRsDB[0] = 23.456
	m.SNRsDB[1] = -3.2
	m.SNRsDB[2] = 1e9 // clamps
	got, err := Decode(m.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*CSIReport)
	if d := r.SNRsDB[0] - 23.456; d > 0.01 || d < -0.01 {
		t.Errorf("quantized SNR = %v, want ≈23.456", r.SNRsDB[0])
	}
	if d := r.SNRsDB[1] + 3.2; d > 0.01 || d < -0.01 {
		t.Errorf("negative SNR = %v, want ≈-3.2", r.SNRsDB[1])
	}
	if r.SNRsDB[2] > 400 {
		t.Errorf("unclamped SNR %v", r.SNRsDB[2])
	}
}

// Property: packet encode/decode is the identity for arbitrary field
// values.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(src, dst [4]byte, ipid, sp, dp, plen, idx uint16, seq, ack uint32, flags uint8, proto bool, created int64) bool {
		p := Packet{
			Src: IP(src), Dst: IP(dst), IPID: ipid,
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags, PayloadLen: plen, Index: idx,
			Created: sim.Time(created),
		}
		if proto {
			p.Proto = ProtoTCP
		} else {
			p.Proto = ProtoUDP
		}
		got, _, err := decodePacket(appendPacket(nil, &p))
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestDecodeNoPanicProperty(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Decode panicked")
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
