package packet

import (
	"encoding/binary"
	"fmt"
	"math"

	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// MsgType tags a backhaul message.
type MsgType uint8

// Backhaul message types.
const (
	MsgInvalid MsgType = iota
	// MsgDownlinkData tunnels a client-addressed packet from the
	// controller to an AP (§3.1.3).
	MsgDownlinkData
	// MsgUplinkData reverse-tunnels a client packet an AP received over
	// the air up to the controller (§3.2.2).
	MsgUplinkData
	// MsgStop orders an AP to cease transmitting to a client (§3.1.2
	// step 1).
	MsgStop
	// MsgStart hands a client off to the next AP with the index of the
	// first unsent packet (§3.1.2 step 2).
	MsgStart
	// MsgSwitchAck confirms switch completion back to the controller
	// (§3.1.2 step 3).
	MsgSwitchAck
	// MsgCSIReport carries one uplink frame's CSI from AP to controller
	// (§3.1.1).
	MsgCSIReport
	// MsgBAForward relays an overheard block ACK to the serving AP
	// (§3.2.1).
	MsgBAForward
	// MsgAssocState replicates a freshly-associated client's station
	// state to all APs (§4.3).
	MsgAssocState
	// MsgServerData carries a packet between the controller and the
	// wired server (WAN side).
	MsgServerData
	// MsgReassocRelay carries an over-the-DS 802.11r fast-transition
	// request from the client's current AP to the target AP.
	MsgReassocRelay
	// MsgHandoff carries cross-segment handoff control between adjacent
	// controllers (or bridges) over the inter-segment trunk: claim,
	// export, ack, and the baseline bridge-to-bridge transfer.
	MsgHandoff
	// MsgRouted is the federation envelope: it carries any trunk message
	// between two (possibly non-adjacent) segments, forwarded hop by hop
	// along next-hop tables with a TTL bound.
	MsgRouted
	// MsgDirUpdate replicates one client→owner-segment directory entry
	// (with its epoch) to the other federation nodes.
	MsgDirUpdate
	// MsgDirQuery asks a federation node to reply with its directory
	// entry for a client it owns (replica-miss recovery).
	MsgDirQuery
)

// RemoteAPID is the Stop.NewAPID sentinel meaning "the successor AP
// lives in another segment": the stopped AP returns its start(c,k) to
// its own controller instead of a local peer, and drains its remaining
// cyclic backlog up the backhaul for trunk forwarding.
const RemoteAPID = 0xFFFF

// Handoff kinds (Handoff.Kind).
const (
	// HandoffClaim: an adjacent controller hears the client strongly and
	// asks the owner to hand it over. Score carries the claimant's best
	// median ESNR in dB.
	HandoffClaim = 1
	// HandoffExport: the owner transfers association + queue state.
	// Index is the resume index k from the stopped AP's start(c,k);
	// NextIndex is the owner's downlink stamping cursor.
	HandoffExport = 2
	// HandoffAck: the importer confirms it is serving the client.
	HandoffAck = 3
	// HandoffBridgeClaim: baseline — the bridge whose AP accepted a
	// reassociation claims the client's wired state by MAC.
	HandoffBridgeClaim = 4
	// HandoffBridgeTransfer: baseline — the previous bridge releases the
	// client and transfers its IP binding.
	HandoffBridgeTransfer = 5
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgDownlinkData:
		return "DownlinkData"
	case MsgUplinkData:
		return "UplinkData"
	case MsgStop:
		return "Stop"
	case MsgStart:
		return "Start"
	case MsgSwitchAck:
		return "SwitchAck"
	case MsgCSIReport:
		return "CSIReport"
	case MsgBAForward:
		return "BAForward"
	case MsgAssocState:
		return "AssocState"
	case MsgServerData:
		return "ServerData"
	case MsgReassocRelay:
		return "ReassocRelay"
	case MsgHandoff:
		return "Handoff"
	case MsgRouted:
		return "Routed"
	case MsgDirUpdate:
		return "DirUpdate"
	case MsgDirQuery:
		return "DirQuery"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is any backhaul message. Marshal appends the full wire form,
// including the leading type byte.
type Message interface {
	Type() MsgType
	Marshal(b []byte) []byte
	// WireLen is the encoded size in bytes (for backhaul serialization
	// delay).
	WireLen() int
	// Control reports whether the message rides the prioritised control
	// path that bypasses data queues (§3.1.2).
	Control() bool
}

// DownlinkData tunnels one indexed client packet to an AP.
type DownlinkData struct {
	Client MAC
	Inner  Packet
}

// Type implements Message.
func (*DownlinkData) Type() MsgType { return MsgDownlinkData }

// Control implements Message.
func (*DownlinkData) Control() bool { return false }

// WireLen implements Message.
func (*DownlinkData) WireLen() int { return 1 + 6 + packetWireSize }

// Marshal implements Message.
func (m *DownlinkData) Marshal(b []byte) []byte {
	b = append(b, byte(MsgDownlinkData))
	b = append(b, m.Client[:]...)
	return appendPacket(b, &m.Inner)
}

// UplinkData reverse-tunnels a received client packet to the controller.
type UplinkData struct {
	APID   uint16
	Client MAC
	Inner  Packet
}

// Type implements Message.
func (*UplinkData) Type() MsgType { return MsgUplinkData }

// Control implements Message.
func (*UplinkData) Control() bool { return false }

// WireLen implements Message.
func (*UplinkData) WireLen() int { return 1 + 2 + 6 + packetWireSize }

// Marshal implements Message.
func (m *UplinkData) Marshal(b []byte) []byte {
	b = append(b, byte(MsgUplinkData))
	b = binary.BigEndian.AppendUint16(b, m.APID)
	b = append(b, m.Client[:]...)
	return appendPacket(b, &m.Inner)
}

// Stop is the controller's order to the serving AP: cease sending to
// Client and hand off to NewAP. SwitchID correlates retransmissions.
type Stop struct {
	Client   MAC
	NewAP    MAC
	NewAPID  uint16
	SwitchID uint32
}

// Type implements Message.
func (*Stop) Type() MsgType { return MsgStop }

// Control implements Message.
func (*Stop) Control() bool { return true }

// WireLen implements Message.
func (*Stop) WireLen() int { return 1 + 6 + 6 + 2 + 4 }

// Marshal implements Message.
func (m *Stop) Marshal(b []byte) []byte {
	b = append(b, byte(MsgStop))
	b = append(b, m.Client[:]...)
	b = append(b, m.NewAP[:]...)
	b = binary.BigEndian.AppendUint16(b, m.NewAPID)
	return binary.BigEndian.AppendUint32(b, m.SwitchID)
}

// Start is AP1→AP2: begin transmitting to Client from cyclic-queue index
// Index.
type Start struct {
	Client   MAC
	Index    uint16
	SwitchID uint32
}

// Type implements Message.
func (*Start) Type() MsgType { return MsgStart }

// Control implements Message.
func (*Start) Control() bool { return true }

// WireLen implements Message.
func (*Start) WireLen() int { return 1 + 6 + 2 + 4 }

// Marshal implements Message.
func (m *Start) Marshal(b []byte) []byte {
	b = append(b, byte(MsgStart))
	b = append(b, m.Client[:]...)
	b = binary.BigEndian.AppendUint16(b, m.Index)
	return binary.BigEndian.AppendUint32(b, m.SwitchID)
}

// SwitchAck is AP2→controller: the switch identified by SwitchID is live.
type SwitchAck struct {
	Client   MAC
	APID     uint16
	SwitchID uint32
}

// Type implements Message.
func (*SwitchAck) Type() MsgType { return MsgSwitchAck }

// Control implements Message.
func (*SwitchAck) Control() bool { return true }

// WireLen implements Message.
func (*SwitchAck) WireLen() int { return 1 + 6 + 2 + 4 }

// Marshal implements Message.
func (m *SwitchAck) Marshal(b []byte) []byte {
	b = append(b, byte(MsgSwitchAck))
	b = append(b, m.Client[:]...)
	b = binary.BigEndian.AppendUint16(b, m.APID)
	return binary.BigEndian.AppendUint32(b, m.SwitchID)
}

// CSIReport carries the per-subcarrier SNRs (centi-dB, clamped to
// ±327 dB) measured on one uplink frame.
type CSIReport struct {
	Client MAC
	APID   uint16
	Time   sim.Time
	SNRsDB [rf.NumSubcarriers]float64
}

// Type implements Message.
func (*CSIReport) Type() MsgType { return MsgCSIReport }

// Control implements Message.
func (*CSIReport) Control() bool { return false }

// WireLen implements Message.
func (*CSIReport) WireLen() int { return 1 + 6 + 2 + 8 + 2*rf.NumSubcarriers }

// Marshal implements Message.
func (m *CSIReport) Marshal(b []byte) []byte {
	b = append(b, byte(MsgCSIReport))
	b = append(b, m.Client[:]...)
	b = binary.BigEndian.AppendUint16(b, m.APID)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Time))
	for _, s := range m.SNRsDB {
		b = binary.BigEndian.AppendUint16(b, uint16(int16(clampCentiDB(s))))
	}
	return b
}

// clampCentiDB quantizes dB to int16 centi-dB.
func clampCentiDB(db float64) int16 {
	v := db * 100
	if v > 32767 {
		v = 32767
	}
	if v < -32768 {
		v = -32768
	}
	return int16(v)
}

// BAForward relays an overheard block ACK: the acknowledged window start
// sequence and the 64-bit bitmap (§3.2.1).
type BAForward struct {
	Client   MAC
	FromAPID uint16
	StartSeq uint16
	Bitmap   uint64
}

// Type implements Message.
func (*BAForward) Type() MsgType { return MsgBAForward }

// Control implements Message.
func (*BAForward) Control() bool { return true }

// WireLen implements Message.
func (*BAForward) WireLen() int { return 1 + 6 + 2 + 2 + 8 }

// Marshal implements Message.
func (m *BAForward) Marshal(b []byte) []byte {
	b = append(b, byte(MsgBAForward))
	b = append(b, m.Client[:]...)
	b = binary.BigEndian.AppendUint16(b, m.FromAPID)
	b = binary.BigEndian.AppendUint16(b, m.StartSeq)
	return binary.BigEndian.AppendUint64(b, m.Bitmap)
}

// AssocState replicates the sta_info of a newly associated client to the
// other APs (§4.3), so all APs can serve it under the shared BSSID.
type AssocState struct {
	Client MAC
	IP     IP
	AID    uint16
	State  uint8
}

// Association states carried in AssocState.State.
const (
	StateAuthenticated = 1
	StateAssociated    = 2
)

// Type implements Message.
func (*AssocState) Type() MsgType { return MsgAssocState }

// Control implements Message.
func (*AssocState) Control() bool { return true }

// WireLen implements Message.
func (*AssocState) WireLen() int { return 1 + 6 + 4 + 2 + 1 }

// Marshal implements Message.
func (m *AssocState) Marshal(b []byte) []byte {
	b = append(b, byte(MsgAssocState))
	b = append(b, m.Client[:]...)
	b = append(b, m.IP[:]...)
	b = binary.BigEndian.AppendUint16(b, m.AID)
	return append(b, m.State)
}

// ServerData carries a packet between controller and wired server.
type ServerData struct {
	Inner Packet
}

// Type implements Message.
func (*ServerData) Type() MsgType { return MsgServerData }

// Control implements Message.
func (*ServerData) Control() bool { return false }

// WireLen implements Message.
func (*ServerData) WireLen() int { return 1 + packetWireSize }

// Marshal implements Message.
func (m *ServerData) Marshal(b []byte) []byte {
	b = append(b, byte(MsgServerData))
	return appendPacket(b, &m.Inner)
}

// ReassocRelay forwards an 802.11r over-the-DS fast-transition request
// from the current AP toward the target AP via the wired backbone.
type ReassocRelay struct {
	Client      MAC
	TargetAPID  uint16
	CurrentAPID uint16
}

// Type implements Message.
func (*ReassocRelay) Type() MsgType { return MsgReassocRelay }

// Control implements Message.
func (*ReassocRelay) Control() bool { return true }

// WireLen implements Message.
func (*ReassocRelay) WireLen() int { return 1 + 6 + 2 + 2 }

// Marshal implements Message.
func (m *ReassocRelay) Marshal(b []byte) []byte {
	b = append(b, byte(MsgReassocRelay))
	b = append(b, m.Client[:]...)
	b = binary.BigEndian.AppendUint16(b, m.TargetAPID)
	return binary.BigEndian.AppendUint16(b, m.CurrentAPID)
}

// Handoff is the inter-segment trunk control message. Kind selects the
// protocol step; unused fields are zero for kinds that do not carry
// them (e.g. Index/NextIndex on a claim).
type Handoff struct {
	Kind     uint8
	Client   MAC
	IP       IP
	Index    uint16  // resume index k (HandoffExport)
	NextIdx  uint16  // downlink stamping cursor (HandoffExport)
	Score    float64 // claimant's best median ESNR dB (HandoffClaim)
	SwitchID uint32
}

// Type implements Message.
func (*Handoff) Type() MsgType { return MsgHandoff }

// Control implements Message.
func (*Handoff) Control() bool { return true }

// WireLen implements Message.
func (*Handoff) WireLen() int { return 1 + 1 + 6 + 4 + 2 + 2 + 8 + 4 }

// Marshal implements Message.
func (m *Handoff) Marshal(b []byte) []byte {
	b = append(b, byte(MsgHandoff))
	b = append(b, m.Kind)
	b = append(b, m.Client[:]...)
	b = append(b, m.IP[:]...)
	b = binary.BigEndian.AppendUint16(b, m.Index)
	b = binary.BigEndian.AppendUint16(b, m.NextIdx)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.Score))
	return binary.BigEndian.AppendUint32(b, m.SwitchID)
}

// Routed is the federation envelope: Inner travels from segment SrcSeg
// to segment DstSeg along next-hop tables, one trunk hop at a time. TTL
// is decremented at each forward; a message whose TTL reaches zero
// before its destination is dropped, bounding any routing cycle.
type Routed struct {
	SrcSeg uint16
	DstSeg uint16
	TTL    uint8
	Inner  Message
}

// Type implements Message.
func (*Routed) Type() MsgType { return MsgRouted }

// Control implements Message. The envelope inherits its inner message's
// queueing class so forwarded data cannot jump the control path.
func (m *Routed) Control() bool { return m.Inner.Control() }

// WireLen implements Message.
func (m *Routed) WireLen() int { return 1 + 2 + 2 + 1 + m.Inner.WireLen() }

// Marshal implements Message.
func (m *Routed) Marshal(b []byte) []byte {
	b = append(b, byte(MsgRouted))
	b = binary.BigEndian.AppendUint16(b, m.SrcSeg)
	b = binary.BigEndian.AppendUint16(b, m.DstSeg)
	b = append(b, m.TTL)
	return m.Inner.Marshal(b)
}

// DirUpdate replicates one client→owner directory entry. Higher epochs
// supersede lower ones; see internal/federation for the beats rule.
type DirUpdate struct {
	Client MAC
	Owner  uint16
	Epoch  uint32
}

// Type implements Message.
func (*DirUpdate) Type() MsgType { return MsgDirUpdate }

// Control implements Message.
func (*DirUpdate) Control() bool { return true }

// WireLen implements Message.
func (*DirUpdate) WireLen() int { return 1 + 6 + 2 + 4 }

// Marshal implements Message.
func (m *DirUpdate) Marshal(b []byte) []byte {
	b = append(b, byte(MsgDirUpdate))
	b = append(b, m.Client[:]...)
	b = binary.BigEndian.AppendUint16(b, m.Owner)
	return binary.BigEndian.AppendUint32(b, m.Epoch)
}

// DirQuery asks the receiving federation node for its directory entry
// covering Client; the current owner answers with a DirUpdate.
type DirQuery struct {
	Client MAC
}

// Type implements Message.
func (*DirQuery) Type() MsgType { return MsgDirQuery }

// Control implements Message.
func (*DirQuery) Control() bool { return true }

// WireLen implements Message.
func (*DirQuery) WireLen() int { return 1 + 6 }

// Marshal implements Message.
func (m *DirQuery) Marshal(b []byte) []byte {
	b = append(b, byte(MsgDirQuery))
	return append(b, m.Client[:]...)
}

// Decode parses one message from b. It returns an error on truncated
// input or an unknown type byte.
func Decode(b []byte) (Message, error) {
	if len(b) < 1 {
		return nil, errShort
	}
	t, rest := MsgType(b[0]), b[1:]
	switch t {
	case MsgDownlinkData:
		var m DownlinkData
		if err := decodeDownlinkData(&m, rest); err != nil {
			return nil, err
		}
		return &m, nil
	case MsgUplinkData:
		var m UplinkData
		if err := decodeUplinkData(&m, rest); err != nil {
			return nil, err
		}
		return &m, nil
	case MsgStop:
		var m Stop
		if len(rest) < 18 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		copy(m.NewAP[:], rest[6:12])
		m.NewAPID = binary.BigEndian.Uint16(rest[12:14])
		m.SwitchID = binary.BigEndian.Uint32(rest[14:18])
		return &m, nil
	case MsgStart:
		var m Start
		if len(rest) < 12 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		m.Index = binary.BigEndian.Uint16(rest[6:8])
		m.SwitchID = binary.BigEndian.Uint32(rest[8:12])
		return &m, nil
	case MsgSwitchAck:
		var m SwitchAck
		if len(rest) < 12 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		m.APID = binary.BigEndian.Uint16(rest[6:8])
		m.SwitchID = binary.BigEndian.Uint32(rest[8:12])
		return &m, nil
	case MsgCSIReport:
		var m CSIReport
		if err := decodeCSIReport(&m, rest); err != nil {
			return nil, err
		}
		return &m, nil
	case MsgBAForward:
		var m BAForward
		if len(rest) < 18 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		m.FromAPID = binary.BigEndian.Uint16(rest[6:8])
		m.StartSeq = binary.BigEndian.Uint16(rest[8:10])
		m.Bitmap = binary.BigEndian.Uint64(rest[10:18])
		return &m, nil
	case MsgAssocState:
		var m AssocState
		if len(rest) < 13 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		copy(m.IP[:], rest[6:10])
		m.AID = binary.BigEndian.Uint16(rest[10:12])
		m.State = rest[12]
		return &m, nil
	case MsgServerData:
		var m ServerData
		if err := decodeServerData(&m, rest); err != nil {
			return nil, err
		}
		return &m, nil
	case MsgReassocRelay:
		var m ReassocRelay
		if len(rest) < 10 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		m.TargetAPID = binary.BigEndian.Uint16(rest[6:8])
		m.CurrentAPID = binary.BigEndian.Uint16(rest[8:10])
		return &m, nil
	case MsgHandoff:
		var m Handoff
		if len(rest) < 27 {
			return nil, errShort
		}
		m.Kind = rest[0]
		copy(m.Client[:], rest[1:7])
		copy(m.IP[:], rest[7:11])
		m.Index = binary.BigEndian.Uint16(rest[11:13])
		m.NextIdx = binary.BigEndian.Uint16(rest[13:15])
		m.Score = math.Float64frombits(binary.BigEndian.Uint64(rest[15:23]))
		m.SwitchID = binary.BigEndian.Uint32(rest[23:27])
		return &m, nil
	case MsgRouted:
		var m Routed
		if len(rest) < 5 {
			return nil, errShort
		}
		m.SrcSeg = binary.BigEndian.Uint16(rest[:2])
		m.DstSeg = binary.BigEndian.Uint16(rest[2:4])
		m.TTL = rest[4]
		inner, err := Decode(rest[5:])
		if err != nil {
			return nil, err
		}
		m.Inner = inner
		return &m, nil
	case MsgDirUpdate:
		var m DirUpdate
		if len(rest) < 12 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		m.Owner = binary.BigEndian.Uint16(rest[6:8])
		m.Epoch = binary.BigEndian.Uint32(rest[8:12])
		return &m, nil
	case MsgDirQuery:
		var m DirQuery
		if len(rest) < 6 {
			return nil, errShort
		}
		copy(m.Client[:], rest[:6])
		return &m, nil
	}
	return nil, fmt.Errorf("packet: unknown message type %d", t)
}

func decodeDownlinkData(m *DownlinkData, rest []byte) error {
	if len(rest) < 6 {
		return errShort
	}
	copy(m.Client[:], rest[:6])
	p, _, err := decodePacket(rest[6:])
	if err != nil {
		return err
	}
	m.Inner = p
	return nil
}

func decodeUplinkData(m *UplinkData, rest []byte) error {
	if len(rest) < 8 {
		return errShort
	}
	m.APID = binary.BigEndian.Uint16(rest[:2])
	copy(m.Client[:], rest[2:8])
	p, _, err := decodePacket(rest[8:])
	if err != nil {
		return err
	}
	m.Inner = p
	return nil
}

func decodeCSIReport(m *CSIReport, rest []byte) error {
	if len(rest) < 16+2*rf.NumSubcarriers {
		return errShort
	}
	copy(m.Client[:], rest[:6])
	m.APID = binary.BigEndian.Uint16(rest[6:8])
	m.Time = sim.Time(binary.BigEndian.Uint64(rest[8:16]))
	for i := 0; i < rf.NumSubcarriers; i++ {
		v := int16(binary.BigEndian.Uint16(rest[16+2*i : 18+2*i]))
		m.SNRsDB[i] = float64(v) / 100
	}
	return nil
}

func decodeServerData(m *ServerData, rest []byte) error {
	p, _, err := decodePacket(rest)
	if err != nil {
		return err
	}
	m.Inner = p
	return nil
}

// DecodeBuf is an allocation-free decoder for the high-rate data-plane
// message types (DownlinkData, UplinkData, CSIReport, ServerData): those
// decode into scratch instances owned by the buffer, so a message
// returned by Decode is valid only until the buffer's next Decode call —
// a consumer that keeps one past its handler must copy the value.
// Control-plane types fall back to the allocating package-level Decode
// and carry no such restriction.
type DecodeBuf struct {
	downlink DownlinkData
	uplink   UplinkData
	csi      CSIReport
	server   ServerData
}

// Decode parses one message from b, reusing the buffer's scratch for the
// data-plane types.
func (d *DecodeBuf) Decode(b []byte) (Message, error) {
	if len(b) < 1 {
		return nil, errShort
	}
	rest := b[1:]
	switch MsgType(b[0]) {
	case MsgDownlinkData:
		if err := decodeDownlinkData(&d.downlink, rest); err != nil {
			return nil, err
		}
		return &d.downlink, nil
	case MsgUplinkData:
		if err := decodeUplinkData(&d.uplink, rest); err != nil {
			return nil, err
		}
		return &d.uplink, nil
	case MsgCSIReport:
		if err := decodeCSIReport(&d.csi, rest); err != nil {
			return nil, err
		}
		return &d.csi, nil
	case MsgServerData:
		if err := decodeServerData(&d.server, rest); err != nil {
			return nil, err
		}
		return &d.server, nil
	}
	return Decode(b)
}
