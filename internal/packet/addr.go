// Package packet defines the data units that move through a WGTT network
// and the binary wire protocol spoken over the Ethernet backhaul between
// controller and APs: tunneled data packets, the stop/start/ack switching
// control messages, CSI reports, forwarded block ACKs, and association
// state replication.
//
// Backhaul messages are real bytes (encode/decode round-trips are tested),
// preserving the paper's property that the controller and APs coordinate
// only through what is actually on the wire.
package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit layer-2 address.
type MAC [6]byte

// String formats the address in the usual colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all zeroes.
func (m MAC) IsZero() bool { return m == MAC{} }

// ClientMAC returns a deterministic client address for index i.
func ClientMAC(i int) MAC {
	return MAC{0x02, 0xc1, 0x1e, 0x00, byte(i >> 8), byte(i)}
}

// APMAC returns a deterministic AP address for index i.
func APMAC(i int) MAC {
	return MAC{0x02, 0xa9, 0x00, 0x00, byte(i >> 8), byte(i)}
}

// IP is an IPv4 address.
type IP [4]byte

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (ip IP) IsZero() bool { return ip == IP{} }

// ClientIP returns the deterministic address 10.0.1.i for client i.
func ClientIP(i int) IP { return IP{10, 0, 1, byte(i + 1)} }

// APIP returns the deterministic address 10.0.0.i for AP i.
func APIP(i int) IP { return IP{10, 0, 0, byte(i + 10)} }

// BSSID is the single basic-service-set identifier every WGTT AP
// advertises (§4.3): the array appears to clients as one AP.
var BSSID = MAC{0x02, 0xb5, 0x51, 0xd0, 0x00, 0x01}

// ControllerIP is the controller's backhaul address.
var ControllerIP = IP{10, 0, 0, 1}

// ServerIP is the wired server endpoint behind the controller (the local
// content server of §5's case studies).
var ServerIP = IP{10, 0, 2, 1}

// DedupKey is the 48-bit uplink de-duplication key of §3.2.2: the source
// IP concatenated with the 16-bit IP identification field.
type DedupKey uint64

// NewDedupKey builds the key from a packet's source address and IP ID.
func NewDedupKey(src IP, ipid uint16) DedupKey {
	return DedupKey(uint64(binary.BigEndian.Uint32(src[:]))<<16 | uint64(ipid))
}
