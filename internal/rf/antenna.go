package rf

// Antenna describes a transmit or receive antenna's directivity. GainDB
// reports gain in dBi toward a bearing measured in degrees from the +X
// axis (same convention as Position.AngleTo).
type Antenna interface {
	GainDB(bearingDeg float64) float64
}

// Omni is an omnidirectional antenna with a flat gain, used for the mobile
// clients (laptop / phone antennas).
type Omni struct {
	Gain float64 // dBi
}

// GainDB implements Antenna.
func (o Omni) GainDB(float64) float64 { return o.Gain }

// Parabolic models the Laird GD24BP-style grid parabolic used on each WGTT
// AP: 14 dBi peak with a 21° half-power beamwidth. The main lobe follows
// the standard quadratic approximation G(θ) = peak − 12·(θ/HPBW)² dB, which
// puts the −3 dB points at ±HPBW/2; beyond that the gain floors at the
// side-lobe level. The paper leans on those side lobes: they are what lets
// a non-serving AP overhear block ACKs (§3.2.1) and what keeps simultaneous
// link-layer acks from colliding destructively (§5.3.2).
type Parabolic struct {
	PeakGain     float64 // dBi at boresight
	BeamwidthDeg float64 // half-power (−3 dB) full beamwidth
	SideLobeDB   float64 // side-lobe level relative to peak (negative, e.g. −20)
	BoresightDeg float64 // pointing direction, degrees from +X axis
}

// DefaultParabolic returns the paper's AP antenna aimed at boresightDeg.
func DefaultParabolic(boresightDeg float64) Parabolic {
	return Parabolic{
		PeakGain:     14,
		BeamwidthDeg: 21,
		SideLobeDB:   -28,
		BoresightDeg: boresightDeg,
	}
}

// GainDB implements Antenna.
func (p Parabolic) GainDB(bearingDeg float64) float64 {
	off := normalizeAngle(bearingDeg - p.BoresightDeg)
	loss := 12 * (off / p.BeamwidthDeg) * (off / p.BeamwidthDeg)
	if loss > -p.SideLobeDB {
		loss = -p.SideLobeDB
	}
	return p.PeakGain - loss
}
