package rf

import (
	"math"
	"math/cmplx"

	"wgtt/internal/sim"
)

// NumSubcarriers is the number of data/pilot subcarriers the Atheros CSI
// tool reports for a 20 MHz 802.11n channel, and hence the resolution at
// which WGTT sees the channel.
const NumSubcarriers = 56

// SubcarrierSpacingHz is the 802.11 OFDM subcarrier spacing (312.5 kHz).
const SubcarrierSpacingHz = 312.5e3

// subcarrierOffsetHz returns the baseband frequency offset of subcarrier
// index i (0..55), mapping onto the HT20 occupied set −28..−1, +1..+28.
func subcarrierOffsetHz(i int) float64 {
	k := i - NumSubcarriers/2 // −28..27
	if k >= 0 {
		k++ // skip DC
	}
	return float64(k) * SubcarrierSpacingHz
}

// tap is one resolvable multipath cluster: a delay plus a sum of planar
// scattered waves whose phases rotate with client position.
type tap struct {
	delaySec    float64
	ampl        float64 // linear amplitude weight (sqrt of tap power)
	scatterAmpl float64 // per-wave scattered amplitude incl. 1/√N
	// Scattered-wave parameters: unit arrival directions and phases.
	dirX, dirY []float64
	phase      []float64
	// los is the deterministic (Rician) component amplitude; zero for
	// pure Rayleigh taps.
	los      float64
	losDirX  float64
	losDirY  float64
	losPhase float64
}

// Fader produces the small-scale complex channel gain of one AP↔client
// link, per subcarrier, as a function of client position. It implements a
// spatial sum-of-sinusoids (Jakes/Clarke) model over a tapped delay line:
//
//	h_l(pos) = a_l · [ sqrt(K/(K+1))·e^{j(k·d_los·pos+φ)} +
//	                   sqrt(1/(K+1))·(1/√N)·Σ_n e^{j(k·d_n·pos + φ_n)} ]
//	H_i(pos) = Σ_l h_l(pos) · e^{−j2π f_i τ_l}
//
// with k = 2π/λ. The envelope of each tap is Rayleigh (or Rician with
// factor K), spatially correlated with coherence distance ≈ λ/2, and the
// delay spread across taps makes the response frequency-selective — the
// property ESNR exists to capture.
//
// A Fader is NOT safe for concurrent use: Gains writes into a scratch
// buffer owned by the Fader. Each simulation run builds its own network
// (and hence its own Faders) from a per-run forked RNG, so the parallel
// experiment runner never shares a Fader across goroutines.
type Fader struct {
	waveNumber float64 // 2π/λ
	taps       []tap
	// rot holds each tap's per-subcarrier delay rotation
	// e^{−j2π f_i τ_l}, precomputed once in NewFader since tap delays
	// never change: rot[l*NumSubcarriers+i].
	rot []complex128
	// tapGains is the per-call scratch for the taps' spatial gains,
	// kept on the Fader so Gains is allocation-free.
	tapGains []complex128
}

// FadingParams configures a Fader.
type FadingParams struct {
	FreqHz float64 // carrier frequency
	// NumTaps is the number of resolvable multipath clusters. The paper
	// notes WGTT's small cells keep delay spread indoor-like, so a few
	// taps with ~100 ns spacing suffice.
	NumTaps int
	// TapSpacingSec is the excess delay between consecutive taps.
	TapSpacingSec float64
	// DecayDB is the per-tap power decay of the exponential power delay
	// profile.
	DecayDB float64
	// NumWaves is the number of scattered plane waves per tap.
	NumWaves int
	// RicianK is the K-factor (linear) of the first tap; 0 = Rayleigh.
	RicianK float64
}

// DefaultFadingParams models the roadside testbed: three clusters 100 ns
// apart decaying 3 dB per tap, Rayleigh (the street-level path to a car is
// dominated by reflections off vehicles and facades).
func DefaultFadingParams(freqHz float64) FadingParams {
	return FadingParams{
		FreqHz:        freqHz,
		NumTaps:       3,
		TapSpacingSec: 100e-9,
		DecayDB:       3,
		NumWaves:      12,
		RicianK:       0,
	}
}

// NewFader draws a random multipath realization for one link. The same RNG
// fork always yields the same realization, so experiment runs are
// reproducible.
func NewFader(p FadingParams, rng *sim.RNG) *Fader {
	if p.NumTaps < 1 {
		p.NumTaps = 1
	}
	if p.NumWaves < 1 {
		p.NumWaves = 1
	}
	lambda := SpeedOfLight / p.FreqHz
	f := &Fader{waveNumber: 2 * math.Pi / lambda}

	// Exponential power delay profile, normalized to unit total power.
	powers := make([]float64, p.NumTaps)
	total := 0.0
	for l := range powers {
		powers[l] = math.Pow(10, -p.DecayDB*float64(l)/10)
		total += powers[l]
	}
	for l := range powers {
		powers[l] /= total
	}

	for l := 0; l < p.NumTaps; l++ {
		t := tap{
			delaySec: float64(l) * p.TapSpacingSec,
			ampl:     math.Sqrt(powers[l]),
		}
		k := 0.0
		if l == 0 {
			k = p.RicianK
		}
		scatter := math.Sqrt(1 / (k + 1))
		t.los = math.Sqrt(k / (k + 1))
		if t.los > 0 {
			ang := 2 * math.Pi * rng.Float64()
			t.losDirX, t.losDirY = math.Cos(ang), math.Sin(ang)
			t.losPhase = 2 * math.Pi * rng.Float64()
		}
		for n := 0; n < p.NumWaves; n++ {
			ang := 2 * math.Pi * rng.Float64()
			t.dirX = append(t.dirX, math.Cos(ang))
			t.dirY = append(t.dirY, math.Sin(ang))
			t.phase = append(t.phase, 2*math.Pi*rng.Float64())
		}
		t.los *= t.ampl
		t.amplScatter(scatter, p.NumWaves)
		f.taps = append(f.taps, t)
	}
	f.rot = make([]complex128, len(f.taps)*NumSubcarriers)
	for l := range f.taps {
		for i := 0; i < NumSubcarriers; i++ {
			ph := -2 * math.Pi * subcarrierOffsetHz(i) * f.taps[l].delaySec
			s, c := math.Sincos(ph)
			f.rot[l*NumSubcarriers+i] = complex(c, s)
		}
	}
	f.tapGains = make([]complex128, len(f.taps))
	return f
}

// amplScatter folds the Rician scatter fraction and the 1/√N wave
// normalization into the tap's scattered amplitude.
func (t *tap) amplScatter(scatter float64, numWaves int) {
	t.scatterAmpl = t.ampl * scatter / math.Sqrt(float64(numWaves))
}

// tapGain evaluates the tap's complex gain at a client position.
func (t *tap) gain(k float64, pos Position) complex128 {
	var re, im float64
	for n := range t.phase {
		ph := k*(t.dirX[n]*pos.X+t.dirY[n]*pos.Y) + t.phase[n]
		s, c := math.Sincos(ph)
		re += c
		im += s
	}
	g := complex(re*t.scatterAmpl, im*t.scatterAmpl)
	if t.los > 0 {
		ph := k*(t.losDirX*pos.X+t.losDirY*pos.Y) + t.losPhase
		g += cmplx.Rect(t.los, ph)
	}
	return g
}

// Gains fills dst with the complex channel gain of every subcarrier at the
// given client position. dst must have length NumSubcarriers. The mean
// square of the gains over positions and realizations is 1, so large-scale
// power is untouched on average.
//
// Gains reuses the Fader's scratch buffer and precomputed delay
// rotations, so it performs no allocation; see the Fader doc comment for
// the resulting (single-goroutine) ownership rule.
func (f *Fader) Gains(pos Position, dst []complex128) {
	if len(dst) != NumSubcarriers {
		panic("rf: Gains dst must have NumSubcarriers elements")
	}
	// Evaluate each tap once, then rotate per subcarrier by its delay.
	for l := range f.taps {
		f.tapGains[l] = f.taps[l].gain(f.waveNumber, pos)
	}
	for i := range dst {
		var sum complex128
		for l := range f.taps {
			sum += f.tapGains[l] * f.rot[l*NumSubcarriers+i]
		}
		dst[i] = sum
	}
}

// PowerDB returns the wideband (subcarrier-averaged) fading power in dB at
// a position: 10·log10(mean |H_i|²).
func (f *Fader) PowerDB(pos Position) float64 {
	var gains [NumSubcarriers]complex128
	f.Gains(pos, gains[:])
	sum := 0.0
	for _, g := range gains {
		re, im := real(g), imag(g)
		sum += re*re + im*im
	}
	return 10 * math.Log10(sum/NumSubcarriers)
}

// MaxFadeDB returns an analytic upper bound (dB) on the per-subcarrier
// fading gain any Fader built from p can produce, over all positions,
// phases, and realizations. Per tap, the scattered sum of N unit phasors
// is at most N·scatterAmpl in magnitude and the LOS component adds its
// amplitude; |H_i| is at most the sum of the per-tap bounds. The bound is
// what licenses the audibility prefilter: large-scale SNR plus MaxFadeDB
// below the detect threshold ⇒ every subcarrier is below it too.
func MaxFadeDB(p FadingParams) float64 {
	if p.NumTaps < 1 {
		p.NumTaps = 1
	}
	if p.NumWaves < 1 {
		p.NumWaves = 1
	}
	// Mirror NewFader's power normalization exactly.
	powers := make([]float64, p.NumTaps)
	total := 0.0
	for l := range powers {
		powers[l] = math.Pow(10, -p.DecayDB*float64(l)/10)
		total += powers[l]
	}
	sum := 0.0
	for l := range powers {
		ampl := math.Sqrt(powers[l] / total)
		k := 0.0
		if l == 0 {
			k = p.RicianK
		}
		sum += ampl * (math.Sqrt(float64(p.NumWaves)/(k+1)) + math.Sqrt(k/(k+1)))
	}
	return 20 * math.Log10(sum)
}
