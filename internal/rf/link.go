package rf

import (
	"math"

	"wgtt/internal/sim"
)

// Params sets the large-scale radio budget shared by every link in a
// deployment. Defaults (see DefaultParams) are tuned so that a client on
// the road directly in an AP's beam sees ~28 dB ESNR — matching the peak of
// the paper's Fig. 10 heatmap — decaying to single digits within ±10 m
// along the road, which reproduces the 5.2 m cells with 6–10 m overlap.
type Params struct {
	FreqHz      float64 // carrier frequency (channel 11 = 2.462 GHz)
	TxPowerDBm  float64 // transmit power at the antenna port
	NoiseDBm    float64 // receiver noise floor over 20 MHz
	RefLossDB   float64 // path loss at the 1 m reference distance
	PathLossExp float64 // log-distance path-loss exponent
	// SystemLossDB lumps splitter, cable, window-glass and body losses —
	// the fixed insertion losses of the §4.2 hardware chain.
	SystemLossDB float64
	// ShadowSigmaDB is the standard deviation of the smooth log-normal
	// shadowing process; ShadowCorrDistM its spatial decorrelation
	// distance.
	ShadowSigmaDB   float64
	ShadowCorrDistM float64
	Fading          FadingParams
}

// DefaultParams returns the radio budget of the eight-AP testbed.
func DefaultParams() Params {
	const freq = 2.462e9 // 2.4 GHz channel 11
	return Params{
		FreqHz:          freq,
		TxPowerDBm:      15,
		NoiseDBm:        -95,
		RefLossDB:       40.2, // free space at 1 m, 2.462 GHz
		PathLossExp:     2.7,
		SystemLossDB:    21,
		ShadowSigmaDB:   2.5,
		ShadowCorrDistM: 8,
		Fading:          DefaultFadingParams(freq),
	}
}

// MaxShadowDB returns the largest magnitude (dB) the shadowing process
// can reach: every sinusoid component at its peak simultaneously.
func (p Params) MaxShadowDB() float64 {
	return p.ShadowSigmaDB * math.Sqrt(2*shadowComps)
}

// Shadowing is a smooth, spatially-correlated log-normal process over the
// client position, built from a small sum of long-wavelength sinusoids.
// Unlike per-sample Gaussian draws it is continuous in position, so a car
// driving by sees shadowing evolve at the ~10 m scale (Gudmundson model
// behaviour) rather than flickering packet to packet. Exported so channel
// backends other than the default can reuse the realization machinery.
type Shadowing struct {
	sigma float64
	kx    []float64
	ky    []float64
	phase []float64
	norm  float64
}

// shadowComps is the number of sinusoid components in the shadowing
// process; it bounds the process at ±sigma·√(2·shadowComps) dB.
const shadowComps = 8

// ShadowComps exposes the sinusoid component count so backends can state
// the matching MaxShadowDB-style bound: sigma·√(2·ShadowComps).
const ShadowComps = shadowComps

// NewShadowing draws a shadowing realization from rng.
func NewShadowing(sigmaDB, corrDistM float64, rng *sim.RNG) *Shadowing {
	const comps = shadowComps
	s := &Shadowing{sigma: sigmaDB, norm: math.Sqrt(2.0 / comps)}
	if sigmaDB == 0 {
		return s
	}
	for i := 0; i < comps; i++ {
		// Spatial frequencies spread around 1/corrDist.
		w := (0.5 + rng.Float64()) * 2 * math.Pi / corrDistM
		ang := 2 * math.Pi * rng.Float64()
		s.kx = append(s.kx, w*math.Cos(ang))
		s.ky = append(s.ky, w*math.Sin(ang))
		s.phase = append(s.phase, 2*math.Pi*rng.Float64())
	}
	return s
}

// DB evaluates the shadowing process in dB at a position.
func (s *Shadowing) DB(pos Position) float64 {
	if s.sigma == 0 || len(s.kx) == 0 {
		return 0
	}
	sum := 0.0
	for i := range s.kx {
		sum += math.Sin(s.kx[i]*pos.X + s.ky[i]*pos.Y + s.phase[i])
	}
	return s.sigma * s.norm * sum
}

// Link is the radio path between one AP and one client. It is reciprocal:
// uplink and downlink see the same instantaneous channel, which is what
// lets WGTT predict downlink delivery from uplink CSI.
type Link struct {
	params  Params
	apPos   Position
	apAnt   Antenna
	cliAnt  Antenna
	fader   *Fader
	shadow  *Shadowing
	fadeOff bool
}

// NewLink creates the radio path between an AP (fixed position and antenna)
// and a mobile client carrying antenna cliAnt. Each link gets its own
// fading and shadowing realization from rng.
func NewLink(p Params, apPos Position, apAnt Antenna, cliAnt Antenna, rng *sim.RNG) *Link {
	return &Link{
		params: p,
		apPos:  apPos,
		apAnt:  apAnt,
		cliAnt: cliAnt,
		fader:  NewFader(p.Fading, rng.Fork("fading")),
		shadow: NewShadowing(p.ShadowSigmaDB, p.ShadowCorrDistM, rng.Fork("shadow")),
	}
}

// DisableFading freezes small-scale fading at unit gain; used by tests and
// by the heatmap experiment, which the paper computes from smoothed ESNR.
func (l *Link) DisableFading() { l.fadeOff = true }

// APPos returns the AP end of the link.
func (l *Link) APPos() Position { return l.apPos }

// meanRxPowerDBm is the large-scale (fading-free) received power at the
// client position.
func (l *Link) meanRxPowerDBm(cliPos Position) float64 {
	d := l.apPos.Distance(cliPos)
	if d < 1 {
		d = 1
	}
	pl := l.params.RefLossDB + 10*l.params.PathLossExp*math.Log10(d)
	gTx := l.apAnt.GainDB(l.apPos.AngleTo(cliPos))
	gRx := l.cliAnt.GainDB(cliPos.AngleTo(l.apPos))
	return l.params.TxPowerDBm + gTx + gRx - pl - l.params.SystemLossDB + l.shadow.DB(cliPos)
}

// MeanSNRdB returns the large-scale SNR (no fast fading) at the client
// position — the smoothed curve of the paper's Fig. 2.
func (l *Link) MeanSNRdB(cliPos Position) float64 {
	return l.meanRxPowerDBm(cliPos) - l.params.NoiseDBm
}

// SubcarrierSNRsDB fills dst (length NumSubcarriers) with the instantaneous
// per-subcarrier SNR in dB at the client position — the quantity the
// Atheros CSI tool exposes and from which ESNR is computed.
func (l *Link) SubcarrierSNRsDB(cliPos Position, dst []float64) {
	if len(dst) != NumSubcarriers {
		panic("rf: SubcarrierSNRsDB dst must have NumSubcarriers elements")
	}
	mean := l.MeanSNRdB(cliPos)
	if l.fadeOff {
		for i := range dst {
			dst[i] = mean
		}
		return
	}
	var gains [NumSubcarriers]complex128
	l.fader.Gains(cliPos, gains[:])
	for i, g := range gains {
		re, im := real(g), imag(g)
		p := re*re + im*im
		if p < 1e-12 {
			p = 1e-12
		}
		dst[i] = mean + 10*math.Log10(p)
	}
}

// SNRdB returns the instantaneous wideband SNR (dB) at the client
// position: mean SNR plus the subcarrier-averaged fading power.
func (l *Link) SNRdB(cliPos Position) float64 {
	if l.fadeOff {
		return l.MeanSNRdB(cliPos)
	}
	return l.MeanSNRdB(cliPos) + l.fader.PowerDB(cliPos)
}
