package rf

import (
	"math"
	"testing"
)

// TestParabolicBoresightWraparound pins the ±180° seam: a boresight near
// the wrap must see peak gain straight ahead and a smooth quadratic
// falloff on both sides of the seam, never a spurious 360° offset.
func TestParabolicBoresightWraparound(t *testing.T) {
	for _, boresight := range []float64{180, -180, 179, -179} {
		ant := DefaultParabolic(boresight)
		if g := ant.GainDB(boresight); g != ant.PeakGain {
			t.Errorf("boresight %v: gain at boresight %v, want peak %v", boresight, g, ant.PeakGain)
		}
		// Bearings expressed from the other side of the seam are the
		// same physical direction.
		other := boresight - 360
		if boresight < 0 {
			other = boresight + 360
		}
		if g := ant.GainDB(other); g != ant.PeakGain {
			t.Errorf("boresight %v: gain at equivalent bearing %v is %v, want peak", boresight, other, g)
		}
		// Symmetric half-power points: ±HPBW/2 off boresight, crossing
		// the seam on one side.
		lo := ant.GainDB(boresight - ant.BeamwidthDeg/2)
		hi := ant.GainDB(boresight + ant.BeamwidthDeg/2)
		if math.Abs(lo-(ant.PeakGain-3)) > 1e-9 || math.Abs(hi-(ant.PeakGain-3)) > 1e-9 {
			t.Errorf("boresight %v: half-power points %v/%v, want %v", boresight, lo, hi, ant.PeakGain-3)
		}
		if math.Abs(lo-hi) > 1e-9 {
			t.Errorf("boresight %v: asymmetric falloff across the seam: %v vs %v", boresight, lo, hi)
		}
	}
}

// TestParabolicSideLobeFloor pins the floor: far off boresight the gain
// is exactly peak + sidelobe, regardless of how many turns the bearing
// is expressed with.
func TestParabolicSideLobeFloor(t *testing.T) {
	ant := DefaultParabolic(-90)
	want := ant.PeakGain + ant.SideLobeDB
	for _, bearing := range []float64{90, 90 + 360, 90 - 720, -270} {
		if g := ant.GainDB(bearing); g != want {
			t.Errorf("gain at %v = %v, want side-lobe floor %v", bearing, g, want)
		}
	}
}

// TestOmniFlat pins the client antenna: flat gain at every bearing.
func TestOmniFlat(t *testing.T) {
	o := Omni{Gain: 2}
	for _, b := range []float64{0, 90, -180, 450} {
		if o.GainDB(b) != 2 {
			t.Errorf("omni gain at %v not flat", b)
		}
	}
}

// TestAngleToZeroDistance pins the degenerate geometry the gain path can
// see when a client sits exactly on the AP mount point: the bearing must
// be a finite number (Atan2(0,0) = 0 by definition), not NaN, so the
// budget stays finite.
func TestAngleToZeroDistance(t *testing.T) {
	p := Position{X: 3, Y: -7}
	bearing := p.AngleTo(p)
	if math.IsNaN(bearing) || math.IsInf(bearing, 0) {
		t.Fatalf("AngleTo(self) = %v; want finite", bearing)
	}
	ant := DefaultParabolic(-90)
	if g := ant.GainDB(bearing); math.IsNaN(g) || g > ant.PeakGain {
		t.Errorf("gain at zero distance = %v; want finite and <= peak", g)
	}
}
