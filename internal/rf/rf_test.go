package rf

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func TestPositionGeometry(t *testing.T) {
	a := Position{0, 0}
	b := Position{3, 4}
	if d := a.Distance(b); d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
	if d := b.Distance(a); d != 5 {
		t.Errorf("Distance not symmetric: %v", d)
	}
	if ang := a.AngleTo(Position{1, 0}); ang != 0 {
		t.Errorf("AngleTo(+X) = %v, want 0", ang)
	}
	if ang := a.AngleTo(Position{0, 1}); ang != 90 {
		t.Errorf("AngleTo(+Y) = %v, want 90", ang)
	}
	if ang := a.AngleTo(Position{-1, 0}); ang != 180 {
		t.Errorf("AngleTo(-X) = %v, want 180", ang)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, 180}, {-180, 180}, {190, -170}, {-190, 170}, {540, 180}, {360, 0},
	}
	for _, c := range cases {
		if got := normalizeAngle(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("normalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParabolicPattern(t *testing.T) {
	p := DefaultParabolic(90) // pointing +Y
	peak := p.GainDB(90)
	if peak != 14 {
		t.Errorf("boresight gain = %v, want 14", peak)
	}
	// Half-power beamwidth: −3 dB at ±10.5° off boresight.
	if g := p.GainDB(90 + 10.5); math.Abs(g-(14-3)) > 1e-9 {
		t.Errorf("gain at half beamwidth = %v, want 11", g)
	}
	// Symmetric pattern.
	if p.GainDB(90+7) != p.GainDB(90-7) {
		t.Error("pattern not symmetric about boresight")
	}
	// Side-lobe floor: far off boresight the gain clamps at peak−28.
	if g := p.GainDB(90 + 120); g != 14-28 {
		t.Errorf("side-lobe gain = %v, want -14", g)
	}
	// Wrap-around: bearing −179 vs boresight 180 is only 1° off.
	q := DefaultParabolic(180)
	if g := q.GainDB(-179); g < 13.9 {
		t.Errorf("wrap-around gain = %v, want ~14", g)
	}
}

func TestParabolicMonotoneInMainLobe(t *testing.T) {
	p := DefaultParabolic(0)
	prev := p.GainDB(0)
	for off := 1.0; off <= 25; off++ {
		g := p.GainDB(off)
		if g > prev {
			t.Fatalf("gain increased moving off boresight at %v°", off)
		}
		prev = g
	}
}

func TestSubcarrierOffsets(t *testing.T) {
	// 56 subcarriers: −28..−1 and +1..+28, no DC.
	if subcarrierOffsetHz(0) != -28*SubcarrierSpacingHz {
		t.Errorf("first subcarrier offset = %v", subcarrierOffsetHz(0))
	}
	if subcarrierOffsetHz(NumSubcarriers-1) != 28*SubcarrierSpacingHz {
		t.Errorf("last subcarrier offset = %v", subcarrierOffsetHz(NumSubcarriers-1))
	}
	for i := 0; i < NumSubcarriers; i++ {
		if subcarrierOffsetHz(i) == 0 {
			t.Fatal("DC subcarrier present")
		}
		if i > 0 && subcarrierOffsetHz(i) <= subcarrierOffsetHz(i-1) {
			t.Fatal("subcarrier offsets not strictly increasing")
		}
	}
}

func TestFaderUnitMeanPower(t *testing.T) {
	// Average |H|² over many positions ≈ 1: fading must not add or
	// remove average link budget.
	rng := sim.NewRNG(3)
	f := NewFader(DefaultFadingParams(2.462e9), rng)
	var gains [NumSubcarriers]complex128
	sum, n := 0.0, 0
	for i := 0; i < 400; i++ {
		pos := Position{X: float64(i) * 0.37, Y: float64(i%7) * 0.11}
		f.Gains(pos, gains[:])
		for _, g := range gains {
			re, im := real(g), imag(g)
			sum += re*re + im*im
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 0.7 || mean > 1.4 {
		t.Errorf("mean fading power = %v, want ~1", mean)
	}
}

func TestFaderSpatialCoherence(t *testing.T) {
	// The channel must be nearly constant over ~1 cm (≪ λ/2) and
	// decorrelated over several wavelengths (fast fading at the 12 cm
	// scale, §1).
	rng := sim.NewRNG(4)
	f := NewFader(DefaultFadingParams(2.462e9), rng)
	var a, b, c [NumSubcarriers]complex128
	pos := Position{X: 5, Y: 0}
	f.Gains(pos, a[:])
	f.Gains(Position{X: 5.002, Y: 0}, b[:]) // 2 mm away
	f.Gains(Position{X: 6.5, Y: 0}, c[:])   // ~12 λ away
	var dNear, dFar, p float64
	for i := range a {
		dNear += absSq(a[i] - b[i])
		dFar += absSq(a[i] - c[i])
		p += absSq(a[i])
	}
	if dNear/p > 0.02 {
		t.Errorf("channel changed by %v over 2 mm, want <2%%", dNear/p)
	}
	if dFar/p < 0.2 {
		t.Errorf("channel changed by only %v over 1.5 m, want substantial decorrelation", dFar/p)
	}
}

func absSq(g complex128) float64 {
	return real(g)*real(g) + imag(g)*imag(g)
}

func TestFaderFrequencySelectivity(t *testing.T) {
	// With multiple taps the response must vary across subcarriers;
	// with a single tap it must be flat.
	rng := sim.NewRNG(5)
	multi := NewFader(DefaultFadingParams(2.462e9), rng.Fork("multi"))
	flatParams := DefaultFadingParams(2.462e9)
	flatParams.NumTaps = 1
	flat := NewFader(flatParams, rng.Fork("flat"))

	var g [NumSubcarriers]complex128
	spreadMulti, spreadFlat := 0.0, 0.0
	for i := 0; i < 50; i++ {
		pos := Position{X: float64(i) * 0.9, Y: 0}
		multi.Gains(pos, g[:])
		spreadMulti += powerSpreadDB(g[:])
		flat.Gains(pos, g[:])
		spreadFlat += powerSpreadDB(g[:])
	}
	if spreadFlat > 1e-6 {
		t.Errorf("single-tap channel has subcarrier spread %v dB, want 0", spreadFlat/50)
	}
	if spreadMulti/50 < 1 {
		t.Errorf("multi-tap channel subcarrier spread %v dB, want ≥1 dB", spreadMulti/50)
	}
}

// powerSpreadDB returns max−min subcarrier power in dB.
func powerSpreadDB(g []complex128) float64 {
	minP, maxP := math.Inf(1), math.Inf(-1)
	for _, x := range g {
		p := absSq(x)
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if minP <= 0 {
		minP = 1e-12
	}
	return 10 * (math.Log10(maxP) - math.Log10(minP))
}

func TestFaderDeterministicRealization(t *testing.T) {
	p := DefaultFadingParams(2.462e9)
	f1 := NewFader(p, sim.NewRNG(9).Fork("x"))
	f2 := NewFader(p, sim.NewRNG(9).Fork("x"))
	var a, b [NumSubcarriers]complex128
	pos := Position{X: 3.3, Y: 1.1}
	f1.Gains(pos, a[:])
	f2.Gains(pos, b[:])
	if a != b {
		t.Error("same seed produced different fading realizations")
	}
}

func TestLinkBudget(t *testing.T) {
	p := DefaultParams()
	rng := sim.NewRNG(11)
	apPos := Position{X: 0, Y: 18}
	// Boresight points straight down at the road (−Y).
	link := NewLink(p, apPos, DefaultParabolic(-90), Omni{}, rng)
	link.DisableFading()

	boresight := link.MeanSNRdB(Position{X: 0, Y: 0})
	if boresight < 22 || boresight > 34 {
		t.Errorf("boresight SNR = %v dB, want ~28 (Fig. 10 peak)", boresight)
	}
	// 10 m along the road: deep in the pattern skirt, near cell edge.
	edge := link.MeanSNRdB(Position{X: 10, Y: 0})
	if edge > boresight-12 {
		t.Errorf("edge SNR %v dB not far enough below boresight %v dB", edge, boresight)
	}
	// SNR monotonically degrades (modulo shadowing) moving away.
	far := link.MeanSNRdB(Position{X: 40, Y: 0})
	if far > edge {
		t.Errorf("SNR grew with distance: %v at 10 m, %v at 40 m", edge, far)
	}
}

func TestLinkSubcarrierSNRs(t *testing.T) {
	p := DefaultParams()
	link := NewLink(p, Position{X: 0, Y: 18}, DefaultParabolic(-90), Omni{}, sim.NewRNG(12))
	var snrs [NumSubcarriers]float64
	link.SubcarrierSNRsDB(Position{X: 1, Y: 0}, snrs[:])
	mean := link.MeanSNRdB(Position{X: 1, Y: 0})
	for i, s := range snrs {
		if s < mean-40 || s > mean+15 {
			t.Errorf("subcarrier %d SNR %v wildly far from mean %v", i, s, mean)
		}
	}
	// Disabled fading: all subcarriers equal the mean.
	link.DisableFading()
	link.SubcarrierSNRsDB(Position{X: 1, Y: 0}, snrs[:])
	for _, s := range snrs {
		if s != mean {
			t.Errorf("fading-off subcarrier SNR %v != mean %v", s, mean)
		}
	}
}

func TestLinkReciprocityAndDeterminism(t *testing.T) {
	p := DefaultParams()
	l1 := NewLink(p, Position{X: 5, Y: 18}, DefaultParabolic(-90), Omni{}, sim.NewRNG(13))
	l2 := NewLink(p, Position{X: 5, Y: 18}, DefaultParabolic(-90), Omni{}, sim.NewRNG(13))
	for i := 0; i < 20; i++ {
		pos := Position{X: float64(i), Y: 0.5}
		if l1.SNRdB(pos) != l2.SNRdB(pos) {
			t.Fatal("identical links disagree")
		}
	}
}

func TestShadowingSmoothAndBounded(t *testing.T) {
	s := NewShadowing(2.5, 8, sim.NewRNG(14))
	prev := s.DB(Position{})
	for x := 0.1; x < 50; x += 0.1 {
		v := s.DB(Position{X: x})
		if math.Abs(v) > 4*2.5 {
			t.Fatalf("shadowing %v dB exceeds 4σ", v)
		}
		if math.Abs(v-prev) > 1.5 {
			t.Fatalf("shadowing jumped %v dB over 10 cm — not smooth", v-prev)
		}
		prev = v
	}
	// Zero sigma is exactly zero everywhere.
	z := NewShadowing(0, 8, sim.NewRNG(15))
	if z.DB(Position{X: 3}) != 0 {
		t.Error("zero-sigma shadowing nonzero")
	}
}

// Property: mean SNR never increases when moving directly away from the AP
// along the boresight ray (no shadowing, no fading).
func TestPathLossMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	link := NewLink(p, Position{X: 0, Y: 0}, Omni{}, Omni{}, sim.NewRNG(16))
	link.DisableFading()
	f := func(d1, d2 uint8) bool {
		a := 1 + float64(d1)
		b := a + float64(d2)
		return link.MeanSNRdB(Position{X: b}) <= link.MeanSNRdB(Position{X: a})+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestAPFlipsAtMillisecondScale(t *testing.T) {
	// The defining property of the vehicular picocell regime (Fig. 2):
	// in the overlap zone between adjacent APs, the instantaneous best
	// AP changes many times per second at driving speed.
	p := DefaultParams()
	p.ShadowSigmaDB = 0
	rng := sim.NewRNG(17)
	ap1 := NewLink(p, Position{X: 0, Y: 18}, DefaultParabolic(-90), Omni{}, rng.Fork("ap1"))
	ap2 := NewLink(p, Position{X: 7.5, Y: 18}, DefaultParabolic(-90), Omni{}, rng.Fork("ap2"))

	speed := 11.2 // 25 mph in m/s
	flips, prevBest := 0, -1
	samples := 0
	for ms := 0; ms < 500; ms++ { // client crosses the midpoint zone
		x := 2.0 + speed*float64(ms)/1000
		pos := Position{X: x, Y: 0}
		best := 0
		if ap2.SNRdB(pos) > ap1.SNRdB(pos) {
			best = 1
		}
		if prevBest >= 0 && best != prevBest {
			flips++
		}
		prevBest = best
		samples++
	}
	if flips < 5 {
		t.Errorf("best AP flipped only %d times in 500 ms at 25 mph, want ≥5", flips)
	}
}
