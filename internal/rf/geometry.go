// Package rf models the roadside radio environment of the WGTT testbed:
// log-distance path loss, the 14 dBi / 21° parabolic AP antennas, smooth
// log-normal shadowing, and spatially-correlated Rayleigh (optionally
// Rician) multipath fading resolved per OFDM subcarrier.
//
// Fading is a function of *client position*, not of time: multipath fades
// repeat on the spatial scale of a wavelength (12 cm at 2.4 GHz), so a car
// moving twice as fast sweeps through the same fades twice as quickly —
// exactly the mechanism that defines the paper's vehicular picocell regime
// (Fig. 2). A stationary client therefore sees a constant channel, and the
// Doppler rate emerges from the mobility model rather than being a separate
// knob that could drift out of sync with it.
package rf

import "math"

// Position is a point in the 2-D road plane, in meters. X runs along the
// road; Y runs across it (APs sit at positive Y, the road near Y≈0).
type Position struct {
	X, Y float64
}

// Sub returns the vector p-q.
func (p Position) Sub(q Position) Position { return Position{p.X - q.X, p.Y - q.Y} }

// Distance returns the Euclidean distance between p and q in meters.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// AngleTo returns the bearing from p to q in degrees, measured
// counter-clockwise from the +X axis, in (-180, 180].
func (p Position) AngleTo(q Position) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X) * 180 / math.Pi
}

// normalizeAngle folds an angle in degrees into (-180, 180].
func normalizeAngle(deg float64) float64 {
	for deg > 180 {
		deg -= 360
	}
	for deg <= -180 {
		deg += 360
	}
	return deg
}

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0
