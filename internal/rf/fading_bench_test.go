package rf

import (
	"testing"

	"wgtt/internal/sim"
)

var gainsSink [NumSubcarriers]complex128

func BenchmarkFaderGains(b *testing.B) {
	f := NewFader(DefaultFadingParams(2.462e9), sim.NewRNG(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the position so the spatial sum is actually evaluated.
		pos := Position{X: float64(i%512) * 0.01, Y: 1.5}
		f.Gains(pos, gainsSink[:])
	}
}
