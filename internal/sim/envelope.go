package sim

import (
	"fmt"
	"sort"
	"sync"
)

// This file defines the typed envelope layer that makes every
// cross-domain message data rather than code. A Mailbox carries
// Envelopes: a registered kind plus a payload. In-process the payload
// travels by reference and the receiving mailbox's handler turns it
// back into the same closure the old API would have posted; across
// processes the kind's registered codec serializes the payload into a
// WireEnvelope and the peer decodes it into an identical payload before
// running the identical handler. Because the handler dispatch happens
// at the same virtual time, in the same mailbox drain order, the event
// sequence a receiving Loop sees is bit-identical whether the envelope
// crossed a function call or a socket.
//
// # Envelope contract
//
// Ordering: envelopes posted to one mailbox are delivered FIFO, and
// mailboxes drain in Connect registration order; both orders are part
// of the deterministic schedule and are preserved verbatim by the wire
// transport (per-peer sequence numbers, one batch per mailbox per
// round, in registration order).
//
// Min-delay: an envelope's arrival time must be at least the sender's
// current virtual time plus the mailbox's minimum delay — the
// conservative-synchronization contract. Both directions of a domain
// pair and both Post entry points (Post and the deprecated PostFunc)
// share one validation; violations panic at the Post call.
//
// Copy semantics: the in-process path moves the payload by reference —
// the sender must not retain or mutate a payload after posting it
// unless the payload is immutable by convention (this matches the old
// closure API, where captured state crossed by reference). Payloads of
// kinds that may cross a process boundary must be fully encodable by
// their codec: any state not captured by Encode does not exist on the
// far side. Kinds registered with a nil Encode are local-only; posting
// one toward a remote receiver is a hard error at round exchange.

// EnvelopeKind identifies a registered cross-domain message type.
// Kinds are small integers shared by every process of a partitioned
// run; registration order must therefore be deterministic (register
// from package init or deterministic construction code).
type EnvelopeKind uint16

// KindFunc is the deprecated closure envelope: Payload is a func()
// run verbatim on the receiving domain's loop. It cannot cross a
// process boundary and needs no registration or handler; it exists so
// tests (and transitional callers) keep the old Mailbox.Post behaviour
// via PostFunc.
const KindFunc EnvelopeKind = 0

// Envelope is one typed cross-domain message: a registered kind plus
// its payload. See the package comment for the ordering, min-delay and
// copy-semantics contract.
type Envelope struct {
	Kind    EnvelopeKind
	Payload any
}

// EnvelopeCodec (de)serializes one envelope kind's payload for the
// wire. Encode appends the payload's encoding to b and returns the
// extended slice (append-style, like packet.Message.Marshal); Decode
// parses one payload back out. A nil Encode marks the kind local-only:
// its payloads may reference live object graphs and can never cross a
// process boundary.
type EnvelopeCodec struct {
	// Name labels the kind in error messages and journals.
	Name string
	// Encode appends the payload encoding to b; nil means local-only.
	Encode func(payload any, b []byte) []byte
	// Decode parses a payload previously produced by Encode.
	Decode func(b []byte) (any, error)
}

var (
	envelopeMu    sync.RWMutex
	envelopeKinds = map[EnvelopeKind]EnvelopeCodec{
		KindFunc: {Name: "func"},
	}
)

// RegisterEnvelope registers a kind's codec. Kinds are process-global;
// registering the same kind twice (or KindFunc) panics. Every process
// of a partitioned run must register the same kinds with equivalent
// codecs — normally guaranteed by registering from package init.
func RegisterEnvelope(kind EnvelopeKind, c EnvelopeCodec) {
	envelopeMu.Lock()
	defer envelopeMu.Unlock()
	if _, dup := envelopeKinds[kind]; dup {
		panic(fmt.Sprintf("sim: envelope kind %d (%q) already registered", kind, c.Name))
	}
	if c.Name == "" {
		panic(fmt.Sprintf("sim: envelope kind %d registered without a name", kind))
	}
	envelopeKinds[kind] = c
}

// envelopeCodec looks a kind up; ok is false for unregistered kinds.
func envelopeCodec(kind EnvelopeKind) (EnvelopeCodec, bool) {
	envelopeMu.RLock()
	defer envelopeMu.RUnlock()
	c, ok := envelopeKinds[kind]
	return c, ok
}

// EnvelopeKindName returns the registered name of a kind, or a numeric
// placeholder for unknown kinds.
func EnvelopeKindName(kind EnvelopeKind) string {
	if c, ok := envelopeCodec(kind); ok {
		return c.Name
	}
	return fmt.Sprintf("kind%d", kind)
}

// RegisteredEnvelopeKinds returns the registered kinds in ascending
// order (KindFunc included) — the fuzz harness's seed corpus.
func RegisteredEnvelopeKinds() []EnvelopeKind {
	envelopeMu.RLock()
	defer envelopeMu.RUnlock()
	kinds := make([]EnvelopeKind, 0, len(envelopeKinds))
	for k := range envelopeKinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
