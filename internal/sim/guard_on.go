//go:build simcheck

package sim

import (
	"bytes"
	"runtime"
	"strconv"
)

// ownerCheckEnabled gates the Loop goroutine-ownership guard. Build with
// -tags simcheck (scripts/ci.sh does) to catch cross-goroutine misuse of a
// Loop — e.g. an experiment closure captured by one run's network but
// invoked from another worker of the parallel runner.
const ownerCheckEnabled = true

// goid returns the current goroutine's id by parsing the first line of the
// runtime stack ("goroutine 18 [running]:"). It is far too slow for
// production paths, which is exactly why the guard hides behind a build
// tag.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, _ := strconv.ParseUint(string(s), 10, 64)
	return id
}
