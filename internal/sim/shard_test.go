package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// kindTestRing is a test-only typed envelope: the ring harness's
// neighbour notification, as data.
const kindTestRing EnvelopeKind = 1000

// kindTestLocal is a test-only local-only kind (nil Encode).
const kindTestLocal EnvelopeKind = 1001

type ringVal struct {
	Val, From int
}

func init() {
	RegisterEnvelope(kindTestRing, EnvelopeCodec{
		Name: "test-ring",
		Encode: func(p any, b []byte) []byte {
			v := p.(*ringVal)
			b = binary.BigEndian.AppendUint64(b, uint64(v.Val))
			return binary.BigEndian.AppendUint64(b, uint64(v.From))
		},
		Decode: func(b []byte) (any, error) {
			if len(b) != 16 {
				return nil, errors.New("test-ring: bad length")
			}
			return &ringVal{
				Val:  int(int64(binary.BigEndian.Uint64(b))),
				From: int(int64(binary.BigEndian.Uint64(b[8:]))),
			}, nil
		},
	})
	RegisterEnvelope(kindTestLocal, EnvelopeCodec{Name: "test-local"})
}

// envRing is the typed-envelope twin of ringSignature's harness: same
// ring of domains, same RNG streams, but neighbour notifications are
// Envelopes handled by per-mailbox OnReceive handlers — so the harness
// can run partitioned across (simulated) processes.
type envRing struct {
	c    *Coordinator
	doms []*Domain
	logs [][]string
}

func newEnvRing(seed int64, nDom int, parallel bool) *envRing {
	const lookahead = 200 * Microsecond
	r := &envRing{
		c:    NewCoordinator(lookahead, parallel),
		doms: make([]*Domain, nDom),
		logs: make([][]string, nDom),
	}
	for i := range r.doms {
		r.doms[i] = r.c.NewDomain(fmt.Sprintf("d%d", i))
	}
	boxes := make(map[[2]int]*Mailbox)
	connect := func(i, j int, extra int) {
		mb := r.c.Connect(r.doms[i], r.doms[j], lookahead+Duration(extra)*50*Microsecond)
		dst := j
		mb.OnReceive(kindTestRing, func(p any) {
			v := p.(*ringVal)
			r.logs[dst] = append(r.logs[dst], fmt.Sprintf("d%d recv %d from d%d @%v",
				dst, v.Val, v.From, r.doms[dst].Loop.Now()))
		})
		boxes[[2]int{i, j}] = mb
	}
	for i := range r.doms {
		next := (i + 1) % nDom
		connect(i, next, NewRNG(seed).Fork(fmt.Sprintf("delay%d", i)).Intn(5))
		connect(next, i, NewRNG(seed).Fork(fmt.Sprintf("delayr%d", i)).Intn(5))
	}
	for i := range r.doms {
		i := i
		d := r.doms[i]
		rng := NewRNG(seed).Fork(fmt.Sprintf("dom%d", i))
		var tick func()
		fires := 0
		tick = func() {
			fires++
			now := d.Loop.Now()
			r.logs[i] = append(r.logs[i], fmt.Sprintf("d%d tick%d @%v r%d",
				i, fires, now, rng.Intn(1000)))
			if fires%3 == 0 {
				dst := (i + 1) % nDom
				if fires%2 == 0 {
					dst = (i + nDom - 1) % nDom
				}
				mb := boxes[[2]int{i, dst}]
				at := now.Add(mb.minDelay + Duration(rng.Intn(300))*Microsecond)
				mb.Post(at, Envelope{Kind: kindTestRing, Payload: &ringVal{Val: fires * (i + 1), From: i}})
			}
			if fires < 40 {
				d.Loop.After(Duration(50+rng.Intn(200))*Microsecond, tick)
			}
		}
		d.Loop.After(Duration(10+rng.Intn(50))*Microsecond, tick)
	}
	return r
}

// meshBus is an in-process PeerBus: one buffered channel per directed
// proc pair. Peers' messages are returned in proc-index order, which
// stands in for the wire transport's deterministic peer ordering. A
// proc that fails closes the shared abort channel so its peers unblock
// with an error instead of deadlocking.
type meshBus struct {
	self  int
	chans [][]chan RoundMsg // chans[i][j]: i -> j
	abort chan struct{}
	once  *sync.Once
}

func newMesh(n int) []*meshBus {
	chans := make([][]chan RoundMsg, n)
	for i := range chans {
		chans[i] = make([]chan RoundMsg, n)
		for j := range chans[i] {
			chans[i][j] = make(chan RoundMsg, 4)
		}
	}
	abort := make(chan struct{})
	once := &sync.Once{}
	buses := make([]*meshBus, n)
	for i := range buses {
		buses[i] = &meshBus{self: i, chans: chans, abort: abort, once: once}
	}
	return buses
}

func (b *meshBus) fail() { b.once.Do(func() { close(b.abort) }) }

func (b *meshBus) Exchange(m RoundMsg) ([]RoundMsg, error) {
	n := len(b.chans)
	for j := 0; j < n; j++ {
		if j != b.self {
			select {
			case b.chans[b.self][j] <- m:
			case <-b.abort:
				return nil, errors.New("peer aborted")
			}
		}
	}
	var msgs []RoundMsg
	for j := 0; j < n; j++ {
		if j != b.self {
			var pm RoundMsg
			select {
			case pm = <-b.chans[j][b.self]:
			case <-b.abort:
				return nil, errors.New("peer aborted")
			}
			if pm.Seq != m.Seq {
				return nil, fmt.Errorf("proc %d: peer %d at seq %d, self at %d",
					b.self, j, pm.Seq, m.Seq)
			}
			msgs = append(msgs, pm)
		}
	}
	return msgs, nil
}

// runPartitionedRing runs nProc SPMD replicas of the envelope ring,
// proc p owning the domains with index%nProc == p, and returns the
// stitched signature (each domain's log taken from its owner).
func runPartitionedRing(t *testing.T, seed int64, nDom, nProc int, slices []Time) []string {
	t.Helper()
	rings := make([]*envRing, nProc)
	for p := range rings {
		rings[p] = newEnvRing(seed, nDom, false)
	}
	buses := newMesh(nProc)
	var wg sync.WaitGroup
	errs := make([]error, nProc)
	for p := range rings {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			owned := func(d *Domain) bool { return domIndex(rings[p], d)%nProc == p }
			for _, until := range slices {
				if err := rings[p].c.RunPartitioned(until, owned, buses[p]); err != nil {
					errs[p] = err
					buses[p].fail()
					return
				}
			}
		}()
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	var sig []string
	for i := 0; i < nDom; i++ {
		sig = append(sig, rings[i%nProc].logs[i]...)
	}
	return sig
}

func domIndex(r *envRing, d *Domain) int {
	for i, dd := range r.doms {
		if dd == d {
			return i
		}
	}
	return -1
}

// TestRunPartitionedParity is the multi-process half of the
// conservative-sync guarantee: the same domain graph run whole
// (serial and parallel) and run partitioned across 2 and 3 simulated
// processes — including a sliced schedule — produces bit-identical
// event logs.
func TestRunPartitionedParity(t *testing.T) {
	until := Time(50 * Millisecond)
	for seed := int64(1); seed <= 3; seed++ {
		whole := newEnvRing(seed, 5, false)
		whole.c.Run(until)
		var want []string
		for i := range whole.logs {
			want = append(want, whole.logs[i]...)
		}
		if len(want) == 0 {
			t.Fatalf("seed %d: empty signature", seed)
		}

		par := newEnvRing(seed, 5, true)
		par.c.Run(until)
		var wantPar []string
		for i := range par.logs {
			wantPar = append(wantPar, par.logs[i]...)
		}
		compareSig(t, seed, "parallel", want, wantPar)

		for _, nProc := range []int{2, 3} {
			got := runPartitionedRing(t, seed, 5, nProc, []Time{until})
			compareSig(t, seed, fmt.Sprintf("%d-proc", nProc), want, got)
		}
		// Slicing the run at arbitrary times must not change anything:
		// the flush at each boundary leaves the same empty-mailbox
		// state Run leaves.
		got := runPartitionedRing(t, seed, 5, 2, []Time{Time(13 * Millisecond), Time(37 * Millisecond), until})
		compareSig(t, seed, "2-proc sliced", want, got)
	}
}

func compareSig(t *testing.T, seed int64, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("seed %d %s: log length %d, want %d", seed, label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("seed %d %s: first divergence at entry %d:\n whole: %s\n part:  %s",
				seed, label, i, want[i], got[i])
		}
	}
}

// TestRunPartitionedLocalOnlyKind pins the hard error when a local-only
// envelope (nil Encode) is posted toward a remote receiver.
func TestRunPartitionedLocalOnlyKind(t *testing.T) {
	const lookahead = 200 * Microsecond
	nProc := 2
	rings := make([]*envRing, nProc)
	for p := range rings {
		r := &envRing{c: NewCoordinator(lookahead, false)}
		r.doms = []*Domain{r.c.NewDomain("d0"), r.c.NewDomain("d1")}
		mb := r.c.Connect(r.doms[0], r.doms[1], lookahead)
		mb.OnReceive(kindTestLocal, func(any) {})
		d := r.doms[0]
		d.Loop.After(Millisecond, func() {
			mb.Post(d.Loop.Now().Add(lookahead), Envelope{Kind: kindTestLocal, Payload: struct{}{}})
		})
		rings[p] = r
	}
	buses := newMesh(nProc)
	var wg sync.WaitGroup
	errs := make([]error, nProc)
	for p := range rings {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			owned := func(d *Domain) bool { return (d.id)%nProc == p }
			errs[p] = rings[p].c.RunPartitioned(Time(10*Millisecond), owned, buses[p])
			if errs[p] != nil {
				buses[p].fail()
			}
		}()
	}
	wg.Wait()
	if errs[0] == nil {
		t.Fatal("local-only kind crossed a process boundary without error")
	}
}
