package sim

import "fmt"

// This file extends the coordinator across process boundaries. A
// partitioned run executes the same conservative round schedule as Run,
// but each participating process owns a subset of the domains and the
// processes exchange one RoundMsg per round over a PeerBus. The
// construction is SPMD: every process builds the FULL domain graph from
// the same configuration and seed (so mailbox registration order, kind
// registration and handler wiring are identical everywhere), then runs
// only its owned domains' loops. Remote loops exist but never execute:
// their clocks stay at zero, their pending events never fire, and their
// RNG streams are never drawn — they are pure wiring.
//
// Round protocol (every process, in lockstep):
//
//  1. collect: encode the pending envelopes of every owned-sender
//     mailbox whose receiver is remote (global registration order, FIFO
//     within each), and compute next_p — the earliest future event this
//     process knows about: the minimum over owned loops' NextEventAt
//     and the arrival times of ALL pending envelopes posted by owned
//     senders (including owned→owned ones not yet drained).
//  2. exchange: send RoundMsg{seq, next_p, batches} to every peer,
//     receive theirs. The global next is the min over all processes;
//     every envelope is counted by its sender, so the global next
//     equals the single-process coordinator's post-drain nextEventAt.
//  3. drain: in global mailbox registration order, deliver owned→owned
//     envelopes from the local pending slice and remote→owned ones by
//     decoding the sender's batch; discard owned→remote (already sent)
//     and ignore remote→remote batches.
//  4. advance: compute the round end exactly as Run does (width =
//     lookahead, idle fast-forward to next-L, clamp to until), run the
//     owned loops serially to it.
//
// After the loop a final flush round (an exchange with Flush set and no
// clock advance) delivers envelopes produced in the last round, leaving
// every mailbox empty at the call boundary — exactly the state Run
// leaves behind, so partitioned and single-process runs may be sliced
// at the same virtual times interchangeably.
//
// Because the round ends, the mailbox drain order and the per-loop
// event sequence numbers are all pure functions of the same exchanged
// data, a partitioned run is bit-identical to Run on the whole graph —
// pinned by TestRunPartitionedParity and, end to end, by
// TestMultiProcessParity at the repo root.

// WireEnvelope is one serialized envelope inside a round message. Trace
// carries the sender's causal trace id across the process boundary so a
// stitched flight-recorder timeline follows a handoff between shards.
type WireEnvelope struct {
	At    Time
	Kind  EnvelopeKind
	Trace uint64
	Data  []byte
}

// BoxBatch carries one mailbox's envelopes for one round, FIFO. Box is
// the mailbox's global registration index (Connect call order), which
// is identical in every process by SPMD construction.
type BoxBatch struct {
	Box       int
	Envelopes []WireEnvelope
}

// RoundMsg is one process's contribution to one synchronization round.
type RoundMsg struct {
	// Seq numbers the exchanges of a run, starting at 0; flush
	// exchanges consume sequence numbers like any other.
	Seq int64
	// Next is the earliest future event this process knows about
	// (owned loops plus envelopes posted by owned senders); HasNext
	// is false when it knows of none.
	Next    Time
	HasNext bool
	// Flush marks the terminal exchange of a RunPartitioned call.
	Flush bool
	// Boxes holds the owned-sender→remote-receiver envelopes, in
	// mailbox registration order.
	Boxes []BoxBatch
}

// PeerBus exchanges round messages with every peer process: it sends m
// and returns one RoundMsg per peer for the same sequence number. The
// wire package implements it over UDS/TCP; tests implement it in
// process.
type PeerBus interface {
	Exchange(m RoundMsg) ([]RoundMsg, error)
}

// RunPartitioned advances the owned subset of domains to virtual time
// until, exchanging cross-process envelopes over bus once per round.
// owned reports whether this process executes a domain; every process
// of the run must partition the domains identically and disjointly.
// It may be called repeatedly to advance incrementally, but every
// process must make the same sequence of calls with the same until
// values — the exchange schedule is part of the lockstep protocol.
//
// Envelopes pending at entry (construction or user posts made outside
// the run, which SPMD construction duplicates in every process) are
// delivered receiver-canonically: each process drains its own copy for
// owned receivers and discards copies destined to remote ones.
func (c *Coordinator) RunPartitioned(until Time, owned func(*Domain) bool, bus PeerBus) error {
	if until <= c.now {
		return nil
	}
	own := make([]bool, len(c.domains))
	for i, d := range c.domains {
		own[i] = owned(d)
	}

	// Construction drain, receiver-canonical (see doc comment).
	for _, m := range c.boxes {
		if own[m.to.id] {
			for _, p := range m.pending {
				m.deliver(p.at, p.env, p.trace)
			}
		}
		clearPending(m)
	}

	for c.now < until {
		next, hasNext, err := c.exchangeRound(own, bus, false)
		if err != nil {
			return err
		}
		end := c.now.Add(c.lookahead)
		if !hasNext {
			end = until
		} else if s := next.Add(-c.lookahead); s > end {
			end = s
		}
		if end > until {
			end = until
		}
		for _, d := range c.domains {
			if own[d.id] {
				d.Loop.Run(end)
			}
		}
		c.now = end
		c.rounds++
	}

	// Flush: deliver what the final round produced, leaving every
	// mailbox empty — the state Run leaves at a call boundary.
	_, _, err := c.exchangeRound(own, bus, true)
	return err
}

// exchangeRound performs steps 1–3 of the round protocol and returns
// the global (next, hasNext).
func (c *Coordinator) exchangeRound(own []bool, bus PeerBus, flush bool) (Time, bool, error) {
	var next Time
	hasNext := false
	note := func(t Time) {
		if !hasNext || t < next {
			next, hasNext = t, true
		}
	}
	for _, d := range c.domains {
		if own[d.id] {
			if t, has := d.Loop.NextEventAt(); has {
				note(t)
			}
		}
	}
	var out []BoxBatch
	for bi, m := range c.boxes {
		if !own[m.from.id] {
			continue
		}
		for _, p := range m.pending {
			note(p.at)
		}
		if own[m.to.id] || len(m.pending) == 0 {
			continue
		}
		batch := BoxBatch{Box: bi, Envelopes: make([]WireEnvelope, 0, len(m.pending))}
		for _, p := range m.pending {
			codec, ok := envelopeCodec(p.env.Kind)
			if !ok || codec.Encode == nil {
				return 0, false, fmt.Errorf(
					"sim: local-only envelope kind %s posted %s->%s across a process boundary",
					EnvelopeKindName(p.env.Kind), m.from.name, m.to.name)
			}
			batch.Envelopes = append(batch.Envelopes, WireEnvelope{
				At:    p.at,
				Kind:  p.env.Kind,
				Trace: p.trace,
				Data:  codec.Encode(p.env.Payload, nil),
			})
		}
		out = append(out, batch)
	}

	msgs, err := bus.Exchange(RoundMsg{
		Seq: c.exchanges, Next: next, HasNext: hasNext, Flush: flush, Boxes: out,
	})
	c.exchanges++
	if err != nil {
		return 0, false, err
	}

	// Merge the peers' batches by mailbox index and fold their nexts.
	var remote map[int][]WireEnvelope
	for _, pm := range msgs {
		if pm.HasNext {
			note(pm.Next)
		}
		for _, b := range pm.Boxes {
			if b.Box < 0 || b.Box >= len(c.boxes) {
				return 0, false, fmt.Errorf("sim: peer batch for unknown mailbox %d", b.Box)
			}
			if !own[c.boxes[b.Box].to.id] {
				continue // some other process's traffic
			}
			if remote == nil {
				remote = make(map[int][]WireEnvelope)
			}
			if remote[b.Box] != nil {
				return 0, false, fmt.Errorf("sim: two peers sent batches for mailbox %d", b.Box)
			}
			remote[b.Box] = b.Envelopes
		}
	}

	// Drain in global registration order, merging local and decoded
	// remote traffic; the order is identical to the single-process
	// coordinator's drain.
	for bi, m := range c.boxes {
		switch {
		case own[m.from.id] && own[m.to.id]:
			for _, p := range m.pending {
				m.deliver(p.at, p.env, p.trace)
			}
			clearPending(m)
		case own[m.from.id]:
			clearPending(m) // encoded and sent above
		case own[m.to.id]:
			for _, we := range remote[bi] {
				codec, ok := envelopeCodec(we.Kind)
				if !ok || codec.Decode == nil {
					return 0, false, fmt.Errorf("sim: peer sent undecodable envelope kind %d on mailbox %d",
						we.Kind, bi)
				}
				payload, err := codec.Decode(we.Data)
				if err != nil {
					return 0, false, fmt.Errorf("sim: decoding %s envelope on mailbox %d: %w",
						EnvelopeKindName(we.Kind), bi, err)
				}
				m.deliver(we.At, Envelope{Kind: we.Kind, Payload: payload}, we.Trace)
			}
		}
	}
	return next, hasNext, nil
}

// Exchanges returns the number of PeerBus exchanges performed by
// RunPartitioned calls so far — the resume point a checkpoint records.
func (c *Coordinator) Exchanges() int64 { return c.exchanges }
