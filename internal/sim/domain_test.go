package sim

import (
	"fmt"
	"testing"
)

// ringHarness builds nDom domains in a bidirectional ring. Each domain runs
// a self-rescheduling local event that mixes its RNG and, every few firings,
// posts a value to a neighbour with a randomized (but >= minDelay) arrival
// offset. Every action appends to a per-domain log; concatenating the logs
// gives a signature that must be independent of serial vs parallel rounds.
func ringSignature(t *testing.T, seed int64, nDom int, parallel bool) []string {
	t.Helper()
	const lookahead = 200 * Microsecond
	c := NewCoordinator(lookahead, parallel)
	doms := make([]*Domain, nDom)
	logs := make([][]string, nDom)
	for i := range doms {
		doms[i] = c.NewDomain(fmt.Sprintf("d%d", i))
	}
	boxes := make(map[[2]int]*Mailbox)
	for i := range doms {
		next := (i + 1) % nDom
		// Randomize per-edge minimum delays to model heterogeneous trunks;
		// all must stay >= lookahead.
		extraF := NewRNG(seed).Fork(fmt.Sprintf("delay%d", i)).Intn(5)
		extraR := NewRNG(seed).Fork(fmt.Sprintf("delayr%d", i)).Intn(5)
		boxes[[2]int{i, next}] = c.Connect(doms[i], doms[next],
			lookahead+Duration(extraF)*50*Microsecond)
		boxes[[2]int{next, i}] = c.Connect(doms[next], doms[i],
			lookahead+Duration(extraR)*50*Microsecond)
	}
	for i := range doms {
		i := i
		d := doms[i]
		rng := NewRNG(seed).Fork(fmt.Sprintf("dom%d", i))
		var tick func()
		fires := 0
		tick = func() {
			fires++
			now := d.Loop.Now()
			logs[i] = append(logs[i], fmt.Sprintf("d%d tick%d @%v r%d",
				i, fires, now, rng.Intn(1000)))
			if fires%3 == 0 {
				dst := (i + 1) % nDom
				if fires%2 == 0 {
					dst = (i + nDom - 1) % nDom
				}
				mb := boxes[[2]int{i, dst}]
				at := now.Add(mb.minDelay + Duration(rng.Intn(300))*Microsecond)
				val := fires * (i + 1)
				mb.PostFunc(at, func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("d%d recv %d from d%d @%v",
						dst, val, i, doms[dst].Loop.Now()))
				})
			}
			if fires < 40 {
				d.Loop.After(Duration(50+rng.Intn(200))*Microsecond, tick)
			}
		}
		d.Loop.After(Duration(10+rng.Intn(50))*Microsecond, tick)
	}
	c.Run(Time(50 * Millisecond))
	var sig []string
	for i := range logs {
		sig = append(sig, logs[i]...)
	}
	if got := c.Now(); got != Time(50*Millisecond) {
		t.Fatalf("coordinator stopped at %v, want %v", got, Time(50*Millisecond))
	}
	return sig
}

// TestCoordinatorParallelMatchesSerial is the core conservative-sync
// guarantee: parallel rounds are bit-identical to serial rounds.
func TestCoordinatorParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		serial := ringSignature(t, seed, 5, false)
		par := ringSignature(t, seed, 5, true)
		if len(serial) != len(par) {
			t.Fatalf("seed %d: log length %d (serial) != %d (parallel)",
				seed, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("seed %d: first divergence at entry %d:\n serial: %s\n parallel: %s",
					seed, i, serial[i], par[i])
			}
		}
		if len(serial) == 0 {
			t.Fatalf("seed %d: empty signature — harness produced no events", seed)
		}
	}
}

// TestCoordinatorStressRace exercises many domains with randomized mailbox
// delays under the race detector (scripts/ci.sh runs this package with
// -race). The workload itself is the ring harness at a larger scale.
func TestCoordinatorStressRace(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if sig := ringSignature(t, seed, 9, true); len(sig) == 0 {
			t.Fatalf("seed %d: empty signature", seed)
		}
	}
}

func TestMailboxPostBelowMinDelayPanics(t *testing.T) {
	c := NewCoordinator(200*Microsecond, false)
	a := c.NewDomain("a")
	b := c.NewDomain("b")
	mb := c.Connect(a, b, 200*Microsecond)
	a.Loop.After(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("Post below min delay did not panic")
			}
		}()
		mb.PostFunc(a.Loop.Now().Add(100*Microsecond), func() {})
	})
	c.Run(Time(2 * Millisecond))
}

// TestMailboxPostBelowMinDelayPanicsBothDirections pins the min-delay
// validation on BOTH mailboxes of a Connect pair and on both entry
// points (typed Post and the deprecated PostFunc shim): the check lives
// in one shared Mailbox.checkDelay, so neither direction nor API can
// drift to unvalidated posts.
func TestMailboxPostBelowMinDelayPanicsBothDirections(t *testing.T) {
	c := NewCoordinator(200*Microsecond, false)
	a := c.NewDomain("a")
	b := c.NewDomain("b")
	fwd := c.Connect(a, b, 200*Microsecond)
	rev := c.Connect(b, a, 200*Microsecond)
	mustPanic := func(name string, post func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s below min delay did not panic", name)
			}
		}()
		post()
	}
	a.Loop.After(Millisecond, func() {
		at := a.Loop.Now().Add(100 * Microsecond)
		mustPanic("fwd Post", func() { fwd.Post(at, Envelope{Kind: KindFunc, Payload: func() {}}) })
		mustPanic("fwd PostFunc", func() { fwd.PostFunc(at, func() {}) })
	})
	b.Loop.After(Millisecond, func() {
		at := b.Loop.Now().Add(100 * Microsecond)
		mustPanic("rev Post", func() { rev.Post(at, Envelope{Kind: KindFunc, Payload: func() {}}) })
		mustPanic("rev PostFunc", func() { rev.PostFunc(at, func() {}) })
	})
	c.Run(Time(2 * Millisecond))
}

func TestConnectBelowLookaheadPanics(t *testing.T) {
	c := NewCoordinator(200*Microsecond, false)
	a := c.NewDomain("a")
	b := c.NewDomain("b")
	defer func() {
		if recover() == nil {
			t.Error("Connect below lookahead did not panic")
		}
	}()
	c.Connect(a, b, 100*Microsecond)
}

// TestCoordinatorIdleFastForward checks that a sparse schedule does not
// cost one round per lookahead interval: a single event 10s out must fire,
// and all clocks must land exactly on the horizon.
func TestCoordinatorIdleFastForward(t *testing.T) {
	c := NewCoordinator(200*Microsecond, false)
	a := c.NewDomain("a")
	b := c.NewDomain("b")
	fired := false
	a.Loop.At(Time(10*Second), func() { fired = true })
	c.Run(Time(11 * Second))
	if !fired {
		t.Fatal("distant event did not fire")
	}
	for _, d := range []*Domain{a, b} {
		if d.Loop.Now() != Time(11*Second) {
			t.Fatalf("domain %s clock %v, want %v", d.Name(), d.Loop.Now(), Time(11*Second))
		}
	}
}

// TestCoordinatorConstructionPosts checks that thunks posted before Run
// (sender clocks at zero) are delivered, including ones landing inside the
// very first round.
func TestCoordinatorConstructionPosts(t *testing.T) {
	c := NewCoordinator(200*Microsecond, false)
	a := c.NewDomain("a")
	b := c.NewDomain("b")
	mb := c.Connect(a, b, 200*Microsecond)
	var got []Time
	mb.PostFunc(Time(200*Microsecond), func() { got = append(got, b.Loop.Now()) })
	mb.PostFunc(Time(5*Millisecond), func() { got = append(got, b.Loop.Now()) })
	c.Run(Time(10 * Millisecond))
	if len(got) != 2 || got[0] != Time(200*Microsecond) || got[1] != Time(5*Millisecond) {
		t.Fatalf("construction posts delivered at %v", got)
	}
}
