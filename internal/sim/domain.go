package sim

import (
	"fmt"
	"sync"
	"time"
)

// This file implements conservative parallel discrete-event simulation over
// a set of Loops ("domains"). The model is the classic null-message-free
// synchronous variant: all cross-domain interactions carry a minimum latency
// of at least the coordinator's lookahead L, so virtual time can advance in
// rounds of width L with a barrier between rounds.
//
// Correctness argument. A round covers the half-open window (T, T+L]. While
// a domain executes its round, its clock satisfies now > T (events fire at
// their timestamps, which lie inside the window; a domain that merely
// advances its clock posts nothing). Every cross-domain message is sent via
// Mailbox.Post, which requires the arrival time to be at least the sender's
// now plus the mailbox delay, and the mailbox delay is at least L. So every
// message posted during round (T, T+L] arrives strictly after T+L — i.e. in
// a later round. Draining mailboxes at the barrier therefore delivers every
// message before any domain could possibly execute it, and no domain ever
// receives an event in its past.
//
// Determinism. Domains only share state through mailboxes. At each barrier
// the coordinator — on a single goroutine — drains mailboxes in registration
// order, FIFO within each, scheduling each envelope's dispatch onto the
// receiving Loop at its arrival time. Each Loop assigns its own monotonic
// sequence numbers, so the event order inside every domain is a pure
// function of (round schedule, mailbox registration order, per-domain event
// history) and is identical whether rounds run serially or on one goroutine
// per domain. Parallel execution is therefore bit-identical to serial
// execution of the same domain graph — and, because typed envelopes are
// data (see envelope.go), so is multi-process execution of a partition of
// it (see shard.go): the same envelopes reach the same mailboxes at the
// same times in the same order, whether by reference or by wire.

// Domain is one event loop in a partitioned simulation. All state owned by
// a domain must only be touched from its Loop's callbacks; the only legal
// cross-domain channel is a Mailbox.
type Domain struct {
	Loop *Loop
	name string
	id   int
}

// Name returns the label the domain was created with.
func (d *Domain) Name() string { return d.name }

// pendingEnv is one posted envelope awaiting the round barrier.
type pendingEnv struct {
	at    Time
	env   Envelope
	trace uint64 // sender's causal trace register at Post time
}

// Mailbox is a single-sender, single-receiver channel between two domains
// with a bounded minimum latency. Post may only be called from the sending
// domain's callbacks (or before the coordinator starts running); the
// envelopes are dispatched onto the receiving domain's Loop at the next
// round barrier. See envelope.go for the full envelope contract
// (ordering, min-delay, copy semantics).
type Mailbox struct {
	from, to *Domain
	minDelay Duration
	pending  []pendingEnv
	handlers map[EnvelopeKind]func(payload any)
}

// Post schedules env for dispatch in the receiving domain at virtual time
// at. The arrival must respect the mailbox's minimum delay relative to
// the sender's clock; violating it would break conservative
// synchronization, so Post panics rather than silently reordering time.
// The validation is shared by both directions of a Connect pair and by
// the deprecated PostFunc shim — no entry point or direction skips it.
func (m *Mailbox) Post(at Time, env Envelope) {
	m.checkDelay(at)
	m.pending = append(m.pending, pendingEnv{at: at, env: env, trace: m.from.Loop.curTrace})
}

// PostFunc schedules fn to run in the receiving domain at virtual time
// at — the old closure API, kept as a shim for tests and transitional
// callers.
//
// Deprecated: closures cannot cross a process boundary; use Post with a
// registered envelope kind. PostFunc applies the same min-delay
// validation as Post.
func (m *Mailbox) PostFunc(at Time, fn func()) {
	m.Post(at, Envelope{Kind: KindFunc, Payload: fn})
}

// checkDelay enforces the conservative-synchronization min-delay
// contract against the sender's clock.
func (m *Mailbox) checkDelay(at Time) {
	if now := m.from.Loop.Now(); at.Sub(now) < m.minDelay {
		panic(fmt.Sprintf(
			"sim: Mailbox.Post %s->%s at %v violates min delay %v (sender now %v)",
			m.from.name, m.to.name, at, m.minDelay, now))
	}
}

// OnReceive registers the receiving domain's handler for one envelope
// kind on this mailbox. The handler runs on the receiving domain's Loop
// at each envelope's arrival time. Registration happens at construction
// (before the coordinator runs) and is required for every typed kind the
// mailbox will carry; KindFunc needs no handler (the payload is the
// closure itself). Registering a kind twice panics: handler identity is
// part of the deterministic schedule.
func (m *Mailbox) OnReceive(kind EnvelopeKind, fn func(payload any)) {
	if kind == KindFunc {
		panic("sim: OnReceive(KindFunc): closure envelopes dispatch directly")
	}
	if _, ok := envelopeCodec(kind); !ok {
		panic(fmt.Sprintf("sim: OnReceive of unregistered envelope kind %d", kind))
	}
	if m.handlers == nil {
		m.handlers = make(map[EnvelopeKind]func(any))
	}
	if _, dup := m.handlers[kind]; dup {
		panic(fmt.Sprintf("sim: duplicate OnReceive for envelope kind %s on %s->%s",
			EnvelopeKindName(kind), m.from.name, m.to.name))
	}
	m.handlers[kind] = fn
}

// deliver schedules one envelope's dispatch onto the receiving Loop. A
// KindFunc payload is the event closure itself; a typed payload is
// dispatched through the mailbox's registered handler at the same
// virtual time, so both forms produce identical event schedules. The
// sender's causal trace id is stamped onto the scheduled event so the
// receiving domain's handler (and anything it schedules) continues the
// sender's trace.
func (m *Mailbox) deliver(at Time, env Envelope, trace uint64) {
	if env.Kind == KindFunc {
		m.to.Loop.At(at, env.Payload.(func())).trace = trace
		return
	}
	h := m.handlers[env.Kind]
	if h == nil {
		panic(fmt.Sprintf("sim: no OnReceive handler for envelope kind %s on %s->%s",
			EnvelopeKindName(env.Kind), m.from.name, m.to.name))
	}
	p := env.Payload
	m.to.Loop.At(at, func() { h(p) }).trace = trace
}

// Coordinator advances a set of domains in lockstep rounds of width equal
// to the lookahead, draining mailboxes at the barrier between rounds. With
// parallel=false the rounds run domain-by-domain on the calling goroutine;
// with parallel=true each domain gets a worker goroutine and rounds are
// separated by a WaitGroup barrier. Both modes produce bit-identical
// results (see the package comment above).
type Coordinator struct {
	lookahead Duration
	parallel  bool
	domains   []*Domain
	boxes     []*Mailbox
	now       Time
	rounds    int64
	exchanges int64
	// waitStats, when non-nil, collects per-domain wall-clock barrier
	// waits in parallel mode (EnableWaitStats). workNs is the workers'
	// per-round scratch; written before wg.Done, read after wg.Wait.
	waitStats []waitRec
	workNs    []int64
}

// NewCoordinator returns a coordinator advancing time in rounds of width
// lookahead. Panics if lookahead is not positive: a zero lookahead admits
// no conservative parallelism.
func NewCoordinator(lookahead Duration, parallel bool) *Coordinator {
	if lookahead <= 0 {
		panic("sim: coordinator lookahead must be positive")
	}
	return &Coordinator{lookahead: lookahead, parallel: parallel}
}

// Parallel reports whether rounds execute on per-domain goroutines.
func (c *Coordinator) Parallel() bool { return c.parallel }

// Lookahead returns the round width.
func (c *Coordinator) Lookahead() Duration { return c.lookahead }

// Now returns the lower bound on virtual time across all domains: every
// domain's clock is at least Now, and all mailboxes posted before Now have
// been delivered.
func (c *Coordinator) Now() Time { return c.now }

// NewDomain registers a new domain with its own Loop.
func (c *Coordinator) NewDomain(name string) *Domain {
	d := &Domain{Loop: NewLoop(), name: name, id: len(c.domains)}
	c.domains = append(c.domains, d)
	return d
}

// Connect creates a mailbox from one domain to another. minDelay must be at
// least the coordinator's lookahead; mailbox drain order follows Connect
// call order, which is part of the deterministic schedule.
func (c *Coordinator) Connect(from, to *Domain, minDelay Duration) *Mailbox {
	if minDelay < c.lookahead {
		panic(fmt.Sprintf("sim: mailbox min delay %v below coordinator lookahead %v",
			minDelay, c.lookahead))
	}
	if from == to {
		panic("sim: mailbox must connect two distinct domains")
	}
	m := &Mailbox{from: from, to: to, minDelay: minDelay}
	c.boxes = append(c.boxes, m)
	return m
}

// drain moves every pending mailbox envelope onto its receiving Loop.
// Runs on the coordinator goroutine while no domain executes, in
// registration order and FIFO within each mailbox, so the resulting
// event sequence numbers are deterministic.
func (c *Coordinator) drain() {
	for _, m := range c.boxes {
		for _, p := range m.pending {
			m.deliver(p.at, p.env, p.trace)
		}
		clearPending(m)
	}
}

// clearPending empties a mailbox, zeroing entries so payloads don't
// pin their referents past delivery.
func clearPending(m *Mailbox) {
	for i := range m.pending {
		m.pending[i] = pendingEnv{}
	}
	m.pending = m.pending[:0]
}

// nextEventAt returns the earliest pending event across all domains.
func (c *Coordinator) nextEventAt() (Time, bool) {
	var best Time
	ok := false
	for _, d := range c.domains {
		if t, has := d.Loop.NextEventAt(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Run advances all domains to virtual time until. It may be called
// repeatedly to advance incrementally. In parallel mode the per-domain
// workers live only for the duration of the call.
func (c *Coordinator) Run(until Time) {
	if until <= c.now {
		return
	}
	// Deliver anything posted during construction (sender clocks at zero)
	// before the first round executes.
	c.drain()

	var work []chan Time
	var wg sync.WaitGroup
	if c.parallel {
		work = make([]chan Time, len(c.domains))
		for i, d := range c.domains {
			ch := make(chan Time)
			work[i] = ch
			go func(i int, d *Domain, ch chan Time) {
				for end := range ch {
					if c.waitStats != nil {
						t0 := time.Now()
						d.Loop.Run(end)
						c.workNs[i] = time.Since(t0).Nanoseconds()
					} else {
						d.Loop.Run(end)
					}
					wg.Done()
				}
			}(i, d, ch)
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for c.now < until {
		end := c.now.Add(c.lookahead)
		if ne, ok := c.nextEventAt(); !ok {
			// Nothing pending anywhere and all mailboxes are drained:
			// no event can materialize, so jump straight to the horizon.
			end = until
		} else if s := ne.Add(-c.lookahead); s > end {
			// The earliest event is more than a round away. Advance in
			// one idle round to ne-L so the next round (ne-L, ne]
			// contains it. Identical in serial and parallel mode, so
			// the fast-forward preserves bit-identity.
			end = s
		}
		if end > until {
			end = until
		}
		if c.parallel {
			var t0 time.Time
			if c.waitStats != nil {
				t0 = time.Now()
			}
			wg.Add(len(c.domains))
			for _, ch := range work {
				ch <- end
			}
			wg.Wait()
			if c.waitStats != nil {
				c.recordWaits(time.Since(t0).Nanoseconds())
			}
		} else {
			for _, d := range c.domains {
				d.Loop.Run(end)
			}
		}
		c.drain()
		c.now = end
		c.rounds++
	}
}

// Rounds returns the number of synchronization rounds executed so far —
// the coordinator's occupancy measure for telemetry. Read it between
// Run calls only.
func (c *Coordinator) Rounds() int64 { return c.rounds }

// WaitBoundsNs are the bucket bounds (nanoseconds) of the barrier-wait
// histograms: 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, +overflow.
var WaitBoundsNs = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// waitRec accumulates one domain's barrier waits.
type waitRec struct {
	rounds  int64
	sumNs   int64
	maxNs   int64
	buckets [8]int64 // len(WaitBoundsNs)+1
}

// WaitStat summarizes one domain's wall-clock barrier waits: the time
// the domain's worker spent idle at round barriers waiting for the
// slowest domain of each round. Wall-clock and therefore
// nondeterministic — this deliberately lives outside the telemetry
// registry (whose snapshots must be a pure function of the simulated
// schedule) and is surfaced through wgtt-serve's introspection
// endpoints instead.
type WaitStat struct {
	Domain  string  `json:"domain"`
	Rounds  int64   `json:"rounds"`
	SumNs   int64   `json:"sum_ns"`
	MaxNs   int64   `json:"max_ns"`
	Buckets []int64 `json:"buckets"` // per WaitBoundsNs, last = overflow
}

// EnableWaitStats turns on barrier-wait collection for subsequent
// parallel Run calls (two clock reads per domain per round; off by
// default so the hot path stays untouched). Serial rounds have no
// barrier waits and record nothing.
func (c *Coordinator) EnableWaitStats() {
	if c.waitStats == nil {
		c.waitStats = make([]waitRec, len(c.domains))
		c.workNs = make([]int64, len(c.domains))
	}
}

// recordWaits folds one parallel round's per-domain waits (round wall
// time minus the domain's own work time) into the histograms.
func (c *Coordinator) recordWaits(roundNs int64) {
	for i := range c.waitStats {
		wait := roundNs - c.workNs[i]
		if wait < 0 {
			wait = 0
		}
		r := &c.waitStats[i]
		r.rounds++
		r.sumNs += wait
		if wait > r.maxNs {
			r.maxNs = wait
		}
		bi := len(WaitBoundsNs)
		for j, b := range WaitBoundsNs {
			if wait <= b {
				bi = j
				break
			}
		}
		r.buckets[bi]++
	}
}

// WaitStats returns the per-domain barrier-wait summaries, or nil when
// collection was never enabled. Read it between Run calls only.
func (c *Coordinator) WaitStats() []WaitStat {
	if c.waitStats == nil {
		return nil
	}
	out := make([]WaitStat, len(c.waitStats))
	for i, r := range c.waitStats {
		out[i] = WaitStat{
			Domain:  c.domains[i].name,
			Rounds:  r.rounds,
			SumNs:   r.sumNs,
			MaxNs:   r.maxNs,
			Buckets: append([]int64(nil), r.buckets[:]...),
		}
	}
	return out
}

// PendingEnvelopesFrom returns the number of envelopes currently
// pending in mailboxes whose sender is d — the domain's outgoing
// envelope-queue depth. Posts append and barriers drain, both on the
// domain's own schedule, so when read from one of d's own callbacks
// (the telemetry sampler) the value is a pure function of the simulated
// schedule and is safe to feed a deterministic gauge.
func (c *Coordinator) PendingEnvelopesFrom(d *Domain) int {
	n := 0
	for _, m := range c.boxes {
		if m.from == d {
			n += len(m.pending)
		}
	}
	return n
}

// RunFor advances the simulation by d from the coordinator's current time.
func (c *Coordinator) RunFor(d Duration) { c.Run(c.now.Add(d)) }
