package sim

import (
	"fmt"
	"sync"
)

// This file implements conservative parallel discrete-event simulation over
// a set of Loops ("domains"). The model is the classic null-message-free
// synchronous variant: all cross-domain interactions carry a minimum latency
// of at least the coordinator's lookahead L, so virtual time can advance in
// rounds of width L with a barrier between rounds.
//
// Correctness argument. A round covers the half-open window (T, T+L]. While
// a domain executes its round, its clock satisfies now > T (events fire at
// their timestamps, which lie inside the window; a domain that merely
// advances its clock posts nothing). Every cross-domain message is sent via
// Mailbox.Post, which requires the arrival time to be at least the sender's
// now plus the mailbox delay, and the mailbox delay is at least L. So every
// message posted during round (T, T+L] arrives strictly after T+L — i.e. in
// a later round. Draining mailboxes at the barrier therefore delivers every
// message before any domain could possibly execute it, and no domain ever
// receives an event in its past.
//
// Determinism. Domains only share state through mailboxes. At each barrier
// the coordinator — on a single goroutine — drains mailboxes in registration
// order, FIFO within each, scheduling the thunks onto the receiving Loops.
// Each Loop assigns its own monotonic sequence numbers, so the event order
// inside every domain is a pure function of (round schedule, mailbox
// registration order, per-domain event history) and is identical whether
// rounds run serially or on one goroutine per domain. Parallel execution is
// therefore bit-identical to serial execution of the same domain graph.

// Domain is one event loop in a partitioned simulation. All state owned by
// a domain must only be touched from its Loop's callbacks; the only legal
// cross-domain channel is a Mailbox.
type Domain struct {
	Loop *Loop
	name string
	id   int
}

// Name returns the label the domain was created with.
func (d *Domain) Name() string { return d.name }

type timedThunk struct {
	at Time
	fn func()
}

// Mailbox is a single-sender, single-receiver channel between two domains
// with a bounded minimum latency. Post may only be called from the sending
// domain's callbacks (or before the coordinator starts running); the thunks
// are moved onto the receiving domain's Loop at the next round barrier.
type Mailbox struct {
	from, to *Domain
	minDelay Duration
	pending  []timedThunk
}

// Post schedules fn to run in the receiving domain at virtual time at.
// The arrival must respect the mailbox's minimum delay relative to the
// sender's clock; violating it would break conservative synchronization,
// so Post panics rather than silently reordering time.
func (m *Mailbox) Post(at Time, fn func()) {
	if now := m.from.Loop.Now(); at.Sub(now) < m.minDelay {
		panic(fmt.Sprintf(
			"sim: Mailbox.Post %s->%s at %v violates min delay %v (sender now %v)",
			m.from.name, m.to.name, at, m.minDelay, now))
	}
	m.pending = append(m.pending, timedThunk{at: at, fn: fn})
}

// Coordinator advances a set of domains in lockstep rounds of width equal
// to the lookahead, draining mailboxes at the barrier between rounds. With
// parallel=false the rounds run domain-by-domain on the calling goroutine;
// with parallel=true each domain gets a worker goroutine and rounds are
// separated by a WaitGroup barrier. Both modes produce bit-identical
// results (see the package comment above).
type Coordinator struct {
	lookahead Duration
	parallel  bool
	domains   []*Domain
	boxes     []*Mailbox
	now       Time
	rounds    int64
}

// NewCoordinator returns a coordinator advancing time in rounds of width
// lookahead. Panics if lookahead is not positive: a zero lookahead admits
// no conservative parallelism.
func NewCoordinator(lookahead Duration, parallel bool) *Coordinator {
	if lookahead <= 0 {
		panic("sim: coordinator lookahead must be positive")
	}
	return &Coordinator{lookahead: lookahead, parallel: parallel}
}

// Parallel reports whether rounds execute on per-domain goroutines.
func (c *Coordinator) Parallel() bool { return c.parallel }

// Lookahead returns the round width.
func (c *Coordinator) Lookahead() Duration { return c.lookahead }

// Now returns the lower bound on virtual time across all domains: every
// domain's clock is at least Now, and all mailboxes posted before Now have
// been delivered.
func (c *Coordinator) Now() Time { return c.now }

// NewDomain registers a new domain with its own Loop.
func (c *Coordinator) NewDomain(name string) *Domain {
	d := &Domain{Loop: NewLoop(), name: name, id: len(c.domains)}
	c.domains = append(c.domains, d)
	return d
}

// Connect creates a mailbox from one domain to another. minDelay must be at
// least the coordinator's lookahead; mailbox drain order follows Connect
// call order, which is part of the deterministic schedule.
func (c *Coordinator) Connect(from, to *Domain, minDelay Duration) *Mailbox {
	if minDelay < c.lookahead {
		panic(fmt.Sprintf("sim: mailbox min delay %v below coordinator lookahead %v",
			minDelay, c.lookahead))
	}
	if from == to {
		panic("sim: mailbox must connect two distinct domains")
	}
	m := &Mailbox{from: from, to: to, minDelay: minDelay}
	c.boxes = append(c.boxes, m)
	return m
}

// drain moves every pending mailbox thunk onto its receiving Loop. Runs on
// the coordinator goroutine while no domain executes, in registration order
// and FIFO within each mailbox, so the resulting event sequence numbers are
// deterministic.
func (c *Coordinator) drain() {
	for _, m := range c.boxes {
		for _, t := range m.pending {
			m.to.Loop.At(t.at, t.fn)
		}
		for i := range m.pending {
			m.pending[i] = timedThunk{}
		}
		m.pending = m.pending[:0]
	}
}

// nextEventAt returns the earliest pending event across all domains.
func (c *Coordinator) nextEventAt() (Time, bool) {
	var best Time
	ok := false
	for _, d := range c.domains {
		if t, has := d.Loop.NextEventAt(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Run advances all domains to virtual time until. It may be called
// repeatedly to advance incrementally. In parallel mode the per-domain
// workers live only for the duration of the call.
func (c *Coordinator) Run(until Time) {
	if until <= c.now {
		return
	}
	// Deliver anything posted during construction (sender clocks at zero)
	// before the first round executes.
	c.drain()

	var work []chan Time
	var wg sync.WaitGroup
	if c.parallel {
		work = make([]chan Time, len(c.domains))
		for i, d := range c.domains {
			ch := make(chan Time)
			work[i] = ch
			go func(d *Domain, ch chan Time) {
				for end := range ch {
					d.Loop.Run(end)
					wg.Done()
				}
			}(d, ch)
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for c.now < until {
		end := c.now.Add(c.lookahead)
		if ne, ok := c.nextEventAt(); !ok {
			// Nothing pending anywhere and all mailboxes are drained:
			// no event can materialize, so jump straight to the horizon.
			end = until
		} else if s := ne.Add(-c.lookahead); s > end {
			// The earliest event is more than a round away. Advance in
			// one idle round to ne-L so the next round (ne-L, ne]
			// contains it. Identical in serial and parallel mode, so
			// the fast-forward preserves bit-identity.
			end = s
		}
		if end > until {
			end = until
		}
		if c.parallel {
			wg.Add(len(c.domains))
			for _, ch := range work {
				ch <- end
			}
			wg.Wait()
		} else {
			for _, d := range c.domains {
				d.Loop.Run(end)
			}
		}
		c.drain()
		c.now = end
		c.rounds++
	}
}

// Rounds returns the number of synchronization rounds executed so far —
// the coordinator's occupancy measure for telemetry. Read it between
// Run calls only.
func (c *Coordinator) Rounds() int64 { return c.rounds }

// RunFor advances the simulation by d from the coordinator's current time.
func (c *Coordinator) RunFor(d Duration) { c.Run(c.now.Add(d)) }
