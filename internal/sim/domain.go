package sim

import (
	"fmt"
	"sync"
)

// This file implements conservative parallel discrete-event simulation over
// a set of Loops ("domains"). The model is the classic null-message-free
// synchronous variant: all cross-domain interactions carry a minimum latency
// of at least the coordinator's lookahead L, so virtual time can advance in
// rounds of width L with a barrier between rounds.
//
// Correctness argument. A round covers the half-open window (T, T+L]. While
// a domain executes its round, its clock satisfies now > T (events fire at
// their timestamps, which lie inside the window; a domain that merely
// advances its clock posts nothing). Every cross-domain message is sent via
// Mailbox.Post, which requires the arrival time to be at least the sender's
// now plus the mailbox delay, and the mailbox delay is at least L. So every
// message posted during round (T, T+L] arrives strictly after T+L — i.e. in
// a later round. Draining mailboxes at the barrier therefore delivers every
// message before any domain could possibly execute it, and no domain ever
// receives an event in its past.
//
// Determinism. Domains only share state through mailboxes. At each barrier
// the coordinator — on a single goroutine — drains mailboxes in registration
// order, FIFO within each, scheduling each envelope's dispatch onto the
// receiving Loop at its arrival time. Each Loop assigns its own monotonic
// sequence numbers, so the event order inside every domain is a pure
// function of (round schedule, mailbox registration order, per-domain event
// history) and is identical whether rounds run serially or on one goroutine
// per domain. Parallel execution is therefore bit-identical to serial
// execution of the same domain graph — and, because typed envelopes are
// data (see envelope.go), so is multi-process execution of a partition of
// it (see shard.go): the same envelopes reach the same mailboxes at the
// same times in the same order, whether by reference or by wire.

// Domain is one event loop in a partitioned simulation. All state owned by
// a domain must only be touched from its Loop's callbacks; the only legal
// cross-domain channel is a Mailbox.
type Domain struct {
	Loop *Loop
	name string
	id   int
}

// Name returns the label the domain was created with.
func (d *Domain) Name() string { return d.name }

// pendingEnv is one posted envelope awaiting the round barrier.
type pendingEnv struct {
	at  Time
	env Envelope
}

// Mailbox is a single-sender, single-receiver channel between two domains
// with a bounded minimum latency. Post may only be called from the sending
// domain's callbacks (or before the coordinator starts running); the
// envelopes are dispatched onto the receiving domain's Loop at the next
// round barrier. See envelope.go for the full envelope contract
// (ordering, min-delay, copy semantics).
type Mailbox struct {
	from, to *Domain
	minDelay Duration
	pending  []pendingEnv
	handlers map[EnvelopeKind]func(payload any)
}

// Post schedules env for dispatch in the receiving domain at virtual time
// at. The arrival must respect the mailbox's minimum delay relative to
// the sender's clock; violating it would break conservative
// synchronization, so Post panics rather than silently reordering time.
// The validation is shared by both directions of a Connect pair and by
// the deprecated PostFunc shim — no entry point or direction skips it.
func (m *Mailbox) Post(at Time, env Envelope) {
	m.checkDelay(at)
	m.pending = append(m.pending, pendingEnv{at: at, env: env})
}

// PostFunc schedules fn to run in the receiving domain at virtual time
// at — the old closure API, kept as a shim for tests and transitional
// callers.
//
// Deprecated: closures cannot cross a process boundary; use Post with a
// registered envelope kind. PostFunc applies the same min-delay
// validation as Post.
func (m *Mailbox) PostFunc(at Time, fn func()) {
	m.Post(at, Envelope{Kind: KindFunc, Payload: fn})
}

// checkDelay enforces the conservative-synchronization min-delay
// contract against the sender's clock.
func (m *Mailbox) checkDelay(at Time) {
	if now := m.from.Loop.Now(); at.Sub(now) < m.minDelay {
		panic(fmt.Sprintf(
			"sim: Mailbox.Post %s->%s at %v violates min delay %v (sender now %v)",
			m.from.name, m.to.name, at, m.minDelay, now))
	}
}

// OnReceive registers the receiving domain's handler for one envelope
// kind on this mailbox. The handler runs on the receiving domain's Loop
// at each envelope's arrival time. Registration happens at construction
// (before the coordinator runs) and is required for every typed kind the
// mailbox will carry; KindFunc needs no handler (the payload is the
// closure itself). Registering a kind twice panics: handler identity is
// part of the deterministic schedule.
func (m *Mailbox) OnReceive(kind EnvelopeKind, fn func(payload any)) {
	if kind == KindFunc {
		panic("sim: OnReceive(KindFunc): closure envelopes dispatch directly")
	}
	if _, ok := envelopeCodec(kind); !ok {
		panic(fmt.Sprintf("sim: OnReceive of unregistered envelope kind %d", kind))
	}
	if m.handlers == nil {
		m.handlers = make(map[EnvelopeKind]func(any))
	}
	if _, dup := m.handlers[kind]; dup {
		panic(fmt.Sprintf("sim: duplicate OnReceive for envelope kind %s on %s->%s",
			EnvelopeKindName(kind), m.from.name, m.to.name))
	}
	m.handlers[kind] = fn
}

// deliver schedules one envelope's dispatch onto the receiving Loop. A
// KindFunc payload is the event closure itself; a typed payload is
// dispatched through the mailbox's registered handler at the same
// virtual time, so both forms produce identical event schedules.
func (m *Mailbox) deliver(at Time, env Envelope) {
	if env.Kind == KindFunc {
		m.to.Loop.At(at, env.Payload.(func()))
		return
	}
	h := m.handlers[env.Kind]
	if h == nil {
		panic(fmt.Sprintf("sim: no OnReceive handler for envelope kind %s on %s->%s",
			EnvelopeKindName(env.Kind), m.from.name, m.to.name))
	}
	p := env.Payload
	m.to.Loop.At(at, func() { h(p) })
}

// Coordinator advances a set of domains in lockstep rounds of width equal
// to the lookahead, draining mailboxes at the barrier between rounds. With
// parallel=false the rounds run domain-by-domain on the calling goroutine;
// with parallel=true each domain gets a worker goroutine and rounds are
// separated by a WaitGroup barrier. Both modes produce bit-identical
// results (see the package comment above).
type Coordinator struct {
	lookahead Duration
	parallel  bool
	domains   []*Domain
	boxes     []*Mailbox
	now       Time
	rounds    int64
	exchanges int64
}

// NewCoordinator returns a coordinator advancing time in rounds of width
// lookahead. Panics if lookahead is not positive: a zero lookahead admits
// no conservative parallelism.
func NewCoordinator(lookahead Duration, parallel bool) *Coordinator {
	if lookahead <= 0 {
		panic("sim: coordinator lookahead must be positive")
	}
	return &Coordinator{lookahead: lookahead, parallel: parallel}
}

// Parallel reports whether rounds execute on per-domain goroutines.
func (c *Coordinator) Parallel() bool { return c.parallel }

// Lookahead returns the round width.
func (c *Coordinator) Lookahead() Duration { return c.lookahead }

// Now returns the lower bound on virtual time across all domains: every
// domain's clock is at least Now, and all mailboxes posted before Now have
// been delivered.
func (c *Coordinator) Now() Time { return c.now }

// NewDomain registers a new domain with its own Loop.
func (c *Coordinator) NewDomain(name string) *Domain {
	d := &Domain{Loop: NewLoop(), name: name, id: len(c.domains)}
	c.domains = append(c.domains, d)
	return d
}

// Connect creates a mailbox from one domain to another. minDelay must be at
// least the coordinator's lookahead; mailbox drain order follows Connect
// call order, which is part of the deterministic schedule.
func (c *Coordinator) Connect(from, to *Domain, minDelay Duration) *Mailbox {
	if minDelay < c.lookahead {
		panic(fmt.Sprintf("sim: mailbox min delay %v below coordinator lookahead %v",
			minDelay, c.lookahead))
	}
	if from == to {
		panic("sim: mailbox must connect two distinct domains")
	}
	m := &Mailbox{from: from, to: to, minDelay: minDelay}
	c.boxes = append(c.boxes, m)
	return m
}

// drain moves every pending mailbox envelope onto its receiving Loop.
// Runs on the coordinator goroutine while no domain executes, in
// registration order and FIFO within each mailbox, so the resulting
// event sequence numbers are deterministic.
func (c *Coordinator) drain() {
	for _, m := range c.boxes {
		for _, p := range m.pending {
			m.deliver(p.at, p.env)
		}
		clearPending(m)
	}
}

// clearPending empties a mailbox, zeroing entries so payloads don't
// pin their referents past delivery.
func clearPending(m *Mailbox) {
	for i := range m.pending {
		m.pending[i] = pendingEnv{}
	}
	m.pending = m.pending[:0]
}

// nextEventAt returns the earliest pending event across all domains.
func (c *Coordinator) nextEventAt() (Time, bool) {
	var best Time
	ok := false
	for _, d := range c.domains {
		if t, has := d.Loop.NextEventAt(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Run advances all domains to virtual time until. It may be called
// repeatedly to advance incrementally. In parallel mode the per-domain
// workers live only for the duration of the call.
func (c *Coordinator) Run(until Time) {
	if until <= c.now {
		return
	}
	// Deliver anything posted during construction (sender clocks at zero)
	// before the first round executes.
	c.drain()

	var work []chan Time
	var wg sync.WaitGroup
	if c.parallel {
		work = make([]chan Time, len(c.domains))
		for i, d := range c.domains {
			ch := make(chan Time)
			work[i] = ch
			go func(d *Domain, ch chan Time) {
				for end := range ch {
					d.Loop.Run(end)
					wg.Done()
				}
			}(d, ch)
		}
		defer func() {
			for _, ch := range work {
				close(ch)
			}
		}()
	}

	for c.now < until {
		end := c.now.Add(c.lookahead)
		if ne, ok := c.nextEventAt(); !ok {
			// Nothing pending anywhere and all mailboxes are drained:
			// no event can materialize, so jump straight to the horizon.
			end = until
		} else if s := ne.Add(-c.lookahead); s > end {
			// The earliest event is more than a round away. Advance in
			// one idle round to ne-L so the next round (ne-L, ne]
			// contains it. Identical in serial and parallel mode, so
			// the fast-forward preserves bit-identity.
			end = s
		}
		if end > until {
			end = until
		}
		if c.parallel {
			wg.Add(len(c.domains))
			for _, ch := range work {
				ch <- end
			}
			wg.Wait()
		} else {
			for _, d := range c.domains {
				d.Loop.Run(end)
			}
		}
		c.drain()
		c.now = end
		c.rounds++
	}
}

// Rounds returns the number of synchronization rounds executed so far —
// the coordinator's occupancy measure for telemetry. Read it between
// Run calls only.
func (c *Coordinator) Rounds() int64 { return c.rounds }

// RunFor advances the simulation by d from the coordinator's current time.
func (c *Coordinator) RunFor(d Duration) { c.Run(c.now.Add(d)) }
