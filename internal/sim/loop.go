package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to fire at a virtual time. Events with the
// same firing time execute in scheduling order, which keeps runs
// deterministic regardless of heap internals.
//
// Events returned by At/After are recycled onto a per-loop free list as
// soon as their callback returns, so a handle must not be used (Cancel,
// Canceled, When) after the event has fired — by then the same *Event may
// already carry an unrelated pending callback. Callers that need a handle
// which stays inert after firing (so an unconditional late Cancel is a
// no-op rather than a stray cancellation) schedule with AtKeep.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	// index is the event's position in the heap, or -1 once fired/canceled.
	index int
	// keep marks events excluded from free-list recycling (AtKeep).
	keep bool
	// trace is the causal trace id captured from the scheduling loop's
	// current trace register (see Loop.SetTrace). Zero means untraced.
	trace uint64
}

// Canceled reports whether the event has been canceled or already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

// When returns the virtual time the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Loop is the discrete-event scheduler. The zero value is not usable; call
// NewLoop.
//
// A Loop is single-goroutine: all scheduling must happen either before Run
// or from within event callbacks on the goroutine executing Run. The
// parallel experiment runner relies on this by giving every run its own
// Loop. Builds tagged `simcheck` verify the rule at runtime and panic on
// cross-goroutine At/Cancel calls.
type Loop struct {
	now     Time
	events  eventHeap
	nextSeq uint64
	running bool
	stopped bool
	// owner is the id of the goroutine executing Run; only tracked when
	// ownerCheckEnabled (build tag simcheck).
	owner uint64
	// executed counts events fired over the loop's lifetime. Plain
	// int64: sim must not depend on the telemetry layer, which reads
	// this through Executed as a loop-occupancy gauge.
	executed int64
	// free is the Event free list: fired events (minus AtKeep ones) are
	// recycled here so a steady event stream costs no allocation.
	free []*Event
	// curTrace is the causal trace register: the trace id of the event
	// currently executing. At stamps it onto every event it schedules, so
	// causality flows through timers and message deliveries without any
	// call-site changes; protocol code that *originates* a causal chain
	// (e.g. the controller issuing a switch) brackets the originating
	// calls with SetTrace.
	curTrace uint64
}

// checkOwner panics if the caller is scheduling against a Loop that is
// mid-Run on a different goroutine. Compiled away unless the simcheck
// build tag is set.
func (l *Loop) checkOwner(op string) {
	if !ownerCheckEnabled || !l.running {
		return
	}
	if g := goid(); g != l.owner {
		panic(fmt.Sprintf(
			"sim: Loop.%s called from goroutine %d while Run executes on goroutine %d; "+
				"a Loop is single-goroutine — each parallel run must own its Loop",
			op, g, l.owner))
	}
}

// NewLoop returns a scheduler positioned at virtual time zero.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model, and silently
// clamping would hide causality bugs.
func (l *Loop) At(t Time, fn func()) *Event {
	l.checkOwner("At")
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, l.now))
	}
	var e *Event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		e.when, e.fn, e.keep = t, fn, false
	} else {
		e = &Event{when: t, fn: fn}
	}
	e.trace = l.curTrace
	e.seq = l.nextSeq
	l.nextSeq++
	heap.Push(&l.events, e)
	return e
}

// AtKeep is At for callers that keep the returned handle past the firing
// time: the event is never recycled, so a stale Cancel stays the
// documented no-op instead of hitting a reused Event. Off the hot path
// (client-side migration-safe timers); everything else uses At.
func (l *Loop) AtKeep(t Time, fn func()) *Event {
	e := l.At(t, fn)
	e.keep = true
	return e
}

// After schedules fn to run d after the current virtual time.
func (l *Loop) After(d Duration, fn func()) *Event {
	return l.At(l.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling an event that already fired or
// was already canceled is a no-op, so callers can cancel unconditionally.
func (l *Loop) Cancel(e *Event) {
	l.checkOwner("Cancel")
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&l.events, e.index)
	e.index = -1
}

// Run executes events in timestamp order until the queue drains or the
// virtual clock passes until. The clock is left at min(until, last event
// time); events scheduled after until remain pending so Run can be resumed.
func (l *Loop) Run(until Time) {
	if l.running {
		panic("sim: re-entrant Run")
	}
	l.running = true
	l.stopped = false
	if ownerCheckEnabled {
		l.owner = goid()
	}
	defer func() { l.running = false }()
	for len(l.events) > 0 && !l.stopped {
		next := l.events[0]
		if next.when > until {
			break
		}
		heap.Pop(&l.events)
		l.now = next.when
		l.executed++
		l.curTrace = next.trace
		next.fn()
		// Recycle after fn returns: a self-Cancel inside fn saw index
		// -1 and no-oped, so nothing still treats next as pending.
		if !next.keep {
			next.fn = nil
			l.free = append(l.free, next)
		}
	}
	if l.now < until {
		l.now = until
	}
	l.curTrace = 0
}

// Trace returns the causal trace id of the event currently executing
// (zero outside traced chains). See SetTrace.
func (l *Loop) Trace() uint64 { return l.curTrace }

// SetTrace sets the loop's causal trace register and returns its
// previous value. Every event scheduled while the register is nonzero
// inherits the id, and Run restores the register from each event before
// dispatching it, so one SetTrace at the origin of a protocol exchange
// (bracketed with a deferred restore of the previous value) threads the
// id through timers, retransmissions and mailbox deliveries with no
// further plumbing. Purely observational: the register never affects
// the event schedule, so runs are bit-identical whether or not anything
// reads it.
func (l *Loop) SetTrace(id uint64) uint64 {
	prev := l.curTrace
	l.curTrace = id
	return prev
}

// RunFor advances the simulation by d from the current virtual time.
func (l *Loop) RunFor(d Duration) { l.Run(l.now.Add(d)) }

// Stop makes the current Run call return after the in-flight event
// completes. Pending events remain queued.
func (l *Loop) Stop() { l.stopped = true }

// Pending returns the number of events still queued.
func (l *Loop) Pending() int { return len(l.events) }

// Executed returns the number of events fired so far — the loop's
// occupancy measure for telemetry. Read it only from the loop's own
// callbacks or while the loop is quiescent.
func (l *Loop) Executed() int64 { return l.executed }

// NextEventAt returns the firing time of the earliest pending event, or
// ok=false when the queue is empty. The Coordinator uses it to fast-forward
// across idle synchronization rounds.
func (l *Loop) NextEventAt() (Time, bool) {
	if len(l.events) == 0 {
		return 0, false
	}
	return l.events[0].when, true
}
