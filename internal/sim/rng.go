package sim

import "math/rand"

// RNG is a deterministic random stream. Components must not share streams:
// each subsystem derives its own with Fork so that adding randomness in one
// module never perturbs another module's draws, keeping regression results
// stable across refactors.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(mix(uint64(seed))))}
}

// mix is splitmix64: it decorrelates nearby seeds so that Fork("a") and
// Fork("b") from the same parent produce independent-looking streams.
func mix(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Fork derives an independent child stream named by label. The same
// (parent seed, label) pair always yields the same child stream.
func (g *RNG) Fork(label string) *RNG {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= g.r.Uint64()
	return &RNG{r: rand.New(rand.NewSource(mix(h)))}
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential draw with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes element order using the stream.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
