//go:build !simcheck

package sim

// ownerCheckEnabled is false in normal builds; the guard code compiles
// away entirely. Build with -tags simcheck to enable it.
const ownerCheckEnabled = false

func goid() uint64 { return 0 }
