// Package sim provides the deterministic discrete-event simulation engine
// that every other subsystem runs on: a virtual clock, an event heap with
// cancelable timers, and seeded random-number streams.
//
// All of WGTT's mechanisms operate at millisecond granularity, far below
// what a wall-clock test harness could reproduce deterministically, so the
// whole network (radio, MAC, backhaul, transport) advances on this single
// virtual clock. One goroutine owns the loop; components interact purely
// through scheduled callbacks.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is intentionally not time.Time: there is no calendar, no
// wall clock, and no monotonic ambiguity — just a count of elapsed virtual
// nanoseconds.
type Time int64

// Duration mirrors time.Duration for virtual intervals.
type Duration = time.Duration

// Common interval constants re-exported for call-site brevity.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the interval t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats the timestamp as seconds with microsecond precision,
// which reads naturally in traces ("3.201456s").
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
