package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLoopRunsEventsInOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(Time(30), func() { got = append(got, 3) })
	l.At(Time(10), func() { got = append(got, 1) })
	l.At(Time(20), func() { got = append(got, 2) })
	l.Run(Time(100))
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestLoopSameTimeFIFO(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(Time(5), func() { got = append(got, i) })
	}
	l.Run(Time(10))
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events ran out of scheduling order: %v", got)
		}
	}
}

func TestLoopClockAdvancesToEventTime(t *testing.T) {
	l := NewLoop()
	var at Time
	l.At(Time(42), func() { at = l.Now() })
	l.Run(Time(100))
	if at != Time(42) {
		t.Errorf("Now() inside event = %v, want 42", at)
	}
	if l.Now() != Time(100) {
		t.Errorf("Now() after Run = %v, want 100 (run horizon)", l.Now())
	}
}

func TestLoopEventsBeyondHorizonStayPending(t *testing.T) {
	l := NewLoop()
	fired := false
	l.At(Time(200), func() { fired = true })
	l.Run(Time(100))
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", l.Pending())
	}
	l.Run(Time(300))
	if !fired {
		t.Fatal("event did not fire on resumed Run")
	}
}

func TestLoopAfterUsesCurrentTime(t *testing.T) {
	l := NewLoop()
	var firedAt Time
	l.At(Time(50), func() {
		l.After(25*Nanosecond, func() { firedAt = l.Now() })
	})
	l.Run(Time(1000))
	if firedAt != Time(75) {
		t.Errorf("chained After fired at %v, want 75", firedAt)
	}
}

func TestLoopCancel(t *testing.T) {
	l := NewLoop()
	fired := false
	e := l.At(Time(10), func() { fired = true })
	l.Cancel(e)
	l.Run(Time(100))
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double cancel and cancel-after-fire must be safe no-ops.
	l.Cancel(e)
	e2 := l.At(Time(200), func() {})
	l.Run(Time(300))
	l.Cancel(e2)
}

func TestLoopCancelMiddleOfHeap(t *testing.T) {
	l := NewLoop()
	var got []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, l.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every third event, including ones in the middle of the heap.
	for i := 0; i < 20; i += 3 {
		l.Cancel(events[i])
	}
	l.Run(Time(1000))
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("ran %d events, want 13", len(got))
	}
}

func TestLoopStop(t *testing.T) {
	l := NewLoop()
	count := 0
	for i := 1; i <= 10; i++ {
		l.At(Time(i), func() {
			count++
			if count == 3 {
				l.Stop()
			}
		})
	}
	l.Run(Time(100))
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if l.Pending() != 7 {
		t.Fatalf("Pending = %d after Stop, want 7", l.Pending())
	}
}

func TestLoopPastSchedulingPanics(t *testing.T) {
	l := NewLoop()
	l.At(Time(50), func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		l.At(Time(10), func() {})
	})
	l.Run(Time(100))
}

func TestLoopReentrantRunPanics(t *testing.T) {
	l := NewLoop()
	l.At(Time(1), func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		l.Run(Time(2))
	})
	l.Run(Time(10))
}

func TestTimeArithmetic(t *testing.T) {
	ts := Time(0).Add(1500 * Millisecond)
	if ts.Seconds() != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", ts.Seconds())
	}
	if ts.Milliseconds() != 1500 {
		t.Errorf("Milliseconds = %v, want 1500", ts.Milliseconds())
	}
	if d := ts.Sub(Time(0).Add(500 * Millisecond)); d != time.Second {
		t.Errorf("Sub = %v, want 1s", d)
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Error("Before/After comparisons wrong")
	}
	if s := Time(3201456 * 1000).String(); s != "3.201456s" {
		t.Errorf("String = %q", s)
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and none fire after the horizon.
func TestLoopOrderProperty(t *testing.T) {
	f := func(offsets []uint16, horizon uint16) bool {
		l := NewLoop()
		var fired []Time
		for _, o := range offsets {
			o := Time(o)
			l.At(o, func() { fired = append(fired, o) })
		}
		l.Run(Time(horizon))
		last := Time(-1)
		for _, ts := range fired {
			if ts < last || ts > Time(horizon) {
				return false
			}
			last = ts
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("adjacent seeds produced identical first draw")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// Forks with different labels from identically-seeded parents differ.
	a := NewRNG(1).Fork("rf")
	b := NewRNG(1).Fork("mac")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams coincide on %d/64 draws", same)
	}
	// Same label, same parent seed: identical streams.
	c := NewRNG(1).Fork("rf")
	d := NewRNG(1).Fork("rf")
	for i := 0; i < 64; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("same fork label produced different streams")
		}
	}
}

func TestRNGBasicStatistics(t *testing.T) {
	g := NewRNG(42)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / float64(n)
	if mean < 0.48 || mean > 0.52 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += g.NormFloat64()
	}
	if m := sum / float64(n); m < -0.03 || m > 0.03 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
}
