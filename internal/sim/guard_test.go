//go:build simcheck

package sim

import (
	"strings"
	"testing"
)

// TestOwnerGuardPanicsCrossGoroutine verifies that, under the simcheck
// build tag, scheduling against a Loop mid-Run from a foreign goroutine
// panics with an explanatory message.
func TestOwnerGuardPanicsCrossGoroutine(t *testing.T) {
	l := NewLoop()
	got := make(chan any, 1)
	l.After(Millisecond, func() {
		done := make(chan struct{})
		go func() {
			defer func() {
				got <- recover()
				close(done)
			}()
			l.After(Millisecond, func() {})
		}()
		<-done
	})
	l.Run(Time(Second))
	v := <-got
	s, ok := v.(string)
	if !ok || !strings.Contains(s, "single-goroutine") {
		t.Fatalf("cross-goroutine At: recovered %v, want ownership panic", v)
	}
}

// TestOwnerGuardAllowsOwner verifies the guard stays silent for the
// legitimate patterns: scheduling before Run and from within callbacks.
func TestOwnerGuardAllowsOwner(t *testing.T) {
	l := NewLoop()
	fired := 0
	var ev *Event
	l.After(Millisecond, func() {
		fired++
		ev = l.After(Millisecond, func() { fired++ })
		l.Cancel(ev)
	})
	l.Run(Time(Second))
	if fired != 1 {
		t.Fatalf("fired %d events, want 1 (second canceled)", fired)
	}
}
