package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format selects a Snapshot export encoding.
type Format int

// Export formats.
const (
	FormatText Format = iota // human-readable, the -metrics default
	FormatJSON
	FormatCSV
	FormatProm // Prometheus text exposition (version 0.0.4)
)

// ParseFormat maps the -metrics flag values ("", "text", "json", "csv",
// "prom") to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	case "prom":
		return FormatProm, nil
	}
	return 0, fmt.Errorf("telemetry: unknown metrics format %q (want text, json, csv or prom)", s)
}

// Write renders the snapshot in the given format.
func (s *Snapshot) Write(w io.Writer, f Format) error {
	switch f {
	case FormatJSON:
		return s.WriteJSON(w)
	case FormatCSV:
		return s.WriteCSV(w)
	case FormatProm:
		return s.WriteProm(w)
	default:
		return s.WriteText(w)
	}
}

// WriteText renders an aligned human-readable dump.
func (s *Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# metrics @ %v\n", s.At)
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-44s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "%-44s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-44s count=%d sum=%.3f p50=%.2f p95=%.2f p99=%.2f\n",
			h.Name, h.Count, h.Sum, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(&b, "%-44s begun=%d done=%d dropped=%d active=%d mean=%.1fms p50=%.1fms p90=%.1fms max=%.1fms\n",
			sp.Name+" [spans]", sp.Begun, sp.Completed, sp.Dropped, sp.Active,
			sp.MeanMs, sp.P50Ms, sp.P90Ms, sp.MaxMs)
	}
	for _, se := range s.Series {
		if len(se.Values) == 0 {
			continue
		}
		last := len(se.Values) - 1
		fmt.Fprintf(&b, "%-44s samples=%d last=%g @ %v\n",
			se.Name+" [series]", len(se.Values), se.Values[last], se.Times[last])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV renders flat kind,name,field,value rows; series samples get
// one row per point with the sim time (ns) in the field column.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("kind,name,field,value\n")
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter,%s,value,%d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge,%s,value,%g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram,%s,count,%d\n", h.Name, h.Count)
		fmt.Fprintf(&b, "histogram,%s,sum,%g\n", h.Name, h.Sum)
		for i, c := range h.Buckets {
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
			}
			fmt.Fprintf(&b, "histogram,%s,le=%s,%d\n", h.Name, le, c)
		}
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(&b, "spans,%s,completed,%d\n", sp.Name, sp.Completed)
		fmt.Fprintf(&b, "spans,%s,dropped,%d\n", sp.Name, sp.Dropped)
		fmt.Fprintf(&b, "spans,%s,p50_ms,%g\n", sp.Name, sp.P50Ms)
		fmt.Fprintf(&b, "spans,%s,p90_ms,%g\n", sp.Name, sp.P90Ms)
	}
	for _, se := range s.Series {
		for i, v := range se.Values {
			fmt.Fprintf(&b, "series,%s,%d,%g\n", se.Name, int64(se.Times[i]), v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitizes a hierarchical metric name into a Prometheus
// metric name: wgtt_ prefix, path separators and other illegal runes
// become underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("wgtt_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm renders the snapshot in the Prometheus text exposition
// format: counters gain a _total suffix, histograms emit cumulative
// _bucket/_sum/_count samples, span trackers surface their lifecycle
// counters (the latency distributions are ordinary histograms), and
// each series contributes its most recent sample as a _last gauge.
func (s *Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		n := promName(c.Name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
	}
	for _, sp := range s.Spans {
		n := promName(sp.Name)
		fmt.Fprintf(&b, "# TYPE %s_completed_total counter\n%s_completed_total %d\n", n, n, sp.Completed)
		fmt.Fprintf(&b, "# TYPE %s_dropped_total counter\n%s_dropped_total %d\n", n, n, sp.Dropped)
		fmt.Fprintf(&b, "# TYPE %s_active gauge\n%s_active %d\n", n, n, sp.Active)
	}
	for _, se := range s.Series {
		if len(se.Values) == 0 {
			continue
		}
		n := promName(se.Name) + "_last"
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(se.Values[len(se.Values)-1]))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
