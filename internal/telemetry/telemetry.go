// Package telemetry is the unified metrics layer for the wgtt datapath:
// a hierarchical-name registry of counters, gauges, fixed-bucket
// histograms and windowed time series, plus span tracing for the
// stop/start/ack switching protocol (span.go).
//
// Design rules, in order of importance:
//
//  1. Zero allocation on the hot path. Handles (*Counter, *Gauge,
//     *Histogram, *Series, *Spans) are resolved once at build time;
//     recording is a plain field update. Every handle method is
//     nil-receiver safe, so code instruments unconditionally and a
//     disabled registry (nil handles from a zero Scope) costs one
//     predictable branch per record.
//
//  2. Deterministic. Metrics carry sim.Time only — never wall clock —
//     and no registry operation consults maps in iteration order at
//     record time. Snapshots sort by name, span aggregates are built
//     from completion order, so output is a pure function of the
//     simulated schedule.
//
//  3. Domain safe. A Registry is split into shards: each parallel
//     segment domain owns one shard and only that domain's goroutine
//     touches it between coordinator barriers (the same ownership rule
//     as every other per-domain structure), so counters are plain
//     int64, not atomics. Snapshot merges the shards after the
//     coordinator has joined its workers, which is also the
//     happens-before edge that makes the plain fields visible.
//     Because instrumented code only appends to its own shard,
//     DomainsSerial and DomainsParallel stay bit-identical.
//
// Registration (Scope.Counter etc.) is build-time only: single
// goroutine, before the simulation runs. GaugeFunc callbacks run only
// during Snapshot (quiescent) or Scope.Sample on the owning domain's
// loop, never on the record path.
package telemetry

import (
	"fmt"
	"sort"

	"wgtt/internal/sim"
)

// SamplePeriod is the cadence of the periodic time-series sampler that
// core schedules on every domain loop.
const SamplePeriod = 100 * sim.Millisecond

// seriesWindow bounds each time series to a ring of this many samples
// (at SamplePeriod, ~409 simulated seconds of history).
const seriesWindow = 4096

// Counter is a monotonically increasing count. Nil-safe: a nil Counter
// ignores updates, so disabled telemetry needs no call-site guards.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instantaneous measurement. Nil-safe.
type Gauge struct {
	name string
	v    float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the current value by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the last recorded value (0 on a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds (Prometheus "le" semantics); an implicit +Inf bucket catches
// the rest. Nil-safe.
type Histogram struct {
	name   string
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Series is a bounded ring of (sim.Time, value) samples recorded by the
// periodic sampler (Scope.Sample). Nil-safe.
type Series struct {
	name string
	src  func() float64
	t    []sim.Time
	v    []float64
	head int // index of oldest sample
	n    int
}

func (s *Series) record(now sim.Time) {
	if s == nil {
		return
	}
	i := (s.head + s.n) % seriesWindow
	if s.n == seriesWindow {
		s.head = (s.head + 1) % seriesWindow
	} else {
		s.n++
	}
	s.t[i] = now
	s.v[i] = s.src()
}

// Samples returns the retained window in time order.
func (s *Series) Samples() ([]sim.Time, []float64) {
	if s == nil || s.n == 0 {
		return nil, nil
	}
	ts := make([]sim.Time, s.n)
	vs := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		j := (s.head + i) % seriesWindow
		ts[i], vs[i] = s.t[j], s.v[j]
	}
	return ts, vs
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindSeries
	kindSpans
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gaugefunc"
	case kindHistogram:
		return "histogram"
	case kindSeries:
		return "series"
	case kindSpans:
		return "spans"
	}
	return "unknown"
}

type metric struct {
	name    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	series  *Series
	spans   *Spans
}

// shard holds the metrics owned by one execution domain. Registration
// order is remembered so sampling walks series deterministically. name
// is the prefix the shard was created with ("" for the root shard) —
// the key a partitioned run filters per-process snapshots by.
type shard struct {
	name   string
	byName map[string]*metric
	order  []*metric
}

func newShard(name string) *shard {
	return &shard{name: name, byName: make(map[string]*metric)}
}

func (sh *shard) lookup(name string, kind metricKind) *metric {
	if m, ok := sh.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %q registered as %v, requested as %v",
				name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, kind: kind}
	sh.byName[name] = m
	sh.order = append(sh.order, m)
	return m
}

// Registry is the root of a telemetry hierarchy: one per Network.
type Registry struct {
	shards []*shard // shards[0] is the root shard
}

// NewRegistry returns a registry with a root shard.
func NewRegistry() *Registry {
	return &Registry{shards: []*shard{newShard("")}}
}

// Scope returns a registration view onto the root shard with the given
// name prefix ("" for none). Use for state owned by the main loop
// (server, clients, coordinator).
func (r *Registry) Scope(prefix string) Scope {
	if r == nil {
		return Scope{}
	}
	return Scope{sh: r.shards[0], prefix: prefix}
}

// NewShard creates a shard for one parallel domain and returns its
// scope. Only the owning domain's goroutine may record into handles
// registered through it.
func (r *Registry) NewShard(prefix string) Scope {
	if r == nil {
		return Scope{}
	}
	sh := newShard(prefix)
	r.shards = append(r.shards, sh)
	return Scope{sh: sh, prefix: prefix}
}

// Scope is a named registration point. The zero Scope is "disabled":
// every constructor returns a nil handle and Sample is a no-op, so
// wiring code can pass scopes unconditionally.
type Scope struct {
	sh     *shard
	prefix string
}

// Enabled reports whether the scope is backed by a registry.
func (s Scope) Enabled() bool { return s.sh != nil }

// Sub returns a child scope with name appended to the prefix.
func (s Scope) Sub(name string) Scope {
	if s.sh == nil {
		return Scope{}
	}
	return Scope{sh: s.sh, prefix: s.join(name)}
}

func (s Scope) join(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "/" + name
}

// Counter registers (or finds) a counter under the scope.
func (s Scope) Counter(name string) *Counter {
	if s.sh == nil {
		return nil
	}
	m := s.sh.lookup(s.join(name), kindCounter)
	if m.counter == nil {
		m.counter = &Counter{name: m.name}
	}
	return m.counter
}

// Gauge registers (or finds) a gauge under the scope.
func (s Scope) Gauge(name string) *Gauge {
	if s.sh == nil {
		return nil
	}
	m := s.sh.lookup(s.join(name), kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{name: m.name}
	}
	return m.gauge
}

// GaugeFunc registers a gauge evaluated lazily — only at Snapshot time
// (simulation quiescent) or from the owning domain's sampler — so the
// callback may read domain-owned state and costs nothing on the hot
// path. Re-registering a name replaces the callback.
func (s Scope) GaugeFunc(name string, fn func() float64) {
	if s.sh == nil {
		return
	}
	s.sh.lookup(s.join(name), kindGaugeFunc).fn = fn
}

// Histogram registers (or finds) a fixed-bucket histogram. bounds are
// ascending upper bounds; a +Inf bucket is implicit.
func (s Scope) Histogram(name string, bounds []float64) *Histogram {
	if s.sh == nil {
		return nil
	}
	m := s.sh.lookup(s.join(name), kindHistogram)
	if m.hist == nil {
		m.hist = &Histogram{
			name:   m.name,
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
	}
	return m.hist
}

// Series registers (or finds) a windowed time series fed from fn by the
// periodic sampler (Scope.Sample), at no hot-path cost.
func (s Scope) Series(name string, fn func() float64) *Series {
	if s.sh == nil {
		return nil
	}
	m := s.sh.lookup(s.join(name), kindSeries)
	if m.series == nil {
		m.series = &Series{
			name: m.name,
			src:  fn,
			t:    make([]sim.Time, seriesWindow),
			v:    make([]float64, seriesWindow),
		}
	}
	return m.series
}

// Sample records one point into every series of the underlying shard
// (not just those under this scope's prefix). Call it from the shard's
// owning loop; core schedules it every SamplePeriod.
func (s Scope) Sample(now sim.Time) {
	if s.sh == nil {
		return
	}
	for _, m := range s.sh.order {
		if m.kind == kindSeries {
			m.series.record(now)
		}
	}
}

// Snapshot evaluates gauge callbacks and merges every shard into a
// sorted, self-contained Snapshot. Call only while the simulation is
// quiescent (after Run returns): that is both the determinism rule for
// GaugeFunc reads and the memory-visibility edge for parallel domains.
func (r *Registry) Snapshot(at sim.Time) *Snapshot {
	return r.SnapshotShards(at, nil)
}

// SnapshotShards is Snapshot restricted to the shards whose name keep
// accepts (the root shard's name is ""); a nil keep accepts every
// shard. A partitioned run exports each shard from the process that
// owns its domain — remote shards' series never sample and remote
// GaugeFuncs would read never-run state, so each process keeps exactly
// its own shards and MergeSnapshots stitches the full picture, bit-
// identical to an in-process Snapshot because metric names are unique
// across shards and both paths sort by name.
func (r *Registry) SnapshotShards(at sim.Time, keep func(shard string) bool) *Snapshot {
	if r == nil {
		return nil
	}
	snap := &Snapshot{At: at}
	for _, sh := range r.shards {
		if keep != nil && !keep(sh.name) {
			continue
		}
		for _, m := range sh.order {
			switch m.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters,
					CounterPoint{Name: m.name, Value: m.counter.v})
			case kindGauge:
				snap.Gauges = append(snap.Gauges,
					GaugePoint{Name: m.name, Value: m.gauge.v})
			case kindGaugeFunc:
				snap.Gauges = append(snap.Gauges,
					GaugePoint{Name: m.name, Value: m.fn()})
			case kindHistogram:
				snap.Histograms = append(snap.Histograms, histPoint(m.hist))
			case kindSeries:
				ts, vs := m.series.Samples()
				snap.Series = append(snap.Series,
					SeriesPoint{Name: m.name, Times: ts, Values: vs})
			case kindSpans:
				snap.Spans = append(snap.Spans, m.spans.stat())
				for _, h := range m.spans.histograms() {
					snap.Histograms = append(snap.Histograms, histPoint(h))
				}
			}
		}
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	sort.Slice(snap.Series, func(i, j int) bool { return snap.Series[i].Name < snap.Series[j].Name })
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Name < snap.Spans[j].Name })
	return snap
}

func histPoint(h *Histogram) HistogramPoint {
	return HistogramPoint{
		Name:    h.name,
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: append([]int64(nil), h.counts...),
		Sum:     h.sum,
		Count:   h.n,
	}
}
