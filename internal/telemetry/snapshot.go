package telemetry

import (
	"sort"
	"strings"

	"wgtt/internal/sim"
)

// CounterPoint is one counter in a Snapshot.
type CounterPoint struct {
	Name  string
	Value int64
}

// GaugePoint is one gauge (stored or callback) in a Snapshot.
type GaugePoint struct {
	Name  string
	Value float64
}

// HistogramPoint is one histogram in a Snapshot. Buckets has one entry
// per bound plus a final +Inf bucket; entries are per-bucket counts
// (not cumulative).
type HistogramPoint struct {
	Name    string
	Bounds  []float64
	Buckets []int64
	Sum     float64
	Count   int64
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the containing bucket; observations are assumed non-negative.
// Values landing in the +Inf bucket report the largest finite bound.
func (h HistogramPoint) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum float64
	lo := 0.0
	for i, c := range h.Buckets {
		if i == len(h.Bounds) {
			return lo // +Inf bucket: clamp to the largest finite bound
		}
		hi := h.Bounds[i]
		if cum+float64(c) >= rank {
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum += float64(c)
		lo = hi
	}
	return lo
}

// merge folds another histogram with identical bounds into h.
func (h *HistogramPoint) merge(o HistogramPoint) bool {
	if len(o.Bounds) != len(h.Bounds) || len(o.Buckets) != len(h.Buckets) {
		return false
	}
	for i, b := range o.Buckets {
		h.Buckets[i] += b
	}
	h.Sum += o.Sum
	h.Count += o.Count
	return true
}

// SeriesPoint is one time series window in a Snapshot.
type SeriesPoint struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Snapshot is a self-contained, name-sorted export of a Registry at one
// simulated instant. It holds no references into live metric state.
type Snapshot struct {
	At         sim.Time
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
	Series     []SeriesPoint
	Spans      []SpanStat
}

// MergeSnapshots stitches disjoint per-process snapshots (each exported
// with SnapshotShards over its owned shards) back into one. Because
// metric names are unique across shards and both this and Snapshot sort
// every category by name, merging the per-process parts of a partitioned
// run is bit-identical to an in-process Snapshot of the whole registry.
// The result's At is the parts' common timestamp (the latest, if they
// ever differ).
func MergeSnapshots(parts ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.At > out.At {
			out.At = p.At
		}
		out.Counters = append(out.Counters, p.Counters...)
		out.Gauges = append(out.Gauges, p.Gauges...)
		out.Histograms = append(out.Histograms, p.Histograms...)
		out.Series = append(out.Series, p.Series...)
		out.Spans = append(out.Spans, p.Spans...)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].Name < out.Series[j].Name })
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].Name < out.Spans[j].Name })
	return out
}

// leafMatch reports whether name is exactly leaf or ends in "/<leaf>".
func leafMatch(name, leaf string) bool {
	return name == leaf || strings.HasSuffix(name, "/"+leaf)
}

// Counter returns the counter with the exact name.
func (s *Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// SumCounters sums every counter whose last path component is leaf
// (e.g. SumCounters("tx_bytes") over seg0/trunk/tx_bytes, seg1/...).
func (s *Snapshot) SumCounters(leaf string) int64 {
	var sum int64
	for _, c := range s.Counters {
		if leafMatch(c.Name, leaf) {
			sum += c.Value
		}
	}
	return sum
}

// Gauge returns the gauge with the exact name.
func (s *Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// SumGauges sums every gauge whose last path component is leaf.
func (s *Snapshot) SumGauges(leaf string) float64 {
	var sum float64
	for _, g := range s.Gauges {
		if leafMatch(g.Name, leaf) {
			sum += g.Value
		}
	}
	return sum
}

// Histogram returns the histogram with the exact name.
func (s *Snapshot) Histogram(name string) (HistogramPoint, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramPoint{}, false
}

// MergeHistograms merges every histogram whose last path component is
// leaf (they must share bounds) into one, e.g. a fleet-wide handoff
// latency distribution from per-segment total_ms histograms.
func (s *Snapshot) MergeHistograms(leaf string) (HistogramPoint, bool) {
	var out HistogramPoint
	found := false
	for _, h := range s.Histograms {
		if !leafMatch(h.Name, leaf) {
			continue
		}
		if !found {
			out = HistogramPoint{
				Name:    leaf,
				Bounds:  append([]float64(nil), h.Bounds...),
				Buckets: append([]int64(nil), h.Buckets...),
				Sum:     h.Sum,
				Count:   h.Count,
			}
			found = true
			continue
		}
		out.merge(h)
	}
	return out, found
}

// Span returns the span stat whose last path component is name.
func (s *Snapshot) Span(name string) (SpanStat, bool) {
	for _, sp := range s.Spans {
		if leafMatch(sp.Name, name) {
			return sp, true
		}
	}
	return SpanStat{}, false
}
