package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Collector aggregates per-run snapshots into per-case summaries for
// wgtt-experiments. Runs executed by parallel workers record in
// arbitrary order, so every aggregate is commutative (sums, bucket
// adds) and Summary sorts case labels — the report is deterministic
// regardless of scheduling.
type Collector struct {
	mu    sync.Mutex
	cases map[string]*caseAgg
}

type caseAgg struct {
	runs     int
	counters map[string]int64
	handoff  HistogramPoint // merged <...>/total_ms histograms
	hasHist  bool
	spansDne int64
	spansDrp int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{cases: make(map[string]*caseAgg)} }

// Record folds one run's snapshot into the named case. Safe for
// concurrent use; nil collectors and nil snapshots are ignored.
func (c *Collector) Record(label string, snap *Snapshot) {
	if c == nil || snap == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	agg, ok := c.cases[label]
	if !ok {
		agg = &caseAgg{counters: make(map[string]int64)}
		c.cases[label] = agg
	}
	agg.runs++
	for _, cp := range snap.Counters {
		agg.counters[cp.Name] += cp.Value
	}
	if h, ok := snap.MergeHistograms("total_ms"); ok {
		if !agg.hasHist {
			agg.handoff = h
			agg.hasHist = true
		} else {
			agg.handoff.merge(h)
		}
	}
	for _, sp := range snap.Spans {
		agg.spansDne += sp.Completed
		agg.spansDrp += sp.Dropped
	}
}

// Reset discards all recorded cases.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cases = make(map[string]*caseAgg)
}

func (a *caseAgg) sumLeaf(leaf string) int64 {
	var sum int64
	for name, v := range a.counters {
		if leafMatch(name, leaf) {
			sum += v
		}
	}
	return sum
}

// Summary renders one block per case: run count, handoff span totals
// with merged latency quantiles, and the headline datapath counters.
func (c *Collector) Summary() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.cases))
	for l := range c.cases {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, l := range labels {
		a := c.cases[l]
		fmt.Fprintf(&b, "metrics[%s] runs=%d\n", l, a.runs)
		fmt.Fprintf(&b, "  handoffs: done=%d dropped=%d", a.spansDne, a.spansDrp)
		if a.hasHist && a.handoff.Count > 0 {
			fmt.Fprintf(&b, " p50=%.1fms p95=%.1fms",
				a.handoff.Quantile(0.50), a.handoff.Quantile(0.95))
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  switches: issued=%d acked=%d stop_retx=%d\n",
			a.sumLeaf("switches_issued"), a.sumLeaf("switches_acked"), a.sumLeaf("stop_retx"))
		fmt.Fprintf(&b, "  airtime:  aggregates=%d mpdus=%d retx=%d dropped=%d\n",
			a.sumLeaf("aggregates"), a.sumLeaf("mpdus"), a.sumLeaf("mpdus_retx"), a.sumLeaf("mpdus_dropped"))
		fmt.Fprintf(&b, "  wires:    backhaul_bytes=%d trunk_tx_bytes=%d\n",
			a.sumLeaf("bytes"), a.sumLeaf("tx_bytes"))
	}
	return b.String()
}
