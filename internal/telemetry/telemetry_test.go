package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"

	"wgtt/internal/sim"
)

func TestDisabledScopeIsInert(t *testing.T) {
	var sc Scope
	if sc.Enabled() {
		t.Fatal("zero Scope reports enabled")
	}
	c := sc.Counter("x")
	g := sc.Gauge("y")
	h := sc.Histogram("z", []float64{1})
	se := sc.Series("w", func() float64 { return 1 })
	sp := sc.Spans("s")
	if c != nil || g != nil || h != nil || se != nil || sp != nil {
		t.Fatal("zero Scope returned non-nil handles")
	}
	// All nil-receiver operations must be no-ops, not panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(4)
	sp.Begin(1, 0, 0, 1)
	sp.MarkStart(1, 0)
	sp.AddFlushed(1, 2)
	sp.AddForwarded(1, 100)
	sp.End(1, 0)
	sp.Drop(2)
	sc.Sample(0)
	sc.GaugeFunc("f", func() float64 { return 0 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || se.Len() != 0 {
		t.Fatal("nil handles accumulated state")
	}
}

func TestRegistryDedupAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("seg0")
	a := sc.Counter("ap0/mpdus")
	b := sc.Sub("ap0").Counter("mpdus")
	if a != b {
		t.Fatal("same hierarchical name resolved to distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	sc.Gauge("ap0/mpdus")
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Scope("").Histogram("lat", []float64{10, 20, 40})
	for v := 1.0; v <= 30; v++ {
		h.Observe(v) // 10 in (0,10], 10 in (10,20], 10 in (20,40]
	}
	h.Observe(1000) // +Inf bucket
	snap := r.Snapshot(0)
	hp, ok := snap.Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hp.Count != 31 {
		t.Fatalf("count = %d, want 31", hp.Count)
	}
	p50 := hp.Quantile(0.5)
	if p50 < 10 || p50 > 20 {
		t.Fatalf("p50 = %g, want within (10,20]", p50)
	}
	if q := hp.Quantile(1.0); q != 40 {
		t.Fatalf("q1.0 = %g, want clamp to largest finite bound 40", q)
	}
}

func TestSeriesWindowAndSampling(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("seg0")
	depth := 0.0
	sc.Series("ap0/queue_depth_100ms", func() float64 { return depth })
	for i := 0; i < seriesWindow+10; i++ {
		depth = float64(i)
		sc.Sample(sim.Time(i) * sim.Time(SamplePeriod))
	}
	snap := r.Snapshot(0)
	se := snap.Series[0]
	if len(se.Values) != seriesWindow {
		t.Fatalf("window = %d, want %d", len(se.Values), seriesWindow)
	}
	if se.Values[0] != 10 || se.Values[len(se.Values)-1] != float64(seriesWindow+9) {
		t.Fatalf("ring dropped wrong samples: first=%g last=%g", se.Values[0], se.Values[len(se.Values)-1])
	}
	for i := 1; i < len(se.Times); i++ {
		if se.Times[i] <= se.Times[i-1] {
			t.Fatalf("samples out of time order at %d", i)
		}
	}
}

func TestSpansLifecycle(t *testing.T) {
	r := NewRegistry()
	sp := r.Scope("seg0").Spans("handoff")
	ms := func(x int) sim.Time { return sim.Time(x) * sim.Time(sim.Millisecond) }

	sp.Begin(7, ms(100), 2, 3)
	sp.MarkStart(7, ms(117))
	sp.MarkStart(7, ms(130)) // retransmit race: first mark wins
	sp.AddFlushed(7, 4)
	sp.End(7, ms(121))

	sp.Begin(8, ms(200), 3, 4)
	sp.Drop(8)
	sp.End(8, ms(250)) // ended after drop: ignored

	done := sp.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d, want 1", len(done))
	}
	rec := done[0]
	if rec.ID != 7 || rec.From != 2 || rec.To != 3 || rec.Flushed != 4 {
		t.Fatalf("bad record: %+v", rec)
	}
	if got := rec.TotalMs(); math.Abs(got-21) > 1e-9 {
		t.Fatalf("total = %gms, want 21", got)
	}
	if !rec.HasStart || rec.StartAt != ms(117) {
		t.Fatalf("start mark wrong: %+v", rec)
	}

	snap := r.Snapshot(ms(300))
	st, ok := snap.Span("handoff")
	if !ok {
		t.Fatal("span stat missing")
	}
	if st.Begun != 2 || st.Completed != 1 || st.Dropped != 1 || st.Active != 0 {
		t.Fatalf("stat = %+v", st)
	}
	if math.Abs(st.P50Ms-21) > 1e-9 || math.Abs(st.MeanMs-21) > 1e-9 {
		t.Fatalf("quantiles wrong: %+v", st)
	}
	if _, ok := snap.Histogram("seg0/handoff/total_ms"); !ok {
		t.Fatal("span histogram not exported")
	}
	if h, _ := snap.Histogram("seg0/handoff/stop_ms"); h.Count != 1 {
		t.Fatalf("stop phase histogram count = %d, want 1", h.Count)
	}
}

func TestSnapshotMergesShardsSorted(t *testing.T) {
	r := NewRegistry()
	s1 := r.NewShard("seg1")
	s0 := r.NewShard("seg0")
	s1.Counter("trunk/tx_bytes").Add(10)
	s0.Counter("trunk/tx_bytes").Add(5)
	r.Scope("server").Counter("loop/events").Add(3)
	snap := r.Snapshot(0)
	var names []string
	for _, c := range snap.Counters {
		names = append(names, c.Name)
	}
	want := []string{"seg0/trunk/tx_bytes", "seg1/trunk/tx_bytes", "server/loop/events"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("names = %v, want %v", names, want)
	}
	if got := snap.SumCounters("tx_bytes"); got != 15 {
		t.Fatalf("SumCounters = %d, want 15", got)
	}
	if v, ok := snap.Counter("seg0/trunk/tx_bytes"); !ok || v != 5 {
		t.Fatalf("Counter lookup = %d,%v", v, ok)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.Scope("seg0").GaugeFunc("ap0/queue_depth", func() float64 { calls++; return 42 })
	if calls != 0 {
		t.Fatal("gauge func ran at registration")
	}
	snap := r.Snapshot(0)
	if calls != 1 {
		t.Fatalf("gauge func calls = %d, want 1", calls)
	}
	if v, ok := snap.Gauge("seg0/ap0/queue_depth"); !ok || v != 42 {
		t.Fatalf("gauge = %g,%v", v, ok)
	}
}

// promLine matches one exposition sample: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

func checkProm(t *testing.T, out string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty prom output")
	}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			f := strings.Fields(ln)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line: %q", ln)
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("bad TYPE %q in %q", f[3], ln)
			}
			continue
		}
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !promLine.MatchString(ln) {
			t.Fatalf("invalid exposition line: %q", ln)
		}
	}
}

func TestExportFormats(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("seg0")
	sc.Counter("trunk/tx_bytes").Add(1234)
	sc.GaugeFunc("ap3/queue_depth", func() float64 { return 7 })
	h := sc.Histogram("rtt_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)
	sp := sc.Spans("handoff")
	sp.Begin(1, 0, 0, 1)
	sp.End(1, sim.Time(20*sim.Millisecond))
	depth := 3.0
	sc.Series("ap3/queue_depth_100ms", func() float64 { return depth })
	sc.Sample(sim.Time(SamplePeriod))
	snap := r.Snapshot(sim.Time(sim.Second))

	var prom strings.Builder
	if err := snap.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	checkProm(t, prom.String())
	for _, want := range []string{
		"wgtt_seg0_trunk_tx_bytes_total 1234",
		"wgtt_seg0_ap3_queue_depth 7",
		`wgtt_seg0_handoff_total_ms_bucket{le="+Inf"} 1`,
		"wgtt_seg0_handoff_completed_total 1",
		"wgtt_seg0_ap3_queue_depth_100ms_last 3",
		"wgtt_seg0_rtt_ms_count 2",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// Histogram buckets must be cumulative.
	if !strings.Contains(prom.String(), `wgtt_seg0_rtt_ms_bucket{le="10"} 1`) ||
		!strings.Contains(prom.String(), `wgtt_seg0_rtt_ms_bucket{le="+Inf"} 2`) {
		t.Errorf("prom histogram buckets not cumulative:\n%s", prom.String())
	}

	var js strings.Builder
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal([]byte(js.String()), &round); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if len(round.Counters) != len(snap.Counters) {
		t.Fatal("JSON round-trip lost counters")
	}

	var csv strings.Builder
	if err := snap.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "kind,name,field,value\n") {
		t.Fatal("CSV missing header")
	}
	if !strings.Contains(csv.String(), "counter,seg0/trunk/tx_bytes,value,1234") {
		t.Fatalf("CSV missing counter row:\n%s", csv.String())
	}

	var txt strings.Builder
	if err := snap.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "seg0/trunk/tx_bytes") {
		t.Fatal("text export missing counter")
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"": FormatText, "text": FormatText, "json": FormatJSON,
		"csv": FormatCSV, "prom": FormatProm, "PROM": FormatProm,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat accepted xml")
	}
}

func TestCollectorMergesCommutatively(t *testing.T) {
	mkSnap := func(bytes int64, latMs float64) *Snapshot {
		r := NewRegistry()
		sc := r.Scope("seg0")
		sc.Counter("trunk/tx_bytes").Add(bytes)
		sc.Counter("ctrl/switches_issued").Inc()
		sp := sc.Spans("handoff")
		sp.Begin(1, 0, 0, 1)
		sp.End(1, sim.Time(latMs*float64(sim.Millisecond)))
		return r.Snapshot(0)
	}
	a, b := mkSnap(100, 10), mkSnap(200, 30)

	c1 := NewCollector()
	c1.Record("case", a)
	c1.Record("case", b)
	c2 := NewCollector()
	c2.Record("case", b)
	c2.Record("case", a)
	if c1.Summary() != c2.Summary() {
		t.Fatalf("collector order-dependent:\n%s\nvs\n%s", c1.Summary(), c2.Summary())
	}
	s := c1.Summary()
	for _, want := range []string{"runs=2", "done=2", "trunk_tx_bytes=300", "issued=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	c1.Reset()
	if c1.Summary() != "" {
		t.Fatal("Reset did not clear cases")
	}
}

func TestMergeHistograms(t *testing.T) {
	r := NewRegistry()
	h0 := r.NewShard("seg0").Histogram("handoff/total_ms", []float64{10, 20})
	h1 := r.NewShard("seg1").Histogram("handoff/total_ms", []float64{10, 20})
	h0.Observe(5)
	h1.Observe(15)
	h1.Observe(15)
	snap := r.Snapshot(0)
	m, ok := snap.MergeHistograms("total_ms")
	if !ok || m.Count != 3 {
		t.Fatalf("merge = %+v, %v", m, ok)
	}
	if m.Buckets[0] != 1 || m.Buckets[1] != 2 {
		t.Fatalf("merged buckets = %v", m.Buckets)
	}
}
