package telemetry

import (
	"sort"

	"wgtt/internal/sim"
)

// HandoffBoundsMs are the default latency histogram bounds (ms) for
// handoff spans, chosen to resolve the paper's 17–21 ms switch band
// (Table 1) and its Fig. 9 CDF tail.
var HandoffBoundsMs = []float64{1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100, 150, 250, 500, 1000}

// SpanRecord is one completed stop/start/ack handoff.
type SpanRecord struct {
	ID       uint32   // switch transaction id
	From, To int      // AP indices (global); From is -1 for adoptions
	IssuedAt sim.Time // controller sent the Stop
	StartAt  sim.Time // old AP sent the Start (ioctl done)
	AckedAt  sim.Time // controller saw the SwitchAck
	HasStart bool     // StartAt observed (false if the Start raced a retransmit path)
	Flushed  int      // stale packets flushed from the new AP's queue head
	FwdBytes int64    // backlog bytes forwarded over the backhaul (remote handoff)
}

// TotalMs returns the stop→ack latency in milliseconds.
func (r SpanRecord) TotalMs() float64 {
	return float64(r.AckedAt.Sub(r.IssuedAt)) / float64(sim.Millisecond)
}

type activeSpan struct {
	rec SpanRecord
}

// Spans tracks in-flight handoff spans keyed by switch id and
// aggregates completed ones into phase-latency histograms. One Spans
// instance is shared by a segment's controller and its APs (the
// controller opens and closes spans; the stopped AP marks the start
// phase). All methods are nil-safe and O(1); the per-handoff cost when
// enabled is one map insert and one delete.
type Spans struct {
	name      string
	active    map[uint32]*activeSpan
	completed []SpanRecord
	begun     int64
	dropped   int64
	total     *Histogram // issue→ack, ms
	stop      *Histogram // issue→start (ioctl + stop delivery), ms
	ack       *Histogram // start→ack (queue head move + ack delivery), ms
}

// Spans registers (or finds) a span tracker. Three histograms named
// <name>/total_ms, <name>/stop_ms and <name>/ack_ms are registered with
// it and appear in snapshots alongside the tracker's SpanStat.
func (s Scope) Spans(name string) *Spans {
	if s.sh == nil {
		return nil
	}
	m := s.sh.lookup(s.join(name), kindSpans)
	if m.spans == nil {
		mk := func(suffix string) *Histogram {
			return &Histogram{
				name:   m.name + "/" + suffix,
				bounds: append([]float64(nil), HandoffBoundsMs...),
				counts: make([]int64, len(HandoffBoundsMs)+1),
			}
		}
		m.spans = &Spans{
			name:   m.name,
			active: make(map[uint32]*activeSpan),
			total:  mk("total_ms"),
			stop:   mk("stop_ms"),
			ack:    mk("ack_ms"),
		}
	}
	return m.spans
}

func (sp *Spans) histograms() []*Histogram {
	return []*Histogram{sp.total, sp.stop, sp.ack}
}

// Begin opens a span for switch id at the moment the Stop is issued.
func (sp *Spans) Begin(id uint32, now sim.Time, from, to int) {
	if sp == nil {
		return
	}
	sp.begun++
	sp.active[id] = &activeSpan{rec: SpanRecord{ID: id, From: from, To: to, IssuedAt: now}}
}

// MarkStart records the old AP sending its Start (radio ioctl done).
// Stop retransmissions can re-trigger it; the first mark wins.
func (sp *Spans) MarkStart(id uint32, now sim.Time) {
	if sp == nil {
		return
	}
	if a, ok := sp.active[id]; ok && !a.rec.HasStart {
		a.rec.StartAt = now
		a.rec.HasStart = true
	}
}

// AddFlushed accumulates stale packets flushed when the new AP moved
// its queue head.
func (sp *Spans) AddFlushed(id uint32, n int) {
	if sp == nil {
		return
	}
	if a, ok := sp.active[id]; ok {
		a.rec.Flushed += n
	}
}

// AddForwarded accumulates backlog bytes forwarded to the controller
// during a remote (cross-segment) handoff.
func (sp *Spans) AddForwarded(id uint32, bytes int64) {
	if sp == nil {
		return
	}
	if a, ok := sp.active[id]; ok {
		a.rec.FwdBytes += bytes
	}
}

// End closes the span at SwitchAck time and folds its phase latencies
// into the histograms.
func (sp *Spans) End(id uint32, now sim.Time) {
	if sp == nil {
		return
	}
	a, ok := sp.active[id]
	if !ok {
		return
	}
	delete(sp.active, id)
	a.rec.AckedAt = now
	sp.completed = append(sp.completed, a.rec)
	ms := func(d sim.Duration) float64 { return float64(d) / float64(sim.Millisecond) }
	sp.total.Observe(ms(now.Sub(a.rec.IssuedAt)))
	if a.rec.HasStart {
		sp.stop.Observe(ms(a.rec.StartAt.Sub(a.rec.IssuedAt)))
		sp.ack.Observe(ms(now.Sub(a.rec.StartAt)))
	}
}

// Drop abandons an in-flight span (stop retry exhaustion, or the client
// was exported to a neighbouring segment mid-switch).
func (sp *Spans) Drop(id uint32) {
	if sp == nil {
		return
	}
	if _, ok := sp.active[id]; ok {
		delete(sp.active, id)
		sp.dropped++
	}
}

// Completed returns the completed span records in completion order.
func (sp *Spans) Completed() []SpanRecord {
	if sp == nil {
		return nil
	}
	return append([]SpanRecord(nil), sp.completed...)
}

// SpanStat summarizes one Spans tracker in a Snapshot. Quantiles are
// exact (computed from the completed records, not bucket-interpolated).
type SpanStat struct {
	Name      string
	Begun     int64
	Completed int64
	Dropped   int64
	Active    int64
	MeanMs    float64
	P50Ms     float64
	P90Ms     float64
	P99Ms     float64
	MaxMs     float64
}

func (sp *Spans) stat() SpanStat {
	st := SpanStat{
		Name:      sp.name,
		Begun:     sp.begun,
		Completed: int64(len(sp.completed)),
		Dropped:   sp.dropped,
		Active:    int64(len(sp.active)),
	}
	if len(sp.completed) == 0 {
		return st
	}
	ms := make([]float64, len(sp.completed))
	var sum float64
	for i, r := range sp.completed {
		ms[i] = r.TotalMs()
		sum += ms[i]
	}
	sort.Float64s(ms)
	q := func(p float64) float64 {
		i := int(p * float64(len(ms)-1))
		return ms[i]
	}
	st.MeanMs = sum / float64(len(ms))
	st.P50Ms = q(0.50)
	st.P90Ms = q(0.90)
	st.P99Ms = q(0.99)
	st.MaxMs = ms[len(ms)-1]
	return st
}
