package telemetry

import (
	"strings"
	"testing"

	"wgtt/internal/sim"
)

// TestMergePermutationDeterminism pins the shard-merge contract the
// multi-process parity tests lean on: exporting each shard separately
// and merging the parts in ANY order yields byte-identical output — in
// every export format — to the whole-registry snapshot. Without this,
// a partitioned run's merged report would depend on process arrival
// order.
func TestMergePermutationDeterminism(t *testing.T) {
	r := NewRegistry()
	shardNames := []string{"", "seg0", "seg1", "seg2"} // "" = root shard
	for i, name := range shardNames {
		sc := r.Scope("server")
		if name != "" {
			sc = r.NewShard(name)
		}
		sc.Counter("pkts").Add(int64(100 + i))
		sc.Gauge("depth").Set(float64(i) * 1.5)
		h := sc.Histogram("lat_ms", []float64{1, 10, 100})
		for j := 0; j <= i; j++ {
			h.Observe(float64(j * 7))
		}
		se := sc.Series("load", func() float64 { return float64(i) })
		_ = se
		sc.Sample(sim.Time(100 * sim.Millisecond))
		sp := sc.Spans("handoff")
		sp.Begin(uint32(i+1), sim.Time(sim.Millisecond), 0, 1)
		sp.MarkStart(uint32(i+1), sim.Time(3*sim.Millisecond))
		sp.End(uint32(i+1), sim.Time(sim.Duration(5+i)*sim.Millisecond))
	}
	at := sim.Time(200 * sim.Millisecond)

	render := func(s *Snapshot) map[Format]string {
		out := map[Format]string{}
		for _, f := range []Format{FormatText, FormatJSON, FormatCSV, FormatProm} {
			var sb strings.Builder
			if err := s.Write(&sb, f); err != nil {
				t.Fatal(err)
			}
			out[f] = sb.String()
		}
		return out
	}
	ref := render(r.Snapshot(at))

	// One snapshot per shard, as a partitioned run would export them.
	parts := make([]*Snapshot, len(shardNames))
	for i, name := range shardNames {
		name := name
		parts[i] = r.SnapshotShards(at, func(shard string) bool { return shard == name })
	}

	var permute func(rest, picked []*Snapshot)
	checked := 0
	permute = func(rest, picked []*Snapshot) {
		if len(rest) == 0 {
			got := render(MergeSnapshots(picked...))
			for f, want := range ref {
				if got[f] != want {
					t.Fatalf("permutation %d: format %v diverges from whole-registry snapshot\n got: %q\nwant: %q",
						checked, f, got[f], want)
				}
			}
			checked++
			return
		}
		for i := range rest {
			next := append(append([]*Snapshot{}, rest[:i]...), rest[i+1:]...)
			permute(next, append(picked, rest[i]))
		}
	}
	permute(parts, nil)
	if want := 24; checked != want { // 4! orderings
		t.Fatalf("checked %d permutations, want %d", checked, want)
	}
}
