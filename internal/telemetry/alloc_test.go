package telemetry

import "testing"

// The hot-path contract: recording into a resolved handle — or into a
// nil handle when telemetry is disabled — performs zero heap
// allocations.

func TestRecordingDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("seg0")
	c := sc.Counter("mpdus")
	g := sc.Gauge("depth")
	h := sc.Histogram("lat", HandoffBoundsMs)
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4)
		h.Observe(17)
		nilC.Inc()
	}); n != 0 {
		t.Fatalf("hot-path recording allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Scope("seg0").Counter("mpdus")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter // what every handle is when telemetry is off
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Scope("seg0").Histogram("lat", HandoffBoundsMs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100))
	}
}
