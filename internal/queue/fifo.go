package queue

// FIFO is a bounded first-in-first-out buffer. It models the
// non-recallable queues in the transmit path — most importantly the NIC
// hardware queue, whose contents AP1 still drains onto the air after
// receiving stop(c) (the ~6 ms the paper accepts as minimal capacity
// loss) — and the backhaul interface queues.
//
// Internally the buffer is a slice plus a head cursor: Pop advances the
// cursor instead of re-slicing the backing array away, so a queue that
// drains as fast as it fills reuses one allocation forever instead of
// forcing append to grow a fresh array every few pushes.
type FIFO[T any] struct {
	items []T
	head  int
	cap   int
	drops int
}

// NewFIFO returns a FIFO holding at most capacity items. capacity <= 0
// means unbounded.
func NewFIFO[T any](capacity int) *FIFO[T] {
	return &FIFO[T]{cap: capacity}
}

// Push appends v. It reports false (and counts a tail drop) when full.
func (f *FIFO[T]) Push(v T) bool {
	if f.cap > 0 && f.Len() >= f.cap {
		f.drops++
		return false
	}
	f.items = append(f.items, v)
	return true
}

// Pop removes and returns the oldest item.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.head >= len(f.items) {
		return zero, false
	}
	v := f.items[f.head]
	f.items[f.head] = zero
	f.head++
	if f.head == len(f.items) {
		// Empty: rewind so append reuses the backing array from the top.
		f.items = f.items[:0]
		f.head = 0
	} else if f.head >= 1024 && f.head*2 >= len(f.items) {
		// A queue that never fully drains still must not let the dead
		// prefix grow without bound; compact once it dominates.
		n := copy(f.items, f.items[f.head:])
		for i := n; i < len(f.items); i++ {
			f.items[i] = zero
		}
		f.items = f.items[:n]
		f.head = 0
	}
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if f.head >= len(f.items) {
		return zero, false
	}
	return f.items[f.head], true
}

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.items) - f.head }

// Cap returns the capacity (0 = unbounded).
func (f *FIFO[T]) Cap() int { return f.cap }

// Drops returns the number of items rejected because the queue was full.
func (f *FIFO[T]) Drops() int { return f.drops }

// Filter removes every item for which keep returns false and returns how
// many were removed. Used by the driver-queue hook that filters out a
// stopped client's packets.
func (f *FIFO[T]) Filter(keep func(T) bool) int {
	out := f.items[:0]
	removed := 0
	for _, v := range f.items[f.head:] {
		if keep(v) {
			out = append(out, v)
		} else {
			removed++
		}
	}
	// Zero the tail so removed items don't pin memory.
	var zero T
	for i := len(out); i < len(f.items); i++ {
		f.items[i] = zero
	}
	f.items = out
	f.head = 0
	return removed
}

// Clear empties the queue.
func (f *FIFO[T]) Clear() {
	var zero T
	for i := range f.items {
		f.items[i] = zero
	}
	f.items = f.items[:0]
	f.head = 0
}
