// Package queue implements the AP-side packet buffers of Fig. 7: the
// per-client cyclic queue addressed by WGTT's 12-bit index numbers, and
// the small non-recallable hardware NIC FIFO whose drain the switching
// protocol tolerates (§3.1.2).
package queue

import (
	"wgtt/internal/packet"
)

// IndexDist returns the forward modular distance from index a to index b
// in the 12-bit index space, as a signed value in [−2048, 2047]. Positive
// means b is ahead of a.
func IndexDist(a, b uint16) int {
	d := int((b - a) & (packet.IndexMod - 1))
	if d >= packet.IndexMod/2 {
		d -= packet.IndexMod
	}
	return d
}

// Cyclic is one client's downlink buffer at one AP. The controller stamps
// every downlink packet with an index that increments mod 4096; every
// candidate AP inserts the packet at that index. Only the serving AP pops
// and transmits; when a switch start(c,k) arrives, the new AP simply moves
// its head to k — the backlogged packets are already in its buffer, which
// is what makes WGTT's handoff nearly instantaneous.
type Cyclic struct {
	slots [packet.IndexMod]*packet.Packet
	head  uint16 // next index to transmit
	tail  uint16 // one past the newest inserted index
	count int    // occupied slots
	empty bool   // true until first insert

	// Stats count buffer events over the queue's lifetime. Plain ints
	// kept inline (no telemetry handles) so the package stays leaf;
	// the AP layer reads deltas around protocol steps.
	Stats CyclicStats

	// free recycles slot cells: a buffer that cycles at steady state
	// (insert, pop, insert, ...) allocates a cell only up to its
	// high-water occupancy instead of once per insert.
	free []*packet.Packet
}

// put stores p in a recycled (or fresh) cell.
func (c *Cyclic) put(p packet.Packet) *packet.Packet {
	if n := len(c.free); n > 0 {
		cell := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		*cell = p
		return cell
	}
	cp := p
	return &cp
}

// release returns a vacated cell to the free list.
func (c *Cyclic) release(cell *packet.Packet) {
	c.free = append(c.free, cell)
}

// CyclicStats are lifetime event counts for one Cyclic buffer.
type CyclicStats struct {
	// Inserts counts accepted Insert calls (including overwrites).
	Inserts int
	// StaleDrops counts inserts discarded because the head had already
	// passed their index.
	StaleDrops int
	// Flushed counts buffered packets discarded by SetHead moving the
	// head forward — the packets a start(c,k) declares already served.
	Flushed int
}

// NewCyclic returns an empty buffer.
func NewCyclic() *Cyclic {
	return &Cyclic{empty: true}
}

// Insert stores p at its index, overwriting any stale occupant (the index
// space is sized so an overwrite can only hit a packet that left the
// window long ago). Inserts may arrive out of order across switches.
func (c *Cyclic) Insert(p packet.Packet) {
	idx := p.Index & (packet.IndexMod - 1)
	if !c.empty {
		if d := IndexDist(c.head, idx); d < 0 {
			if d > -recentPastWindow {
				// Stale: an index the head already passed (e.g.
				// delivered by the previous AP before a switch).
				// Buffering it again would resend old data, so
				// drop it.
				c.Stats.StaleDrops++
				return
			}
			// "Behind" only by modular ambiguity: this buffer went
			// stale (no fan-out reached it for over half the index
			// space) while the controller's cursor marched on and
			// wrapped. Everything buffered predates idx — flush and
			// restart here, or a frozen head silently drops the
			// live stream forever.
			c.Clear()
		}
	}
	if old := c.slots[idx]; old == nil {
		c.count++
	} else {
		c.release(old)
	}
	c.Stats.Inserts++
	c.slots[idx] = c.put(p)
	if c.empty {
		c.head, c.tail = idx, (idx+1)&(packet.IndexMod-1)
		c.empty = false
		return
	}
	if IndexDist(c.tail, idx) >= 0 {
		c.tail = (idx + 1) & (packet.IndexMod - 1)
	}
	// Bound occupancy to half the index space: a buffer that nobody pops
	// (an AP that never becomes the serving AP) must overwrite its
	// oldest entries, like the real driver ring, or modular comparisons
	// against a frozen head become ambiguous once indexes wrap.
	if IndexDist(c.head, c.tail) < 0 || IndexDist(c.head, c.tail) > maxOccupancy {
		c.SetHead((c.tail - maxOccupancy) & (packet.IndexMod - 1))
	}
}

// maxOccupancy is the largest head→tail span the buffer retains. A
// quarter of the index space keeps all live distances far from the
// modular comparison's ±half-space ambiguity boundary.
const maxOccupancy = packet.IndexMod / 4

// recentPastWindow bounds how far behind the head a SetHead target can be
// and still be read as "already served" rather than as a stale buffer
// meeting a far-future index. Retransmitted starts lag by at most a few
// aggregates (≤ the 64-frame BA window each).
const recentPastWindow = 256

// SetHead repositions the transmit cursor to index k, discarding every
// buffered packet strictly before k. This implements both the start(c,k)
// handoff and the implicit discard of packets another AP already
// delivered.
func (c *Cyclic) SetHead(k uint16) {
	k &= packet.IndexMod - 1
	if c.empty {
		c.head, c.tail = k, k
		return
	}
	if d := IndexDist(c.head, k); d < 0 {
		if d > -recentPastWindow {
			// Genuinely just past k (e.g. a retransmitted
			// start(c,k) after we began serving): moving the head
			// backward would resend delivered data.
			return
		}
		// k is "behind" only by modular ambiguity: this buffer went
		// stale (no fan-out reached it for over half the index
		// space) while the controller's index marched on. Its
		// entire content predates k — flush it.
		c.Clear()
		c.head, c.tail = k, k
		c.empty = false
		return
	}
	// Drop slots in [head, k).
	for c.head != k {
		if IndexDist(c.head, k) <= 0 {
			break
		}
		if cell := c.slots[c.head]; cell != nil {
			c.release(cell)
			c.slots[c.head] = nil
			c.count--
			c.Stats.Flushed++
		}
		c.head = (c.head + 1) & (packet.IndexMod - 1)
	}
	c.head = k
	if IndexDist(c.tail, k) > 0 {
		c.tail = k
	}
}

// Pop removes and returns the packet at the head cursor, advancing past
// any gaps (indexes the controller never sent to this AP). It returns
// false when no packet at or ahead of the head remains.
func (c *Cyclic) Pop() (packet.Packet, bool) {
	if c.count == 0 {
		return packet.Packet{}, false
	}
	for c.head != c.tail {
		if cell := c.slots[c.head]; cell != nil {
			p := *cell
			c.release(cell)
			c.slots[c.head] = nil
			c.count--
			c.head = (c.head + 1) & (packet.IndexMod - 1)
			return p, true
		}
		c.head = (c.head + 1) & (packet.IndexMod - 1)
	}
	return packet.Packet{}, false
}

// Peek returns the packet Pop would return, without removing it.
func (c *Cyclic) Peek() (packet.Packet, bool) {
	if c.count == 0 {
		return packet.Packet{}, false
	}
	h := c.head
	for h != c.tail {
		if p := c.slots[h]; p != nil {
			return *p, true
		}
		h = (h + 1) & (packet.IndexMod - 1)
	}
	return packet.Packet{}, false
}

// Head returns the index of the first unsent packet — the k that AP1
// reports in start(c,k) when it receives stop(c).
func (c *Cyclic) Head() uint16 { return c.head }

// Len returns the number of buffered packets at or ahead of the head.
func (c *Cyclic) Len() int { return c.count }

// Clear empties the buffer (client de-association).
func (c *Cyclic) Clear() {
	for i, cell := range c.slots {
		if cell != nil {
			c.release(cell)
		}
		c.slots[i] = nil
	}
	c.count = 0
	c.empty = true
	c.head, c.tail = 0, 0
}
