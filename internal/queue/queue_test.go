package queue

import (
	"testing"
	"testing/quick"

	"wgtt/internal/packet"
)

func pkt(idx uint16) packet.Packet {
	return packet.Packet{Index: idx, Seq: uint32(idx), Proto: packet.ProtoUDP, PayloadLen: 1400}
}

func TestIndexDist(t *testing.T) {
	cases := []struct {
		a, b uint16
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {1, 0, -1},
		{4095, 0, 1},  // wrap forward
		{0, 4095, -1}, // wrap backward
		{0, 2047, 2047},
		{0, 2048, -2048},
		{100, 4000, -196},
	}
	for _, c := range cases {
		if got := IndexDist(c.a, c.b); got != c.want {
			t.Errorf("IndexDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: IndexDist is antisymmetric except at the half-way point.
func TestIndexDistAntisymmetryProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		a &= packet.IndexMod - 1
		b &= packet.IndexMod - 1
		d1, d2 := IndexDist(a, b), IndexDist(b, a)
		if d1 == -packet.IndexMod/2 {
			return d2 == -packet.IndexMod/2
		}
		return d1 == -d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicInOrder(t *testing.T) {
	c := NewCyclic()
	for i := uint16(0); i < 10; i++ {
		c.Insert(pkt(i))
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := uint16(0); i < 10; i++ {
		p, ok := c.Pop()
		if !ok || p.Index != i {
			t.Fatalf("Pop %d = %v,%v", i, p.Index, ok)
		}
	}
	if _, ok := c.Pop(); ok {
		t.Error("Pop from empty succeeded")
	}
}

func TestCyclicHeadTracksFirstUnsent(t *testing.T) {
	c := NewCyclic()
	for i := uint16(100); i < 110; i++ {
		c.Insert(pkt(i))
	}
	if c.Head() != 100 {
		t.Errorf("Head = %d, want 100", c.Head())
	}
	c.Pop()
	c.Pop()
	if c.Head() != 102 {
		t.Errorf("Head after 2 pops = %d, want 102", c.Head())
	}
}

func TestCyclicSetHeadDiscardsPrefix(t *testing.T) {
	// The start(c,k) semantics: packets before k are discarded, the
	// first Pop returns exactly index k.
	c := NewCyclic()
	for i := uint16(0); i < 50; i++ {
		c.Insert(pkt(i))
	}
	c.SetHead(30)
	if c.Len() != 20 {
		t.Errorf("Len after SetHead = %d, want 20", c.Len())
	}
	p, ok := c.Pop()
	if !ok || p.Index != 30 {
		t.Errorf("first Pop after SetHead = %v,%v; want 30", p.Index, ok)
	}
}

func TestCyclicSetHeadForwardOfEverything(t *testing.T) {
	c := NewCyclic()
	for i := uint16(0); i < 5; i++ {
		c.Insert(pkt(i))
	}
	c.SetHead(100)
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	if _, ok := c.Pop(); ok {
		t.Error("Pop succeeded past all content")
	}
	// New inserts after the jump still work.
	c.Insert(pkt(100))
	p, ok := c.Pop()
	if !ok || p.Index != 100 {
		t.Errorf("Pop = %v,%v; want 100", p.Index, ok)
	}
}

func TestCyclicStaleInsertDropped(t *testing.T) {
	c := NewCyclic()
	for i := uint16(10); i < 20; i++ {
		c.Insert(pkt(i))
	}
	c.SetHead(15)
	c.Insert(pkt(12)) // behind head: must not resurrect
	p, ok := c.Pop()
	if !ok || p.Index != 15 {
		t.Errorf("Pop = %v, want 15 (stale insert resurrected?)", p.Index)
	}
}

func TestCyclicGapsAreSkipped(t *testing.T) {
	c := NewCyclic()
	c.Insert(pkt(5))
	c.Insert(pkt(9)) // gap 6,7,8 never arrives
	p, _ := c.Pop()
	if p.Index != 5 {
		t.Fatalf("first pop = %d", p.Index)
	}
	p, ok := c.Pop()
	if !ok || p.Index != 9 {
		t.Errorf("gap skip pop = %v,%v; want 9", p.Index, ok)
	}
}

func TestCyclicWrapAround(t *testing.T) {
	c := NewCyclic()
	// Straddle the 4095→0 wrap.
	for i := 0; i < 20; i++ {
		c.Insert(pkt(uint16((4090 + i) & (packet.IndexMod - 1))))
	}
	if c.Len() != 20 {
		t.Fatalf("Len = %d", c.Len())
	}
	want := uint16(4090)
	for i := 0; i < 20; i++ {
		p, ok := c.Pop()
		if !ok || p.Index != want {
			t.Fatalf("wrap pop %d = %v,%v; want %d", i, p.Index, ok, want)
		}
		want = (want + 1) & (packet.IndexMod - 1)
	}
	// SetHead across the wrap (fresh queue: index space restarts).
	c = NewCyclic()
	for i := 0; i < 20; i++ {
		c.Insert(pkt(uint16((4090 + i) & (packet.IndexMod - 1))))
	}
	c.SetHead(2) // discards 4090..4095,0,1
	p, ok := c.Pop()
	if !ok || p.Index != 2 {
		t.Errorf("wrap SetHead pop = %v,%v; want 2", p.Index, ok)
	}
}

func TestCyclicPeek(t *testing.T) {
	c := NewCyclic()
	if _, ok := c.Peek(); ok {
		t.Error("Peek on empty succeeded")
	}
	c.Insert(pkt(7))
	p, ok := c.Peek()
	if !ok || p.Index != 7 || c.Len() != 1 {
		t.Errorf("Peek = %v,%v len=%d", p.Index, ok, c.Len())
	}
}

func TestCyclicClear(t *testing.T) {
	c := NewCyclic()
	for i := uint16(0); i < 10; i++ {
		c.Insert(pkt(i))
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Pop(); ok {
		t.Error("Pop after Clear succeeded")
	}
	c.Insert(pkt(3000))
	if p, ok := c.Pop(); !ok || p.Index != 3000 {
		t.Error("reuse after Clear broken")
	}
}

func TestCyclicOverwriteSameIndex(t *testing.T) {
	c := NewCyclic()
	p1 := pkt(5)
	p1.Seq = 111
	p2 := pkt(5)
	p2.Seq = 222
	c.Insert(p1)
	c.Insert(p2)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (overwrite)", c.Len())
	}
	got, _ := c.Pop()
	if got.Seq != 222 {
		t.Errorf("Seq = %d, want newest 222", got.Seq)
	}
}

// Property: popping a cyclic queue always yields indexes in increasing
// modular order from the head, regardless of insert order.
func TestCyclicPopOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewCyclic()
		seen := map[uint16]bool{}
		for _, r := range raw {
			idx := r % 200 // confined range: no ambiguous wrap
			c.Insert(pkt(idx))
			seen[idx] = true
		}
		prev := -1
		for {
			p, ok := c.Pop()
			if !ok {
				break
			}
			if int(p.Index) <= prev {
				return false
			}
			if !seen[p.Index] {
				return false
			}
			prev = int(p.Index)
		}
		return c.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO[int](3)
	if !f.Push(1) || !f.Push(2) || !f.Push(3) {
		t.Fatal("pushes within capacity failed")
	}
	if f.Push(4) {
		t.Error("push beyond capacity succeeded")
	}
	if f.Drops() != 1 {
		t.Errorf("Drops = %d", f.Drops())
	}
	if v, ok := f.Peek(); !ok || v != 1 {
		t.Errorf("Peek = %v,%v", v, ok)
	}
	for want := 1; want <= 3; want++ {
		v, ok := f.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %v,%v; want %d", v, ok, want)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
	if _, ok := f.Peek(); ok {
		t.Error("Peek on empty succeeded")
	}
}

func TestFIFOUnbounded(t *testing.T) {
	f := NewFIFO[int](0)
	for i := 0; i < 10000; i++ {
		if !f.Push(i) {
			t.Fatal("unbounded push failed")
		}
	}
	if f.Len() != 10000 || f.Cap() != 0 {
		t.Errorf("Len=%d Cap=%d", f.Len(), f.Cap())
	}
}

func TestFIFOFilter(t *testing.T) {
	f := NewFIFO[int](0)
	for i := 0; i < 10; i++ {
		f.Push(i)
	}
	removed := f.Filter(func(v int) bool { return v%2 == 0 })
	if removed != 5 {
		t.Errorf("removed = %d", removed)
	}
	want := []int{0, 2, 4, 6, 8}
	for _, w := range want {
		v, ok := f.Pop()
		if !ok || v != w {
			t.Fatalf("after filter Pop = %v, want %d", v, w)
		}
	}
}

func TestFIFOClear(t *testing.T) {
	f := NewFIFO[string](0)
	f.Push("a")
	f.Push("b")
	f.Clear()
	if f.Len() != 0 {
		t.Error("Clear left items")
	}
	f.Push("c")
	if v, _ := f.Pop(); v != "c" {
		t.Error("reuse after Clear broken")
	}
}

// Property: FIFO preserves order and never exceeds capacity.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(vals []int8, capRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		q := NewFIFO[int8](capacity)
		var accepted []int8
		for _, v := range vals {
			if q.Len() > capacity {
				return false
			}
			if q.Push(v) {
				accepted = append(accepted, v)
			}
		}
		for _, want := range accepted {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicNeverPoppedKeepsNewest(t *testing.T) {
	// A non-serving AP inserts far more than the index space without
	// ever popping; the buffer must retain a recent suffix rather than
	// rejecting new inserts after wrap.
	c := NewCyclic()
	last := uint16(0)
	for i := 0; i < 3*packet.IndexMod; i++ {
		last = uint16(i & (packet.IndexMod - 1))
		c.Insert(pkt(last))
	}
	if c.Len() == 0 || c.Len() > packet.IndexMod/4+1 {
		t.Fatalf("Len = %d", c.Len())
	}
	// A switch handoff to a recent index must find the packet.
	c.SetHead(last)
	p, ok := c.Pop()
	if !ok || p.Index != last {
		t.Errorf("Pop after long run = %v,%v; want %d", p.Index, ok, last)
	}
}
