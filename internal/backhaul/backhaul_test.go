package backhaul

import (
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

const (
	nodeCtrl NodeID = iota
	nodeAP1
	nodeAP2
)

func TestDeliveryAndDecoding(t *testing.T) {
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	var got []packet.Message
	var from []NodeID
	net.AddNode(nodeCtrl, nil)
	net.AddNode(nodeAP1, func(f NodeID, m packet.Message) {
		got = append(got, m)
		from = append(from, f)
	})
	stop := &packet.Stop{Client: packet.ClientMAC(0), NewAP: packet.APMAC(1), NewAPID: 1, SwitchID: 42}
	net.Send(nodeCtrl, nodeAP1, stop)
	loop.Run(sim.Time(10 * sim.Millisecond))

	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if from[0] != nodeCtrl {
		t.Errorf("from = %d, want controller", from[0])
	}
	m, ok := got[0].(*packet.Stop)
	if !ok {
		t.Fatalf("decoded type %T", got[0])
	}
	if m.SwitchID != 42 || m.NewAPID != 1 {
		t.Errorf("fields lost in transit: %+v", m)
	}
}

func TestLatencyIsRealistic(t *testing.T) {
	// A control message should cross the LAN in well under a
	// millisecond but not instantly.
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	var at sim.Time
	net.AddNode(nodeCtrl, nil)
	net.AddNode(nodeAP1, func(NodeID, packet.Message) { at = loop.Now() })
	net.Send(nodeCtrl, nodeAP1, &packet.Stop{})
	loop.Run(sim.Time(10 * sim.Millisecond))
	if at == 0 {
		t.Fatal("never delivered")
	}
	if at < sim.Time(50*sim.Microsecond) || at > sim.Time(1*sim.Millisecond) {
		t.Errorf("one-way latency %v outside sane LAN range", at)
	}
}

func TestControlBypassesData(t *testing.T) {
	// Queue a large burst of data messages, then one control message:
	// the control message must arrive before (almost all of) the data.
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	net.AddNode(nodeCtrl, nil)
	var order []packet.MsgType
	net.AddNode(nodeAP1, func(_ NodeID, m packet.Message) {
		order = append(order, m.Type())
	})
	for i := 0; i < 100; i++ {
		net.Send(nodeCtrl, nodeAP1, &packet.DownlinkData{Inner: packet.Packet{PayloadLen: 1400}})
	}
	net.Send(nodeCtrl, nodeAP1, &packet.Stop{SwitchID: 1})
	loop.Run(sim.Time(100 * sim.Millisecond))

	pos := -1
	for i, ty := range order {
		if ty == packet.MsgStop {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("control message never arrived")
	}
	if pos > 2 {
		t.Errorf("control message arrived at position %d, want ≤2 (priority bypass)", pos)
	}
	if len(order) != 101 {
		t.Errorf("delivered %d, want 101", len(order))
	}
}

func TestSerializationDelayOrdersData(t *testing.T) {
	// Data messages from one node arrive in FIFO order, spaced by at
	// least their serialization time.
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	net.AddNode(nodeCtrl, nil)
	var times []sim.Time
	var seqs []uint32
	net.AddNode(nodeAP1, func(_ NodeID, m packet.Message) {
		times = append(times, loop.Now())
		seqs = append(seqs, m.(*packet.DownlinkData).Inner.Seq)
	})
	for i := 0; i < 10; i++ {
		net.Send(nodeCtrl, nodeAP1, &packet.DownlinkData{Inner: packet.Packet{Seq: uint32(i), PayloadLen: 1400}})
	}
	loop.Run(sim.Time(100 * sim.Millisecond))
	for i := range seqs {
		if seqs[i] != uint32(i) {
			t.Fatalf("out of order: %v", seqs)
		}
		if i > 0 && times[i] <= times[i-1] {
			t.Fatalf("no serialization spacing: %v", times)
		}
	}
}

func TestBroadcast(t *testing.T) {
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	count := map[NodeID]int{}
	for _, id := range []NodeID{nodeCtrl, nodeAP1, nodeAP2} {
		id := id
		net.AddNode(id, func(NodeID, packet.Message) { count[id]++ })
	}
	net.Broadcast(nodeCtrl, &packet.AssocState{State: packet.StateAssociated})
	loop.Run(sim.Time(10 * sim.Millisecond))
	if count[nodeCtrl] != 0 {
		t.Error("broadcast echoed to sender")
	}
	if count[nodeAP1] != 1 || count[nodeAP2] != 1 {
		t.Errorf("broadcast counts = %v", count)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	net.AddNode(nodeCtrl, nil)
	net.Send(nodeCtrl, NodeID(99), &packet.Stop{})
	loop.Run(sim.Time(10 * sim.Millisecond)) // must not panic
	sent, delivered, _ := net.Stats()
	if sent != 1 || delivered != 0 {
		t.Errorf("sent=%d delivered=%d", sent, delivered)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode did not panic")
		}
	}()
	net := New(sim.NewLoop(), DefaultConfig())
	net.AddNode(nodeCtrl, nil)
	net.AddNode(nodeCtrl, nil)
}

func TestStatsAndTypeCounts(t *testing.T) {
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	net.AddNode(nodeCtrl, nil)
	net.AddNode(nodeAP1, func(NodeID, packet.Message) {})
	net.Send(nodeCtrl, nodeAP1, &packet.Stop{})
	net.Send(nodeCtrl, nodeAP1, &packet.DownlinkData{})
	net.Send(nodeCtrl, nodeAP1, &packet.DownlinkData{})
	loop.Run(sim.Time(10 * sim.Millisecond))
	sent, delivered, bytes := net.Stats()
	if sent != 3 || delivered != 3 {
		t.Errorf("sent=%d delivered=%d", sent, delivered)
	}
	if bytes <= 0 {
		t.Error("no bytes accounted")
	}
	if net.SentByType(packet.MsgDownlinkData) != 2 || net.SentByType(packet.MsgStop) != 1 {
		t.Error("per-type counts wrong")
	}
}

func TestHandlerlessNodeAcceptsTraffic(t *testing.T) {
	loop := sim.NewLoop()
	net := New(loop, DefaultConfig())
	net.AddNode(nodeCtrl, nil)
	net.AddNode(nodeAP1, nil)
	net.Send(nodeCtrl, nodeAP1, &packet.Stop{})
	loop.Run(sim.Time(10 * sim.Millisecond)) // must not panic
	_, delivered, _ := net.Stats()
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}
