// Package backhaul models the wired Ethernet that interconnects the WGTT
// controller, the eight APs, and the wired server: a star topology through
// one switch, with per-node egress serialization, propagation delay, and —
// critical to the switching protocol's latency — a strict-priority control
// queue that lets stop/start/ack messages bypass queued data (§3.1.2).
//
// Messages cross the backhaul as encoded bytes: Send marshals, delivery
// decodes. Nothing richer than what would be on the real wire flows
// between nodes.
package backhaul

import (
	"fmt"

	"wgtt/internal/packet"
	"wgtt/internal/queue"
	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
)

// NodeID identifies an endpoint on the backhaul.
type NodeID int

// Handler receives a decoded message addressed to the node. Data-plane
// messages are decoded into a scratch buffer shared across deliveries
// (packet.DecodeBuf), so msg is only valid for the duration of the call:
// a handler that retains it must copy the value.
type Handler func(from NodeID, msg packet.Message)

// Config sets the backhaul's physical parameters.
type Config struct {
	// LinkMbps is each node's Ethernet line rate.
	LinkMbps float64
	// PropDelay is the one-way wire + switch latency.
	PropDelay sim.Duration
	// QueueFrames bounds each egress queue (0 = unbounded).
	QueueFrames int
}

// DefaultConfig models the testbed's switched gigabit LAN.
func DefaultConfig() Config {
	return Config{
		LinkMbps:    1000,
		PropDelay:   100 * sim.Microsecond,
		QueueFrames: 4096,
	}
}

// encapOverhead is the per-message wire overhead: Ethernet header + FCS +
// preamble + IFG (38) plus the IP/UDP encapsulation the implementation
// tunnels everything in (28).
const encapOverhead = 66

// frame is one queued backhaul transmission. Frames are pooled per Net:
// the marshal buffer and the two scheduling closures (end of egress
// serialization, end of propagation) are built once per pooled frame and
// reused, so a steady message stream costs no per-frame allocation.
type frame struct {
	from, to NodeID
	data     []byte
	// trace is the sender's causal trace id, captured at Send time and
	// restored around the destination handler. Frames queue per node and
	// the drain events chain off each other, so the loop's inherited
	// register alone would attribute a queued frame to whichever frame's
	// txDone scheduled it — the explicit copy keeps causality exact.
	trace uint64
	// src is the egress node, for chaining the next drain step.
	src *node
	// txDone fires when the frame finishes serializing onto the wire;
	// arrived fires one propagation delay later at the destination.
	txDone  func()
	arrived func()
}

type node struct {
	handler Handler
	control *queue.FIFO[*frame]
	data    *queue.FIFO[*frame]
	// draining reports whether an egress serialization event is
	// scheduled.
	draining bool
}

// Net is the backhaul network. All methods must be called from the
// simulation loop's goroutine.
type Net struct {
	loop  *sim.Loop
	cfg   Config
	nodes map[NodeID]*node

	// Stats.
	sent      int
	delivered int
	bytes     int64
	perType   map[packet.MsgType]int

	// Telemetry handles (nil-safe no-ops until SetTelemetry).
	metSent      *telemetry.Counter
	metDelivered *telemetry.Counter
	metBytes     *telemetry.Counter
	metControl   *telemetry.Counter

	// free is the frame pool; frames return here once handled.
	free []*frame
	// dec reuses message scratch across deliveries (see Handler).
	dec packet.DecodeBuf
}

// acquire returns a pooled (or fresh) frame with its step closures bound.
func (n *Net) acquire() *frame {
	if k := len(n.free); k > 0 {
		f := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return f
	}
	f := &frame{}
	f.txDone = func() {
		// deliver may release f (unknown destination), so snapshot the
		// egress chain fields first.
		from, src := f.from, f.src
		n.deliver(f)
		n.drain(from, src)
	}
	f.arrived = func() { n.handle(f) }
	return f
}

// release returns a handled frame (and its buffer) to the pool.
func (n *Net) release(f *frame) {
	f.src = nil
	f.data = f.data[:0]
	n.free = append(n.free, f)
}

// New returns an empty backhaul on the given loop.
func New(loop *sim.Loop, cfg Config) *Net {
	return &Net{
		loop:    loop,
		cfg:     cfg,
		nodes:   make(map[NodeID]*node),
		perType: make(map[packet.MsgType]int),
	}
}

// SetTelemetry installs the backhaul's counters under sc. A disabled
// scope leaves every handle nil (all increments are no-ops).
func (n *Net) SetTelemetry(sc telemetry.Scope) {
	if !sc.Enabled() {
		return
	}
	n.metSent = sc.Counter("msgs")
	n.metDelivered = sc.Counter("delivered")
	n.metBytes = sc.Counter("bytes")
	n.metControl = sc.Counter("control_msgs")
}

// AddNode attaches an endpoint. The handler runs on the sim loop when a
// message addressed to id is delivered.
func (n *Net) AddNode(id NodeID, h Handler) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("backhaul: duplicate node %d", id))
	}
	n.nodes[id] = &node{
		handler: h,
		control: queue.NewFIFO[*frame](n.cfg.QueueFrames),
		data:    queue.NewFIFO[*frame](n.cfg.QueueFrames),
	}
}

// Send transmits msg from one node to another. The message is serialized
// immediately; mutating msg afterwards does not affect delivery. Unknown
// destinations are silently dropped (a real switch floods then ages them
// out — nothing would answer).
func (n *Net) Send(from, to NodeID, msg packet.Message) {
	src, ok := n.nodes[from]
	if !ok {
		panic(fmt.Sprintf("backhaul: send from unknown node %d", from))
	}
	f := n.acquire()
	f.from, f.to, f.src = from, to, src
	f.trace = n.loop.Trace()
	f.data = msg.Marshal(f.data[:0])
	n.sent++
	n.metSent.Inc()
	n.perType[msg.Type()]++
	ok = false
	if msg.Control() {
		n.metControl.Inc()
		ok = src.control.Push(f)
	} else {
		ok = src.data.Push(f)
	}
	if !ok {
		n.release(f) // tail drop
	}
	if !src.draining {
		src.draining = true
		n.drain(from, src)
	}
}

// drain serializes the node's queued frames one at a time, control queue
// strictly first.
func (n *Net) drain(id NodeID, src *node) {
	f, ok := src.control.Pop()
	if !ok {
		f, ok = src.data.Pop()
	}
	if !ok {
		src.draining = false
		return
	}
	wire := len(f.data) + encapOverhead
	txTime := sim.Duration(float64(wire*8) / (n.cfg.LinkMbps * 1e6) * 1e9)
	n.loop.After(txTime, f.txDone)
}

// deliver hands the serialized frame to the destination after the
// propagation delay.
func (n *Net) deliver(f *frame) {
	if _, ok := n.nodes[f.to]; !ok {
		n.release(f)
		return
	}
	n.loop.After(n.cfg.PropDelay, f.arrived)
}

// handle decodes an arrived frame, runs the destination handler, and
// recycles the frame.
func (n *Net) handle(f *frame) {
	dst, ok := n.nodes[f.to]
	if !ok {
		n.release(f)
		return
	}
	msg, err := n.dec.Decode(f.data)
	if err != nil {
		// Corruption is impossible by construction; a decode
		// failure is a programming error worth crashing on.
		panic(fmt.Sprintf("backhaul: undecodable frame: %v", err))
	}
	n.delivered++
	n.metDelivered.Inc()
	n.bytes += int64(len(f.data) + encapOverhead)
	n.metBytes.Add(int64(len(f.data) + encapOverhead))
	prev := n.loop.SetTrace(f.trace)
	n.handlerFor(dst)(f.from, msg)
	n.loop.SetTrace(prev)
	n.release(f)
}

func (n *Net) handlerFor(dst *node) Handler {
	if dst.handler == nil {
		return func(NodeID, packet.Message) {}
	}
	return dst.handler
}

// Broadcast sends msg from one node to every other attached node.
func (n *Net) Broadcast(from NodeID, msg packet.Message) {
	for id := range n.nodes {
		if id != from {
			n.Send(from, id, msg)
		}
	}
}

// Stats reports totals since creation.
func (n *Net) Stats() (sent, delivered int, bytes int64) {
	return n.sent, n.delivered, n.bytes
}

// SentByType returns how many messages of type t entered the backhaul.
func (n *Net) SentByType(t packet.MsgType) int { return n.perType[t] }
