package workload

import (
	"math"

	"wgtt/internal/core"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// PageLoad models the Table 5 case study: loading the locally-cached eBay
// home page (2.1 MB) over TCP while driving past the array. The metric is
// the wall-clock (virtual) time from navigation to the last byte, or +Inf
// if the page never completes during the run.
type PageLoad struct {
	loop     *sim.Loop
	flow     *TCPDownlink
	started  sim.Time
	finished sim.Time
	done     bool
	segments uint32
	// OnDone, when set, fires once when the last byte arrives.
	OnDone func()
}

// PageBytes is the page weight (§5.4: 2.1 MB).
const PageBytes = 2_100_000

// NewPageLoad attaches a page fetch to client c.
func NewPageLoad(n *core.Network, c *core.Client) *PageLoad {
	w := &PageLoad{loop: n.Loop}
	w.segments = uint32(math.Ceil(float64(PageBytes) / float64(transport.MSS)))
	w.flow = &TCPDownlink{}
	received := 0
	ackPort := uint16(PortWebAcks + 100*c.ID)
	w.flow.Receiver = transport.NewTCPReceiver(c, c.SendUplink,
		c.IP, packet.ServerIP, PortWeb, ackPort)
	w.flow.Receiver.OnData = func(seq uint32, bytes int, now sim.Time) {
		received += bytes
		if !w.done && received >= PageBytes {
			w.done = true
			w.finished = now
			if w.OnDone != nil {
				w.OnDone()
			}
		}
	}
	c.Handle(PortWeb, w.flow.Receiver.Receive)
	w.flow.Sender = transport.NewTCPSender(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, ackPort, PortWeb, w.segments)
	n.ServerHandle(ackPort, w.flow.Sender.OnAck)
	return w
}

// Start begins the fetch.
func (w *PageLoad) Start() {
	w.started = w.loop.Now()
	w.flow.Sender.Start()
}

// Browser models a passenger browsing during the whole drive: it fetches
// the page, thinks, and fetches again, so that loads land in every part
// of the AP array — including the baseline's handover dead zones, which
// is what makes Table 5's Enhanced-802.11r column blow up at speed.
type Browser struct {
	loop  *sim.Loop
	n     netw
	c     cli
	think sim.Duration
	cur   *PageLoad
	curAt sim.Time
	// LoadTimesSeconds records one entry per completed fetch; a fetch
	// still unfinished when the run ends is recorded by Finish as +Inf.
	LoadTimesSeconds []float64
}

// netw and cli are the narrow constructor dependencies (avoiding an
// import cycle on core in the signature is not needed; aliases keep the
// Browser testable).
type (
	netw = *core.Network
	cli  = *core.Client
)

// NewBrowser creates a repeated-fetch browser with the given think time
// between loads.
func NewBrowser(n *core.Network, c *core.Client, think sim.Duration) *Browser {
	return &Browser{loop: n.Loop, n: n, c: c, think: think}
}

// Start begins the first fetch.
func (b *Browser) Start() { b.fetch() }

func (b *Browser) fetch() {
	w := NewPageLoad(b.n, b.c)
	b.cur = w
	b.curAt = b.loop.Now()
	w.OnDone = func() {
		b.LoadTimesSeconds = append(b.LoadTimesSeconds, w.LoadTimeSeconds())
		b.cur = nil
		b.loop.After(b.think, b.fetch)
	}
	w.Start()
}

// stuckAfter is how long an in-flight fetch must have been outstanding at
// the end of the run to count as "never loads" (the paper's ∞) rather
// than as merely truncated by the end of the drive.
const stuckAfter = 4 * sim.Second

// Finish closes the books at the end of the run: a final in-flight fetch
// is dropped if the drive simply ended, but counts as ∞ when it had
// clearly stalled out.
func (b *Browser) Finish() {
	if b.cur != nil && !b.cur.Done() {
		if b.loop.Now().Sub(b.curAt) >= stuckAfter {
			b.LoadTimesSeconds = append(b.LoadTimesSeconds, math.Inf(1))
		}
		b.cur = nil
	}
}

// MeanLoadSeconds returns the mean load time; no completions or any ∞
// entry makes the mean ∞.
func (b *Browser) MeanLoadSeconds() float64 {
	if len(b.LoadTimesSeconds) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, v := range b.LoadTimesSeconds {
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		sum += v
	}
	return sum / float64(len(b.LoadTimesSeconds))
}

// Done reports whether the page finished loading.
func (w *PageLoad) Done() bool { return w.done }

// LoadTimeSeconds returns the page load time in seconds, or +Inf if the
// load never completed (the paper's "∞" cells).
func (w *PageLoad) LoadTimeSeconds() float64 {
	if !w.done {
		return math.Inf(1)
	}
	return w.finished.Sub(w.started).Seconds()
}
