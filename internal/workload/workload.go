// Package workload implements the application traffic of the paper's
// evaluation: iperf-style bulk TCP/UDP flows (§5.2), HD video streaming
// with a playback buffer and rebuffer accounting (Table 4), two-way video
// conferencing with per-second frame-rate measurement (Fig. 24), and web
// page loads (Table 5).
package workload

import (
	"fmt"

	"wgtt/internal/core"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/transport"
)

// Port allocation for workload endpoints. Each client uses the same ports
// (they are demultiplexed per client).
const (
	PortUDPBulk   = 9001
	PortTCPBulk   = 9002
	PortTCPAcks   = 80
	PortVideo     = 9003
	PortVideoAcks = 81
	PortConfDown  = 9004
	PortConfUp    = 9005
	PortWeb       = 9006
	PortWebAcks   = 82
	PortUplink    = 9007
)

// UDPDownlink is a constant-rate downlink datagram flow to one client.
type UDPDownlink struct {
	Source *transport.UDPSource
	Sink   *transport.UDPSink
	Meter  *stats.Throughput
}

// NewUDPDownlink attaches a CBR UDP flow from the wired server to client
// c at rateMbps with 1400-byte payloads.
func NewUDPDownlink(n *core.Network, c *core.Client, rateMbps float64) *UDPDownlink {
	w := &UDPDownlink{
		Sink:  transport.NewUDPSink(c),
		Meter: stats.NewThroughput(100 * sim.Millisecond),
	}
	w.Sink.OnPacket = func(p packet.Packet, now sim.Time) {
		w.Meter.Add(now, p.WireLen())
	}
	c.Handle(PortUDPBulk, w.Sink.Receive)
	w.Source = transport.NewUDPSource(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, PortUDPBulk-1, PortUDPBulk, rateMbps, 1400)
	return w
}

// Start begins the flow.
func (w *UDPDownlink) Start() { w.Source.Start() }

// Mbps returns goodput up to the horizon.
func (w *UDPDownlink) Mbps(horizon sim.Time) float64 { return w.Meter.MeanMbps(horizon) }

// UDPUplink is a constant-rate uplink datagram flow from one client.
type UDPUplink struct {
	Source *transport.UDPSource
	Sink   *transport.UDPSink
	Meter  *stats.Throughput
}

// NewUDPUplink attaches a CBR UDP flow from client c to the wired server.
// Distinct dstPort per client keeps server-side demux separate.
func NewUDPUplink(n *core.Network, c *core.Client, dstPort uint16, rateMbps float64) *UDPUplink {
	w := &UDPUplink{
		Sink:  transport.NewUDPSink(n.Loop),
		Meter: stats.NewThroughput(100 * sim.Millisecond),
	}
	w.Sink.OnPacket = func(p packet.Packet, now sim.Time) {
		w.Meter.Add(now, p.WireLen())
	}
	n.ServerHandle(dstPort, w.Sink.Receive)
	// The source runs on the client's migration-safe scheduler: its
	// emission timer follows the client across segment domains, so the
	// flow keeps running (race-free) in parallel-domain deployments.
	w.Source = transport.NewUDPSource(c.Sched(), c.SendUplink,
		c.IP, packet.ServerIP, dstPort+1000, dstPort, rateMbps, 1400)
	return w
}

// Start begins the flow.
func (w *UDPUplink) Start() { w.Source.Start() }

// TCPDownlink is a bulk TCP flow from the server to one client.
type TCPDownlink struct {
	Sender   *transport.TCPSender
	Receiver *transport.TCPReceiver
	Meter    *stats.Throughput
}

// NewTCPDownlink attaches a bulk (or finite, if totalSegments > 0) TCP
// flow from the wired server to client c. Server-side ack ports are
// per-client: a server runs one socket per connection, and the demux at
// the wired host must keep the flows apart.
func NewTCPDownlink(n *core.Network, c *core.Client, totalSegments uint32) *TCPDownlink {
	ackPort := uint16(PortTCPAcks + 100*c.ID)
	w := &TCPDownlink{Meter: stats.NewThroughput(100 * sim.Millisecond)}
	w.Receiver = transport.NewTCPReceiver(c, c.SendUplink,
		c.IP, packet.ServerIP, PortTCPBulk, ackPort)
	w.Receiver.OnData = func(seq uint32, bytes int, now sim.Time) {
		w.Meter.Add(now, bytes)
	}
	c.Handle(PortTCPBulk, w.Receiver.Receive)
	w.Sender = transport.NewTCPSender(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, ackPort, PortTCPBulk, totalSegments)
	n.ServerHandle(ackPort, w.Sender.OnAck)
	// Sender-side loss recovery under the server scope: GaugeFuncs are
	// read at snapshot time only, so the hookup costs the hot path
	// nothing.
	if sc := n.TelemetryScope(fmt.Sprintf("server/tcp%d", c.ID)); sc.Enabled() {
		sc.GaugeFunc("retx", func() float64 { return float64(w.Sender.Retransmits) })
		sc.GaugeFunc("rto", func() float64 { return float64(w.Sender.Timeouts) })
	}
	return w
}

// Start begins the flow.
func (w *TCPDownlink) Start() { w.Sender.Start() }

// Mbps returns in-order goodput up to the horizon.
func (w *TCPDownlink) Mbps(horizon sim.Time) float64 { return w.Meter.MeanMbps(horizon) }
