package workload

import (
	"wgtt/internal/core"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/stats"
	"wgtt/internal/transport"
)

// Conference models the Fig. 24 case study: a two-party video call with
// one party in the moving car. Both directions carry real-time video
// frames over UDP; the metric is the downlink frames-per-second the
// mobile side renders, sampled every second (the paper reads fps off the
// app UI with scrot once per second).
type Conference struct {
	sched transport.Sched
	fps   float64

	// Frame reassembly: a frame is rendered when all its fragments
	// arrive.
	fragsPerFrame  int
	recvFrags      map[uint32]int
	renderedInBin  int
	binStart       sim.Time
	FPSSamples     stats.CDF
	framesSent     int
	framesRendered int

	down *transport.UDPSource
	up   *transport.UDPSource
}

// ConferenceConfig tunes the call.
type ConferenceConfig struct {
	// TargetFPS is the encoder frame rate: ≈30 for the Skype-like
	// high-resolution call, ≈60 for the Hangouts-like low-resolution
	// one.
	TargetFPS float64
	// BitrateMbps is the video bitrate each direction carries.
	BitrateMbps float64
}

// SkypeLike matches the paper's Skype measurements (high resolution,
// fewer frames delivered under loss).
func SkypeLike() ConferenceConfig { return ConferenceConfig{TargetFPS: 30, BitrateMbps: 1.5} }

// HangoutsLike matches Google Hangouts' behaviour of shrinking resolution
// to keep frame rate high.
func HangoutsLike() ConferenceConfig { return ConferenceConfig{TargetFPS: 60, BitrateMbps: 1.0} }

// NewConference attaches a bidirectional call between the server party
// and client c.
func NewConference(n *core.Network, c *core.Client, cfg ConferenceConfig) *Conference {
	// Frame reassembly and fps sampling run on the client's migration-
	// safe scheduler: both touch state fed by the client-side sink, so
	// in domain mode they must stay in whichever domain owns the client.
	conf := &Conference{
		sched:     c.Sched(),
		fps:       cfg.TargetFPS,
		recvFrags: make(map[uint32]int),
	}
	frameBytes := cfg.BitrateMbps * 1e6 / 8 / cfg.TargetFPS
	payload := 1200
	conf.fragsPerFrame = int(frameBytes/float64(payload)) + 1

	// Downlink video: server → client, fragment stream. Sequence
	// numbers map to (frame, fragment).
	sink := transport.NewUDPSink(c)
	sink.OnPacket = func(p packet.Packet, now sim.Time) { conf.onFragment(p, now) }
	c.Handle(PortConfDown, sink.Receive)
	conf.down = transport.NewUDPSource(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, PortConfDown-1, PortConfDown,
		cfg.BitrateMbps, payload)

	// Uplink video: client → server (its delivery matters for realism
	// of the contention, not for the fps metric). Per-client server
	// port keeps concurrent calls apart.
	upPort := uint16(PortConfUp + 100*c.ID)
	upSink := transport.NewUDPSink(n.Loop)
	n.ServerHandle(upPort, upSink.Receive)
	conf.up = transport.NewUDPSource(c.Sched(), c.SendUplink,
		c.IP, packet.ServerIP, upPort+1000, upPort,
		cfg.BitrateMbps, payload)
	return conf
}

// Start begins both directions and the per-second fps sampling.
func (c *Conference) Start() {
	c.down.Start()
	c.up.Start()
	c.binStart = c.sched.Now()
	c.sched.After(sim.Second, c.sample)
}

// onFragment reassembles frames from the fragment stream.
func (c *Conference) onFragment(p packet.Packet, now sim.Time) {
	frame := p.Seq / uint32(c.fragsPerFrame)
	c.recvFrags[frame]++
	if c.recvFrags[frame] == c.fragsPerFrame {
		delete(c.recvFrags, frame)
		c.renderedInBin++
		c.framesRendered++
	}
	// Old incomplete frames are abandoned (real-time video does not
	// wait): prune anything two frames behind the newest.
	for f := range c.recvFrags {
		if f+2 < frame {
			delete(c.recvFrags, f)
		}
	}
}

// sample closes a one-second bin and records its fps.
func (c *Conference) sample() {
	c.FPSSamples.Add(float64(c.renderedInBin))
	c.renderedInBin = 0
	c.sched.After(sim.Second, c.sample)
}

// FramesRendered returns the total complete frames delivered.
func (c *Conference) FramesRendered() int { return c.framesRendered }
