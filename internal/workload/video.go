package workload

import (
	"wgtt/internal/core"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// Video models the Table 4 case study: a locally-cached HD video (1280×720)
// streamed over TCP into a playback buffer with a fixed prebuffer, playing
// through VLC as the client drives past the AP array. The metric is the
// rebuffer ratio — the fraction of the transit spent stalled.
type Video struct {
	loop     *sim.Loop
	bitrate  float64 // bits per second of the encoded video
	prebuf   sim.Duration
	pacing   float64
	paceFrac float64 // fractional segment carry
	flow     *TCPDownlink
	buffered float64 // seconds of video in the buffer
	playing  bool
	started  bool

	lastTick     sim.Time
	stallTime    sim.Duration
	totalTime    sim.Duration
	rebuffers    int
	sessionStart sim.Time
	firstStart   sim.Time
	everPlayed   bool
}

// VideoConfig tunes the session.
type VideoConfig struct {
	BitrateMbps  float64      // encoded rate (720p HD ≈ 2.5 Mbit/s)
	Prebuffer    sim.Duration // §5.4: 1500 ms
	TickInterval sim.Duration
	// PacingFactor is how much faster than real time the server feeds
	// the stream (streaming servers pace; they do not dump the file).
	PacingFactor float64
}

// DefaultVideoConfig matches the paper's case study.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		BitrateMbps:  2.5,
		Prebuffer:    1500 * sim.Millisecond,
		TickInterval: 50 * sim.Millisecond,
		PacingFactor: 1.25,
	}
}

// NewVideo attaches a video streaming session to client c.
func NewVideo(n *core.Network, c *core.Client, cfg VideoConfig) *Video {
	v := &Video{
		loop:    n.Loop,
		bitrate: cfg.BitrateMbps * 1e6,
		prebuf:  cfg.Prebuffer,
		pacing:  cfg.PacingFactor,
	}
	// The server paces the stream a little faster than real time (as
	// streaming servers do); the client-side buffer turns bytes into
	// video time.
	ackPort := uint16(PortVideoAcks + 100*c.ID)
	v.flow = &TCPDownlink{Meter: nil}
	v.flow.Receiver = transport.NewTCPReceiver(c, c.SendUplink,
		c.IP, packet.ServerIP, PortVideo, ackPort)
	v.flow.Receiver.OnData = func(seq uint32, bytes int, now sim.Time) {
		v.buffered += float64(bytes*8) / v.bitrate
	}
	c.Handle(PortVideo, v.flow.Receiver.Receive)
	// Start with the prebuffer's worth of segments available, then
	// extend at the paced rate from each tick.
	if v.pacing <= 0 {
		v.pacing = 2
	}
	initial := uint32(cfg.Prebuffer.Seconds()*v.bitrate/8/transport.MSS) + 1
	v.flow.Sender = transport.NewTCPSender(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, ackPort, PortVideo, initial)
	n.ServerHandle(ackPort, v.flow.Sender.OnAck)

	tick := cfg.TickInterval
	if tick <= 0 {
		tick = 50 * sim.Millisecond
	}
	n.Loop.After(tick, func() { v.tick(tick) })
	return v
}

// Start begins streaming.
func (v *Video) Start() {
	v.started = true
	v.sessionStart = v.loop.Now()
	v.lastTick = v.loop.Now()
	v.flow.Sender.Start()
}

// tick advances playback: consume buffered seconds while playing, stall
// when the buffer empties, resume after the prebuffer refills.
func (v *Video) tick(interval sim.Duration) {
	now := v.loop.Now()
	if v.started {
		dt := now.Sub(v.lastTick)
		v.totalTime += dt
		// Paced server feed.
		segs := v.pacing*dt.Seconds()*v.bitrate/8/float64(transportMSS) + v.paceFrac
		whole := uint32(segs)
		v.paceFrac = segs - float64(whole)
		if whole > 0 {
			v.flow.Sender.Extend(whole)
		}
		if v.playing {
			v.buffered -= dt.Seconds()
			if v.buffered <= 0 {
				v.buffered = 0
				v.playing = false
				v.rebuffers++
			}
		} else {
			v.stallTime += dt
			if v.buffered >= v.prebuf.Seconds() {
				v.playing = true
				if !v.everPlayed {
					v.everPlayed = true
					v.firstStart = now
				}
			}
		}
	}
	v.lastTick = now
	v.loop.After(interval, func() { v.tick(interval) })
}

// transportMSS mirrors transport.MSS for pacing arithmetic.
const transportMSS = transport.MSS

// RebufferRatio is the fraction of the session spent not playing after
// the initial prebuffer (the paper's QoE metric).
func (v *Video) RebufferRatio() float64 {
	if v.totalTime == 0 {
		return 0
	}
	// A session that never reached playback stalled throughout.
	if !v.everPlayed {
		return 1
	}
	// The initial prebuffer period is not a rebuffer; subtract the time
	// before playback first started.
	initial := v.firstStart.Sub(v.sessionStart)
	stall := v.stallTime - initial
	if stall < 0 {
		stall = 0
	}
	denom := v.totalTime - initial
	if denom <= 0 {
		return 0
	}
	r := float64(stall) / float64(denom)
	if r < 0 {
		r = 0
	}
	return r
}

// Rebuffers returns how many times playback stalled after starting.
func (v *Video) Rebuffers() int { return v.rebuffers }

// BufferedSeconds returns the current playback buffer depth.
func (v *Video) BufferedSeconds() float64 { return v.buffered }
