package workload

import (
	"math"
	"testing"

	"wgtt/internal/core"
	"wgtt/internal/mobility"
	"wgtt/internal/sim"
)

func staticNet(t *testing.T) (*core.Network, *core.Client) {
	t.Helper()
	cfg := core.DefaultConfig(core.WGTT)
	cfg.NumAPs = 4
	n := core.MustNewNetwork(cfg)
	c := n.AddClient(mobility.Stationary{X: 7.5, Y: 0})
	return n, c
}

func TestUDPDownlinkDelivers(t *testing.T) {
	n, c := staticNet(t)
	w := NewUDPDownlink(n, c, 10)
	w.Start()
	n.Run(3 * sim.Second)
	if got := w.Mbps(n.Loop.Now()); got < 8 {
		t.Errorf("UDP goodput = %.2f, want ≥8 of 10 offered", got)
	}
	if w.Sink.LossRate() > 0.05 {
		t.Errorf("loss = %.3f", w.Sink.LossRate())
	}
}

func TestUDPUplinkDelivers(t *testing.T) {
	n, c := staticNet(t)
	w := NewUDPUplink(n, c, PortUplink, 5)
	w.Start()
	n.Run(3 * sim.Second)
	if w.Sink.Received < 1000 {
		t.Errorf("uplink delivered %d packets", w.Sink.Received)
	}
}

func TestTCPDownlinkBulk(t *testing.T) {
	n, c := staticNet(t)
	w := NewTCPDownlink(n, c, 0)
	w.Start()
	n.Run(3 * sim.Second)
	if got := w.Mbps(n.Loop.Now()); got < 10 {
		t.Errorf("TCP goodput = %.2f on a parked pristine link", got)
	}
}

func TestVideoSmoothOnGoodLink(t *testing.T) {
	n, c := staticNet(t)
	v := NewVideo(n, c, DefaultVideoConfig())
	v.Start()
	n.Run(8 * sim.Second)
	if r := v.RebufferRatio(); r > 0.01 {
		t.Errorf("rebuffer ratio = %.3f on a parked link, want 0", r)
	}
	if v.BufferedSeconds() <= 0 {
		t.Error("no video buffered")
	}
}

func TestVideoStallsWithoutNetwork(t *testing.T) {
	// A video over a dead path never plays: ratio 1.
	cfg := core.DefaultConfig(core.WGTT)
	cfg.NumAPs = 2
	n := core.MustNewNetwork(cfg)
	c := n.AddClient(mobility.Stationary{X: 500, Y: 0}) // far out of range
	v := NewVideo(n, c, DefaultVideoConfig())
	v.Start()
	n.Run(5 * sim.Second)
	if r := v.RebufferRatio(); r < 0.99 {
		t.Errorf("rebuffer ratio = %.3f with no connectivity, want 1", r)
	}
}

func TestConferenceFPSOnGoodLink(t *testing.T) {
	n, c := staticNet(t)
	conf := NewConference(n, c, SkypeLike())
	conf.Start()
	n.Run(8 * sim.Second)
	if conf.FPSSamples.N() < 5 {
		t.Fatalf("only %d fps samples", conf.FPSSamples.N())
	}
	med := conf.FPSSamples.Quantile(0.5)
	if med < 25 || med > 35 {
		t.Errorf("median fps = %v, want ≈30 on a parked link", med)
	}
}

func TestConferenceHangoutsHigherFPS(t *testing.T) {
	n, c := staticNet(t)
	h := NewConference(n, c, HangoutsLike())
	h.Start()
	n.Run(6 * sim.Second)
	if med := h.FPSSamples.Quantile(0.5); med < 50 {
		t.Errorf("Hangouts-like median fps = %v, want ≈60", med)
	}
}

func TestPageLoadCompletes(t *testing.T) {
	n, c := staticNet(t)
	w := NewPageLoad(n, c)
	w.Start()
	n.Run(20 * sim.Second)
	if !w.Done() {
		t.Fatal("2.1 MB page did not load in 20 s on a parked link")
	}
	lt := w.LoadTimeSeconds()
	if lt <= 0 || lt > 10 {
		t.Errorf("load time = %.2f s", lt)
	}
}

func TestPageLoadNeverFinishesIsInf(t *testing.T) {
	cfg := core.DefaultConfig(core.WGTT)
	cfg.NumAPs = 2
	n := core.MustNewNetwork(cfg)
	c := n.AddClient(mobility.Stationary{X: 500, Y: 0})
	w := NewPageLoad(n, c)
	w.Start()
	n.Run(3 * sim.Second)
	if !math.IsInf(w.LoadTimeSeconds(), 1) {
		t.Error("unfinished load should report +Inf")
	}
}
