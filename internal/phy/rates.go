// Package phy models the 802.11n physical layer of the TP-Link N750 APs:
// the single-stream MCS table, an ESNR-driven packet error model, airtime
// accounting for A-MPDU aggregates, and a Minstrel-style rate controller
// (the stock OpenWrt algorithm the paper runs unmodified).
package phy

import (
	"fmt"
	"math"

	"wgtt/internal/csi"
	"wgtt/internal/sim"
)

// Rate is one row of the 802.11n single-spatial-stream, 20 MHz, short-GI
// MCS table.
type Rate struct {
	MCS        int
	Mbps       float64
	Modulation csi.Modulation
	CodeRate   string
	// ThresholdDB is the ESNR at which a 1500-byte MPDU is delivered
	// with ≈90% probability; the PER waterfall is anchored here.
	ThresholdDB float64
}

// String implements fmt.Stringer.
func (r Rate) String() string {
	return fmt.Sprintf("MCS%d(%s %s, %.1f Mb/s)", r.MCS, r.Modulation, r.CodeRate, r.Mbps)
}

// Rates is the HT20 short-GI single-stream table. Thresholds follow the
// usual receiver-sensitivity ladder (≈3 dB per step, wider at the QAM-64
// steps), consistent with the ESNR validation in Halperin et al.
var Rates = []Rate{
	{0, 7.2, csi.BPSK, "1/2", 4},
	{1, 14.4, csi.QPSK, "1/2", 7},
	{2, 21.7, csi.QPSK, "3/4", 10},
	{3, 28.9, csi.QAM16, "1/2", 13},
	{4, 43.3, csi.QAM16, "3/4", 17},
	{5, 57.8, csi.QAM64, "2/3", 21.5},
	{6, 65.0, csi.QAM64, "3/4", 23},
	{7, 72.2, csi.QAM64, "5/6", 25},
}

// BasicRate is the robust rate used for beacons, management frames and
// block ACKs. Its effective threshold sits below MCS0 because such frames
// are short.
var BasicRate = Rates[0]

// NumRates is the size of the MCS table.
const NumRates = 8

// PER returns the probability that an MPDU of the given size fails at rate
// r under effective SNR esnrDB. The model is the standard waterfall used
// by link simulators: a post-coding residual bit error probability that
// falls one decade per 1.5 dB, anchored so that a 1500-byte MPDU at the
// rate's threshold sees ≈10% loss, compounded over the frame's bits.
// It is monotone in both ESNR and frame length.
func PER(r Rate, esnrDB float64, bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	delta := esnrDB - r.ThresholdDB
	// Residual post-coding BER: 10^(−5.05 − δ/1.5), capped at 0.5.
	pb := math.Pow(10, -5.05-delta/1.5)
	if pb > 0.5 {
		pb = 0.5
	}
	bits := float64(8 * bytes)
	// 1 − (1−pb)^bits, computed stably in log domain.
	return -math.Expm1(bits * math.Log1p(-pb))
}

// BestRateFor returns the highest rate whose threshold is at or below the
// given ESNR with margin marginDB, falling back to MCS0. This is the
// "ideal CSI-driven" selector used in ablations; the live system runs
// Minstrel.
func BestRateFor(esnrDB, marginDB float64) Rate {
	best := Rates[0]
	for _, r := range Rates {
		if esnrDB >= r.ThresholdDB+marginDB {
			best = r
		}
	}
	return best
}

// 802.11g/n 2.4 GHz MAC/PHY timing constants.
const (
	// SIFS separates a data frame from its (block) acknowledgement.
	SIFS = 10 * sim.Microsecond
	// Slot is the ERP short slot time.
	Slot = 9 * sim.Microsecond
	// DIFS is the idle period before contention backoff starts.
	DIFS = SIFS + 2*Slot
	// PLCPPreamble is the HT-mixed preamble + PLCP header airtime spent
	// before the first payload bit of any PPDU.
	PLCPPreamble = 36 * sim.Microsecond
	// BlockAckAirtime is the airtime of a compressed Block ACK frame
	// (32 bytes at a legacy rate) including its preamble.
	BlockAckAirtime = 32 * sim.Microsecond
	// CWMin is the minimum contention window (slots).
	CWMin = 16
	// CWMax is the maximum contention window (slots).
	CWMax = 1024
	// MPDUDelimiter is the per-subframe A-MPDU overhead: 4-byte
	// delimiter plus padding.
	MPDUDelimiter = 8
	// MACHeader is the 802.11 data header + FCS in bytes.
	MACHeader = 34
	// MaxAMPDUFrames caps the subframes in one aggregate (BA window).
	MaxAMPDUFrames = 64
	// MaxAMPDUAirtime caps one aggregate's duration (TXOP limit).
	MaxAMPDUAirtime = 4 * sim.Millisecond
)

// PayloadAirtime returns the on-air time of n payload bytes at rate r,
// excluding preamble.
func PayloadAirtime(r Rate, bytes int) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	ns := float64(bytes*8) / (r.Mbps * 1e6) * 1e9
	return sim.Duration(math.Ceil(ns))
}

// AMPDUAirtime returns the full PPDU airtime of an aggregate of mpdus
// subframes carrying payloadBytes each: preamble plus per-subframe
// (delimiter + MAC header + payload) at rate r.
func AMPDUAirtime(r Rate, mpdus, payloadBytes int) sim.Duration {
	if mpdus <= 0 {
		return 0
	}
	perMPDU := MPDUDelimiter + MACHeader + payloadBytes
	return PLCPPreamble + PayloadAirtime(r, mpdus*perMPDU)
}

// MaxMPDUsForAirtime returns how many subframes of payloadBytes fit inside
// the TXOP airtime cap at rate r, clamped to the BA window.
func MaxMPDUsForAirtime(r Rate, payloadBytes int) int {
	perMPDU := MPDUDelimiter + MACHeader + payloadBytes
	budget := MaxAMPDUAirtime - PLCPPreamble
	if budget <= 0 {
		return 1
	}
	per := PayloadAirtime(r, perMPDU)
	if per <= 0 {
		return MaxAMPDUFrames
	}
	n := int(budget / per)
	if n < 1 {
		n = 1
	}
	if n > MaxAMPDUFrames {
		n = MaxAMPDUFrames
	}
	return n
}

// ExchangeOverhead is the fixed per-exchange cost around an A-MPDU:
// DIFS + expected backoff + SIFS + Block ACK.
func ExchangeOverhead(backoffSlots int) sim.Duration {
	return DIFS + sim.Duration(backoffSlots)*Slot + SIFS + BlockAckAirtime
}
