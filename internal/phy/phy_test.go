package phy

import (
	"math"
	"testing"
	"testing/quick"

	"wgtt/internal/sim"
)

func TestRateTableShape(t *testing.T) {
	if len(Rates) != NumRates {
		t.Fatalf("table has %d rates, want %d", len(Rates), NumRates)
	}
	for i, r := range Rates {
		if r.MCS != i {
			t.Errorf("Rates[%d].MCS = %d", i, r.MCS)
		}
		if i > 0 {
			if r.Mbps <= Rates[i-1].Mbps {
				t.Errorf("rate not increasing at MCS%d", i)
			}
			if r.ThresholdDB <= Rates[i-1].ThresholdDB {
				t.Errorf("threshold not increasing at MCS%d", i)
			}
		}
	}
	if Rates[7].Mbps != 72.2 {
		t.Errorf("top rate = %v, want 72.2 (HT20 SGI MCS7)", Rates[7].Mbps)
	}
	if s := Rates[7].String(); s != "MCS7(64-QAM 5/6, 72.2 Mb/s)" {
		t.Errorf("String = %q", s)
	}
}

func TestPERAnchoredAtThreshold(t *testing.T) {
	// At the threshold a 1500-byte MPDU loses ≈10%.
	for _, r := range Rates {
		per := PER(r, r.ThresholdDB, 1500)
		if per < 0.03 || per > 0.25 {
			t.Errorf("MCS%d PER at threshold = %v, want ≈0.1", r.MCS, per)
		}
	}
}

func TestPERWaterfall(t *testing.T) {
	r := Rates[4]
	// Well above threshold: negligible loss.
	if per := PER(r, r.ThresholdDB+8, 1500); per > 0.01 {
		t.Errorf("PER at +8 dB = %v, want <1%%", per)
	}
	// Well below: near-certain loss.
	if per := PER(r, r.ThresholdDB-5, 1500); per < 0.99 {
		t.Errorf("PER at -5 dB = %v, want ≈1", per)
	}
	// Monotone in ESNR.
	prev := 1.1
	for db := -10.0; db <= 40; db += 0.5 {
		per := PER(r, db, 1500)
		if per > prev+1e-12 {
			t.Fatalf("PER increased with ESNR at %v dB", db)
		}
		prev = per
	}
	// Monotone in length: longer frames fail more.
	if PER(r, r.ThresholdDB+2, 300) >= PER(r, r.ThresholdDB+2, 3000) {
		t.Error("PER not increasing with frame length")
	}
	// Degenerate inputs.
	if PER(r, 20, 0) != 0 {
		t.Error("zero-length PER should be 0")
	}
	if p := PER(r, -40, 1500); p < 0.999 || math.IsNaN(p) {
		t.Errorf("deep-fade PER = %v", p)
	}
}

// Property: PER is always a probability.
func TestPERRangeProperty(t *testing.T) {
	f := func(mcs uint8, esnrRaw int16, lenRaw uint16) bool {
		r := Rates[int(mcs)%NumRates]
		esnr := float64(esnrRaw%60) - 10
		n := int(lenRaw % 4000)
		p := PER(r, esnr, n)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestRateFor(t *testing.T) {
	if r := BestRateFor(30, 0); r.MCS != 7 {
		t.Errorf("BestRateFor(30) = MCS%d, want 7", r.MCS)
	}
	if r := BestRateFor(-10, 0); r.MCS != 0 {
		t.Errorf("BestRateFor(-10) = MCS%d, want 0 fallback", r.MCS)
	}
	if r := BestRateFor(18, 0); r.MCS != 4 {
		t.Errorf("BestRateFor(18) = MCS%d, want 4", r.MCS)
	}
	// Margin pushes selection down.
	if r := BestRateFor(18, 3); r.MCS != 3 {
		t.Errorf("BestRateFor(18, margin 3) = MCS%d, want 3", r.MCS)
	}
}

func TestAirtimeAccounting(t *testing.T) {
	r := Rates[7] // 72.2 Mb/s
	// 1500 bytes at 72.2 Mb/s = 166.2 µs of payload airtime.
	at := PayloadAirtime(r, 1500)
	want := 166.2
	if got := float64(at) / 1e3; math.Abs(got-want) > 1 {
		t.Errorf("payload airtime = %v µs, want ≈%v", got, want)
	}
	if PayloadAirtime(r, 0) != 0 {
		t.Error("zero bytes should take zero airtime")
	}
	// Aggregation amortizes the preamble: 32 MPDUs in one PPDU must be
	// far cheaper than 32 singleton PPDUs.
	agg := AMPDUAirtime(r, 32, 1500)
	var singles sim.Duration
	for i := 0; i < 32; i++ {
		singles += AMPDUAirtime(r, 1, 1500) + ExchangeOverhead(8)
	}
	if float64(agg) > 0.8*float64(singles) {
		t.Errorf("aggregation saves too little: %v vs %v", agg, singles)
	}
	if AMPDUAirtime(r, 0, 1500) != 0 {
		t.Error("empty aggregate should take zero airtime")
	}
}

func TestMaxMPDUsForAirtime(t *testing.T) {
	// At the top rate the 4 ms TXOP fits more frames than at MCS0, and
	// the result is always within [1, MaxAMPDUFrames].
	hi := MaxMPDUsForAirtime(Rates[7], 1500)
	lo := MaxMPDUsForAirtime(Rates[0], 1500)
	if hi <= lo {
		t.Errorf("top rate fits %d MPDUs, MCS0 fits %d; want more at top rate", hi, lo)
	}
	if lo < 1 || hi > MaxAMPDUFrames {
		t.Errorf("results out of range: lo=%d hi=%d", lo, hi)
	}
	// At 72.2 Mb/s a 1542-byte subframe is ≈171 µs, so ≈23 fit in 4 ms.
	if hi < 15 || hi > 30 {
		t.Errorf("top-rate MPDU count = %d, want ≈23", hi)
	}
	// Tiny payloads hit the 64-frame BA window cap.
	if n := MaxMPDUsForAirtime(Rates[7], 40); n != MaxAMPDUFrames {
		t.Errorf("small-payload count = %d, want cap %d", n, MaxAMPDUFrames)
	}
}

func TestMinstrelConvergesToSustainableRate(t *testing.T) {
	// Feed feedback as if the channel supports MCS4 (43.3 Mb/s) well but
	// MCS5+ fails 70% of the time; minstrel must settle on MCS4.
	rng := sim.NewRNG(21)
	m := NewMinstrel(rng)
	now := sim.Time(0)
	for i := 0; i < 3000; i++ {
		now = now.Add(2 * sim.Millisecond)
		r := m.Select(now)
		acked := 0
		attempted := 20
		if r.MCS <= 4 {
			acked = 19
		} else {
			acked = 6
		}
		m.Feedback(now, r, attempted, acked)
	}
	// Count selections over a further window.
	picks := map[int]int{}
	for i := 0; i < 300; i++ {
		now = now.Add(2 * sim.Millisecond)
		r := m.Select(now)
		picks[r.MCS]++
		acked := 19
		if r.MCS > 4 {
			acked = 6
		}
		m.Feedback(now, r, 20, acked)
	}
	if picks[4] < 200 {
		t.Errorf("minstrel picked MCS4 only %d/300 times: %v", picks[4], picks)
	}
}

func TestMinstrelRecoversAfterFade(t *testing.T) {
	rng := sim.NewRNG(22)
	m := NewMinstrel(rng)
	now := sim.Time(0)
	run := func(goodUpTo int, iters int) {
		for i := 0; i < iters; i++ {
			now = now.Add(2 * sim.Millisecond)
			r := m.Select(now)
			acked := 1
			if r.MCS <= goodUpTo {
				acked = 20
			}
			m.Feedback(now, r, 20, acked)
		}
	}
	run(7, 2000) // pristine channel: learns MCS7
	run(2, 2000) // deep fade: must fall to MCS2
	picks := map[int]int{}
	for i := 0; i < 200; i++ {
		now = now.Add(2 * sim.Millisecond)
		r := m.Select(now)
		picks[r.MCS]++
		acked := 1
		if r.MCS <= 2 {
			acked = 20
		}
		m.Feedback(now, r, 20, acked)
	}
	if picks[2] < 120 {
		t.Errorf("after fade minstrel picked MCS2 only %d/200: %v", picks[2], picks)
	}
	run(7, 3000) // channel recovers: must climb again
	picks = map[int]int{}
	for i := 0; i < 200; i++ {
		now = now.Add(2 * sim.Millisecond)
		r := m.Select(now)
		picks[r.MCS]++
		m.Feedback(now, r, 20, 20)
	}
	best := 0
	for mcs, n := range picks {
		if n > picks[best] {
			best = mcs
		}
	}
	if best < 6 {
		t.Errorf("after recovery minstrel mostly picks MCS%d: %v", best, picks)
	}
}

func TestMinstrelProbesOccasionally(t *testing.T) {
	m := NewMinstrel(sim.NewRNG(23))
	now := sim.Time(0)
	// Converge on MCS4.
	for i := 0; i < 2000; i++ {
		now = now.Add(sim.Millisecond)
		r := m.Select(now)
		acked := 19
		if r.MCS > 4 {
			acked = 2
		}
		m.Feedback(now, r, 20, acked)
	}
	other := 0
	for i := 0; i < 320; i++ {
		now = now.Add(sim.Millisecond)
		if m.Select(now).MCS != 4 {
			other++
		}
	}
	if other == 0 {
		t.Error("minstrel never probes away from the best rate")
	}
	if other > 80 {
		t.Errorf("minstrel probes too often: %d/320", other)
	}
}

func TestMinstrelIgnoresEmptyFeedback(t *testing.T) {
	m := NewMinstrel(sim.NewRNG(24))
	before := m.Prob(3)
	m.Feedback(sim.Time(0), Rates[3], 0, 0)
	if m.Prob(3) != before {
		t.Error("zero-attempt feedback mutated stats")
	}
}

func TestFixedRate(t *testing.T) {
	f := FixedRate{Rate: Rates[2]}
	if f.Select(0).MCS != 2 {
		t.Error("FixedRate did not return pinned rate")
	}
	f.Feedback(0, Rates[2], 10, 0) // must not panic or adapt
	if f.Select(0).MCS != 2 {
		t.Error("FixedRate adapted")
	}
}
