package phy

import (
	"wgtt/internal/sim"
)

// Minstrel is a compact model of the mac80211 minstrel_ht rate controller
// the testbed APs run unmodified (§4): it tracks an EWMA of per-rate MPDU
// delivery probability from block-ACK feedback, transmits at the rate with
// the best expected throughput, and periodically spends a small fraction
// of frames sampling other rates so it can climb back up after fades.
type Minstrel struct {
	tbl   *Table
	stats [NumRates]rateStats
	// sampleCounter spaces probe transmissions.
	sampleCounter int
	sampleIdx     int
	lastDecay     sim.Time
	rng           *sim.RNG
}

type rateStats struct {
	ewmaProb float64 // EWMA of delivery probability
	attempts int     // since last decay interval
	success  int
	ever     bool
}

// Minstrel tuning; values mirror the mac80211 defaults where they exist.
const (
	minstrelEWMAWeight    = 0.75                 // weight of history on update
	minstrelInterval      = 50 * sim.Millisecond // stats update cadence
	minstrelSampleSpacing = 16                   // one probe per N aggregates
	minstrelOptimismProb  = 0.5                  // initial prob for untried rates
)

// NewMinstrel returns a controller with graded priors: robust rates start
// near-certain, fast rates skeptical. minstrel_ht similarly begins its
// sampling from the bottom of the table, so a cold link starts at a
// mid-table rate instead of blindly blasting MCS7 — essential when an AP
// adopts a client mid-drive with no history.
func NewMinstrel(rng *sim.RNG) *Minstrel {
	return NewMinstrelFor(DefaultTable, rng)
}

// NewMinstrelFor is NewMinstrel over an explicit rate table (nil means
// the default); channel backends with their own MCS ladder pass theirs.
func NewMinstrelFor(tbl *Table, rng *sim.RNG) *Minstrel {
	m := &Minstrel{tbl: tbl.OrDefault(), rng: rng}
	for i := range m.stats {
		m.stats[i].ewmaProb = 1.0 - 0.11*float64(i)
	}
	return m
}

// Select returns the rate for the next aggregate. Every
// minstrelSampleSpacing-th call probes a neighbouring rate instead of the
// current best, exactly once, so sampling costs stay bounded.
func (m *Minstrel) Select(now sim.Time) Rate {
	m.maybeDecay(now)
	best := m.bestIdx()
	m.sampleCounter++
	if m.sampleCounter >= minstrelSampleSpacing {
		m.sampleCounter = 0
		// Alternate probes above and below the current best.
		probe := best + 1
		if m.sampleIdx%2 == 1 {
			probe = best - 1
		}
		m.sampleIdx++
		if probe >= 0 && probe < NumRates {
			return m.tbl.Rates[probe]
		}
	}
	return m.tbl.Rates[best]
}

// bestIdx returns the index of the rate with maximal expected throughput,
// breaking ties toward the lower (more robust) rate.
func (m *Minstrel) bestIdx() int {
	best, bestTput := 0, -1.0
	for i, s := range m.stats {
		tput := m.tbl.Rates[i].Mbps * s.ewmaProb
		// Rates whose success probability collapsed are useless even
		// if nominally fast.
		if s.ewmaProb < 0.1 {
			tput = m.tbl.Rates[i].Mbps * s.ewmaProb * s.ewmaProb
		}
		if tput > bestTput {
			best, bestTput = i, tput
		}
	}
	return best
}

// Feedback reports block-ACK results for an aggregate sent at rate r:
// attempted subframes and how many were acknowledged.
func (m *Minstrel) Feedback(now sim.Time, r Rate, attempted, acked int) {
	if attempted <= 0 {
		return
	}
	s := &m.stats[r.MCS]
	s.attempts += attempted
	s.success += acked
	s.ever = true
	// React immediately to unambiguous outcomes instead of waiting for
	// the periodic fold: a fully-failed aggregate halves the rate's
	// estimate at once (minstrel_ht's retry chain reacts within one
	// frame; this is our equivalent), and a clean sweep pulls it up.
	if acked == 0 {
		s.ewmaProb *= 0.5
		if s.ewmaProb < 0.01 {
			s.ewmaProb = 0.01
		}
	} else if acked == attempted && attempted >= 4 {
		s.ewmaProb = minstrelEWMAWeight*s.ewmaProb + (1 - minstrelEWMAWeight)
	}
	m.maybeDecay(now)
}

// maybeDecay folds accumulated counters into the EWMA once per interval.
func (m *Minstrel) maybeDecay(now sim.Time) {
	if now.Sub(m.lastDecay) < minstrelInterval {
		return
	}
	m.lastDecay = now
	for i := range m.stats {
		s := &m.stats[i]
		if s.attempts == 0 {
			continue
		}
		p := float64(s.success) / float64(s.attempts)
		s.ewmaProb = minstrelEWMAWeight*s.ewmaProb + (1-minstrelEWMAWeight)*p
		s.attempts, s.success = 0, 0
	}
}

// Prob returns the controller's current delivery estimate for an MCS,
// exposed for tests and stats.
func (m *Minstrel) Prob(mcs int) float64 { return m.stats[mcs].ewmaProb }

// Seed initializes the per-rate delivery estimates from a channel
// measurement: each rate's probability becomes the PER-model prediction
// for a 1500-byte MPDU at the given effective SNR. This is the
// CSI-informed rate adaptation the paper leaves as future work (§8) — a
// WGTT AP adopting a client mid-drive knows the client's ESNR from the
// CSI path and need not rediscover the rate floor frame by frame.
func (m *Minstrel) Seed(esnrDB float64) {
	for i := range m.stats {
		p := 1 - PER(m.tbl.Rates[i], esnrDB, 1500)
		if p < 0.01 {
			p = 0.01
		}
		m.stats[i].ewmaProb = p
	}
}

// FixedRate is a trivial controller pinned to one MCS, used by unit tests
// and by the baseline's management exchanges.
type FixedRate struct{ Rate Rate }

// Select implements the controller interface.
func (f FixedRate) Select(sim.Time) Rate { return f.Rate }

// Feedback implements the controller interface (no adaptation).
func (f FixedRate) Feedback(sim.Time, Rate, int, int) {}

// Controller selects transmit rates and learns from block-ACK feedback.
type Controller interface {
	Select(now sim.Time) Rate
	Feedback(now sim.Time, r Rate, attempted, acked int)
}

var (
	_ Controller = (*Minstrel)(nil)
	_ Controller = FixedRate{}
)
