package phy

// Table is one PHY's rate set: exactly NumRates MCS rows (index == MCS)
// plus the robust basic rate used for beacons, management frames, and
// block ACKs. The default table is the 802.11n HT20 short-GI ladder the
// testbed APs run; channel backends may substitute their own (the
// mmWave/60 GHz backend ships an 802.11ad-like single-carrier ladder).
// Every consumer of the table — Minstrel, the per-MCS stat arrays, the
// PER model — indexes rows by MCS, which is why the row count is fixed.
type Table struct {
	// Name identifies the table in logs and snapshots.
	Name string
	// Rates is the MCS ladder, ascending; len(Rates) == NumRates and
	// Rates[i].MCS == i always hold (Valid checks).
	Rates []Rate
	// Basic is the robust rate for control/management frames.
	Basic Rate
}

// DefaultTable is the stock HT20 short-GI single-stream table; a nil
// *Table anywhere in a config means this one.
var DefaultTable = &Table{Name: "ht20-sgi", Rates: Rates, Basic: BasicRate}

// OrDefault resolves a possibly-nil table to the default.
func (t *Table) OrDefault() *Table {
	if t == nil {
		return DefaultTable
	}
	return t
}

// Valid reports whether the table satisfies the fixed-shape contract the
// per-MCS consumers rely on.
func (t *Table) Valid() bool {
	if t == nil || len(t.Rates) != NumRates {
		return false
	}
	for i, r := range t.Rates {
		if r.MCS != i || r.Mbps <= 0 {
			return false
		}
	}
	return t.Basic.Mbps > 0
}

// BestRateFor returns the highest rate of the table whose threshold is at
// or below the given ESNR with margin marginDB, falling back to the
// lowest MCS.
func (t *Table) BestRateFor(esnrDB, marginDB float64) Rate {
	best := t.Rates[0]
	for _, r := range t.Rates {
		if esnrDB >= r.ThresholdDB+marginDB {
			best = r
		}
	}
	return best
}
