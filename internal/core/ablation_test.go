package core

import (
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// drive runs a standard 15 mph UDP drive-by and returns the network and
// sink for inspection.
func drive(t *testing.T, mutate func(*Config)) (*Network, *transport.UDPSink) {
	t.Helper()
	cfg := DefaultConfig(WGTT)
	if mutate != nil {
		mutate(&cfg)
	}
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(-5, 0, 15))
	src, sink := udpDownlink(n, c, 20)
	n.Loop.After(100*sim.Millisecond, src.Start)
	n.Run(9500 * sim.Millisecond)
	return n, sink
}

func TestDedupOffDeliversDuplicatesToServer(t *testing.T) {
	// With de-duplication disabled, uplink diversity turns into
	// duplicate packets at the wired side (the §3.2.3 motivation).
	run := func(dedup bool) (received, sent int) {
		cfg := DefaultConfig(WGTT)
		cfg.Controller.Dedup = dedup
		n := MustNewNetwork(cfg)
		c := n.AddClient(mobility.Drive(-5, 0, 15))
		sink := transport.NewUDPSink(n.Loop)
		n.ServerHandle(7001, func(p packet.Packet) { sink.Receive(p) })
		src := transport.NewUDPSource(n.Loop, c.SendUplink, c.IP, packet.ServerIP, 7000, 7001, 5, 1400)
		n.Loop.After(100*sim.Millisecond, src.Start)
		n.Run(9 * sim.Second)
		return sink.Received, src.Sent
	}
	recOn, sentOn := run(true)
	recOff, sentOff := run(false)
	if recOn > sentOn {
		t.Errorf("dedup on: server received %d > %d sent", recOn, sentOn)
	}
	if recOff <= sentOff {
		t.Errorf("dedup off: server received %d ≤ %d sent — no duplicates surfaced", recOff, sentOff)
	}
}

func TestFlushOffReplaysStaleBacklog(t *testing.T) {
	// Without the start(c,k) flush, the newly serving AP replays its
	// whole buffered backlog; the client's IP dedup must absorb it, and
	// the replays show up as duplicate deliveries at the MAC.
	_, _ = drive(t, nil)
	cfgOff := func(c *Config) { c.AP.FlushOnStart = false }
	nOff, _ := drive(t, cfgOff)
	nOn, _ := drive(t, nil)
	dupOff := nOff.Clients[0].RxDupIP
	dupOn := nOn.Clients[0].RxDupIP
	if dupOff <= dupOn {
		t.Errorf("flush off produced %d IP-duplicates vs %d with flush on; expected many more", dupOff, dupOn)
	}
}

func TestBAForwardOffNoRelays(t *testing.T) {
	n, _ := drive(t, func(c *Config) { c.AP.ForwardBAs = false })
	for _, a := range n.APs {
		if a.BAForwarded != 0 || a.BARecovered != 0 {
			t.Fatalf("BA forwarding active despite being disabled: fwd=%d rec=%d",
				a.BAForwarded, a.BARecovered)
		}
	}
}

func TestMultiClientFairness(t *testing.T) {
	// Two following cars with identical offered load should see
	// broadly similar goodput (round-robin at the APs).
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	lo, _ := cfg.RoadSpanX()
	trajs := mobility.Scenario(mobility.Following, 2, lo-5, 0, 15)
	var sinks []*transport.UDPSink
	for _, traj := range trajs {
		c := n.AddClient(traj)
		src, sink := udpDownlink(n, c, 15)
		n.Loop.After(100*sim.Millisecond, src.Start)
		sinks = append(sinks, sink)
	}
	n.Run(9500 * sim.Millisecond)
	a := float64(sinks[0].Bytes)
	b := float64(sinks[1].Bytes)
	if a == 0 || b == 0 {
		t.Fatal("a client starved completely")
	}
	ratio := a / b
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair split: %.0f vs %.0f bytes (ratio %.2f)", a, b, ratio)
	}
}

func TestSwitchLatencyDistribution(t *testing.T) {
	n, _ := drive(t, nil)
	if len(n.Ctrl.SwitchLatencies) < 10 {
		t.Fatalf("only %d switches measured", len(n.Ctrl.SwitchLatencies))
	}
	for _, l := range n.Ctrl.SwitchLatencies {
		// Table 1's regime plus slack: every switch completes within
		// the 30 ms stop-retransmit timeout (possibly with one
		// retransmission round).
		if l < 2*sim.Millisecond || l > 80*sim.Millisecond {
			t.Errorf("switch latency %v outside sane range", l)
		}
	}
}

func TestKeepalivesSustainSelectionWithoutTraffic(t *testing.T) {
	// With no data flows at all, the controller must still track the
	// driving client (keepalive CSI) and hand it across the array.
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	n.AddClient(mobility.Drive(-5, 0, 15))
	n.Run(9 * sim.Second)
	if n.Ctrl.SwitchesAcked < 5 {
		t.Errorf("only %d switches with idle client; keepalive CSI not driving selection", n.Ctrl.SwitchesAcked)
	}
	if got := n.ServingAP(0); got < 5 {
		t.Errorf("serving AP %d at end of drive; expected to have reached the far end", got)
	}
}
