package core

import (
	"testing"

	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// udpDownlink wires a CBR UDP flow from the server to a client and
// returns the sink.
func udpDownlink(n *Network, c *Client, rateMbps float64) (*transport.UDPSource, *transport.UDPSink) {
	sink := transport.NewUDPSink(n.Loop)
	c.Handle(9001, func(p packet.Packet) { sink.Receive(p) })
	src := transport.NewUDPSource(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, 9000, 9001, rateMbps, 1400)
	return src, sink
}

func TestWGTTStaticClientUDPDownlink(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	cfg.NumAPs = 4
	n := MustNewNetwork(cfg)
	// Parked right under AP1's beam.
	c := n.AddClient(mobility.Stationary{X: 7.5, Y: 0})
	src, sink := udpDownlink(n, c, 10)
	src.Start()
	n.Run(3 * sim.Second)

	gotMbps := float64(sink.Bytes) * 8 / 1e6 / 3
	if gotMbps < 8 {
		t.Errorf("static UDP goodput = %.2f Mbit/s of 10 offered", gotMbps)
	}
	if got := n.ServingAP(0); got != 1 {
		t.Errorf("serving AP = %d, want 1 (client under AP1)", got)
	}
	if loss := sink.LossRate(); loss > 0.05 {
		t.Errorf("loss = %.3f", loss)
	}
}

func TestWGTTDrivingClientSwitchesAndDelivers(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	// 15 mph drive across the whole array (52.5 m + margins).
	c := n.AddClient(mobility.Drive(-5, 0, 15))
	src, sink := udpDownlink(n, c, 10)
	src.Start()
	n.Run(9 * sim.Second) // 60 m at 6.7 m/s

	gotMbps := float64(sink.Bytes) * 8 / 1e6 / 9
	if gotMbps < 5 {
		t.Errorf("driving UDP goodput = %.2f Mbit/s of 10 offered", gotMbps)
	}
	if n.Ctrl.SwitchesAcked < 8 {
		t.Errorf("only %d switches acked during a full drive-by", n.Ctrl.SwitchesAcked)
	}
	// The controller must have fanned packets out to more than one AP
	// per packet on average.
	if n.Ctrl.DownlinkFanout <= n.Ctrl.DownlinkPackets {
		t.Errorf("fanout %d ≤ packets %d: no path diversity", n.Ctrl.DownlinkFanout, n.Ctrl.DownlinkPackets)
	}
}

func TestWGTTDrivingClientTCP(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(-5, 0, 15))

	rcv := transport.NewTCPReceiver(n.Loop, c.SendUplink, c.IP, packet.ServerIP, 5001, 80)
	c.Handle(5001, func(p packet.Packet) { rcv.Receive(p) })
	snd := transport.NewTCPSender(n.Loop, n.SendFromServer, packet.ServerIP, c.IP, 80, 5001, 0)
	n.ServerHandle(80, func(p packet.Packet) { snd.OnAck(p) })
	snd.Start()
	n.Run(9 * sim.Second)

	segs := rcv.InOrderSegments()
	mbps := float64(segs) * transport.MSS * 8 / 1e6 / 9
	if mbps < 3 {
		t.Errorf("driving TCP goodput = %.2f Mbit/s (%d segments)", mbps, segs)
	}
	// The flow must still be alive at the end of the drive (Fig. 14's
	// baseline dies mid-drive; WGTT's does not).
	before := rcv.InOrderSegments()
	n.Run(10 * sim.Second)
	if rcv.InOrderSegments() <= before {
		t.Error("TCP flow dead at end of drive")
	}
}

func TestEnhanced80211rDrivingClientDegrades(t *testing.T) {
	// The baseline must work but deliver far less at driving speed than
	// WGTT (Fig. 13's gap).
	run := func(scheme Scheme) float64 {
		cfg := DefaultConfig(scheme)
		n := MustNewNetwork(cfg)
		c := n.AddClient(mobility.Drive(-5, 0, 15))
		// Saturating offered load, as in the paper's iperf runs: the
		// buffering pathologies only appear when queues backlog.
		src, sink := udpDownlink(n, c, 30)
		src.Start()
		n.Run(9 * sim.Second)
		return float64(sink.Bytes) * 8 / 1e6 / 9
	}
	wgtt := run(WGTT)
	base := run(Enhanced80211r)
	if base <= 0 {
		t.Fatal("baseline delivered nothing; roaming must still work")
	}
	if wgtt < 1.5*base {
		t.Errorf("WGTT %.2f vs baseline %.2f Mbit/s: expected ≥1.5× gap", wgtt, base)
	}
}

func TestUplinkDiversityDedup(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(-5, 0, 15))
	// Uplink CBR from the client to the server.
	sink := transport.NewUDPSink(n.Loop)
	n.ServerHandle(7001, func(p packet.Packet) { sink.Receive(p) })
	src := transport.NewUDPSource(n.Loop, c.SendUplink, c.IP, packet.ServerIP, 7000, 7001, 5, 1400)
	src.Start()
	n.Run(8 * sim.Second)

	if sink.Received == 0 {
		t.Fatal("no uplink packets delivered")
	}
	if n.Ctrl.UplinkDuplicates == 0 {
		t.Error("no duplicates removed: uplink diversity not exercised")
	}
	// The server must see no duplicate sequence numbers slip through:
	// Received should not exceed distinct seqs sent.
	if sink.Received > src.Sent {
		t.Errorf("server got %d packets for %d sent: dedup failed", sink.Received, src.Sent)
	}
	if loss := sink.LossRate(); loss > 0.1 {
		t.Errorf("uplink loss %.3f despite multi-AP reception", loss)
	}
}

func TestBAForwardingRecoversAcks(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(-5, 0, 15))
	src, _ := udpDownlink(n, c, 10)
	src.Start()
	n.Run(9 * sim.Second)

	recovered := 0
	forwarded := 0
	for _, a := range n.APs {
		recovered += a.BARecovered
		forwarded += a.BAForwarded
	}
	if forwarded == 0 {
		t.Error("no BAs were ever forwarded between APs")
	}
	if recovered == 0 {
		t.Error("no aggregate was ever saved by a forwarded BA")
	}
}

func TestSchemeStrings(t *testing.T) {
	if WGTT.String() != "WGTT" || Enhanced80211r.String() == "" || Stock80211r.String() == "" {
		t.Error("scheme strings wrong")
	}
}

func TestOracleAndLinkESNR(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	n.AddClient(mobility.Stationary{X: 22.5, Y: 0}) // under AP3
	best := n.OracleBestAP(0)
	if best != 3 {
		// Fading can shift the instantaneous best to a neighbour, but
		// never far.
		if best < 2 || best > 4 {
			t.Errorf("oracle best AP = %d for client under AP3", best)
		}
	}
	e := n.LinkESNRdB(3, 0)
	if e < 5 || e > 45 {
		t.Errorf("link ESNR under the beam = %v dB", e)
	}
	far := n.LinkESNRdB(7, 0) // 30 m away
	if far >= e {
		t.Errorf("far AP ESNR %v ≥ near AP %v", far, e)
	}
}
