package core

import (
	"fmt"
	"sort"
	"strings"

	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
)

// This file maps the sim-level partitioned runner (sim.Coordinator.
// RunPartitioned) onto a Network: naming the execution domains, parsing
// a partition assignment, running one process's share, and exporting
// the telemetry shards that share owns. Construction is SPMD — every
// process builds the identical Network from the identical Config — so
// a Partition is pure bookkeeping: which of the already-identical
// domains each process executes.

// Partition assigns every execution domain of a domain-mode Network to
// exactly one process: Partition[p] lists the domain names process p
// owns ("seg0".."segN-1" and "server").
type Partition [][]string

// ParsePartition parses the -partition flag syntax: process groups
// separated by commas, domain names within a group joined by "+", e.g.
// "seg0+seg1+seg2,server" for a two-process run. The shorthand "segs"
// expands to every segment domain of the network it is validated
// against.
func ParsePartition(s string) (Partition, error) {
	var p Partition
	for _, group := range strings.Split(s, ",") {
		group = strings.TrimSpace(group)
		if group == "" {
			return nil, fmt.Errorf("partition: empty process group in %q", s)
		}
		var names []string
		for _, name := range strings.Split(group, "+") {
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("partition: empty domain name in %q", group)
			}
			names = append(names, name)
		}
		p = append(p, names)
	}
	if len(p) < 2 {
		return nil, fmt.Errorf("partition %q has %d process group(s); a partitioned run needs at least 2", s, len(p))
	}
	return p, nil
}

// DomainNames lists the network's execution domains in creation order
// ("seg0".."segN-1", then "server"); empty on the single-loop path.
func (n *Network) DomainNames() []string {
	if n.Coord == nil {
		return nil
	}
	names := make([]string, 0, len(n.segs)+1)
	for _, sd := range n.segs {
		names = append(names, sd.dom.Name())
	}
	return append(names, "server")
}

// Resolve validates the partition against a network — every domain
// assigned exactly once, no unknown names — expanding the "segs"
// shorthand, and returns the per-process ownership sets.
func (p Partition) Resolve(n *Network) ([]map[string]bool, error) {
	if n.Coord == nil {
		return nil, fmt.Errorf("partition: network is not in a domain mode")
	}
	valid := make(map[string]bool)
	for _, name := range n.DomainNames() {
		valid[name] = true
	}
	owner := make(map[string]int)
	procs := make([]map[string]bool, len(p))
	for pi, group := range p {
		procs[pi] = make(map[string]bool)
		for _, name := range group {
			var names []string
			if name == "segs" {
				for _, sd := range n.segs {
					names = append(names, sd.dom.Name())
				}
			} else {
				names = []string{name}
			}
			for _, nm := range names {
				if !valid[nm] {
					return nil, fmt.Errorf("partition: unknown domain %q (have %s)",
						nm, strings.Join(n.DomainNames(), " "))
				}
				if prev, dup := owner[nm]; dup {
					return nil, fmt.Errorf("partition: domain %q assigned to both process %d and %d",
						nm, prev, pi)
				}
				owner[nm] = pi
				procs[pi][nm] = true
			}
		}
	}
	var missing []string
	for name := range valid {
		if _, ok := owner[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("partition: domains not assigned to any process: %s",
			strings.Join(missing, " "))
	}
	return procs, nil
}

// RunPartitioned advances this process's share of the domain graph to
// virtual time until, exchanging cross-domain envelopes over bus. owned
// is one entry of Partition.Resolve. Every process of the run must make
// the same sequence of RunPartitioned calls with the same untils — the
// exchange schedule is lockstep (see sim.Coordinator.RunPartitioned).
func (n *Network) RunPartitioned(until sim.Duration, owned map[string]bool, bus sim.PeerBus) error {
	if n.Coord == nil {
		return fmt.Errorf("RunPartitioned: network is not in a domain mode")
	}
	if err := n.Coord.RunPartitioned(sim.Time(until),
		func(d *sim.Domain) bool { return owned[d.Name()] }, bus); err != nil {
		return err
	}
	n.noteUnownedSpike(owned)
	return nil
}

// MetricsSnapshotOwned exports the telemetry shards owned by this
// process: each segment domain's shard goes with that domain, and the
// root shard (server, clients, coordinator gauges) with the "server"
// domain. Remote shards are excluded — their series never sample here
// and their gauge callbacks would read never-run state. Merging every
// process's export with telemetry.MergeSnapshots reproduces the
// in-process MetricsSnapshot bit for bit.
func (n *Network) MetricsSnapshotOwned(owned map[string]bool) *telemetry.Snapshot {
	if n.tel == nil || n.Coord == nil {
		return nil
	}
	return n.tel.SnapshotShards(n.Coord.Now(), func(shard string) bool {
		if shard == "" {
			return owned["server"]
		}
		return owned[shard]
	})
}

// OwnsClient reports whether one of the process's owned segment domains
// currently holds the client's radio — i.e. whether this process's
// figures (throughput meters and other client-side readings) for that
// client are authoritative. Residency maps of remote domains are
// construction-time stale, which is exactly why the owned set is
// required.
func (n *Network) OwnsClient(owned map[string]bool, c *Client) bool {
	for _, sd := range n.segs {
		if !owned[sd.dom.Name()] {
			continue
		}
		if _, ok := sd.resident[c.Client]; ok {
			return true
		}
	}
	return false
}
