package core

import (
	"io"

	"wgtt/internal/deploy"
	"wgtt/internal/trace"
)

// This file exposes the per-domain flight recorders
// (Config.FlightRecorder) at the network level: shard access for the
// serve layer, stitched export for wgtt-sim, and the network-wide
// anomaly triggers that need cross-controller state (the per-handoff
// latency band lives inside the controller, which sees each ack).

// FlightRecorder returns segment i's flight recorder; nil when
// recording is disabled, the segment runs a baseline plane, or i is out
// of range. In a partitioned run, recorders of segments this process
// does not own stay empty — their domains never execute here.
func (n *Network) FlightRecorder(i int) *trace.Recorder {
	if i < 0 || i >= len(n.recs) {
		return nil
	}
	return n.recs[i]
}

// FlightRecords stitches every local shard into one deterministic
// timeline (see trace.Stitch). Call at quiescence (between Run calls).
func (n *Network) FlightRecords() []trace.Record {
	shards := make([][]trace.Record, 0, len(n.recs))
	for _, r := range n.recs {
		if r.Len() > 0 {
			shards = append(shards, r.Records())
		}
	}
	return trace.Stitch(shards...)
}

// FlightAnomalies concatenates every shard's noted anomalies in segment
// order.
func (n *Network) FlightAnomalies() []trace.Anomaly {
	var out []trace.Anomaly
	for _, r := range n.recs {
		out = append(out, r.Anomalies()...)
	}
	return out
}

// WriteChromeTrace renders the stitched local timeline as Chrome
// trace_event JSON (Perfetto-loadable).
func (n *Network) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChrome(w, n.FlightRecords())
}

// noteUnownedSpike checks every live controller's unowned-client count
// against Config.UnownedSpike and notes an anomaly on the segment's
// recorder. Called at Run/RunPartitioned boundaries (quiescent, so the
// cross-goroutine reads are ordered by the coordinator barrier). owned
// restricts the check to this process's domains in a partitioned run —
// remote controllers hold construction-time state and would read as
// spikes; nil means every domain ran locally.
func (n *Network) noteUnownedSpike(owned map[string]bool) {
	if n.Cfg.UnownedSpike <= 0 || len(n.recs) == 0 {
		return
	}
	for i, s := range n.Deploy.Segments {
		rec := n.recs[i]
		if rec == nil {
			continue
		}
		p, ok := s.Plane.(*deploy.WGTTPlane)
		if !ok {
			continue
		}
		at := n.Loop.Now()
		if n.Coord != nil {
			sd := n.segs[i]
			if owned != nil && !owned[sd.dom.Name()] {
				continue
			}
			at = sd.dom.Loop.Now()
		}
		if u := p.Ctrl.UnownedClients(); u > n.Cfg.UnownedSpike {
			rec.Anomaly(trace.Anomaly{At: at, Kind: trace.AnomalyUnowned, Value: float64(u)})
		}
	}
}
