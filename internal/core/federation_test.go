package core

import (
	"fmt"
	"strings"
	"testing"

	"wgtt/internal/deploy"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// fedConfig builds a federated multi-segment WGTT corridor.
func fedConfig(seed int64, segs []deploy.SegmentSpec, ring bool, faults deploy.FaultSchedule) Config {
	cfg := DefaultConfig(WGTT)
	cfg.Seed = seed
	cfg.Segments = segs
	cfg.Federation.Enabled = true
	cfg.Federation.Ring = ring
	cfg.Trunk.Faults = faults
	return cfg
}

func fourSegs() []deploy.SegmentSpec {
	return []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}, {NumAPs: 4}, {NumAPs: 4}}
}

// attachDownlink wires a client-side UDP sink fed by a server-side CBR
// source (the parallel_test idiom: sink on the client's clock, source on
// the server loop).
func attachDownlink(n *Network, c *Client, port uint16, rateMbps float64) *transport.UDPSink {
	sink := transport.NewUDPSink(c.Client)
	c.Handle(port, func(p packet.Packet) { sink.Receive(p) })
	src := transport.NewUDPSource(n.Loop, n.SendFromServer,
		packet.ServerIP, c.IP, port-1, port, rateMbps, 1400)
	n.Loop.After(100*sim.Millisecond, src.Start)
	return sink
}

// TestFederationUTurnRelocates is the satellite-1 U-turn scenario: a
// client drives two segments up the corridor, turns around, and drives
// back. Without federation the original controller would keep serving a
// client it can no longer reach; with it, each reverse segment crossing
// re-locates the client through the directory. At the end the client
// must be attached and owned exactly once.
func TestFederationUTurnRelocates(t *testing.T) {
	cfg := fedConfig(1, fourSegs(), false, deploy.FaultSchedule{})
	n := MustNewNetwork(cfg)
	// 4×4 APs at 7.5 m pitch: segment i spans x ∈ [30i, 30i+22.5].
	traj := mobility.NewWaypoints([]mobility.Waypoint{
		{At: 0, Pos: pos(10, 0)},
		{At: 4 * sim.Second, Pos: pos(75, 0)}, // into segment 2
		{At: 9 * sim.Second, Pos: pos(12, 0)}, // U-turn back to segment 0
	})
	c := n.AddClient(traj)
	sink := attachDownlink(n, c, 9001, 10)
	n.Run(10 * sim.Second)

	if lost := n.LostClients(); len(lost) != 0 {
		t.Fatalf("lost clients after U-turn: %v", lost)
	}
	if got := n.Relocates(); got < 1 {
		t.Errorf("relocates = %d, want ≥ 1 (U-turn must re-locate through the directory)", got)
	}
	if owners := ownersOf(n, c); len(owners) != 1 {
		t.Errorf("controllers owning client = %v, want exactly one", owners)
	}
	if n.ServingAP(c.ID) < 0 {
		t.Error("client not attached to any AP after U-turn")
	}
	if sink.Bytes == 0 {
		t.Error("downlink delivered no bytes")
	}
}

// TestFederationCoverageGapRelocates drives a client across a 60 m
// coverage hole between two segments. The client goes dark mid-route;
// when it reappears in the far segment, that controller must claim it
// through the directory and resume the downlink.
func TestFederationCoverageGapRelocates(t *testing.T) {
	segs := []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4, Gap: 60}}
	cfg := fedConfig(1, segs, false, deploy.FaultSchedule{})
	n := MustNewNetwork(cfg)
	// Segment 0 spans [0, 22.5]; segment 1 starts at 82.5.
	c := n.AddClient(mobility.Drive(5, 0, 25)) // ≈11 m/s: crosses the gap around t≈5 s
	sink := attachDownlink(n, c, 9001, 10)

	var bytesBeforeGap int64
	n.Loop.At(sim.Time(2*sim.Second), func() { bytesBeforeGap = sink.Bytes })
	n.Run(10 * sim.Second)

	if lost := n.LostClients(); len(lost) != 0 {
		t.Fatalf("lost clients after coverage gap: %v", lost)
	}
	if owners := ownersOf(n, c); len(owners) != 1 || owners[0] != 1 {
		t.Errorf("controllers owning client = %v, want [1] (far side of the gap)", owners)
	}
	if sink.Bytes <= bytesBeforeGap {
		t.Errorf("downlink did not resume after the gap: %d bytes at 2 s, %d at end",
			bytesBeforeGap, sink.Bytes)
	}
	if got := n.Relocates(); got < 1 {
		t.Errorf("relocates = %d, want ≥ 1 (gap crossing must re-locate)", got)
	}
}

// TestFederationTrunkOutageMidHandoff blacks out the only trunk exactly
// over the client's first segment crossing while a TCP download runs.
// The handoff RPCs must retry through the outage, the client must end
// re-attached, and TCP must keep delivering after the trunk returns.
func TestFederationTrunkOutageMidHandoff(t *testing.T) {
	faults := deploy.FaultSchedule{Outages: []deploy.Outage{
		{A: 0, B: 1, Start: 800 * sim.Millisecond, End: 1600 * sim.Millisecond},
	}}
	cfg := fedConfig(1, []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}, {NumAPs: 4}}, false, faults)
	cfg.Telemetry = true
	n := MustNewNetwork(cfg)
	// Start near the 0→1 boundary (x=26.25) so the crossing lands inside
	// the outage window at ≈11 m/s.
	c := n.AddClient(mobility.Drive(18, 0, 25))

	// TCP downlink wired like workload.NewTCPDownlink (workload itself
	// would be an import cycle here).
	recv := transport.NewTCPReceiver(c, c.SendUplink, c.IP, packet.ServerIP, 9002, 80)
	c.Handle(9002, recv.Receive)
	send := transport.NewTCPSender(n.Loop, n.SendFromServer, packet.ServerIP, c.IP, 80, 9002, 0)
	n.ServerHandle(80, send.OnAck)
	n.Loop.After(100*sim.Millisecond, send.Start)

	var segsAtOutageEnd uint32
	n.Loop.At(sim.Time(1700*sim.Millisecond), func() { segsAtOutageEnd = recv.InOrderSegments() })
	n.Run(6 * sim.Second)

	outageDrops, _ := n.TrunkFaultDrops()
	if outageDrops == 0 {
		t.Error("no trunk messages were dropped: the outage missed the handoff window")
	}
	if lost := n.LostClients(); len(lost) != 0 {
		t.Fatalf("lost clients after trunk outage: %v", lost)
	}
	if n.ServingAP(c.ID) < 0 {
		t.Error("client not re-attached after the outage")
	}
	if recv.InOrderSegments() <= segsAtOutageEnd {
		t.Errorf("TCP did not recover after the outage: %d segments at 1.7 s, %d at end",
			segsAtOutageEnd, recv.InOrderSegments())
	}
}

// ownersOf lists the segment indices whose controller owns the client.
func ownersOf(n *Network, c *Client) []int {
	var segs []int
	for i, ctrl := range n.Controllers() {
		if ctrl.Owns(c.Addr) {
			segs = append(segs, i)
		}
	}
	return segs
}

func pos(x, y float64) rf.Position { return rf.Position{X: x, Y: y} }

// domainFaultSignature rides two clients across a federated corridor
// with an active trunk fault schedule and returns the byte-exact sink
// signature plus re-locate and lost-client counts.
func domainFaultSignature(t *testing.T, seed int64, mode DomainMode, ring bool, faults deploy.FaultSchedule, uturn bool) string {
	t.Helper()
	cfg := fedConfig(seed, fourSegs(), ring, faults)
	cfg.Domains = mode
	n := MustNewNetwork(cfg)

	trajs := []mobility.Trajectory{mobility.Drive(-5, 0, 25)}
	if uturn {
		trajs = append(trajs, mobility.NewWaypoints([]mobility.Waypoint{
			{At: 0, Pos: pos(10, 0)},
			{At: 4 * sim.Second, Pos: pos(75, 0)},
			{At: 9 * sim.Second, Pos: pos(12, 0)},
		}))
	} else {
		trajs = append(trajs, mobility.Drive(-13, 0, 25))
	}
	var sinks []*transport.UDPSink
	for i, traj := range trajs {
		c := n.AddClient(traj)
		sinks = append(sinks, attachDownlink(n, c, uint16(9001+2*i), 10))
	}
	n.Run(10 * sim.Second)

	sig := ""
	for _, s := range sinks {
		sig += fmt.Sprintf("%d:%v;", s.Bytes, s.LossRate())
	}
	sig += fmt.Sprintf("relocates=%d;lost=%d", n.Relocates(), len(n.LostClients()))
	if len(n.LostClients()) != 0 {
		t.Errorf("seed %d mode %v: lost clients %v", seed, mode, n.LostClients())
	}
	return sig
}

// TestDomainParityTrunkFaults extends the serial/parallel parity
// guarantee to fault-injected runs: scheduled outages, random trunk
// drops, and delay jitter must all resolve identically whether the
// segment domains run on one goroutine or many. Named TestDomain* so the
// ci.sh race gate runs it under -race.
func TestDomainParityTrunkFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("two 10 s corridor rides per seed")
	}
	faults := deploy.FaultSchedule{
		Outages:   []deploy.Outage{{A: 1, B: 2, Start: 2 * sim.Second, End: 4 * sim.Second}},
		DropProb:  0.02,
		JitterMax: 40 * sim.Microsecond,
	}
	for seed := int64(1); seed <= 2; seed++ {
		serial := domainFaultSignature(t, seed, DomainsSerial, false, faults, false)
		parallel := domainFaultSignature(t, seed, DomainsParallel, false, faults, false)
		if serial != parallel {
			t.Errorf("seed %d: serial %q != parallel %q", seed, serial, parallel)
		}
	}
}

// TestDomainCorridorFederatedParity is the acceptance run: a four-
// segment federated corridor with a ring trunk, a mid-run outage on an
// interior trunk, one through-driving client, and one U-turning client.
// Every client must finish attached, at least one re-locate must have
// happened, and the serial and parallel domain executions must agree bit
// for bit.
func TestDomainCorridorFederatedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("two 10 s corridor rides")
	}
	faults := deploy.FaultSchedule{Outages: []deploy.Outage{
		{A: 1, B: 2, Start: 2 * sim.Second, End: 5 * sim.Second},
	}}
	serial := domainFaultSignature(t, 1, DomainsSerial, true, faults, true)
	parallel := domainFaultSignature(t, 1, DomainsParallel, true, faults, true)
	if serial != parallel {
		t.Fatalf("serial %q != parallel %q", serial, parallel)
	}
	// The signature embeds the re-locate count; require at least one.
	if strings.Contains(serial, "relocates=0;") {
		t.Errorf("no re-locates observed in acceptance run: %q", serial)
	}
}
