package core

import (
	"strings"
	"testing"

	"wgtt/internal/deploy"
)

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero NumAPs", func(c *Config) { c.NumAPs = 0 }, "NumAPs"},
		{"negative NumAPs", func(c *Config) { c.NumAPs = -3 }, "NumAPs"},
		{"zero APSpacing", func(c *Config) { c.APSpacing = 0 }, "APSpacing"},
		{"negative APSpacing", func(c *Config) { c.APSpacing = -7.5 }, "APSpacing"},
		{"segment zero NumAPs", func(c *Config) {
			c.Segments = []deploy.SegmentSpec{{NumAPs: 8}, {NumAPs: 0}}
		}, "segment 1 NumAPs"},
		{"segment negative spacing", func(c *Config) {
			c.Segments = []deploy.SegmentSpec{{NumAPs: 8, APSpacing: -1}}
		}, "APSpacing"},
		{"segment no inheritable spacing", func(c *Config) {
			c.APSpacing = 0
			c.Segments = []deploy.SegmentSpec{{NumAPs: 8}}
		}, "APSpacing"},
		{"zero controller window", func(c *Config) { c.Controller.Window = 0 }, "window"},
		{"unset RF params", func(c *Config) { c.RF.FreqHz = 0 }, "RF params"},
		{"positive noise floor", func(c *Config) { c.RF.NoiseDBm = 3 }, "RF params"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(WGTT)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if _, err := NewNetwork(cfg); err == nil {
				t.Error("NewNetwork accepted an invalid config")
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	for _, s := range []Scheme{WGTT, Enhanced80211r, Stock80211r} {
		cfg := DefaultConfig(s)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v default config rejected: %v", s, err)
		}
	}
	// A zero controller window only matters for WGTT.
	cfg := DefaultConfig(Enhanced80211r)
	cfg.Controller.Window = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("baseline config rejected for WGTT-only knob: %v", err)
	}
}

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want Scheme
	}{
		{"wgtt", WGTT}, {"WGTT", WGTT}, {" wgtt ", WGTT},
		{"11r", Enhanced80211r}, {"enhanced11r", Enhanced80211r},
		{"Enhanced 802.11r", Enhanced80211r},
		{"stock11r", Stock80211r}, {"Stock 802.11r", Stock80211r},
	}
	for _, tc := range cases {
		got, err := ParseScheme(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseScheme("wimax"); err == nil {
		t.Error("ParseScheme accepted an unknown scheme")
	}
	for _, s := range []Scheme{WGTT, Enhanced80211r, Stock80211r} {
		if got, err := ParseScheme(s.String()); err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v; want round-trip", s.String(), got, err)
		}
	}
}

func TestSegmentGeometry(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	cfg.Segments = []deploy.SegmentSpec{
		{NumAPs: 4},                                // inherits 7.5 m spacing
		{NumAPs: 4, APSpacing: 15, Gap: 30},        // sparse, wide gap
		{NumAPs: 2, APSpacing: 7.5, APSetback: 25}, // default gap = own spacing
	}
	if got := cfg.TotalAPs(); got != 10 {
		t.Fatalf("TotalAPs = %d, want 10", got)
	}
	// Segment 0: x = 0, 7.5, 15, 22.5. Segment 1 starts at 22.5+30.
	if p := cfg.APPosition(4); p.X != 52.5 {
		t.Errorf("AP4 at x=%g, want 52.5", p.X)
	}
	if p := cfg.APPosition(7); p.X != 52.5+3*15 {
		t.Errorf("AP7 at x=%g, want 97.5", p.X)
	}
	// Segment 2 starts one own-spacing after AP7, with its own setback.
	if p := cfg.APPosition(8); p.X != 97.5+7.5 || p.Y != 25 {
		t.Errorf("AP8 at (%g,%g), want (105,25)", p.X, p.Y)
	}
	lo, hi := cfg.RoadSpanX()
	if lo != 0 || hi != 112.5 {
		t.Errorf("road span [%g,%g], want [0,112.5]", lo, hi)
	}
}
