package core

import (
	"fmt"

	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
)

// This file wires the telemetry registry (Config.Telemetry) into both
// construction paths. On the single-loop path every scope is a view of
// the registry's root shard; in domain mode each segment gets its own
// shard, touched only by that domain's goroutine, and the root shard
// belongs to the wired-server domain. Snapshot merges the shards at
// quiescence (the per-round coordinator barrier is the happens-before
// edge that makes the plain counters visible).

// initTelemetrySingle builds the registry for the single-loop path:
// every segment scope shares the root shard, sampled by one 100 ms
// ticker on the shared loop.
func (n *Network) initTelemetrySingle(loop *sim.Loop, numSegs int) {
	n.tel = telemetry.NewRegistry()
	n.telRoot = n.tel.Scope("server")
	for i := 0; i < numSegs; i++ {
		n.telSegs = append(n.telSegs, n.tel.Scope(fmt.Sprintf("seg%d", i)))
	}
	n.loopGauges(n.telRoot, loop)
	n.serverGauges()
	scheduleSampler(loop, n.telRoot)
}

// initTelemetryDomains builds the registry for domain mode: one shard
// per segment plus the root shard for the server domain, each with its
// own sampler on its own loop. All samplers tick on the same absolute
// 100 ms grid, so serial and parallel domain execution see identical
// event schedules and stay bit-identical.
func (n *Network) initTelemetryDomains(coord *sim.Coordinator, server *sim.Domain) {
	n.tel = telemetry.NewRegistry()
	n.telRoot = n.tel.Scope("server")
	for i, sd := range n.segs {
		sc := n.tel.NewShard(fmt.Sprintf("seg%d", i))
		n.telSegs = append(n.telSegs, sc)
		n.loopGauges(sc, sd.dom.Loop)
		n.domainIntrospection(sc, coord, sd.dom)
		scheduleSampler(sd.dom.Loop, sc)
	}
	n.loopGauges(n.telRoot, server.Loop)
	n.serverGauges()
	n.telRoot.GaugeFunc("coord_rounds", func() float64 { return float64(coord.Rounds()) })
	n.domainIntrospection(n.telRoot, coord, server)
	scheduleSampler(server.Loop, n.telRoot)
}

// domainIntrospection exposes the sync-round view from inside one
// domain: the depth of its outgoing cross-domain envelope queue and how
// much lookahead slack its local schedule has, sampled on the 100 ms
// series grid. Both read only virtual-schedule state — never wall
// clock — so serial, parallel, and partitioned runs sample identical
// values and the merged snapshots stay bit-identical.
func (n *Network) domainIntrospection(sc telemetry.Scope, coord *sim.Coordinator, dom *sim.Domain) {
	loop := dom.Loop
	la := coord.Lookahead()
	sc.Series("envelope_queue_100ms", func() float64 {
		return float64(coord.PendingEnvelopesFrom(dom))
	})
	// Slack = how long the domain could idle before its next local
	// event, capped at the sync horizon (a domain with no work for the
	// rest of the round reports the full lookahead).
	sc.Series("lookahead_slack_100ms", func() float64 {
		slack := la
		if next, ok := loop.NextEventAt(); ok {
			if d := next.Sub(loop.Now()); d < slack {
				slack = d
			}
		}
		return float64(slack) / float64(sim.Millisecond)
	})
}

// loopGauges exposes one event loop's occupancy under sc.
func (n *Network) loopGauges(sc telemetry.Scope, loop *sim.Loop) {
	sc.GaugeFunc("loop_events", func() float64 { return float64(loop.Executed()) })
	sc.GaugeFunc("loop_pending", func() float64 { return float64(loop.Pending()) })
	sc.Series("loop_events_100ms", func() float64 { return float64(loop.Executed()) })
}

// serverGauges exposes the wired server's cross-segment state.
func (n *Network) serverGauges() {
	n.telRoot.GaugeFunc("clients", func() float64 { return float64(len(n.Clients)) })
	n.telRoot.GaugeFunc("server_duplicates", func() float64 { return float64(n.ServerDuplicates) })
	n.unownedGauge(n.telRoot)
}

// clientGauges exposes one client's receive-side state under its home
// segment's scope. GaugeFuncs are evaluated only at Snapshot time
// (quiescent), so a client that later migrates to another domain cannot
// race its old segment's sampler.
func (n *Network) clientGauges(seg, id int) {
	cl := n.Clients[id].Client
	sc := n.segTel(seg).Sub(fmt.Sprintf("client%d", id))
	sc.GaugeFunc("rx_mpdus", func() float64 { return float64(cl.RxMPDUs) })
	sc.GaugeFunc("rx_bytes", func() float64 { return float64(cl.RxBytes) })
	sc.GaugeFunc("rx_dups", func() float64 { return float64(cl.RxDuplicates) })
	sc.GaugeFunc("uplink_ppdus", func() float64 { return float64(cl.UplinkPPDUs) })
}

// scheduleSampler arms a domain's 100 ms series sampler. The ticks are
// read-only (they copy current values into the ring buffers), so they
// perturb neither the RNG streams nor any other event's ordering.
func scheduleSampler(loop *sim.Loop, sc telemetry.Scope) {
	var tick func()
	tick = func() {
		sc.Sample(loop.Now())
		loop.After(telemetry.SamplePeriod, tick)
	}
	loop.After(telemetry.SamplePeriod, tick)
}

// segTel returns segment i's telemetry scope; the zero (disabled) scope
// when Config.Telemetry is off.
func (n *Network) segTel(i int) telemetry.Scope {
	if n.tel == nil {
		return telemetry.Scope{}
	}
	return n.telSegs[i]
}

// TelemetryScope exposes a root-shard scope under prefix for callers
// that attach their own metrics (workload endpoints at the wired
// server). The zero scope when telemetry is disabled.
func (n *Network) TelemetryScope(prefix string) telemetry.Scope {
	if n.tel == nil {
		return telemetry.Scope{}
	}
	return n.tel.Scope(prefix)
}

// TelemetryEnabled reports whether the network records metrics.
func (n *Network) TelemetryEnabled() bool { return n.tel != nil }

// MetricsSnapshot exports every metric at the current virtual time.
// Call it only while the simulation is quiescent (between Run calls);
// returns nil when Config.Telemetry is off.
func (n *Network) MetricsSnapshot() *telemetry.Snapshot {
	if n.tel == nil {
		return nil
	}
	at := n.Loop.Now()
	if n.Coord != nil {
		at = n.Coord.Now()
	}
	return n.tel.Snapshot(at)
}
