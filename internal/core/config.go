// Package core assembles a complete WGTT (or Enhanced-802.11r) roadside
// network: the eight-AP deployment geometry of Fig. 9, per-link radio
// channels, the shared medium, the Ethernet backhaul with controller and
// wired server, and the mobile clients. It is the paper's testbed in
// software and the substrate every experiment runs on.
package core

import (
	"fmt"
	"strings"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/baseline"
	"wgtt/internal/channel"
	"wgtt/internal/client"
	"wgtt/internal/controller"
	"wgtt/internal/deploy"
	"wgtt/internal/federation"
	"wgtt/internal/rf"
)

// Scheme selects the roaming system under test.
type Scheme int

// Schemes.
const (
	// WGTT is the paper's system.
	WGTT Scheme = iota
	// Enhanced80211r is the §5.1 comparison scheme.
	Enhanced80211r
	// Stock80211r is the §2 motivation behaviour (5 s history,
	// over-the-DS transition).
	Stock80211r
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case WGTT:
		return "WGTT"
	case Enhanced80211r:
		return "Enhanced 802.11r"
	case Stock80211r:
		return "Stock 802.11r"
	}
	return "Scheme(?)"
}

// ParseScheme inverts the command-line scheme names. It accepts the
// short flag forms ("wgtt", "11r", "stock11r") and the String() forms,
// case-insensitively.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "wgtt":
		return WGTT, nil
	case "11r", "enhanced11r", "enhanced 802.11r":
		return Enhanced80211r, nil
	case "stock11r", "stock 802.11r":
		return Stock80211r, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want wgtt | 11r | stock11r)", name)
}

// DomainMode selects how a multi-segment deployment executes.
type DomainMode int

// Domain modes.
const (
	// SingleLoop runs the whole deployment on one event loop — the
	// classic, exactly-serial path every golden figure pins.
	SingleLoop DomainMode = iota
	// DomainsSerial partitions the deployment into per-segment domains
	// (own loop, own medium partition, mailbox trunks) but executes the
	// synchronization rounds domain-by-domain on one goroutine.
	DomainsSerial
	// DomainsParallel is the same partition with one goroutine per
	// domain; bit-identical to DomainsSerial by construction.
	DomainsParallel
)

// String implements fmt.Stringer.
func (m DomainMode) String() string {
	switch m {
	case SingleLoop:
		return "single-loop"
	case DomainsSerial:
		return "domains-serial"
	case DomainsParallel:
		return "domains-parallel"
	}
	return "DomainMode(?)"
}

// Config describes a deployment.
type Config struct {
	Seed   int64
	Scheme Scheme

	// Geometry (§4, Fig. 9): NumAPs APs along the road at APSpacing,
	// set back APSetback meters from the near lane (which runs at
	// y = 0), boresights perpendicular to the road.
	NumAPs    int
	APSpacing float64
	APSetback float64
	FirstAPX  float64

	// Segments, when non-empty, shards the road into chained segments,
	// each with its own controller (or bridge) and backhaul domain;
	// NumAPs is then ignored and the fields above act as defaults for
	// unset per-segment values. Empty Segments is the classic
	// single-segment deployment.
	Segments []deploy.SegmentSpec

	// Trunk sets the inter-segment controller-to-controller link,
	// including the deterministic fault-injection schedule
	// (Trunk.Faults) applied to every trunk.
	Trunk deploy.TrunkConfig

	// Federation enables the cross-segment federation layer: the
	// replicated client→segment ownership directory, multi-hop trunk
	// routing (optionally over a ring or extra bypass trunks), and the
	// re-locate protocol controllers use to recover clients lost to
	// U-turns, coverage gaps, or trunk outages. WGTT multi-segment only.
	Federation federation.Config

	// Domains selects per-segment event-loop domains for multi-segment
	// deployments (conservative parallel simulation with the trunk
	// propagation delay as lookahead). Single-segment deployments ignore
	// it and always take the exact serial path. See DomainMode.
	Domains DomainMode

	// ChannelBackend selects the propagation/PHY model: "" or "wifi5g"
	// is the paper's 2.4/5 GHz roadside model (the bit-identical
	// default); "mmwave60g" the 60 GHz picocell model. See
	// internal/channel.
	ChannelBackend string

	// MMWave tunes the mmwave60g backend; ignored by wifi5g.
	MMWave channel.MMWaveParams

	// BoundaryInterference, in domain mode, exchanges boundary-zone
	// transmissions between adjacent segment domains so co-channel
	// interference at segment edges degrades SNR on both sides —
	// physics the medium partition otherwise drops. Off by default:
	// the domain-mode pins were recorded without it.
	BoundaryInterference bool
	// BoundaryZoneM is how far from a segment edge a transmitter must
	// be for its PPDUs to be exported to the neighbouring domain.
	BoundaryZoneM float64

	RF         rf.Params
	AP         ap.Config
	Controller controller.Config
	BaselineAP baseline.APConfig
	Roamer     baseline.RoamerConfig
	Client     client.Config
	Backhaul   backhaul.Config

	// TraceCapacity, when positive, enables the tcpdump-style event log
	// (Network.Trace) retaining this many most-recent events.
	TraceCapacity int

	// FlightRecorder, when positive, enables the causal flight recorder:
	// one fixed ring of this many structured switch-protocol records per
	// domain shard (internal/trace.Recorder). Unlike TraceCapacity it is
	// legal in every domain mode — each domain records into its own
	// ring — and it never perturbs the event schedule.
	FlightRecorder int
	// HandoffBandLoMs/HandoffBandHiMs bound the expected stop→ack
	// latency of a completed handoff. With HandoffBandHiMs > 0, a
	// completed handoff outside [lo, hi] ms notes a latency anomaly on
	// the domain's flight recorder.
	HandoffBandLoMs float64
	HandoffBandHiMs float64
	// UnownedSpike, when positive, notes an unowned-spike anomaly when a
	// controller tracks more than this many clients it does not own,
	// checked at Run/slice boundaries.
	UnownedSpike int

	// Telemetry enables the metrics registry: datapath counters, handoff
	// span tracing, and 100 ms time-series sampling across every segment
	// (Network.MetricsSnapshot). Unlike the trace log it works in domain
	// mode — each domain records into its own shard.
	Telemetry bool

	// Audibility selects how the medium finds the receivers of a
	// transmission, in the same positive-option style as ChannelBackend:
	// "" or "index" (AudibilityIndex) is the spatial audibility index —
	// the default; "scan" (AudibilityScan) forces the brute-force
	// all-nodes delivery scan. The two are bit-identical; the knob
	// exists for parity tests and A/B benchmarks.
	Audibility string

	// Cross-link budgets used only for carrier sense and interference.
	// Clients sit inside vehicles (extra penetration loss); APs hear
	// each other along the wall.
	ClientClientLossDB float64
	APAPSenseSNRdB     float64
	APAPSenseRangeM    float64
}

// Audibility values (Config.Audibility).
const (
	// AudibilityIndex is the spatial audibility index (the default).
	AudibilityIndex = "index"
	// AudibilityScan is the brute-force all-nodes delivery scan.
	AudibilityScan = "scan"
)

// audibilityIndexEnabled resolves the Audibility option: the index is
// on unless the scan is explicitly selected.
func (c *Config) audibilityIndexEnabled() bool {
	return c.Audibility != AudibilityScan
}

// apBoresightDeg aims every AP antenna straight at the road (the road
// runs along y = 0 with APs set back at positive y).
const apBoresightDeg = -90

// DefaultConfig returns the paper's testbed configuration for a scheme.
func DefaultConfig(scheme Scheme) Config {
	cfg := Config{
		Seed:       1,
		Scheme:     scheme,
		NumAPs:     8,
		APSpacing:  7.5,
		APSetback:  18,
		FirstAPX:   0,
		RF:         rf.DefaultParams(),
		MMWave:     channel.DefaultMMWaveParams(),
		AP:         ap.DefaultConfig(),
		Controller: controller.DefaultConfig(),
		BaselineAP: baseline.DefaultAPConfig(),
		Roamer:     baseline.DefaultRoamerConfig(),
		Client:     client.DefaultConfig(),
		Backhaul:   backhaul.DefaultConfig(),
		Trunk:      deploy.DefaultTrunkConfig(),

		ClientClientLossDB: 20,
		APAPSenseSNRdB:     20,
		APAPSenseRangeM:    60,

		BoundaryZoneM: 40,
	}
	if scheme == Stock80211r {
		cfg.Roamer = baseline.Stock11rConfig()
	}
	return cfg
}

// Validate rejects configurations the simulator would silently
// mis-handle: empty deployments, degenerate geometry, a zero controller
// selection window, or zero-value RF parameters.
func (c *Config) Validate() error {
	if len(c.Segments) == 0 {
		if c.NumAPs <= 0 {
			return fmt.Errorf("core: NumAPs must be positive, got %d", c.NumAPs)
		}
		if c.APSpacing <= 0 {
			return fmt.Errorf("core: APSpacing must be positive, got %g", c.APSpacing)
		}
	}
	for i, s := range c.Segments {
		if s.NumAPs <= 0 {
			return fmt.Errorf("core: segment %d NumAPs must be positive, got %d", i, s.NumAPs)
		}
		if s.APSpacing < 0 || (s.APSpacing == 0 && c.APSpacing <= 0) {
			return fmt.Errorf("core: segment %d has no positive APSpacing (own %g, default %g)",
				i, s.APSpacing, c.APSpacing)
		}
	}
	if c.Scheme == WGTT && c.Controller.Window <= 0 {
		return fmt.Errorf("core: controller ESNR window must be positive, got %v", c.Controller.Window)
	}
	if c.RF.FreqHz <= 0 || c.RF.NoiseDBm >= 0 {
		return fmt.Errorf("core: RF params look unset (FreqHz %g, NoiseDBm %g); start from rf.DefaultParams",
			c.RF.FreqHz, c.RF.NoiseDBm)
	}
	switch c.Audibility {
	case "", AudibilityIndex, AudibilityScan:
	default:
		return fmt.Errorf("core: unknown audibility mode %q (want %q or %q)",
			c.Audibility, AudibilityIndex, AudibilityScan)
	}
	if !channel.Known(c.ChannelBackend) {
		return fmt.Errorf("core: unknown channel backend %q (have %v)",
			c.ChannelBackend, channel.Names())
	}
	if c.ChannelBackend != "" && c.ChannelBackend != channel.DefaultBackend && c.Scheme != WGTT {
		return fmt.Errorf("core: channel backend %q requires the WGTT scheme (the baselines model the 2.4 GHz testbed)",
			c.ChannelBackend)
	}
	if c.BoundaryInterference {
		if c.Domains == SingleLoop {
			return fmt.Errorf("core: BoundaryInterference needs domain mode (the single loop already shares one medium)")
		}
		if len(c.segmentGeoms()) < 2 {
			return fmt.Errorf("core: BoundaryInterference needs at least 2 segments")
		}
		if c.BoundaryZoneM <= 0 {
			return fmt.Errorf("core: BoundaryInterference needs a positive BoundaryZoneM, got %g", c.BoundaryZoneM)
		}
	}
	if c.Domains != SingleLoop && len(c.Segments) > 1 {
		if c.Scheme != WGTT {
			return fmt.Errorf("core: domain mode %v requires the WGTT scheme (baseline roamers assume one shared medium)", c.Domains)
		}
		if c.TraceCapacity > 0 {
			return fmt.Errorf("core: domain mode %v cannot share one trace log across domains; set TraceCapacity to 0", c.Domains)
		}
		if c.Trunk.PropDelay <= 0 {
			return fmt.Errorf("core: domain mode %v needs a positive trunk PropDelay for lookahead, got %v",
				c.Domains, c.Trunk.PropDelay)
		}
	}
	numSegs := len(c.segmentGeoms())
	if err := c.Trunk.Faults.Validate(numSegs); err != nil {
		return err
	}
	if c.Trunk.Faults.Active() && numSegs < 2 {
		return fmt.Errorf("core: trunk faults need a multi-segment deployment (no trunks to fault)")
	}
	if c.Federation.Enabled {
		if c.Scheme != WGTT {
			return fmt.Errorf("core: federation requires the WGTT scheme, got %v", c.Scheme)
		}
		if numSegs < 2 {
			return fmt.Errorf("core: federation needs at least 2 segments, got %d", numSegs)
		}
		if c.Federation.Ring && numSegs < 3 {
			return fmt.Errorf("core: a ring trunk needs at least 3 segments, got %d", numSegs)
		}
		for _, e := range c.Federation.ExtraTrunks {
			if e[0] == e[1] || e[0] < 0 || e[1] < 0 || e[0] >= numSegs || e[1] >= numSegs {
				return fmt.Errorf("core: extra trunk %d-%d out of range for %d segments", e[0], e[1], numSegs)
			}
		}
	} else if c.Federation.Ring || len(c.Federation.ExtraTrunks) > 0 {
		return fmt.Errorf("core: Federation.Ring/ExtraTrunks set but Federation.Enabled is false")
	}
	return nil
}

// ChannelModel instantiates the configured channel backend (experiments
// that sample links standalone use it; NewNetwork builds its own).
func (c *Config) ChannelModel() (channel.Model, error) {
	return channel.New(c.ChannelBackend, channel.ModelConfig{
		RF:                 c.RF,
		MMWave:             c.MMWave,
		BoresightDeg:       apBoresightDeg,
		ClientClientLossDB: c.ClientClientLossDB,
	})
}

// segmentGeoms resolves the deployment's per-segment geometry; an empty
// Segments list is the classic single segment.
func (c *Config) segmentGeoms() []deploy.Geometry {
	if len(c.Segments) == 0 {
		return []deploy.Geometry{{
			NumAPs: c.NumAPs, APSpacing: c.APSpacing,
			APSetback: c.APSetback, FirstAPX: c.FirstAPX,
		}}
	}
	return deploy.Resolve(c.Segments, c.FirstAPX, c.APSpacing, c.APSetback)
}

// TotalAPs returns the deployment-wide AP count.
func (c *Config) TotalAPs() int {
	if len(c.Segments) == 0 {
		return c.NumAPs
	}
	n := 0
	for _, s := range c.Segments {
		n += s.NumAPs
	}
	return n
}

// APPosition returns the mounting position of the AP with global id i.
func (c *Config) APPosition(i int) rf.Position {
	if len(c.Segments) == 0 {
		return rf.Position{X: c.FirstAPX + float64(i)*c.APSpacing, Y: c.APSetback}
	}
	geoms := c.segmentGeoms()
	for s, g := range geoms {
		if i < g.NumAPs || s == len(geoms)-1 {
			return rf.Position{X: g.FirstAPX + float64(i)*g.APSpacing, Y: g.APSetback}
		}
		i -= g.NumAPs
	}
	return rf.Position{} // unreachable
}

// RoadSpanX returns the x-range covered by the AP array.
func (c *Config) RoadSpanX() (lo, hi float64) {
	if len(c.Segments) == 0 {
		return c.FirstAPX, c.FirstAPX + float64(c.NumAPs-1)*c.APSpacing
	}
	geoms := c.segmentGeoms()
	last := geoms[len(geoms)-1]
	return geoms[0].FirstAPX, last.FirstAPX + float64(last.NumAPs-1)*last.APSpacing
}
