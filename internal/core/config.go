// Package core assembles a complete WGTT (or Enhanced-802.11r) roadside
// network: the eight-AP deployment geometry of Fig. 9, per-link radio
// channels, the shared medium, the Ethernet backhaul with controller and
// wired server, and the mobile clients. It is the paper's testbed in
// software and the substrate every experiment runs on.
package core

import (
	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/baseline"
	"wgtt/internal/client"
	"wgtt/internal/controller"
	"wgtt/internal/rf"
)

// Scheme selects the roaming system under test.
type Scheme int

// Schemes.
const (
	// WGTT is the paper's system.
	WGTT Scheme = iota
	// Enhanced80211r is the §5.1 comparison scheme.
	Enhanced80211r
	// Stock80211r is the §2 motivation behaviour (5 s history,
	// over-the-DS transition).
	Stock80211r
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case WGTT:
		return "WGTT"
	case Enhanced80211r:
		return "Enhanced 802.11r"
	case Stock80211r:
		return "Stock 802.11r"
	}
	return "Scheme(?)"
}

// Config describes a deployment.
type Config struct {
	Seed   int64
	Scheme Scheme

	// Geometry (§4, Fig. 9): NumAPs APs along the road at APSpacing,
	// set back APSetback meters from the near lane (which runs at
	// y = 0), boresights perpendicular to the road.
	NumAPs    int
	APSpacing float64
	APSetback float64
	FirstAPX  float64

	RF         rf.Params
	AP         ap.Config
	Controller controller.Config
	BaselineAP baseline.APConfig
	Roamer     baseline.RoamerConfig
	Client     client.Config
	Backhaul   backhaul.Config

	// TraceCapacity, when positive, enables the tcpdump-style event log
	// (Network.Trace) retaining this many most-recent events.
	TraceCapacity int

	// Cross-link budgets used only for carrier sense and interference.
	// Clients sit inside vehicles (extra penetration loss); APs hear
	// each other along the wall.
	ClientClientLossDB float64
	APAPSenseSNRdB     float64
	APAPSenseRangeM    float64
}

// DefaultConfig returns the paper's testbed configuration for a scheme.
func DefaultConfig(scheme Scheme) Config {
	cfg := Config{
		Seed:       1,
		Scheme:     scheme,
		NumAPs:     8,
		APSpacing:  7.5,
		APSetback:  18,
		FirstAPX:   0,
		RF:         rf.DefaultParams(),
		AP:         ap.DefaultConfig(),
		Controller: controller.DefaultConfig(),
		BaselineAP: baseline.DefaultAPConfig(),
		Roamer:     baseline.DefaultRoamerConfig(),
		Client:     client.DefaultConfig(),
		Backhaul:   backhaul.DefaultConfig(),

		ClientClientLossDB: 20,
		APAPSenseSNRdB:     20,
		APAPSenseRangeM:    60,
	}
	if scheme == Stock80211r {
		cfg.Roamer = baseline.Stock11rConfig()
	}
	return cfg
}

// APPosition returns AP i's mounting position.
func (c *Config) APPosition(i int) rf.Position {
	return rf.Position{X: c.FirstAPX + float64(i)*c.APSpacing, Y: c.APSetback}
}

// RoadSpanX returns the x-range covered by the AP array.
func (c *Config) RoadSpanX() (lo, hi float64) {
	return c.FirstAPX, c.FirstAPX + float64(c.NumAPs-1)*c.APSpacing
}

const (
	// Backhaul node ids.
	nodeController backhaul.NodeID = 0
	nodeServer     backhaul.NodeID = 1
	nodeFirstAP    backhaul.NodeID = 2
)
