package core

import (
	"fmt"
	"math"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/baseline"
	"wgtt/internal/channel"
	"wgtt/internal/client"
	"wgtt/internal/controller"
	"wgtt/internal/csi"
	"wgtt/internal/deploy"
	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
	"wgtt/internal/trace"
)

// Client couples a mobile station with its trajectory and per-port
// downlink demultiplexer.
type Client struct {
	*client.Client
	Traj   mobility.Trajectory
	Roamer *baseline.Roamer // baseline schemes only
	demux  map[uint16]func(packet.Packet)
}

// Handle registers a downlink consumer for a destination port on this
// client (a transport endpoint).
func (c *Client) Handle(port uint16, fn func(packet.Packet)) {
	c.demux[port] = fn
}

// Network is a fully wired deployment: the shared radio medium and
// clients on one side, and an ordered chain of road segments (each with
// its own controller/bridge, APs, and backhaul domain) on the other.
type Network struct {
	Cfg  Config
	Loop *sim.Loop

	// Coord drives per-segment execution domains (Config.Domains on a
	// multi-segment deployment); nil on the classic single-loop path.
	// When set, Loop is the wired-server domain's loop and Medium is nil
	// — the radio medium is partitioned per segment.
	Coord *sim.Coordinator

	Medium *mac.Medium
	// Deploy is the segment chain. Backhaul, Ctrl, APs, Bridge, and
	// BaseAPs below are convenience views over it: Backhaul/Ctrl/Bridge
	// are segment 0's (the only segment in the classic deployment), and
	// the AP slices aggregate every segment in global-id order.
	Deploy   *deploy.Deployment
	Backhaul *backhaul.Net

	Ctrl    *controller.Controller
	APs     []*ap.AP
	Bridge  *baseline.Bridge
	BaseAPs []*baseline.AP

	Clients []*Client

	// Trace is the optional event log (Config.TraceCapacity > 0).
	Trace *trace.Log
	// recs[i] is segment i's flight recorder (Config.FlightRecorder > 0);
	// entries are nil when disabled or for baseline planes. In domain
	// mode each recorder is written only by its segment's goroutine.
	recs []*trace.Recorder

	rng        *sim.RNG
	serverIPID uint16
	// model is the channel-model backend (Config.ChannelBackend); all
	// propagation, CSI synthesis, and the MCS ladder come from it.
	model channel.Model
	// sdOut is the reusable server-data shell for the single-loop
	// SendFromServer path (Send serializes synchronously).
	sdOut   packet.ServerData
	apNodes []*mac.Node
	// links[clientID][apIdx] is the radio channel realization.
	links       [][]channel.Link
	nodeKind    map[*mac.Node]nodeRef
	serverDemux map[uint16]func(packet.Packet)
	// Wired-server routing and de-duplication across segments.
	route        map[packet.IP]int
	serverDedup  map[packet.DedupKey]bool
	serverDedupQ []packet.DedupKey
	// ServerDuplicates counts uplink packets that reached the wired
	// server through more than one segment's controller.
	ServerDuplicates int

	// Domain-partitioned execution (Coord != nil).
	segs        []*segDomain
	serverToSeg []*sim.Mailbox
	// trunkChans numbers the directed trunk transports in TrunkLink
	// call order (deterministic — part of the cross-process schedule);
	// trunkWired marks mailboxes whose kindTrunk demux is registered.
	trunkChans []*trunkChannel
	trunkWired map[*sim.Mailbox]bool

	// Telemetry (Config.Telemetry; nil/empty when disabled). telSegs[i]
	// is segment i's scope — a root-shard view on the single-loop path,
	// a per-domain shard in domain mode; telRoot is the wired server's.
	tel     *telemetry.Registry
	telSegs []telemetry.Scope
	telRoot telemetry.Scope
}

type nodeRef struct {
	isAP bool
	idx  int
}

// NewNetwork builds and wires a deployment. Clients are added with
// AddClient before Run. The configuration is validated first; an
// invalid one returns a descriptive error.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := buildModel(&cfg)
	if err != nil {
		return nil, err
	}
	// The handoff latency band rides on the controller's config so the
	// deploy layer needs no extra plumbing; controllers only evaluate it
	// when a flight recorder is attached.
	cfg.Controller.HandoffBandLoMs = cfg.HandoffBandLoMs
	cfg.Controller.HandoffBandHiMs = cfg.HandoffBandHiMs
	if cfg.Domains != SingleLoop && len(cfg.segmentGeoms()) > 1 {
		return newDomainNetwork(cfg, model)
	}
	loop := sim.NewLoop()
	rng := sim.NewRNG(cfg.Seed)
	n := &Network{
		Cfg:         cfg,
		Loop:        loop,
		rng:         rng,
		model:       model,
		nodeKind:    make(map[*mac.Node]nodeRef),
		serverDemux: make(map[uint16]func(packet.Packet)),
		route:       make(map[packet.IP]int),
		serverDedup: make(map[packet.DedupKey]bool),
	}
	if cfg.TraceCapacity > 0 {
		n.Trace = trace.New(cfg.TraceCapacity)
	}
	if cfg.Telemetry {
		n.initTelemetrySingle(loop, len(cfg.segmentGeoms()))
	}
	n.Medium = mac.NewMedium(loop, &netChannel{n: n, loop: loop}, rng.Fork("medium"))
	if cfg.audibilityIndexEnabled() {
		n.Medium.SetAudibilityIndex(newAudIndex(n, loop))
	}
	fedTopo := cfg.federationTopology()

	d, err := deploy.Builder{
		Loop:        loop,
		Geoms:       cfg.segmentGeoms(),
		Backhaul:    cfg.Backhaul,
		Trunk:       cfg.Trunk,
		ExtraTrunks: cfg.extraTrunks(),
		FaultSeed:   cfg.Seed,
		Telemetry:   n.segTel,
		ServerHandler: func(si int) backhaul.Handler {
			return func(from backhaul.NodeID, msg packet.Message) {
				n.onServerBackhaul(si, from, msg)
			}
		},
		BuildPlane: func(seg *deploy.Segment) deploy.Plane {
			// The only scheme switch in the network: pick the plane.
			switch cfg.Scheme {
			case WGTT:
				rec := trace.NewRecorder(seg.Index, cfg.FlightRecorder)
				n.recs = append(n.recs, rec)
				p := deploy.NewWGTTPlane(seg, loop, n.Medium, n.Trace, rec,
					n.segTel(seg.Index), rng, cfg.AP, cfg.Controller)
				n.attachFederation(fedTopo, seg.Index, loop, p.Ctrl)
				if n.Ctrl == nil {
					n.Ctrl = p.Ctrl
				}
				for _, a := range p.APs {
					n.APs = append(n.APs, a)
					n.apNodes = append(n.apNodes, a.Node())
					n.nodeKind[a.Node()] = nodeRef{isAP: true, idx: int(a.ID)}
				}
				return p
			default:
				n.recs = append(n.recs, nil)
				p := deploy.NewBaselinePlane(seg, loop, n.Medium, rng, cfg.BaselineAP)
				if n.Bridge == nil {
					n.Bridge = p.Bridge
				}
				for _, a := range p.APs {
					n.BaseAPs = append(n.BaseAPs, a)
					n.apNodes = append(n.apNodes, a.Node())
					n.nodeKind[a.Node()] = nodeRef{isAP: true, idx: int(a.ID)}
				}
				return p
			}
		},
	}.Build()
	if err != nil {
		return nil, err
	}
	n.Deploy = d
	n.Backhaul = d.Segments[0].Backhaul
	return n, nil
}

// buildModel instantiates the configured channel backend and fills the
// plane configs' rate tables from it when the caller left them nil, so
// APs and clients transmit with the backend's MCS ladder.
func buildModel(cfg *Config) (channel.Model, error) {
	m, err := cfg.ChannelModel()
	if err != nil {
		return nil, err
	}
	if cfg.AP.Rates == nil {
		cfg.AP.Rates = m.Rates()
	}
	if cfg.Client.Rates == nil {
		cfg.Client.Rates = m.Rates()
	}
	return m, nil
}

// Model exposes the active channel backend (experiments sample it for
// heatmaps and diagnostics).
func (n *Network) Model() channel.Model { return n.model }

// MustNewNetwork is NewNetwork for callers holding an
// already-validated configuration; it panics on error.
func MustNewNetwork(cfg Config) *Network {
	n, err := NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// TotalAPs is the deployment-wide AP count.
func (n *Network) TotalAPs() int { return len(n.apNodes) }

// Controllers returns every segment's controller (WGTT only; nil
// entries never occur — baselines return an empty slice).
func (n *Network) Controllers() []*controller.Controller {
	var cs []*controller.Controller
	for _, s := range n.Deploy.Segments {
		if p, ok := s.Plane.(*deploy.WGTTPlane); ok {
			cs = append(cs, p.Ctrl)
		}
	}
	return cs
}

// Bridges returns every segment's baseline bridge.
func (n *Network) Bridges() []*baseline.Bridge {
	var bs []*baseline.Bridge
	for _, s := range n.Deploy.Segments {
		if p, ok := s.Plane.(*deploy.BaselinePlane); ok {
			bs = append(bs, p.Bridge)
		}
	}
	return bs
}

// AddClient attaches a mobile client following traj. Clients must be
// added before Run; the returned handle carries the transport hookup
// points.
func (n *Network) AddClient(traj mobility.Trajectory) *Client {
	id := len(n.Clients)
	loop, medium := n.Loop, n.Medium
	var home *segDomain
	if n.Coord != nil {
		// Domain mode: the segment whose AP is nearest the start owns
		// the client's radio.
		home = n.segs[n.Deploy.SegmentOfAP(n.nearestAP(traj.Pos(0))).Index]
		loop, medium = home.dom.Loop, home.medium
	}
	cl := client.New(id, loop, medium, traj, n.Cfg.Client, n.rng.Fork(fmt.Sprintf("client%d", id)))
	c := &Client{Client: cl, Traj: traj, demux: make(map[uint16]func(packet.Packet))}
	cl.OnPacket = func(p packet.Packet) {
		if fn := c.demux[p.DstPort]; fn != nil {
			fn(p)
		}
	}
	n.nodeKind[cl.Node()] = nodeRef{isAP: false, idx: id}

	// Per-AP radio links for this client, in global AP order.
	total := n.TotalAPs()
	row := make([]channel.Link, total)
	for i := 0; i < total; i++ {
		row[i] = n.model.NewLink(n.Cfg.APPosition(i),
			n.rng.Fork(fmt.Sprintf("link-%d-%d", i, id)))
	}
	n.links = append(n.links, nil) // placeholder, replaced below
	n.links[id] = row
	n.Clients = append(n.Clients, c)

	// Association: the segment whose AP is nearest the client's start
	// owns it first; its plane registers the state (WGTT replicates
	// sta_info, baselines force-associate and return the roamer's
	// initial AP).
	pos := traj.Pos(n.Loop.Now())
	seg := n.Deploy.SegmentOfAP(n.nearestAP(pos))
	if node := seg.Plane.Associate(id, cl.Addr, cl.IP, pos); node != nil {
		c.Roamer = baseline.NewRoamer(n.Loop, n.Medium, cl, node, n.Cfg.Roamer)
	}
	n.route[cl.IP] = seg.Index
	if n.tel != nil {
		n.clientGauges(seg.Index, id)
	}
	if home != nil {
		home.acceptResident(c)
	}
	return c
}

// nearestAP returns the global AP id closest to pos.
func (n *Network) nearestAP(pos rf.Position) int {
	best, bestD := 0, math.Inf(1)
	for i := 0; i < n.TotalAPs(); i++ {
		if d := n.Cfg.APPosition(i).Distance(pos); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Run advances the network to the given virtual time.
func (n *Network) Run(until sim.Duration) {
	if n.Coord != nil {
		n.Coord.Run(sim.Time(until))
	} else {
		n.Loop.Run(sim.Time(until))
	}
	n.noteUnownedSpike(nil)
}

// ServerHandle registers an uplink consumer for a destination port at the
// wired server.
func (n *Network) ServerHandle(port uint16, fn func(packet.Packet)) {
	n.serverDemux[port] = fn
}

// SendFromServer injects a downlink packet at the wired server (the Wire
// for server-side transport endpoints). Like a real IP stack, the server
// host stamps the IP identification field from a single per-host counter
// shared by all its flows — the de-duplication key downstream depends on
// host-wide uniqueness, not per-connection uniqueness. The packet enters
// the backhaul of the segment currently routing the destination client.
func (n *Network) SendFromServer(p packet.Packet) {
	if p.Src.IsZero() {
		p.Src = packet.ServerIP
	}
	n.serverIPID++
	p.IPID = n.serverIPID
	si := 0
	if s, ok := n.route[p.Dst]; ok {
		si = s
	}
	if n.Coord != nil {
		// Cross the server→segment mailbox; the backhaul hop itself runs
		// in the segment domain (the kindServerSend handler registered in
		// wireServerSendEnvelopes). The envelope serializes later, so the
		// message cannot be scratch here.
		n.serverToSeg[si].Post(n.Loop.Now().Add(n.Cfg.Trunk.PropDelay),
			sim.Envelope{Kind: kindServerSend, Payload: &packet.ServerData{Inner: p}})
		return
	}
	// Single-loop path: Send serializes synchronously, so reuse a shell.
	n.sdOut = packet.ServerData{Inner: p}
	n.Deploy.Segments[si].Backhaul.Send(deploy.NodeServer, deploy.NodeController, &n.sdOut)
}

// onServerBackhaul receives uplink packets at the wired server's tap on
// segment si, and association updates that re-route a handed-off
// client's downlink. With several segments, a packet relayed by more
// than one controller is de-duplicated here on its (src IP, IP-ID) key.
func (n *Network) onServerBackhaul(si int, from backhaul.NodeID, msg packet.Message) {
	switch m := msg.(type) {
	case *packet.ServerData:
		if len(n.Deploy.Segments) > 1 {
			k := m.Inner.DedupKey()
			if n.serverDedup[k] {
				n.ServerDuplicates++
				return
			}
			n.serverDedup[k] = true
			n.serverDedupQ = append(n.serverDedupQ, k)
			if len(n.serverDedupQ) > serverDedupCap {
				delete(n.serverDedup, n.serverDedupQ[0])
				n.serverDedupQ = n.serverDedupQ[1:]
			}
		}
		if fn := n.serverDemux[m.Inner.DstPort]; fn != nil {
			fn(m.Inner)
		}
	case *packet.AssocState:
		if !m.IP.IsZero() {
			n.route[m.IP] = si
		}
	}
}

// serverDedupCap bounds the server-side de-duplication hashset.
const serverDedupCap = 1 << 16

// ServingAP reports which AP currently serves/associates client id (-1
// none), as a global AP id.
func (n *Network) ServingAP(clientID int) int {
	c := n.Clients[clientID]
	if c.Roamer != nil {
		// Baselines: the client-side view of the association.
		ref, ok := n.nodeKind[c.Roamer.Current()]
		if !ok || !ref.isAP {
			return -1
		}
		return ref.idx
	}
	for _, s := range n.Deploy.Segments {
		if id := s.Plane.ServingAP(c.Addr); id >= 0 {
			return id
		}
	}
	return -1
}

// LinkESNRdB returns the instantaneous effective SNR of the ap↔client
// link at the client's current position — ground truth for oracle
// comparisons (Table 2) and the Fig. 2 traces.
func (n *Network) LinkESNRdB(apIdx, clientID int) float64 {
	var snrs [rf.NumSubcarriers]float64
	now := n.Loop.Now()
	pos := n.Clients[clientID].Traj.Pos(now)
	n.links[clientID][apIdx].SubcarrierSNRsDB(now, pos, snrs[:])
	return csi.EffectiveSNRdB(snrs[:], csi.RefModulation)
}

// OracleBestAP returns the AP with maximal instantaneous ESNR to the
// client.
func (n *Network) OracleBestAP(clientID int) int {
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < n.TotalAPs(); i++ {
		if v := n.LinkESNRdB(i, clientID); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// netChannel implements mac.Channel over the deployment geometry for one
// radio domain: the whole network on the single-loop path, or one
// segment's medium partition in domain mode. Positions are sampled on the
// domain's own clock so concurrent domains never read another loop.
type netChannel struct {
	n    *Network
	loop *sim.Loop
}

// SubcarrierSNRs implements mac.Channel.
func (nc *netChannel) SubcarrierSNRs(tx, rx *mac.Node, dst []float64) bool {
	n := nc.n
	tref, tok := n.nodeKind[tx]
	rref, rok := n.nodeKind[rx]
	if !tok || !rok {
		return false
	}
	switch {
	case tref.isAP && !rref.isAP:
		// Downlink: AP → client.
		now := nc.loop.Now()
		pos := n.Clients[rref.idx].Traj.Pos(now)
		n.links[rref.idx][tref.idx].SubcarrierSNRsDB(now, pos, dst)
		return true
	case !tref.isAP && rref.isAP:
		// Uplink: reciprocal channel.
		now := nc.loop.Now()
		pos := n.Clients[tref.idx].Traj.Pos(now)
		n.links[tref.idx][rref.idx].SubcarrierSNRsDB(now, pos, dst)
		return true
	case !tref.isAP && !rref.isAP:
		snr := nc.clientClientSNR(tref.idx, rref.idx)
		if snr < -5 {
			return false
		}
		for i := range dst {
			dst[i] = snr
		}
		return true
	default:
		// AP ↔ AP: only sensing matters; give them a flat strong
		// channel within range.
		snr := nc.SenseSNRdB(tx, rx)
		if snr < -5 {
			return false
		}
		for i := range dst {
			dst[i] = snr
		}
		return true
	}
}

// SenseSNRdB implements mac.Channel (large-scale only).
func (nc *netChannel) SenseSNRdB(tx, rx *mac.Node) float64 {
	n := nc.n
	tref, tok := n.nodeKind[tx]
	rref, rok := n.nodeKind[rx]
	if !tok || !rok {
		return -100
	}
	switch {
	case tref.isAP && !rref.isAP:
		now := nc.loop.Now()
		pos := n.Clients[rref.idx].Traj.Pos(now)
		return n.links[rref.idx][tref.idx].MeanSNRdB(now, pos)
	case !tref.isAP && rref.isAP:
		now := nc.loop.Now()
		pos := n.Clients[tref.idx].Traj.Pos(now)
		return n.links[tref.idx][rref.idx].MeanSNRdB(now, pos)
	case !tref.isAP && !rref.isAP:
		return nc.clientClientSNR(tref.idx, rref.idx)
	default:
		a := n.Cfg.APPosition(tref.idx)
		b := n.Cfg.APPosition(rref.idx)
		if a.Distance(b) <= n.Cfg.APAPSenseRangeM {
			return n.Cfg.APAPSenseSNRdB
		}
		return -10
	}
}

// DetectHeadroomDB implements mac.DetectHeadroomer by delegating to the
// backend's analytic constructive-fading bound. It licenses the medium's
// cheap large-scale rejection of implausible receivers.
func (nc *netChannel) DetectHeadroomDB() float64 {
	return nc.n.model.DetectHeadroomDB()
}

// clientClientSNR is the vehicle-to-vehicle budget (the backend's flat
// client↔client path).
func (nc *netChannel) clientClientSNR(a, b int) float64 {
	n := nc.n
	pa := n.Clients[a].Traj.Pos(nc.loop.Now())
	pb := n.Clients[b].Traj.Pos(nc.loop.Now())
	return n.model.ClientClientSNRdB(pa.Distance(pb))
}
