package core

import (
	"fmt"
	"math"

	"wgtt/internal/ap"
	"wgtt/internal/backhaul"
	"wgtt/internal/baseline"
	"wgtt/internal/client"
	"wgtt/internal/controller"
	"wgtt/internal/csi"
	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

// Client couples a mobile station with its trajectory and per-port
// downlink demultiplexer.
type Client struct {
	*client.Client
	Traj   mobility.Trajectory
	Roamer *baseline.Roamer // baseline schemes only
	demux  map[uint16]func(packet.Packet)
}

// Handle registers a downlink consumer for a destination port on this
// client (a transport endpoint).
func (c *Client) Handle(port uint16, fn func(packet.Packet)) {
	c.demux[port] = fn
}

// Network is a fully wired deployment.
type Network struct {
	Cfg  Config
	Loop *sim.Loop

	Medium   *mac.Medium
	Backhaul *backhaul.Net

	// Scheme-specific planes (exactly one pair is non-nil).
	Ctrl    *controller.Controller
	APs     []*ap.AP
	Bridge  *baseline.Bridge
	BaseAPs []*baseline.AP

	Clients []*Client

	// Trace is the optional event log (Config.TraceCapacity > 0).
	Trace *trace.Log

	rng        *sim.RNG
	serverIPID uint16
	apNodes    []*mac.Node
	// links[apIdx][clientID] is the radio channel realization.
	links       [][]*rf.Link
	nodeKind    map[*mac.Node]nodeRef
	serverDemux map[uint16]func(packet.Packet)
}

type nodeRef struct {
	isAP bool
	idx  int
}

// NewNetwork builds and wires a deployment. Clients are added with
// AddClient before Run.
func NewNetwork(cfg Config) *Network {
	loop := sim.NewLoop()
	rng := sim.NewRNG(cfg.Seed)
	n := &Network{
		Cfg:         cfg,
		Loop:        loop,
		rng:         rng,
		nodeKind:    make(map[*mac.Node]nodeRef),
		serverDemux: make(map[uint16]func(packet.Packet)),
	}
	if cfg.TraceCapacity > 0 {
		n.Trace = trace.New(cfg.TraceCapacity)
	}
	n.Medium = mac.NewMedium(loop, (*netChannel)(n), rng.Fork("medium"))
	n.Backhaul = backhaul.New(loop, cfg.Backhaul)
	n.Backhaul.AddNode(nodeServer, n.onServerBackhaul)

	fab := &fabric{n: n}
	switch cfg.Scheme {
	case WGTT:
		n.Ctrl = controller.New(loop, n.Backhaul, nodeController, fab, cfg.NumAPs, cfg.Controller)
		n.Ctrl.Trace = n.Trace
		for i := 0; i < cfg.NumAPs; i++ {
			a := ap.New(uint16(i), cfg.APPosition(i), loop, n.Medium, n.Backhaul,
				nodeFirstAP+backhaul.NodeID(i), fab, cfg.AP, rng.Fork(fmt.Sprintf("ap%d", i)))
			a.Trace = n.Trace
			n.APs = append(n.APs, a)
			n.apNodes = append(n.apNodes, a.Node())
			n.nodeKind[a.Node()] = nodeRef{isAP: true, idx: i}
		}
	default:
		n.Bridge = baseline.NewBridge(loop, n.Backhaul, nodeController, fab, nodeServer, cfg.NumAPs)
		for i := 0; i < cfg.NumAPs; i++ {
			a := baseline.NewAP(uint16(i), cfg.APPosition(i), loop, n.Medium, n.Backhaul,
				nodeFirstAP+backhaul.NodeID(i), fab, cfg.BaselineAP, rng.Fork(fmt.Sprintf("bap%d", i)))
			n.BaseAPs = append(n.BaseAPs, a)
			n.apNodes = append(n.apNodes, a.Node())
			n.nodeKind[a.Node()] = nodeRef{isAP: true, idx: i}
		}
	}
	return n
}

// AddClient attaches a mobile client following traj. Clients must be
// added before Run; the returned handle carries the transport hookup
// points.
func (n *Network) AddClient(traj mobility.Trajectory) *Client {
	id := len(n.Clients)
	cl := client.New(id, n.Loop, n.Medium, traj, n.Cfg.Client, n.rng.Fork(fmt.Sprintf("client%d", id)))
	c := &Client{Client: cl, Traj: traj, demux: make(map[uint16]func(packet.Packet))}
	cl.OnPacket = func(p packet.Packet) {
		if fn := c.demux[p.DstPort]; fn != nil {
			fn(p)
		}
	}
	n.nodeKind[cl.Node()] = nodeRef{isAP: false, idx: id}

	// Per-AP radio links for this client.
	row := make([]*rf.Link, n.Cfg.NumAPs)
	for i := 0; i < n.Cfg.NumAPs; i++ {
		row[i] = rf.NewLink(n.Cfg.RF, n.Cfg.APPosition(i),
			rf.DefaultParabolic(-90), // boresight straight at the road
			rf.Omni{},
			n.rng.Fork(fmt.Sprintf("link-%d-%d", i, id)))
	}
	n.links = append(n.links, nil) // placeholder, replaced below
	n.links[id] = row
	n.Clients = append(n.Clients, c)

	// Association: WGTT replicates state and registers with the
	// controller; baselines force-associate with the nearest AP.
	switch n.Cfg.Scheme {
	case WGTT:
		n.Ctrl.RegisterClient(cl.Addr, cl.IP)
		// §4.3: the first AP shares sta_info with its peers.
		n.Backhaul.Broadcast(nodeController, &packet.AssocState{
			Client: cl.Addr, IP: cl.IP, AID: uint16(id + 1), State: packet.StateAssociated,
		})
	default:
		best := n.nearestAP(traj.Pos(n.Loop.Now()))
		n.BaseAPs[best].ForceAssociate(cl.Addr, cl.IP)
		n.Bridge.RegisterClient(cl.Addr, cl.IP)
		c.Roamer = baseline.NewRoamer(n.Loop, n.Medium, cl, n.apNodes[best], n.Cfg.Roamer)
	}
	return c
}

// nearestAP returns the AP index closest to pos.
func (n *Network) nearestAP(pos rf.Position) int {
	best, bestD := 0, math.Inf(1)
	for i := 0; i < n.Cfg.NumAPs; i++ {
		if d := n.Cfg.APPosition(i).Distance(pos); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Run advances the network to the given virtual time.
func (n *Network) Run(until sim.Duration) { n.Loop.Run(sim.Time(until)) }

// ServerHandle registers an uplink consumer for a destination port at the
// wired server.
func (n *Network) ServerHandle(port uint16, fn func(packet.Packet)) {
	n.serverDemux[port] = fn
}

// SendFromServer injects a downlink packet at the wired server (the Wire
// for server-side transport endpoints). Like a real IP stack, the server
// host stamps the IP identification field from a single per-host counter
// shared by all its flows — the de-duplication key downstream depends on
// host-wide uniqueness, not per-connection uniqueness.
func (n *Network) SendFromServer(p packet.Packet) {
	if p.Src.IsZero() {
		p.Src = packet.ServerIP
	}
	n.serverIPID++
	p.IPID = n.serverIPID
	n.Backhaul.Send(nodeServer, nodeController, &packet.ServerData{Inner: p})
}

// onServerBackhaul receives uplink packets at the wired server.
func (n *Network) onServerBackhaul(from backhaul.NodeID, msg packet.Message) {
	m, ok := msg.(*packet.ServerData)
	if !ok {
		return
	}
	if fn := n.serverDemux[m.Inner.DstPort]; fn != nil {
		fn(m.Inner)
	}
}

// ServingAP reports which AP currently serves/associates client id (-1
// none).
func (n *Network) ServingAP(clientID int) int {
	c := n.Clients[clientID]
	switch n.Cfg.Scheme {
	case WGTT:
		return n.Ctrl.ServingAP(c.Addr)
	default:
		if c.Roamer == nil {
			return -1
		}
		ref, ok := n.nodeKind[c.Roamer.Current()]
		if !ok || !ref.isAP {
			return -1
		}
		return ref.idx
	}
}

// LinkESNRdB returns the instantaneous effective SNR of the ap↔client
// link at the client's current position — ground truth for oracle
// comparisons (Table 2) and the Fig. 2 traces.
func (n *Network) LinkESNRdB(apIdx, clientID int) float64 {
	var snrs [rf.NumSubcarriers]float64
	pos := n.Clients[clientID].Traj.Pos(n.Loop.Now())
	n.links[clientID][apIdx].SubcarrierSNRsDB(pos, snrs[:])
	return csi.EffectiveSNRdB(snrs[:], csi.RefModulation)
}

// OracleBestAP returns the AP with maximal instantaneous ESNR to the
// client.
func (n *Network) OracleBestAP(clientID int) int {
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < n.Cfg.NumAPs; i++ {
		if v := n.LinkESNRdB(i, clientID); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// fabric implements ap.Fabric, controller.Fabric and baseline.Fabric.
type fabric struct{ n *Network }

// APNode maps a WGTT AP id to its backhaul node.
func (f *fabric) APNode(apID uint16) backhaul.NodeID {
	return nodeFirstAP + backhaul.NodeID(apID)
}

// APByMAC resolves an AP's layer-2 address.
func (f *fabric) APByMAC(addr packet.MAC) (backhaul.NodeID, bool) {
	for i := 0; i < f.n.Cfg.NumAPs; i++ {
		if packet.APMAC(i) == addr {
			return nodeFirstAP + backhaul.NodeID(i), true
		}
	}
	return 0, false
}

// Controller returns the controller's backhaul node.
func (f *fabric) Controller() backhaul.NodeID { return nodeController }

// Server returns the wired server's backhaul node.
func (f *fabric) Server() backhaul.NodeID { return nodeServer }

// Bridge returns the baseline bridge's backhaul node.
func (f *fabric) Bridge() backhaul.NodeID { return nodeController }

// netChannel implements mac.Channel over the deployment geometry.
type netChannel Network

// SubcarrierSNRs implements mac.Channel.
func (nc *netChannel) SubcarrierSNRs(tx, rx *mac.Node, dst []float64) bool {
	n := (*Network)(nc)
	tref, tok := n.nodeKind[tx]
	rref, rok := n.nodeKind[rx]
	if !tok || !rok {
		return false
	}
	switch {
	case tref.isAP && !rref.isAP:
		// Downlink: AP → client.
		pos := n.Clients[rref.idx].Traj.Pos(n.Loop.Now())
		n.links[rref.idx][tref.idx].SubcarrierSNRsDB(pos, dst)
		return true
	case !tref.isAP && rref.isAP:
		// Uplink: reciprocal channel.
		pos := n.Clients[tref.idx].Traj.Pos(n.Loop.Now())
		n.links[tref.idx][rref.idx].SubcarrierSNRsDB(pos, dst)
		return true
	case !tref.isAP && !rref.isAP:
		snr := n.clientClientSNR(tref.idx, rref.idx)
		if snr < -5 {
			return false
		}
		for i := range dst {
			dst[i] = snr
		}
		return true
	default:
		// AP ↔ AP: only sensing matters; give them a flat strong
		// channel within range.
		snr := nc.SenseSNRdB(tx, rx)
		if snr < -5 {
			return false
		}
		for i := range dst {
			dst[i] = snr
		}
		return true
	}
}

// SenseSNRdB implements mac.Channel (large-scale only).
func (nc *netChannel) SenseSNRdB(tx, rx *mac.Node) float64 {
	n := (*Network)(nc)
	tref, tok := n.nodeKind[tx]
	rref, rok := n.nodeKind[rx]
	if !tok || !rok {
		return -100
	}
	switch {
	case tref.isAP && !rref.isAP:
		pos := n.Clients[rref.idx].Traj.Pos(n.Loop.Now())
		return n.links[rref.idx][tref.idx].MeanSNRdB(pos)
	case !tref.isAP && rref.isAP:
		pos := n.Clients[tref.idx].Traj.Pos(n.Loop.Now())
		return n.links[tref.idx][rref.idx].MeanSNRdB(pos)
	case !tref.isAP && !rref.isAP:
		return n.clientClientSNR(tref.idx, rref.idx)
	default:
		a := n.Cfg.APPosition(tref.idx)
		b := n.Cfg.APPosition(rref.idx)
		if a.Distance(b) <= n.Cfg.APAPSenseRangeM {
			return n.Cfg.APAPSenseSNRdB
		}
		return -10
	}
}

// clientClientSNR is the vehicle-to-vehicle budget: omni antennas, double
// in-vehicle penetration, log-distance path loss.
func (n *Network) clientClientSNR(a, b int) float64 {
	pa := n.Clients[a].Traj.Pos(n.Loop.Now())
	pb := n.Clients[b].Traj.Pos(n.Loop.Now())
	d := pa.Distance(pb)
	if d < 1 {
		d = 1
	}
	pl := n.Cfg.RF.RefLossDB + 10*n.Cfg.RF.PathLossExp*math.Log10(d)
	return n.Cfg.RF.TxPowerDBm - pl - n.Cfg.ClientClientLossDB - n.Cfg.RF.NoiseDBm
}
