package core

import (
	"fmt"
	"strings"
	"testing"

	"wgtt/internal/csi"
	"wgtt/internal/deploy"
	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// indexRideSignature rides two UDP clients across a three-segment corridor
// with the audibility index on or off and returns a byte-exact signature:
// what each sink saw plus the full telemetry snapshot text.
func indexRideSignature(t *testing.T, seed int64, mode DomainMode, noIndex bool) string {
	t.Helper()
	cfg := DefaultConfig(WGTT)
	cfg.Seed = seed
	cfg.Segments = []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}, {NumAPs: 4}}
	cfg.Domains = mode
	cfg.Telemetry = true
	if noIndex {
		cfg.Audibility = AudibilityScan
	}
	n := MustNewNetwork(cfg)

	var sinks []*transport.UDPSink
	for i, traj := range []mobility.Trajectory{
		mobility.Drive(-5, 0, 25), mobility.Drive(-13, 0, 25),
	} {
		c := n.AddClient(traj)
		sink := transport.NewUDPSink(c.Client)
		port := uint16(9001 + 2*i)
		c.Handle(port, func(p packet.Packet) { sink.Receive(p) })
		src := transport.NewUDPSource(n.Loop, n.SendFromServer,
			packet.ServerIP, c.IP, 9000, port, 15, 1400)
		n.Loop.After(100*sim.Millisecond, src.Start)
		sinks = append(sinks, sink)
	}
	n.Run(6 * sim.Second)

	var sb strings.Builder
	for _, s := range sinks {
		fmt.Fprintf(&sb, "%d:%v;", s.Bytes, s.LossRate())
	}
	if snap := n.MetricsSnapshot(); snap != nil {
		if err := snap.WriteText(&sb); err != nil {
			t.Fatalf("telemetry snapshot: %v", err)
		}
	}
	return sb.String()
}

// TestAudibilityIndexParity pins the tentpole guarantee of the spatial
// audibility index: with the index on, every run — serial domains,
// parallel domains, seeds 1–3 — produces byte-identical delivery figures
// AND byte-identical telemetry to the brute-force all-nodes scan. The
// index is a pure prefilter; it must never change what the medium does.
func TestAudibilityIndexParity(t *testing.T) {
	if testing.Short() {
		t.Skip("four 6 s corridor rides per seed")
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, mode := range []DomainMode{DomainsSerial, DomainsParallel} {
			on := indexRideSignature(t, seed, mode, false)
			off := indexRideSignature(t, seed, mode, true)
			if on != off {
				i := 0
				for i < len(on) && i < len(off) && on[i] == off[i] {
					i++
				}
				lo := i - 30
				if lo < 0 {
					lo = 0
				}
				t.Errorf("seed %d mode %v: index-on and index-off diverge at byte %d:\n  on:  …%s…\n  off: …%s…",
					seed, mode, i, clip(on, lo, i+30), clip(off, lo, i+30))
			}
		}
	}
}

func clip(s string, lo, hi int) string {
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestAudibilityIndexNeverSkipsAudible is the soundness property behind
// the parity guarantee: at no point during a ride may the index leave a
// node unmarked whose brute-force channel evaluation could still detect
// the transmission. For every (tx, rx) pair the index skips, the full
// per-subcarrier evaluation must land below the preamble-detection
// threshold at every modulation.
func TestAudibilityIndexNeverSkipsAudible(t *testing.T) {
	if testing.Short() {
		t.Skip("samples a 4 s three-segment ride")
	}
	cfg := DefaultConfig(WGTT)
	cfg.Seed = 7
	cfg.Segments = []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}, {NumAPs: 4}}
	n := MustNewNetwork(cfg)
	for _, traj := range []mobility.Trajectory{
		mobility.Drive(-5, 0, 25),
		mobility.Drive(-20, 0, 40),
		mobility.Drive(95, 0, -25), // against traffic: exercises both box edges
	} {
		n.AddClient(traj)
	}

	// A private index replica registered in the same order as the
	// medium; bits address nodes via Node.Seq, so the mapping matches.
	ix := newAudIndex(n, n.Loop)
	var nodes []*mac.Node
	for _, a := range n.apNodes {
		nodes = append(nodes, a)
	}
	for _, c := range n.Clients {
		nodes = append(nodes, c.Node())
	}
	for _, nd := range nodes {
		ix.Register(nd)
	}

	nc := &netChannel{n: n, loop: n.Loop}
	mods := []csi.Modulation{csi.BPSK, csi.QPSK, csi.QAM16, csi.QAM64}
	bits := make([]uint64, (len(nodes)+255)/64+1)
	var snrs [rf.NumSubcarriers]float64

	checked, skipped := 0, 0
	for step := 0; step < 40; step++ {
		n.Run(sim.Duration(step+1) * 100 * sim.Millisecond)
		for _, tx := range nodes {
			for i := range bits {
				bits[i] = 0
			}
			ix.MarkAudible(tx, bits)
			for _, rx := range nodes {
				if rx == tx {
					continue
				}
				checked++
				seq := rx.Seq()
				if bits[seq>>6]&(1<<(seq&63)) != 0 {
					continue
				}
				skipped++
				if !nc.SubcarrierSNRs(tx, rx, snrs[:]) {
					continue
				}
				for _, m := range mods {
					if esnr := csi.EffectiveSNRdB(snrs[:], m); esnr >= mac.DetectThresholdDB {
						t.Fatalf("step %d: index skipped %s→%s but %v ESNR %.2f dB ≥ detect threshold %v",
							step, tx.Name, rx.Name, m, esnr, mac.DetectThresholdDB)
					}
				}
			}
		}
	}
	if skipped == 0 {
		t.Fatalf("index never skipped a pair across %d checks; prefilter is vacuous", checked)
	}
	t.Logf("index skipped %d of %d pair evaluations, all verified undetectable", skipped, checked)
}
