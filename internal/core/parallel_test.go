package core

import (
	"fmt"
	"testing"

	"wgtt/internal/deploy"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// domainRideSignature rides two UDP clients across a three-segment
// corridor in the given domain mode and returns a byte-exact signature of
// what each sink saw. Equal signatures mean the serial and parallel
// domain executions delivered the same packets at the same virtual times.
func domainRideSignature(t *testing.T, seed int64, mode DomainMode, prop sim.Duration) string {
	t.Helper()
	cfg := DefaultConfig(WGTT)
	cfg.Seed = seed
	cfg.Segments = []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}, {NumAPs: 4}}
	cfg.Domains = mode
	cfg.Trunk.PropDelay = prop
	n := MustNewNetwork(cfg)

	var sinks []*transport.UDPSink
	for i, traj := range []mobility.Trajectory{
		mobility.Drive(-5, 0, 25), mobility.Drive(-13, 0, 25),
	} {
		c := n.AddClient(traj)
		// The sink lives client-side, so its clock must be the client's
		// (its owning segment domain's loop, wherever the client is).
		sink := transport.NewUDPSink(c.Client)
		port := uint16(9001 + 2*i)
		c.Handle(port, func(p packet.Packet) { sink.Receive(p) })
		src := transport.NewUDPSource(n.Loop, n.SendFromServer,
			packet.ServerIP, c.IP, 9000, port, 15, 1400)
		n.Loop.After(100*sim.Millisecond, src.Start)
		sinks = append(sinks, sink)
	}
	n.Run(8 * sim.Second)

	sig := ""
	for _, s := range sinks {
		sig += fmt.Sprintf("%d:%v;", s.Bytes, s.LossRate())
	}
	return sig
}

// TestDomainParitySerialParallel pins the conservative-synchronization
// guarantee at the core layer: per-segment domains produce bit-identical
// results whether they run on one goroutine or one per domain.
func TestDomainParitySerialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("two 8 s corridor rides per seed")
	}
	for seed := int64(1); seed <= 3; seed++ {
		prop := DefaultConfig(WGTT).Trunk.PropDelay
		serial := domainRideSignature(t, seed, DomainsSerial, prop)
		parallel := domainRideSignature(t, seed, DomainsParallel, prop)
		if serial != parallel {
			t.Errorf("seed %d: serial %q != parallel %q", seed, serial, parallel)
		}
	}
}

// TestDomainParityRandomTrunkDelays stresses the same guarantee across
// randomized lookaheads: the trunk propagation delay (and with it the
// synchronization round width, the mailbox minimum latency, and the
// client-migration latency) is drawn per seed, and the serial and
// parallel executions must still agree bit for bit. Run under -race this
// also hunts cross-domain data races in the round barriers.
func TestDomainParityRandomTrunkDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("two 8 s corridor rides per seed")
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := sim.NewRNG(seed).Fork("trunk-delay")
		prop := 50*sim.Microsecond + sim.Duration(rng.Intn(8))*75*sim.Microsecond
		serial := domainRideSignature(t, seed, DomainsSerial, prop)
		parallel := domainRideSignature(t, seed, DomainsParallel, prop)
		if serial != parallel {
			t.Errorf("seed %d (prop %v): serial %q != parallel %q",
				seed, prop, serial, parallel)
		}
	}
}

// TestDomainModeValidation pins the configurations domain mode refuses.
func TestDomainModeValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(WGTT)
		cfg.Segments = []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}}
		cfg.Domains = DomainsParallel
		return cfg
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid domain config rejected: %v", err)
	}
	bad := base()
	bad.Scheme = Enhanced80211r
	bad.Roamer = DefaultConfig(Enhanced80211r).Roamer
	if bad.Validate() == nil {
		t.Error("accepted a baseline scheme in domain mode")
	}
	bad = base()
	bad.TraceCapacity = 128
	if bad.Validate() == nil {
		t.Error("accepted a shared trace log in domain mode")
	}
	bad = base()
	bad.Trunk.PropDelay = 0
	if bad.Validate() == nil {
		t.Error("accepted a zero-lookahead trunk in domain mode")
	}
}
