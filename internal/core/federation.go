package core

import (
	"wgtt/internal/controller"
	"wgtt/internal/federation"
	"wgtt/internal/sim"
	"wgtt/internal/telemetry"
)

// This file wires the federation layer (Config.Federation) into both
// construction paths: one immutable Topology shared by every segment,
// and one federation.Node per segment living on that segment's loop.

// extraTrunks resolves the non-adjacent trunk pairs: the configured
// bypasses plus the ring-closure trunk between the first and last
// segments. Nil when federation is disabled.
func (c *Config) extraTrunks() [][2]int {
	if !c.Federation.Enabled {
		return nil
	}
	extra := append([][2]int(nil), c.Federation.ExtraTrunks...)
	if c.Federation.Ring {
		extra = append(extra, [2]int{0, len(c.segmentGeoms()) - 1})
	}
	return extra
}

// federationTopology builds the shared trunk graph, mirroring the
// deploy-level outage schedule so the router steers around downed
// trunks. Nil when federation is disabled.
func (c *Config) federationTopology() *federation.Topology {
	if !c.Federation.Enabled {
		return nil
	}
	var outs []federation.EdgeOutage
	for _, o := range c.Trunk.Faults.Outages {
		outs = append(outs, federation.EdgeOutage{A: o.A, B: o.B, Start: o.Start, End: o.End})
	}
	return federation.NewTopology(len(c.segmentGeoms()), c.extraTrunks(), outs)
}

// attachFederation builds segment seg's federation node on its loop and
// binds it to the segment controller. No-op when topo is nil.
func (n *Network) attachFederation(topo *federation.Topology, seg int, loop *sim.Loop, ctrl *controller.Controller) {
	if topo == nil {
		return
	}
	node := federation.NewNode(loop, seg, topo, n.Cfg.Federation)
	sc := n.segTel(seg)
	node.SetTelemetry(sc.Sub("fed"), sc.Spans("relocate"))
	ctrl.SetFederation(node)
}

// FederationNodes returns every segment's federation node in segment
// order; nil when federation is disabled.
func (n *Network) FederationNodes() []*federation.Node {
	var nodes []*federation.Node
	for _, c := range n.Controllers() {
		if f := c.Federation(); f != nil {
			nodes = append(nodes, f)
		}
	}
	return nodes
}

// Relocates sums completed directory re-locates across all segments.
func (n *Network) Relocates() int {
	total := 0
	for _, f := range n.FederationNodes() {
		total += f.Relocates
	}
	return total
}

// LostClients returns the ids of clients no controller currently owns —
// the acceptance invariant for fault-injected runs. Baseline clients
// (roamer-driven association) are never counted.
func (n *Network) LostClients() []int {
	ctrls := n.Controllers()
	var lost []int
	for id, c := range n.Clients {
		if c.Roamer != nil {
			continue
		}
		owned := false
		for _, ctrl := range ctrls {
			if ctrl.Owns(c.Addr) {
				owned = true
				break
			}
		}
		if !owned {
			lost = append(lost, id)
		}
	}
	return lost
}

// TrunkFaultDrops sums scheduled-outage and random-fault drops across
// every trunk direction via telemetry (0 when telemetry is off).
func (n *Network) TrunkFaultDrops() (outage, random int64) {
	snap := n.MetricsSnapshot()
	if snap == nil {
		return 0, 0
	}
	for _, c := range snap.Counters {
		switch {
		case hasSuffix(c.Name, "/trunk/outage_drops"):
			outage += c.Value
		case hasSuffix(c.Name, "/trunk/fault_drops"):
			random += c.Value
		}
	}
	return outage, random
}

// hasSuffix avoids importing strings for one call site.
func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// unownedGauge exposes the lost-client count in the metrics snapshot
// (evaluated only at quiescence, so cross-domain reads cannot race).
func (n *Network) unownedGauge(sc telemetry.Scope) {
	sc.GaugeFunc("clients_unowned", func() float64 { return float64(len(n.LostClients())) })
	sc.GaugeFunc("relocates", func() float64 { return float64(n.Relocates()) })
}
