package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"wgtt/internal/backhaul"
	"wgtt/internal/deploy"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// This file defines the typed envelope kinds the domain-partitioned
// network posts across sim.Mailboxes, with wire codecs for every kind
// that may cross a process boundary. The kinds mirror the four
// cross-domain interactions of parallel.go/network.go:
//
//   - kindTrunk: one trunk direction's control-plane message (Handoff,
//     AssocState, federation Routed/DirUpdate/DirQuery, ...), tagged
//     with the trunk channel id so trunks sharing a directed mailbox
//     (adjacent chain plus ring bypass) demultiplex.
//   - kindServerTap: a segment backhaul's server tap crossing into the
//     server domain (ServerData uplink plus control notifications).
//   - kindServerSend: the wired server's downlink injection into a
//     segment backhaul (ServerData).
//   - kindMigrate: the border patrol handing a client's radio to the
//     adjacent segment. The payload is the live *Client object graph —
//     necessarily local-only (nil Encode): a partition must keep every
//     segment a client can visit in one process.
//   - kindBoundary: a boundary-zone transmission summary for the
//     neighbour's noise floor (Config.BoundaryInterference).
//
// All wire-crossing payloads round-trip losslessly: packet messages
// marshal integer fields (Handoff scores via Float64bits), and the
// boundary summary is encoded below with Float64bits. CSIReport is the
// one lossy packet codec (centi-dB quantization), and it never crosses
// a mailbox — it rides the intra-segment backhaul only.

const (
	kindTrunk sim.EnvelopeKind = iota + 1
	kindServerTap
	kindServerSend
	kindMigrate
	kindBoundary
)

func init() {
	sim.RegisterEnvelope(kindTrunk, sim.EnvelopeCodec{
		Name: "trunk",
		Encode: func(p any, b []byte) []byte {
			tp := p.(*trunkPayload)
			b = binary.AppendUvarint(b, uint64(tp.ch))
			return tp.msg.Marshal(b)
		},
		Decode: func(b []byte) (any, error) {
			ch, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("trunk envelope: bad channel id")
			}
			m, err := packet.Decode(b[n:])
			if err != nil {
				return nil, err
			}
			return &trunkPayload{ch: int(ch), msg: m}, nil
		},
	})
	sim.RegisterEnvelope(kindServerTap, sim.EnvelopeCodec{
		Name: "server-tap",
		Encode: func(p any, b []byte) []byte {
			tp := p.(*serverTapPayload)
			b = binary.AppendUvarint(b, uint64(tp.seg))
			b = binary.AppendUvarint(b, uint64(tp.from))
			return tp.msg.Marshal(b)
		},
		Decode: func(b []byte) (any, error) {
			seg, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("server-tap envelope: bad segment")
			}
			b = b[n:]
			from, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("server-tap envelope: bad sender")
			}
			m, err := packet.Decode(b[n:])
			if err != nil {
				return nil, err
			}
			tp := &serverTapPayload{seg: int(seg), from: backhaul.NodeID(from)}
			if sd, ok := m.(*packet.ServerData); ok {
				tp.sd = *sd
				tp.msg = &tp.sd
			} else {
				tp.msg = m
			}
			return tp, nil
		},
	})
	sim.RegisterEnvelope(kindServerSend, sim.EnvelopeCodec{
		Name: "server-send",
		Encode: func(p any, b []byte) []byte {
			return p.(*packet.ServerData).Marshal(b)
		},
		Decode: func(b []byte) (any, error) {
			m, err := packet.Decode(b)
			if err != nil {
				return nil, err
			}
			sd, ok := m.(*packet.ServerData)
			if !ok {
				return nil, fmt.Errorf("server-send envelope: decoded %T", m)
			}
			return sd, nil
		},
	})
	// Migration payloads are live object graphs; local-only by design.
	sim.RegisterEnvelope(kindMigrate, sim.EnvelopeCodec{Name: "migrate"})
	sim.RegisterEnvelope(kindBoundary, sim.EnvelopeCodec{
		Name: "boundary-tx",
		Encode: func(p any, b []byte) []byte {
			r := p.(*remoteTx)
			b = binary.BigEndian.AppendUint64(b, uint64(r.start))
			b = binary.BigEndian.AppendUint64(b, uint64(r.end))
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.pos.X))
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.pos.Y))
			if r.isAP {
				return append(b, 1)
			}
			return append(b, 0)
		},
		Decode: func(b []byte) (any, error) {
			if len(b) != 33 {
				return nil, fmt.Errorf("boundary-tx envelope: %d bytes", len(b))
			}
			return &remoteTx{
				start: sim.Time(binary.BigEndian.Uint64(b)),
				end:   sim.Time(binary.BigEndian.Uint64(b[8:])),
				pos: rf.Position{
					X: math.Float64frombits(binary.BigEndian.Uint64(b[16:])),
					Y: math.Float64frombits(binary.BigEndian.Uint64(b[24:])),
				},
				isAP: b[32] == 1,
			}, nil
		},
	})
}

// trunkPayload is one kindTrunk envelope: the channel id of the
// TrunkTransport that posted it plus the trunk message itself.
type trunkPayload struct {
	ch  int
	msg packet.Message
}

// serverTapPayload is one kindServerTap envelope. For ServerData the
// payload embeds the copy (the backhaul hands the tap its decode
// scratch, which must not outlive the handler call) and msg aliases it;
// for control messages msg is the message itself.
type serverTapPayload struct {
	seg  int
	from backhaul.NodeID
	msg  packet.Message
	sd   packet.ServerData
}

// trunkChannel is one directed trunk's demultiplexing channel over a
// shared segment-to-segment mailbox. Channel ids are assigned in
// TrunkLink call order, which deploy.Build makes deterministic, so
// every process of a partitioned run numbers the channels identically.
type trunkChannel struct {
	mb *sim.Mailbox
	ch int
	fn func(packet.Message)
}

// Post implements deploy.TrunkTransport.
func (c *trunkChannel) Post(at sim.Time, msg packet.Message) {
	c.mb.Post(at, sim.Envelope{Kind: kindTrunk, Payload: &trunkPayload{ch: c.ch, msg: msg}})
}

// OnDeliver implements deploy.TrunkTransport.
func (c *trunkChannel) OnDeliver(fn func(packet.Message)) { c.fn = fn }

// trunkLink implements deploy.Builder.TrunkLink: a fresh channel per
// directed trunk, demultiplexed by the per-mailbox kindTrunk handler.
func (n *Network) trunkLink(from, to int) deploy.TrunkTransport {
	mb := n.segs[from].mbTo[to]
	c := &trunkChannel{mb: mb, ch: len(n.trunkChans)}
	n.trunkChans = append(n.trunkChans, c)
	if !n.trunkWired[mb] {
		n.trunkWired[mb] = true
		mb.OnReceive(kindTrunk, func(p any) {
			tp := p.(*trunkPayload)
			n.trunkChans[tp.ch].fn(tp.msg)
		})
	}
	return c
}

// wireDomainEnvelopes registers the receiving-domain handlers for every
// typed kind a mailbox can carry. Called from newDomainNetwork once the
// mailbox graph exists; the server-send handlers need the per-segment
// backhauls, so those register after deploy.Build.
func (n *Network) wireDomainEnvelopes() {
	for _, sd := range n.segs {
		sd := sd
		sd.toServer.OnReceive(kindServerTap, func(p any) {
			tp := p.(*serverTapPayload)
			n.onServerBackhaul(tp.seg, tp.from, tp.msg)
		})
		// Migration rides the adjacent chain only (one hop per patrol
		// tick); register the adopt handler on both directions of it.
		for _, dst := range []int{sd.idx - 1, sd.idx + 1} {
			if dst < 0 || dst >= len(n.segs) {
				continue
			}
			to := n.segs[dst]
			sd.mbTo[dst].OnReceive(kindMigrate, func(p any) { to.adopt(p.(*Client)) })
		}
	}
}

// wireServerSendEnvelopes registers the server→segment downlink
// handlers; requires the deployment (per-segment backhauls) to exist.
func (n *Network) wireServerSendEnvelopes() {
	for i, mb := range n.serverToSeg {
		bh := n.Deploy.Segments[i].Backhaul
		mb.OnReceive(kindServerSend, func(p any) {
			bh.Send(deploy.NodeServer, deploy.NodeController, p.(*packet.ServerData))
		})
	}
}
