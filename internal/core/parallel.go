package core

import (
	"fmt"

	"wgtt/internal/backhaul"
	"wgtt/internal/client"
	"wgtt/internal/deploy"
	"wgtt/internal/mac"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// This file builds the domain-partitioned execution of a multi-segment
// deployment (Config.Domains != SingleLoop): every segment becomes a
// sim.Domain owning its own event loop, radio-medium partition, backhaul,
// and control plane; one extra domain hosts the wired server. Domains
// interact only through sim.Mailboxes whose minimum latency is the trunk
// propagation delay, which is therefore the conservative-synchronization
// lookahead. Clients are owned by exactly one segment domain at a time;
// a per-domain border patrol migrates a client's radio to the adjacent
// segment when its position says so, and the controllers' existing
// cross-segment claim/handoff protocol then moves the control-plane state
// over the trunk exactly as it does on the single-loop path.

// patrolInterval paces the per-domain border patrol. It must be long
// relative to the lookahead (so migration latency is dominated by physics,
// not patrol quantization) and short relative to handoff dynamics; 5 ms
// adds at most one beacon interval of extra staleness to a crossing.
const patrolInterval = 5 * sim.Millisecond

// segDomain is one segment's execution domain.
type segDomain struct {
	n      *Network
	idx    int
	dom    *sim.Domain
	medium *mac.Medium

	// resident maps each owned client to its adoption generation; the
	// generation distinguishes a client's current residency from a
	// previous one (a client can leave and come back), so callbacks
	// scheduled during an old residency can detect they are stale. Only
	// this domain touches the map.
	resident map[*client.Client]uint64
	nextGen  uint64
	// order lists owned clients in adoption order, the deterministic
	// iteration order for the patrol.
	order []*Client

	toPrev   *sim.Mailbox // nil on the first segment
	toNext   *sim.Mailbox // nil on the last segment
	toServer *sim.Mailbox
	// mbTo maps every trunk-linked segment (adjacent chain plus any
	// federation ring/bypass trunks) to this domain's outgoing mailbox;
	// toPrev/toNext are aliases into it for the patrol.
	mbTo map[int]*sim.Mailbox
}

// aliveAt returns the liveness check handed to a client for one
// residency: it is true only while the client is still owned by this
// domain under the same adoption generation. The closure reads only this
// domain's state and is only invoked by events on this domain's loop.
func (s *segDomain) aliveAt(cl *client.Client, gen uint64) func() bool {
	return func() bool { return s.resident[cl] == gen }
}

// acceptResident records initial ownership of a client built directly on
// this domain (construction time).
func (s *segDomain) acceptResident(c *Client) {
	s.nextGen++
	s.resident[c.Client] = s.nextGen
	s.order = append(s.order, c)
	c.SetAlive(s.aliveAt(c.Client, s.nextGen))
}

// adopt attaches a migrating client to this domain. Runs as a mailbox
// thunk on this domain's loop, one lookahead after the Detach.
func (s *segDomain) adopt(c *Client) {
	s.nextGen++
	s.resident[c.Client] = s.nextGen
	s.order = append(s.order, c)
	c.Attach(s.dom.Loop, s.medium, s.aliveAt(c.Client, s.nextGen))
}

// patrol walks the domain's clients and hands off any whose position now
// belongs to another segment, one adjacent hop per tick. The radio moves
// immediately (Detach) and the adoption lands one lookahead later in the
// neighbour; the controllers' claim protocol follows on its own.
func (s *segDomain) patrol() {
	s.dom.Loop.After(patrolInterval, s.patrol)
	now := s.dom.Loop.Now()
	kept := s.order[:0]
	for _, c := range s.order {
		want := s.n.segmentForPos(c.Traj.Pos(now))
		var mb *sim.Mailbox
		var dst *segDomain
		switch {
		case want > s.idx && s.toNext != nil:
			mb, dst = s.toNext, s.n.segs[s.idx+1]
		case want < s.idx && s.toPrev != nil:
			mb, dst = s.toPrev, s.n.segs[s.idx-1]
		}
		if mb == nil {
			kept = append(kept, c)
			continue
		}
		c.Detach()
		delete(s.resident, c.Client)
		moved := c
		mb.Post(now.Add(s.n.Cfg.Trunk.PropDelay), func() { dst.adopt(moved) })
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// segmentForPos returns the index of the segment owning a road position
// (the one whose AP is nearest). Pure geometry — safe from any domain.
func (n *Network) segmentForPos(pos rf.Position) int {
	return n.Deploy.SegmentOfAP(n.nearestAP(pos)).Index
}

// newDomainNetwork builds the partitioned form of the network. The
// resulting behaviour is NOT bit-identical to the single-loop path (the
// medium is partitioned, so cross-segment radio interference disappears
// and per-segment RNG streams replace the shared one); what IS guaranteed
// is that DomainsSerial and DomainsParallel are bit-identical to each
// other, which is what the parity tests pin.
func newDomainNetwork(cfg Config) (*Network, error) {
	geoms := cfg.segmentGeoms()
	lookahead := cfg.Trunk.PropDelay
	coord := sim.NewCoordinator(lookahead, cfg.Domains == DomainsParallel)
	rng := sim.NewRNG(cfg.Seed)
	n := &Network{
		Cfg:         cfg,
		Coord:       coord,
		rng:         rng,
		nodeKind:    make(map[*mac.Node]nodeRef),
		serverDemux: make(map[uint16]func(packet.Packet)),
		route:       make(map[packet.IP]int),
		serverDedup: make(map[packet.DedupKey]bool),
	}
	for i := range geoms {
		d := coord.NewDomain(fmt.Sprintf("seg%d", i))
		sd := &segDomain{
			n: n, idx: i, dom: d,
			resident: make(map[*client.Client]uint64),
		}
		sd.medium = mac.NewMedium(d.Loop, &netChannel{n: n, loop: d.Loop},
			rng.Fork(fmt.Sprintf("medium%d", i)))
		if !cfg.NoAudibilityIndex {
			sd.medium.SetAudibilityIndex(newAudIndex(n, d.Loop))
		}
		n.segs = append(n.segs, sd)
	}
	server := coord.NewDomain("server")
	n.Loop = server.Loop
	if cfg.Telemetry {
		n.initTelemetryDomains(coord, server)
	}

	// Mailboxes: every trunk-linked segment pair (the adjacent chain
	// plus any federation ring/bypass trunks — trunk traffic + client
	// migration) and every segment's link to the wired server. All share
	// the trunk propagation delay, so one lookahead bounds them all.
	// Trunk jitter is strictly additive on top of PropDelay, so faulted
	// deployments keep the same lookahead.
	for _, sd := range n.segs {
		sd.mbTo = make(map[int]*sim.Mailbox)
	}
	var pairs [][2]int
	for i := 0; i+1 < len(n.segs); i++ {
		pairs = append(pairs, [2]int{i, i + 1})
	}
	pairs = append(pairs, cfg.extraTrunks()...)
	for _, e := range pairs {
		i, j := e[0], e[1]
		if i > j {
			i, j = j, i
		}
		if n.segs[i].mbTo[j] != nil {
			continue // duplicate extra pair
		}
		n.segs[i].mbTo[j] = coord.Connect(n.segs[i].dom, n.segs[j].dom, lookahead)
		n.segs[j].mbTo[i] = coord.Connect(n.segs[j].dom, n.segs[i].dom, lookahead)
	}
	for i := 0; i+1 < len(n.segs); i++ {
		n.segs[i].toNext = n.segs[i].mbTo[i+1]
		n.segs[i+1].toPrev = n.segs[i+1].mbTo[i]
	}
	for _, sd := range n.segs {
		sd.toServer = coord.Connect(sd.dom, server, lookahead)
		n.serverToSeg = append(n.serverToSeg, coord.Connect(server, sd.dom, lookahead))
	}
	fedTopo := cfg.federationTopology()

	d, err := deploy.Builder{
		Geoms:       geoms,
		Backhaul:    cfg.Backhaul,
		Trunk:       cfg.Trunk,
		ExtraTrunks: cfg.extraTrunks(),
		FaultSeed:   cfg.Seed,
		Telemetry:   n.segTel,
		SegmentLoop: func(i int) *sim.Loop { return n.segs[i].dom.Loop },
		TrunkPost: func(from, to int) func(at sim.Time, fn func()) {
			return n.segs[from].mbTo[to].Post
		},
		ServerHandler: func(si int) backhaul.Handler {
			sd := n.segs[si]
			return func(from backhaul.NodeID, msg packet.Message) {
				// The segment's server tap crosses into the server
				// domain; route/dedup state then stays server-local.
				// ServerData arrives in the backhaul's decode scratch,
				// and the posted closure outlives the handler call, so
				// it must be copied here.
				if d, ok := msg.(*packet.ServerData); ok {
					cp := *d
					msg = &cp
				}
				sd.toServer.Post(sd.dom.Loop.Now().Add(lookahead), func() {
					n.onServerBackhaul(si, from, msg)
				})
			}
		},
		BuildPlane: func(seg *deploy.Segment) deploy.Plane {
			sd := n.segs[seg.Index]
			p := deploy.NewWGTTPlane(seg, sd.dom.Loop, sd.medium, nil,
				n.segTel(seg.Index), rng, cfg.AP, cfg.Controller)
			n.attachFederation(fedTopo, seg.Index, sd.dom.Loop, p.Ctrl)
			if n.Ctrl == nil {
				n.Ctrl = p.Ctrl
			}
			for _, a := range p.APs {
				n.APs = append(n.APs, a)
				n.apNodes = append(n.apNodes, a.Node())
				n.nodeKind[a.Node()] = nodeRef{isAP: true, idx: int(a.ID)}
			}
			return p
		},
	}.Build()
	if err != nil {
		return nil, err
	}
	n.Deploy = d
	n.Backhaul = d.Segments[0].Backhaul
	for _, sd := range n.segs {
		sd := sd
		sd.dom.Loop.After(patrolInterval, sd.patrol)
	}
	return n, nil
}
