package core

import (
	"fmt"
	"math"

	"wgtt/internal/backhaul"
	"wgtt/internal/channel"
	"wgtt/internal/client"
	"wgtt/internal/deploy"
	"wgtt/internal/mac"
	"wgtt/internal/packet"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
	"wgtt/internal/trace"
)

// This file builds the domain-partitioned execution of a multi-segment
// deployment (Config.Domains != SingleLoop): every segment becomes a
// sim.Domain owning its own event loop, radio-medium partition, backhaul,
// and control plane; one extra domain hosts the wired server. Domains
// interact only through sim.Mailboxes whose minimum latency is the trunk
// propagation delay, which is therefore the conservative-synchronization
// lookahead. Clients are owned by exactly one segment domain at a time;
// a per-domain border patrol migrates a client's radio to the adjacent
// segment when its position says so, and the controllers' existing
// cross-segment claim/handoff protocol then moves the control-plane state
// over the trunk exactly as it does on the single-loop path.

// patrolInterval paces the per-domain border patrol. It must be long
// relative to the lookahead (so migration latency is dominated by physics,
// not patrol quantization) and short relative to handoff dynamics; 5 ms
// adds at most one beacon interval of extra staleness to a crossing.
const patrolInterval = 5 * sim.Millisecond

// segDomain is one segment's execution domain.
type segDomain struct {
	n      *Network
	idx    int
	dom    *sim.Domain
	medium *mac.Medium

	// resident maps each owned client to its adoption generation; the
	// generation distinguishes a client's current residency from a
	// previous one (a client can leave and come back), so callbacks
	// scheduled during an old residency can detect they are stale. Only
	// this domain touches the map.
	resident map[*client.Client]uint64
	nextGen  uint64
	// order lists owned clients in adoption order, the deterministic
	// iteration order for the patrol.
	order []*Client

	toPrev   *sim.Mailbox // nil on the first segment
	toNext   *sim.Mailbox // nil on the last segment
	toServer *sim.Mailbox
	// mbTo maps every trunk-linked segment (adjacent chain plus any
	// federation ring/bypass trunks) to this domain's outgoing mailbox;
	// toPrev/toNext are aliases into it for the patrol.
	mbTo map[int]*sim.Mailbox

	// Boundary-interference exchange (Config.BoundaryInterference).
	// bounds lists the adjacent-chain neighbours and the shared boundary
	// x coordinate; remoteTx holds the neighbour transmissions currently
	// raising this domain's noise floor. Counters feed the parity tests.
	bounds          []segBoundary
	remoteTx        []remoteTx
	boundaryPosted  int
	boundaryApplied int
}

// segBoundary names one adjacent segment and the x coordinate of the
// boundary shared with it (the midpoint between the facing APs).
type segBoundary struct {
	to        int
	boundaryX float64
}

// remoteTx summarizes a neighbour-domain transmission near the shared
// boundary: when it was on air and the large-scale facts the backend
// needs to price its co-channel energy here.
type remoteTx struct {
	start, end sim.Time
	pos        rf.Position
	isAP       bool
}

// remoteTxLinger keeps an expired remoteTx long enough that any local
// transmission it overlapped — whose delivery evaluates at PPDU end —
// still sees it. 10 ms comfortably exceeds the longest aggregate.
const remoteTxLinger = 10 * sim.Millisecond

// aliveAt returns the liveness check handed to a client for one
// residency: it is true only while the client is still owned by this
// domain under the same adoption generation. The closure reads only this
// domain's state and is only invoked by events on this domain's loop.
func (s *segDomain) aliveAt(cl *client.Client, gen uint64) func() bool {
	return func() bool { return s.resident[cl] == gen }
}

// acceptResident records initial ownership of a client built directly on
// this domain (construction time).
func (s *segDomain) acceptResident(c *Client) {
	s.nextGen++
	s.resident[c.Client] = s.nextGen
	s.order = append(s.order, c)
	c.SetAlive(s.aliveAt(c.Client, s.nextGen))
}

// adopt attaches a migrating client to this domain. Runs as a mailbox
// thunk on this domain's loop, one lookahead after the Detach.
func (s *segDomain) adopt(c *Client) {
	s.nextGen++
	s.resident[c.Client] = s.nextGen
	s.order = append(s.order, c)
	c.Attach(s.dom.Loop, s.medium, s.aliveAt(c.Client, s.nextGen))
}

// patrol walks the domain's clients and hands off any whose position now
// belongs to another segment, one adjacent hop per tick. The radio moves
// immediately (Detach) and the adoption lands one lookahead later in the
// neighbour; the controllers' claim protocol follows on its own.
func (s *segDomain) patrol() {
	s.dom.Loop.After(patrolInterval, s.patrol)
	now := s.dom.Loop.Now()
	kept := s.order[:0]
	for _, c := range s.order {
		want := s.n.segmentForPos(c.Traj.Pos(now))
		var mb *sim.Mailbox
		switch {
		case want > s.idx && s.toNext != nil:
			mb = s.toNext
		case want < s.idx && s.toPrev != nil:
			mb = s.toPrev
		}
		if mb == nil {
			kept = append(kept, c)
			continue
		}
		c.Detach()
		delete(s.resident, c.Client)
		// The kindMigrate handler registered on mb belongs to the
		// adjacent domain (wireDomainEnvelopes) and adopts the client.
		mb.Post(now.Add(s.n.Cfg.Trunk.PropDelay), sim.Envelope{Kind: kindMigrate, Payload: c})
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// segmentForPos returns the index of the segment owning a road position
// (the one whose AP is nearest). Pure geometry — safe from any domain.
func (n *Network) segmentForPos(pos rf.Position) int {
	return n.Deploy.SegmentOfAP(n.nearestAP(pos)).Index
}

// newDomainNetwork builds the partitioned form of the network. The
// resulting behaviour is NOT bit-identical to the single-loop path (the
// medium is partitioned, so cross-segment radio interference disappears
// and per-segment RNG streams replace the shared one); what IS guaranteed
// is that DomainsSerial and DomainsParallel are bit-identical to each
// other, which is what the parity tests pin.
func newDomainNetwork(cfg Config, model channel.Model) (*Network, error) {
	geoms := cfg.segmentGeoms()
	lookahead := cfg.Trunk.PropDelay
	coord := sim.NewCoordinator(lookahead, cfg.Domains == DomainsParallel)
	rng := sim.NewRNG(cfg.Seed)
	n := &Network{
		Cfg:         cfg,
		Coord:       coord,
		rng:         rng,
		model:       model,
		nodeKind:    make(map[*mac.Node]nodeRef),
		serverDemux: make(map[uint16]func(packet.Packet)),
		route:       make(map[packet.IP]int),
		serverDedup: make(map[packet.DedupKey]bool),
	}
	for i := range geoms {
		d := coord.NewDomain(fmt.Sprintf("seg%d", i))
		sd := &segDomain{
			n: n, idx: i, dom: d,
			resident: make(map[*client.Client]uint64),
		}
		sd.medium = mac.NewMedium(d.Loop, &netChannel{n: n, loop: d.Loop},
			rng.Fork(fmt.Sprintf("medium%d", i)))
		if cfg.audibilityIndexEnabled() {
			sd.medium.SetAudibilityIndex(newAudIndex(n, d.Loop))
		}
		n.segs = append(n.segs, sd)
	}
	server := coord.NewDomain("server")
	n.Loop = server.Loop
	if cfg.Telemetry {
		n.initTelemetryDomains(coord, server)
	}

	// Mailboxes: every trunk-linked segment pair (the adjacent chain
	// plus any federation ring/bypass trunks — trunk traffic + client
	// migration) and every segment's link to the wired server. All share
	// the trunk propagation delay, so one lookahead bounds them all.
	// Trunk jitter is strictly additive on top of PropDelay, so faulted
	// deployments keep the same lookahead.
	for _, sd := range n.segs {
		sd.mbTo = make(map[int]*sim.Mailbox)
	}
	var pairs [][2]int
	for i := 0; i+1 < len(n.segs); i++ {
		pairs = append(pairs, [2]int{i, i + 1})
	}
	pairs = append(pairs, cfg.extraTrunks()...)
	for _, e := range pairs {
		i, j := e[0], e[1]
		if i > j {
			i, j = j, i
		}
		if n.segs[i].mbTo[j] != nil {
			continue // duplicate extra pair
		}
		n.segs[i].mbTo[j] = coord.Connect(n.segs[i].dom, n.segs[j].dom, lookahead)
		n.segs[j].mbTo[i] = coord.Connect(n.segs[j].dom, n.segs[i].dom, lookahead)
	}
	for i := 0; i+1 < len(n.segs); i++ {
		n.segs[i].toNext = n.segs[i].mbTo[i+1]
		n.segs[i+1].toPrev = n.segs[i+1].mbTo[i]
	}
	for _, sd := range n.segs {
		sd.toServer = coord.Connect(sd.dom, server, lookahead)
		n.serverToSeg = append(n.serverToSeg, coord.Connect(server, sd.dom, lookahead))
	}
	n.trunkWired = make(map[*sim.Mailbox]bool)
	n.wireDomainEnvelopes()
	fedTopo := cfg.federationTopology()

	d, err := deploy.Builder{
		Geoms:       geoms,
		Backhaul:    cfg.Backhaul,
		Trunk:       cfg.Trunk,
		ExtraTrunks: cfg.extraTrunks(),
		FaultSeed:   cfg.Seed,
		Telemetry:   n.segTel,
		SegmentLoop: func(i int) *sim.Loop { return n.segs[i].dom.Loop },
		TrunkLink:   n.trunkLink,
		ServerHandler: func(si int) backhaul.Handler {
			sd := n.segs[si]
			return func(from backhaul.NodeID, msg packet.Message) {
				// The segment's server tap crosses into the server
				// domain; route/dedup state then stays server-local.
				// ServerData arrives in the backhaul's decode scratch
				// and the envelope outlives the handler call, so the
				// payload embeds a copy.
				tp := &serverTapPayload{seg: si, from: from}
				if d, ok := msg.(*packet.ServerData); ok {
					tp.sd = *d
					tp.msg = &tp.sd
				} else {
					tp.msg = msg
				}
				sd.toServer.Post(sd.dom.Loop.Now().Add(lookahead),
					sim.Envelope{Kind: kindServerTap, Payload: tp})
			}
		},
		BuildPlane: func(seg *deploy.Segment) deploy.Plane {
			sd := n.segs[seg.Index]
			rec := trace.NewRecorder(seg.Index, cfg.FlightRecorder)
			n.recs = append(n.recs, rec)
			p := deploy.NewWGTTPlane(seg, sd.dom.Loop, sd.medium, nil, rec,
				n.segTel(seg.Index), rng, cfg.AP, cfg.Controller)
			n.attachFederation(fedTopo, seg.Index, sd.dom.Loop, p.Ctrl)
			if n.Ctrl == nil {
				n.Ctrl = p.Ctrl
			}
			for _, a := range p.APs {
				n.APs = append(n.APs, a)
				n.apNodes = append(n.apNodes, a.Node())
				n.nodeKind[a.Node()] = nodeRef{isAP: true, idx: int(a.ID)}
			}
			return p
		},
	}.Build()
	if err != nil {
		return nil, err
	}
	n.Deploy = d
	n.Backhaul = d.Segments[0].Backhaul
	n.wireServerSendEnvelopes()
	for _, sd := range n.segs {
		sd := sd
		sd.dom.Loop.After(patrolInterval, sd.patrol)
	}
	if cfg.BoundaryInterference {
		n.wireBoundaryInterference(geoms)
	}
	return n, nil
}

// wireBoundaryInterference connects adjacent segment domains' media so
// that transmissions within BoundaryZoneM of a shared boundary are
// exported to the neighbour as co-channel interference. The export rides
// the same mailboxes (and therefore the same trunk-propagation
// lookahead) as all other cross-domain traffic, so DomainsSerial and
// DomainsParallel stay bit-identical to each other.
func (n *Network) wireBoundaryInterference(geoms []deploy.Geometry) {
	lastX := func(i int) float64 {
		return geoms[i].FirstAPX + float64(geoms[i].NumAPs-1)*geoms[i].APSpacing
	}
	for i, sd := range n.segs {
		if i+1 < len(n.segs) {
			sd.bounds = append(sd.bounds, segBoundary{
				to: i + 1, boundaryX: (lastX(i) + geoms[i+1].FirstAPX) / 2})
		}
		if i > 0 {
			sd.bounds = append(sd.bounds, segBoundary{
				to: i - 1, boundaryX: (lastX(i-1) + geoms[i].FirstAPX) / 2})
		}
		sd := sd
		sd.medium.SetOnTransmit(sd.exportBoundaryTx)
		sd.medium.SetInterference(sd.remoteInterference)
		for _, b := range sd.bounds {
			dst := n.segs[b.to]
			sd.mbTo[b.to].OnReceive(kindBoundary, func(p any) {
				dst.acceptRemoteTx(*p.(*remoteTx))
			})
		}
	}
}

// exportBoundaryTx posts a boundary-zone transmission summary to the
// adjacent domains; it fires synchronously inside Medium.Transmit.
func (s *segDomain) exportBoundaryTx(t *mac.Transmission) {
	pos := t.Tx.Pos()
	ref, ok := s.n.nodeKind[t.Tx]
	if !ok {
		return
	}
	for _, b := range s.bounds {
		if math.Abs(pos.X-b.boundaryX) > s.n.Cfg.BoundaryZoneM {
			continue
		}
		rec := &remoteTx{start: t.Start, end: t.End, pos: pos, isAP: ref.isAP}
		s.mbTo[b.to].Post(s.dom.Loop.Now().Add(s.n.Cfg.Trunk.PropDelay),
			sim.Envelope{Kind: kindBoundary, Payload: rec})
		s.boundaryPosted++
	}
}

// acceptRemoteTx lands a neighbour's boundary-zone summary on this
// domain's loop, one lookahead after it went on air, and prunes entries
// past their linger.
func (s *segDomain) acceptRemoteTx(rec remoteTx) {
	now := s.dom.Loop.Now()
	kept := s.remoteTx[:0]
	for _, r := range s.remoteTx {
		if r.end.Add(remoteTxLinger) > now {
			kept = append(kept, r)
		}
	}
	s.remoteTx = kept
	if rec.end.Add(remoteTxLinger) > now {
		s.remoteTx = append(s.remoteTx, rec)
	}
}

// remoteInterference implements the medium's external-interference hook:
// the summed linear interference-over-noise the receiver accumulates
// from neighbour-domain boundary transmissions overlapping t's airtime.
func (s *segDomain) remoteInterference(rx *mac.Node, t *mac.Transmission) float64 {
	if len(s.remoteTx) == 0 {
		return 0
	}
	var iLin float64
	rxPos := rx.Pos()
	hit := false
	for _, r := range s.remoteTx {
		if r.start < t.End && t.Start < r.end {
			ion := s.n.model.InterferenceOverNoiseDB(r.isAP, r.pos, rxPos)
			iLin += math.Pow(10, ion/10)
			hit = true
		}
	}
	if hit {
		s.boundaryApplied++
	}
	return iLin
}

// BoundaryInterferenceStats sums the exchange counters across segment
// domains: summaries posted to neighbours, and deliveries whose SINR saw
// a nonzero remote term. Zero/zero when the feature is off.
func (n *Network) BoundaryInterferenceStats() (posted, applied int) {
	for _, sd := range n.segs {
		posted += sd.boundaryPosted
		applied += sd.boundaryApplied
	}
	return
}
