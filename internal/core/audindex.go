package core

import (
	"math"

	"wgtt/internal/channel"
	"wgtt/internal/mac"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// The audibility index is the large-deployment fast path of the shared
// medium: instead of evaluating every delivered PPDU at every registered
// node, the medium asks the index for the set of nodes that could
// *plausibly* detect the transmitter, and only those pay the
// per-subcarrier channel evaluation. Soundness rule: the index may
// over-mark freely (a false positive just re-runs the medium's own
// threshold tests, which reject it exactly like the brute-force scan
// would), but it must never under-mark — every node whose large-scale SNR
// plus the constructive-fading headroom could reach the preamble-detection
// threshold must have its bit set. Under that rule, index-on and index-off
// runs are bit-identical: both visit the same detecting receivers in the
// same (registration) order and draw from the RNG identically.
const (
	// audRefreshInterval is how stale the client bucket geometry may
	// get before MarkAudible rebuilds it.
	audRefreshInterval = 5 * sim.Millisecond
	// audSlopM pads every bucket's bounding box against client motion
	// between refreshes: at 5 ms staleness, 5 m covers any client
	// moving slower than 1000 m/s.
	audSlopM = 5.0
	// audBucketM is the x-extent of one client bucket.
	audBucketM = 32.0
	// audFlatMarginDB guards the client↔client skip against the ESNR
	// table's interpolation error (≪ 0.5 dB on a flat channel).
	audFlatMarginDB = 0.5
)

// audAP is one resolved access point: static position (the antenna
// pattern lives in the channel backend).
type audAP struct {
	node *mac.Node
	pos  rf.Position
}

// audBucket groups clients by road position; the box bounds the members'
// positions as of the last refresh, already expanded by audSlopM.
type audBucket struct {
	nodes                  []*mac.Node
	minX, maxX, minY, maxY float64
}

// audIndex implements mac.AudibilityIndex over the deployment geometry of
// one radio domain (the whole network on the single-loop path, one
// segment's medium partition in domain mode). Node kinds resolve lazily
// through Network.nodeKind because kinds are recorded just after mac
// registration; a node whose kind never resolves is simply always marked.
type audIndex struct {
	n    *Network
	loop *sim.Loop

	// entries holds the registered nodes in registration order.
	entries []*mac.Node

	// Resolved views, rebuilt by refresh().
	aps     []audAP
	buckets map[int]*audBucket
	unknown []*mac.Node
	free    []*audBucket

	fresh       bool
	refreshedAt sim.Time

	// headroomDB mirrors the channel's DetectHeadroomDB bound.
	headroomDB float64
}

func newAudIndex(n *Network, loop *sim.Loop) *audIndex {
	return &audIndex{
		n:          n,
		loop:       loop,
		buckets:    make(map[int]*audBucket),
		headroomDB: n.model.DetectHeadroomDB(),
	}
}

// Register implements mac.AudibilityIndex.
func (ix *audIndex) Register(n *mac.Node) {
	ix.entries = append(ix.entries, n)
	ix.fresh = false
}

// Unregister implements mac.AudibilityIndex.
func (ix *audIndex) Unregister(n *mac.Node) {
	out := ix.entries[:0]
	for _, x := range ix.entries {
		if x != n {
			out = append(out, x)
		}
	}
	for i := len(out); i < len(ix.entries); i++ {
		ix.entries[i] = nil
	}
	ix.entries = out
	ix.fresh = false
}

// refresh rebuilds the resolved AP list and the client buckets from
// current positions.
func (ix *audIndex) refresh() {
	ix.aps = ix.aps[:0]
	ix.unknown = ix.unknown[:0]
	for k, b := range ix.buckets {
		b.nodes = b.nodes[:0]
		ix.free = append(ix.free, b)
		delete(ix.buckets, k)
	}
	for _, node := range ix.entries {
		ref, ok := ix.n.nodeKind[node]
		switch {
		case !ok:
			ix.unknown = append(ix.unknown, node)
		case ref.isAP:
			ix.aps = append(ix.aps, audAP{node: node, pos: node.Pos()})
		default:
			pos := node.Pos()
			key := int(math.Floor(pos.X / audBucketM))
			b := ix.buckets[key]
			if b == nil {
				if k := len(ix.free); k > 0 {
					b = ix.free[k-1]
					ix.free[k-1] = nil
					ix.free = ix.free[:k-1]
				} else {
					b = &audBucket{}
				}
				b.minX, b.maxX = pos.X, pos.X
				b.minY, b.maxY = pos.Y, pos.Y
				ix.buckets[key] = b
			}
			b.nodes = append(b.nodes, node)
			b.minX = math.Min(b.minX, pos.X)
			b.maxX = math.Max(b.maxX, pos.X)
			b.minY = math.Min(b.minY, pos.Y)
			b.maxY = math.Max(b.maxY, pos.Y)
		}
	}
	for _, b := range ix.buckets {
		b.minX -= audSlopM
		b.maxX += audSlopM
		b.minY -= audSlopM
		b.maxY += audSlopM
	}
	ix.fresh = true
	ix.refreshedAt = ix.loop.Now()
}

// MarkAudible implements mac.AudibilityIndex.
func (ix *audIndex) MarkAudible(tx *mac.Node, bitmap []uint64) {
	if !ix.fresh || ix.loop.Now() > ix.refreshedAt.Add(audRefreshInterval) {
		ix.refresh()
	}
	// Unknown-kind nodes can be anything anywhere: always candidates.
	for _, n := range ix.unknown {
		markBit(bitmap, n)
	}
	ref, ok := ix.n.nodeKind[tx]
	if !ok {
		// Unknown transmitter: no geometric bound applies.
		for _, n := range ix.entries {
			markBit(bitmap, n)
		}
		return
	}
	if ref.isAP {
		ix.markFromAP(tx, bitmap)
	} else {
		ix.markFromClient(tx, bitmap)
	}
}

// markFromAP marks every plausible receiver of an AP transmission.
func (ix *audIndex) markFromAP(tx *mac.Node, bitmap []uint64) {
	pos := tx.Pos()
	model := ix.n.model
	// AP → AP sensing is a hard range cutoff in netChannel; beyond it
	// the flat −10 dB channel fails SubcarrierSNRs outright.
	for _, ap := range ix.aps {
		if pos.Distance(ap.pos) <= ix.n.Cfg.APAPSenseRangeM {
			markBit(bitmap, ap.node)
		}
	}
	// AP → client: bound the large-scale SNR over the bucket box.
	for _, b := range ix.buckets {
		bound := model.MaxSNRAPToBoxDB(pos, boxOf(b))
		if bound+ix.headroomDB >= mac.DetectThresholdDB {
			for _, n := range b.nodes {
				markBit(bitmap, n)
			}
		}
	}
}

// markFromClient marks every plausible receiver of a client transmission.
// The transmitter's position is read now — the same instant the medium
// evaluates the channel — so only the receiving buckets carry slop.
func (ix *audIndex) markFromClient(tx *mac.Node, bitmap []uint64) {
	pos := tx.Pos()
	model := ix.n.model
	// Client → AP: reciprocal of the downlink budget, exact positions.
	for _, ap := range ix.aps {
		bound := model.MaxSNRClientToAPDB(pos, ap.pos)
		if bound+ix.headroomDB >= mac.DetectThresholdDB {
			markBit(bitmap, ap.node)
		}
	}
	// Client → client: the flat vehicle-to-vehicle budget with the
	// bucket's nearest point; no fading, so no headroom term — just an
	// interpolation-error margin on the detect threshold.
	for _, b := range ix.buckets {
		snr := model.ClientClientSNRdB(boxDistance(pos, b))
		if snr >= mac.DetectThresholdDB-audFlatMarginDB {
			for _, n := range b.nodes {
				markBit(bitmap, n)
			}
		}
	}
}

// boxOf converts a bucket's (already slop-expanded) bounds to the
// backend's box geometry.
func boxOf(b *audBucket) channel.Box {
	return channel.Box{MinX: b.minX, MaxX: b.maxX, MinY: b.minY, MaxY: b.maxY}
}

// markBit sets the node's seq bit in the medium's candidate bitmap.
func markBit(bitmap []uint64, n *mac.Node) {
	seq := n.Seq()
	if w := seq >> 6; w < len(bitmap) {
		bitmap[w] |= 1 << (seq & 63)
	}
}

// boxDistance returns the distance from p to the nearest point of the
// bucket's (already slop-expanded) box; zero when p is inside.
func boxDistance(p rf.Position, b *audBucket) float64 {
	dx := math.Max(0, math.Max(b.minX-p.X, p.X-b.maxX))
	dy := math.Max(0, math.Max(b.minY-p.Y, p.Y-b.maxY))
	return math.Hypot(dx, dy)
}
