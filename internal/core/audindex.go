package core

import (
	"math"

	"wgtt/internal/mac"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// The audibility index is the large-deployment fast path of the shared
// medium: instead of evaluating every delivered PPDU at every registered
// node, the medium asks the index for the set of nodes that could
// *plausibly* detect the transmitter, and only those pay the
// per-subcarrier channel evaluation. Soundness rule: the index may
// over-mark freely (a false positive just re-runs the medium's own
// threshold tests, which reject it exactly like the brute-force scan
// would), but it must never under-mark — every node whose large-scale SNR
// plus the constructive-fading headroom could reach the preamble-detection
// threshold must have its bit set. Under that rule, index-on and index-off
// runs are bit-identical: both visit the same detecting receivers in the
// same (registration) order and draw from the RNG identically.
const (
	// audRefreshInterval is how stale the client bucket geometry may
	// get before MarkAudible rebuilds it.
	audRefreshInterval = 5 * sim.Millisecond
	// audSlopM pads every bucket's bounding box against client motion
	// between refreshes: at 5 ms staleness, 5 m covers any client
	// moving slower than 1000 m/s.
	audSlopM = 5.0
	// audBucketM is the x-extent of one client bucket.
	audBucketM = 32.0
	// audFlatMarginDB guards the client↔client skip against the ESNR
	// table's interpolation error (≪ 0.5 dB on a flat channel).
	audFlatMarginDB = 0.5
)

// audAP is one resolved access point: static position, fixed antenna.
type audAP struct {
	node *mac.Node
	pos  rf.Position
	ant  rf.Parabolic
}

// audBucket groups clients by road position; the box bounds the members'
// positions as of the last refresh, already expanded by audSlopM.
type audBucket struct {
	nodes                  []*mac.Node
	minX, maxX, minY, maxY float64
}

// audIndex implements mac.AudibilityIndex over the deployment geometry of
// one radio domain (the whole network on the single-loop path, one
// segment's medium partition in domain mode). Node kinds resolve lazily
// through Network.nodeKind because kinds are recorded just after mac
// registration; a node whose kind never resolves is simply always marked.
type audIndex struct {
	n    *Network
	loop *sim.Loop

	// entries holds the registered nodes in registration order.
	entries []*mac.Node

	// Resolved views, rebuilt by refresh().
	aps     []audAP
	buckets map[int]*audBucket
	unknown []*mac.Node
	free    []*audBucket

	fresh       bool
	refreshedAt sim.Time

	// headroomDB mirrors the channel's DetectHeadroomDB bound.
	headroomDB float64
}

func newAudIndex(n *Network, loop *sim.Loop) *audIndex {
	return &audIndex{
		n:          n,
		loop:       loop,
		buckets:    make(map[int]*audBucket),
		headroomDB: (&netChannel{n: n, loop: loop}).DetectHeadroomDB(),
	}
}

// Register implements mac.AudibilityIndex.
func (ix *audIndex) Register(n *mac.Node) {
	ix.entries = append(ix.entries, n)
	ix.fresh = false
}

// Unregister implements mac.AudibilityIndex.
func (ix *audIndex) Unregister(n *mac.Node) {
	out := ix.entries[:0]
	for _, x := range ix.entries {
		if x != n {
			out = append(out, x)
		}
	}
	for i := len(out); i < len(ix.entries); i++ {
		ix.entries[i] = nil
	}
	ix.entries = out
	ix.fresh = false
}

// refresh rebuilds the resolved AP list and the client buckets from
// current positions.
func (ix *audIndex) refresh() {
	ix.aps = ix.aps[:0]
	ix.unknown = ix.unknown[:0]
	for k, b := range ix.buckets {
		b.nodes = b.nodes[:0]
		ix.free = append(ix.free, b)
		delete(ix.buckets, k)
	}
	for _, node := range ix.entries {
		ref, ok := ix.n.nodeKind[node]
		switch {
		case !ok:
			ix.unknown = append(ix.unknown, node)
		case ref.isAP:
			ix.aps = append(ix.aps, audAP{
				node: node,
				pos:  node.Pos(),
				ant:  rf.DefaultParabolic(apBoresightDeg),
			})
		default:
			pos := node.Pos()
			key := int(math.Floor(pos.X / audBucketM))
			b := ix.buckets[key]
			if b == nil {
				if k := len(ix.free); k > 0 {
					b = ix.free[k-1]
					ix.free[k-1] = nil
					ix.free = ix.free[:k-1]
				} else {
					b = &audBucket{}
				}
				b.minX, b.maxX = pos.X, pos.X
				b.minY, b.maxY = pos.Y, pos.Y
				ix.buckets[key] = b
			}
			b.nodes = append(b.nodes, node)
			b.minX = math.Min(b.minX, pos.X)
			b.maxX = math.Max(b.maxX, pos.X)
			b.minY = math.Min(b.minY, pos.Y)
			b.maxY = math.Max(b.maxY, pos.Y)
		}
	}
	for _, b := range ix.buckets {
		b.minX -= audSlopM
		b.maxX += audSlopM
		b.minY -= audSlopM
		b.maxY += audSlopM
	}
	ix.fresh = true
	ix.refreshedAt = ix.loop.Now()
}

// MarkAudible implements mac.AudibilityIndex.
func (ix *audIndex) MarkAudible(tx *mac.Node, bitmap []uint64) {
	if !ix.fresh || ix.loop.Now() > ix.refreshedAt.Add(audRefreshInterval) {
		ix.refresh()
	}
	// Unknown-kind nodes can be anything anywhere: always candidates.
	for _, n := range ix.unknown {
		markBit(bitmap, n)
	}
	ref, ok := ix.n.nodeKind[tx]
	if !ok {
		// Unknown transmitter: no geometric bound applies.
		for _, n := range ix.entries {
			markBit(bitmap, n)
		}
		return
	}
	if ref.isAP {
		ix.markFromAP(tx, bitmap)
	} else {
		ix.markFromClient(tx, bitmap)
	}
}

// markFromAP marks every plausible receiver of an AP transmission.
func (ix *audIndex) markFromAP(tx *mac.Node, bitmap []uint64) {
	pos := tx.Pos()
	ant := rf.DefaultParabolic(apBoresightDeg)
	cfg := &ix.n.Cfg
	// AP → AP sensing is a hard range cutoff in netChannel; beyond it
	// the flat −10 dB channel fails SubcarrierSNRs outright.
	for _, ap := range ix.aps {
		if pos.Distance(ap.pos) <= cfg.APAPSenseRangeM {
			markBit(bitmap, ap.node)
		}
	}
	// AP → client: bound the large-scale SNR over the bucket box.
	for _, b := range ix.buckets {
		d := math.Max(1, boxDistance(pos, b))
		gain := maxGainToBox(ant, pos, b)
		bound := cfg.RF.TxPowerDBm + gain -
			(cfg.RF.RefLossDB + 10*cfg.RF.PathLossExp*math.Log10(d)) -
			cfg.RF.SystemLossDB + cfg.RF.MaxShadowDB() - cfg.RF.NoiseDBm
		if bound+ix.headroomDB >= mac.DetectThresholdDB {
			for _, n := range b.nodes {
				markBit(bitmap, n)
			}
		}
	}
}

// markFromClient marks every plausible receiver of a client transmission.
// The transmitter's position is read now — the same instant the medium
// evaluates the channel — so only the receiving buckets carry slop.
func (ix *audIndex) markFromClient(tx *mac.Node, bitmap []uint64) {
	pos := tx.Pos()
	cfg := &ix.n.Cfg
	// Client → AP: reciprocal of the downlink budget, exact positions.
	for _, ap := range ix.aps {
		d := math.Max(1, ap.pos.Distance(pos))
		gain := ap.ant.GainDB(ap.pos.AngleTo(pos))
		bound := cfg.RF.TxPowerDBm + gain -
			(cfg.RF.RefLossDB + 10*cfg.RF.PathLossExp*math.Log10(d)) -
			cfg.RF.SystemLossDB + cfg.RF.MaxShadowDB() - cfg.RF.NoiseDBm
		if bound+ix.headroomDB >= mac.DetectThresholdDB {
			markBit(bitmap, ap.node)
		}
	}
	// Client → client: the flat vehicle-to-vehicle budget with the
	// bucket's nearest point; no fading, so no headroom term — just an
	// interpolation-error margin on the detect threshold.
	for _, b := range ix.buckets {
		d := math.Max(1, boxDistance(pos, b))
		snr := cfg.RF.TxPowerDBm -
			(cfg.RF.RefLossDB + 10*cfg.RF.PathLossExp*math.Log10(d)) -
			cfg.ClientClientLossDB - cfg.RF.NoiseDBm
		if snr >= mac.DetectThresholdDB-audFlatMarginDB {
			for _, n := range b.nodes {
				markBit(bitmap, n)
			}
		}
	}
}

// markBit sets the node's seq bit in the medium's candidate bitmap.
func markBit(bitmap []uint64, n *mac.Node) {
	seq := n.Seq()
	if w := seq >> 6; w < len(bitmap) {
		bitmap[w] |= 1 << (seq & 63)
	}
}

// boxDistance returns the distance from p to the nearest point of the
// bucket's (already slop-expanded) box; zero when p is inside.
func boxDistance(p rf.Position, b *audBucket) float64 {
	dx := math.Max(0, math.Max(b.minX-p.X, p.X-b.maxX))
	dy := math.Max(0, math.Max(b.minY-p.Y, p.Y-b.maxY))
	return math.Hypot(dx, dy)
}

// maxGainToBox bounds the AP antenna gain toward any point of the box.
// The bearing set toward a convex box is the interval spanned by the
// corner bearings; Parabolic gain decreases monotonically with the
// off-boresight angle, so the max is attained at a corner bearing or at
// boresight itself when the boresight ray enters the box.
func maxGainToBox(ant rf.Parabolic, p rf.Position, b *audBucket) float64 {
	inside := p.X >= b.minX && p.X <= b.maxX && p.Y >= b.minY && p.Y <= b.maxY
	if inside || boresightHitsBox(ant, p, b) {
		return ant.PeakGain
	}
	g := ant.GainDB(p.AngleTo(rf.Position{X: b.minX, Y: b.minY}))
	g = math.Max(g, ant.GainDB(p.AngleTo(rf.Position{X: b.minX, Y: b.maxY})))
	g = math.Max(g, ant.GainDB(p.AngleTo(rf.Position{X: b.maxX, Y: b.minY})))
	g = math.Max(g, ant.GainDB(p.AngleTo(rf.Position{X: b.maxX, Y: b.maxY})))
	return g
}

// boresightHitsBox reports whether the ray from p along the antenna
// boresight intersects the box (a standard slab test).
func boresightHitsBox(ant rf.Parabolic, p rf.Position, b *audBucket) bool {
	rad := ant.BoresightDeg * math.Pi / 180
	dx, dy := math.Cos(rad), math.Sin(rad)
	tmin, tmax := 0.0, math.Inf(1)
	for _, s := range [2][3]float64{{dx, b.minX - p.X, b.maxX - p.X},
		{dy, b.minY - p.Y, b.maxY - p.Y}} {
		d, lo, hi := s[0], s[1], s[2]
		if math.Abs(d) < 1e-12 {
			if lo > 0 || hi < 0 {
				return false
			}
			continue
		}
		t0, t1 := lo/d, hi/d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		tmin = math.Max(tmin, t0)
		tmax = math.Min(tmax, t1)
	}
	return tmin <= tmax
}
