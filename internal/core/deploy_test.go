package core

import (
	"testing"

	"wgtt/internal/deploy"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/sim"
	"wgtt/internal/transport"
)

// threeSegments is the e2e deployment: three 8-AP segments at the
// paper's 7.5 m pitch, chained with default gaps (24 APs, 180 m).
func threeSegments(scheme Scheme) Config {
	cfg := DefaultConfig(scheme)
	cfg.Segments = []deploy.SegmentSpec{{NumAPs: 8}, {NumAPs: 8}, {NumAPs: 8}}
	return cfg
}

// TestCrossSegmentHandoffTCP rides one TCP client across a
// three-segment deployment for 60 simulated seconds and checks the
// §3.1.2-style controller-to-controller handoff: the client must be
// adopted by each segment it enters, and the flow must never stall for
// more than a second at a segment boundary.
func TestCrossSegmentHandoffTCP(t *testing.T) {
	cfg := threeSegments(WGTT)
	n := MustNewNetwork(cfg)
	if got := n.TotalAPs(); got != 24 {
		t.Fatalf("TotalAPs = %d, want 24", got)
	}
	// ~7 mph covers the 180 m array in just under 60 s.
	c := n.AddClient(mobility.Drive(-5, 0, 7))

	rcv := transport.NewTCPReceiver(n.Loop, c.SendUplink, c.IP, packet.ServerIP, 5001, 80)
	var deliveries []sim.Time
	rcv.OnData = func(seq uint32, bytes int, now sim.Time) {
		deliveries = append(deliveries, now)
	}
	c.Handle(5001, func(p packet.Packet) { rcv.Receive(p) })
	snd := transport.NewTCPSender(n.Loop, n.SendFromServer, packet.ServerIP, c.IP, 80, 5001, 0)
	n.ServerHandle(80, func(p packet.Packet) { snd.OnAck(p) })
	snd.Start()
	n.Run(60 * sim.Second)

	if rcv.InOrderSegments() == 0 {
		t.Fatal("TCP delivered nothing across the deployment")
	}
	imported := 0
	for _, ctrl := range n.Controllers() {
		imported += ctrl.HandoffsImported
	}
	if imported < 2 {
		t.Errorf("HandoffsImported = %d, want ≥ 2 (one per boundary crossed)", imported)
	}
	// The client must end up served by the last segment.
	if ap := n.ServingAP(0); !n.Deploy.Segments[2].ContainsAP(ap) {
		t.Errorf("final serving AP %d not in segment 2", ap)
	}
	// No TCP stall > 1 s while in coverage ([5 s, 55 s] keeps slow-start
	// and the final road exit out of the window).
	lo, hi := 5*sim.Second, 55*sim.Second
	var last sim.Time = sim.Time(lo)
	worst := sim.Duration(0)
	for _, ts := range deliveries {
		if ts.Before(sim.Time(lo)) {
			last = ts
			continue
		}
		if ts.After(sim.Time(hi)) {
			break
		}
		if gap := ts.Sub(last); gap > worst {
			worst = gap
		}
		last = ts
	}
	if worst > sim.Second {
		t.Errorf("worst mid-ride TCP stall = %v, want ≤ 1s", worst)
	}
}

// TestCrossSegmentBaselineReassociation rides a baseline client across
// two segments: the 802.11r reassociation must carry over the
// bridge-to-bridge trunk and downlink must keep flowing in the second
// segment.
func TestCrossSegmentBaselineReassociation(t *testing.T) {
	cfg := DefaultConfig(Enhanced80211r)
	cfg.Segments = []deploy.SegmentSpec{{NumAPs: 8}, {NumAPs: 8}}
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(-5, 0, 15))
	src, sink := udpDownlink(n, c, 10)
	src.Start()
	n.Run(18 * sim.Second) // 120 m at 6.7 m/s

	transfers := 0
	for _, b := range n.Bridges() {
		transfers += b.HandoffTransfers
	}
	if transfers < 1 {
		t.Errorf("bridge HandoffTransfers = %d, want ≥ 1", transfers)
	}
	if sink.Bytes == 0 {
		t.Fatal("baseline delivered nothing")
	}
	// The second bridge must own the association at the end.
	if ap := n.ServingAP(0); !n.Deploy.Segments[1].ContainsAP(ap) {
		t.Errorf("final serving AP %d not in segment 1", ap)
	}
}

// TestSingleSegmentSpecMatchesClassic pins the refactor's parity gate:
// a one-entry Segments list must reproduce the classic monolithic
// deployment bit-for-bit (same RNG fork order, ids, and geometry).
func TestSingleSegmentSpecMatchesClassic(t *testing.T) {
	run := func(cfg Config) float64 {
		n := MustNewNetwork(cfg)
		c := n.AddClient(mobility.Drive(-5, 0, 15))
		src, sink := udpDownlink(n, c, 10)
		src.Start()
		n.Run(5 * sim.Second)
		return float64(sink.Bytes)
	}
	classic := DefaultConfig(WGTT)
	segged := DefaultConfig(WGTT)
	segged.Segments = []deploy.SegmentSpec{{NumAPs: 8, APSpacing: 7.5}}
	a, b := run(classic), run(segged)
	if a != b {
		t.Errorf("classic %v ≠ single-segment spec %v bytes", a, b)
	}
}

// TestRoadExitNoStuckSwitch drives a client far past the end of the
// deployment: throughput must decay to zero without a panic and the
// controller must not wedge in a half-open switch.
func TestRoadExitNoStuckSwitch(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(30, 0, 30)) // exits the 52.5 m array fast
	src, sink := udpDownlink(n, c, 10)
	src.Start()
	n.Run(20 * sim.Second) // ends ~300 m past the last AP

	before := sink.Bytes
	n.Run(5 * sim.Second)
	if sink.Bytes != before {
		t.Errorf("client 300 m out of coverage still receiving (%d → %d bytes)", before, sink.Bytes)
	}
	if n.Ctrl.SwitchPending(c.Addr) {
		t.Error("switch FSM stuck pending after the client left coverage")
	}
}

// TestRoadExitMultiSegment is the same regression at deployment scale:
// leaving the last segment must not leave any controller owning a
// half-exported client or a pending switch.
func TestRoadExitMultiSegment(t *testing.T) {
	cfg := DefaultConfig(WGTT)
	cfg.Segments = []deploy.SegmentSpec{{NumAPs: 4}, {NumAPs: 4}}
	n := MustNewNetwork(cfg)
	c := n.AddClient(mobility.Drive(20, 0, 30)) // crosses into segment 1, then out
	src, sink := udpDownlink(n, c, 10)
	src.Start()
	n.Run(20 * sim.Second)

	before := sink.Bytes
	n.Run(5 * sim.Second)
	if sink.Bytes != before {
		t.Error("client far out of coverage still receiving")
	}
	for i, ctrl := range n.Controllers() {
		if ctrl.SwitchPending(c.Addr) {
			t.Errorf("segment %d switch FSM stuck pending after road exit", i)
		}
	}
}
