// Package client implements the mobile station: a single-radio 802.11n
// client that receives downlink aggregates (answering with block ACKs),
// transmits uplink data addressed to the network's BSSID, and emits the
// periodic uplink frames from which the APs measure CSI.
//
// The same client runs under both WGTT and Enhanced 802.11r; the roaming
// schemes differ only in the AcceptFrom filter (WGTT's APs share one
// BSSID, so the client accepts data from any of them) and in the hooks the
// baseline's roamer attaches to beacons.
package client

import (
	"fmt"

	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/queue"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// Config tunes a client.
type Config struct {
	// KeepaliveInterval paces null/keepalive uplink frames when the
	// uplink is otherwise idle, so APs keep measuring CSI. Zero
	// disables.
	KeepaliveInterval sim.Duration
	// UplinkQueueCap bounds the uplink socket buffer (packets).
	UplinkQueueCap int
	// BAWaitMargin pads the block-ACK wait beyond SIFS+BA airtime.
	BAWaitMargin sim.Duration
	// Rates is the PHY rate table the client transmits with; nil means
	// the default 802.11n ladder. Core fills it from the channel
	// backend.
	Rates *phy.Table
}

// DefaultConfig returns the standard client tuning.
func DefaultConfig() Config {
	return Config{
		KeepaliveInterval: 25 * sim.Millisecond,
		UplinkQueueCap:    1000,
		BAWaitMargin:      60 * sim.Microsecond,
	}
}

// Client is one mobile station.
type Client struct {
	ID   int
	Addr packet.MAC
	IP   packet.IP

	loop   *sim.Loop
	medium *mac.Medium
	node   *mac.Node
	traj   mobility.Trajectory
	cfg    Config
	rng    *sim.RNG

	// alive, when set, is consulted by deferred radio callbacks (contention
	// grants, BA responses) to detect that the client has migrated to
	// another segment domain since the callback was scheduled. The closure
	// is supplied by the owning domain and must only touch that domain's
	// state. Nil on the single-loop path.
	alive func() bool
	// keepaliveEv is the pending keepalive timer, canceled on Detach.
	keepaliveEv *sim.Event
	// tasks are the migration-safe timers scheduled through Sched:
	// Detach cancels their loop events, Attach re-arms them on the new
	// owner's loop (in insertion order, no earlier than its now).
	tasks []*task

	// AcceptFrom filters downlink data by transmitter: under WGTT every
	// AP shares the BSSID, so it returns true for all APs; under the
	// baseline only the associated AP's frames are accepted.
	AcceptFrom func(tx *mac.Node) bool
	// UplinkDst is the layer-2 destination of uplink data: the shared
	// BSSID under WGTT (any AP takes the frame), or the associated AP's
	// address under the baseline.
	UplinkDst packet.MAC
	// OnPacket delivers de-duplicated uplink-layer packets (the
	// client's network stack).
	OnPacket func(p packet.Packet)
	// OnBeacon lets a roamer observe beacons (tx node, ESNR as the RSSI
	// proxy).
	OnBeacon func(tx *mac.Node, esnrDB float64)
	// OnMgmt lets a roamer observe management frames addressed to us.
	OnMgmt func(tx *mac.Node, info mac.MgmtInfo)

	// Uplink transmit path.
	upQ      *queue.FIFO[packet.Packet]
	agg      *mac.Aggregator
	rates    phy.Controller
	busy     bool
	await    *awaitBA
	lastTxAt sim.Time

	// Downlink receive path.
	dupMAC map[dupKey]bool // recent (transmitter, seq) pairs
	dupSeq []dupKey        // eviction ring
	dupIP  map[packet.DedupKey]bool
	dupIPQ []packet.DedupKey

	ipid uint16

	// Stats.
	RxMPDUs        int
	RxDuplicates   int
	RxDupMAC       int
	RxDupIP        int
	RxBytes        int64
	UplinkPPDUs    int
	BACollisions   int
	BATimeouts     int
	KeepalivesSent int
}

type dupKey struct {
	tx  *mac.Node
	seq uint16
}

type awaitBA struct {
	sent  []mac.MPDU
	rate  phy.Rate
	timer *sim.Event
}

// New creates a client and registers its radio on the medium.
func New(id int, loop *sim.Loop, medium *mac.Medium, traj mobility.Trajectory, cfg Config, rng *sim.RNG) *Client {
	cfg.Rates = cfg.Rates.OrDefault()
	c := &Client{
		ID:         id,
		Addr:       packet.ClientMAC(id),
		IP:         packet.ClientIP(id),
		loop:       loop,
		medium:     medium,
		traj:       traj,
		cfg:        cfg,
		rng:        rng,
		upQ:        queue.NewFIFO[packet.Packet](cfg.UplinkQueueCap),
		agg:        mac.NewAggregator(),
		rates:      phy.NewMinstrelFor(cfg.Rates, rng.Fork("minstrel")),
		dupMAC:     make(map[dupKey]bool),
		dupIP:      make(map[packet.DedupKey]bool),
		AcceptFrom: func(*mac.Node) bool { return true },
		UplinkDst:  packet.BSSID,
	}
	c.node = &mac.Node{
		Name: fmt.Sprintf("client%d", id),
		Addr: c.Addr,
		// Pos reads c.loop (not the constructor argument) so a client
		// migrated across segment domains reports positions on its
		// current owner's clock.
		Pos:  func() rf.Position { return c.traj.Pos(c.loop.Now()) },
		Recv: (*clientReceiver)(c),
	}
	medium.Register(c.node)
	if cfg.KeepaliveInterval > 0 {
		// Real clients emit DHCP/ARP traffic right after associating;
		// that first uplink frame is what lets the controller adopt
		// the client immediately.
		c.keepaliveEv = loop.After(sim.Millisecond, c.keepalive)
	}
	return c
}

// Now returns the client's current virtual time (its owning loop's clock).
// Client-side transport endpoints use this as their clock so they stay
// correct when the client migrates between segment domains.
func (c *Client) Now() sim.Time { return c.loop.Now() }

// SetAlive installs the owning domain's liveness check (see the alive
// field). Pass nil on the single-loop path.
func (c *Client) SetAlive(fn func() bool) { c.alive = fn }

// Detach removes the client from its current loop and medium ahead of a
// cross-domain migration: the radio is unregistered (silencing in-flight
// transmissions and pending grants), timers are canceled, and an
// outstanding BA wait is resolved as a timeout so the aggregator's
// retry state survives the move. Must run on the owning domain.
func (c *Client) Detach() {
	c.medium.Unregister(c.node)
	if c.keepaliveEv != nil {
		c.loop.Cancel(c.keepaliveEv)
		c.keepaliveEv = nil
	}
	if aw := c.await; aw != nil {
		c.await = nil
		c.loop.Cancel(aw.timer)
		c.BATimeouts++
		c.agg.Timeout(aw.sent)
		c.rates.Feedback(c.loop.Now(), aw.rate, len(aw.sent), 0)
	}
	c.busy = false
	c.alive = nil
	for _, t := range c.tasks {
		if t.ev != nil {
			c.loop.Cancel(t.ev)
			t.ev = nil
		}
	}
}

// Attach places a detached client onto a new loop and medium (the
// adopting domain). Must run on the adopting domain's goroutine at a
// time consistent with the cross-domain mailbox delay.
func (c *Client) Attach(loop *sim.Loop, medium *mac.Medium, alive func() bool) {
	c.loop = loop
	c.medium = medium
	c.alive = alive
	medium.Register(c.node)
	if c.cfg.KeepaliveInterval > 0 {
		// As in New: an early first keepalive lets the new segment's
		// controller adopt the client quickly.
		c.keepaliveEv = loop.After(sim.Millisecond, c.keepalive)
	}
	for _, t := range c.tasks {
		c.armTask(t)
	}
	c.kick()
}

// Node exposes the client's radio (the core wiring needs it for channel
// lookups).
func (c *Client) Node() *mac.Node { return c.node }

// SendUplink enqueues an IP packet for uplink transmission (the client's
// Wire for transport endpoints). The source address and an IPID are
// stamped here, as the client's IP stack would.
func (c *Client) SendUplink(p packet.Packet) {
	p.Src = c.IP
	c.ipid++
	p.IPID = c.ipid
	p.Created = c.loop.Now()
	c.upQ.Push(p)
	c.kick()
}

// QueueLen reports the uplink backlog.
func (c *Client) QueueLen() int { return c.upQ.Len() }

// keepalive emits a tiny uplink frame when the uplink has been idle, so
// the AP array keeps receiving CSI from this client.
func (c *Client) keepalive() {
	idle := c.loop.Now().Sub(c.lastTxAt) >= c.cfg.KeepaliveInterval
	if idle && c.upQ.Len() == 0 {
		c.ipid++
		c.upQ.Push(packet.Packet{
			Src: c.IP, Dst: packet.ControllerIP, Proto: packet.ProtoUDP,
			IPID: c.ipid, SrcPort: 68, DstPort: 67, PayloadLen: 0,
			Created: c.loop.Now(),
		})
		c.KeepalivesSent++
		c.kick()
	}
	c.keepaliveEv = c.loop.After(c.cfg.KeepaliveInterval, c.keepalive)
}

// kick starts the uplink transmit loop if idle.
func (c *Client) kick() {
	if c.busy || c.upQ.Len() == 0 && c.agg.PendingRetries() == 0 {
		return
	}
	c.busy = true
	if alive := c.alive; alive != nil {
		// The grant may fire after this client migrated away (and even
		// after it migrated back); only the generation-scoped alive
		// check distinguishes the stale grant from a live one.
		c.medium.Contend(c.node, phy.CWMin, func() {
			if alive() {
				c.txop()
			}
		})
		return
	}
	c.medium.Contend(c.node, phy.CWMin, c.txop)
}

// txop builds and transmits one uplink aggregate.
func (c *Client) txop() {
	rate := c.rates.Select(c.loop.Now())
	mpdus := c.agg.Build(rate, func() (packet.Packet, bool) {
		return c.upQ.Pop()
	})
	if len(mpdus) == 0 {
		c.busy = false
		return
	}
	t := c.medium.NewTransmission()
	t.Tx = c.node
	t.Dst = c.UplinkDst
	t.Type = mac.FrameData
	t.Rate = rate
	t.MPDUs = mpdus
	c.medium.Transmit(t)
	c.UplinkPPDUs++
	c.lastTxAt = c.loop.Now()
	deadline := t.End.Add(phy.SIFS + phy.BlockAckAirtime + c.cfg.BAWaitMargin)
	aw := &awaitBA{sent: mpdus, rate: rate}
	aw.timer = c.loop.At(deadline, func() { c.baTimeout(aw) })
	c.await = aw
}

// baTimeout fires when no block ACK arrived for the last aggregate.
func (c *Client) baTimeout(aw *awaitBA) {
	if c.await != aw {
		return
	}
	c.await = nil
	c.BATimeouts++
	c.agg.Timeout(aw.sent)
	c.rates.Feedback(c.loop.Now(), aw.rate, len(aw.sent), 0)
	c.busy = false
	c.kick()
}

// clientReceiver adapts Client to mac.Receiver without exporting the
// method set on Client itself.
type clientReceiver Client

// OnReceive implements mac.Receiver.
func (cr *clientReceiver) OnReceive(t *mac.Transmission, det mac.Detection) {
	c := (*Client)(cr)
	switch t.Type {
	case mac.FrameBlockAck:
		c.onBlockAck(t, det)
	case mac.FrameData:
		c.onDownlinkData(t, det)
	case mac.FrameBeacon:
		if c.OnBeacon != nil && !det.Collided {
			c.OnBeacon(t.Tx, det.ESNRdB)
		}
	case mac.FrameMgmt:
		if c.OnMgmt != nil && !det.Collided && t.Dst == c.Addr {
			c.OnMgmt(t.Tx, t.Mgmt)
		}
	}
}

// onBlockAck processes an AP's acknowledgement of our last uplink
// aggregate. Several APs may answer (they are all associated); the first
// uncollided BA wins, later ones are ignored.
func (c *Client) onBlockAck(t *mac.Transmission, det mac.Detection) {
	if t.Dst != c.Addr || c.await == nil {
		return
	}
	if det.Collided {
		c.BACollisions++
		return // maybe another AP's copy survives
	}
	aw := c.await
	c.await = nil
	c.loop.Cancel(aw.timer)
	res := c.agg.ProcessBA(aw.sent, t.BA)
	c.rates.Feedback(c.loop.Now(), aw.rate, len(aw.sent), res.AckedCount)
	c.busy = false
	c.kick()
}

// onDownlinkData handles an AP→client aggregate: MAC-level dedup, IP-level
// dedup (copies can arrive via two APs around a switch), delivery to the
// stack, and the block-ACK response.
func (c *Client) onDownlinkData(t *mac.Transmission, det mac.Detection) {
	if t.Dst != c.Addr {
		return
	}
	if c.AcceptFrom != nil && !c.AcceptFrom(t.Tx) {
		return // baseline: not my AP
	}
	if det.Collided {
		return // nothing decodable, no BA
	}
	anyOK := false
	for i := range t.MPDUs {
		if !det.OK[i] {
			continue
		}
		anyOK = true
		m := &t.MPDUs[i]
		k := dupKey{tx: t.Tx, seq: m.Seq}
		if c.dupMAC[k] {
			c.RxDuplicates++
			c.RxDupMAC++
			continue // MAC retransmission of a frame we already have
		}
		c.rememberMAC(k)
		ik := m.Pkt.DedupKey()
		if c.dupIP[ik] {
			c.RxDuplicates++
			c.RxDupIP++
			continue // same IP packet via another AP
		}
		c.rememberIP(ik)
		c.RxMPDUs++
		c.RxBytes += int64(m.Pkt.WireLen())
		if c.OnPacket != nil {
			c.OnPacket(m.Pkt)
		}
	}
	if anyOK {
		// Compressed BA back to the transmitter after SIFS. The BA
		// acknowledges decoded MPDUs even if they were duplicates:
		// acking is about MAC receipt, not stack delivery.
		ba := mac.BuildBitmap(t.MPDUs, det.OK)
		// Capture the medium and liveness check now: by the time the
		// SIFS expires the client may have migrated to another domain,
		// and reading c.medium then would race with the new owner. t
		// itself is pooled and may be recycled by then, so copy the
		// address out too.
		medium, node, alive, dst := c.medium, c.node, c.alive, t.Tx.Addr
		c.loop.After(phy.SIFS, func() {
			if alive != nil && !alive() {
				return
			}
			bat := medium.NewTransmission()
			bat.Tx = node
			bat.Dst = dst
			bat.Type = mac.FrameBlockAck
			bat.Rate = c.cfg.Rates.Basic
			bat.BA = ba
			medium.Transmit(bat)
		})
	}
}

// Dedup window sizes. The MAC window MUST be well below the 4096-value
// sequence space: the transmitter legitimately reuses a sequence number
// every 4096 MPDUs, and a window as large as the space would mistake every
// reuse for a retransmission. 1024 comfortably exceeds any real
// retransmission horizon (the BA window is 64).
const (
	macDedupWindow = 1024
	ipDedupWindow  = 4096
)

func (c *Client) rememberMAC(k dupKey) {
	c.dupMAC[k] = true
	c.dupSeq = append(c.dupSeq, k)
	if len(c.dupSeq) > macDedupWindow {
		delete(c.dupMAC, c.dupSeq[0])
		c.dupSeq = c.dupSeq[1:]
	}
}

func (c *Client) rememberIP(k packet.DedupKey) {
	c.dupIP[k] = true
	c.dupIPQ = append(c.dupIPQ, k)
	if len(c.dupIPQ) > ipDedupWindow {
		delete(c.dupIP, c.dupIPQ[0])
		c.dupIPQ = c.dupIPQ[1:]
	}
}

// DebugState exposes internal flags for test diagnostics.
func (c *Client) DebugState() (busy bool, awaiting bool, qlen int, retries int) {
	return c.busy, c.await != nil, c.upQ.Len(), c.agg.PendingRetries()
}
