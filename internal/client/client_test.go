package client

import (
	"testing"

	"wgtt/internal/mac"
	"wgtt/internal/mobility"
	"wgtt/internal/packet"
	"wgtt/internal/phy"
	"wgtt/internal/rf"
	"wgtt/internal/sim"
)

// flatChannel: every pair hears every pair at a fixed SNR.
type flatChannel struct{ snr float64 }

func (f flatChannel) SubcarrierSNRs(tx, rx *mac.Node, dst []float64) bool {
	for i := range dst {
		dst[i] = f.snr
	}
	return true
}
func (f flatChannel) SenseSNRdB(tx, rx *mac.Node) float64 { return f.snr }

// apStub is a minimal AP-side radio: records uplink deliveries and can
// ack them.
type apStub struct {
	loop   *sim.Loop
	medium *mac.Medium
	node   *mac.Node
	rx     []packet.Packet
	bas    []mac.BAInfo
	ack    bool
}

func newAPStub(loop *sim.Loop, medium *mac.Medium, id int, ack bool) *apStub {
	a := &apStub{loop: loop, medium: medium, ack: ack}
	a.node = &mac.Node{
		Name: "apstub",
		Addr: packet.APMAC(id),
		Pos:  func() rf.Position { return rf.Position{X: 0, Y: 18} },
		Recv: a,
	}
	medium.Register(a.node)
	return a
}

func (a *apStub) OnReceive(t *mac.Transmission, det mac.Detection) {
	switch t.Type {
	case mac.FrameData:
		if t.Dst != packet.BSSID && t.Dst != a.node.Addr {
			return
		}
		anyOK := false
		for i := range t.MPDUs {
			if det.OK[i] {
				a.rx = append(a.rx, t.MPDUs[i].Pkt)
				anyOK = true
			}
		}
		if anyOK && a.ack {
			ba := mac.BuildBitmap(t.MPDUs, det.OK)
			a.loop.After(phy.SIFS, func() {
				a.medium.Transmit(&mac.Transmission{
					Tx: a.node, Dst: t.Tx.Addr, Type: mac.FrameBlockAck,
					Rate: phy.BasicRate, BA: ba,
				})
			})
		}
	case mac.FrameBlockAck:
		if t.Dst == a.node.Addr {
			a.bas = append(a.bas, t.BA)
		}
	}
}

type rig struct {
	loop   *sim.Loop
	medium *mac.Medium
	cli    *Client
	ap     *apStub
	got    []packet.Packet
}

func newRig(t *testing.T, ack bool) *rig {
	t.Helper()
	r := &rig{loop: sim.NewLoop()}
	r.medium = mac.NewMedium(r.loop, flatChannel{snr: 30}, sim.NewRNG(3))
	r.ap = newAPStub(r.loop, r.medium, 0, ack)
	r.cli = New(0, r.loop, r.medium, mobility.Stationary{}, DefaultConfig(), sim.NewRNG(4))
	r.cli.OnPacket = func(p packet.Packet) { r.got = append(r.got, p) }
	return r
}

func (r *rig) run(d sim.Duration) { r.loop.Run(r.loop.Now().Add(d)) }

// deliver transmits a downlink aggregate from the AP stub to the client.
func (r *rig) deliver(seq0 uint16, pkts ...packet.Packet) *mac.Transmission {
	t := &mac.Transmission{
		Tx: r.ap.node, Dst: r.cli.Addr, Type: mac.FrameData, Rate: phy.Rates[0],
	}
	for i, p := range pkts {
		t.MPDUs = append(t.MPDUs, mac.MPDU{Seq: seq0 + uint16(i), Pkt: p})
	}
	r.medium.Transmit(t)
	return t
}

func dlPkt(ipid uint16) packet.Packet {
	return packet.Packet{
		Src: packet.ServerIP, Dst: packet.ClientIP(0), Proto: packet.ProtoUDP,
		IPID: ipid, DstPort: 9001, PayloadLen: 500,
	}
}

func TestClientDeliversAndAcksDownlink(t *testing.T) {
	r := newRig(t, false)
	r.deliver(100, dlPkt(1), dlPkt(2), dlPkt(3))
	r.run(5 * sim.Millisecond)
	if len(r.got) != 3 {
		t.Fatalf("delivered %d/3", len(r.got))
	}
	if len(r.ap.bas) != 1 {
		t.Fatalf("AP heard %d block ACKs, want 1", len(r.ap.bas))
	}
	ba := r.ap.bas[0]
	for seq := uint16(100); seq < 103; seq++ {
		if !ba.Acked(seq) {
			t.Errorf("seq %d not acked", seq)
		}
	}
	if r.cli.RxMPDUs != 3 || r.cli.RxBytes == 0 {
		t.Errorf("stats: RxMPDUs=%d RxBytes=%d", r.cli.RxMPDUs, r.cli.RxBytes)
	}
}

func TestClientMACDedupOnRetransmission(t *testing.T) {
	r := newRig(t, false)
	// Same MPDU (same tx, same seq) delivered twice — a MAC
	// retransmission after a lost BA. Stack sees it once, but it is
	// re-acked.
	r.deliver(7, dlPkt(42))
	r.run(2 * sim.Millisecond)
	r.deliver(7, dlPkt(42))
	r.run(5 * sim.Millisecond)
	if len(r.got) != 1 {
		t.Fatalf("stack saw %d copies, want 1", len(r.got))
	}
	if r.cli.RxDupMAC != 1 {
		t.Errorf("RxDupMAC = %d", r.cli.RxDupMAC)
	}
	if len(r.ap.bas) != 2 {
		t.Errorf("retransmission not re-acked: %d BAs", len(r.ap.bas))
	}
}

func TestClientIPDedupAcrossAPs(t *testing.T) {
	r := newRig(t, false)
	ap2 := newAPStub(r.loop, r.medium, 1, false)
	// The same IP packet arrives via two different APs (fan-out copies
	// around a switch): different MAC seq spaces, same (src, IPID).
	r.deliver(7, dlPkt(42))
	r.run(2 * sim.Millisecond)
	t2 := &mac.Transmission{
		Tx: ap2.node, Dst: r.cli.Addr, Type: mac.FrameData, Rate: phy.Rates[0],
		MPDUs: []mac.MPDU{{Seq: 900, Pkt: dlPkt(42)}},
	}
	r.medium.Transmit(t2)
	r.run(5 * sim.Millisecond)
	if len(r.got) != 1 {
		t.Fatalf("stack saw %d copies, want 1", len(r.got))
	}
	if r.cli.RxDupIP != 1 {
		t.Errorf("RxDupIP = %d", r.cli.RxDupIP)
	}
}

func TestClientAcceptFromFilter(t *testing.T) {
	r := newRig(t, false)
	other := newAPStub(r.loop, r.medium, 1, false)
	r.cli.AcceptFrom = func(tx *mac.Node) bool { return tx == other.node }
	r.deliver(7, dlPkt(1)) // from the filtered-out AP
	r.run(5 * sim.Millisecond)
	if len(r.got) != 0 {
		t.Fatal("accepted data from a non-associated BSS")
	}
	if len(r.ap.bas) != 0 {
		t.Fatal("acked a frame from a non-associated BSS")
	}
}

func TestClientUplinkFlow(t *testing.T) {
	r := newRig(t, true)
	for i := 0; i < 12; i++ {
		r.cli.SendUplink(packet.Packet{
			Dst: packet.ServerIP, Proto: packet.ProtoUDP, DstPort: 7001,
			Seq: uint32(i), PayloadLen: 900,
		})
	}
	r.run(50 * sim.Millisecond)
	data := 0
	for _, p := range r.ap.rx {
		if p.PayloadLen == 0 {
			continue // keepalive
		}
		data++
		// Source addressing was stamped by the client's stack.
		if p.Src != r.cli.IP {
			t.Fatalf("uplink Src = %v", p.Src)
		}
		if p.IPID == 0 {
			t.Fatal("uplink IPID not stamped")
		}
	}
	if data != 12 {
		t.Fatalf("AP received %d/12 uplink data packets", data)
	}
	if r.cli.QueueLen() != 0 {
		t.Errorf("uplink queue not drained: %d", r.cli.QueueLen())
	}
}

func TestClientUplinkRetriesWithoutAck(t *testing.T) {
	r := newRig(t, false) // AP never acks
	r.cli.SendUplink(packet.Packet{Dst: packet.ServerIP, Proto: packet.ProtoUDP, PayloadLen: 500})
	r.run(100 * sim.Millisecond)
	if r.cli.BATimeouts == 0 {
		t.Error("no BA timeouts despite silent AP")
	}
	// The frame is retried then dropped; the loop must not wedge.
	if r.cli.QueueLen() != 0 {
		t.Error("uplink queue wedged")
	}
	// AP decoded several copies (retries) of the same packet.
	if len(r.ap.rx) < 2 {
		t.Errorf("AP saw %d attempts, want ≥2", len(r.ap.rx))
	}
}

func TestClientKeepalivesFlowWhenIdle(t *testing.T) {
	r := newRig(t, true)
	r.run(500 * sim.Millisecond)
	if r.cli.KeepalivesSent < 5 {
		t.Errorf("keepalives = %d in 500 ms, want ≥5", r.cli.KeepalivesSent)
	}
	if len(r.ap.rx) < 5 {
		t.Errorf("AP received %d keepalives", len(r.ap.rx))
	}
	// All keepalives carry zero payload and the controller's address.
	for _, p := range r.ap.rx {
		if p.PayloadLen != 0 || p.Dst != packet.ControllerIP {
			t.Fatalf("odd keepalive: %+v", p)
		}
	}
}

func TestClientBeaconAndMgmtHooks(t *testing.T) {
	r := newRig(t, false)
	beacons, mgmts := 0, 0
	r.cli.OnBeacon = func(tx *mac.Node, esnr float64) {
		beacons++
		// Beacons ride BPSK, whose BER underflows on a clean 30 dB
		// channel, so the ESNR saturates high; it just must not be
		// low.
		if esnr < 20 {
			t.Errorf("beacon ESNR = %v on a 30 dB channel", esnr)
		}
	}
	r.cli.OnMgmt = func(tx *mac.Node, info mac.MgmtInfo) {
		mgmts++
		if info.Kind != mac.MgmtReassocResp {
			t.Errorf("mgmt kind = %v", info.Kind)
		}
	}
	r.medium.Transmit(&mac.Transmission{
		Tx: r.ap.node, Dst: mac.Broadcast, Type: mac.FrameBeacon, Rate: phy.BasicRate,
	})
	r.medium.Transmit(&mac.Transmission{
		Tx: r.ap.node, Dst: r.cli.Addr, Type: mac.FrameMgmt, Rate: phy.BasicRate,
		Mgmt: mac.MgmtInfo{Kind: mac.MgmtReassocResp},
	})
	// A mgmt frame for someone else must not reach the hook.
	r.medium.Transmit(&mac.Transmission{
		Tx: r.ap.node, Dst: packet.ClientMAC(5), Type: mac.FrameMgmt, Rate: phy.BasicRate,
		Mgmt: mac.MgmtInfo{Kind: mac.MgmtReassocResp},
	})
	r.run(10 * sim.Millisecond)
	if beacons != 1 || mgmts != 1 {
		t.Errorf("beacons=%d mgmts=%d, want 1,1", beacons, mgmts)
	}
}

func TestClientPartialDecodeAcksOnlyDecoded(t *testing.T) {
	// Deliver at a rate the 30 dB channel cannot fully sustain, forcing
	// some MPDU losses; the BA bitmap must match exactly the decoded
	// set. Use a weak channel for determinism of at least one loss.
	loop := sim.NewLoop()
	medium := mac.NewMedium(loop, flatChannel{snr: 14}, sim.NewRNG(9))
	ap := newAPStub(loop, medium, 0, false)
	cli := New(0, loop, medium, mobility.Stationary{}, DefaultConfig(), sim.NewRNG(10))
	delivered := map[uint32]bool{}
	cli.OnPacket = func(p packet.Packet) { delivered[p.Seq] = true }

	tr := &mac.Transmission{
		Tx: ap.node, Dst: cli.Addr, Type: mac.FrameData, Rate: phy.Rates[5], // MCS5 at 14 dB: heavy loss
	}
	for i := 0; i < 30; i++ {
		p := dlPkt(uint16(i + 1))
		p.Seq = uint32(i)
		tr.MPDUs = append(tr.MPDUs, mac.MPDU{Seq: uint16(i), Pkt: p})
	}
	medium.Transmit(tr)
	loop.Run(loop.Now().Add(10 * sim.Millisecond))

	if len(ap.bas) == 0 {
		if len(delivered) != 0 {
			t.Fatal("packets delivered but nothing acked")
		}
		return // everything lost: legitimately no BA
	}
	ba := ap.bas[0]
	for i := 0; i < 30; i++ {
		if ba.Acked(uint16(i)) != delivered[uint32(i)] {
			t.Fatalf("seq %d: acked=%v delivered=%v", i, ba.Acked(uint16(i)), delivered[uint32(i)])
		}
	}
}
