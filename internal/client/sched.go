package client

import "wgtt/internal/sim"

// task is one migration-safe client-side timer: the absolute fire time
// survives a cross-domain move even though the underlying loop event
// does not.
type task struct {
	at sim.Time
	fn func()
	ev *sim.Event
}

// Sched is a timer scheduler bound to the client's owning event loop.
// Unlike scheduling on a captured *sim.Loop, timers placed here follow
// the client across segment-domain migrations: Detach cancels the
// pending loop events and Attach re-arms them on the adopting domain's
// loop, no earlier than its current time. Client-side traffic sources
// (CBR uplink, conferencing) must use this so their emission callbacks
// never run in a domain that no longer owns the client's state.
//
// Sched satisfies transport.Sched, as *sim.Loop does; the two are
// interchangeable on the single-loop path where every timer lands on
// the same loop at the same times.
type Sched struct{ c *Client }

// Sched returns the client's migration-safe scheduler.
func (c *Client) Sched() Sched { return Sched{c} }

// Now returns the owning loop's current time.
func (s Sched) Now() sim.Time { return s.c.loop.Now() }

// After schedules fn d after now on the owning loop. The returned event
// is valid for Cancel until the client next migrates; a stale handle
// cancels nothing (the source's own running flag must gate re-arming).
func (s Sched) After(d sim.Duration, fn func()) *sim.Event {
	c := s.c
	t := &task{at: c.loop.Now().Add(d), fn: fn}
	c.tasks = append(c.tasks, t)
	c.armTask(t)
	return t.ev
}

// Cancel drops a pending timer by its event handle.
func (s Sched) Cancel(ev *sim.Event) {
	c := s.c
	if ev == nil {
		return
	}
	for i, t := range c.tasks {
		if t.ev == ev {
			c.loop.Cancel(ev)
			c.tasks = append(c.tasks[:i], c.tasks[i+1:]...)
			return
		}
	}
}

// armTask schedules a task on the current loop. A fire time in the past
// (the task traveled across a migration's mailbox delay) clamps to now.
func (c *Client) armTask(t *task) {
	at := t.at
	if now := c.loop.Now(); at.Before(now) {
		at = now
	}
	// AtKeep: sources hold the returned handle across migrations and may
	// Cancel it long after it fired; a recycled event would alias a live
	// timer, so task events stay out of the loop's free list.
	t.ev = c.loop.AtKeep(at, func() {
		c.removeTask(t)
		t.fn()
	})
}

// removeTask unlinks a fired task.
func (c *Client) removeTask(t *task) {
	for i, x := range c.tasks {
		if x == t {
			c.tasks = append(c.tasks[:i], c.tasks[i+1:]...)
			return
		}
	}
}
