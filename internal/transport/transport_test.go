package transport

import (
	"math"
	"testing"

	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// pipe is a bidirectional lossy network: it delivers sender→receiver data
// and receiver→sender ACKs after a delay, dropping a configurable
// fraction via a deterministic counter (every Nth packet).
type pipe struct {
	loop      *sim.Loop
	delay     sim.Duration
	dropEvery int // drop every Nth data packet; 0 = lossless
	count     int
	blocked   bool // simulate total outage

	toReceiver func(packet.Packet)
	toSender   func(packet.Packet)
}

func (p *pipe) sendData(pkt packet.Packet) {
	if p.blocked {
		return
	}
	p.count++
	if p.dropEvery > 0 && p.count%p.dropEvery == 0 {
		return
	}
	p.loop.After(p.delay, func() { p.toReceiver(pkt) })
}

func (p *pipe) sendAck(pkt packet.Packet) {
	if p.blocked {
		return
	}
	p.loop.After(p.delay, func() { p.toSender(pkt) })
}

func newTCPPair(loop *sim.Loop, delay sim.Duration, dropEvery int, total uint32) (*TCPSender, *TCPReceiver, *pipe) {
	p := &pipe{loop: loop, delay: delay, dropEvery: dropEvery}
	snd := NewTCPSender(loop, p.sendData, packet.ServerIP, packet.ClientIP(0), 80, 5000, total)
	rcv := NewTCPReceiver(loop, p.sendAck, packet.ClientIP(0), packet.ServerIP, 5000, 80)
	p.toReceiver = rcv.Receive
	p.toSender = snd.OnAck
	return snd, rcv, p
}

func sec(s float64) sim.Time { return sim.Time(s * float64(sim.Second)) }

func TestTCPLosslessBulkTransfer(t *testing.T) {
	loop := sim.NewLoop()
	snd, rcv, _ := newTCPPair(loop, 5*sim.Millisecond, 0, 0)
	snd.Start()
	loop.Run(sec(5))
	// 10 ms RTT, unlimited flow: should move thousands of segments.
	if rcv.InOrderSegments() < 2000 {
		t.Errorf("delivered %d segments in 5 s over lossless pipe", rcv.InOrderSegments())
	}
	if snd.Retransmits > 0 {
		t.Errorf("%d retransmits on a lossless pipe", snd.Retransmits)
	}
	if snd.Timeouts > 0 {
		t.Errorf("%d timeouts on a lossless pipe", snd.Timeouts)
	}
	// RTT estimate near 10 ms.
	if rtt := snd.SRTT(); rtt < 8*sim.Millisecond || rtt > 40*sim.Millisecond {
		t.Errorf("SRTT = %v, want ≈10 ms", rtt)
	}
}

func TestTCPFiniteTransferCompletes(t *testing.T) {
	loop := sim.NewLoop()
	var delivered int
	snd, rcv, _ := newTCPPair(loop, 2*sim.Millisecond, 0, 100)
	rcv.OnData = func(seq uint32, bytes int, now sim.Time) { delivered += bytes }
	snd.Start()
	loop.Run(sec(5))
	if !snd.Done() {
		t.Fatal("finite transfer not done")
	}
	if delivered != 100*MSS {
		t.Errorf("delivered %d bytes, want %d", delivered, 100*MSS)
	}
}

func TestTCPFastRetransmitRecoversLoss(t *testing.T) {
	loop := sim.NewLoop()
	snd, rcv, _ := newTCPPair(loop, 5*sim.Millisecond, 50, 0) // 2% loss
	snd.Start()
	loop.Run(sec(5))
	if rcv.InOrderSegments() < 500 {
		t.Errorf("only %d segments through 2%% loss", rcv.InOrderSegments())
	}
	if snd.Retransmits == 0 {
		t.Error("no retransmits despite loss")
	}
	// Fast retransmit should handle most losses without RTO.
	if snd.Timeouts > snd.Retransmits/2 {
		t.Errorf("timeouts %d vs retransmits %d: fast retransmit not working", snd.Timeouts, snd.Retransmits)
	}
}

func TestTCPOutageCollapsesThenRecovers(t *testing.T) {
	// The Fig. 14 baseline scenario: the path dies mid-flow. The sender
	// must hit RTO with exponential backoff; when the path returns the
	// flow must resume.
	loop := sim.NewLoop()
	snd, rcv, p := newTCPPair(loop, 5*sim.Millisecond, 0, 0)
	snd.Start()
	loop.At(sec(1), func() { p.blocked = true })
	loop.Run(sec(4))
	inDark := rcv.InOrderSegments()
	timeoutsDuringOutage := snd.Timeouts
	if timeoutsDuringOutage == 0 {
		t.Fatal("no RTO during 3 s outage")
	}
	// Exponential backoff: far fewer timeouts than outage/minRTO.
	if timeoutsDuringOutage > 8 {
		t.Errorf("timeouts = %d, backoff not exponential", timeoutsDuringOutage)
	}
	if snd.Cwnd() != 1 {
		t.Errorf("cwnd = %v during outage, want 1", snd.Cwnd())
	}
	p.blocked = false
	loop.Run(sec(10))
	if rcv.InOrderSegments() <= inDark+100 {
		t.Errorf("flow did not recover after outage: %d → %d", inDark, rcv.InOrderSegments())
	}
}

func TestTCPReceiverReordersAndAcks(t *testing.T) {
	loop := sim.NewLoop()
	var acks []uint32
	var order []uint32
	rcv := NewTCPReceiver(loop, func(p packet.Packet) { acks = append(acks, p.Ack) },
		packet.ClientIP(0), packet.ServerIP, 5000, 80)
	rcv.OnData = func(seq uint32, _ int, _ sim.Time) { order = append(order, seq) }

	seg := func(s uint32) packet.Packet {
		return packet.Packet{Proto: packet.ProtoTCP, Seq: s, PayloadLen: MSS}
	}
	rcv.Receive(seg(0))
	rcv.Receive(seg(2)) // hole at 1
	rcv.Receive(seg(3))
	rcv.Receive(seg(1)) // fills hole → 1,2,3 deliver in order
	rcv.Receive(seg(1)) // duplicate

	wantAcks := []uint32{1, 1, 1, 4, 4}
	if len(acks) != len(wantAcks) {
		t.Fatalf("acks = %v", acks)
	}
	for i := range wantAcks {
		if acks[i] != wantAcks[i] {
			t.Fatalf("acks = %v, want %v", acks, wantAcks)
		}
	}
	wantOrder := []uint32{0, 1, 2, 3}
	if len(order) != 4 {
		t.Fatalf("deliveries = %v", order)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("deliveries = %v", order)
		}
	}
	if rcv.DupSegments != 1 {
		t.Errorf("DupSegments = %d", rcv.DupSegments)
	}
}

func TestTCPDupAckTriggersExactlyOnThreshold(t *testing.T) {
	loop := sim.NewLoop()
	var sentSeqs []uint32
	snd := NewTCPSender(loop, func(p packet.Packet) { sentSeqs = append(sentSeqs, p.Seq) },
		packet.ServerIP, packet.ClientIP(0), 80, 5000, 0)
	snd.Start() // sends initCwnd segments
	n := len(sentSeqs)
	if n != initCwnd {
		t.Fatalf("initial burst = %d", n)
	}
	dup := packet.Packet{Proto: packet.ProtoTCP, Ack: 0, Flags: packet.FlagACK}
	snd.OnAck(dup)
	snd.OnAck(dup)
	if snd.Retransmits != 0 {
		t.Fatal("retransmitted before third dup ack")
	}
	snd.OnAck(dup)
	if snd.Retransmits != 1 {
		t.Fatalf("Retransmits = %d after third dup ack", snd.Retransmits)
	}
	if sentSeqs[len(sentSeqs)-1] != 0 {
		t.Errorf("fast retransmit sent seq %d, want 0", sentSeqs[len(sentSeqs)-1])
	}
	loop.Run(sec(0)) // no pending panics
}

func TestUDPSourceRate(t *testing.T) {
	loop := sim.NewLoop()
	sink := NewUDPSink(loop)
	src := NewUDPSource(loop, func(p packet.Packet) { sink.Receive(p) },
		packet.ServerIP, packet.ClientIP(0), 9000, 9001, 10, 1400)
	src.Start()
	loop.Run(sec(1))
	// 10 Mbit/s of 1428-byte wire packets ≈ 875 packets/s.
	gotMbps := float64(sink.Bytes) * 8 / 1e6
	if math.Abs(gotMbps-10) > 0.5 {
		t.Errorf("offered rate = %v Mbit/s, want 10", gotMbps)
	}
	if sink.LossRate() != 0 {
		t.Errorf("loss = %v on lossless path", sink.LossRate())
	}
	// Stop halts emission.
	src.Stop()
	before := sink.Received
	loop.Run(sec(2))
	if sink.Received != before {
		t.Error("source kept sending after Stop")
	}
}

func TestUDPSinkLossRate(t *testing.T) {
	loop := sim.NewLoop()
	sink := NewUDPSink(loop)
	for seq := uint32(0); seq < 100; seq++ {
		if seq%10 == 0 {
			continue // drop every 10th
		}
		sink.Receive(packet.Packet{Proto: packet.ProtoUDP, Seq: seq, PayloadLen: 100})
	}
	if l := sink.LossRate(); math.Abs(l-0.1) > 0.02 {
		t.Errorf("LossRate = %v, want ≈0.1", l)
	}
	empty := NewUDPSink(loop)
	if empty.LossRate() != 0 {
		t.Error("empty sink loss nonzero")
	}
}

func TestUDPSinkCallback(t *testing.T) {
	loop := sim.NewLoop()
	sink := NewUDPSink(loop)
	var got []uint32
	sink.OnPacket = func(p packet.Packet, _ sim.Time) { got = append(got, p.Seq) }
	sink.Receive(packet.Packet{Seq: 7})
	if len(got) != 1 || got[0] != 7 {
		t.Error("OnPacket not invoked")
	}
}
