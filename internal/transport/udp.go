// Package transport implements the simplified end-to-end protocols the
// evaluation drives over the network: a constant-bit-rate UDP source/sink
// pair (the iperf3 analogue) and a Reno-style TCP with slow start,
// congestion avoidance, fast retransmit and exponential-backoff RTO —
// enough fidelity to reproduce the paper's transport-level behaviour,
// most importantly the TCP timeout collapse when Enhanced 802.11r strands
// the client (Fig. 14).
package transport

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// Wire is the attachment point between an endpoint and the network: Send
// injects a packet toward the peer. The network delivers return packets
// by calling the endpoint's receive methods.
type Wire func(p packet.Packet)

// Clock is the time source a timer-free endpoint stamps arrivals with. A
// *sim.Loop satisfies it; so does a mobile client, whose clock follows
// the event-loop domain that currently owns it. Endpoints that schedule
// timers (sources, senders) take a Sched instead.
type Clock interface {
	Now() sim.Time
}

// Sched is the timer facility a source schedules emissions on. A
// *sim.Loop satisfies it (pinning the source to that loop's domain); a
// mobile client's migration-safe scheduler (client.Sched) satisfies it
// too, keeping client-side sources correct when the client migrates
// between segment domains.
type Sched interface {
	Clock
	After(d sim.Duration, fn func()) *sim.Event
	Cancel(ev *sim.Event)
}

// UDPSource emits fixed-size datagrams at a constant bit rate.
type UDPSource struct {
	sched   Sched
	out     Wire
	src     packet.IP
	dst     packet.IP
	srcPort uint16
	dstPort uint16

	payload  int
	interval sim.Duration

	seq     uint32
	ipid    uint16
	running bool
	ev      *sim.Event
	// emitFn caches the emit method value so each rescheduling does not
	// allocate a fresh closure.
	emitFn func()

	Sent int
}

// NewUDPSource builds a CBR source sending payload-byte datagrams at
// rateMbps (counting IP+UDP headers against the rate, as iperf does).
// Emissions are timed on sched: pass the server loop for downlink
// sources, the client's Sched for uplink sources.
func NewUDPSource(sched Sched, out Wire, src, dst packet.IP, srcPort, dstPort uint16, rateMbps float64, payload int) *UDPSource {
	proto := packet.Packet{Proto: packet.ProtoUDP, PayloadLen: uint16(payload)}
	wire := proto.WireLen()
	interval := sim.Duration(float64(wire*8) / (rateMbps * 1e6) * 1e9)
	if interval <= 0 {
		interval = sim.Microsecond
	}
	return &UDPSource{
		sched: sched, out: out, src: src, dst: dst,
		srcPort: srcPort, dstPort: dstPort,
		payload: payload, interval: interval,
	}
}

// Start begins emission; safe to call once.
func (u *UDPSource) Start() {
	if u.running {
		return
	}
	u.running = true
	if u.emitFn == nil {
		u.emitFn = u.emit
	}
	u.emit()
}

// Stop halts emission.
func (u *UDPSource) Stop() {
	u.running = false
	if u.ev != nil {
		u.sched.Cancel(u.ev)
		u.ev = nil
	}
}

func (u *UDPSource) emit() {
	if !u.running {
		return
	}
	u.ipid++
	p := packet.Packet{
		Src: u.src, Dst: u.dst, Proto: packet.ProtoUDP,
		IPID: u.ipid, SrcPort: u.srcPort, DstPort: u.dstPort,
		Seq: u.seq, PayloadLen: uint16(u.payload),
		Created: u.sched.Now(),
	}
	u.seq++
	u.Sent++
	u.out(p)
	u.ev = u.sched.After(u.interval, u.emitFn)
}

// UDPSink counts received datagrams and estimates loss from sequence
// numbers.
type UDPSink struct {
	Received int
	Bytes    int64
	maxSeq   uint32
	seen     bool
	// OnPacket, when set, observes each arrival.
	OnPacket func(p packet.Packet, now sim.Time)
	clock    Clock
}

// NewUDPSink returns a sink stamping arrivals from clock.
func NewUDPSink(clock Clock) *UDPSink {
	return &UDPSink{clock: clock}
}

// Receive consumes one datagram from the network.
func (s *UDPSink) Receive(p packet.Packet) {
	s.Received++
	s.Bytes += int64(p.WireLen())
	if !s.seen || p.Seq > s.maxSeq {
		s.maxSeq = p.Seq
		s.seen = true
	}
	if s.OnPacket != nil {
		s.OnPacket(p, s.clock.Now())
	}
}

// LossRate estimates the fraction of datagrams lost, assuming in-order
// generation: 1 − received/(maxSeq+1).
func (s *UDPSink) LossRate() float64 {
	if !s.seen {
		return 0
	}
	expected := float64(s.maxSeq) + 1
	loss := 1 - float64(s.Received)/expected
	if loss < 0 {
		return 0
	}
	return loss
}
