package transport

import (
	"wgtt/internal/packet"
	"wgtt/internal/sim"
)

// TCP constants.
const (
	// MSS is the segment payload size.
	MSS = 1448
	// Timing follows the Linux defaults the testbed machines ran.
	initialRTO = 1 * sim.Second
	minRTO     = 200 * sim.Millisecond
	// maxRTO caps exponential backoff. Classic Reno backs off to
	// minutes; modern stacks (tail-loss probe, RACK) re-probe within
	// seconds, which is what a 2017 Linux sender effectively did.
	maxRTO    = 2 * sim.Second
	dupThresh = 3
	initCwnd  = 10
	// maxCwnd models the receiver's advertised window (a few hundred KB
	// of socket buffer), bounding how far slow start can inflate over a
	// short fat path.
	maxCwnd = 256
)

// TCPSender is the data-sending half of a simplified Reno connection.
// Sequence numbers count segments, not bytes; every segment carries MSS
// payload bytes.
type TCPSender struct {
	loop    *sim.Loop
	out     Wire
	src     packet.IP
	dst     packet.IP
	srcPort uint16
	dstPort uint16

	nextSeq uint32 // next new segment to send
	sndUna  uint32 // oldest unacknowledged
	maxSent uint32 // highest segment ever transmitted + 1
	limit   uint32 // app data limit in segments; 0 = unlimited (bulk)

	cwnd     float64
	ssthresh float64
	dupAcks  int
	inFR     bool // fast recovery

	srtt    sim.Duration
	rttvar  sim.Duration
	rto     sim.Duration
	hasSRTT bool
	rtoEv   *sim.Event

	sendTime map[uint32]sim.Time // first-transmission times for RTT
	retx     map[uint32]bool     // segments ever retransmitted (Karn)

	ipid uint16

	// Stats.
	SegmentsSent  int
	Retransmits   int
	Timeouts      int
	LastRTOFiring sim.Time
}

// NewTCPSender creates a bulk sender. If totalSegments > 0 the connection
// carries exactly that much data (web page, video file); otherwise it is
// an unbounded iperf-style flow.
func NewTCPSender(loop *sim.Loop, out Wire, src, dst packet.IP, srcPort, dstPort uint16, totalSegments uint32) *TCPSender {
	return &TCPSender{
		loop: loop, out: out, src: src, dst: dst,
		srcPort: srcPort, dstPort: dstPort,
		limit:    totalSegments,
		cwnd:     initCwnd,
		ssthresh: 1 << 20,
		rto:      initialRTO,
		sendTime: make(map[uint32]sim.Time),
		retx:     make(map[uint32]bool),
	}
}

// Start opens the flow (we skip the handshake: the paper's flows are
// long-lived and the handshake adds nothing to the phenomena under
// study).
func (t *TCPSender) Start() { t.trySend() }

// Extend raises a finite sender's data limit by n segments (application
// pacing: a streaming server feeding its socket at the media rate).
func (t *TCPSender) Extend(n uint32) {
	if t.limit == 0 {
		return
	}
	t.limit += n
	t.trySend()
}

// Done reports whether a finite transfer is fully acknowledged.
func (t *TCPSender) Done() bool {
	return t.limit > 0 && t.sndUna >= t.limit
}

// Inflight returns the number of unacknowledged segments.
func (t *TCPSender) Inflight() uint32 { return t.nextSeq - t.sndUna }

// trySend transmits as many new segments as cwnd allows.
func (t *TCPSender) trySend() {
	for float64(t.Inflight()) < t.cwnd {
		if t.limit > 0 && t.nextSeq >= t.limit {
			break
		}
		t.sendSeg(t.nextSeq, false)
		t.nextSeq++
	}
	// RFC 6298: start the timer when it is not running; never push an
	// armed timer forward just because more data went out. Restarting on
	// every transmission lets a steady stream of dup-ack-driven sends
	// suppress the RTO indefinitely while the oldest segment stays lost.
	if t.rtoEv == nil {
		t.armRTO()
	}
}

func (t *TCPSender) sendSeg(seq uint32, isRetx bool) {
	t.ipid++
	t.SegmentsSent++
	if seq+1 > t.maxSent {
		t.maxSent = seq + 1
	}
	if isRetx {
		t.Retransmits++
		t.retx[seq] = true
	} else if _, dup := t.sendTime[seq]; !dup {
		t.sendTime[seq] = t.loop.Now()
	}
	t.out(packet.Packet{
		Src: t.src, Dst: t.dst, Proto: packet.ProtoTCP,
		IPID: t.ipid, SrcPort: t.srcPort, DstPort: t.dstPort,
		Seq: seq, Flags: 0, PayloadLen: MSS,
		Created: t.loop.Now(),
	})
}

// armRTO (re)starts the retransmission timer if data is outstanding.
func (t *TCPSender) armRTO() {
	if t.rtoEv != nil {
		t.loop.Cancel(t.rtoEv)
		t.rtoEv = nil
	}
	if t.Inflight() == 0 {
		return
	}
	t.rtoEv = t.loop.After(t.rto, t.onRTO)
}

// onRTO is the retransmission timeout: collapse to slow start and go-back-N.
func (t *TCPSender) onRTO() {
	t.rtoEv = nil
	if t.Inflight() == 0 {
		return
	}
	t.Timeouts++
	t.LastRTOFiring = t.loop.Now()
	t.ssthresh = maxf(float64(t.Inflight())/2, 2)
	t.cwnd = 1
	t.dupAcks = 0
	t.inFR = false
	// Go-back-N: retransmit from the oldest hole; later segments will
	// be resent as cwnd regrows.
	t.nextSeq = t.sndUna
	t.sendSeg(t.nextSeq, true)
	t.nextSeq++
	// Exponential backoff.
	t.rto *= 2
	if t.rto > maxRTO {
		t.rto = maxRTO
	}
	t.armRTO()
}

// OnAck processes an acknowledgement from the receiver. p.Ack carries the
// cumulative next-expected segment.
func (t *TCPSender) OnAck(p packet.Packet) {
	ack := p.Ack
	if ack > t.maxSent {
		return // corrupt: acks data never sent
	}
	if ack > t.nextSeq {
		// A late cumulative ack for data sent before a go-back-N
		// reset: everything below it is delivered, so snap forward.
		t.nextSeq = ack
	}
	if ack > t.sndUna {
		newly := ack - t.sndUna
		// RTT sample from the newest cleanly-acked segment (Karn's
		// rule: never from retransmitted ones).
		if ts, ok := t.sendTime[ack-1]; ok && !t.retx[ack-1] {
			t.updateRTT(t.loop.Now().Sub(ts))
		}
		for s := t.sndUna; s < ack; s++ {
			delete(t.sendTime, s)
			delete(t.retx, s)
		}
		t.sndUna = ack
		t.dupAcks = 0
		if t.inFR {
			// New ACK ends fast recovery (Reno deflate).
			t.cwnd = t.ssthresh
			t.inFR = false
		} else if t.cwnd < t.ssthresh {
			t.cwnd += float64(newly) // slow start
		} else {
			t.cwnd += float64(newly) / t.cwnd // congestion avoidance
		}
		if t.cwnd > maxCwnd {
			t.cwnd = maxCwnd
		}
		t.armRTO()
		t.trySend()
		return
	}
	if ack == t.sndUna && t.Inflight() > 0 {
		t.dupAcks++
		if t.inFR {
			t.cwnd++ // inflation per extra dup
			if t.cwnd > maxCwnd {
				t.cwnd = maxCwnd
			}
			t.trySend()
			return
		}
		if t.dupAcks == dupThresh {
			// Fast retransmit.
			t.ssthresh = maxf(float64(t.Inflight())/2, 2)
			t.cwnd = t.ssthresh + dupThresh
			t.inFR = true
			t.sendSeg(t.sndUna, true)
			t.armRTO()
		}
	}
}

func (t *TCPSender) updateRTT(sample sim.Duration) {
	if sample <= 0 {
		return
	}
	if !t.hasSRTT {
		t.srtt = sample
		t.rttvar = sample / 2
		t.hasSRTT = true
	} else {
		d := t.srtt - sample
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + sample) / 8
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < minRTO {
		t.rto = minRTO
	}
	if t.rto > maxRTO {
		t.rto = maxRTO
	}
}

// SRTT exposes the smoothed RTT estimate (0 until measured).
func (t *TCPSender) SRTT() sim.Duration { return t.srtt }

// RTO exposes the current retransmission timeout.
func (t *TCPSender) RTO() sim.Duration { return t.rto }

// Cwnd exposes the congestion window in segments.
func (t *TCPSender) Cwnd() float64 { return t.cwnd }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TCPReceiver is the ACK-generating half: it tracks the cumulative
// in-order point, buffers out-of-order segments, and acknowledges every
// arrival.
type TCPReceiver struct {
	clock   Clock
	out     Wire
	src     packet.IP
	dst     packet.IP
	srcPort uint16
	dstPort uint16

	expected uint32
	ooo      map[uint32]bool
	ipid     uint16

	// OnData fires for every segment delivered in order, with its
	// payload size.
	OnData func(seq uint32, bytes int, now sim.Time)

	// Stats.
	SegmentsReceived int
	DupSegments      int
	AcksSent         int
}

// NewTCPReceiver creates the receiving half; out carries its ACKs back
// toward the sender. It schedules no timers, so it only needs a Clock —
// which lets it ride a mobile client across event-loop domains.
func NewTCPReceiver(clock Clock, out Wire, src, dst packet.IP, srcPort, dstPort uint16) *TCPReceiver {
	return &TCPReceiver{
		clock: clock, out: out, src: src, dst: dst,
		srcPort: srcPort, dstPort: dstPort,
		ooo: make(map[uint32]bool),
	}
}

// InOrderSegments returns the cumulative in-order segment count.
func (r *TCPReceiver) InOrderSegments() uint32 { return r.expected }

// Receive consumes one data segment from the network.
func (r *TCPReceiver) Receive(p packet.Packet) {
	r.SegmentsReceived++
	switch {
	case p.Seq == r.expected:
		r.deliver(p.Seq, int(p.PayloadLen))
		r.expected++
		// Drain contiguous out-of-order backlog.
		for r.ooo[r.expected] {
			delete(r.ooo, r.expected)
			r.deliver(r.expected, MSS)
			r.expected++
		}
	case p.Seq > r.expected:
		r.ooo[p.Seq] = true
	default:
		r.DupSegments++
	}
	r.sendAck()
}

func (r *TCPReceiver) deliver(seq uint32, bytes int) {
	if r.OnData != nil {
		r.OnData(seq, bytes, r.clock.Now())
	}
}

func (r *TCPReceiver) sendAck() {
	r.ipid++
	r.AcksSent++
	r.out(packet.Packet{
		Src: r.src, Dst: r.dst, Proto: packet.ProtoTCP,
		IPID: r.ipid, SrcPort: r.srcPort, DstPort: r.dstPort,
		Ack: r.expected, Flags: packet.FlagACK, PayloadLen: 0,
		Created: r.clock.Now(),
	})
}

// SndUna exposes the oldest unacknowledged segment (diagnostics).
func (t *TCPSender) SndUna() uint32 { return t.sndUna }

// NextSeq exposes the next new segment number (diagnostics).
func (t *TCPSender) NextSeq() uint32 { return t.nextSeq }
